#!/usr/bin/env bash
# trace_e2e.sh — traced end-to-end cluster run, validated by tracetool.
#
# Builds streammine and tracetool, runs a coordinator plus two workers as
# separate OS processes with per-process lifecycle tracing on, waits for
# the distributed run to complete, then merges the per-process JSONL
# traces: the summary table prints the per-phase latency breakdown,
# -validate enforces the trace invariants (complete lineages, no
# dead-epoch spans), and -chrome emits a Perfetto-loadable trace.
#
# Usage: scripts/trace_e2e.sh [output-dir]   (default trace-e2e-out)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-trace-e2e-out}"
rm -rf "$out"
mkdir -p "$out"

go build -o "$out/streammine" ./cmd/streammine
go build -o "$out/tracetool" ./cmd/tracetool

cat > "$out/topo.json" <<'JSON'
{
  "speculative": true,
  "seed": 7,
  "nodes": [
    {"name": "src",      "type": "source", "rate": 1500, "count": 600},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}
JSON

addr="127.0.0.1:7461"
"$out/streammine" -coordinator "$addr" -topology "$out/topo.json" \
  -trace "$out/coordinator.jsonl" >"$out/coordinator.log" 2>&1 &
coord=$!
sleep 0.3

for i in 1 2; do
  "$out/streammine" -worker -join "$addr" -name "w$i" \
    -state-dir "$out/state" -trace "$out/w$i.jsonl" >"$out/w$i.log" 2>&1 &
done

if ! wait "$coord"; then
  echo "trace_e2e: coordinator failed; logs follow" >&2
  cat "$out"/*.log >&2
  exit 1
fi
wait # workers exit on the coordinator's STOP

echo "--- per-phase latency breakdown ---"
"$out/tracetool" -validate -chrome "$out/trace.json" "$out"/*.jsonl
echo "trace_e2e: ok — merged trace in $out/ (open $out/trace.json in ui.perfetto.dev)"
