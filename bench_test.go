// Package streammine_bench regenerates every figure of the paper's
// evaluation as a Go benchmark (one per figure, scaled-down parameters so
// `go test -bench=.` completes in minutes) plus engine micro-benchmarks.
//
// The benchmarks report the figure's headline quantities as custom
// metrics: latencies in ms, throughput in events/second, speed-ups and
// abort rates. EXPERIMENTS.md records a full-scale run.
package streammine_bench

import (
	"testing"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/experiments"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

var quick = experiments.Config{Quick: true}

// BenchmarkFig2_LoggingConfigurations reports the Figure 2 bars: two
// components, speculative vs non-speculative mean latency per logging
// configuration.
func BenchmarkFig2_LoggingConfigurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunFig2(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			name := sanitize(r.Config.Name)
			b.ReportMetric(float64(r.NonSpec.Microseconds())/1000, name+"_nonspec_ms")
			b.ReportMetric(float64(r.Speculative.Microseconds())/1000, name+"_spec_ms")
		}
	}
}

// BenchmarkFig3_LatencyVsOperators reports the Figure 3 curves: latency
// versus pipeline length for the 2- and 7-operator endpoints.
func BenchmarkFig3_LatencyVsOperators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunFig3(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Operators != 2 && r.Operators != 7 {
				continue
			}
			prefix := sanitize(time.Duration(r.LogLatency).String()) + "_" + itoa(r.Operators) + "ops"
			b.ReportMetric(float64(r.NonSpec.Microseconds())/1000, prefix+"_nonspec_ms")
			b.ReportMetric(float64(r.Speculative.Microseconds())/1000, prefix+"_spec_ms")
		}
	}
}

// BenchmarkFig4_BurstBacklog reports the Figure 4 peaks: worst per-slice
// latency of the sequential and the 2-thread runs across the burst.
func BenchmarkFig4_BurstBacklog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunFig4(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].PeakLatency(), "sequential_peak_ms")
		b.ReportMetric(results[1].PeakLatency(), "parallel2_peak_ms")
	}
}

// BenchmarkFig5_SpeedupVsStateSize reports the Figure 5 endpoints: 8-
// thread speed-up and abort rate with one state field and with many.
func BenchmarkFig5_SpeedupVsStateSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunFig5(quick)
		if err != nil {
			b.Fatal(err)
		}
		first, last := results[0], results[len(results)-1]
		b.ReportMetric(first.SpeedUp, "k1_speedup")
		b.ReportMetric(first.AbortRate, "k1_abort_pct")
		b.ReportMetric(last.SpeedUp, "k64_speedup")
		b.ReportMetric(last.AbortRate, "k64_abort_pct")
	}
}

// BenchmarkFig6_LatencyResponse and BenchmarkFig7_ThroughputResponse share
// one run of the union+sketch pipeline across input rates.
func BenchmarkFig6_LatencyResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, points, err := experiments.RunFig6(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.BothLog {
				continue // report the (a) panel; (b) runs in Fig7's pass
			}
			name := sanitize(p.Mode) + "_" + itoa(p.InputRate)
			b.ReportMetric(float64(p.MeanLat.Microseconds())/1000, name+"_ms")
		}
	}
}

// BenchmarkFig7_ThroughputResponse reports finalized events/second.
func BenchmarkFig7_ThroughputResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, points, err := experiments.RunFig6(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.BothLog {
				continue
			}
			name := sanitize(p.Mode) + "_" + itoa(p.InputRate)
			b.ReportMetric(p.OutputRate, name+"_evps")
		}
	}
}

// BenchmarkFig8_STMAccessOverhead reports the Figure 8 endpoints: the
// expensive task's direct/speculative/re-executed times at 1000 accesses.
func BenchmarkFig8_STMAccessOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.RunFig8(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Accesses != 1000 {
				continue
			}
			b.ReportMetric(float64(r.Direct.Nanoseconds())/1000, r.Task+"_direct_us")
			b.ReportMetric(float64(r.FirstExec.Nanoseconds())/1000, r.Task+"_spec_us")
			b.ReportMetric(float64(r.Reexec.Nanoseconds())/1000, r.Task+"_reexec_us")
		}
	}
}

// BenchmarkExternalization reports the §4 closing scenario: speculative
// vs finalized visibility latency.
func BenchmarkExternalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.RunExternalization(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MeanSpeculative.Nanoseconds())/1000, "speculative_us")
		b.ReportMetric(float64(res.MeanFinal.Nanoseconds())/1000, "final_us")
	}
}

// BenchmarkRecovery reports the §2.2 recovery experiment: the re-executed
// task count and duplicate statistics for a crash mid-stream.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.RunRecovery(quick)
		if err != nil {
			b.Fatal(err)
		}
		if res.ContentMismatches != 0 {
			b.Fatalf("precise recovery violated: %d mismatches", res.ContentMismatches)
		}
		b.ReportMetric(float64(res.DuplicatesObserved), "duplicates")
		b.ReportMetric(float64(res.ReexecutedTasks), "reexecuted")
	}
}

// BenchmarkEngineEventThroughput measures raw engine throughput on a
// 3-operator stateless pipeline without simulated costs (events/op).
func BenchmarkEngineEventThroughput(b *testing.B) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	a := g.AddNode(graph.Node{Name: "a", Op: &operator.Passthrough{}, Speculative: true})
	f := g.AddNode(graph.Node{
		Name:        "f",
		Op:          &operator.Filter{Pred: func(e event.Event) bool { return e.Key%2 == 0 }},
		Speculative: true,
	})
	g.Connect(src, 0, a, 0)
	g.Connect(a, 0, f, 0)
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	handle, err := eng.Source(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := handle.Emit(uint64(i), nil); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			eng.Drain()
		}
	}
	eng.Drain()
}

// BenchmarkEngineStatefulCommit measures the full speculative lifecycle
// (dispatch, execute, commit, finalize) of a stateful operator per event.
func BenchmarkEngineStatefulCommit(b *testing.B) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	c := g.AddNode(graph.Node{
		Name:        "cls",
		Op:          &operator.Classifier{Classes: 64},
		Traits:      operator.ClassifierTraits(64),
		Speculative: true,
	})
	g.Connect(src, 0, c, 0)
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	handle, err := eng.Source(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := handle.Emit(uint64(i), nil); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			eng.Drain()
		}
	}
	eng.Drain()
}

// itoa avoids strconv just for metric names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// sanitize turns a mode name into a metric-safe token.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '-' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}
