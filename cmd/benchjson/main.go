// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON record, so benchmark runs can be archived and
// diffed across commits (make bench writes BENCH_<rev>.json at the repo
// root). It understands the standard benchmark line
//
//	BenchmarkName-8    1000    1234 ns/op    56 B/op    7 allocs/op
//
// plus the goos/goarch/cpu/pkg header lines the test binary prints per
// package. With -injson, stdin is instead an already-encoded report (the
// campaign runner's CAMPAIGN_<name>.json), so campaign results flow
// through the same -require and -prev gates as benchmark archives.
//
// The schema, column probes and regression rules live in
// internal/benchfmt, shared with internal/campaign.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"streammine/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	require := flag.String("require", "", "comma-separated column names that must appear in at least one parsed benchmark (e.g. events_per_sec,recovery_ms); exit non-zero when a requested column is absent instead of silently emitting blanks")
	prev := flag.String("prev", "", "previous report JSON to compare against: exit non-zero when a benchmark's events_per_sec drops more than 20%, its waste_cpu_pct or recovery_ms more than doubles, or its completeness_pct falls by over half a point")
	injson := flag.Bool("injson", false, "treat stdin as an existing report JSON instead of `go test -bench` text (gate a campaign result file without re-parsing)")
	flag.Parse()

	var (
		rep benchfmt.Report
		err error
	)
	if *injson {
		var data []byte
		if data, err = io.ReadAll(os.Stdin); err == nil {
			err = json.Unmarshal(data, &rep)
		}
	} else {
		rep, err = benchfmt.ParseText(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if err := benchfmt.CheckRequired(rep, *require); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *prev != "" {
		if err := benchfmt.CheckRegression(*prev, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if err := benchfmt.WriteReport(rep, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
	}
}
