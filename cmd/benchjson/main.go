// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON record, so benchmark runs can be archived and
// diffed across commits (make bench writes BENCH_<rev>.json at the repo
// root). It understands the standard benchmark line
//
//	BenchmarkName-8    1000    1234 ns/op    56 B/op    7 allocs/op
//
// plus the goos/goarch/cpu/pkg header lines the test binary prints per
// package.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp,omitempty"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	MBPerSec    float64 `json:"mbPerSec,omitempty"`
	// Latency quantiles reported by benchmarks that measure end-to-end
	// event latency (b.ReportMetric with "p50-us" / "p99-us" units).
	LatencyP50Us float64 `json:"latency_p50_us,omitempty"`
	LatencyP99Us float64 `json:"latency_p99_us,omitempty"`
	// Speculation-waste metrics reported by benchmarks that run with the
	// profiler enabled ("waste-cpu-pct" / "aborted-attempts/event" units).
	WasteCPUPct             float64 `json:"waste_cpu_pct,omitempty"`
	AbortedAttemptsPerEvent float64 `json:"aborted_attempts_per_event,omitempty"`
}

// Report is the file-level record.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	var rep Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(pkg, line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}

// parseBench decodes one benchmark result line: name, iteration count,
// then (value, unit) pairs.
func parseBench(pkg, line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Pkg: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "p50-us":
			r.LatencyP50Us = v
		case "p99-us":
			r.LatencyP99Us = v
		case "waste-cpu-pct":
			r.WasteCPUPct = v
		case "aborted-attempts/event":
			r.AbortedAttemptsPerEvent = v
		}
	}
	return r, true
}
