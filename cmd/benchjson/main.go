// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON record, so benchmark runs can be archived and
// diffed across commits (make bench writes BENCH_<rev>.json at the repo
// root). It understands the standard benchmark line
//
//	BenchmarkName-8    1000    1234 ns/op    56 B/op    7 allocs/op
//
// plus the goos/goarch/cpu/pkg header lines the test binary prints per
// package.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp,omitempty"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	MBPerSec    float64 `json:"mbPerSec,omitempty"`
	// Latency quantiles reported by benchmarks that measure end-to-end
	// event latency (b.ReportMetric with "p50-us" / "p99-us" units).
	LatencyP50Us float64 `json:"latency_p50_us,omitempty"`
	LatencyP99Us float64 `json:"latency_p99_us,omitempty"`
	// Speculation-waste metrics reported by benchmarks that run with the
	// profiler enabled ("waste-cpu-pct" / "aborted-attempts/event" units).
	WasteCPUPct             float64 `json:"waste_cpu_pct,omitempty"`
	AbortedAttemptsPerEvent float64 `json:"aborted_attempts_per_event,omitempty"`
	// Sustained throughput reported by open-loop benchmarks
	// (b.ReportMetric with "events/sec" units).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Ingest-gateway edge metrics reported by the network ingest
	// benchmark ("ingest-admit-p99-ms" / "ingest-shed-pct" units).
	IngestAdmitP99Ms float64 `json:"ingest_admit_p99_ms,omitempty"`
	IngestShedPct    float64 `json:"ingest_shed_pct,omitempty"`
}

// columns maps a -require column name to a probe reporting whether a
// result carries that column. Keep in sync with parseBench and the JSON
// field tags above.
var columns = map[string]func(*Result) bool{
	"nsPerOp":                    func(r *Result) bool { return r.NsPerOp != 0 },
	"bytesPerOp":                 func(r *Result) bool { return r.BytesPerOp != 0 },
	"allocsPerOp":                func(r *Result) bool { return r.AllocsPerOp != 0 },
	"mbPerSec":                   func(r *Result) bool { return r.MBPerSec != 0 },
	"latency_p50_us":             func(r *Result) bool { return r.LatencyP50Us != 0 },
	"latency_p99_us":             func(r *Result) bool { return r.LatencyP99Us != 0 },
	"waste_cpu_pct":              func(r *Result) bool { return r.WasteCPUPct != 0 },
	"aborted_attempts_per_event": func(r *Result) bool { return r.AbortedAttemptsPerEvent != 0 },
	"events_per_sec":             func(r *Result) bool { return r.EventsPerSec != 0 },
	"ingest_admit_p99_ms":        func(r *Result) bool { return r.IngestAdmitP99Ms != 0 },
	"ingest_shed_pct":            func(r *Result) bool { return r.IngestShedPct != 0 },
}

// Report is the file-level record.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	require := flag.String("require", "", "comma-separated column names that must appear in at least one parsed benchmark (e.g. events_per_sec,latency_p99_us); exit non-zero when a requested column is absent instead of silently emitting blanks")
	prev := flag.String("prev", "", "previous report JSON to compare against: exit non-zero when a benchmark's events_per_sec drops more than 20% or its waste_cpu_pct more than doubles")
	flag.Parse()

	var rep Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(pkg, line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if err := checkRequired(rep, *require); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *prev != "" {
		if err := checkRegression(*prev, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}

// parseBench decodes one benchmark result line: name, iteration count,
// then (value, unit) pairs.
func parseBench(pkg, line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Pkg: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "p50-us":
			r.LatencyP50Us = v
		case "p99-us":
			r.LatencyP99Us = v
		case "waste-cpu-pct":
			r.WasteCPUPct = v
		case "aborted-attempts/event":
			r.AbortedAttemptsPerEvent = v
		case "events/sec":
			r.EventsPerSec = v
		case "ingest-admit-p99-ms":
			r.IngestAdmitP99Ms = v
		case "ingest-shed-pct":
			r.IngestShedPct = v
		}
	}
	return r, true
}

// checkRequired verifies every -require column appears in at least one
// parsed benchmark. A typo'd or vanished metric unit used to produce a
// report full of silent blanks; now it fails the run.
func checkRequired(rep Report, require string) error {
	if require == "" {
		return nil
	}
	for _, col := range strings.Split(require, ",") {
		col = strings.TrimSpace(col)
		if col == "" {
			continue
		}
		probe, ok := columns[col]
		if !ok {
			return fmt.Errorf("-require: unknown column %q", col)
		}
		found := false
		for i := range rep.Benchmarks {
			if probe(&rep.Benchmarks[i]) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-require: column %q absent from all %d parsed benchmarks (metric unit missing from bench output?)", col, len(rep.Benchmarks))
		}
	}
	return nil
}

// checkRegression compares the new report against a previous one by
// pkg+name: a benchmark whose events_per_sec dropped by more than 20% or
// whose waste_cpu_pct more than doubled fails the check. Benchmarks
// present on only one side are ignored (renames and new coverage are not
// regressions).
func checkRegression(prevPath string, cur Report) error {
	data, err := os.ReadFile(prevPath)
	if err != nil {
		return fmt.Errorf("-prev: %w", err)
	}
	var prev Report
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("-prev: parse %s: %w", prevPath, err)
	}
	old := make(map[string]Result, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		old[r.Pkg+" "+r.Name] = r
	}
	var bad []string
	for _, r := range cur.Benchmarks {
		p, ok := old[r.Pkg+" "+r.Name]
		if !ok {
			continue
		}
		if p.EventsPerSec > 0 && r.EventsPerSec > 0 && r.EventsPerSec < 0.8*p.EventsPerSec {
			bad = append(bad, fmt.Sprintf("%s: events_per_sec %.0f -> %.0f (-%.0f%%)",
				r.Name, p.EventsPerSec, r.EventsPerSec, 100*(1-r.EventsPerSec/p.EventsPerSec)))
		}
		if p.WasteCPUPct > 0 && r.WasteCPUPct > 2*p.WasteCPUPct {
			bad = append(bad, fmt.Sprintf("%s: waste_cpu_pct %.2f -> %.2f (more than doubled)",
				r.Name, p.WasteCPUPct, r.WasteCPUPct))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("regression vs %s:\n  %s", prevPath, strings.Join(bad, "\n  "))
	}
	return nil
}
