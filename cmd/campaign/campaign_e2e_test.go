package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streammine/internal/campaign"
	"streammine/internal/flightrec"
	"streammine/internal/tracetool"
)

// TestCampaignHealthEvidence runs a real two-fault campaign (straggler +
// sigkill against multi-process clusters) and asserts the health plane's
// acceptance criteria end to end:
//
//   - the straggler cell's /debug/health flagged the injected victim and
//     diagnosed a backpressure root-cause chain before the fault window
//     closed (the runner fails the cell otherwise; the test additionally
//     pins the recorded detection latencies);
//   - the SIGKILL'd worker left a parseable flight-recorder snapshot on
//     disk, and tracetool renders it.
func TestCampaignHealthEvidence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign e2e launches real clusters and waits out fault windows")
	}
	dir := t.TempDir()
	bin, err := campaign.BuildBinary(dir)
	if err != nil {
		t.Fatalf("build streammine: %v", err)
	}

	specPath := filepath.Join(dir, "spec.json")
	specJSON := `{
	  "name": "health-e2e",
	  "workloads": ["paper"],
	  "faults": ["straggler", "sigkill"],
	  "events": 1000,
	  "rate": 1500,
	  "workers": 2,
	  "timeout": "120s"
	}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.Load(specPath)
	if err != nil {
		t.Fatal(err)
	}

	r := &campaign.Runner{Bin: bin, OutDir: dir, Logf: t.Logf}
	outcome, err := r.Run(spec)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	byFault := map[string]*campaign.Result{}
	for _, c := range outcome.Cells {
		if !c.Passed() {
			t.Errorf("cell %s failed: %v", c.Cell, c.Failures)
		}
		switch {
		case strings.Contains(c.Cell, "straggler"):
			byFault["straggler"] = c
		case strings.Contains(c.Cell, "sigkill"):
			byFault["sigkill"] = c
		}
	}

	strag := byFault["straggler"]
	if strag == nil {
		t.Fatal("no straggler cell in outcome")
	}
	window := float64(2 * time.Second / time.Millisecond)
	if strag.HealthStragglerMs <= 0 || strag.HealthStragglerMs > window {
		t.Errorf("straggler flagged at %.0f ms, want within (0, %.0f]", strag.HealthStragglerMs, window)
	}
	if strag.HealthChainMs <= 0 || strag.HealthChainMs > window {
		t.Errorf("backpressure chain at %.0f ms, want within (0, %.0f]", strag.HealthChainMs, window)
	}
	if strag.Victim == "" || !strings.Contains(strag.HealthChain, strag.Victim) {
		t.Errorf("chain %q does not name victim %q", strag.HealthChain, strag.Victim)
	}

	kill := byFault["sigkill"]
	if kill == nil {
		t.Fatal("no sigkill cell in outcome")
	}
	if kill.Victim == "" || len(kill.FlightRecDumps) == 0 {
		t.Fatalf("sigkill cell: victim %q, %d flight-recorder dumps", kill.Victim, len(kill.FlightRecDumps))
	}
	var victimDump string
	for _, d := range kill.FlightRecDumps {
		if strings.HasSuffix(d, kill.Victim+".json") {
			victimDump = filepath.Join(dir, d)
		}
	}
	if victimDump == "" {
		t.Fatalf("no dump for victim %s among %v", kill.Victim, kill.FlightRecDumps)
	}
	d, err := flightrec.ReadDump(victimDump)
	if err != nil {
		t.Fatalf("victim snapshot unparseable: %v", err)
	}
	if len(d.Entries) == 0 {
		t.Fatal("victim snapshot is empty")
	}
	var buf bytes.Buffer
	if err := tracetool.WriteFlightRec(&buf, victimDump); err != nil {
		t.Fatalf("tracetool render: %v", err)
	}
	if !strings.Contains(buf.String(), kill.Victim) {
		t.Errorf("rendered timeline does not name the victim:\n%s", buf.String())
	}
}
