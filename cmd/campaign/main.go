// Command campaign runs declarative fault-recovery benchmark campaigns:
// a JSON spec (see docs/CAMPAIGNS.md and campaigns/) expands into a
// workload × fault × config matrix, each cell runs a real multi-process
// cluster with a fault injected mid-run, and the results land as a
// benchfmt JSON report plus a rendered markdown report.
//
// Usage:
//
//	campaign -spec campaigns/smoke.json -out out/
//	campaign -spec campaigns/nightly.json -cells 'sigkill' -out out/
//	campaign -list
//
// The process exits non-zero when any executed cell fails its
// assertions (lost deliveries, duplicate sink prints, lineage
// completeness below 99%, or a run that never completed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"streammine/internal/benchfmt"
	"streammine/internal/campaign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "campaign spec file (JSON; see docs/CAMPAIGNS.md)")
	outDir := flag.String("out", "campaign-out", "output directory: results.json, report.md and per-cell artifacts under cells/")
	bin := flag.String("bin", "", "streammine binary to launch clusters with (default: build streammine/cmd/streammine into the output directory)")
	cellsRe := flag.String("cells", "", "only run cells whose name matches this regexp (baselines a selected cell compares against always run)")
	list := flag.Bool("list", false, "with -spec: print the expanded cell matrix and exit without running")
	flag.Parse()

	if *specPath == "" {
		return fmt.Errorf("-spec is required (see campaigns/ for examples)")
	}
	spec, err := campaign.Load(*specPath)
	if err != nil {
		return err
	}

	cells := spec.Expand()
	var filter *regexp.Regexp
	if *cellsRe != "" {
		filter, err = regexp.Compile(*cellsRe)
		if err != nil {
			return fmt.Errorf("-cells: %w", err)
		}
		// Keep a selected cell's baseline: faulted cells are asserted
		// against the fault-free identity set of their workload × config.
		keep := map[string]bool{}
		for _, c := range cells {
			if !c.Baseline() && filter.MatchString(c.Name()) {
				keep[c.BaselineKey()] = true
			}
		}
		var selected []campaign.Cell
		for _, c := range cells {
			if filter.MatchString(c.Name()) || (c.Baseline() && keep[c.BaselineKey()]) {
				selected = append(selected, c)
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("-cells %q matches no cell of %d", *cellsRe, len(cells))
		}
		cells = selected
	}

	if *list {
		for _, c := range cells {
			fmt.Println(c.Name())
		}
		return nil
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	binPath := *bin
	if binPath == "" {
		fmt.Fprintln(os.Stderr, "campaign: building streammine binary")
		binPath, err = campaign.BuildBinary(*outDir)
		if err != nil {
			return err
		}
	}

	r := &campaign.Runner{
		Bin:    binPath,
		OutDir: *outDir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
		},
	}
	outcome, err := r.RunCells(spec, cells)
	if err != nil {
		return err
	}

	resData, err := json.MarshalIndent(outcome, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*outDir, "results.json"), append(resData, '\n'), 0o644); err != nil {
		return err
	}
	if err := benchfmt.WriteReport(campaign.BenchReport(outcome), filepath.Join(*outDir, "bench.json"), nil); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*outDir, "report.md"), []byte(campaign.Markdown(outcome)), 0o644); err != nil {
		return err
	}
	fmt.Printf("campaign %s: %d cells, report in %s\n", outcome.Campaign, len(outcome.Cells), *outDir)

	if !outcome.Passed() {
		failed := 0
		for _, c := range outcome.Cells {
			if !c.Passed() {
				failed++
				fmt.Fprintf(os.Stderr, "campaign: FAILED %s: %v\n", c.Cell, c.Failures)
			}
		}
		return fmt.Errorf("%d of %d cells failed", failed, len(outcome.Cells))
	}
	return nil
}
