// Command tracetool merges the per-process JSONL lifecycle traces written
// by streammine's -trace flag, prints a per-phase latency breakdown with
// the critical path of the slowest event, validates trace invariants, and
// optionally exports Chrome trace-event JSON for Perfetto
// (docs/OBSERVABILITY.md walks through the workflow).
//
// Usage:
//
//	tracetool run.jsonl                          # summary table
//	tracetool w1.jsonl w2.jsonl coord.jsonl      # merged multi-process view
//	tracetool -chrome trace.json w*.jsonl        # + Perfetto export
//	tracetool -validate w*.jsonl                 # exit 1 on invariant violations
//	tracetool waste w*.jsonl                     # per-operator waste + top lineages
//	tracetool waste -summary waste.json w*.jsonl # joined with /debug/speculation
//	tracetool top -addr 127.0.0.1:8090           # live /debug/health view
//	tracetool flightrec state/flightrec/*.json   # render crash flight-recorder dumps
//	tracetool recovery -addr 127.0.0.1:8090      # recovery anatomy waterfall (live)
//	tracetool recovery cells/x/recovery.json     # same, from a campaign artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"streammine/internal/profiler"
	"streammine/internal/tracetool"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "waste" {
		return runWaste(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		return runTop(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "flightrec" {
		return runFlightRec(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "recovery" {
		return runRecovery(os.Args[2:])
	}
	chromePath := flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto) to this file")
	validate := flag.Bool("validate", false, "check trace invariants; non-zero exit on violations")
	quiet := flag.Bool("q", false, "suppress the summary table")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: tracetool [-chrome out.json] [-validate] trace.jsonl...")
	}

	set, err := tracetool.Load(flag.Args()...)
	if err != nil {
		return err
	}
	if set.TornTails > 0 {
		fmt.Fprintf(os.Stderr, "tracetool: %d input(s) end in a torn line (crash tear); intact prefixes merged\n", set.TornTails)
	}
	if !*quiet {
		set.Analyze().WriteSummary(os.Stdout)
	}
	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			return err
		}
		if err := set.WriteChrome(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("chrome trace: %s (open in ui.perfetto.dev)\n", *chromePath)
	}
	if *validate {
		if errs := set.Validate(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "tracetool: invariant violation:", e)
			}
			return fmt.Errorf("%d invariant violation(s)", len(errs))
		}
		fmt.Println("trace invariants hold")
	}
	return nil
}

// runWaste implements the "waste" subcommand: per-operator waste
// breakdowns and the top wasted lineages from the merged trace, joined
// with a saved /debug/speculation (or /debug/cluster) summary when given.
func runWaste(args []string) error {
	fs := flag.NewFlagSet("waste", flag.ContinueOnError)
	summaryPath := fs.String("summary", "", "join a saved /debug/speculation or /debug/cluster JSON body")
	top := fs.Int("top", 10, "how many wasted lineages to list")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: tracetool waste [-summary waste.json] [-top N] [-json] trace.jsonl...")
	}
	set, err := tracetool.Load(fs.Args()...)
	if err != nil {
		return err
	}
	if set.TornTails > 0 {
		fmt.Fprintf(os.Stderr, "tracetool: %d input(s) end in a torn line (crash tear); intact prefixes merged\n", set.TornTails)
	}
	var sum *profiler.Summary
	if *summaryPath != "" {
		if sum, err = tracetool.ReadSummary(*summaryPath); err != nil {
			return err
		}
	}
	report := set.Waste(sum, *top)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	report.WriteReport(os.Stdout)
	return nil
}

// runTop implements the "top" subcommand: a live, periodically refreshed
// rendering of a coordinator's /debug/health — SLO budget attribution,
// backpressure root-cause chains and straggler flags.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "coordinator debug address serving /debug/health")
	interval := fs.Duration("interval", time.Second, "refresh period")
	once := fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return tracetool.RunTop(os.Stdout, *addr, *interval, *once)
}

// runFlightRec implements the "flightrec" subcommand: it renders one or
// more flight-recorder dump files (written by -flightrec snapshots or a
// POST to /debug/flightrec) as a merged timeline of the final moments of
// each process.
func runFlightRec(args []string) error {
	fs := flag.NewFlagSet("flightrec", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: tracetool flightrec dump.json...")
	}
	return tracetool.WriteFlightRec(os.Stdout, fs.Args()...)
}

// runRecovery implements the "recovery" subcommand: the per-incident
// phase waterfall with dominant-phase attribution, read from a live
// coordinator (-addr) or a saved per-cell recovery.json artifact.
func runRecovery(args []string) error {
	fs := flag.NewFlagSet("recovery", flag.ContinueOnError)
	addr := fs.String("addr", "", "coordinator debug address serving /debug/recovery")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := ""
	if fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if *addr == "" && path == "" {
		return fmt.Errorf("usage: tracetool recovery [-addr host:port] [recovery.json]")
	}
	return tracetool.RunRecovery(os.Stdout, *addr, path)
}
