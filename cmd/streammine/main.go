// Command streammine runs an event stream processing pipeline described
// by a JSON topology file on the speculative engine, publishing synthetic
// events through its sources and reporting end-to-end latency and
// throughput per sink.
//
// Usage:
//
//	streammine -topology pipeline.json
//	streammine -topology pipeline.json -debug-addr :8090   # + /metrics, pprof
//	streammine -topology pipeline.json -trace run.jsonl    # + lifecycle spans
//	streammine -example > pipeline.json   # print a starter topology
//
// Cluster mode splits the same topology across worker processes
// (docs/CLUSTER.md):
//
//	streammine -coordinator :7000 -topology pipeline.json
//	streammine -worker -join :7000 -name w1 -state-dir /tmp/sm-state
//	streammine -worker -join :7000 -name w2 -state-dir /tmp/sm-state
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"streammine/internal/autolimit"
	"streammine/internal/chaos"
	"streammine/internal/core"
	"streammine/internal/debugserver"
	"streammine/internal/event"
	"streammine/internal/flightrec"
	"streammine/internal/ingest"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/profiler"
	"streammine/internal/storage"
	"streammine/internal/topology"
	"streammine/internal/transport"
	"streammine/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// observability bundles the opt-in instrumentation configured by the
// -debug-addr and -trace flags: a metrics registry served over HTTP and
// a JSONL event-lifecycle tracer (docs/OBSERVABILITY.md).
type observability struct {
	registry  *metrics.Registry
	tracer    *metrics.Tracer
	addr      string
	chaos     bool
	server    *debugserver.Server
	traceFile *os.File

	flightrec *flightrec.Recorder
	frProc    string
	frDir     string
	frSnap    *flightrec.Snapshotter
}

// newObservability configures instrumentation. proc labels every span
// with the process identity (worker name, "coordinator", or "" for the
// single-process engine) so tracetool can merge multi-process traces;
// sample is the head-based keep fraction of traced lineages.
func newObservability(debugAddr, tracePath, proc string, sample float64) (*observability, error) {
	o := &observability{addr: debugAddr}
	if debugAddr != "" {
		o.registry = metrics.NewRegistry()
		transport.RegisterMetrics(o.registry)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("create trace file: %w", err)
		}
		o.traceFile = f
		o.tracer = metrics.NewTracerProc(f, proc)
		o.tracer.SetSampling(sample)
		if proc != "" {
			// Cluster processes die by SIGKILL in failover drills; flush
			// per-span so a kill loses at most one torn line (which
			// tracetool tolerates, like the WAL's torn tail).
			o.tracer.SetAutoFlush(true)
		}
	}
	return o, nil
}

// serve starts the debug HTTP server; call it once the engine exists so
// /healthz can report its first error.
func (o *observability) serve(health func() error) error {
	if o.addr == "" {
		return nil
	}
	o.server = debugserver.New(o.registry, health)
	if o.chaos {
		o.server.SetChaos(chaos.Handle)
	}
	if rec := o.flightrec; rec != nil {
		proc, dir := o.frProc, o.frDir
		o.server.SetFlightRec(
			func() any { return rec.Dump(proc) },
			func() (string, error) { return rec.SaveTo(dir, proc) },
		)
	}
	bound, err := o.server.Start(o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("debug server on http://%s (/metrics /healthz /debug/pprof)\n", bound)
	return nil
}

// enableFlightRec arms the process-wide flight recorder: lifecycle /
// epoch / chaos records and sampled spans land in a lock-free ring that
// is snapshotted to dir four times a second, so even a SIGKILL leaves
// at most a quarter second of unrecorded history on disk. The arming
// record below guarantees every snapshot — including the one written
// immediately at start — holds at least one entry, so a victim killed
// moments after launch still leaves parseable evidence.
func (o *observability) enableFlightRec(dir, proc string) {
	if proc == "" {
		proc = "engine"
	}
	o.flightrec = flightrec.Enable(4096)
	o.frProc = proc
	o.frDir = dir
	flightrec.Recordf(flightrec.KindLifecycle, "flight recorder armed proc=%s pid=%d", proc, os.Getpid())
	if o.tracer != nil {
		o.tracer.SetMirror(flightrec.SpanMirror)
	}
	if o.registry != nil {
		flightrec.RegisterMetrics(o.flightrec, o.registry)
	}
	o.frSnap = o.flightrec.StartSnapshots(dir, proc, 250*time.Millisecond)
	fmt.Printf("flight recorder on, snapshots in %s\n", dir)
}

func (o *observability) close() {
	if o.frSnap != nil {
		o.frSnap.Stop()
	}
	if o.server != nil {
		_ = o.server.Close()
	}
	if o.tracer != nil {
		_ = o.tracer.Flush()
	}
	if o.traceFile != nil {
		fmt.Printf("trace: %d spans written to %s\n", o.tracer.Count(), o.traceFile.Name())
		_ = o.traceFile.Close()
	}
}

// sinkLatency returns the end-to-end latency histogram for a sink: a
// registered sink_latency{sink=...} series when metrics are on, or a
// detached histogram otherwise.
func (o *observability) sinkLatency(name string) *metrics.HDR {
	if o.registry == nil {
		return metrics.NewHDR()
	}
	return o.registry.HDRWith("sink_latency",
		"End-to-end latency of finalized sink outputs (source timestamp to externalization).",
		metrics.Labels{"sink": name})
}

func run() error {
	topoPath := flag.String("topology", "", "path to a JSON topology file")
	example := flag.Bool("example", false, "print an example topology and exit")
	query := flag.String("query", "", "run a continuous query against synthetic sources")
	rate := flag.Int("rate", 1000, "with -query: events/second per source")
	count := flag.Int("count", 5000, "with -query: events per source")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8090)")
	chaosFlag := flag.Bool("chaos", false, "with -debug-addr: accept runtime fault injection at /debug/chaos (slow/lossy bridges, slow disk; docs/CAMPAIGNS.md)")
	tracePath := flag.String("trace", "", "write per-event lifecycle spans (JSONL) to this file")
	profileSpec := flag.Bool("profile-speculation", false, "enable the speculation-waste profiler (served at /debug/speculation; with -worker, waste summaries ride STATUS heartbeats to the coordinator)")
	traceSample := flag.Float64("trace-sample", 1.0, "with -trace: fraction of event lineages to keep (head-based, by trace id)")
	sloFlag := flag.Duration("slo", 0, "with -coordinator: declared end-to-end p99 latency target for /debug/health budget attribution (e.g. 50ms; overrides the topology's sloP99Millis)")
	flightRecFlag := flag.Bool("flightrec", false, "arm the crash flight recorder: a lock-free ring of recent lifecycle/epoch/chaos records and sampled spans, snapshotted to disk every second and dumpable at /debug/flightrec")
	flightRecDir := flag.String("flightrec-dir", "", "with -flightrec: snapshot directory (default <state-dir>/flightrec for workers, streammine-flightrec otherwise)")
	coordAddr := flag.String("coordinator", "", "run as cluster coordinator listening on this address")
	workers := flag.Int("workers", 0, "with -coordinator: workers to wait for (default: topology placement)")
	worker := flag.Bool("worker", false, "run as cluster worker")
	join := flag.String("join", "", "with -worker: coordinator address to join")
	name := flag.String("name", "", "with -worker: worker name (default worker-<pid>)")
	dataAddr := flag.String("data-addr", "127.0.0.1:0", "with -worker: listen address for peer bridge traffic")
	stateDir := flag.String("state-dir", "streammine-state", "with -worker: root of durable partition state (shared across workers)")
	hbTimeout := flag.Duration("hb-timeout", time.Second, "cluster heartbeat timeout before a peer is declared dead")
	batch := flag.Int("batch", 0, "hot-path batch size: coalesce up to N events per admission charge, commit group and wire frame (0 = use the topology's flow settings; see docs/PERFORMANCE.md)")
	batchLinger := flag.Duration("batch-linger", 0, "max time an edge sender holds an under-full batch open waiting for more events (e.g. 200us; 0 = send partial batches immediately)")
	ingestAddr := flag.String("ingest-addr", "", "serve the multi-tenant network ingest gateway on this address; topology sources marked \"ingest\" accept records here (docs/INGEST.md)")
	ingestStateDir := flag.String("ingest-state-dir", "", "root of the per-stream ingest admission logs (default: streammine-ingest, or <state-dir>/ingest with -worker)")
	ingestTenants := flag.String("ingest-tenants", "", "JSON file declaring ingest tenants (name, token, rate, burst, maxBatch); empty runs the gateway open")
	ingestTLSCert := flag.String("ingest-tls-cert", "", "serve the ingest gateway over TLS with this certificate (PEM)")
	ingestTLSKey := flag.String("ingest-tls-key", "", "private key (PEM) for -ingest-tls-cert")
	flag.Parse()
	autolimit.Apply(logfFor("autolimit"))

	if *example {
		fmt.Println(topology.Example)
		return nil
	}
	// Resolve the span process label before the tracer exists: worker
	// names default to the pid, and the label must match what the worker
	// registers as so merged traces attribute spans to the right process.
	proc := ""
	if *coordAddr != "" {
		proc = "coordinator"
	} else if *worker {
		if *name == "" {
			*name = fmt.Sprintf("worker-%d", os.Getpid())
		}
		proc = *name
	}
	if *chaosFlag && *debugAddr == "" {
		return fmt.Errorf("-chaos requires -debug-addr (faults are armed via /debug/chaos)")
	}
	obs, err := newObservability(*debugAddr, *tracePath, proc, *traceSample)
	if err != nil {
		return err
	}
	obs.chaos = *chaosFlag
	defer obs.close()
	if *flightRecFlag {
		dir := *flightRecDir
		if dir == "" {
			if *worker {
				dir = filepath.Join(*stateDir, "flightrec")
			} else {
				dir = "streammine-flightrec"
			}
		}
		obs.enableFlightRec(dir, proc)
	}
	icfg, err := ingestFlagsConfig(*ingestAddr, *ingestStateDir, *ingestTenants, *ingestTLSCert, *ingestTLSKey)
	if err != nil {
		return err
	}
	icfg.Addr = *ingestAddr
	if *coordAddr != "" {
		return runCoordinator(*topoPath, *coordAddr, *workers, *hbTimeout, *sloFlag, *batch, *batchLinger, obs)
	}
	if *worker {
		return runWorker(*name, *join, *dataAddr, *stateDir, *hbTimeout, *profileSpec, icfg, obs)
	}
	if *query != "" {
		return runQuery(*query, *rate, *count, *profileSpec, obs)
	}
	if *topoPath == "" {
		return fmt.Errorf("usage: streammine -topology pipeline.json | -query \"SELECT ...\" (or -example)")
	}
	cfg, err := topology.Load(*topoPath)
	if err != nil {
		return err
	}
	cfg.ApplyBatch(*batch, *batchLinger)
	built, err := cfg.Build()
	if err != nil {
		return err
	}

	diskLat := time.Duration(cfg.DiskLatencyMillis) * time.Millisecond
	nDisks := cfg.Disks
	if nDisks <= 0 {
		nDisks = 1
	}
	disks := make([]storage.Disk, nDisks)
	for i := range disks {
		if diskLat > 0 {
			disks[i] = storage.NewSimDisk(diskLat, 0)
		} else {
			disks[i] = storage.NewMemDisk()
		}
	}
	pool := storage.NewPoolDelayed(disks, diskLat/10)
	defer pool.Close()

	wall := vclock.NewWall()
	var prof *profiler.Profiler
	if *profileSpec {
		prof = profiler.New(profiler.Config{})
	}
	eng, err := core.New(built.Graph, core.Options{
		Pool: pool, Seed: cfg.Seed, Clock: wall,
		Metrics: obs.registry, Tracer: obs.tracer,
		Profiler: prof,
	})
	if err != nil {
		return err
	}
	if err := obs.serve(eng.Err); err != nil {
		return err
	}
	if obs.server != nil {
		obs.server.SetPressure(pressureJSON(func() any { return eng.Pressure() }))
		if prof != nil {
			obs.server.SetSpeculation(func() any { return eng.Waste() })
		}
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	// Network ingest: start the gateway and hand it every topology source
	// marked "ingest" — the admission decision moves in front of the
	// gateway's durable admission log, and previously logged records are
	// replayed into the fresh engine before network batches are accepted.
	var gw *ingest.Server
	if icfg.Addr != "" {
		if icfg.StateDir == "" {
			icfg.StateDir = "streammine-ingest"
		}
		icfg.Registry = obs.registry
		icfg.Logf = logfFor("ingest")
		if gw, err = ingest.Start(icfg); err != nil {
			return err
		}
		defer gw.Close()
		if obs.server != nil {
			obs.server.SetDraining(gw.Draining)
		}
		fmt.Printf("ingest gateway on %s\n", gw.Addr())
	}
	for _, src := range built.Sources {
		if !src.Ingest {
			continue
		}
		if gw == nil {
			return fmt.Errorf("topology marks source %q as ingest; run with -ingest-addr", src.Name)
		}
		adm, _, err := eng.DetachSourceAdmission(src.ID)
		if err != nil {
			return err
		}
		handle, err := eng.Source(src.ID)
		if err != nil {
			adm.Close()
			return err
		}
		if err := gw.RegisterSource(src.Name, handle, adm); err != nil {
			adm.Close()
			return err
		}
		fmt.Printf("source %-10s accepting network records as stream %q\n", src.Name, src.Name)
	}

	// Sinks: latency histogram + throughput per sink node.
	type sinkStats struct {
		name string
		hist *metrics.HDR
		thr  *metrics.Throughput
	}
	var sinks []*sinkStats
	for _, id := range built.Sinks {
		node, err := built.Graph.Node(id)
		if err != nil {
			return err
		}
		st := &sinkStats{name: node.Name, hist: obs.sinkLatency(node.Name), thr: metrics.NewThroughput()}
		sinks = append(sinks, st)
		if err := eng.Subscribe(id, 0, func(ev event.Event, final bool) {
			if !final {
				return
			}
			// Output timestamps are inherited from the source event, so
			// wall.Now()-Timestamp is the end-to-end latency. (Window
			// operators stamp window boundaries; their "latency" is the
			// window lag.)
			if lat := time.Duration(wall.Now() - ev.Timestamp); lat > 0 {
				st.hist.Record(lat)
			}
			st.thr.Inc()
			if tr := obs.tracer; tr != nil {
				tr.RecordTrace(st.name, ev.ID.String(), ev.Trace, metrics.PhaseExternalize, "")
			}
		}); err != nil {
			return err
		}
	}

	// Publishers: deficit-paced to each source's rate. With batching on,
	// each deficit is flushed through EmitBatch in runs of up to the
	// source's batch size (one admission charge and one injection per run).
	var wg sync.WaitGroup
	for _, src := range built.Sources {
		if src.Ingest {
			continue
		}
		handle, err := eng.Source(src.ID)
		if err != nil {
			return err
		}
		eb := cfg.FlowFor(src.Name).Batch()
		wg.Add(1)
		go func(src topology.SourceSpec) {
			defer wg.Done()
			start := time.Now()
			emitted := 0
			for emitted < src.Count {
				due := int(time.Since(start).Seconds()*float64(src.Rate)) + 1
				if due > src.Count {
					due = src.Count
				}
				for emitted < due {
					if n := due - emitted; eb > 1 && n > 1 {
						if n > eb {
							n = eb
						}
						items := make([]core.BatchItem, n)
						for i := range items {
							items[i] = core.BatchItem{Key: uint64(emitted + i), Payload: operator.EncodeValue(uint64(emitted + i))}
						}
						if _, err := handle.EmitBatch(items); err != nil && !errors.Is(err, core.ErrShed) {
							return
						}
						emitted += n
						continue
					}
					payload := operator.EncodeValue(uint64(emitted))
					if _, err := handle.Emit(uint64(emitted), payload); err != nil {
						if !errors.Is(err, core.ErrShed) {
							return
						}
						// Shed by admission control: the sequence number is
						// burnt; keep publishing the remainder of the stream.
					}
					emitted++
				}
				time.Sleep(time.Millisecond)
			}
		}(src)
		fmt.Printf("source %-10s publishing %d events at %d ev/s\n", src.Name, src.Count, src.Rate)
	}
	wg.Wait()
	if gw != nil {
		// Network-fed streams are open-ended: stay up until interrupted,
		// then drain the gateway (new batches get retryable "draining"
		// verdicts, in-flight ones finish their log writes and ACKs)
		// before quiescing the engine.
		fmt.Println("ingest gateway serving; interrupt to drain and exit")
		<-interrupted()
		fmt.Println("interrupted; draining ingest gateway")
		gw.Drain(5 * time.Second)
		_ = gw.Close()
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		return err
	}

	for _, st := range sinks {
		fmt.Printf("sink %-12s events=%d rate=%.0f ev/s latency: mean=%v p50=%v p99=%v max=%v\n",
			st.name, st.hist.Count(), st.thr.PerSecond(),
			time.Duration(st.hist.Mean()), st.hist.QuantileDuration(0.5),
			st.hist.QuantileDuration(0.99), time.Duration(st.hist.Max()))
	}
	return nil
}
