// Command streammine runs an event stream processing pipeline described
// by a JSON topology file on the speculative engine, publishing synthetic
// events through its sources and reporting end-to-end latency and
// throughput per sink.
//
// Usage:
//
//	streammine -topology pipeline.json
//	streammine -example > pipeline.json   # print a starter topology
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/vclock"
)

// eventAlias keeps config.go free of a direct event import cycle concern.
type eventAlias = event.Event

const exampleTopology = `{
  "speculative": true,
  "diskLatencyMillis": 10,
  "disks": 1,
  "seed": 42,
  "nodes": [
    {"name": "pub1", "type": "source", "rate": 500, "count": 2000},
    {"name": "pub2", "type": "source", "rate": 500, "count": 2000},
    {"name": "merge", "type": "union", "inputs": ["pub1", "pub2"]},
    {"name": "proc", "type": "classifier", "classes": 16, "checkpointEvery": 100, "inputs": ["merge"]},
    {"name": "out", "type": "sink", "inputs": ["proc"]}
  ]
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	topoPath := flag.String("topology", "", "path to a JSON topology file")
	example := flag.Bool("example", false, "print an example topology and exit")
	query := flag.String("query", "", "run a continuous query against synthetic sources")
	rate := flag.Int("rate", 1000, "with -query: events/second per source")
	count := flag.Int("count", 5000, "with -query: events per source")
	flag.Parse()

	if *example {
		fmt.Println(exampleTopology)
		return nil
	}
	if *query != "" {
		return runQuery(*query, *rate, *count)
	}
	if *topoPath == "" {
		return fmt.Errorf("usage: streammine -topology pipeline.json | -query \"SELECT ...\" (or -example)")
	}
	cfg, err := LoadTopology(*topoPath)
	if err != nil {
		return err
	}
	built, err := cfg.Build()
	if err != nil {
		return err
	}

	diskLat := time.Duration(cfg.DiskLatencyMillis) * time.Millisecond
	nDisks := cfg.Disks
	if nDisks <= 0 {
		nDisks = 1
	}
	disks := make([]storage.Disk, nDisks)
	for i := range disks {
		if diskLat > 0 {
			disks[i] = storage.NewSimDisk(diskLat, 0)
		} else {
			disks[i] = storage.NewMemDisk()
		}
	}
	pool := storage.NewPoolDelayed(disks, diskLat/10)
	defer pool.Close()

	wall := vclock.NewWall()
	eng, err := core.New(built.graph, core.Options{Pool: pool, Seed: cfg.Seed, Clock: wall})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	// Sinks: latency histogram + throughput per sink node.
	type sinkStats struct {
		name string
		hist *metrics.Histogram
		thr  *metrics.Throughput
	}
	var sinks []*sinkStats
	for _, id := range built.sinks {
		node, err := built.graph.Node(id)
		if err != nil {
			return err
		}
		st := &sinkStats{name: node.Name, hist: metrics.NewHistogram(), thr: metrics.NewThroughput()}
		sinks = append(sinks, st)
		if err := eng.Subscribe(id, 0, func(ev event.Event, final bool) {
			if !final {
				return
			}
			// Output timestamps are inherited from the source event, so
			// wall.Now()-Timestamp is the end-to-end latency. (Window
			// operators stamp window boundaries; their "latency" is the
			// window lag.)
			if lat := time.Duration(wall.Now() - ev.Timestamp); lat > 0 {
				st.hist.Record(lat)
			}
			st.thr.Inc()
		}); err != nil {
			return err
		}
	}

	// Publishers: deficit-paced to each source's rate.
	var wg sync.WaitGroup
	for _, src := range built.sources {
		handle, err := eng.Source(src.id)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(src sourceSpec) {
			defer wg.Done()
			start := time.Now()
			emitted := 0
			for emitted < src.count {
				due := int(time.Since(start).Seconds()*float64(src.rate)) + 1
				if due > src.count {
					due = src.count
				}
				for emitted < due {
					payload := operator.EncodeValue(uint64(emitted))
					if _, err := handle.Emit(uint64(emitted), payload); err != nil {
						return
					}
					emitted++
				}
				time.Sleep(time.Millisecond)
			}
		}(src)
		fmt.Printf("source %-10s publishing %d events at %d ev/s\n", src.name, src.count, src.rate)
	}
	wg.Wait()
	eng.Drain()
	if err := eng.Err(); err != nil {
		return err
	}

	for _, st := range sinks {
		fmt.Printf("sink %-12s events=%d rate=%.0f ev/s latency: mean=%v p50=%v p99=%v max=%v\n",
			st.name, st.hist.Count(), st.thr.PerSecond(),
			st.hist.Mean(), st.hist.Percentile(0.5), st.hist.Percentile(0.99), st.hist.Max())
	}
	return nil
}
