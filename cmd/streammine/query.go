package main

import (
	"fmt"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/cq"
	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/profiler"
	"streammine/internal/storage"
)

// runQuery compiles a continuous query, drives each FROM stream with a
// synthetic paced source (random keys over a small space, sequential
// values), and prints the query's finalized outputs as they arrive.
func runQuery(text string, rate, count int, profileSpec bool, obs *observability) error {
	q, err := cq.Parse(text)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", q)

	g := graph.New()
	sources := make(map[string]graph.NodeID, len(q.Sources))
	for _, name := range q.Sources {
		sources[name] = g.AddNode(graph.Node{Name: name})
	}
	att, err := cq.Attach(g, q, sources, cq.Options{Speculative: true, Workers: 2})
	if err != nil {
		return err
	}

	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	var prof *profiler.Profiler
	if profileSpec {
		prof = profiler.New(profiler.Config{})
	}
	eng, err := core.New(g, core.Options{
		Pool: pool, Seed: 1,
		Metrics: obs.registry, Tracer: obs.tracer,
		Profiler: prof,
	})
	if err != nil {
		return err
	}
	if err := obs.serve(eng.Err); err != nil {
		return err
	}
	if obs.server != nil && prof != nil {
		obs.server.SetSpeculation(func() any { return eng.Waste() })
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	var mu sync.Mutex
	results := 0
	var lastPayload uint64
	if err := eng.Subscribe(att.Output, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		mu.Lock()
		results++
		lastPayload = operator.DecodeValue(ev.Payload)
		n := results
		mu.Unlock()
		if tr := obs.tracer; tr != nil {
			tr.Record("query-sink", ev.ID.String(), metrics.PhaseExternalize, "")
		}
		if n <= 10 || n%1000 == 0 {
			fmt.Printf("result %6d: key=%d value=%d ts=%d\n", n, ev.Key, operator.DecodeValue(ev.Payload), ev.Timestamp)
		}
	}); err != nil {
		return err
	}

	var wg sync.WaitGroup
	for name, id := range sources {
		handle, err := eng.Source(id)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(name string, handle *core.SourceHandle) {
			defer wg.Done()
			rng := detrand.New(uint64(len(name)) * 7777)
			start := time.Now()
			emitted := 0
			for emitted < count {
				due := int(time.Since(start).Seconds()*float64(rate)) + 1
				if due > count {
					due = count
				}
				for emitted < due {
					key := uint64(rng.Intn(64))
					if _, err := handle.Emit(key, operator.EncodeValue(uint64(emitted))); err != nil {
						return
					}
					emitted++
				}
				time.Sleep(time.Millisecond)
			}
		}(name, handle)
	}
	wg.Wait()
	eng.Drain()
	if err := eng.Err(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("done: %d results (last value %d)\n", results, lastPayload)
	return nil
}
