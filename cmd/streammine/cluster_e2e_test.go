package main

import (
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"streammine/internal/metrics"
	"streammine/internal/procharness"
	"streammine/internal/recovery"
	"streammine/internal/tracetool"
)

// e2eTopo pins the source to one partition and the checkpointing stateful
// stage plus sink to the other, so killing the sink-side worker forces a
// checkpoint + decision-log + upstream-replay recovery on the survivor.
const e2eTopo = `{
  "speculative": true,
  "seed": 7,
  "nodes": [
    {"name": "src",      "type": "source", "rate": 1500, "count": 1000},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// e2eFlowTopo adds engine-wide flow control to e2eTopo: every mailbox is
// bounded at 8 and the bridged cut edge is credit-gated with the same
// window, so at rate 1500 the upstream bridge spends most of the run with
// its credits exhausted — the state the SIGKILL below must interrupt.
const e2eFlowTopo = `{
  "speculative": true,
  "seed": 7,
  "flow": {"mailboxCap": 8, "maxOpenSpec": 4},
  "nodes": [
    {"name": "src",      "type": "source", "rate": 1500, "count": 1000},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// buildBinary compiles the streammine command once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin, err := procharness.BuildBinary(t.TempDir(), ".")
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// runClusterProcesses spawns one coordinator and two worker processes over
// a shared state directory via procharness. With chaos set it SIGKILLs
// whichever worker externalizes sink output once the run is under way.
// With traceDir set, every process writes its lifecycle trace to
// <traceDir>/<proc>.jsonl. extraCoordArgs are appended to the coordinator
// invocation (engine-wide overrides like -batch ride the ASSIGN payload
// to the workers). Returns the distinct sink identity set externalized
// across all workers.
func runClusterProcesses(t *testing.T, bin, topo string, chaos bool, traceDir string, extraCoordArgs ...string) map[string]bool {
	t.Helper()
	cl, err := procharness.Start(procharness.Options{
		Bin:       bin,
		Topology:  topo,
		Dir:       t.TempDir(),
		Workers:   2,
		HBTimeout: 500 * time.Millisecond,
		CoordArgs: extraCoordArgs,
		TraceDir:  traceDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if chaos {
		victim, err := cl.Sinks.WaitBusiest(30, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("SIGKILL %s after %d sink events", victim, cl.Sinks.Count(victim))
		if err := cl.KillWorker(victim); err != nil {
			t.Fatalf("kill %s: %v", victim, err)
		}
	}

	if err := cl.WaitDone(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	return cl.Sinks.IDs()
}

// TestClusterProcessesFailover is the full multi-process chaos drill: a
// coordinator and two workers as real OS processes, SIGKILL of the worker
// holding the stateful sink partition, and identity-set equality between
// the recovered run and a failure-free run (the paper's precise-recovery
// criterion: no event lost, duplicates suppressed).
func TestClusterProcessesFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	baseline := runClusterProcesses(t, bin, e2eTopo, false, "")
	if len(baseline) != 1000 {
		t.Fatalf("baseline externalized %d distinct events, want 1000", len(baseline))
	}
	chaos := runClusterProcesses(t, bin, e2eTopo, true, "")
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %s missing from chaos run", id)
		}
	}
}

// TestClusterProcessesFailoverWithFlow SIGKILLs a worker mid-run with
// credit-based flow control active on the bridged cut edge (window 8, so
// the upstream bridge is credit-starved almost continuously at rate
// 1500). The reassigned partition's bridges must re-grant a fresh window
// on reconnect; precise recovery must externalize every event exactly
// once despite the bounded queues.
func TestClusterProcessesFailoverWithFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	chaos := runClusterProcesses(t, bin, e2eFlowTopo, true, "")
	if len(chaos) != 1000 {
		t.Fatalf("flow-controlled chaos run externalized %d distinct events, want 1000", len(chaos))
	}
}

// TestClusterProcessesFailoverBatched is the SIGKILL chaos drill with
// hot-path batching forced on for every node (`-batch 8` on the
// coordinator rides the ASSIGN payload to the workers): events cross the
// bridged cut edge in EVENT_BATCH frames, admission logs whole runs in
// one append, and the committer group-commits. Recovery must stay
// precise — identity-set equality between the batched chaos run and a
// batched failure-free run, so batching neither loses events nor leaks
// duplicates past suppression.
func TestClusterProcessesFailoverBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	baseline := runClusterProcesses(t, bin, e2eTopo, false, "", "-batch", "8")
	if len(baseline) != 1000 {
		t.Fatalf("batched baseline externalized %d distinct events, want 1000", len(baseline))
	}
	chaos := runClusterProcesses(t, bin, e2eTopo, true, "", "-batch", "8")
	if len(chaos) != len(baseline) {
		t.Fatalf("batched chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %s missing from batched chaos run", id)
		}
	}
}

// TestClusterTracedFailover is the distributed-latency-attribution chaos
// drill: the same two-worker SIGKILL failover, run with per-process
// lifecycle tracing on. The per-process JSONL files — including the
// killed worker's, which may end in a torn line — must merge into one
// coherent timeline in which (a) at least 99% of externalized events have
// a complete reconstructable lineage (trace ids are deterministic, so the
// replayed incarnation stitches into the original lineage), and (b) no
// span is attributable to a dead partition epoch.
func TestClusterTracedFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	traceDir := t.TempDir()
	ids := runClusterProcesses(t, bin, e2eTopo, true, traceDir)
	if len(ids) != 1000 {
		t.Fatalf("traced chaos run externalized %d distinct events, want 1000", len(ids))
	}

	files, err := filepath.Glob(filepath.Join(traceDir, "*.jsonl"))
	if err != nil || len(files) < 3 {
		t.Fatalf("trace files = %v (err %v), want coordinator + 2 workers", files, err)
	}
	set, err := tracetool.Load(files...)
	if err != nil {
		t.Fatalf("merging traces: %v", err)
	}
	t.Logf("merged %d spans from %d files (%d torn tails)", len(set.Spans), len(set.Files), set.TornTails)

	externalized, complete := 0, 0
	for _, l := range set.Lineages() {
		if !l.Has(metrics.PhaseExternalize) {
			continue
		}
		externalized++
		if l.Complete() {
			complete++
		}
	}
	if externalized < 1000 {
		t.Errorf("trace shows %d externalized lineages, want >= 1000", externalized)
	}
	if float64(complete) < 0.99*float64(externalized) {
		t.Errorf("only %d of %d externalized lineages are complete, want >= 99%%", complete, externalized)
	}

	// The epoch invariant must hold outright: a SIGKILLed process cannot
	// stamp spans after its partitions were reassigned.
	for _, err := range set.Validate() {
		if strings.Contains(err.Error(), "zombie") {
			t.Errorf("dead-epoch violation: %v", err)
		}
	}

	// The reassignment must be visible as an epoch bump in the merged
	// trace: some partition must have records from two different procs.
	owners := make(map[int]map[string]bool)
	for _, e := range set.Epochs() {
		if owners[e.Partition] == nil {
			owners[e.Partition] = make(map[string]bool)
		}
		owners[e.Partition][e.Proc] = true
	}
	moved := false
	for _, procs := range owners {
		if len(procs) > 1 {
			moved = true
		}
	}
	if !moved {
		t.Error("no partition shows epoch records from two processes; failover not captured in trace")
	}
}

// TestClusterRecoveryAnatomy SIGKILLs a worker and asserts the
// coordinator's /debug/recovery report stitches the complete phase
// chain for the incident: detect, decide, restore, refill, replay and
// catch-up all present and closed, timestamps monotone within the
// incident, no large uncovered windows on the timeline, and per-phase
// durations that sum to roughly the end-to-end outage. The coordinator
// exits when the closed-ended run completes, so the report is polled
// during the run and the last capture is judged.
func TestClusterRecoveryAnatomy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	cl, err := procharness.Start(procharness.Options{
		Bin:       bin,
		Topology:  e2eTopo,
		Dir:       t.TempDir(),
		Workers:   2,
		HBTimeout: 500 * time.Millisecond,
		CoordArgs: []string{"-debug-addr", "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	addr, err := cl.WaitDebugAddr("coordinator", 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var last *recovery.Report
	stop := make(chan struct{})
	polled := make(chan struct{})
	go func() {
		defer close(polled)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if rep, err := tracetool.FetchRecovery(addr); err == nil && len(rep.Incidents) > 0 {
					mu.Lock()
					last = rep
					mu.Unlock()
				}
			}
		}
	}()

	victim, err := cl.Sinks.WaitBusiest(30, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SIGKILL %s after %d sink events", victim, cl.Sinks.Count(victim))
	if err := cl.KillWorker(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	if err := cl.WaitDone(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-polled

	mu.Lock()
	rep := last
	mu.Unlock()
	if rep == nil || len(rep.Incidents) == 0 {
		t.Fatal("coordinator never served a recovery incident at /debug/recovery")
	}
	inc := rep.Incidents[len(rep.Incidents)-1]
	if inc.Victim != victim {
		t.Errorf("incident victim = %q, want %q", inc.Victim, victim)
	}
	if !inc.Complete {
		t.Fatalf("incident never completed: %+v", inc)
	}
	if inc.DetectedNs < inc.StartNs {
		t.Errorf("DetectedNs %d before incident start %d", inc.DetectedNs, inc.StartNs)
	}

	// The full chain: every phase present with a measurable duration.
	for _, ph := range recovery.Phases {
		if inc.PhaseMs[ph] <= 0 {
			t.Errorf("phase %s missing from incident (PhaseMs=%v)", ph, inc.PhaseMs)
		}
	}

	// Monotone, closed, in-window spans, sorted by start.
	var prevStart int64
	var end int64
	for _, s := range inc.Spans {
		if s.EndNs == 0 {
			t.Errorf("span %s/p%d still open in a complete incident", s.Phase, s.Partition)
			continue
		}
		if s.EndNs < s.StartNs {
			t.Errorf("span %s/p%d ends before it starts (%d < %d)", s.Phase, s.Partition, s.EndNs, s.StartNs)
		}
		if s.StartNs < inc.StartNs {
			t.Errorf("span %s/p%d starts before the incident", s.Phase, s.Partition)
		}
		if s.StartNs < prevStart {
			t.Errorf("spans not sorted by start time at %s/p%d", s.Phase, s.Partition)
		}
		prevStart = s.StartNs
		if s.EndNs > end {
			end = s.EndNs
		}
	}

	// No gaps beyond scheduling slack: the union of all spans must cover
	// nearly the whole incident window (STATUS folding can defer the
	// coordinator-side catch-up start by a heartbeat or two).
	covered := coveredNs(inc.Spans)
	window := end - inc.StartNs
	if window <= 0 {
		t.Fatalf("degenerate incident window %d", window)
	}
	uncoveredMs := float64(window-covered) / 1e6
	if slack := 0.25*inc.TotalMs + 300; uncoveredMs > slack {
		t.Errorf("timeline has %.1fms uncovered (window %.1fms, slack %.1fms)",
			uncoveredMs, float64(window)/1e6, slack)
	}

	// Phases are disjoint per partition, so their union durations must
	// sum to within tolerance of the end-to-end outage.
	var sum float64
	for _, v := range inc.PhaseMs {
		sum += v
	}
	if sum < 0.65*inc.TotalMs || sum > 1.35*inc.TotalMs {
		t.Errorf("phase sum %.1fms vs total %.1fms outside [0.65, 1.35] tolerance (PhaseMs=%v)",
			sum, inc.TotalMs, inc.PhaseMs)
	}
	t.Logf("recovery anatomy: total %.1fms, phases %v, dominant %s, replay %.0f events/sec",
		inc.TotalMs, inc.PhaseMs, inc.DominantPhase, inc.ReplayEventsPerSec)
}

// coveredNs is the interval-union length of the closed spans.
func coveredNs(spans []recovery.Span) int64 {
	type iv struct{ a, b int64 }
	var ivs []iv
	for _, s := range spans {
		if s.EndNs > s.StartNs {
			ivs = append(ivs, iv{s.StartNs, s.EndNs})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sortSpans := func(i, j int) bool { return ivs[i].a < ivs[j].a }
	sort.Slice(ivs, sortSpans)
	var total int64
	curA, curB := ivs[0].a, ivs[0].b
	for _, v := range ivs[1:] {
		if v.a > curB {
			total += curB - curA
			curA, curB = v.a, v.b
			continue
		}
		if v.b > curB {
			curB = v.b
		}
	}
	return total + (curB - curA)
}
