package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streammine/internal/metrics"
	"streammine/internal/tracetool"
)

// e2eTopo pins the source to one partition and the checkpointing stateful
// stage plus sink to the other, so killing the sink-side worker forces a
// checkpoint + decision-log + upstream-replay recovery on the survivor.
const e2eTopo = `{
  "speculative": true,
  "seed": 7,
  "nodes": [
    {"name": "src",      "type": "source", "rate": 1500, "count": 1000},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// e2eFlowTopo adds engine-wide flow control to e2eTopo: every mailbox is
// bounded at 8 and the bridged cut edge is credit-gated with the same
// window, so at rate 1500 the upstream bridge spends most of the run with
// its credits exhausted — the state the SIGKILL below must interrupt.
const e2eFlowTopo = `{
  "speculative": true,
  "seed": 7,
  "flow": {"mailboxCap": 8, "maxOpenSpec": 4},
  "nodes": [
    {"name": "src",      "type": "source", "rate": 1500, "count": 1000},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// procSinks collects "SINK <name> <id>" lines across worker processes.
type procSinks struct {
	mu   sync.Mutex
	seen map[string]bool
	per  map[string]int
}

func newProcSinks() *procSinks {
	return &procSinks{seen: make(map[string]bool), per: make(map[string]int)}
}

func (p *procSinks) record(worker, id string) {
	p.mu.Lock()
	p.seen[id] = true
	p.per[worker]++
	p.mu.Unlock()
}

func (p *procSinks) busiest(min int) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w, n := range p.per {
		if n >= min {
			return w
		}
	}
	return ""
}

func (p *procSinks) count(worker string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.per[worker]
}

func (p *procSinks) ids() map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]bool, len(p.seen))
	for id := range p.seen {
		out[id] = true
	}
	return out
}

// buildBinary compiles the streammine command once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "streammine")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// scanLines feeds each stdout line of a child process to fn.
func scanLines(t *testing.T, cmd *exec.Cmd, fn func(line string)) {
	t.Helper()
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			fn(sc.Text())
		}
	}()
}

// runClusterProcesses spawns one coordinator and two worker processes over
// a shared state directory. With chaos set it SIGKILLs whichever worker
// externalizes sink output once the run is under way. With traceDir set,
// every process writes its lifecycle trace to <traceDir>/<proc>.jsonl.
// extraCoordArgs are appended to the coordinator invocation (engine-wide
// overrides like -batch ride the ASSIGN payload to the workers). Returns
// the distinct sink identity set externalized across all workers.
func runClusterProcesses(t *testing.T, bin, topo string, chaos bool, traceDir string, extraCoordArgs ...string) map[string]bool {
	t.Helper()
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(topoPath, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	traceArgs := func(proc string) []string {
		if traceDir == "" {
			return nil
		}
		return []string{"-trace", filepath.Join(traceDir, proc+".jsonl")}
	}

	coordArgs := []string{"-coordinator", "127.0.0.1:0", "-topology", topoPath, "-hb-timeout", "500ms"}
	coordArgs = append(coordArgs, extraCoordArgs...)
	coord := exec.Command(bin, append(coordArgs, traceArgs("coordinator")...)...)
	addrCh := make(chan string, 1)
	scanLines(t, coord, func(line string) {
		if rest, ok := strings.CutPrefix(line, "coordinator on "); ok {
			if i := strings.IndexByte(rest, ','); i >= 0 {
				select {
				case addrCh <- rest[:i]:
				default:
				}
			}
		}
	})
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Process.Kill() }()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never reported its address")
	}

	sinks := newProcSinks()
	stateDir := filepath.Join(dir, "state")
	workers := make(map[string]*exec.Cmd, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i+1)
		wk := exec.Command(bin, append([]string{"-worker", "-join", addr,
			"-name", name, "-state-dir", stateDir, "-hb-timeout", "500ms"},
			traceArgs(name)...)...)
		scanLines(t, wk, func(line string) {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[0] == "SINK" {
				sinks.record(name, fields[2])
			}
		})
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = wk.Process.Kill() }()
		workers[name] = wk
	}

	if chaos {
		deadline := time.Now().Add(20 * time.Second)
		var victim string
		for victim == "" {
			if time.Now().After(deadline) {
				t.Fatal("no worker produced sink output to kill")
			}
			victim = sinks.busiest(30)
			time.Sleep(5 * time.Millisecond)
		}
		t.Logf("SIGKILL %s after %d sink events", victim, sinks.count(victim))
		if err := workers[victim].Process.Kill(); err != nil {
			t.Fatalf("kill %s: %v", victim, err)
		}
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- coord.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("coordinator exited: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("cluster run did not complete")
	}
	// Give the surviving workers a moment to flush their last SINK lines.
	for name, wk := range workers {
		done := make(chan struct{})
		go func() { _ = wk.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Logf("worker %s still running after coordinator exit; killing", name)
			_ = wk.Process.Kill()
			<-done
		}
	}
	return sinks.ids()
}

// TestClusterProcessesFailover is the full multi-process chaos drill: a
// coordinator and two workers as real OS processes, SIGKILL of the worker
// holding the stateful sink partition, and identity-set equality between
// the recovered run and a failure-free run (the paper's precise-recovery
// criterion: no event lost, duplicates suppressed).
func TestClusterProcessesFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	baseline := runClusterProcesses(t, bin, e2eTopo, false, "")
	if len(baseline) != 1000 {
		t.Fatalf("baseline externalized %d distinct events, want 1000", len(baseline))
	}
	chaos := runClusterProcesses(t, bin, e2eTopo, true, "")
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %s missing from chaos run", id)
		}
	}
}

// TestClusterProcessesFailoverWithFlow SIGKILLs a worker mid-run with
// credit-based flow control active on the bridged cut edge (window 8, so
// the upstream bridge is credit-starved almost continuously at rate
// 1500). The reassigned partition's bridges must re-grant a fresh window
// on reconnect; precise recovery must externalize every event exactly
// once despite the bounded queues.
func TestClusterProcessesFailoverWithFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	chaos := runClusterProcesses(t, bin, e2eFlowTopo, true, "")
	if len(chaos) != 1000 {
		t.Fatalf("flow-controlled chaos run externalized %d distinct events, want 1000", len(chaos))
	}
}

// TestClusterProcessesFailoverBatched is the SIGKILL chaos drill with
// hot-path batching forced on for every node (`-batch 8` on the
// coordinator rides the ASSIGN payload to the workers): events cross the
// bridged cut edge in EVENT_BATCH frames, admission logs whole runs in
// one append, and the committer group-commits. Recovery must stay
// precise — identity-set equality between the batched chaos run and a
// batched failure-free run, so batching neither loses events nor leaks
// duplicates past suppression.
func TestClusterProcessesFailoverBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	baseline := runClusterProcesses(t, bin, e2eTopo, false, "", "-batch", "8")
	if len(baseline) != 1000 {
		t.Fatalf("batched baseline externalized %d distinct events, want 1000", len(baseline))
	}
	chaos := runClusterProcesses(t, bin, e2eTopo, true, "", "-batch", "8")
	if len(chaos) != len(baseline) {
		t.Fatalf("batched chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %s missing from batched chaos run", id)
		}
	}
}

// TestClusterTracedFailover is the distributed-latency-attribution chaos
// drill: the same two-worker SIGKILL failover, run with per-process
// lifecycle tracing on. The per-process JSONL files — including the
// killed worker's, which may end in a torn line — must merge into one
// coherent timeline in which (a) at least 99% of externalized events have
// a complete reconstructable lineage (trace ids are deterministic, so the
// replayed incarnation stitches into the original lineage), and (b) no
// span is attributable to a dead partition epoch.
func TestClusterTracedFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)
	traceDir := t.TempDir()
	ids := runClusterProcesses(t, bin, e2eTopo, true, traceDir)
	if len(ids) != 1000 {
		t.Fatalf("traced chaos run externalized %d distinct events, want 1000", len(ids))
	}

	files, err := filepath.Glob(filepath.Join(traceDir, "*.jsonl"))
	if err != nil || len(files) < 3 {
		t.Fatalf("trace files = %v (err %v), want coordinator + 2 workers", files, err)
	}
	set, err := tracetool.Load(files...)
	if err != nil {
		t.Fatalf("merging traces: %v", err)
	}
	t.Logf("merged %d spans from %d files (%d torn tails)", len(set.Spans), len(set.Files), set.TornTails)

	externalized, complete := 0, 0
	for _, l := range set.Lineages() {
		if !l.Has(metrics.PhaseExternalize) {
			continue
		}
		externalized++
		if l.Complete() {
			complete++
		}
	}
	if externalized < 1000 {
		t.Errorf("trace shows %d externalized lineages, want >= 1000", externalized)
	}
	if float64(complete) < 0.99*float64(externalized) {
		t.Errorf("only %d of %d externalized lineages are complete, want >= 99%%", complete, externalized)
	}

	// The epoch invariant must hold outright: a SIGKILLed process cannot
	// stamp spans after its partitions were reassigned.
	for _, err := range set.Validate() {
		if strings.Contains(err.Error(), "zombie") {
			t.Errorf("dead-epoch violation: %v", err)
		}
	}

	// The reassignment must be visible as an epoch bump in the merged
	// trace: some partition must have records from two different procs.
	owners := make(map[int]map[string]bool)
	for _, e := range set.Epochs() {
		if owners[e.Partition] == nil {
			owners[e.Partition] = make(map[string]bool)
		}
		owners[e.Partition][e.Proc] = true
	}
	moved := false
	for _, procs := range owners {
		if len(procs) > 1 {
			moved = true
		}
	}
	if !moved {
		t.Error("no partition shows epoch records from two processes; failover not captured in trace")
	}
}
