package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTopo(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadExampleTopology(t *testing.T) {
	path := writeTopo(t, exampleTopology)
	cfg, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.sources) != 2 {
		t.Fatalf("sources = %d", len(built.sources))
	}
	if len(built.sinks) != 1 {
		t.Fatalf("sinks = %d", len(built.sinks))
	}
	if err := built.graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAllNodeTypes(t *testing.T) {
	path := writeTopo(t, `{
		"speculative": true,
		"nodes": [
			{"name": "src", "type": "source", "rate": 100, "count": 10},
			{"name": "shed", "type": "shedder", "dropPerMille": 100, "inputs": ["src"]},
			{"name": "pat", "type": "pattern", "stages": [1,2], "buckets": 32, "inputs": ["shed"]},
			{"name": "dc", "type": "distinct_count", "precision": 8, "inputs": ["pat"]},
			{"name": "dd", "type": "dedup", "buckets": 64, "inputs": ["dc"]},
			{"name": "spl", "type": "split", "outputs": 2, "key": "hash", "inputs": ["dd"]},
			{"name": "enr", "type": "enrich", "costMicros": 10, "inputs": ["spl:0"]},
			{"name": "flt", "type": "filter_even", "inputs": ["spl:1"]},
			{"name": "agg", "type": "count_window_avg", "window": 5, "inputs": ["enr"]},
			{"name": "tws", "type": "time_window_sum", "width": 100, "inputs": ["flt"]},
			{"name": "sk", "type": "sketch", "depth": 3, "width": 64, "inputs": ["agg"]},
			{"name": "out1", "type": "sink", "inputs": ["sk"]},
			{"name": "out2", "type": "sink", "inputs": ["tws"]}
		]
	}`)
	cfg, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(built.graph.Nodes()); got != 13 {
		t.Fatalf("nodes = %d, want 13", got)
	}
	if len(built.sinks) != 2 {
		t.Fatalf("sinks = %d", len(built.sinks))
	}
}

func TestBuildErrors(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"empty", `{"nodes": []}`},
		{"bad json", `{`},
		{"unknown type", `{"nodes": [{"name": "x", "type": "teleporter"}]}`},
		{"unknown input", `{"nodes": [{"name": "a", "type": "sink", "inputs": ["ghost"]}]}`},
		{"cycle", `{"nodes": [
			{"name": "a", "type": "passthrough", "inputs": ["b"]},
			{"name": "b", "type": "passthrough", "inputs": ["a"]}
		]}`},
		{"dup names", `{"nodes": [
			{"name": "a", "type": "source"},
			{"name": "a", "type": "sink", "inputs": ["a"]}
		]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := writeTopo(t, tt.body)
			cfg, err := LoadTopology(path)
			if err != nil {
				return // load-stage rejection is fine
			}
			if _, err := cfg.Build(); err == nil {
				t.Fatalf("topology %q built without error", tt.name)
			}
		})
	}
}

func TestLoadTopologyMissingFile(t *testing.T) {
	if _, err := LoadTopology("/does/not/exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSplitRef(t *testing.T) {
	tests := []struct {
		in   string
		name string
		port int
	}{
		{"node", "node", 0},
		{"node:1", "node", 1},
		{"node:12", "node", 12},
		{"weird:x", "weird:x", 0},
	}
	for _, tt := range tests {
		name, port := splitRef(tt.in)
		if name != tt.name || port != tt.port {
			t.Errorf("splitRef(%q) = %q,%d want %q,%d", tt.in, name, port, tt.name, tt.port)
		}
	}
}

func TestNodeSpeculativeOverride(t *testing.T) {
	path := writeTopo(t, `{
		"speculative": true,
		"nodes": [
			{"name": "src", "type": "source"},
			{"name": "a", "type": "passthrough", "inputs": ["src"]},
			{"name": "b", "type": "passthrough", "speculative": false, "inputs": ["a"]}
		]
	}`)
	cfg, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	nodes := built.graph.Nodes()
	if !nodes[1].Speculative {
		t.Fatal("default speculative not applied")
	}
	if nodes[2].Speculative {
		t.Fatal("per-node override not applied")
	}
}
