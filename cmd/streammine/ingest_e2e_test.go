package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streammine/internal/ingest"
	"streammine/internal/operator"
)

// ingestE2ETopo feeds the pipeline from the network instead of a paced
// synthetic source: "src" is gateway-fed, pinned to one worker, with the
// stateful classify stage and the sink on the other. Killing the
// ingest-hosting worker forces the full edge failover: the coordinator
// reassigns the source partition to the survivor, whose gateway replays
// the admission log from the shared state directory (re-deriving the
// crashed incarnation's event identities), rebuilds the per-tenant
// sequence floors, and only then accepts the clients' resends.
const ingestE2ETopo = `{
  "speculative": true,
  "seed": 7,
  "nodes": [
    {"name": "src",      "type": "source", "ingest": true},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// Three tenants, one per concurrent client, each with its own contiguous
// sequence space. No rate quotas: the chaos drill is about durability,
// not shedding (internal/ingest's own tests cover the quota paths).
const ingestE2ETenants = `[
  {"name": "t0", "token": "tok-0"},
  {"name": "t1", "token": "tok-1"},
  {"name": "t2", "token": "tok-2"}
]`

const (
	ingestE2EClients   = 3
	ingestE2EPerClient = 600
	ingestE2EBatch     = 30
	ingestE2ETotal     = ingestE2EClients * ingestE2EPerClient
)

// ingestSinks collects "SINK <name> <id>" lines with multiplicity: a
// finalized event printed twice would mean duplicate suppression leaked a
// replayed or retried record past externalization.
type ingestSinks struct {
	mu     sync.Mutex
	counts map[string]int
	total  int
}

func newIngestSinks() *ingestSinks {
	return &ingestSinks{counts: make(map[string]int)}
}

func (s *ingestSinks) record(id string) {
	s.mu.Lock()
	s.counts[id]++
	s.total++
	s.mu.Unlock()
}

func (s *ingestSinks) distinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counts)
}

func (s *ingestSinks) snapshot() (ids map[string]bool, dupPrints int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids = make(map[string]bool, len(s.counts))
	for id, n := range s.counts {
		ids[id] = true
		if n > 1 {
			dupPrints += n - 1
		}
	}
	return ids, dupPrints
}

// gatewayHost tracks which worker's gateway is currently accepting the
// "src" stream. Workers log the registration line both at initial
// assignment and after a failover reassignment, so the generation counter
// is the clients' signal that the stream moved.
type gatewayHost struct {
	mu   sync.Mutex
	name string
	addr string
	gen  int
}

func (g *gatewayHost) set(name, addr string) {
	g.mu.Lock()
	g.name, g.addr = name, addr
	g.gen++
	g.mu.Unlock()
}

func (g *gatewayHost) get() (name, addr string, gen int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.name, g.addr, g.gen
}

// runIngestClient delivers one tenant's full journal through whatever
// gateway currently hosts the stream. After a gateway death it reconnects
// and resends the journal from sequence 1 — the at-least-once producer
// protocol — and relies on the rebuilt floors to absorb the acknowledged
// prefix as duplicates. Returns the duplicate count the servers reported.
func runIngestClient(t *testing.T, gws *gatewayHost, idx int, deadline time.Time) (uint64, error) {
	t.Helper()
	journal := make([]ingest.Record, ingestE2EPerClient)
	for j := range journal {
		key := uint64(idx)<<32 | uint64(j)
		journal[j] = ingest.Record{Key: key, Payload: operator.EncodeValue(key)}
	}
	token := fmt.Sprintf("tok-%d", idx)
	var dups uint64
	for time.Now().Before(deadline) {
		_, addr, gen := gws.get()
		c := ingest.NewClient(addr, "src", ingest.ClientOptions{
			Token:      token,
			Backoff:    10 * time.Millisecond,
			MaxElapsed: 4 * time.Second,
		})
		err := func() error {
			for off := 0; off < len(journal); off += ingestE2EBatch {
				end := off + ingestE2EBatch
				if end > len(journal) {
					end = len(journal)
				}
				if err := c.Send(journal[off:end]); err != nil {
					return err
				}
				// Pace the offered load so the SIGKILL below lands while
				// every client still has records in flight.
				time.Sleep(15 * time.Millisecond)
			}
			return nil
		}()
		dups = c.Dups()
		c.Close()
		if err == nil {
			return dups, nil
		}
		t.Logf("client %d: %v; waiting for the stream to re-register", idx, err)
		waitUntil := time.Now().Add(5 * time.Second)
		for time.Now().Before(waitUntil) {
			if _, _, g := gws.get(); g != gen {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return dups, fmt.Errorf("client %d: journal not delivered before deadline", idx)
}

// runIngestCluster spawns a coordinator and two gateway-running workers,
// drives the topology with concurrent network clients, and (with chaos
// set) SIGKILLs the worker hosting the ingest stream mid-stream. Returns
// the externalized identity set, the count of double-printed sink events,
// and the total duplicates the gateways reported to the clients.
func runIngestCluster(t *testing.T, bin string, chaos bool) (map[string]bool, int, uint64) {
	t.Helper()
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(topoPath, []byte(ingestE2ETopo), 0o644); err != nil {
		t.Fatal(err)
	}
	tenantsPath := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(tenantsPath, []byte(ingestE2ETenants), 0o644); err != nil {
		t.Fatal(err)
	}

	coord := exec.Command(bin, "-coordinator", "127.0.0.1:0", "-topology", topoPath, "-hb-timeout", "500ms")
	addrCh := make(chan string, 1)
	scanLines(t, coord, func(line string) {
		if rest, ok := strings.CutPrefix(line, "coordinator on "); ok {
			if i := strings.IndexByte(rest, ','); i >= 0 {
				select {
				case addrCh <- rest[:i]:
				default:
				}
			}
		}
	})
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Process.Kill() }()

	var coordAddr string
	select {
	case coordAddr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never reported its address")
	}

	sinks := newIngestSinks()
	gws := &gatewayHost{}
	stateDir := filepath.Join(dir, "state")
	workers := make(map[string]*exec.Cmd, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i+1)
		wk := exec.Command(bin, "-worker", "-join", coordAddr, "-name", name,
			"-state-dir", stateDir, "-hb-timeout", "500ms",
			"-ingest-addr", "127.0.0.1:0", "-ingest-tenants", tenantsPath)
		scanLines(t, wk, func(line string) {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[0] == "SINK" {
				sinks.record(fields[2])
				return
			}
			// `[wN] partition 0: ingest source "src" accepting on ADDR`
			if i := strings.Index(line, `ingest source "src" accepting on `); i >= 0 {
				addr := strings.TrimSpace(line[i+len(`ingest source "src" accepting on `):])
				gws.set(name, addr)
			}
		})
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = wk.Process.Kill() }()
		workers[name] = wk
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, addr, _ := gws.get(); addr != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no worker registered the ingest stream")
		}
		time.Sleep(10 * time.Millisecond)
	}

	clientDeadline := time.Now().Add(90 * time.Second)
	var clientDups atomic.Uint64
	clientErrs := make(chan error, ingestE2EClients)
	for i := 0; i < ingestE2EClients; i++ {
		go func(i int) {
			dups, err := runIngestClient(t, gws, i, clientDeadline)
			clientDups.Add(dups)
			clientErrs <- err
		}(i)
	}

	if chaos {
		killDeadline := time.Now().Add(30 * time.Second)
		for sinks.distinct() < ingestE2ETotal/10 {
			if time.Now().After(killDeadline) {
				t.Fatal("sink output never reached the chaos threshold")
			}
			time.Sleep(5 * time.Millisecond)
		}
		victim, addr, _ := gws.get()
		t.Logf("SIGKILL %s (gateway %s) after %d sink events", victim, addr, sinks.distinct())
		if err := workers[victim].Process.Kill(); err != nil {
			t.Fatalf("kill %s: %v", victim, err)
		}
	}

	for i := 0; i < ingestE2EClients; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatal(err)
		}
	}

	// Ingest-fed partitions are open-ended (producers may reconnect), so
	// the coordinator never reports the run complete; wait for the sinks
	// to drain the acknowledged records instead.
	drainDeadline := time.Now().Add(60 * time.Second)
	for sinks.distinct() < ingestE2ETotal {
		if time.Now().After(drainDeadline) {
			t.Fatalf("sinks externalized %d distinct events, want %d", sinks.distinct(), ingestE2ETotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Settle briefly so a late duplicate print (replay leaking past
	// suppression) would be caught rather than raced past.
	time.Sleep(500 * time.Millisecond)
	ids, dupPrints := sinks.snapshot()
	return ids, dupPrints, clientDups.Load()
}

// TestClusterIngestFailover is the network-fed chaos drill the ingest
// gateway exists for: three concurrent clients (one tenant each) stream
// through the gateway while the worker hosting it is SIGKILLed
// mid-stream. The coordinator reassigns the source partition to the
// surviving worker, whose gateway replays the shared admission log —
// re-deriving the dead incarnation's event identities so downstream
// duplicate suppression holds — and rebuilds tenant floors so the
// clients' from-the-top resends dedup instead of duplicating. Every
// acknowledged record must survive: the externalized identity set equals
// the failure-free run's, with no sink event printed twice.
func TestClusterIngestFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)

	baseline, dupPrints, _ := runIngestCluster(t, bin, false)
	if len(baseline) != ingestE2ETotal {
		t.Fatalf("baseline externalized %d distinct events, want %d", len(baseline), ingestE2ETotal)
	}
	if dupPrints != 0 {
		t.Fatalf("baseline printed %d duplicate sink events", dupPrints)
	}

	chaos, dupPrints, clientDups := runIngestCluster(t, bin, true)
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %s missing from chaos run", id)
		}
	}
	if dupPrints != 0 {
		t.Fatalf("chaos run printed %d duplicate sink events; retries or replay leaked past suppression", dupPrints)
	}
	if clientDups == 0 {
		t.Fatal("no client resend was absorbed as a duplicate; the failover dedup path was not exercised")
	}
}
