package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"streammine/internal/ingest"
	"streammine/internal/operator"
	"streammine/internal/procharness"
)

// ingestE2ETopo feeds the pipeline from the network instead of a paced
// synthetic source: "src" is gateway-fed, pinned to one worker, with the
// stateful classify stage and the sink on the other. Killing the
// ingest-hosting worker forces the full edge failover: the coordinator
// reassigns the source partition to the survivor, whose gateway replays
// the admission log from the shared state directory (re-deriving the
// crashed incarnation's event identities), rebuilds the per-tenant
// sequence floors, and only then accepts the clients' resends.
const ingestE2ETopo = `{
  "speculative": true,
  "seed": 7,
  "nodes": [
    {"name": "src",      "type": "source", "ingest": true},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// Three tenants, one per concurrent client, each with its own contiguous
// sequence space. No rate quotas: the chaos drill is about durability,
// not shedding (internal/ingest's own tests cover the quota paths).
const ingestE2ETenants = `[
  {"name": "t0", "token": "tok-0"},
  {"name": "t1", "token": "tok-1"},
  {"name": "t2", "token": "tok-2"}
]`

const (
	ingestE2EClients   = 3
	ingestE2EPerClient = 600
	ingestE2EBatch     = 30
	ingestE2ETotal     = ingestE2EClients * ingestE2EPerClient
)

// runIngestClient delivers one tenant's full journal through whatever
// gateway currently hosts the stream. After a gateway death it reconnects
// and resends the journal from sequence 1 — the at-least-once producer
// protocol — and relies on the rebuilt floors to absorb the acknowledged
// prefix as duplicates. Returns the duplicate count the servers reported.
func runIngestClient(t *testing.T, gws *procharness.Gateways, idx int, deadline time.Time) (uint64, error) {
	t.Helper()
	journal := make([]ingest.Record, ingestE2EPerClient)
	for j := range journal {
		key := uint64(idx)<<32 | uint64(j)
		journal[j] = ingest.Record{Key: key, Payload: operator.EncodeValue(key)}
	}
	token := fmt.Sprintf("tok-%d", idx)
	var dups uint64
	for time.Now().Before(deadline) {
		reg, _ := gws.Get("src")
		c := ingest.NewClient(reg.Addr, "src", ingest.ClientOptions{
			Token:      token,
			Backoff:    10 * time.Millisecond,
			MaxElapsed: 4 * time.Second,
		})
		err := func() error {
			for off := 0; off < len(journal); off += ingestE2EBatch {
				end := off + ingestE2EBatch
				if end > len(journal) {
					end = len(journal)
				}
				if err := c.Send(journal[off:end]); err != nil {
					return err
				}
				// Pace the offered load so the SIGKILL below lands while
				// every client still has records in flight.
				time.Sleep(15 * time.Millisecond)
			}
			return nil
		}()
		dups = c.Dups()
		c.Close()
		if err == nil {
			return dups, nil
		}
		t.Logf("client %d: %v; waiting for the stream to re-register", idx, err)
		waitUntil := time.Now().Add(5 * time.Second)
		for time.Now().Before(waitUntil) {
			if cur, _ := gws.Get("src"); cur.Gen != reg.Gen {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return dups, fmt.Errorf("client %d: journal not delivered before deadline", idx)
}

// runIngestCluster spawns a coordinator and two gateway-running workers
// via procharness, drives the topology with concurrent network clients,
// and (with chaos set) SIGKILLs the worker hosting the ingest stream
// mid-stream. Returns the externalized identity set, the count of
// double-printed sink events, and the total duplicates the gateways
// reported to the clients.
func runIngestCluster(t *testing.T, bin string, chaos bool) (map[string]bool, int, uint64) {
	t.Helper()
	dir := t.TempDir()
	tenantsPath := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(tenantsPath, []byte(ingestE2ETenants), 0o644); err != nil {
		t.Fatal(err)
	}

	cl, err := procharness.Start(procharness.Options{
		Bin:        bin,
		Topology:   ingestE2ETopo,
		Dir:        dir,
		Workers:    2,
		HBTimeout:  500 * time.Millisecond,
		WorkerArgs: []string{"-ingest-addr", "127.0.0.1:0", "-ingest-tenants", tenantsPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Gateways.Wait("src", 15*time.Second); err != nil {
		t.Fatal(err)
	}

	clientDeadline := time.Now().Add(90 * time.Second)
	var clientDups atomic.Uint64
	clientErrs := make(chan error, ingestE2EClients)
	for i := 0; i < ingestE2EClients; i++ {
		go func(i int) {
			dups, err := runIngestClient(t, cl.Gateways, i, clientDeadline)
			clientDups.Add(dups)
			clientErrs <- err
		}(i)
	}

	if chaos {
		if err := cl.Sinks.WaitDistinct(ingestE2ETotal/10, 30*time.Second); err != nil {
			t.Fatalf("sink output never reached the chaos threshold: %v", err)
		}
		reg, _ := cl.Gateways.Get("src")
		t.Logf("SIGKILL %s (gateway %s) after %d sink events", reg.Worker, reg.Addr, cl.Sinks.Distinct())
		if err := cl.KillWorker(reg.Worker); err != nil {
			t.Fatalf("kill %s: %v", reg.Worker, err)
		}
	}

	for i := 0; i < ingestE2EClients; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatal(err)
		}
	}

	// Ingest-fed partitions are open-ended (producers may reconnect), so
	// the coordinator never reports the run complete; wait for the sinks
	// to drain the acknowledged records instead.
	if err := cl.Sinks.WaitDistinct(ingestE2ETotal, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Settle briefly so a late duplicate print (replay leaking past
	// suppression) would be caught rather than raced past.
	time.Sleep(500 * time.Millisecond)
	ids, dupPrints := cl.Sinks.Snapshot()
	return ids, dupPrints, clientDups.Load()
}

// TestClusterIngestFailover is the network-fed chaos drill the ingest
// gateway exists for: three concurrent clients (one tenant each) stream
// through the gateway while the worker hosting it is SIGKILLed
// mid-stream. The coordinator reassigns the source partition to the
// surviving worker, whose gateway replays the shared admission log —
// re-deriving the dead incarnation's event identities so downstream
// duplicate suppression holds — and rebuilds tenant floors so the
// clients' from-the-top resends dedup instead of duplicating. Every
// acknowledged record must survive: the externalized identity set equals
// the failure-free run's, with no sink event printed twice.
func TestClusterIngestFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: builds a binary and runs multi-second failure detection")
	}
	bin := buildBinary(t)

	baseline, dupPrints, _ := runIngestCluster(t, bin, false)
	if len(baseline) != ingestE2ETotal {
		t.Fatalf("baseline externalized %d distinct events, want %d", len(baseline), ingestE2ETotal)
	}
	if dupPrints != 0 {
		t.Fatalf("baseline printed %d duplicate sink events", dupPrints)
	}

	chaos, dupPrints, clientDups := runIngestCluster(t, bin, true)
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %s missing from chaos run", id)
		}
	}
	if dupPrints != 0 {
		t.Fatalf("chaos run printed %d duplicate sink events; retries or replay leaked past suppression", dupPrints)
	}
	if clientDups == 0 {
		t.Fatal("no client resend was absorbed as a duplicate; the failover dedup path was not exercised")
	}
}
