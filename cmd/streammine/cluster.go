package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streammine/internal/cluster"
	"streammine/internal/event"
	"streammine/internal/ingest"
	"streammine/internal/metrics"
	"streammine/internal/topology"
)

// ingestFlagsConfig folds the -ingest-* flags into a gateway config.
// Addr stays empty here; the caller sets it so "no -ingest-addr" keeps
// the gateway off in every mode.
func ingestFlagsConfig(addr, stateDir, tenantsPath, tlsCert, tlsKey string) (ingest.Config, error) {
	cfg := ingest.Config{StateDir: stateDir, TLSCert: tlsCert, TLSKey: tlsKey}
	if (tlsCert == "") != (tlsKey == "") {
		return cfg, fmt.Errorf("-ingest-tls-cert and -ingest-tls-key must be given together")
	}
	if tenantsPath != "" {
		tenants, err := ingest.LoadTenants(tenantsPath)
		if err != nil {
			return cfg, err
		}
		cfg.Tenants = tenants
	}
	if addr == "" && (stateDir != "" || tenantsPath != "" || tlsCert != "") {
		return cfg, fmt.Errorf("-ingest-state-dir, -ingest-tenants and -ingest-tls-* require -ingest-addr")
	}
	return cfg, nil
}

// runCoordinator serves the cluster control plane: it waits for workers,
// deploys the topology across them per its placement section, supervises
// heartbeats, and reassigns partitions when a worker dies. -batch /
// -batch-linger are folded into the topology before deployment so every
// worker builds its partitions with the same batching configuration.
func runCoordinator(topoPath, addr string, workers int, hbTimeout, slo time.Duration, batch int, batchLinger time.Duration, obs *observability) error {
	if topoPath == "" {
		return fmt.Errorf("usage: streammine -coordinator ADDR -topology pipeline.json")
	}
	data, err := os.ReadFile(topoPath)
	if err != nil {
		return fmt.Errorf("read topology: %w", err)
	}
	if batch > 0 || batchLinger > 0 {
		cfg, err := topology.Parse(data)
		if err != nil {
			return err
		}
		cfg.ApplyBatch(batch, batchLinger)
		if data, err = json.Marshal(cfg); err != nil {
			return fmt.Errorf("re-encode topology: %w", err)
		}
	}
	c, err := cluster.NewCoordinator(data, cluster.CoordinatorOptions{
		Addr:             addr,
		Workers:          workers,
		HeartbeatTimeout: hbTimeout,
		SLO:              slo,
		Metrics:          obs.registry,
		Logf:             logfFor("coordinator"),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := obs.serve(c.Err); err != nil {
		return err
	}
	if obs.server != nil {
		// /healthz carries the per-partition queue-depth / credit snapshot
		// folded from worker STATUS reports.
		obs.server.SetPressure(pressureJSON(func() any { return c.Pressure() }))
		// /debug/cluster merges membership, partition phases and (when
		// workers run -profile-speculation) the cluster-wide waste rollup.
		obs.server.SetCluster(func() any { return c.View() })
		// /debug/health is the live diagnosis surface: SLO budget
		// attribution, backpressure root-cause chains, straggler flags.
		obs.server.SetHealth(func() any { return c.Health() })
		obs.server.SetRecovery(func() any { return c.RecoveryReport() })
		obs.server.SetSpeculation(func() any {
			if s := c.Waste(); s != nil {
				return s
			}
			return nil
		})
	}
	fmt.Printf("coordinator on %s, waiting for workers\n", c.Addr())
	select {
	case <-c.Done():
	case <-interrupted():
		fmt.Println("interrupted; stopping workers")
	}
	return c.Err()
}

// runWorker joins a coordinator and hosts whatever partitions it assigns.
// Finalized sink events are printed one per line ("SINK <name> <id>") so
// callers can collect the externalized output of a distributed run.
func runWorker(name, join, dataAddr, stateDir string, hbTimeout time.Duration, profileSpec bool, icfg ingest.Config, obs *observability) error {
	if join == "" {
		return fmt.Errorf("usage: streammine -worker -join ADDR [-name N] [-state-dir DIR]")
	}
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	onSink := printSinkEvent
	if tr := obs.tracer; tr != nil {
		// Externalization closes the lineage: it is the only span emitted
		// outside the engine, from the worker that hosts the sink.
		onSink = func(sink string, ev event.Event) {
			tr.RecordTrace(sink, ev.ID.String(), ev.Trace, metrics.PhaseExternalize, "")
			printSinkEvent(sink, ev)
		}
	}
	w, err := cluster.StartWorker(cluster.WorkerOptions{
		Name:               name,
		CoordAddr:          join,
		DataAddr:           dataAddr,
		StateDir:           stateDir,
		HeartbeatTimeout:   hbTimeout,
		Metrics:            obs.registry,
		Tracer:             obs.tracer,
		OnSinkEvent:        onSink,
		Ingest:             icfg,
		Logf:               logfFor(name),
		ProfileSpeculation: profileSpec,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	if gw := w.Ingest(); gw != nil {
		fmt.Printf("INGEST %s\n", gw.Addr())
	}
	if err := obs.serve(w.Err); err != nil {
		return err
	}
	if obs.server != nil {
		obs.server.SetDraining(func() bool {
			gw := w.Ingest()
			return gw != nil && gw.Draining()
		})
		// /healthz answers "degraded: coordinator" / "degraded: bridge ..."
		// while a peer this worker depends on is unreachable, plus the
		// flow-control pressure snapshot of the hosted partitions.
		obs.server.SetDegraded(w.Degraded)
		obs.server.SetPressure(pressureJSON(func() any { return w.Pressure() }))
		if profileSpec {
			obs.server.SetSpeculation(func() any {
				if s := w.Waste(); s != nil {
					return s
				}
				return nil
			})
		}
	}
	fmt.Printf("worker %q joined %s (data %s)\n", name, join, w.DataAddr())
	select {
	case <-w.Done():
	case <-interrupted():
		if gw := w.Ingest(); gw != nil {
			fmt.Println("interrupted; draining ingest gateway")
			gw.Drain(3 * time.Second)
		}
		fmt.Println("interrupted; shutting down")
	}
	return w.Err()
}

func printSinkEvent(sink string, ev event.Event) {
	fmt.Printf("SINK %s %s\n", sink, ev.ID)
}

// pressureJSON adapts a pressure snapshot provider to the debug server's
// /healthz line format. Empty snapshots produce no output.
func pressureJSON(fn func() any) func() string {
	return func() string {
		v := fn()
		data, err := json.Marshal(v)
		if err != nil || string(data) == "null" || string(data) == "[]" {
			return ""
		}
		return "pressure: " + string(data)
	}
}

func logfFor(role string) func(string, ...any) {
	return func(format string, args ...any) {
		fmt.Printf("[%s] "+format+"\n", append([]any{role}, args...)...)
	}
}

func interrupted() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}
