// Command doccheck keeps the documentation honest. It walks the
// repository and fails when either
//
//   - a markdown file contains a relative (intra-repo) link whose target
//     file does not exist — dead links accumulate silently as files move
//     across PRs; or
//   - a command-line flag registered in cmd/ never appears in any
//     markdown file — every knob must be documented somewhere (README.md,
//     DESIGN.md or docs/).
//
// make doccheck runs it as part of make check and CI.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links and captures the target. Images
// and reference-style definitions are close enough in shape that the
// same pattern covers them.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// flagDef matches direct flag registrations (flag.String("name", ...));
// flagVarDef matches the pointer variants (flag.StringVar(&v, "name",
// ...)). Only the name argument is captured — defaults and usage strings
// must not leak into the inventory.
var (
	flagDef    = regexp.MustCompile(`flag\.(?:String|Int64|Int|Bool|Duration|Float64|Uint64|Uint)\(\s*"([^"]+)"`)
	flagVarDef = regexp.MustCompile(`flag\.(?:String|Int64|Int|Bool|Duration|Float64|Uint64|Uint)Var\(\s*&?[\w.\[\]]+,\s*"([^"]+)"`)
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkLinks(root)...)
	problems = append(problems, checkFlags(root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// markdownFiles returns every tracked .md file under root, skipping the
// git metadata directory.
func markdownFiles(root string) []string {
	var out []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			out = append(out, path)
		}
		return nil
	})
	return out
}

// checkLinks verifies every relative markdown link resolves to an
// existing file or directory. External schemes, pure anchors and
// placeholder targets generated into bench/trace output paths are out of
// scope.
func checkLinks(root string) []string {
	var problems []string
	for _, md := range markdownFiles(root) {
		data, err := os.ReadFile(md)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", md, err))
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			// Templated or generated names (BENCH_<rev>.json) cannot be
			// checked against the working tree.
			if strings.ContainsAny(target, "<>*$") {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: dead link %q (no such file %s)", md, m[1], resolved))
			}
		}
	}
	return problems
}

// checkFlags verifies every flag registered in cmd/ is mentioned, as
// "-name", in the user-facing documentation set: README.md, DESIGN.md,
// EXPERIMENTS.md and docs/. Work-tracking files (ISSUE.md, CHANGES.md,
// ROADMAP.md) do not count as documentation.
func checkFlags(root string) []string {
	var docs strings.Builder
	for _, md := range markdownFiles(root) {
		rel, err := filepath.Rel(root, md)
		if err != nil {
			rel = md
		}
		switch {
		case strings.HasPrefix(rel, "docs"+string(filepath.Separator)):
		case rel == "README.md" || rel == "DESIGN.md" || rel == "EXPERIMENTS.md":
		default:
			continue
		}
		data, err := os.ReadFile(md)
		if err != nil {
			continue
		}
		docs.Write(data)
		docs.WriteByte('\n')
	}
	corpus := docs.String()

	var problems []string
	_ = filepath.WalkDir(filepath.Join(root, "cmd"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		src := string(data)
		seen := map[string]bool{}
		for _, re := range []*regexp.Regexp{flagVarDef, flagDef} {
			for _, m := range re.FindAllStringSubmatch(src, -1) {
				name := m[1]
				if seen[name] {
					continue
				}
				seen[name] = true
				if !strings.Contains(corpus, "-"+name) {
					problems = append(problems, fmt.Sprintf("%s: flag -%s is documented nowhere (add it to README.md or docs/)", path, name))
				}
			}
		}
		return nil
	})
	return problems
}
