package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"streammine/internal/detrand"
	"streammine/internal/ingest"
	"streammine/internal/metrics"
)

// loadgen drives an ingest gateway with open-loop, deficit-paced traffic
// from N concurrent clients — the tool behind the ingest throughput and
// backpressure numbers in docs/INGEST.md. Each client owns one tenant
// sequence space (its own connection), paces to rate/clients records per
// second modulated by the selected curve, and reports batch-ACK latency
// quantiles plus the retry/dedup counts its at-least-once resends
// produced.

type loadgenCfg struct {
	on      *bool
	addr    *string
	stream  *string
	token   *string
	rate    *int
	count   *int
	clients *int
	batch   *int
	payload *int
	curve   *string
	seed    *uint64
	tlsSkip *bool
}

func loadgenFlags() *loadgenCfg {
	return &loadgenCfg{
		on:      flag.Bool("loadgen", false, "run the ingest load generator instead of the paper experiments"),
		addr:    flag.String("addr", "127.0.0.1:9200", "with -loadgen: ingest gateway address"),
		stream:  flag.String("stream", "src", "with -loadgen: target stream (topology source name)"),
		token:   flag.String("token", "", "with -loadgen: tenant bearer token, or a comma-separated list assigned to clients round-robin; empty gives each client its own token (open gateways map each to its own tenant)"),
		rate:    flag.Int("rate", 5000, "with -loadgen: offered records/second across all clients"),
		count:   flag.Int("count", 50000, "with -loadgen: records per client"),
		clients: flag.Int("clients", 4, "with -loadgen: concurrent client connections"),
		batch:   flag.Int("batch", 64, "with -loadgen: records per BATCH frame"),
		payload: flag.Int("payload", 64, "with -loadgen: payload bytes per record"),
		curve:   flag.String("curve", "steady", "with -loadgen: offered-load shape: steady, burst or diurnal"),
		seed:    flag.Uint64("seed", 0, "with -loadgen: draw record keys and payload bytes from a deterministic PRNG seeded here, so repeated runs offer identical (but realistically distributed) traffic; 0 keeps the legacy sequential keys and fixed payload"),
		tlsSkip: flag.Bool("tls-insecure", false, "with -loadgen: dial TLS without certificate verification"),
	}
}

func (c *loadgenCfg) enabled() bool { return *c.on }

// curveFactor modulates the offered rate at time t: steady holds 1.0,
// burst alternates 2 s of 2x with 2 s of nearly idle, diurnal sweeps a
// 20 s sinusoid between 0.2x and 1.8x.
func curveFactor(curve string, t time.Duration) float64 {
	switch curve {
	case "burst":
		if int(t.Seconds())%4 < 2 {
			return 2.0
		}
		return 0.05
	case "diurnal":
		return 1.0 + 0.8*math.Sin(2*math.Pi*t.Seconds()/20)
	default:
		return 1.0
	}
}

func (c *loadgenCfg) run() error {
	if *c.clients < 1 {
		*c.clients = 1
	}
	perClient := float64(*c.rate) / float64(*c.clients)
	payload := make([]byte, *c.payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Each client needs its own tenant sequence space: clients sharing a
	// tenant interleave in one space and dedup each other. Empty -token
	// synthesizes one token per client (an open gateway maps each to its
	// own tenant); a comma-separated list is assigned round-robin so a
	// tenant-configured gateway can spread clients across real tenants.
	tokens := strings.Split(*c.token, ",")
	tokenFor := func(ci int) string {
		if *c.token == "" {
			return fmt.Sprintf("loadgen-%d", ci)
		}
		return tokens[ci%len(tokens)]
	}
	var tlsCfg *tls.Config
	if *c.tlsSkip {
		tlsCfg = &tls.Config{InsecureSkipVerify: true}
	}
	fmt.Printf("loadgen: %d clients → %s stream %q, %d rec/s offered (%s curve), %d records each\n",
		*c.clients, *c.addr, *c.stream, *c.rate, *c.curve, *c.count)

	ackHist := metrics.NewHDR()
	var mu sync.Mutex
	var totalAcked, totalDups, totalRetries uint64
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *c.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := ingest.NewClient(*c.addr, *c.stream, ingest.ClientOptions{Token: tokenFor(ci), TLS: tlsCfg})
			defer cl.Close()
			// With -seed, keys and payload come from a per-client
			// deterministic stream: repeated runs offer byte-identical
			// traffic (key skew and all), which is what makes loadgen
			// results comparable across campaign and A/B runs.
			var rng *detrand.Source
			clientPayload := payload
			if *c.seed != 0 {
				rng = detrand.New(*c.seed).Fork()
				for i := 0; i < ci; i++ {
					rng = rng.Fork()
				}
				clientPayload = make([]byte, *c.payload)
				for i := range clientPayload {
					clientPayload[i] = byte(rng.Uint64())
				}
			}
			sent := 0
			for sent < *c.count {
				// Open-loop deficit pacing: emit whatever the modulated
				// rate says is due, sleep a tick, repeat.
				due := int(time.Since(start).Seconds()*perClient*curveFactor(*c.curve, time.Since(start))) + 1
				if due > *c.count {
					due = *c.count
				}
				for sent < due {
					n := due - sent
					if n > *c.batch {
						n = *c.batch
					}
					recs := make([]ingest.Record, n)
					for i := range recs {
						key := uint64(ci)<<32 | uint64(sent+i)
						if rng != nil {
							key = rng.Uint64()
						}
						recs[i] = ingest.Record{Key: key, Payload: clientPayload}
					}
					t0 := time.Now()
					if err := cl.Send(recs); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("client %d: %w", ci, err)
						}
						mu.Unlock()
						return
					}
					ackHist.Record(time.Since(t0))
					sent += n
				}
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			totalAcked += cl.Acked()
			totalDups += cl.Dups()
			totalRetries += cl.Retries()
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	fmt.Printf("loadgen: acked=%d dups=%d retries=%d elapsed=%v achieved=%.0f rec/s\n",
		totalAcked, totalDups, totalRetries, elapsed.Round(time.Millisecond),
		float64(totalAcked)/elapsed.Seconds())
	fmt.Printf("loadgen: batch ack latency p50=%v p99=%v max=%v\n",
		ackHist.QuantileDuration(0.5), ackHist.QuantileDuration(0.99),
		time.Duration(ackHist.Max()))
	return nil
}
