// Command experiments regenerates the paper's evaluation: every figure
// (2–8), the §4 externalization scenario, the §2.2 recovery experiment,
// the §5 related-work model table, and the DESIGN.md ablation.
//
// Usage:
//
//	experiments               # run everything at full scale
//	experiments -quick        # scaled-down run (seconds, for CI)
//	experiments -fig 3        # a single experiment (2,3,4,5,6,8,
//	                          # external, recovery, related, ablation)
//	experiments -list         # list available experiments
//
// It also hosts the ingest load generator (docs/INGEST.md):
//
//	experiments -loadgen -addr HOST:PORT -stream src -rate 5000 -count 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"streammine/internal/autolimit"
	"streammine/internal/debugserver"
	"streammine/internal/experiments"
	"streammine/internal/metrics"
	"streammine/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "scaled-down parameters (finishes in seconds)")
	fig := flag.String("fig", "", "run a single experiment by id")
	list := flag.Bool("list", false, "list experiments and exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address while experiments run")
	lg := loadgenFlags()
	flag.Parse()
	autolimit.Apply(func(format string, args ...any) { fmt.Printf(format+"\n", args...) })

	if lg.enabled() {
		return lg.run()
	}

	if *debugAddr != "" {
		reg := metrics.NewRegistry()
		transport.RegisterMetrics(reg)
		experiments.SetMetricsRegistry(reg)
		srv := debugserver.New(reg, nil)
		bound, err := srv.Start(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (/metrics /healthz /debug/pprof)\n", bound)
	}

	cfg := experiments.Config{Quick: *quick}
	runners := experiments.Runners()

	if *list {
		for _, r := range runners {
			fmt.Printf("%-10s %s\n", r.ID, r.Desc)
		}
		return nil
	}
	if *fig != "" {
		for _, r := range runners {
			if r.ID == *fig {
				tables, err := r.Run(cfg)
				if err != nil {
					return err
				}
				for _, t := range tables {
					fmt.Println(t.String())
				}
				return nil
			}
		}
		return fmt.Errorf("unknown experiment %q (use -list)", *fig)
	}
	return experiments.RunAll(cfg, os.Stdout)
}
