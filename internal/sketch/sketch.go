// Package sketch implements the stream summaries used by the paper's
// expensive parallelizable operator: the count sketch of Charikar, Chen
// and Farach-Colton ("Finding frequent items in data streams", TCS 2004),
// plus a count-min sketch and a top-k tracker for comparison.
//
// Two variants are provided: plain in-process sketches (for workload
// generation, baselines and accuracy tests) and transactional sketches
// whose counter matrix lives in STM memory, so updates from concurrent
// speculative transactions are detected and serialized by the STM — the
// access pattern the paper highlights as ideal for optimistic
// parallelization (each update touches only d of the d×w counters, at
// positions that depend on runtime data).
package sketch

import (
	"fmt"
	"sort"

	"streammine/internal/state"
	"streammine/internal/stm"
)

// rowHash mixes a key with a per-row seed (SplitMix64 finalizer).
func rowHash(seed, key uint64) uint64 {
	z := key + seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// seeds derives deterministic per-row seeds.
func seeds(n int, base uint64) []uint64 {
	out := make([]uint64, n)
	s := base
	for i := range out {
		s += 0x9E3779B97F4A7C15
		out[i] = rowHash(s, 0x5851F42D4C957F2D)
	}
	return out
}

// CountSketch is the plain (non-transactional) count sketch.
type CountSketch struct {
	depth, width int
	rows         [][]int64
	hashSeeds    []uint64
	signSeeds    []uint64
}

// NewCountSketch creates a sketch with the given depth (rows) and width
// (counters per row). It panics on non-positive dimensions (construction-
// time misuse).
func NewCountSketch(depth, width int, seed uint64) *CountSketch {
	if depth <= 0 || width <= 0 {
		panic(fmt.Sprintf("sketch: bad dimensions %d×%d", depth, width))
	}
	rows := make([][]int64, depth)
	for i := range rows {
		rows[i] = make([]int64, width)
	}
	return &CountSketch{
		depth:     depth,
		width:     width,
		rows:      rows,
		hashSeeds: seeds(depth, seed),
		signSeeds: seeds(depth, seed^0xABCDEF0123456789),
	}
}

// Depth and Width expose the dimensions.
func (cs *CountSketch) Depth() int { return cs.depth }

// Width returns the number of counters per row.
func (cs *CountSketch) Width() int { return cs.width }

func (cs *CountSketch) pos(row int, key uint64) (col int, sign int64) {
	col = int(rowHash(cs.hashSeeds[row], key) % uint64(cs.width))
	if rowHash(cs.signSeeds[row], key)&1 == 0 {
		return col, 1
	}
	return col, -1
}

// Update adds count occurrences of key.
func (cs *CountSketch) Update(key uint64, count int64) {
	for r := 0; r < cs.depth; r++ {
		col, sign := cs.pos(r, key)
		cs.rows[r][col] += sign * count
	}
}

// Estimate returns the estimated frequency of key (median over rows).
func (cs *CountSketch) Estimate(key uint64) int64 {
	ests := make([]int64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		col, sign := cs.pos(r, key)
		ests[r] = sign * cs.rows[r][col]
	}
	return median(ests)
}

func median(v []int64) int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// CountMin is the plain count-min sketch (non-negative counts only).
type CountMin struct {
	depth, width int
	rows         [][]uint64
	hashSeeds    []uint64
}

// NewCountMin creates a count-min sketch. Panics on bad dimensions.
func NewCountMin(depth, width int, seed uint64) *CountMin {
	if depth <= 0 || width <= 0 {
		panic(fmt.Sprintf("sketch: bad dimensions %d×%d", depth, width))
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{depth: depth, width: width, rows: rows, hashSeeds: seeds(depth, seed)}
}

// Update adds count occurrences of key.
func (cm *CountMin) Update(key uint64, count uint64) {
	for r := 0; r < cm.depth; r++ {
		col := rowHash(cm.hashSeeds[r], key) % uint64(cm.width)
		cm.rows[r][col] += count
	}
}

// Estimate returns the (over-)estimated frequency of key.
func (cm *CountMin) Estimate(key uint64) uint64 {
	var min uint64
	for r := 0; r < cm.depth; r++ {
		col := rowHash(cm.hashSeeds[r], key) % uint64(cm.width)
		if v := cm.rows[r][col]; r == 0 || v < min {
			min = v
		}
	}
	return min
}

// TopK tracks the k keys with the highest estimated frequencies, fed by
// any estimator.
type TopK struct {
	k      int
	counts map[uint64]int64
}

// NewTopK creates a tracker for the k most frequent keys. Panics if k <= 0.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("sketch: NewTopK requires k > 0")
	}
	return &TopK{k: k, counts: make(map[uint64]int64)}
}

// Offer reports key with its current frequency estimate.
func (t *TopK) Offer(key uint64, estimate int64) {
	if _, tracked := t.counts[key]; tracked {
		t.counts[key] = estimate
		return
	}
	if len(t.counts) < t.k {
		t.counts[key] = estimate
		return
	}
	// Replace the current minimum if the newcomer beats it.
	var minKey uint64
	minVal := int64(1<<63 - 1)
	for k, v := range t.counts {
		if v < minVal {
			minKey, minVal = k, v
		}
	}
	if estimate > minVal {
		delete(t.counts, minKey)
		t.counts[key] = estimate
	}
}

// Entry is one (key, estimate) result.
type Entry struct {
	Key      uint64
	Estimate int64
}

// Items returns the tracked keys sorted by descending estimate.
func (t *TopK) Items() []Entry {
	out := make([]Entry, 0, len(t.counts))
	for k, v := range t.counts {
		out = append(out, Entry{Key: k, Estimate: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TxCountSketch is a count sketch whose counters live in transactional
// memory. Concurrent speculative updates that touch disjoint counters
// proceed in parallel; colliding updates conflict and are serialized by
// the STM (aborting the newer transaction), exactly the behaviour the
// paper's Figure 5 sweeps.
type TxCountSketch struct {
	depth, width int
	counters     state.Array
	hashSeeds    []uint64
	signSeeds    []uint64
}

// NewTxCountSketch allocates the counter matrix in m.
func NewTxCountSketch(m *stm.Memory, depth, width int, seed uint64) (*TxCountSketch, error) {
	if depth <= 0 || width <= 0 {
		return nil, fmt.Errorf("sketch: bad dimensions %d×%d", depth, width)
	}
	arr, err := state.NewArray(m, depth*width)
	if err != nil {
		return nil, fmt.Errorf("alloc sketch counters: %w", err)
	}
	arr = arr.Named(m, "sketch")
	return &TxCountSketch{
		depth:     depth,
		width:     width,
		counters:  arr,
		hashSeeds: seeds(depth, seed),
		signSeeds: seeds(depth, seed^0xABCDEF0123456789),
	}, nil
}

func (cs *TxCountSketch) pos(row int, key uint64) (col int, sign int64) {
	col = int(rowHash(cs.hashSeeds[row], key) % uint64(cs.width))
	if rowHash(cs.signSeeds[row], key)&1 == 0 {
		return col, 1
	}
	return col, -1
}

// Update adds count occurrences of key within tx.
func (cs *TxCountSketch) Update(tx *stm.Tx, key uint64, count int64) error {
	for r := 0; r < cs.depth; r++ {
		col, sign := cs.pos(r, key)
		idx := r*cs.width + col
		cur, err := cs.counters.Get(tx, idx)
		if err != nil {
			return err
		}
		if err := cs.counters.Set(tx, idx, uint64(int64(cur)+sign*count)); err != nil {
			return err
		}
	}
	return nil
}

// Estimate returns the estimated frequency of key within tx.
func (cs *TxCountSketch) Estimate(tx *stm.Tx, key uint64) (int64, error) {
	ests := make([]int64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		col, sign := cs.pos(r, key)
		v, err := cs.counters.Get(tx, r*cs.width+col)
		if err != nil {
			return 0, err
		}
		ests[r] = sign * int64(v)
	}
	return median(ests), nil
}
