package sketch

import (
	"math"
	"testing"

	"streammine/internal/detrand"
	"streammine/internal/stm"
)

func TestCountSketchExact(t *testing.T) {
	cs := NewCountSketch(5, 1024, 42)
	cs.Update(7, 100)
	cs.Update(8, 50)
	if got := cs.Estimate(7); got != 100 {
		t.Fatalf("Estimate(7) = %d, want 100 (sparse sketch should be exact)", got)
	}
	if got := cs.Estimate(8); got != 50 {
		t.Fatalf("Estimate(8) = %d, want 50", got)
	}
	if got := cs.Estimate(999); got != 0 {
		t.Fatalf("Estimate(absent) = %d, want 0", got)
	}
}

func TestCountSketchNegativeCounts(t *testing.T) {
	cs := NewCountSketch(5, 1024, 42)
	cs.Update(7, 100)
	cs.Update(7, -40)
	if got := cs.Estimate(7); got != 60 {
		t.Fatalf("Estimate after decrement = %d, want 60", got)
	}
}

// TestCountSketchAccuracyZipf checks the error bound on a skewed stream:
// heavy hitters must be estimated within a small relative error.
func TestCountSketchAccuracyZipf(t *testing.T) {
	cs := NewCountSketch(5, 2048, 1)
	src := detrand.New(7)
	zipf := detrand.NewZipf(src, 10000, 1.1)
	truth := make(map[uint64]int64)
	const n = 100000
	for i := 0; i < n; i++ {
		k := uint64(zipf.Draw())
		truth[k]++
		cs.Update(k, 1)
	}
	for k := uint64(0); k < 10; k++ { // the 10 heaviest ranks
		actual := truth[k]
		if actual == 0 {
			continue
		}
		est := cs.Estimate(k)
		relErr := math.Abs(float64(est-actual)) / float64(actual)
		if relErr > 0.15 {
			t.Errorf("key %d: estimate %d vs actual %d (rel err %.2f)", k, est, actual, relErr)
		}
	}
}

func TestCountSketchPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCountSketch(0,0) did not panic")
		}
	}()
	NewCountSketch(0, 0, 1)
}

func TestCountMin(t *testing.T) {
	cm := NewCountMin(4, 1024, 9)
	cm.Update(5, 10)
	cm.Update(5, 5)
	cm.Update(6, 3)
	if got := cm.Estimate(5); got != 15 {
		t.Fatalf("Estimate(5) = %d, want 15", got)
	}
	if got := cm.Estimate(6); got != 3 {
		t.Fatalf("Estimate(6) = %d, want 3", got)
	}
	// Count-min never under-estimates.
	if got := cm.Estimate(7777); got > 18 {
		t.Fatalf("absent key estimate %d suspiciously high", got)
	}
}

// TestCountMinNeverUnderestimates is the defining property of count-min.
func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 64, 3) // narrow: force collisions
	src := detrand.New(5)
	truth := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := uint64(src.Intn(500))
		truth[k]++
		cm.Update(k, 1)
	}
	for k, actual := range truth {
		if est := cm.Estimate(k); est < actual {
			t.Fatalf("count-min underestimated key %d: %d < %d", k, est, actual)
		}
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2},
		{[]int64{-10, 0, 10}, 0},
	}
	for _, tt := range tests {
		in := append([]int64(nil), tt.in...)
		if got := median(in); got != tt.want {
			t.Errorf("median(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK(3)
	tk.Offer(1, 10)
	tk.Offer(2, 20)
	tk.Offer(3, 30)
	tk.Offer(4, 5) // below the minimum: rejected
	items := tk.Items()
	if len(items) != 3 || items[0].Key != 3 || items[1].Key != 2 || items[2].Key != 1 {
		t.Fatalf("Items = %+v", items)
	}
	tk.Offer(5, 40) // evicts key 1
	items = tk.Items()
	if items[0].Key != 5 {
		t.Fatalf("after eviction Items[0] = %+v", items[0])
	}
	for _, it := range items {
		if it.Key == 1 {
			t.Fatal("evicted key still tracked")
		}
	}
	// Updating an already-tracked key replaces its estimate.
	tk.Offer(2, 100)
	if items := tk.Items(); items[0].Key != 2 || items[0].Estimate != 100 {
		t.Fatalf("update of tracked key: %+v", items)
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}

func TestTxCountSketchMatchesPlain(t *testing.T) {
	m := stm.NewMemory(5*512 + 8)
	txcs, err := NewTxCountSketch(m, 5, 512, 42)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewCountSketch(5, 512, 42)
	src := detrand.New(3)
	for i := 0; i < 2000; i++ {
		k := uint64(src.Intn(100))
		plain.Update(k, 1)
		tx := m.Begin(int64(i))
		if err := txcs.Update(tx, k, 1); err != nil {
			t.Fatal(err)
		}
		if err := tx.Complete(); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := m.Begin(1 << 30)
	defer tx.Abort()
	for k := uint64(0); k < 100; k++ {
		want := plain.Estimate(k)
		got, err := txcs.Estimate(tx, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("key %d: tx estimate %d != plain %d", k, got, want)
		}
	}
}

func TestTxCountSketchBadDims(t *testing.T) {
	m := stm.NewMemory(8)
	if _, err := NewTxCountSketch(m, 0, 4, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
	if _, err := NewTxCountSketch(m, 4, 4, 1); err == nil {
		t.Fatal("oversized sketch accepted")
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	cs := NewCountSketch(5, 4096, 1)
	for i := 0; i < b.N; i++ {
		cs.Update(uint64(i%1000), 1)
	}
}

func BenchmarkTxCountSketchUpdate(b *testing.B) {
	m := stm.NewMemory(5*4096 + 8)
	cs, err := NewTxCountSketch(m, 5, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := m.Begin(int64(i))
		if err := cs.Update(tx, uint64(i%1000), 1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Complete(); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
