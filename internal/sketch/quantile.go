package sketch

import (
	"fmt"
	"sort"

	"streammine/internal/detrand"
)

// P2Quantile estimates a single quantile online with constant memory
// using the P² algorithm (Jain & Chlamtac, CACM 1985): five markers whose
// heights approximate the quantile curve are adjusted with parabolic
// interpolation as observations stream in.
type P2Quantile struct {
	p     float64
	count int

	// Five marker heights, positions, and desired positions.
	q  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64

	initial []float64
}

// NewP2Quantile creates an estimator for quantile p in (0, 1). It panics
// otherwise (construction-time misuse).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sketch: P2 quantile %v out of (0,1)", p))
	}
	return &P2Quantile{p: p, initial: make([]float64, 0, 5)}
}

// Observe feeds one value.
func (e *P2Quantile) Observe(x float64) {
	e.count++
	if len(e.initial) < 5 {
		e.initial = append(e.initial, x)
		if len(e.initial) == 5 {
			sort.Float64s(e.initial)
			for i := 0; i < 5; i++ {
				e.q[i] = e.initial[i]
				e.n[i] = float64(i + 1)
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Find the cell k containing x and clamp extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return e.q[i] + d*(e.q[i+di]-e.q[i])/(e.n[i+di]-e.n[i])
}

// Count returns the number of observations.
func (e *P2Quantile) Count() int { return e.count }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if len(e.initial) < 5 {
		s := append([]float64(nil), e.initial...)
		sort.Float64s(s)
		idx := int(e.p * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return e.q[2]
}

// Reservoir keeps a uniform random sample of fixed size from a stream
// (Vitter's Algorithm R), using the engine's deterministic PRNG so replay
// reproduces the same sample.
type Reservoir struct {
	src    *detrand.Source
	sample []uint64
	seen   int
}

// NewReservoir creates a sampler of the given capacity. Panics if the
// capacity is not positive.
func NewReservoir(capacity int, src *detrand.Source) *Reservoir {
	if capacity <= 0 {
		panic("sketch: NewReservoir requires capacity > 0")
	}
	return &Reservoir{src: src, sample: make([]uint64, 0, capacity)}
}

// Observe feeds one value.
func (r *Reservoir) Observe(v uint64) {
	r.seen++
	if len(r.sample) < cap(r.sample) {
		r.sample = append(r.sample, v)
		return
	}
	if j := r.src.Intn(r.seen); j < cap(r.sample) {
		r.sample[j] = v
	}
}

// Seen returns the number of observed values.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []uint64 {
	out := make([]uint64, len(r.sample))
	copy(out, r.sample)
	return out
}
