package sketch

import (
	"fmt"
	"math"

	"streammine/internal/state"
	"streammine/internal/stm"
)

// HyperLogLog estimates the number of distinct keys in a stream using
// 2^precision single-byte registers (Flajolet et al. 2007, with the
// standard linear-counting small-range correction). It complements the
// count sketch in the stream-analytics substrate: frequencies from the
// sketch, cardinalities from the HLL.
type HyperLogLog struct {
	precision uint
	m         int
	registers []uint8
	seed      uint64
}

// NewHyperLogLog creates an estimator with 2^precision registers.
// Precision must be in [4, 16]; it panics otherwise (construction-time
// misuse).
func NewHyperLogLog(precision uint, seed uint64) *HyperLogLog {
	if precision < 4 || precision > 16 {
		panic(fmt.Sprintf("sketch: HLL precision %d out of [4,16]", precision))
	}
	m := 1 << precision
	return &HyperLogLog{
		precision: precision,
		m:         m,
		registers: make([]uint8, m),
		seed:      seed,
	}
}

// hllParts splits a hashed key into (register index, rank).
func hllParts(precision uint, seed, key uint64) (int, uint8) {
	h := rowHash(seed, key)
	idx := int(h >> (64 - precision))
	rest := h<<precision | 1<<(precision-1) // guard bit bounds the rank
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	return idx, rank
}

// Add observes a key.
func (h *HyperLogLog) Add(key uint64) {
	idx, rank := hllParts(h.precision, h.seed, key)
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// hllAlpha is the bias-correction constant.
func hllAlpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// hllEstimate turns a register snapshot into a cardinality estimate.
func hllEstimate(registers []uint8) uint64 {
	m := float64(len(registers))
	sum := 0.0
	zeros := 0
	for _, r := range registers {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := hllAlpha(len(registers)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		est = m * math.Log(m/float64(zeros))
	}
	return uint64(est + 0.5)
}

// Estimate returns the approximate distinct-key count.
func (h *HyperLogLog) Estimate() uint64 {
	return hllEstimate(h.registers)
}

// Merge folds another HLL (same precision and seed) into this one. It
// returns an error on mismatched configurations.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if h.precision != other.precision || h.seed != other.seed {
		return fmt.Errorf("sketch: merging incompatible HLLs (p=%d/%d seed=%d/%d)",
			h.precision, other.precision, h.seed, other.seed)
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// TxHyperLogLog is the transactional variant: registers live in STM
// memory (one word per register; byte-packing would create false
// conflicts between neighbouring registers under concurrent updates).
type TxHyperLogLog struct {
	precision uint
	seed      uint64
	registers state.Array
}

// NewTxHyperLogLog allocates the registers in m.
func NewTxHyperLogLog(mem *stm.Memory, precision uint, seed uint64) (*TxHyperLogLog, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("sketch: HLL precision %d out of [4,16]", precision)
	}
	arr, err := state.NewArray(mem, 1<<precision)
	if err != nil {
		return nil, fmt.Errorf("alloc HLL registers: %w", err)
	}
	return &TxHyperLogLog{precision: precision, seed: seed, registers: arr}, nil
}

// Add observes a key within tx. Only the affected register is touched, so
// concurrent speculative updates rarely conflict.
func (h *TxHyperLogLog) Add(tx *stm.Tx, key uint64) error {
	idx, rank := hllParts(h.precision, h.seed, key)
	cur, err := h.registers.Get(tx, idx)
	if err != nil {
		return err
	}
	if uint64(rank) > cur {
		return h.registers.Set(tx, idx, uint64(rank))
	}
	return nil
}

// Estimate reads all registers within tx and estimates the cardinality.
func (h *TxHyperLogLog) Estimate(tx *stm.Tx) (uint64, error) {
	regs := make([]uint8, h.registers.Len())
	for i := range regs {
		v, err := h.registers.Get(tx, i)
		if err != nil {
			return 0, err
		}
		regs[i] = uint8(v)
	}
	return hllEstimate(regs), nil
}
