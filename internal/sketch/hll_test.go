package sketch

import (
	"math"
	"testing"

	"streammine/internal/detrand"
	"streammine/internal/stm"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		h := NewHyperLogLog(12, 7)
		src := detrand.New(uint64(n))
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			k := src.Uint64()
			seen[k] = true
			h.Add(k)
			// Duplicates must not affect the estimate.
			h.Add(k)
		}
		est := float64(h.Estimate())
		relErr := math.Abs(est-float64(n)) / float64(n)
		// Standard error at p=12 is ~1.6%; allow 6%.
		if relErr > 0.06 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", n, est, relErr)
		}
	}
}

func TestHLLEmpty(t *testing.T) {
	h := NewHyperLogLog(8, 1)
	if got := h.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %d", got)
	}
}

func TestHLLSmallRange(t *testing.T) {
	h := NewHyperLogLog(10, 3)
	for i := uint64(0); i < 5; i++ {
		h.Add(i)
	}
	est := h.Estimate()
	if est < 4 || est > 6 {
		t.Fatalf("estimate for 5 keys = %d (linear counting should be near-exact)", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a := NewHyperLogLog(10, 9)
	b := NewHyperLogLog(10, 9)
	for i := uint64(0); i < 3000; i++ {
		a.Add(i)
	}
	for i := uint64(1500); i < 4500; i++ {
		b.Add(i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := float64(a.Estimate())
	if math.Abs(est-4500)/4500 > 0.08 {
		t.Fatalf("merged estimate %.0f, want ≈4500", est)
	}
	c := NewHyperLogLog(11, 9)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of mismatched precision accepted")
	}
}

func TestHLLPanicsOnBadPrecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("precision 2 accepted")
		}
	}()
	NewHyperLogLog(2, 1)
}

func TestTxHLLMatchesPlain(t *testing.T) {
	mem := stm.NewMemory(1<<10 + 8)
	txh, err := NewTxHyperLogLog(mem, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewHyperLogLog(10, 5)
	src := detrand.New(42)
	for i := 0; i < 5000; i++ {
		k := src.Uint64() % 2000
		plain.Add(k)
		tx := mem.Begin(int64(i))
		if err := txh.Add(tx, k); err != nil {
			t.Fatal(err)
		}
		if err := tx.Complete(); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := mem.Begin(1 << 40)
	defer tx.Abort()
	got, err := txh.Estimate(tx)
	if err != nil {
		t.Fatal(err)
	}
	if want := plain.Estimate(); got != want {
		t.Fatalf("tx estimate %d != plain %d", got, want)
	}
}

func TestTxHLLBadPrecision(t *testing.T) {
	if _, err := NewTxHyperLogLog(stm.NewMemory(64), 20, 1); err == nil {
		t.Fatal("precision 20 accepted")
	}
}

func TestP2QuantileMedian(t *testing.T) {
	e := NewP2Quantile(0.5)
	src := detrand.New(17)
	for i := 0; i < 20000; i++ {
		e.Observe(src.Float64() * 100)
	}
	if got := e.Value(); got < 45 || got > 55 {
		t.Fatalf("median of U(0,100) estimated %.2f", got)
	}
	if e.Count() != 20000 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestP2QuantileP99(t *testing.T) {
	e := NewP2Quantile(0.99)
	src := detrand.New(23)
	for i := 0; i < 50000; i++ {
		e.Observe(src.Float64())
	}
	if got := e.Value(); got < 0.97 || got > 1.0 {
		t.Fatalf("p99 of U(0,1) estimated %.4f", got)
	}
}

func TestP2QuantileFewSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatal("empty Value != 0")
	}
	e.Observe(3)
	e.Observe(1)
	e.Observe(2)
	if got := e.Value(); got != 2 {
		t.Fatalf("exact small-sample median = %v, want 2", got)
	}
}

func TestP2QuantilePanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewP2Quantile(1)
}

func TestReservoirUniformity(t *testing.T) {
	const capacity, stream = 100, 10000
	r := NewReservoir(capacity, detrand.New(31))
	for i := uint64(0); i < stream; i++ {
		r.Observe(i)
	}
	if r.Seen() != stream {
		t.Fatalf("Seen = %d", r.Seen())
	}
	sample := r.Sample()
	if len(sample) != capacity {
		t.Fatalf("sample size = %d", len(sample))
	}
	// Mean of a uniform sample over [0,10000) should be near 5000.
	var sum float64
	for _, v := range sample {
		sum += float64(v)
	}
	mean := sum / capacity
	if mean < 3800 || mean > 6200 {
		t.Fatalf("sample mean %.0f suggests bias", mean)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(10, detrand.New(1))
	for i := uint64(0); i < 4; i++ {
		r.Observe(i)
	}
	if got := r.Sample(); len(got) != 4 {
		t.Fatalf("sample = %v", got)
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewReservoir(0, detrand.New(1))
}
