package state

import (
	"errors"
	"testing"
	"testing/quick"

	"streammine/internal/stm"
)

// run executes fn inside a committed transaction.
func run(t *testing.T, m *stm.Memory, fn func(tx *stm.Tx) error) {
	t.Helper()
	tx := m.Begin(1)
	if err := fn(tx); err != nil {
		t.Fatal(err)
	}
	if err := tx.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestField(t *testing.T) {
	m := stm.NewMemory(8)
	f, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	run(t, m, func(tx *stm.Tx) error {
		if v, err := f.Get(tx); err != nil || v != 0 {
			t.Fatalf("initial Get = %d, %v", v, err)
		}
		if err := f.Set(tx, 5); err != nil {
			return err
		}
		if v, err := f.Add(tx, 3); err != nil || v != 8 {
			t.Fatalf("Add = %d, %v", v, err)
		}
		return nil
	})
	run(t, m, func(tx *stm.Tx) error {
		v, err := f.Get(tx)
		if v != 8 {
			t.Fatalf("committed value = %d, want 8", v)
		}
		return err
	})
}

func TestFloatField(t *testing.T) {
	m := stm.NewMemory(8)
	f, err := NewFloatField(m)
	if err != nil {
		t.Fatal(err)
	}
	run(t, m, func(tx *stm.Tx) error {
		if err := f.Set(tx, 3.25); err != nil {
			return err
		}
		v, err := f.Add(tx, 0.5)
		if err != nil {
			return err
		}
		if v != 3.75 {
			t.Fatalf("Add = %v, want 3.75", v)
		}
		return nil
	})
	run(t, m, func(tx *stm.Tx) error {
		v, err := f.Get(tx)
		if v != 3.75 {
			t.Fatalf("committed = %v", v)
		}
		return err
	})
}

func TestArray(t *testing.T) {
	m := stm.NewMemory(32)
	a, err := NewArray(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 10 {
		t.Fatalf("Len = %d", a.Len())
	}
	run(t, m, func(tx *stm.Tx) error {
		for i := 0; i < 10; i++ {
			if err := a.Set(tx, i, uint64(i*i)); err != nil {
				return err
			}
		}
		if _, err := a.Add(tx, 4, 100); err != nil {
			return err
		}
		return nil
	})
	run(t, m, func(tx *stm.Tx) error {
		for i := 0; i < 10; i++ {
			want := uint64(i * i)
			if i == 4 {
				want += 100
			}
			v, err := a.Get(tx, i)
			if err != nil {
				return err
			}
			if v != want {
				t.Fatalf("a[%d] = %d, want %d", i, v, want)
			}
		}
		return nil
	})
}

func TestArrayBounds(t *testing.T) {
	m := stm.NewMemory(8)
	a, err := NewArray(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(1)
	defer tx.Abort()
	if _, err := a.Get(tx, -1); err == nil {
		t.Fatal("Get(-1) succeeded")
	}
	if _, err := a.Get(tx, 4); err == nil {
		t.Fatal("Get(len) succeeded")
	}
	if err := a.Set(tx, 4, 0); err == nil {
		t.Fatal("Set(len) succeeded")
	}
	if _, err := NewArray(m, 0); err == nil {
		t.Fatal("NewArray(0) succeeded")
	}
}

func TestMapPutGetDelete(t *testing.T) {
	m := stm.NewMemory(512)
	mp, err := NewMap(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	run(t, m, func(tx *stm.Tx) error {
		for k := uint64(0); k < 30; k++ {
			if err := mp.Put(tx, k, k*10); err != nil {
				return err
			}
		}
		return nil
	})
	run(t, m, func(tx *stm.Tx) error {
		for k := uint64(0); k < 30; k++ {
			v, ok, err := mp.Get(tx, k)
			if err != nil {
				return err
			}
			if !ok || v != k*10 {
				t.Fatalf("Get(%d) = %d, %v", k, v, ok)
			}
		}
		if _, ok, _ := mp.Get(tx, 999); ok {
			t.Fatal("found missing key")
		}
		n, err := mp.Len(tx)
		if err != nil {
			return err
		}
		if n != 30 {
			t.Fatalf("Len = %d, want 30", n)
		}
		return nil
	})
	// Update + delete.
	run(t, m, func(tx *stm.Tx) error {
		if err := mp.Put(tx, 5, 999); err != nil {
			return err
		}
		found, err := mp.Delete(tx, 6)
		if err != nil {
			return err
		}
		if !found {
			t.Fatal("Delete(6) did not find key")
		}
		found, err = mp.Delete(tx, 1234)
		if err != nil {
			return err
		}
		if found {
			t.Fatal("Delete of missing key reported found")
		}
		return nil
	})
	run(t, m, func(tx *stm.Tx) error {
		v, ok, err := mp.Get(tx, 5)
		if err != nil || !ok || v != 999 {
			t.Fatalf("updated Get(5) = %d, %v, %v", v, ok, err)
		}
		if _, ok, _ := mp.Get(tx, 6); ok {
			t.Fatal("deleted key still present")
		}
		return nil
	})
}

func TestMapReusesTombstones(t *testing.T) {
	m := stm.NewMemory(64)
	mp, err := NewMap(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill, delete, refill repeatedly: tombstone reuse must prevent ErrFull.
	for round := 0; round < 10; round++ {
		run(t, m, func(tx *stm.Tx) error {
			for k := uint64(0); k < 4; k++ {
				if err := mp.Put(tx, k+uint64(round)*10, k); err != nil {
					return err
				}
			}
			for k := uint64(0); k < 4; k++ {
				if _, err := mp.Delete(tx, k+uint64(round)*10); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func TestMapFull(t *testing.T) {
	m := stm.NewMemory(64)
	mp, err := NewMap(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(1)
	defer tx.Abort()
	for k := uint64(0); k < 4; k++ {
		if err := mp.Put(tx, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := mp.Put(tx, 99, 99); !errors.Is(err, ErrFull) {
		t.Fatalf("Put into full map = %v, want ErrFull", err)
	}
	// Updating an existing key in a full map still works.
	if err := mp.Put(tx, 2, 222); err != nil {
		t.Fatalf("update in full map: %v", err)
	}
}

// TestQuickMapMatchesNativeMap property-tests Map against Go's map under a
// random operation sequence.
func TestQuickMapMatchesNativeMap(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val uint64
		Del bool
	}) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		m := stm.NewMemory(1024)
		mp, err := NewMap(m, 128)
		if err != nil {
			return false
		}
		model := make(map[uint64]uint64)
		tx := m.Begin(1)
		defer tx.Abort()
		for _, op := range ops {
			k := op.Key % 50 // force collisions
			if op.Del {
				found, err := mp.Delete(tx, k)
				if err != nil {
					return false
				}
				_, want := model[k]
				if found != want {
					return false
				}
				delete(model, k)
			} else {
				if err := mp.Put(tx, k, op.Val); err != nil {
					return false
				}
				model[k] = op.Val
			}
		}
		for k, want := range model {
			v, ok, err := mp.Get(tx, k)
			if err != nil || !ok || v != want {
				return false
			}
		}
		n, err := mp.Len(tx)
		return err == nil && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingFIFO(t *testing.T) {
	m := stm.NewMemory(16)
	r, err := NewRing(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	run(t, m, func(tx *stm.Tx) error {
		if _, ok, err := r.Pop(tx); err != nil || ok {
			t.Fatalf("Pop on empty = ok=%v err=%v", ok, err)
		}
		for i := uint64(1); i <= 4; i++ {
			if err := r.Push(tx, i); err != nil {
				return err
			}
		}
		if err := r.Push(tx, 5); !errors.Is(err, ErrFull) {
			t.Fatalf("Push into full ring = %v", err)
		}
		if v, ok, err := r.Peek(tx); err != nil || !ok || v != 1 {
			t.Fatalf("Peek = %d, %v, %v", v, ok, err)
		}
		for i := uint64(1); i <= 4; i++ {
			v, ok, err := r.Pop(tx)
			if err != nil || !ok || v != i {
				t.Fatalf("Pop = %d, %v, %v; want %d", v, ok, err, i)
			}
		}
		return nil
	})
}

// TestRingWrapAround pushes/pops past the capacity boundary repeatedly.
func TestRingWrapAround(t *testing.T) {
	m := stm.NewMemory(16)
	r, err := NewRing(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 7; round++ {
		run(t, m, func(tx *stm.Tx) error {
			if err := r.Push(tx, next); err != nil {
				return err
			}
			next++
			if err := r.Push(tx, next); err != nil {
				return err
			}
			next++
			v, ok, err := r.Pop(tx)
			if err != nil || !ok || v != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, v, expect)
			}
			expect++
			v, ok, err = r.Pop(tx)
			if err != nil || !ok || v != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, v, expect)
			}
			expect++
			return nil
		})
	}
}

// TestStateIsolation verifies an aborted transaction's container updates
// are invisible.
func TestStateIsolation(t *testing.T) {
	m := stm.NewMemory(64)
	f, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMap(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(1)
	if err := f.Set(tx, 77); err != nil {
		t.Fatal(err)
	}
	if err := mp.Put(tx, 1, 2); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	run(t, m, func(tx *stm.Tx) error {
		if v, _ := f.Get(tx); v != 0 {
			t.Fatalf("aborted field write visible: %d", v)
		}
		if _, ok, _ := mp.Get(tx, 1); ok {
			t.Fatal("aborted map write visible")
		}
		return nil
	})
}
