// Package state provides typed containers layered over the word-granular
// transactional memory (internal/stm): scalar fields, arrays, hash maps
// and ring buffers. Operators build their local state from these so that
// every state access flows through a transaction — the Go equivalent of
// the paper's compile-time instrumentation of C operators.
//
// All accessors take the current transaction; errors from the underlying
// STM (notably stm.ErrConflict) must be propagated so the engine can abort
// and re-execute the enclosing event.
package state

import (
	"errors"
	"fmt"
	"math"

	"streammine/internal/stm"
)

// ErrFull is returned when a fixed-capacity container cannot accept more
// entries.
var ErrFull = errors.New("state: container full")

// Field is a single transactional 64-bit word.
type Field struct {
	addr stm.Addr
}

// NewField allocates a field initialized to zero.
func NewField(m *stm.Memory) (Field, error) {
	addr, err := m.Alloc(1)
	if err != nil {
		return Field{}, fmt.Errorf("alloc field: %w", err)
	}
	Names(m).add("field", addr, 1, 1, 0)
	return Field{addr: addr}, nil
}

// Named labels the field in m's address map (conflict attribution).
func (f Field) Named(m *stm.Memory, name string) Field {
	Names(m).rename(f.addr, name)
	return f
}

// Get reads the field.
func (f Field) Get(tx *stm.Tx) (uint64, error) { return tx.Read(f.addr) }

// Set writes the field.
func (f Field) Set(tx *stm.Tx, v uint64) error { return tx.Write(f.addr, v) }

// Add increments the field by delta and returns the new value.
func (f Field) Add(tx *stm.Tx, delta uint64) (uint64, error) {
	v, err := tx.Read(f.addr)
	if err != nil {
		return 0, err
	}
	v += delta
	if err := tx.Write(f.addr, v); err != nil {
		return 0, err
	}
	return v, nil
}

// Addr exposes the underlying address (used by tests asserting conflict
// behaviour on specific words).
func (f Field) Addr() stm.Addr { return f.addr }

// FloatField stores a float64 in a word via its IEEE-754 bits.
type FloatField struct {
	f Field
}

// NewFloatField allocates a float field initialized to zero.
func NewFloatField(m *stm.Memory) (FloatField, error) {
	f, err := NewField(m)
	return FloatField{f: f}, err
}

// Named labels the field in m's address map (conflict attribution).
func (f FloatField) Named(m *stm.Memory, name string) FloatField {
	f.f.Named(m, name)
	return f
}

// Get reads the float value.
func (f FloatField) Get(tx *stm.Tx) (float64, error) {
	v, err := f.f.Get(tx)
	return math.Float64frombits(v), err
}

// Set writes the float value.
func (f FloatField) Set(tx *stm.Tx, v float64) error {
	return f.f.Set(tx, math.Float64bits(v))
}

// Add adds delta and returns the new value.
func (f FloatField) Add(tx *stm.Tx, delta float64) (float64, error) {
	v, err := f.Get(tx)
	if err != nil {
		return 0, err
	}
	v += delta
	return v, f.Set(tx, v)
}

// Array is a fixed-length sequence of transactional words.
type Array struct {
	base stm.Addr
	n    int
}

// NewArray allocates n zeroed words.
func NewArray(m *stm.Memory, n int) (Array, error) {
	if n <= 0 {
		return Array{}, fmt.Errorf("array length %d: %w", n, stm.ErrBadAddr)
	}
	base, err := m.Alloc(n)
	if err != nil {
		return Array{}, fmt.Errorf("alloc array: %w", err)
	}
	Names(m).add("array", base, n, 1, 0)
	return Array{base: base, n: n}, nil
}

// Named labels the array in m's address map (conflict attribution).
func (a Array) Named(m *stm.Memory, name string) Array {
	Names(m).rename(a.base, name)
	return a
}

// Len returns the array length.
func (a Array) Len() int { return a.n }

// Get reads element i.
func (a Array) Get(tx *stm.Tx, i int) (uint64, error) {
	if i < 0 || i >= a.n {
		return 0, fmt.Errorf("array index %d of %d: %w", i, a.n, stm.ErrBadAddr)
	}
	return tx.Read(a.base + stm.Addr(i))
}

// Set writes element i.
func (a Array) Set(tx *stm.Tx, i int, v uint64) error {
	if i < 0 || i >= a.n {
		return fmt.Errorf("array index %d of %d: %w", i, a.n, stm.ErrBadAddr)
	}
	return tx.Write(a.base+stm.Addr(i), v)
}

// Add increments element i by delta, returning the new value.
func (a Array) Add(tx *stm.Tx, i int, delta uint64) (uint64, error) {
	v, err := a.Get(tx, i)
	if err != nil {
		return 0, err
	}
	v += delta
	return v, a.Set(tx, i, v)
}

// Map is a fixed-capacity open-addressing hash map from uint64 keys to
// uint64 values, stored as (state, key, value) bucket triples in
// transactional memory. Linear probing; deletions leave tombstones.
type Map struct {
	base    stm.Addr
	buckets int
}

// Bucket states.
const (
	bucketEmpty uint64 = iota
	bucketUsed
	bucketTombstone
)

const bucketWords = 3

// NewMap allocates a map with the given bucket count. Capacity for entries
// is the bucket count; inserting into a full map returns ErrFull. For good
// probe behaviour size it at ~2× the expected entry count.
func NewMap(m *stm.Memory, buckets int) (Map, error) {
	if buckets <= 0 {
		return Map{}, fmt.Errorf("map buckets %d: %w", buckets, stm.ErrBadAddr)
	}
	base, err := m.Alloc(buckets * bucketWords)
	if err != nil {
		return Map{}, fmt.Errorf("alloc map: %w", err)
	}
	Names(m).add("map", base, buckets*bucketWords, bucketWords, 0)
	return Map{base: base, buckets: buckets}, nil
}

// Named labels the map in m's address map (conflict attribution).
func (mp Map) Named(m *stm.Memory, name string) Map {
	Names(m).rename(mp.base, name)
	return mp
}

func (mp Map) slot(i int) stm.Addr {
	return mp.base + stm.Addr(i*bucketWords)
}

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

// Get looks up k, returning (value, found).
func (mp Map) Get(tx *stm.Tx, k uint64) (uint64, bool, error) {
	start := int(hashKey(k) % uint64(mp.buckets))
	for probe := 0; probe < mp.buckets; probe++ {
		s := mp.slot((start + probe) % mp.buckets)
		st, err := tx.Read(s)
		if err != nil {
			return 0, false, err
		}
		switch st {
		case bucketEmpty:
			return 0, false, nil
		case bucketTombstone:
			continue
		}
		key, err := tx.Read(s + 1)
		if err != nil {
			return 0, false, err
		}
		if key != k {
			continue
		}
		v, err := tx.Read(s + 2)
		return v, true, err
	}
	return 0, false, nil
}

// Put inserts or updates k.
func (mp Map) Put(tx *stm.Tx, k, v uint64) error {
	start := int(hashKey(k) % uint64(mp.buckets))
	firstFree := -1
	for probe := 0; probe < mp.buckets; probe++ {
		i := (start + probe) % mp.buckets
		s := mp.slot(i)
		st, err := tx.Read(s)
		if err != nil {
			return err
		}
		switch st {
		case bucketEmpty:
			if firstFree < 0 {
				firstFree = i
			}
			return mp.fill(tx, firstFree, k, v)
		case bucketTombstone:
			if firstFree < 0 {
				firstFree = i
			}
			continue
		}
		key, err := tx.Read(s + 1)
		if err != nil {
			return err
		}
		if key == k {
			return tx.Write(s+2, v)
		}
	}
	if firstFree >= 0 {
		return mp.fill(tx, firstFree, k, v)
	}
	return ErrFull
}

func (mp Map) fill(tx *stm.Tx, i int, k, v uint64) error {
	s := mp.slot(i)
	if err := tx.Write(s, bucketUsed); err != nil {
		return err
	}
	if err := tx.Write(s+1, k); err != nil {
		return err
	}
	return tx.Write(s+2, v)
}

// Delete removes k, returning whether it was present.
func (mp Map) Delete(tx *stm.Tx, k uint64) (bool, error) {
	start := int(hashKey(k) % uint64(mp.buckets))
	for probe := 0; probe < mp.buckets; probe++ {
		s := mp.slot((start + probe) % mp.buckets)
		st, err := tx.Read(s)
		if err != nil {
			return false, err
		}
		switch st {
		case bucketEmpty:
			return false, nil
		case bucketTombstone:
			continue
		}
		key, err := tx.Read(s + 1)
		if err != nil {
			return false, err
		}
		if key == k {
			return true, tx.Write(s, bucketTombstone)
		}
	}
	return false, nil
}

// Clear empties the map by resetting every bucket state word. It touches
// the whole table inside the transaction, so use it only for bounded
// generation resets.
func (mp Map) Clear(tx *stm.Tx) error {
	for i := 0; i < mp.buckets; i++ {
		if err := tx.Write(mp.slot(i), bucketEmpty); err != nil {
			return err
		}
	}
	return nil
}

// Len counts used buckets (a full scan; intended for tests and small maps).
func (mp Map) Len(tx *stm.Tx) (int, error) {
	n := 0
	for i := 0; i < mp.buckets; i++ {
		st, err := tx.Read(mp.slot(i))
		if err != nil {
			return 0, err
		}
		if st == bucketUsed {
			n++
		}
	}
	return n, nil
}

// Ring is a fixed-capacity FIFO ring buffer of words, used by count-window
// operators. Layout: [head, count, slots...].
type Ring struct {
	base stm.Addr
	cap  int
}

// NewRing allocates a ring with the given capacity.
func NewRing(m *stm.Memory, capacity int) (Ring, error) {
	if capacity <= 0 {
		return Ring{}, fmt.Errorf("ring capacity %d: %w", capacity, stm.ErrBadAddr)
	}
	base, err := m.Alloc(capacity + 2)
	if err != nil {
		return Ring{}, fmt.Errorf("alloc ring: %w", err)
	}
	Names(m).add("ring", base, capacity+2, 1, 2)
	return Ring{base: base, cap: capacity}, nil
}

// Named labels the ring in m's address map (conflict attribution).
func (r Ring) Named(m *stm.Memory, name string) Ring {
	Names(m).rename(r.base, name)
	return r
}

// Cap returns the ring capacity.
func (r Ring) Cap() int { return r.cap }

// Len returns the number of queued elements.
func (r Ring) Len(tx *stm.Tx) (int, error) {
	n, err := tx.Read(r.base + 1)
	return int(n), err
}

// Push appends v at the tail; ErrFull if at capacity.
func (r Ring) Push(tx *stm.Tx, v uint64) error {
	head, err := tx.Read(r.base)
	if err != nil {
		return err
	}
	count, err := tx.Read(r.base + 1)
	if err != nil {
		return err
	}
	if int(count) >= r.cap {
		return ErrFull
	}
	idx := (head + count) % uint64(r.cap)
	if err := tx.Write(r.base+2+stm.Addr(idx), v); err != nil {
		return err
	}
	return tx.Write(r.base+1, count+1)
}

// Pop removes and returns the head element; ok is false when empty.
func (r Ring) Pop(tx *stm.Tx) (v uint64, ok bool, err error) {
	head, err := tx.Read(r.base)
	if err != nil {
		return 0, false, err
	}
	count, err := tx.Read(r.base + 1)
	if err != nil {
		return 0, false, err
	}
	if count == 0 {
		return 0, false, nil
	}
	v, err = tx.Read(r.base + 2 + stm.Addr(head))
	if err != nil {
		return 0, false, err
	}
	if err := tx.Write(r.base, (head+1)%uint64(r.cap)); err != nil {
		return 0, false, err
	}
	if err := tx.Write(r.base+1, count-1); err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Peek returns the head element without removing it.
func (r Ring) Peek(tx *stm.Tx) (v uint64, ok bool, err error) {
	head, err := tx.Read(r.base)
	if err != nil {
		return 0, false, err
	}
	count, err := tx.Read(r.base + 1)
	if err != nil {
		return 0, false, err
	}
	if count == 0 {
		return 0, false, nil
	}
	v, err = tx.Read(r.base + 2 + stm.Addr(head))
	return v, err == nil, err
}
