package state

import (
	"fmt"
	"sort"
	"sync"

	"streammine/internal/stm"
)

// AddrMap maps raw STM addresses back to the named state containers that
// allocated them, so conflict witnesses read as "counts[3]" instead of an
// opaque word index. Every container constructor registers its address
// range here automatically (with a generated name like "array#1"); the
// Named methods replace the generated name with an operator-chosen one.
//
// One AddrMap belongs to one Memory, attached via Memory.SetLabelSpace.
// Registration happens at Init time and resolution on profiler drains, so
// neither touches the transactional hot path.
type AddrMap struct {
	mu      sync.RWMutex
	regions []region
	counts  map[string]int
}

// region is one registered address range. Addresses resolve to bucket
// (addr - base - offset) / stride; the offset words (container headers,
// e.g. a Ring's head/count) resolve to bucket -1.
type region struct {
	base   stm.Addr
	words  int
	stride int
	offset int
	name   string
}

// Names returns the AddrMap attached to m, creating it on first use.
func Names(m *stm.Memory) *AddrMap {
	if am, ok := m.LabelSpace().(*AddrMap); ok {
		return am
	}
	am := &AddrMap{counts: make(map[string]int)}
	// Concurrent first registration is init-time misuse; last store wins
	// and loses at most the other goroutine's generated names.
	m.SetLabelSpace(am)
	return am
}

// add registers a region under a generated "<kind>#<n>" name.
func (am *AddrMap) add(kind string, base stm.Addr, words, stride, offset int) {
	am.mu.Lock()
	defer am.mu.Unlock()
	n := am.counts[kind]
	am.counts[kind] = n + 1
	am.regions = append(am.regions, region{
		base:   base,
		words:  words,
		stride: stride,
		offset: offset,
		name:   fmt.Sprintf("%s#%d", kind, n),
	})
	sort.Slice(am.regions, func(i, j int) bool { return am.regions[i].base < am.regions[j].base })
}

// rename replaces the name of the region starting at base.
func (am *AddrMap) rename(base stm.Addr, name string) {
	am.mu.Lock()
	defer am.mu.Unlock()
	for i := range am.regions {
		if am.regions[i].base == base {
			am.regions[i].name = name
			return
		}
	}
}

// lookup finds the region containing addr. Caller holds am.mu.
func (am *AddrMap) lookup(addr stm.Addr) (region, bool) {
	i := sort.Search(len(am.regions), func(i int) bool {
		return am.regions[i].base+stm.Addr(am.regions[i].words) > addr
	})
	if i >= len(am.regions) || addr < am.regions[i].base {
		return region{}, false
	}
	return am.regions[i], true
}

// Resolve maps an address to its container name and bucket index. Header
// words resolve to bucket -1. ok is false for unregistered addresses.
func (am *AddrMap) Resolve(addr stm.Addr) (name string, bucket int, ok bool) {
	am.mu.RLock()
	defer am.mu.RUnlock()
	r, ok := am.lookup(addr)
	if !ok {
		return "", 0, false
	}
	off := int(addr - r.base)
	if off < r.offset {
		return r.name, -1, true
	}
	return r.name, (off - r.offset) / r.stride, true
}

// Describe renders an address as "name[bucket]" ("name" for headers and
// single-bucket containers, "word@N" when unregistered). It is the
// resolver the profiler installs per node.
func (am *AddrMap) Describe(addr stm.Addr) string {
	am.mu.RLock()
	r, ok := am.lookup(addr)
	am.mu.RUnlock()
	if !ok {
		return fmt.Sprintf("word@%d", addr)
	}
	off := int(addr - r.base)
	if off < r.offset || r.words-r.offset <= r.stride {
		return r.name
	}
	return fmt.Sprintf("%s[%d]", r.name, (off-r.offset)/r.stride)
}
