package state

import (
	"testing"

	"streammine/internal/stm"
)

func TestAddrMapResolve(t *testing.T) {
	m := stm.NewMemory(256)
	f, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	f = f.Named(m, "total")
	arr, err := NewArray(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	arr = arr.Named(m, "counts")
	mp, err := NewMap(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	mp = mp.Named(m, "table")
	r, err := NewRing(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	r = r.Named(m, "window")

	am := Names(m)
	cases := []struct {
		addr   stm.Addr
		want   string
		bucket int
	}{
		{f.Addr(), "total", 0},
		{arr.base, "counts[0]", 0},
		{arr.base + 5, "counts[5]", 5},
		{mp.base, "table[0]", 0},
		{mp.base + 4, "table[1]", 1}, // second bucket's key word
		{r.base, "window", -1},       // head word (header)
		{r.base + 3, "window[1]", 1}, // second slot
	}
	for _, c := range cases {
		name, bucket, ok := am.Resolve(c.addr)
		if !ok {
			t.Fatalf("Resolve(%d): not found", c.addr)
		}
		if bucket != c.bucket {
			t.Errorf("Resolve(%d) bucket = %d, want %d", c.addr, bucket, c.bucket)
		}
		if got := am.Describe(c.addr); got != c.want {
			t.Errorf("Describe(%d) = %q, want %q (name %q)", c.addr, got, c.want, name)
		}
	}

	if got := am.Describe(200); got != "word@200" {
		t.Errorf("unregistered Describe = %q, want word@200", got)
	}
}

func TestAddrMapGeneratedNames(t *testing.T) {
	m := stm.NewMemory(16)
	a, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	am := Names(m)
	if got := am.Describe(a.Addr()); got != "field#0" {
		t.Errorf("first field = %q, want field#0", got)
	}
	if got := am.Describe(b.Addr()); got != "field#1" {
		t.Errorf("second field = %q, want field#1", got)
	}
}
