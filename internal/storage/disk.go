// Package storage provides the stable-storage substrate: disk models
// (simulated, in-memory, and file-backed) and the asynchronous writer pool
// implementing the paper's N+1-thread logging algorithm (§2.4).
//
// The paper's experiments simulate fast disks with fixed write latencies
// (the "Sim 10" and "Sim 5" configurations); SimDisk reproduces that model
// and adds an optional per-byte cost. FileDisk gives a real fsync-backed
// store for integration tests, and MemDisk a zero-latency store whose
// contents can be read back for recovery tests.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Disk is a stable-storage point: a Write that has returned is durable.
// Implementations must be safe for concurrent use (the writer pool never
// issues concurrent writes to one disk, but tests may).
type Disk interface {
	// Write persists p and returns once it is stable.
	Write(p []byte) error
	// Close releases the storage point. Writes after Close fail.
	Close() error
}

// ErrClosed is returned for operations on a closed disk or pool.
var ErrClosed = errors.New("storage: closed")

// SimDisk models a disk with a fixed per-write latency plus an optional
// per-byte transfer cost. It is the package used for the paper's Sim-N
// configurations and for modelling commodity hard drives in Figure 2.
type SimDisk struct {
	latency time.Duration
	perByte time.Duration

	closed atomic.Bool
	writes atomic.Int64
	bytes  atomic.Int64
}

var _ Disk = (*SimDisk)(nil)

// NewSimDisk returns a disk whose writes take latency plus
// perByte×len(payload).
func NewSimDisk(latency, perByte time.Duration) *SimDisk {
	return &SimDisk{latency: latency, perByte: perByte}
}

// Write blocks for the modelled duration.
func (d *SimDisk) Write(p []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	time.Sleep(d.latency + time.Duration(len(p))*d.perByte)
	d.writes.Add(1)
	d.bytes.Add(int64(len(p)))
	return nil
}

// Close marks the disk closed.
func (d *SimDisk) Close() error {
	d.closed.Store(true)
	return nil
}

// Writes reports the number of completed writes (for tests and metrics).
func (d *SimDisk) Writes() int64 { return d.writes.Load() }

// Bytes reports the number of bytes written.
func (d *SimDisk) Bytes() int64 { return d.bytes.Load() }

// MemDisk is an in-memory stable store with no latency. Its contents can be
// read back, which recovery tests use to replay logs.
type MemDisk struct {
	mu     sync.Mutex
	chunks [][]byte
	closed bool
}

var _ Disk = (*MemDisk)(nil)

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk {
	return &MemDisk{}
}

// Write copies p into the store.
func (d *MemDisk) Write(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	c := make([]byte, len(p))
	copy(c, p)
	d.chunks = append(d.chunks, c)
	return nil
}

// Close marks the disk closed.
func (d *MemDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Chunks returns a snapshot of all writes in order.
func (d *MemDisk) Chunks() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, len(d.chunks))
	copy(out, d.chunks)
	return out
}

// Contents returns the concatenation of all writes.
func (d *MemDisk) Contents() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int
	for _, c := range d.chunks {
		n += len(c)
	}
	out := make([]byte, 0, n)
	for _, c := range d.chunks {
		out = append(out, c...)
	}
	return out
}

// FileDisk is a real append-only file flushed with Sync on every write.
type FileDisk struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

var _ Disk = (*FileDisk)(nil)

// OpenFileDisk creates (or truncates) path as a storage point.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open storage file: %w", err)
	}
	return &FileDisk{f: f}, nil
}

// Write appends p and fsyncs.
func (d *FileDisk) Write(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, err := d.f.Write(p); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

// FaultyDisk wraps a Disk and fails the nth write and everything after,
// simulating a storage failure for recovery tests.
type FaultyDisk struct {
	inner   Disk
	failAt  int64
	counter atomic.Int64
}

var _ Disk = (*FaultyDisk)(nil)

// ErrInjected is the failure returned by FaultyDisk once tripped.
var ErrInjected = errors.New("storage: injected fault")

// NewFaultyDisk fails write number failAt (1-based) and all later writes.
func NewFaultyDisk(inner Disk, failAt int64) *FaultyDisk {
	return &FaultyDisk{inner: inner, failAt: failAt}
}

// Write delegates until the trip point, then fails.
func (d *FaultyDisk) Write(p []byte) error {
	if d.counter.Add(1) >= d.failAt {
		return ErrInjected
	}
	return d.inner.Write(p)
}

// Close closes the wrapped disk.
func (d *FaultyDisk) Close() error { return d.inner.Close() }
