package storage

import (
	"testing"
	"time"
)

func TestChaosWriteDelaySetClear(t *testing.T) {
	if d := ChaosWriteDelay(); d != 0 {
		t.Fatalf("default delay = %v, want 0", d)
	}
	SetChaosWriteDelay(3 * time.Millisecond)
	if d := ChaosWriteDelay(); d != 3*time.Millisecond {
		t.Fatalf("delay = %v, want 3ms", d)
	}
	SetChaosWriteDelay(-time.Second) // negative clamps to off
	if d := ChaosWriteDelay(); d != 0 {
		t.Fatalf("negative delay clamped to %v, want 0", d)
	}
}

func TestChaosWriteDelayStallsPoolWrites(t *testing.T) {
	const delay = 30 * time.Millisecond
	SetChaosWriteDelay(delay)
	defer SetChaosWriteDelay(0)

	p := NewPool([]Disk{NewMemDisk()})
	defer p.Close()

	start := time.Now()
	if err := p.SyncWrite([]byte("x")); err != nil {
		t.Fatalf("SyncWrite: %v", err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("stable write took %v, want >= %v injected stall", took, delay)
	}
}
