package storage

import (
	"errors"
	"sync"
	"time"
)

// Request is one asynchronous durability request. Done is invoked exactly
// once, from a pool goroutine, when the payload is stable on some storage
// point (err == nil) or the write failed.
type Request struct {
	Payload []byte
	Done    func(err error)
}

// Pool implements the paper's §2.4 logging algorithm: with N configured
// storage points there are N+1 threads — at any moment up to N of them are
// writing (one per storage point) and one is the *collector*, accumulating
// incoming requests into a batch while the writers are busy. When a writer
// finishes it hands its storage point to the collector (which flushes the
// accumulated batch to it as a single write) and takes over the collector
// role itself.
//
// The practical effect, and the reason the paper uses it, is adaptive group
// commit: under load, many requests become stable with one disk-latency
// charge, so log throughput scales with offered load while idle latency
// stays at a single write.
type Pool struct {
	requests chan Request
	stop     chan struct{}
	done     sync.WaitGroup

	// collector is a one-slot token channel: holding the token makes a
	// goroutine the collector. disks holds idle storage points.
	collector chan struct{}
	disks     chan Disk

	// delay is the group-commit window: after the first request of a
	// batch, the collector keeps accumulating for this long even if a
	// storage point is already free. Zero disables the window.
	delay time.Duration

	mu     sync.Mutex
	closed bool
}

// NewPoolDelayed is NewPool with a group-commit window: requests arriving
// within delay of the batch's first request share one stable write. This
// models how concurrently issued log requests on a shared disk become
// stable together (the effect behind the paper's Figure 2 single-disk
// speculative numbers, cf. PostgreSQL's commit_delay).
func NewPoolDelayed(disks []Disk, delay time.Duration) *Pool {
	p := NewPool(disks)
	p.delay = delay
	return p
}

// NewPool starts the N+1 goroutines over the given storage points. The pool
// owns the disks and closes them on Close. It panics if no disks are given
// (construction-time misuse).
func NewPool(disks []Disk) *Pool {
	if len(disks) == 0 {
		panic("storage: NewPool requires at least one disk")
	}
	p := &Pool{
		requests:  make(chan Request),
		stop:      make(chan struct{}),
		collector: make(chan struct{}, 1),
		disks:     make(chan Disk, len(disks)),
	}
	p.collector <- struct{}{}
	for _, d := range disks {
		p.disks <- d
	}
	for i := 0; i < len(disks)+1; i++ {
		p.done.Add(1)
		go p.worker()
	}
	return p
}

// Submit queues an asynchronous durability request. The request's Done
// callback runs on a pool goroutine; it must not block for long. Submit
// returns ErrClosed after Close.
func (p *Pool) Submit(req Request) error {
	select {
	case <-p.stop:
		return ErrClosed
	case p.requests <- req:
		return nil
	}
}

// worker cycles between the collector role and the writer role.
func (p *Pool) worker() {
	defer p.done.Done()
	for {
		// Become the collector.
		select {
		case <-p.stop:
			return
		case <-p.collector:
		}

		// Collect: block for the first request, then keep accumulating
		// until a storage point frees up (and, with a group-commit window
		// configured, until the window has elapsed).
		var batch []Request
		var disk Disk
		select {
		case <-p.stop:
			p.collector <- struct{}{}
			return
		case req := <-p.requests:
			batch = append(batch, req)
		}
		var timer *time.Timer
		var windowC <-chan time.Time
		if p.delay > 0 {
			timer = time.NewTimer(p.delay)
			windowC = timer.C
		}
		diskC := p.disks
		stopped := false
		for !stopped && (disk == nil || windowC != nil) {
			select {
			case <-p.stop:
				stopped = true
			case req := <-p.requests:
				batch = append(batch, req)
			case disk = <-diskC:
				diskC = nil // hold exactly one storage point
			case <-windowC:
				windowC = nil
			}
		}
		if timer != nil {
			timer.Stop()
		}
		if stopped {
			failBatch(batch, ErrClosed)
			if disk != nil {
				p.disks <- disk
			}
			p.collector <- struct{}{}
			return
		}

		// Hand the collector role to another worker, then write the whole
		// accumulated batch as one stable write.
		p.collector <- struct{}{}

		var buf []byte
		for _, req := range batch {
			buf = append(buf, req.Payload...)
		}
		// Slow-disk fault injection (SetChaosWriteDelay): stall the batch
		// like a degraded device would, one charge per stable write.
		if d := ChaosWriteDelay(); d > 0 {
			time.Sleep(d)
		}
		err := disk.Write(buf)
		p.disks <- disk
		for _, req := range batch {
			if req.Done != nil {
				req.Done(err)
			}
		}
	}
}

func failBatch(batch []Request, err error) {
	for _, req := range batch {
		if req.Done != nil {
			req.Done(err)
		}
	}
}

// Close stops the workers and closes the storage points. Requests that were
// not yet handed to a disk fail with ErrClosed. Close is idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()

	close(p.stop)
	p.done.Wait()

	var errs []error
	close(p.disks)
	for d := range p.disks {
		if err := d.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// SyncWrite submits a request and blocks until it is stable. It is the
// convenience used by non-speculative operators, which must wait for the
// log before sending events downstream.
func (p *Pool) SyncWrite(payload []byte) error {
	ch := make(chan error, 1)
	if err := p.Submit(Request{Payload: payload, Done: func(err error) { ch <- err }}); err != nil {
		return err
	}
	return <-ch
}
