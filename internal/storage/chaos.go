package storage

import (
	"sync/atomic"
	"time"
)

// chaosWriteDelay is the process-wide slow-disk fault used by the
// campaign runner (docs/CAMPAIGNS.md): every stable write issued through
// a Pool stalls this long before reaching its storage point, multiplying
// the effective disk latency the way a degraded or contended device
// would. It applies at the pool layer — after group-commit batching — so
// one injected stall covers one batch, exactly like a slower physical
// write.
var chaosWriteDelay atomic.Int64

// SetChaosWriteDelay installs (or, with 0, clears) the slow-disk fault.
func SetChaosWriteDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	chaosWriteDelay.Store(int64(d))
}

// ChaosWriteDelay reports the currently injected per-write stall (0 when
// the fault is off).
func ChaosWriteDelay() time.Duration {
	return time.Duration(chaosWriteDelay.Load())
}
