package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemDiskRoundTrip(t *testing.T) {
	d := NewMemDisk()
	if err := d.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("two")); err != nil {
		t.Fatal(err)
	}
	chunks := d.Chunks()
	if len(chunks) != 2 || string(chunks[0]) != "one" || string(chunks[1]) != "two" {
		t.Fatalf("Chunks = %q", chunks)
	}
	if got := string(d.Contents()); got != "onetwo" {
		t.Fatalf("Contents = %q", got)
	}
}

func TestMemDiskWriteCopies(t *testing.T) {
	d := NewMemDisk()
	buf := []byte("abc")
	if err := d.Write(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	if got := string(d.Contents()); got != "abc" {
		t.Fatalf("Write aliased caller buffer: %q", got)
	}
}

func TestMemDiskClosed(t *testing.T) {
	d := NewMemDisk()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
}

func TestSimDiskLatency(t *testing.T) {
	d := NewSimDisk(20*time.Millisecond, 0)
	start := time.Now()
	if err := d.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Fatalf("SimDisk write took %v, want >= ~20ms", elapsed)
	}
	if d.Writes() != 1 || d.Bytes() != 1 {
		t.Fatalf("counters: writes=%d bytes=%d", d.Writes(), d.Bytes())
	}
}

func TestSimDiskClosed(t *testing.T) {
	d := NewSimDisk(0, 0)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
}

func TestFileDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFaultyDisk(t *testing.T) {
	inner := NewMemDisk()
	d := NewFaultyDisk(inner, 3)
	if err := d.Write([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write([]byte("3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write = %v, want ErrInjected", err)
	}
	if err := d.Write([]byte("4")); !errors.Is(err, ErrInjected) {
		t.Fatalf("fourth write = %v, want ErrInjected", err)
	}
	if got := string(inner.Contents()); got != "12" {
		t.Fatalf("inner contents = %q, want \"12\"", got)
	}
}

func TestPoolSingleWrite(t *testing.T) {
	mem := NewMemDisk()
	p := NewPool([]Disk{mem})
	defer p.Close()
	if err := p.SyncWrite([]byte("record")); err != nil {
		t.Fatal(err)
	}
	if got := string(mem.Contents()); got != "record" {
		t.Fatalf("contents = %q", got)
	}
}

func TestPoolAllCallbacksRun(t *testing.T) {
	p := NewPool([]Disk{NewSimDisk(time.Millisecond, 0), NewSimDisk(time.Millisecond, 0)})
	defer p.Close()
	const n = 200
	var wg sync.WaitGroup
	var failures atomic.Int64
	wg.Add(n)
	for i := 0; i < n; i++ {
		err := p.Submit(Request{Payload: []byte{byte(i)}, Done: func(err error) {
			if err != nil {
				failures.Add(1)
			}
			wg.Done()
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}
}

// TestPoolGroupCommit verifies the core §2.4 property: when requests arrive
// faster than a single slow disk can absorb them, the collector batches
// them so the disk sees far fewer writes than there were requests.
func TestPoolGroupCommit(t *testing.T) {
	disk := NewSimDisk(10*time.Millisecond, 0)
	p := NewPool([]Disk{disk})
	defer p.Close()

	const n = 100
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := p.Submit(Request{Payload: []byte("d"), Done: func(error) { wg.Done() }}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if w := disk.Writes(); w >= n/2 {
		t.Fatalf("group commit ineffective: %d disk writes for %d requests", w, n)
	}
}

// concurrencyDisk records the maximum number of overlapping writes.
type concurrencyDisk struct {
	inner   Disk
	current *atomic.Int64
	max     *atomic.Int64
}

func (d *concurrencyDisk) Write(p []byte) error {
	cur := d.current.Add(1)
	for {
		m := d.max.Load()
		if cur <= m || d.max.CompareAndSwap(m, cur) {
			break
		}
	}
	err := d.inner.Write(p)
	d.current.Add(-1)
	return err
}

func (d *concurrencyDisk) Close() error { return d.inner.Close() }

// TestPoolParallelDisks verifies that with two storage points the pool
// actually drives overlapping writes (the §2.4 parallel-logging property),
// while with one it never does.
func TestPoolParallelDisks(t *testing.T) {
	run := func(nDisks int) int64 {
		var current, max atomic.Int64
		disks := make([]Disk, nDisks)
		for i := range disks {
			disks[i] = &concurrencyDisk{
				inner:   NewSimDisk(5*time.Millisecond, 0),
				current: &current,
				max:     &max,
			}
		}
		p := NewPool(disks)
		defer p.Close()
		var wg sync.WaitGroup
		const n = 40
		wg.Add(n)
		for i := 0; i < n; i++ {
			if err := p.Submit(Request{Payload: []byte("x"), Done: func(error) { wg.Done() }}); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		return max.Load()
	}
	if got := run(1); got != 1 {
		t.Fatalf("one disk reached write concurrency %d, want 1", got)
	}
	if got := run(2); got != 2 {
		t.Fatalf("two disks reached write concurrency %d, want 2", got)
	}
}

// TestPoolGroupCommitWindow verifies the NewPoolDelayed window: requests
// issued within the window of the first one share its stable write.
func TestPoolGroupCommitWindow(t *testing.T) {
	disk := NewSimDisk(5*time.Millisecond, 0)
	p := NewPoolDelayed([]Disk{disk}, 2*time.Millisecond)
	defer p.Close()
	var wg sync.WaitGroup
	const n = 10
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := p.Submit(Request{Payload: []byte("x"), Done: func(error) { wg.Done() }}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if w := disk.Writes(); w != 1 {
		t.Fatalf("disk writes = %d, want 1 (window should batch all)", w)
	}
}

func TestPoolClosePendingFail(t *testing.T) {
	p := NewPool([]Disk{NewSimDisk(50*time.Millisecond, 0)})
	var closedErr atomic.Int64
	var wg sync.WaitGroup
	// First request occupies the disk; the rest accumulate at the
	// collector and must fail with ErrClosed when we close mid-flight.
	for i := 0; i < 5; i++ {
		wg.Add(1)
		if err := p.Submit(Request{Payload: []byte("x"), Done: func(err error) {
			if errors.Is(err, ErrClosed) {
				closedErr.Add(1)
			}
			wg.Done()
		}}); err != nil {
			wg.Done()
		}
	}
	time.Sleep(5 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := p.Submit(Request{Payload: []byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestPoolWriteErrorPropagates(t *testing.T) {
	p := NewPool([]Disk{NewFaultyDisk(NewMemDisk(), 1)})
	defer p.Close()
	if err := p.SyncWrite([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("SyncWrite = %v, want ErrInjected", err)
	}
}

func TestPoolPreservesBatchOrderWithinWrite(t *testing.T) {
	mem := NewMemDisk()
	p := NewPool([]Disk{mem})
	var wg sync.WaitGroup
	var payloads [][]byte
	for i := 0; i < 50; i++ {
		payloads = append(payloads, []byte{byte(i)})
	}
	wg.Add(len(payloads))
	for _, pl := range payloads {
		if err := p.Submit(Request{Payload: pl, Done: func(error) { wg.Done() }}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, pl := range payloads {
		want = append(want, pl...)
	}
	if !bytes.Equal(mem.Contents(), want) {
		t.Fatalf("disk contents reordered:\n got %v\nwant %v", mem.Contents(), want)
	}
}

func BenchmarkPoolSyncWrite(b *testing.B) {
	p := NewPool([]Disk{NewMemDisk()})
	defer p.Close()
	payload := bytes.Repeat([]byte{1}, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SyncWrite(payload); err != nil {
			b.Fatal(err)
		}
	}
}
