package cq

import (
	"strings"
	"sync"
	"testing"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

func TestParseValidQueries(t *testing.T) {
	tests := []struct {
		in   string
		agg  Aggregate
		srcs int
	}{
		{"SELECT AVG(VALUE) FROM s WINDOW COUNT 10", AggAvg, 1},
		{"select avg(value) from s window count 10", AggAvg, 1},
		{"SELECT SUM(VALUE) FROM s WINDOW TIME 1000", AggSum, 1},
		{"SELECT COUNT(*) FROM a, b GROUP BY CLASS(16)", AggCountClass, 2},
		{"SELECT COUNT(DISTINCT KEY) FROM s", AggCountDistinct, 1},
		{"SELECT DISTINCT KEY FROM s", AggDistinct, 1},
		{"SELECT VALUE FROM s WHERE KEY % 2 == 0", AggProject, 1},
		{"SELECT KEY FROM s WHERE VALUE >= 100", AggProject, 1},
	}
	for _, tt := range tests {
		q, err := Parse(tt.in)
		if err != nil {
			t.Errorf("%q: %v", tt.in, err)
			continue
		}
		if q.Agg != tt.agg || len(q.Sources) != tt.srcs {
			t.Errorf("%q: agg=%v srcs=%d", tt.in, q.Agg, len(q.Sources))
		}
		// String round-trips through the parser.
		if _, err := Parse(q.String()); err != nil {
			t.Errorf("canonical form %q does not re-parse: %v", q.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT MAX(VALUE) FROM s",
		"SELECT AVG(KEY) FROM s WINDOW COUNT 5",
		"SELECT AVG(VALUE) FROM s",               // missing window
		"SELECT AVG(VALUE) FROM s WINDOW TIME 5", // wrong window kind
		"SELECT SUM(VALUE) FROM s WINDOW COUNT 5",   // wrong window kind
		"SELECT COUNT(*) FROM s",                    // missing GROUP BY
		"SELECT COUNT(*) FROM s GROUP BY CLASS(0)",  // bad class count
		"SELECT VALUE FROM",                         // missing source
		"SELECT VALUE FROM s WHERE KEY % 0 == 1",    // bad modulus
		"SELECT VALUE FROM s WHERE KEY = 1",         // stray =
		"SELECT VALUE FROM s WINDOW COUNT 5",        // window on projection
		"SELECT VALUE FROM s garbage",               // trailing input
		"SELECT VALUE FROM s WHERE TIMESTAMP == 1",  // bad field
		"SELECT AVG(VALUE) FROM s WINDOW COUNT -5",  // lexer: '-'
		"SELECT DISTINCT VALUE FROM s",              // distinct only on KEY
		"SELECT COUNT(DISTINCT VALUE) FROM s",       // distinct only on KEY
		"SELECT AVG(VALUE) FROM s WINDOW WEEKS 5",   // bad window kind
		"SELECT VALUE FROM s WHERE KEY == 1 @",      // bad character
		"SELECT COUNT(*) FROM s GROUP BY BUCKET(4)", // bad group kind
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("%q parsed without error", in)
		}
	}
}

// runQuery compiles and executes a query over generated events.
func runQuery(t *testing.T, queryText string, feed func(emit func(stream string, key, value uint64))) []event.Event {
	t.Helper()
	q, err := Parse(queryText)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	sources := make(map[string]graph.NodeID)
	for _, name := range q.Sources {
		sources[name] = g.AddNode(graph.Node{Name: name})
	}
	att, err := Attach(g, q, sources, Options{Speculative: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := core.New(g, core.Options{Pool: pool, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	var mu sync.Mutex
	var outs []event.Event
	if err := eng.Subscribe(att.Output, 0, func(ev event.Event, final bool) {
		if !final {
			return
		}
		mu.Lock()
		outs = append(outs, ev)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	handles := make(map[string]*core.SourceHandle, len(sources))
	for name, id := range sources {
		h, err := eng.Source(id)
		if err != nil {
			t.Fatal(err)
		}
		handles[name] = h
	}
	feed(func(stream string, key, value uint64) {
		h, ok := handles[stream]
		if !ok {
			t.Fatalf("unknown stream %q in feed", stream)
		}
		if _, err := h.Emit(key, operator.EncodeValue(value)); err != nil {
			t.Fatal(err)
		}
	})
	eng.Drain()
	// Finalize callbacks may land just after drain; settle briefly.
	time.Sleep(2 * time.Millisecond)
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	out := make([]event.Event, len(outs))
	copy(out, outs)
	return out
}

func TestEndToEndAvgWindow(t *testing.T) {
	outs := runQuery(t, "SELECT AVG(VALUE) FROM ticks WINDOW COUNT 4", func(emit func(string, uint64, uint64)) {
		for i := uint64(0); i < 8; i++ {
			emit("ticks", i, 10*(i%4)) // each window: 0,10,20,30 → avg 15
		}
	})
	if len(outs) != 2 {
		t.Fatalf("windows = %d, want 2", len(outs))
	}
	for _, o := range outs {
		if got := operator.DecodeValue(o.Payload); got != 15 {
			t.Fatalf("window avg = %d, want 15", got)
		}
	}
}

func TestEndToEndFilterProjection(t *testing.T) {
	outs := runQuery(t, "SELECT VALUE FROM s WHERE KEY % 3 == 0", func(emit func(string, uint64, uint64)) {
		for i := uint64(0); i < 12; i++ {
			emit("s", i, i*100)
		}
	})
	if len(outs) != 4 {
		t.Fatalf("outputs = %d, want 4 (keys 0,3,6,9)", len(outs))
	}
	for _, o := range outs {
		if o.Key%3 != 0 {
			t.Fatalf("key %d leaked through the filter", o.Key)
		}
	}
}

func TestEndToEndUnionCountClass(t *testing.T) {
	outs := runQuery(t, "SELECT COUNT(*) FROM a, b GROUP BY CLASS(2)", func(emit func(string, uint64, uint64)) {
		for i := uint64(0); i < 6; i++ {
			emit("a", i, 0)
			emit("b", i, 0)
		}
	})
	if len(outs) != 12 {
		t.Fatalf("outputs = %d, want 12", len(outs))
	}
	// Max count per class must equal the events routed there (6 each).
	max := map[uint64]uint64{}
	for _, o := range outs {
		class, count := operator.DecodePair(o.Payload)
		if count > max[class] {
			max[class] = count
		}
	}
	if max[0] != 6 || max[1] != 6 {
		t.Fatalf("class maxima = %v, want 6/6", max)
	}
}

func TestEndToEndCountDistinct(t *testing.T) {
	outs := runQuery(t, "SELECT COUNT(DISTINCT KEY) FROM s", func(emit func(string, uint64, uint64)) {
		for rep := 0; rep < 3; rep++ {
			for i := uint64(0); i < 50; i++ {
				emit("s", i, 0)
			}
		}
	})
	last := operator.DecodeValue(outs[len(outs)-1].Payload)
	if last < 45 || last > 55 {
		t.Fatalf("distinct estimate = %d, want ≈50", last)
	}
}

func TestEndToEndDistinctKey(t *testing.T) {
	outs := runQuery(t, "SELECT DISTINCT KEY FROM s", func(emit func(string, uint64, uint64)) {
		for rep := 0; rep < 4; rep++ {
			for i := uint64(0); i < 5; i++ {
				emit("s", i, i)
			}
		}
	})
	if len(outs) != 5 {
		t.Fatalf("outputs = %d, want 5 distinct keys", len(outs))
	}
}

func TestAttachUnknownSource(t *testing.T) {
	q, err := Parse("SELECT VALUE FROM missing")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	if _, err := Attach(g, q, nil, Options{}); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestPredicateOperators(t *testing.T) {
	mk := func(op string, lit uint64) func(event.Event) bool {
		return predicateFn(&Predicate{Field: FieldValue, Op: op, Literal: lit})
	}
	e := func(v uint64) event.Event { return event.Event{Payload: operator.EncodeValue(v)} }
	if !mk("==", 5)(e(5)) || mk("==", 5)(e(6)) {
		t.Fatal("== broken")
	}
	if !mk("!=", 5)(e(6)) || mk("!=", 5)(e(5)) {
		t.Fatal("!= broken")
	}
	if !mk("<", 5)(e(4)) || mk("<", 5)(e(5)) {
		t.Fatal("< broken")
	}
	if !mk("<=", 5)(e(5)) || mk("<=", 5)(e(6)) {
		t.Fatal("<= broken")
	}
	if !mk(">", 5)(e(6)) || mk(">", 5)(e(5)) {
		t.Fatal("> broken")
	}
	if !mk(">=", 5)(e(5)) || mk(">=", 5)(e(4)) {
		t.Fatal(">= broken")
	}
	if predicateFn(&Predicate{Field: FieldKey, Op: "~~", Literal: 1})(e(1)) {
		t.Fatal("bogus operator matched")
	}
}

func TestQueryStringForms(t *testing.T) {
	for _, in := range []string{
		"SELECT COUNT(*) FROM a, b GROUP BY CLASS(4)",
		"SELECT SUM(VALUE) FROM s WINDOW TIME 500",
		"SELECT VALUE FROM s WHERE VALUE % 7 != 3",
	} {
		q, err := Parse(in)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(q.String(), "FROM") {
			t.Fatalf("String() = %q", q.String())
		}
	}
}
