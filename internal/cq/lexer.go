package cq

import (
	"fmt"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokSymbol // ( ) , * %
	tokCmp    // == != < > <= >=
	tokEOF
)

// token is one lexeme with its position (for error messages).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the query into tokens. Identifiers/keywords are upper-cased.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '%':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			start := i
			i++
			if i < len(input) && input[i] == '=' {
				i++
			}
			op := input[start:i]
			if op == "=" || op == "!" {
				return nil, fmt.Errorf("cq: stray %q at %d (use == or !=)", op, start)
			}
			toks = append(toks, token{kind: tokCmp, text: op, pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			// Case preserved: keywords match case-insensitively, stream
			// names keep the user's spelling.
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("cq: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
