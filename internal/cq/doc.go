// Package cq provides a small continuous-query language compiled onto
// the StreamMine operator library — the query front-end an ESP framework
// is expected to ship. Supported forms:
//
//	SELECT AVG(VALUE)          FROM s            WINDOW COUNT 10
//	SELECT SUM(VALUE)          FROM s            WINDOW TIME 1000
//	SELECT COUNT(*)            FROM a, b         GROUP BY CLASS(16)
//	SELECT COUNT(DISTINCT KEY) FROM s
//	SELECT DISTINCT KEY        FROM s
//	SELECT VALUE               FROM s            WHERE KEY % 2 == 0
//	SELECT VALUE               FROM s            WHERE VALUE >= 100
//
// Multiple FROM streams are merged by an order-logged Union; WHERE adds
// a Filter stage; the selection picks the aggregate operator. Because
// the compiled stages are ordinary operators, a query runs speculatively
// and recovers precisely like any hand-built pipeline.
//
// Entry points:
//
//   - Parse compiles the query text into a Query (lexer + recursive-
//     descent parser; errors carry the offending token position).
//   - Attach wires the compiled chain into a graph.Graph between named
//     source nodes and a fresh output node, returning the Attached
//     handle with the output NodeID to subscribe to. Options controls
//     speculation, workers and checkpointing of the generated nodes.
//   - The Query structure (Aggregate, Field, Predicate, WindowKind) is
//     exported so tools can inspect or build plans programmatically.
//
// The `streammine -query` flag is the command-line wrapper around
// Parse + Attach against synthetic paced sources.
package cq
