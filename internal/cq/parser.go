package cq

import (
	"fmt"
	"strconv"
	"strings"
)

// Aggregate identifies the selection's operator family.
type Aggregate int

// Selection kinds.
const (
	AggProject       Aggregate = iota + 1 // SELECT KEY / SELECT VALUE
	AggAvg                                // AVG(VALUE) + WINDOW COUNT
	AggSum                                // SUM(VALUE) + WINDOW TIME
	AggCountClass                         // COUNT(*) GROUP BY CLASS(n)
	AggCountDistinct                      // COUNT(DISTINCT KEY)
	AggDistinct                           // SELECT DISTINCT KEY
)

// Field names a predicate operand.
type Field int

// Predicate operands.
const (
	FieldKey Field = iota + 1
	FieldValue
)

// Predicate is an optional WHERE clause: [field [% mod]] cmp literal.
type Predicate struct {
	Field   Field
	Mod     uint64 // 0 = no modulus
	Op      string // == != < <= > >=
	Literal uint64
}

// WindowKind discriminates windowed aggregates.
type WindowKind int

// Window kinds.
const (
	WindowNone WindowKind = iota
	WindowCount
	WindowTime
)

// Query is a parsed continuous query.
type Query struct {
	Agg     Aggregate
	Sources []string
	Where   *Predicate
	Window  WindowKind
	Size    int64 // window size / class count as applicable
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		t := p.peek()
		return fmt.Errorf("cq: expected %s at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return nil
	}
	return fmt.Errorf("cq: expected %q at %d, got %q", sym, t.pos, t.text)
}

func (p *parser) number() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("cq: expected number at %d, got %q", t.pos, t.text)
	}
	p.next()
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cq: bad number %q: %w", t.text, err)
	}
	return n, nil
}

// Parse compiles the query text into a Query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}

	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelection(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseSources(q); err != nil {
		return nil, err
	}
	if p.keyword("WHERE") {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		q.Where = pred
	}
	if err := p.parseTrailers(q); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("cq: trailing input at %d: %q", t.pos, t.text)
	}
	return q, q.validate()
}

func (p *parser) parseSelection(q *Query) error {
	switch {
	case p.keyword("AVG"):
		q.Agg = AggAvg
		return p.parenField("VALUE")
	case p.keyword("SUM"):
		q.Agg = AggSum
		return p.parenField("VALUE")
	case p.keyword("COUNT"):
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		if p.keyword("DISTINCT") {
			if err := p.expectKeyword("KEY"); err != nil {
				return err
			}
			q.Agg = AggCountDistinct
		} else {
			if err := p.expectSymbol("*"); err != nil {
				return err
			}
			q.Agg = AggCountClass
		}
		return p.expectSymbol(")")
	case p.keyword("DISTINCT"):
		q.Agg = AggDistinct
		return p.expectKeyword("KEY")
	case p.keyword("KEY"), p.keyword("VALUE"):
		q.Agg = AggProject
		return nil
	default:
		t := p.peek()
		return fmt.Errorf("cq: unsupported selection at %d: %q", t.pos, t.text)
	}
}

// parenField consumes "( <field> )".
func (p *parser) parenField(field string) error {
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if err := p.expectKeyword(field); err != nil {
		return err
	}
	return p.expectSymbol(")")
}

func (p *parser) parseSources(q *Query) error {
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return fmt.Errorf("cq: expected stream name at %d, got %q", t.pos, t.text)
		}
		p.next()
		q.Sources = append(q.Sources, t.text)
		if s := p.peek(); s.kind == tokSymbol && s.text == "," {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parsePredicate() (*Predicate, error) {
	pred := &Predicate{}
	switch {
	case p.keyword("KEY"):
		pred.Field = FieldKey
	case p.keyword("VALUE"):
		pred.Field = FieldValue
	default:
		t := p.peek()
		return nil, fmt.Errorf("cq: WHERE expects KEY or VALUE at %d, got %q", t.pos, t.text)
	}
	if t := p.peek(); t.kind == tokSymbol && t.text == "%" {
		p.next()
		mod, err := p.number()
		if err != nil {
			return nil, err
		}
		if mod <= 0 {
			return nil, fmt.Errorf("cq: modulus must be positive, got %d", mod)
		}
		pred.Mod = uint64(mod)
	}
	t := p.peek()
	if t.kind != tokCmp {
		return nil, fmt.Errorf("cq: expected comparison at %d, got %q", t.pos, t.text)
	}
	p.next()
	pred.Op = t.text
	lit, err := p.number()
	if err != nil {
		return nil, err
	}
	if lit < 0 {
		return nil, fmt.Errorf("cq: negative literal %d", lit)
	}
	pred.Literal = uint64(lit)
	return pred, nil
}

func (p *parser) parseTrailers(q *Query) error {
	for {
		switch {
		case p.keyword("WINDOW"):
			switch {
			case p.keyword("COUNT"):
				q.Window = WindowCount
			case p.keyword("TIME"):
				q.Window = WindowTime
			default:
				t := p.peek()
				return fmt.Errorf("cq: WINDOW expects COUNT or TIME at %d, got %q", t.pos, t.text)
			}
			n, err := p.number()
			if err != nil {
				return err
			}
			if n <= 0 {
				return fmt.Errorf("cq: window size must be positive, got %d", n)
			}
			q.Size = n
		case p.keyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			if err := p.expectKeyword("CLASS"); err != nil {
				return err
			}
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			n, err := p.number()
			if err != nil {
				return err
			}
			if n <= 0 {
				return fmt.Errorf("cq: class count must be positive, got %d", n)
			}
			q.Size = n
			if err := p.expectSymbol(")"); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// validate checks selection/clause compatibility.
func (q *Query) validate() error {
	if len(q.Sources) == 0 {
		return fmt.Errorf("cq: no sources")
	}
	switch q.Agg {
	case AggAvg:
		if q.Window != WindowCount {
			return fmt.Errorf("cq: AVG(VALUE) requires WINDOW COUNT n")
		}
	case AggSum:
		if q.Window != WindowTime {
			return fmt.Errorf("cq: SUM(VALUE) requires WINDOW TIME t")
		}
	case AggCountClass:
		if q.Size <= 0 {
			return fmt.Errorf("cq: COUNT(*) requires GROUP BY CLASS(n)")
		}
		if q.Window != WindowNone {
			return fmt.Errorf("cq: COUNT(*) does not take a WINDOW clause")
		}
	case AggCountDistinct, AggDistinct, AggProject:
		if q.Window != WindowNone {
			return fmt.Errorf("cq: this selection does not take a WINDOW clause")
		}
	default:
		return fmt.Errorf("cq: missing selection")
	}
	return nil
}

// String reconstructs a canonical form of the query (diagnostics).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch q.Agg {
	case AggAvg:
		b.WriteString("AVG(VALUE)")
	case AggSum:
		b.WriteString("SUM(VALUE)")
	case AggCountClass:
		b.WriteString("COUNT(*)")
	case AggCountDistinct:
		b.WriteString("COUNT(DISTINCT KEY)")
	case AggDistinct:
		b.WriteString("DISTINCT KEY")
	default:
		b.WriteString("VALUE")
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Sources, ", "))
	if q.Where != nil {
		b.WriteString(" WHERE ")
		if q.Where.Field == FieldKey {
			b.WriteString("KEY")
		} else {
			b.WriteString("VALUE")
		}
		if q.Where.Mod > 0 {
			fmt.Fprintf(&b, " %% %d", q.Where.Mod)
		}
		fmt.Fprintf(&b, " %s %d", q.Where.Op, q.Where.Literal)
	}
	switch q.Window {
	case WindowCount:
		fmt.Fprintf(&b, " WINDOW COUNT %d", q.Size)
	case WindowTime:
		fmt.Fprintf(&b, " WINDOW TIME %d", q.Size)
	}
	if q.Agg == AggCountClass {
		fmt.Fprintf(&b, " GROUP BY CLASS(%d)", q.Size)
	}
	return b.String()
}
