package cq

import (
	"fmt"

	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
)

// Options configure the compiled pipeline.
type Options struct {
	// Speculative applies to every generated node.
	Speculative bool
	// Workers is the worker count for the aggregate stage (optimistic
	// parallelization); minimum 1.
	Workers int
	// CheckpointEvery configures the aggregate stage's checkpoints.
	CheckpointEvery int
	// NamePrefix prefixes generated node names (default "cq").
	NamePrefix string
	// DistinctPrecision sets the HyperLogLog precision for
	// COUNT(DISTINCT KEY) (default 12).
	DistinctPrecision uint
	// DedupCapacity sets the key memory for SELECT DISTINCT KEY
	// (default 1024).
	DedupCapacity int
}

// Attached reports the nodes a query compiled to.
type Attached struct {
	// Output is the node whose port 0 carries the query results.
	Output graph.NodeID
	// Nodes lists every node the query added, in pipeline order.
	Nodes []graph.NodeID
}

// Attach compiles the query into operator nodes inside g, connecting them
// to the named source nodes. Sources maps FROM names to existing nodes
// (their port 0 is used).
func Attach(g *graph.Graph, q *Query, sources map[string]graph.NodeID, opts Options) (*Attached, error) {
	if opts.NamePrefix == "" {
		opts.NamePrefix = "cq"
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.DistinctPrecision == 0 {
		opts.DistinctPrecision = 12
	}
	if opts.DedupCapacity <= 0 {
		opts.DedupCapacity = 1024
	}
	var upstream []graph.NodeID
	for _, name := range q.Sources {
		id, ok := sources[name]
		if !ok {
			return nil, fmt.Errorf("cq: unknown source %q", name)
		}
		upstream = append(upstream, id)
	}

	att := &Attached{}
	head := upstream[0]
	if len(upstream) > 1 {
		union := g.AddNode(graph.Node{
			Name:        opts.NamePrefix + "-union",
			Op:          &operator.Union{},
			Traits:      operator.Traits{Stateful: true, OrderSensitive: true},
			Speculative: opts.Speculative,
		})
		for i, up := range upstream {
			g.Connect(up, 0, union, i)
		}
		att.Nodes = append(att.Nodes, union)
		head = union
	}

	if q.Where != nil {
		filter := g.AddNode(graph.Node{
			Name:        opts.NamePrefix + "-filter",
			Op:          &operator.Filter{Pred: predicateFn(q.Where)},
			Traits:      operator.FilterTraits,
			Speculative: opts.Speculative,
		})
		g.Connect(head, 0, filter, 0)
		att.Nodes = append(att.Nodes, filter)
		head = filter
	}

	spec, err := aggregateNode(q, opts)
	if err != nil {
		return nil, err
	}
	agg := g.AddNode(spec)
	g.Connect(head, 0, agg, 0)
	att.Nodes = append(att.Nodes, agg)
	att.Output = agg

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("cq: compiled graph invalid: %w", err)
	}
	return att, nil
}

// aggregateNode builds the selection's operator node.
func aggregateNode(q *Query, opts Options) (graph.Node, error) {
	n := graph.Node{
		Name:            opts.NamePrefix + "-agg",
		Speculative:     opts.Speculative,
		Workers:         opts.Workers,
		CheckpointEvery: opts.CheckpointEvery,
	}
	switch q.Agg {
	case AggAvg:
		n.Op = &operator.CountWindowAvg{Window: int(q.Size)}
		n.Traits = operator.CountWindowTraits
	case AggSum:
		n.Op = &operator.TimeWindowSum{Width: q.Size}
		n.Traits = operator.TimeWindowTraits
	case AggCountClass:
		n.Op = &operator.Classifier{Classes: int(q.Size)}
		n.Traits = operator.ClassifierTraits(int(q.Size))
	case AggCountDistinct:
		n.Op = &operator.DistinctCount{Precision: opts.DistinctPrecision, Seed: 0x5EED}
		n.Traits = operator.DistinctCountTraits(opts.DistinctPrecision)
	case AggDistinct:
		n.Op = &operator.Dedup{Capacity: opts.DedupCapacity}
		n.Traits = operator.DedupTraits(opts.DedupCapacity)
	case AggProject:
		n.Op = &operator.Passthrough{}
		n.Traits = operator.Traits{Deterministic: true}
	default:
		return graph.Node{}, fmt.Errorf("cq: no operator for selection %d", q.Agg)
	}
	return n, nil
}

// predicateFn compiles a WHERE clause to a filter predicate.
func predicateFn(p *Predicate) func(event.Event) bool {
	field := func(e event.Event) uint64 {
		v := e.Key
		if p.Field == FieldValue {
			v = operator.DecodeValue(e.Payload)
		}
		if p.Mod > 0 {
			v %= p.Mod
		}
		return v
	}
	lit := p.Literal
	switch p.Op {
	case "==":
		return func(e event.Event) bool { return field(e) == lit }
	case "!=":
		return func(e event.Event) bool { return field(e) != lit }
	case "<":
		return func(e event.Event) bool { return field(e) < lit }
	case "<=":
		return func(e event.Event) bool { return field(e) <= lit }
	case ">":
		return func(e event.Event) bool { return field(e) > lit }
	case ">=":
		return func(e event.Event) bool { return field(e) >= lit }
	default:
		// Parser guarantees a valid operator; reject everything if not.
		return func(event.Event) bool { return false }
	}
}
