package ingest

import (
	"bufio"
	"crypto/tls"
	"fmt"
	"net"
	"time"
)

// Client is a binary-lane producer with at-least-once delivery on top of
// the gateway's exactly-once dedup: it assigns contiguous sequence
// numbers, retries on connection loss and RETRY verdicts with
// exponential backoff, and relies on the server to absorb the resulting
// resends as duplicates. One Client drives one stream from one
// goroutine; run several Clients for concurrency.
type Client struct {
	addr    string
	stream  string
	opts    ClientOptions
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	nextSeq uint64

	acked   uint64
	dups    uint64
	retries uint64
}

// ClientOptions tunes a Client. The zero value is usable against an
// open-mode gateway on a healthy network.
type ClientOptions struct {
	// Token is the tenant's bearer token.
	Token string
	// TLS, when set, dials through TLS (e.g. InsecureSkipVerify for
	// self-signed test certificates).
	TLS *tls.Config
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// Backoff is the initial retry delay, doubled per consecutive
	// failure up to 2s (default 50ms).
	Backoff time.Duration
	// MaxElapsed bounds the total time Send may spend retrying one batch
	// (default 60s).
	MaxElapsed time.Duration
}

// NewClient returns an unconnected client; the first Send dials.
func NewClient(addr, stream string, opts ClientOptions) *Client {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.MaxElapsed <= 0 {
		opts.MaxElapsed = 60 * time.Second
	}
	return &Client{addr: addr, stream: stream, opts: opts, nextSeq: 1}
}

// fatalError is a server verdict that retrying cannot fix.
type fatalError struct {
	code uint64
	msg  string
}

func (e *fatalError) Error() string {
	return fmt.Sprintf("ingest: server error %d: %s", e.code, e.msg)
}

func (c *Client) dial() error {
	var conn net.Conn
	var err error
	if c.opts.TLS != nil {
		conn, err = tls.DialWithDialer(&net.Dialer{Timeout: c.opts.DialTimeout}, "tcp", c.addr, c.opts.TLS)
	} else {
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	}
	if err != nil {
		return err
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 32<<10)
	if _, err := w.WriteString(magic); err != nil {
		_ = conn.Close()
		return err
	}
	if err := writeFrame(w, frameHello, encodeHello(c.opts.Token, c.stream)); err != nil {
		_ = conn.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = conn.Close()
		return err
	}
	typ, body, err := readFrame(r)
	if err != nil {
		_ = conn.Close()
		return err
	}
	if typ == frameErr {
		_ = conn.Close()
		code, msg, derr := decodeErr(body)
		if derr != nil {
			return derr
		}
		return &fatalError{code: code, msg: msg}
	}
	if typ != frameHelloOK {
		_ = conn.Close()
		return fmt.Errorf("ingest: unexpected hello reply %#x", typ)
	}
	c.conn, c.r, c.w = conn, r, w
	return nil
}

func (c *Client) drop() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Record is one record to send.
type Record struct {
	Key     uint64
	Payload []byte
}

// Send delivers one batch, assigning it the next contiguous sequence
// range, and blocks until the gateway acknowledges it (retrying through
// disconnects and RETRY verdicts). Safe to call repeatedly; not safe for
// concurrent use.
func (c *Client) Send(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	wire := make([]batchRecord, len(recs))
	for i, r := range recs {
		wire[i] = batchRecord{Key: r.Key, Payload: r.Payload}
	}
	firstSeq := c.nextSeq
	body := encodeBatch(firstSeq, wire)
	deadline := time.Now().Add(c.opts.MaxElapsed)
	backoff := c.opts.Backoff

	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries++
			if time.Now().After(deadline) {
				return fmt.Errorf("ingest: batch at seq %d not acknowledged within %v", firstSeq, c.opts.MaxElapsed)
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		if c.conn == nil {
			if err := c.dial(); err != nil {
				var fe *fatalError
				if ok := asFatal(err, &fe); ok {
					return fe
				}
				continue
			}
		}
		if err := writeFrame(c.w, frameBatch, body); err != nil {
			c.drop()
			continue
		}
		if err := c.w.Flush(); err != nil {
			c.drop()
			continue
		}
		typ, rbody, err := readFrame(c.r)
		if err != nil {
			c.drop()
			continue
		}
		switch typ {
		case frameAck:
			through, dups, err := decodeAck(rbody)
			if err != nil {
				c.drop()
				continue
			}
			end := firstSeq + uint64(len(recs)) - 1
			if through < end {
				c.drop()
				return fmt.Errorf("ingest: partial ack through %d, expected %d", through, end)
			}
			c.nextSeq = end + 1
			c.acked += uint64(len(recs))
			c.dups += dups
			return nil
		case frameRetry:
			afterMillis, _, err := decodeRetry(rbody)
			if err != nil {
				c.drop()
				continue
			}
			// Honor the server's Retry-After in place of our own backoff.
			if d := time.Duration(afterMillis) * time.Millisecond; d > backoff {
				backoff = d
			}
			continue
		case frameErr:
			code, msg, derr := decodeErr(rbody)
			c.drop()
			if derr != nil {
				return derr
			}
			return &fatalError{code: code, msg: msg}
		default:
			c.drop()
			continue
		}
	}
}

func asFatal(err error, out **fatalError) bool {
	fe, ok := err.(*fatalError)
	if ok {
		*out = fe
	}
	return ok
}

// Acked returns the number of records acknowledged so far.
func (c *Client) Acked() uint64 { return c.acked }

// Dups returns the duplicate count the server reported across ACKs —
// the retries its dedup absorbed.
func (c *Client) Dups() uint64 { return c.dups }

// Retries returns the number of send attempts beyond the first.
func (c *Client) Retries() uint64 { return c.retries }

// NextSeq returns the sequence the next Send will start at.
func (c *Client) NextSeq() uint64 { return c.nextSeq }

// Close drops the connection.
func (c *Client) Close() { c.drop() }
