package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary ingest lane is a length-prefixed frame stream. A connection
// opens with the 4-byte magic "SMI1" (which is also how the shared
// listener tells the binary lane from HTTP: no HTTP method starts with
// those bytes), followed by a HELLO carrying the static auth token and
// the target stream. Every subsequent client frame is a BATCH of records
// with contiguous client sequence numbers; the server answers each with
// exactly one ACK, RETRY or ERR frame, in order.
//
//	frame   := length(uint32 LE, bytes after itself) type(byte) body
//	HELLO   := str(token) str(stream)
//	HELLOOK := str(tenant)
//	BATCH   := uvarint(firstSeq) uvarint(count)
//	           count × { uvarint(key) uvarint(len) payload }
//	ACK     := uvarint(throughSeq) uvarint(dups)
//	RETRY   := uvarint(afterMillis) str(reason)
//	ERR     := uvarint(code) str(message)
//	str     := uvarint(len) bytes
//
// RETRY is the connection-preserving backpressure verdict (per-tenant
// quota, engine shed, drain, stream not yet registered); ERR is terminal
// for the connection (bad token, sequence gap, malformed frame).

// magic is the binary-lane preamble; anything else is served as HTTP.
const magic = "SMI1"

// Frame types.
const (
	frameHello   = byte(0x01)
	frameBatch   = byte(0x02)
	frameAck     = byte(0x03)
	frameRetry   = byte(0x04)
	frameErr     = byte(0x05)
	frameHelloOK = byte(0x06)
)

// ERR codes.
const (
	codeAuth     = 1 // unknown or missing token
	codeGap      = 2 // batch skips past the tenant's sequence floor
	codeBad      = 3 // malformed frame or over-quota batch
	codeInternal = 4 // server-side failure (log or emit error)
)

// maxFrame bounds one frame's wire size; it comfortably fits the largest
// permitted batch and stops a corrupt length prefix from allocating GiBs.
const maxFrame = 16 << 20

// maxStringLen bounds token/stream/reason strings inside frames.
const maxStringLen = 4096

// writeFrame emits one frame. The caller flushes the writer.
func writeFrame(w *bufio.Writer, typ byte, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(1+len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame, enforcing the size bound.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("ingest: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// putString appends a uvarint-length-prefixed string.
func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// cursor is a bounds-checked reader over a frame body.
type cursor struct{ b []byte }

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("ingest: truncated uvarint")
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(c.b) {
		return nil, fmt.Errorf("ingest: truncated field (%d of %d bytes)", n, len(c.b))
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("ingest: string length %d exceeds limit", n)
	}
	b, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func encodeHello(token, stream string) []byte {
	return putString(putString(nil, token), stream)
}

func decodeHello(body []byte) (token, stream string, err error) {
	c := cursor{body}
	if token, err = c.str(); err != nil {
		return
	}
	stream, err = c.str()
	return
}

func encodeHelloOK(tenant string) []byte { return putString(nil, tenant) }

func decodeHelloOK(body []byte) (string, error) {
	c := cursor{body}
	return c.str()
}

// batchRecord is one record on the wire: the event key plus its payload.
type batchRecord struct {
	Key     uint64
	Payload []byte
}

func encodeBatch(firstSeq uint64, recs []batchRecord) []byte {
	b := binary.AppendUvarint(nil, firstSeq)
	b = binary.AppendUvarint(b, uint64(len(recs)))
	for _, r := range recs {
		b = binary.AppendUvarint(b, r.Key)
		b = binary.AppendUvarint(b, uint64(len(r.Payload)))
		b = append(b, r.Payload...)
	}
	return b
}

// decodeBatch parses a BATCH body, rejecting batches beyond maxRecords.
// Payload slices alias the frame body (the admission path copies them
// into the durable log before the frame buffer is reused).
func decodeBatch(body []byte, maxRecords int) (firstSeq uint64, recs []batchRecord, err error) {
	c := cursor{body}
	if firstSeq, err = c.uvarint(); err != nil {
		return
	}
	if firstSeq == 0 {
		return 0, nil, fmt.Errorf("ingest: client sequences are 1-based")
	}
	n, err := c.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n == 0 || n > uint64(maxRecords) {
		return 0, nil, fmt.Errorf("ingest: batch of %d records exceeds the %d-record quota", n, maxRecords)
	}
	recs = make([]batchRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var key, plen uint64
		if key, err = c.uvarint(); err != nil {
			return 0, nil, err
		}
		if plen, err = c.uvarint(); err != nil {
			return 0, nil, err
		}
		var p []byte
		if p, err = c.bytes(int(plen)); err != nil {
			return 0, nil, err
		}
		recs = append(recs, batchRecord{Key: key, Payload: p})
	}
	return firstSeq, recs, nil
}

func encodeAck(through uint64, dups int) []byte {
	b := binary.AppendUvarint(nil, through)
	return binary.AppendUvarint(b, uint64(dups))
}

func decodeAck(body []byte) (through uint64, dups uint64, err error) {
	c := cursor{body}
	if through, err = c.uvarint(); err != nil {
		return
	}
	dups, err = c.uvarint()
	return
}

func encodeRetry(afterMillis uint64, reason string) []byte {
	return putString(binary.AppendUvarint(nil, afterMillis), reason)
}

func decodeRetry(body []byte) (afterMillis uint64, reason string, err error) {
	c := cursor{body}
	if afterMillis, err = c.uvarint(); err != nil {
		return
	}
	reason, err = c.str()
	return
}

func encodeErr(code uint64, msg string) []byte {
	return putString(binary.AppendUvarint(nil, code), msg)
}

func decodeErr(body []byte) (code uint64, msg string, err error) {
	c := cursor{body}
	if code, err = c.uvarint(); err != nil {
		return
	}
	msg, err = c.str()
	return
}
