package ingest

import (
	"sync"
	"testing"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// buildIngestPipeline builds src -> stage where src is fed by the
// gateway. The engine's own state lives on a memory disk: these tests
// exercise the *gateway's* durability, whose admission log replays into a
// completely fresh engine.
func buildIngestPipeline(t *testing.T, srcFlow, stageFlow *flow.Limits, cost time.Duration, reg *metrics.Registry) (*core.Engine, *storage.Pool, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src", Flow: srcFlow})
	stage := g.AddNode(graph.Node{
		Name: "stage", Op: &operator.Classifier{Classes: 4, Cost: cost},
		Traits: operator.ClassifierTraits(4), Speculative: true, Flow: stageFlow,
	})
	g.Connect(src, 0, stage, 0)
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	eng, err := core.New(g, core.Options{Seed: 7, Pool: pool, Metrics: reg})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return eng, pool, src, stage
}

// idSet collects the distinct event identities a subscription observes.
type idSet struct {
	mu  sync.Mutex
	ids map[event.ID]struct{}
}

func newIDSet() *idSet { return &idSet{ids: make(map[event.ID]struct{})} }

func (s *idSet) add(ev event.Event, _ bool) {
	s.mu.Lock()
	s.ids[ev.ID] = struct{}{}
	s.mu.Unlock()
}

func (s *idSet) snapshot() map[event.ID]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[event.ID]struct{}, len(s.ids))
	for id := range s.ids {
		out[id] = struct{}{}
	}
	return out
}

// registerEngineSource detaches the source's admission controller and
// registers its handle with the gateway — the same wiring the worker and
// the single-process runner perform.
func registerEngineSource(t *testing.T, gw *Server, eng *core.Engine, src graph.NodeID) {
	t.Helper()
	adm, _, err := eng.DetachSourceAdmission(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := eng.Source(src)
	if err != nil {
		adm.Close()
		t.Fatal(err)
	}
	if err := gw.RegisterSource("src", h, adm); err != nil {
		adm.Close()
		t.Fatal(err)
	}
}

// TestGatewayRecoveryReplaysExactIdentities is the gateway's half of the
// precise-recovery contract: after losing the whole engine, a restart
// over the same admission-log directory must re-emit every acknowledged
// record with its pre-crash event identity, client retries of everything
// already acknowledged must dedup rather than duplicate, and new records
// must extend (not fork) the stream.
func TestGatewayRecoveryReplaysExactIdentities(t *testing.T) {
	dir := t.TempDir()
	const first, extra = 300, 100
	sendKeys := func(t *testing.T, c *Client, from, n int) {
		t.Helper()
		for sent := 0; sent < n; sent += 50 {
			batch := n - sent
			if batch > 50 {
				batch = 50
			}
			recs := make([]Record, batch)
			for i := range recs {
				key := uint64(from + sent + i)
				recs[i] = Record{Key: key, Payload: operator.EncodeValue(key)}
			}
			if err := c.Send(recs); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Run 1: ingest 300 records, record their engine identities, then
	// lose everything except the gateway's state directory.
	eng1, pool1, src1, _ := buildIngestPipeline(t, nil, nil, 0, nil)
	seen1 := newIDSet()
	if err := eng1.Subscribe(src1, 0, seen1.add); err != nil {
		t.Fatal(err)
	}
	if err := eng1.Start(); err != nil {
		t.Fatal(err)
	}
	gw1, err := Start(Config{Addr: "127.0.0.1:0", StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerEngineSource(t, gw1, eng1, src1)
	c1 := NewClient(gw1.Addr(), "src", ClientOptions{})
	sendKeys(t, c1, 1, first)
	c1.Close()
	eng1.Drain()
	if err := eng1.Err(); err != nil {
		t.Fatal(err)
	}
	ids1 := seen1.snapshot()
	if len(ids1) != first {
		t.Fatalf("run 1 produced %d distinct identities, want %d", len(ids1), first)
	}
	_ = gw1.Close()
	eng1.Stop()
	pool1.Close()

	// Run 2: a fresh engine, fresh gateway, same state directory.
	eng2, pool2, src2, _ := buildIngestPipeline(t, nil, nil, 0, nil)
	defer pool2.Close()
	defer eng2.Stop()
	seen2 := newIDSet()
	if err := eng2.Subscribe(src2, 0, seen2.add); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Start(); err != nil {
		t.Fatal(err)
	}
	gw2, err := Start(Config{Addr: "127.0.0.1:0", StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	registerEngineSource(t, gw2, eng2, src2) // replays the log before returning

	// A client with no memory of the first run retries everything from
	// seq 1: the rebuilt sequence floors must absorb all of it.
	c2 := NewClient(gw2.Addr(), "src", ClientOptions{})
	defer c2.Close()
	sendKeys(t, c2, 1, first)
	if got := c2.Dups(); got != first {
		t.Fatalf("retried records reported %d dups, want %d", got, first)
	}
	if st := gw2.Stats(); st.Admitted != 0 || st.Dedup != first {
		t.Fatalf("post-recovery stats = %+v, want Admitted=0 Dedup=%d", st, first)
	}
	sendKeys(t, c2, first+1, extra)
	eng2.Drain()
	if err := eng2.Err(); err != nil {
		t.Fatal(err)
	}

	ids2 := seen2.snapshot()
	if len(ids2) != first+extra {
		t.Fatalf("run 2 produced %d distinct identities, want %d", len(ids2), first+extra)
	}
	for id := range ids1 {
		if _, ok := ids2[id]; !ok {
			t.Fatalf("identity %v from run 1 missing after recovery", id)
		}
	}
}

// TestBackpressureAtEdge drives a client far past the detached engine
// admission rate and checks that the overload is absorbed at the network
// edge: records shed before the durable log (visible in Stats and in
// ingest_shed_total{reason="engine"}) while the downstream mailbox never
// exceeds its configured flow cap.
func TestBackpressureAtEdge(t *testing.T) {
	reg := metrics.NewRegistry()
	srcFlow := &flow.Limits{AdmitRate: 2000, AdmitBurst: 100, Shed: true}
	stageFlow := &flow.Limits{MailboxCap: 64, CreditWindow: 64}
	eng, pool, src, _ := buildIngestPipeline(t, srcFlow, stageFlow, 50*time.Microsecond, reg)
	defer pool.Close()
	defer eng.Stop()
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	gw, err := Start(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	registerEngineSource(t, gw, eng, src)

	done := make(chan error, 1)
	go func() {
		c := NewClient(gw.Addr(), "src", ClientOptions{Backoff: time.Millisecond})
		defer c.Close()
		// Batches must stay within the stage's credit window: AcquireN
		// deliberately over-grants a batch wider than the window (so one
		// oversized batch can't deadlock an edge), which would let the
		// mailbox legitimately exceed MailboxCap by the excess.
		const total, batch = 1500, 50
		for sent := 0; sent < total; sent += batch {
			recs := make([]Record, batch)
			for i := range recs {
				key := uint64(sent + i)
				recs[i] = Record{Key: key, Payload: operator.EncodeValue(key)}
			}
			if err := c.Send(recs); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	maxDepth := 0
	sample := func() {
		for _, p := range eng.Pressure() {
			if p.Node == "stage" && p.DataDepth > maxDepth {
				maxDepth = p.DataDepth
			}
		}
	}
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			sample()
			goto loaded
		default:
			sample()
			time.Sleep(time.Millisecond)
		}
	}
loaded:
	if maxDepth > stageFlow.MailboxCap {
		t.Fatalf("stage mailbox reached %d, flow cap is %d", maxDepth, stageFlow.MailboxCap)
	}
	st := gw.Stats()
	if st.Shed == 0 {
		t.Fatal("overload produced no edge sheds; admission was not exercised")
	}
	if st.Acked != 1500 {
		t.Fatalf("acked %d records, want 1500 (retries must eventually land)", st.Acked)
	}
	if v, _ := reg.Value("ingest_shed_total", metrics.Labels{"tenant": "default", "reason": "engine"}); v == 0 {
		t.Fatal("ingest_shed_total{reason=engine} is zero despite sheds")
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}
