package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/metrics"
)

// countEmitter discards emitted batches, isolating the benchmark to the
// gateway's own edge pipeline (dedup, quotas, admission log, framing).
type countEmitter struct{ n atomic.Uint64 }

func (c *countEmitter) EmitBatch(items []core.BatchItem) ([]event.Event, error) {
	c.n.Add(uint64(len(items)))
	return nil, nil
}

// BenchmarkIngestThroughput measures the gateway edge under concurrent
// producers offering more than the tenant's rate quota, so every
// iteration exercises both the admit path and the shed path. One
// iteration is a fixed workload (3 clients × 2000 records), which keeps
// the shed and p99 columns meaningful under `-benchtime 1x` smoke runs.
// Reported columns feed BENCH_<rev>.json via cmd/benchjson:
// events/sec, ingest-admit-p99-ms and ingest-shed-pct.
func BenchmarkIngestThroughput(b *testing.B) {
	const clients, perClient, batch = 3, 2000, 64
	var lastP99 time.Duration
	var lastShedPct float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		reg := metrics.NewRegistry()
		// One tenant per client: concurrent producers sharing a tenant
		// would interleave in one sequence space and dedup each other.
		tenants := make([]TenantConfig, clients)
		for ci := range tenants {
			tenants[ci] = TenantConfig{Name: fmt.Sprintf("bench-%d", ci), Token: fmt.Sprintf("tok-%d", ci), Rate: 20000, Burst: 256}
		}
		s, err := Start(Config{Addr: "127.0.0.1:0", Tenants: tenants, Registry: reg})
		if err != nil {
			b.Fatal(err)
		}
		em := &countEmitter{}
		if err := s.RegisterSource("src", em, nil); err != nil {
			b.Fatal(err)
		}
		errc := make(chan error, clients)
		var wg sync.WaitGroup
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				c := NewClient(s.Addr(), "src", ClientOptions{Token: fmt.Sprintf("tok-%d", ci), Backoff: time.Millisecond})
				defer c.Close()
				payload := make([]byte, 64)
				recs := make([]Record, batch)
				for sent := 0; sent < perClient; sent += batch {
					n := perClient - sent
					if n > batch {
						n = batch
					}
					for j := 0; j < n; j++ {
						recs[j] = Record{Key: uint64(ci)<<32 | uint64(sent+j), Payload: payload}
					}
					if err := c.Send(recs[:n]); err != nil {
						errc <- err
						return
					}
				}
			}(ci)
		}
		wg.Wait()
		select {
		case err := <-errc:
			b.Fatal(err)
		default:
		}
		st := s.Stats()
		if st.Acked != clients*perClient {
			b.Fatalf("acked %d records, want %d", st.Acked, clients*perClient)
		}
		if got := em.n.Load(); got != clients*perClient {
			b.Fatalf("emitted %d records, want %d", got, clients*perClient)
		}
		lastP99 = s.AdmitLatency().QuantileDuration(0.99)
		if st.Accepted > 0 {
			lastShedPct = float64(st.Shed) / float64(st.Accepted) * 100
		}
		_ = s.Close()
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N*clients*perClient)/elapsed.Seconds(), "events/sec")
	b.ReportMetric(float64(lastP99)/float64(time.Millisecond), "ingest-admit-p99-ms")
	b.ReportMetric(lastShedPct, "ingest-shed-pct")
}
