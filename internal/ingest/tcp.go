package ingest

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Both ingest lanes share one listening port: the accept loop sniffs the
// first four bytes of each connection. The binary lane announces itself
// with the "SMI1" magic; anything else (no HTTP method starts with those
// bytes) is replayed into an in-process net.Listener that feeds the
// standard http.Server.

// helloTimeout bounds how long a fresh connection may sit silent before
// the sniff gives up on it.
const helloTimeout = 10 * time.Second

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.demux(c)
	}
}

func (s *Server) demux(c net.Conn) {
	defer s.wg.Done()
	_ = c.SetReadDeadline(time.Now().Add(helloTimeout))
	var pre [4]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		_ = c.Close()
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	if string(pre[:]) == magic {
		s.serveBinary(c)
		return
	}
	if !s.httpLn.deliver(&prefixConn{Conn: c, pre: pre[:]}) {
		_ = c.Close()
	}
}

// serveBinary drives one binary-lane connection: HELLO, then a strict
// request/response loop of BATCH frames. Frames are processed
// sequentially — while a batch is blocked in admission or on the log,
// this goroutine stops reading, the kernel receive window fills, and the
// producer experiences TCP pushback.
func (s *Server) serveBinary(c net.Conn) {
	if !s.trackConn(c, true) {
		_ = c.Close()
		return
	}
	defer s.trackConn(c, false)
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 32<<10)
	reply := func(typ byte, body []byte) bool {
		if err := writeFrame(w, typ, body); err != nil {
			return false
		}
		return w.Flush() == nil
	}

	typ, body, err := readFrame(r)
	if err != nil {
		return
	}
	if typ != frameHello {
		reply(frameErr, encodeErr(codeBad, "expected HELLO"))
		return
	}
	token, streamName, err := decodeHello(body)
	if err != nil {
		reply(frameErr, encodeErr(codeBad, err.Error()))
		return
	}
	t := s.authenticate(token)
	if t == nil {
		reply(frameErr, encodeErr(codeAuth, "unknown token"))
		return
	}
	if !reply(frameHelloOK, encodeHelloOK(t.name)) {
		return
	}

	for {
		typ, body, err := readFrame(r)
		if err != nil {
			return // disconnect
		}
		if typ != frameBatch {
			reply(frameErr, encodeErr(codeBad, fmt.Sprintf("unexpected frame type %#x", typ)))
			return
		}
		firstSeq, recs, err := decodeBatch(body, t.maxBatch)
		if err != nil {
			reply(frameErr, encodeErr(codeBad, err.Error()))
			return
		}
		accepted := time.Now()
		var v verdict
		if st := s.lookupStream(streamName); st == nil {
			v = retryVerdict(500, "stream unavailable")
		} else {
			v = s.process(t, st, firstSeq, recs, accepted)
		}
		switch v.kind {
		case frameAck:
			if !reply(frameAck, encodeAck(v.through, v.dups)) {
				return
			}
		case frameRetry:
			if !reply(frameRetry, encodeRetry(v.afterMillis, v.reason)) {
				return
			}
		default:
			reply(frameErr, encodeErr(v.code, v.msg))
			return
		}
	}
}

// chanListener is an in-process net.Listener fed by the demux: HTTP
// connections (with their sniffed prefix re-attached) are handed to the
// standard http.Server through it.
type chanListener struct {
	addr net.Addr
	ch   chan net.Conn
	stop chan struct{}
	once sync.Once
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{addr: addr, ch: make(chan net.Conn), stop: make(chan struct{})}
}

// deliver hands a connection to the HTTP server; false when shut down.
func (l *chanListener) deliver(c net.Conn) bool {
	select {
	case l.ch <- c:
		return true
	case <-l.stop:
		return false
	}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.stop:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.stop) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return l.addr }

// prefixConn replays the sniffed bytes before the connection's stream.
type prefixConn struct {
	net.Conn
	pre []byte
}

func (c *prefixConn) Read(p []byte) (int, error) {
	if len(c.pre) > 0 {
		n := copy(p, c.pre)
		c.pre = c.pre[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}
