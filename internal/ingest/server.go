// Package ingest is the multi-tenant network gateway that turns outside
// producers into first-class sources of the precise-recovery engine.
//
// Records arrive over a single listening port that serves two lanes — a
// length-prefixed binary protocol (proto.go) and a plain-HTTP POST lane —
// demultiplexed by the first bytes of each connection. Every accepted
// batch runs the same edge pipeline, in this order and under one
// per-stream mutex so admission order, log order and emission order
// coincide:
//
//  1. tenant-scoped dedup: each tenant assigns contiguous 1-based
//     sequences per stream; batches at or below the floor are
//     acknowledged idempotently, batches past the floor are rejected as
//     gaps, overlapping prefixes are trimmed;
//  2. per-tenant token-bucket quota (429/RETRY with a Retry-After
//     derived from the bucket's refill wait);
//  3. the engine's own admission controller — the PR-3 token-bucket +
//     AIMD machinery, detached from the source node via
//     core.DetachSourceAdmission so the decision happens *before* the
//     durable admission log: a shed record is never logged and is
//     therefore invisible to recovery by construction, while a blocking
//     (non-shed) controller simply stalls the connection, which maps to
//     TCP pushback on the producer;
//  4. append to the per-stream admission log (log.go);
//  5. hand the batch to the engine through SourceHandle.EmitBatch once
//     the log write is stable.
//
// The ACK is sent only after both the log write is stable and the batch
// has been emitted, so an acknowledged record survives a worker crash:
// on restart the gateway re-emits the log in order, reproducing the
// exact pre-crash event identities, and the engine's downstream dedup
// absorbs whatever had already committed.
package ingest

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/metrics"
)

// Emitter is the engine-side sink for admitted batches. *core.SourceHandle
// implements it; tests substitute recorders.
type Emitter interface {
	EmitBatch(items []core.BatchItem) ([]event.Event, error)
}

var _ Emitter = (*core.SourceHandle)(nil)

// TenantConfig declares one tenant: its auth token, its sustained-rate
// quota, and its per-batch size quota.
type TenantConfig struct {
	// Name labels the tenant in metrics and in the admission log.
	Name string `json:"name"`
	// Token is the static bearer token presented in HELLO frames and
	// Authorization headers. Required when any tenants are configured.
	Token string `json:"token"`
	// Rate is the tenant's sustained admission quota in records/second.
	// Zero means unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the quota bucket depth; defaults to max(1, Rate/10).
	Burst int `json:"burst,omitempty"`
	// MaxBatch bounds records per request; defaults to 1024.
	MaxBatch int `json:"maxBatch,omitempty"`
}

// LoadTenants reads a JSON array of TenantConfig from path.
func LoadTenants(path string) ([]TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []TenantConfig
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parse tenants %s: %w", path, err)
	}
	for i, t := range out {
		if t.Name == "" {
			return nil, fmt.Errorf("parse tenants %s: entry %d has no name", path, i)
		}
		if t.Token == "" {
			return nil, fmt.Errorf("parse tenants %s: tenant %q has no token", path, t.Name)
		}
	}
	return out, nil
}

// Config configures a gateway server.
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// StateDir holds one admission-log directory per stream. Empty keeps
	// the logs in memory (tests, benchmarks): nothing is recoverable.
	StateDir string
	// Tenants lists the accepted tenants. Empty runs the gateway open:
	// any token is accepted, each distinct token gets its own unlimited
	// tenant (empty token maps to "default").
	Tenants []TenantConfig
	// TLSCert/TLSKey, when both set, wrap the listener in TLS (both
	// lanes; the binary protocol runs inside the TLS stream).
	TLSCert, TLSKey string
	// Registry receives the ingest_* metrics; nil uses a private one.
	Registry *metrics.Registry
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// defaultMaxBatch bounds records per request for tenants that don't set
// their own quota.
const defaultMaxBatch = 1024

// tenant is the runtime state for one configured tenant.
type tenant struct {
	name     string
	token    string
	bucket   *flow.TokenBucket // nil = unlimited
	maxBatch int

	mu     sync.Mutex
	floors map[string]uint64 // stream → highest contiguous acked seq

	mAccepted, mAdmitted, mDedup, mAcked *metrics.Counter
	mShedRate, mShedEngine, mShedDrain   *metrics.Counter
}

func (t *tenant) floor(stream string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.floors[stream]
}

func (t *tenant) setFloor(stream string, seq uint64) {
	t.mu.Lock()
	if seq > t.floors[stream] {
		t.floors[stream] = seq
	}
	t.mu.Unlock()
}

// pending is one admitted batch in flight between the admission decision
// and its ACK: stable fires when the log write is durable, acked when
// the batch has additionally been emitted into the engine.
type pending struct {
	items  []core.BatchItem
	stable chan error
	acked  chan error
}

// stream is one registered engine source.
type stream struct {
	name string
	em   Emitter
	adm  *flow.Admission // detached engine admission; nil = none
	log  *admLog

	// mu serializes the admission decision, the log append and the emit
	// enqueue, so all three share one order.
	mu       sync.Mutex
	poisoned error

	emitQ chan *pending
	stopc chan struct{}
	once  sync.Once
}

var errStreamClosed = fmt.Errorf("ingest: stream closed")

// emitLoop drains admitted batches in admission order: wait for the log
// write to be stable, emit into the engine, release the ACK.
func (st *stream) emitLoop() {
	for {
		select {
		case <-st.stopc:
			return
		case p := <-st.emitQ:
			var err error
			select {
			case err = <-p.stable:
			case <-st.stopc:
				p.acked <- errStreamClosed
				return
			}
			if err == nil {
				_, err = st.em.EmitBatch(p.items)
			}
			p.acked <- err
		}
	}
}

// close stops the stream, failing any batches still queued. The gateway
// owns the detached admission controller, so it is closed here.
func (st *stream) close() {
	st.once.Do(func() {
		close(st.stopc)
		st.adm.Close()
		for {
			select {
			case p := <-st.emitQ:
				p.acked <- errStreamClosed
			default:
				st.log.close()
				return
			}
		}
	})
}

// Stats is a snapshot of the server-wide record counters.
type Stats struct {
	Accepted uint64 // records received in well-formed batches
	Admitted uint64 // records past dedup, quotas and engine admission
	Shed     uint64 // records rejected by quota, engine shed, or drain
	Dedup    uint64 // duplicate records absorbed idempotently
	Acked    uint64 // records durably logged, emitted and acknowledged
}

// Server is a running ingest gateway.
type Server struct {
	cfg  Config
	reg  *metrics.Registry
	logf func(string, ...any)

	ln      net.Listener
	httpLn  *chanListener
	httpSrv *http.Server

	mu      sync.Mutex
	open    bool // no tenants configured: open mode
	tenants map[string]*tenant
	byToken map[string]*tenant
	streams map[string]*stream
	conns   map[net.Conn]struct{}
	closed  bool

	draining atomic.Bool
	inflight sync.WaitGroup
	wg       sync.WaitGroup

	mConns    *metrics.Gauge
	mStreams  *metrics.Gauge
	mDraining *metrics.Gauge
	admitHDR  *metrics.HDR

	accepted, admitted, shed, dedup, acked atomic.Uint64
}

// Start listens on cfg.Addr and serves both ingest lanes.
func Start(cfg Config) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		logf:    logf,
		open:    len(cfg.Tenants) == 0,
		tenants: make(map[string]*tenant),
		byToken: make(map[string]*tenant),
		streams: make(map[string]*stream),
		conns:   make(map[net.Conn]struct{}),
	}
	s.mConns = reg.Gauge("ingest_connections",
		"Open ingest connections (binary lane).")
	s.mStreams = reg.Gauge("ingest_streams",
		"Engine sources registered with the ingest gateway.")
	s.mDraining = reg.Gauge("ingest_draining",
		"1 while the gateway is draining (rejecting new batches).")
	s.admitHDR = reg.HDR("ingest_admit_latency",
		"Accept-to-ACK latency per batch: dedup, quotas, engine admission, stable admission-log write, and engine emission.")
	for _, tc := range cfg.Tenants {
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("ingest: duplicate tenant %q", tc.Name)
		}
		if _, dup := s.byToken[tc.Token]; dup {
			return nil, fmt.Errorf("ingest: tenant %q reuses another tenant's token", tc.Name)
		}
		t := s.newTenant(tc)
		s.tenants[tc.Name] = t
		s.byToken[tc.Token] = t
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen %s: %w", cfg.Addr, err)
	}
	if cfg.TLSCert != "" || cfg.TLSKey != "" {
		cert, err := tls.LoadX509KeyPair(cfg.TLSCert, cfg.TLSKey)
		if err != nil {
			_ = ln.Close()
			return nil, fmt.Errorf("ingest: load TLS keypair: %w", err)
		}
		ln = tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})
	}
	s.ln = ln
	s.httpLn = newChanListener(ln.Addr())
	s.httpSrv = &http.Server{Handler: s.httpHandler()}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		_ = s.httpSrv.Serve(s.httpLn)
	}()
	go s.acceptLoop()
	return s, nil
}

func (s *Server) newTenant(tc TenantConfig) *tenant {
	t := &tenant{
		name:     tc.Name,
		token:    tc.Token,
		maxBatch: tc.MaxBatch,
		floors:   make(map[string]uint64),
	}
	if t.maxBatch <= 0 {
		t.maxBatch = defaultMaxBatch
	}
	if tc.Rate > 0 {
		burst := tc.Burst
		if burst <= 0 {
			burst = int(tc.Rate / 10)
			if burst < 1 {
				burst = 1
			}
		}
		t.bucket = flow.NewTokenBucket(tc.Rate, burst)
	}
	lbl := metrics.Labels{"tenant": tc.Name}
	t.mAccepted = s.reg.CounterWith("ingest_accepted_total",
		"Records received in well-formed batches, per tenant.", lbl)
	t.mAdmitted = s.reg.CounterWith("ingest_admitted_total",
		"Records admitted past dedup, quotas and engine admission, per tenant.", lbl)
	t.mDedup = s.reg.CounterWith("ingest_dedup_total",
		"Duplicate records absorbed idempotently, per tenant.", lbl)
	t.mAcked = s.reg.CounterWith("ingest_acked_total",
		"Records durably logged, emitted and acknowledged, per tenant.", lbl)
	shedHelp := "Records rejected at the edge, per tenant and reason."
	t.mShedRate = s.reg.CounterWith("ingest_shed_total", shedHelp,
		metrics.Labels{"tenant": tc.Name, "reason": "tenant_rate"})
	t.mShedEngine = s.reg.CounterWith("ingest_shed_total", shedHelp,
		metrics.Labels{"tenant": tc.Name, "reason": "engine"})
	t.mShedDrain = s.reg.CounterWith("ingest_shed_total", shedHelp,
		metrics.Labels{"tenant": tc.Name, "reason": "draining"})
	return t
}

// tenantForNameLocked resolves (or creates) a tenant by name. Created
// tenants have no token — they exist so admission-log recovery can
// rebuild sequence floors for tenants that have since left the config,
// keeping retried duplicates deduplicated even across a config change.
func (s *Server) tenantForNameLocked(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := s.newTenant(TenantConfig{Name: name})
	s.tenants[name] = t
	return t
}

// authenticate maps a presented token to its tenant (nil = reject). In
// open mode every token is accepted and each distinct token gets its own
// unlimited tenant named after it (empty token maps to "default") —
// concurrent producers sharing one tenant would interleave in a single
// sequence space and dedup each other's records, so open mode trusts the
// token as the producer's identity instead.
func (s *Server) authenticate(token string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.open {
		if token == "" {
			return s.tenantForNameLocked("default")
		}
		return s.tenantForNameLocked(token)
	}
	return s.byToken[token]
}

func (s *Server) lookupStream(name string) *stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[name]
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the server-wide record counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted: s.accepted.Load(),
		Admitted: s.admitted.Load(),
		Shed:     s.shed.Load(),
		Dedup:    s.dedup.Load(),
		Acked:    s.acked.Load(),
	}
}

// AdmitLatency exposes the accept-to-ACK latency histogram.
func (s *Server) AdmitLatency() *metrics.HDR { return s.admitHDR }

// replayChunk bounds one EmitBatch call during recovery replay.
const replayChunk = 256

// sanitizeDir maps a stream name to a filesystem-safe directory name.
func sanitizeDir(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// RegisterSource attaches an engine source to the gateway under the
// given stream name. em receives admitted batches (normally the source's
// *core.SourceHandle); adm is the admission controller detached from the
// source node via core.DetachSourceAdmission (nil when the node has no
// flow limits) — the gateway takes ownership and closes it.
//
// If the stream's admission log already holds records from a previous
// run, they are re-emitted through em in log order *before* the stream
// starts accepting network batches, so the fresh engine assigns them the
// same event identities as the crashed run, and the per-tenant sequence
// floors are rebuilt so client retries of acknowledged records
// deduplicate instead of duplicating.
func (s *Server) RegisterSource(name string, em Emitter, adm *flow.Admission) error {
	dir := ""
	if s.cfg.StateDir != "" {
		dir = filepath.Join(s.cfg.StateDir, sanitizeDir(name))
	}
	lg, recovered, err := openAdmLog(dir)
	if err != nil {
		return fmt.Errorf("ingest: open admission log for %q: %w", name, err)
	}
	for i := 0; i < len(recovered); i += replayChunk {
		j := i + replayChunk
		if j > len(recovered) {
			j = len(recovered)
		}
		items := make([]core.BatchItem, j-i)
		for k, e := range recovered[i:j] {
			items[k] = core.BatchItem{Key: e.Key, Payload: e.Payload}
		}
		if _, err := em.EmitBatch(items); err != nil {
			lg.close()
			return fmt.Errorf("ingest: replay %q: %w", name, err)
		}
	}
	st := &stream{
		name:  name,
		em:    em,
		adm:   adm,
		log:   lg,
		emitQ: make(chan *pending, 256),
		stopc: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		st.close()
		return fmt.Errorf("ingest: server closed")
	}
	if _, dup := s.streams[name]; dup {
		s.mu.Unlock()
		st.close()
		return fmt.Errorf("ingest: stream %q already registered", name)
	}
	for _, e := range recovered {
		s.tenantForNameLocked(e.Tenant).setFloor(name, e.Seq)
	}
	s.streams[name] = st
	s.mu.Unlock()
	s.mStreams.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		st.emitLoop()
	}()
	if len(recovered) > 0 {
		s.logf("ingest: stream %q replayed %d admitted records from %s", name, len(recovered), dir)
	}
	return nil
}

// UnregisterSource detaches a stream (partition moved away); in-flight
// batches fail with a retryable verdict.
func (s *Server) UnregisterSource(name string) {
	s.mu.Lock()
	st := s.streams[name]
	delete(s.streams, name)
	s.mu.Unlock()
	if st != nil {
		st.close()
		s.mStreams.Dec()
	}
}

// verdict is the outcome of processing one batch, rendered as a frame on
// the binary lane or a status code on the HTTP lane.
type verdict struct {
	kind        byte // frameAck, frameRetry or frameErr
	through     uint64
	dups        int
	afterMillis uint64
	reason      string
	code        uint64
	msg         string
}

func retryVerdict(afterMillis uint64, reason string) verdict {
	if afterMillis == 0 {
		afterMillis = 1
	}
	return verdict{kind: frameRetry, afterMillis: afterMillis, reason: reason}
}

// process runs one batch through the edge pipeline. It may block — on
// the tenant's behalf in a non-shedding engine admission controller, and
// on the stable log write — which is exactly the connection-level
// backpressure the protocol maps to TCP pushback / HTTP latency.
func (s *Server) process(t *tenant, st *stream, firstSeq uint64, recs []batchRecord, accepted time.Time) verdict {
	s.inflight.Add(1)
	defer s.inflight.Done()
	n := len(recs)
	t.mAccepted.Add(uint64(n))
	s.accepted.Add(uint64(n))
	if s.draining.Load() {
		t.mShedDrain.Add(uint64(n))
		s.shed.Add(uint64(n))
		return retryVerdict(1000, "draining")
	}

	st.mu.Lock()
	if err := st.poisoned; err != nil {
		st.mu.Unlock()
		return verdict{kind: frameErr, code: codeInternal, msg: "stream failed: " + err.Error()}
	}
	last := t.floor(st.name)
	end := firstSeq + uint64(n) - 1
	if end <= last { // full duplicate: a retry of an acknowledged batch
		st.mu.Unlock()
		t.mDedup.Add(uint64(n))
		s.dedup.Add(uint64(n))
		return verdict{kind: frameAck, through: end, dups: n}
	}
	if firstSeq > last+1 {
		st.mu.Unlock()
		return verdict{kind: frameErr, code: codeGap,
			msg: fmt.Sprintf("batch starts at seq %d but tenant %q is at %d", firstSeq, t.name, last)}
	}
	dups := int(last + 1 - firstSeq) // overlapping prefix, already durable
	if dups > 0 {
		recs = recs[dups:]
		n = len(recs)
		t.mDedup.Add(uint64(dups))
		s.dedup.Add(uint64(dups))
	}

	if t.bucket != nil {
		ok, wait := t.bucket.TakeN(time.Now(), n)
		if !ok {
			st.mu.Unlock()
			t.mShedRate.Add(uint64(n))
			s.shed.Add(uint64(n))
			return retryVerdict(uint64(wait/time.Millisecond)+1, "tenant rate quota")
		}
	}
	if st.adm != nil {
		switch st.adm.AdmitN(n) {
		case flow.Shed:
			st.mu.Unlock()
			t.mShedEngine.Add(uint64(n))
			s.shed.Add(uint64(n))
			return retryVerdict(50, "engine shed")
		case flow.Stopped:
			st.mu.Unlock()
			t.mShedDrain.Add(uint64(n))
			s.shed.Add(uint64(n))
			return retryVerdict(1000, "draining")
		}
	}

	t.setFloor(st.name, end)
	entries := make([]logEntry, n)
	items := make([]core.BatchItem, n)
	base := end - uint64(n) + 1
	for i, r := range recs {
		entries[i] = logEntry{Tenant: t.name, Seq: base + uint64(i), Key: r.Key, Payload: r.Payload}
		items[i] = core.BatchItem{Key: r.Key, Payload: r.Payload}
	}
	p := &pending{items: items, stable: make(chan error, 1), acked: make(chan error, 1)}
	if err := st.log.append(entries, func(err error) { p.stable <- err }); err != nil {
		st.poisoned = err
		st.mu.Unlock()
		s.logf("ingest: stream %q admission log failed: %v", st.name, err)
		return verdict{kind: frameErr, code: codeInternal, msg: "admission log unavailable"}
	}
	select {
	case st.emitQ <- p:
	case <-st.stopc:
		st.mu.Unlock()
		return retryVerdict(1000, "stream closing")
	}
	st.mu.Unlock()
	t.mAdmitted.Add(uint64(n))
	s.admitted.Add(uint64(n))

	if err := <-p.acked; err != nil {
		st.mu.Lock()
		if st.poisoned == nil && err != errStreamClosed {
			// Fail-stop: the floor already covers these records, so no
			// later ACK may claim durability this stream cannot provide.
			st.poisoned = err
		}
		st.mu.Unlock()
		if err == errStreamClosed {
			return retryVerdict(1000, "stream closing")
		}
		s.logf("ingest: stream %q failed: %v", st.name, err)
		return verdict{kind: frameErr, code: codeInternal, msg: "stream failed: " + err.Error()}
	}
	t.mAcked.Add(uint64(n))
	s.acked.Add(uint64(n))
	s.admitHDR.Record(time.Since(accepted))
	return verdict{kind: frameAck, through: end, dups: dups}
}

// Draining reports whether the gateway is refusing new batches. Wired
// into the debug server's /healthz so load balancers stop routing here.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain puts the gateway into draining mode — new batches get retryable
// "draining" verdicts pointing producers elsewhere — and waits up to
// timeout for in-flight batches to finish their log writes and ACKs.
func (s *Server) Drain(timeout time.Duration) {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.mDraining.Set(1)
	s.logf("ingest: draining")
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.logf("ingest: drain timed out after %v", timeout)
	}
}

// Close stops the listener, all connections and all streams. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	streams := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = make(map[string]*stream)
	s.mu.Unlock()

	_ = s.ln.Close()
	_ = s.httpSrv.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	for _, st := range streams {
		st.close()
	}
	s.wg.Wait()
	return nil
}

// trackConn registers a live binary-lane connection; returns false when
// the server is already closed.
func (s *Server) trackConn(c net.Conn, add bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed {
			return false
		}
		s.conns[c] = struct{}{}
		s.mConns.Inc()
		return true
	}
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.mConns.Dec()
	}
	return true
}
