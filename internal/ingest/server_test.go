package ingest

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/metrics"
)

// recordingEmitter is the engine stand-in for gateway unit tests: it
// remembers every emitted item and fabricates event identities the way a
// source node would (one contiguous sequence in emission order).
type recordingEmitter struct {
	mu    sync.Mutex
	items []core.BatchItem
	fail  error
}

func (r *recordingEmitter) EmitBatch(items []core.BatchItem) ([]event.Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil {
		return nil, r.fail
	}
	base := len(r.items)
	r.items = append(r.items, items...)
	out := make([]event.Event, len(items))
	for i := range items {
		out[i] = event.Event{ID: event.ID{Seq: event.Seq(base + i + 1)}}
	}
	return out, nil
}

func (r *recordingEmitter) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

func (r *recordingEmitter) keys() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.items))
	for i, it := range r.items {
		out[i] = it.Key
	}
	return out
}

// startTestServer runs a gateway on a loopback port with one recording
// stream named "src".
func startTestServer(t *testing.T, cfg Config) (*Server, *recordingEmitter) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	rec := &recordingEmitter{}
	if err := s.RegisterSource("src", rec, nil); err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func sendN(t *testing.T, c *Client, from, n int) {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: uint64(from + i), Payload: []byte(fmt.Sprintf("v%d", from+i))}
	}
	if err := c.Send(recs); err != nil {
		t.Fatal(err)
	}
}

func TestServerAckAndRetryDedup(t *testing.T) {
	s, rec := startTestServer(t, Config{})
	c := NewClient(s.Addr(), "src", ClientOptions{})
	defer c.Close()
	for i := 0; i < 3; i++ {
		sendN(t, c, i*10, 10)
	}
	if got := c.Acked(); got != 30 {
		t.Fatalf("acked %d, want 30", got)
	}
	if got := rec.count(); got != 30 {
		t.Fatalf("emitted %d records, want 30", got)
	}

	// A fresh client replays the client-side journal from seq 1 — the
	// retry-after-crash shape. Every record must dedup, none may re-emit.
	c2 := NewClient(s.Addr(), "src", ClientOptions{})
	defer c2.Close()
	for i := 0; i < 3; i++ {
		sendN(t, c2, i*10, 10)
	}
	if got := c2.Dups(); got != 30 {
		t.Fatalf("resend reported %d dups, want 30", got)
	}
	if got := rec.count(); got != 30 {
		t.Fatalf("resend re-emitted: %d records, want 30", got)
	}
	st := s.Stats()
	if st.Acked != 30 || st.Dedup != 30 {
		t.Fatalf("stats = %+v, want Acked=30 Dedup=30", st)
	}
}

func TestServerOverlapTrimmed(t *testing.T) {
	s, rec := startTestServer(t, Config{})
	c := NewClient(s.Addr(), "src", ClientOptions{})
	defer c.Close()
	sendN(t, c, 0, 4) // seqs 1..4 acknowledged

	// A partially acknowledged batch resent from seq 3: the overlap (3,4)
	// must be trimmed, the tail (5,6) admitted once.
	rc := dialRaw(t, s.Addr(), "", "src")
	defer rc.close()
	recs := []batchRecord{{Key: 102}, {Key: 103}, {Key: 104}, {Key: 105}}
	typ, body := rc.roundTrip(t, frameBatch, encodeBatch(3, recs))
	if typ != frameAck {
		t.Fatalf("overlap batch got frame %#x", typ)
	}
	through, dups, err := decodeAck(body)
	if err != nil {
		t.Fatal(err)
	}
	if through != 6 || dups != 2 {
		t.Fatalf("ack through=%d dups=%d, want through=6 dups=2", through, dups)
	}
	if got := rec.count(); got != 6 {
		t.Fatalf("emitted %d records, want 6", got)
	}
	// The admitted tail is the batch's own tail, not a re-emission of the
	// overlap.
	keys := rec.keys()
	if keys[4] != 104 || keys[5] != 105 {
		t.Fatalf("tail keys = %v, want [.. 104 105]", keys)
	}
}

func TestServerSequenceGapFatal(t *testing.T) {
	s, _ := startTestServer(t, Config{})
	rc := dialRaw(t, s.Addr(), "", "src")
	defer rc.close()
	typ, body := rc.roundTrip(t, frameBatch, encodeBatch(5, []batchRecord{{Key: 1}}))
	if typ != frameErr {
		t.Fatalf("gap batch got frame %#x, want ERR", typ)
	}
	code, msg, err := decodeErr(body)
	if err != nil {
		t.Fatal(err)
	}
	if code != codeGap || !strings.Contains(msg, "seq 5") {
		t.Fatalf("gap verdict code=%d msg=%q", code, msg)
	}
}

// TestServerOpenModePerTokenTenants: an open gateway must give
// concurrent producers independent sequence spaces keyed by their
// presented token — a shared tenant would interleave them in one space
// and dedup their records against each other.
func TestServerOpenModePerTokenTenants(t *testing.T) {
	reg := metrics.NewRegistry()
	s, rec := startTestServer(t, Config{Registry: reg})

	alice := NewClient(s.Addr(), "src", ClientOptions{Token: "alice"})
	defer alice.Close()
	bob := NewClient(s.Addr(), "src", ClientOptions{Token: "bob"})
	defer bob.Close()
	sendN(t, alice, 0, 5)
	sendN(t, bob, 100, 5)
	if alice.Dups() != 0 || bob.Dups() != 0 {
		t.Fatalf("open-mode producers deduped each other: alice dups=%d, bob dups=%d", alice.Dups(), bob.Dups())
	}
	if got := rec.count(); got != 10 {
		t.Fatalf("emitted %d records, want 10", got)
	}
	for _, tenant := range []string{"alice", "bob"} {
		if v, ok := reg.Value("ingest_acked_total", metrics.Labels{"tenant": tenant}); !ok || v != 5 {
			t.Fatalf("ingest_acked_total{tenant=%s} = %v (present=%v), want 5", tenant, v, ok)
		}
	}

	// No token still maps to the shared "default" tenant.
	anon := NewClient(s.Addr(), "src", ClientOptions{})
	defer anon.Close()
	sendN(t, anon, 200, 3)
	if v, ok := reg.Value("ingest_acked_total", metrics.Labels{"tenant": "default"}); !ok || v != 3 {
		t.Fatalf("ingest_acked_total{tenant=default} = %v (present=%v), want 3", v, ok)
	}
}

func TestServerAuth(t *testing.T) {
	tenants := []TenantConfig{{Name: "acme", Token: "tok-acme"}}
	s, _ := startTestServer(t, Config{Tenants: tenants})

	bad := NewClient(s.Addr(), "src", ClientOptions{Token: "wrong"})
	defer bad.Close()
	err := bad.Send([]Record{{Key: 1}})
	if err == nil || !strings.Contains(err.Error(), "unknown token") {
		t.Fatalf("bad token error = %v", err)
	}

	good := NewClient(s.Addr(), "src", ClientOptions{Token: "tok-acme"})
	defer good.Close()
	if err := good.Send([]Record{{Key: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestServerBatchQuota(t *testing.T) {
	tenants := []TenantConfig{{Name: "acme", Token: "tok", MaxBatch: 2}}
	s, _ := startTestServer(t, Config{Tenants: tenants})
	rc := dialRaw(t, s.Addr(), "tok", "src")
	defer rc.close()
	typ, body := rc.roundTrip(t, frameBatch,
		encodeBatch(1, []batchRecord{{Key: 1}, {Key: 2}, {Key: 3}}))
	if typ != frameErr {
		t.Fatalf("over-quota batch got frame %#x, want ERR", typ)
	}
	code, _, err := decodeErr(body)
	if err != nil {
		t.Fatal(err)
	}
	if code != codeBad {
		t.Fatalf("over-quota code = %d, want %d", code, codeBad)
	}
}

func TestServerTenantRateQuota(t *testing.T) {
	// Rate 1/s with burst 1: the first batch rides the full-bucket grace
	// the token bucket grants oversized takes, which leaves the bucket
	// deep in debt — the second batch must get a retryable RETRY naming
	// the quota, never an ERR, and count as shed in ingest_shed_total.
	reg := metrics.NewRegistry()
	tenants := []TenantConfig{{Name: "acme", Token: "tok", Rate: 1, Burst: 1}}
	s, rec := startTestServer(t, Config{Tenants: tenants, Registry: reg})
	rc := dialRaw(t, s.Addr(), "tok", "src")
	defer rc.close()
	typ, _ := rc.roundTrip(t, frameBatch,
		encodeBatch(1, []batchRecord{{Key: 1}, {Key: 2}, {Key: 3}}))
	if typ != frameAck {
		t.Fatalf("first batch got frame %#x, want ACK (full-bucket grace)", typ)
	}
	typ, body := rc.roundTrip(t, frameBatch,
		encodeBatch(4, []batchRecord{{Key: 4}, {Key: 5}, {Key: 6}}))
	if typ != frameRetry {
		t.Fatalf("over-rate batch got frame %#x, want RETRY", typ)
	}
	after, reason, err := decodeRetry(body)
	if err != nil {
		t.Fatal(err)
	}
	if after == 0 || !strings.Contains(reason, "quota") {
		t.Fatalf("retry after=%dms reason=%q", after, reason)
	}
	if got := rec.count(); got != 3 {
		t.Fatalf("emitted %d records, want only the first batch's 3", got)
	}
	v, ok := reg.Value("ingest_shed_total", metrics.Labels{"tenant": "acme", "reason": "tenant_rate"})
	if !ok || v != 3 {
		t.Fatalf("ingest_shed_total{tenant=acme,reason=tenant_rate} = %v (ok=%v), want 3", v, ok)
	}
}

func TestServerUnknownStreamRetries(t *testing.T) {
	s, _ := startTestServer(t, Config{})
	rc := dialRaw(t, s.Addr(), "", "nosuch")
	defer rc.close()
	typ, body := rc.roundTrip(t, frameBatch, encodeBatch(1, []batchRecord{{Key: 1}}))
	if typ != frameRetry {
		t.Fatalf("unknown stream got frame %#x, want RETRY", typ)
	}
	_, reason, err := decodeRetry(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reason, "unavailable") {
		t.Fatalf("reason = %q", reason)
	}
}

func TestServerDrain(t *testing.T) {
	s, rec := startTestServer(t, Config{})
	c := NewClient(s.Addr(), "src", ClientOptions{})
	defer c.Close()
	sendN(t, c, 0, 5)
	s.Drain(time.Second)
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	rc := dialRaw(t, s.Addr(), "", "src")
	defer rc.close()
	typ, body := rc.roundTrip(t, frameBatch, encodeBatch(6, []batchRecord{{Key: 6}}))
	if typ != frameRetry {
		t.Fatalf("batch during drain got frame %#x, want RETRY", typ)
	}
	_, reason, err := decodeRetry(body)
	if err != nil {
		t.Fatal(err)
	}
	if reason != "draining" {
		t.Fatalf("reason = %q, want draining", reason)
	}
	if got := rec.count(); got != 5 {
		t.Fatalf("drain admitted new records: %d, want 5", got)
	}
}

func TestHTTPLane(t *testing.T) {
	tenants := []TenantConfig{{Name: "acme", Token: "tok"}}
	s, rec := startTestServer(t, Config{Tenants: tenants})
	base := "http://" + s.Addr()
	post := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("/v1/ingest/src?seq=1&key=9", "tok"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST status %d", resp.StatusCode)
	} else {
		body, _ := io.ReadAll(resp.Body)
		if strings.TrimSpace(string(body)) != `{"through":1,"dups":0}` {
			t.Fatalf("first POST body %q", body)
		}
	}
	// A curl retry of the same seq is absorbed idempotently.
	if resp := post("/v1/ingest/src?seq=1&key=9", "tok"); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry POST status %d", resp.StatusCode)
	} else {
		body, _ := io.ReadAll(resp.Body)
		if strings.TrimSpace(string(body)) != `{"through":1,"dups":1}` {
			t.Fatalf("retry POST body %q", body)
		}
	}
	if got := rec.count(); got != 1 {
		t.Fatalf("HTTP retry re-emitted: %d records, want 1", got)
	}
	if resp := post("/v1/ingest/src?seq=7", "tok"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("gap POST status %d, want 409", resp.StatusCode)
	}
	if resp := post("/v1/ingest/src?seq=2", "nope"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad-token POST status %d, want 401", resp.StatusCode)
	}
	if resp := post("/v1/ingest/src?seq=0", "tok"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("seq=0 POST status %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/ingest/nosuch?seq=1", "tok"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unknown-stream POST status %d, want 429", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPHealthzDraining(t *testing.T) {
	s, _ := startTestServer(t, Config{})
	base := "http://" + s.Addr()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	s.Drain(time.Second)
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	// Drained HTTP writes get 429 + Retry-After, steering producers away.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/ingest/src?seq=1", strings.NewReader("x"))
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusTooManyRequests || wresp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining POST status %d Retry-After %q", wresp.StatusCode, wresp.Header.Get("Retry-After"))
	}
}

// TestTenantFairnessUnderFlood is the fairness regression: one tenant
// hammering its quota into constant sheds must not cause a single shed —
// or even a single retry — for a well-behaved tenant on the same stream.
func TestTenantFairnessUnderFlood(t *testing.T) {
	reg := metrics.NewRegistry()
	tenants := []TenantConfig{
		{Name: "good", Token: "tok-good", Rate: 100000, Burst: 1000},
		{Name: "flood", Token: "tok-flood", Rate: 200, Burst: 20},
	}
	s, _ := startTestServer(t, Config{Tenants: tenants, Registry: reg})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// The flood tenant offers far beyond its 200/s quota and hammers
		// retries with minimal backoff.
		defer wg.Done()
		fc := NewClient(s.Addr(), "src", ClientOptions{Token: "tok-flood", Backoff: time.Millisecond})
		defer fc.Close()
		recs := make([]Record, 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range recs {
				recs[i] = Record{Key: uint64(i)}
			}
			if err := fc.Send(recs); err != nil {
				return
			}
		}
	}()

	gc := NewClient(s.Addr(), "src", ClientOptions{Token: "tok-good"})
	defer gc.Close()
	for i := 0; i < 40; i++ {
		sendN(t, gc, i*5, 5)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := gc.Acked(); got != 200 {
		t.Fatalf("good tenant acked %d of 200", got)
	}
	if got := gc.Retries(); got != 0 {
		t.Fatalf("good tenant needed %d retries while flooded; quotas leaked across tenants", got)
	}
	if v, _ := reg.Value("ingest_shed_total", metrics.Labels{"tenant": "good", "reason": "tenant_rate"}); v != 0 {
		t.Fatalf("good tenant shed %v records", v)
	}
	if v, _ := reg.Value("ingest_shed_total", metrics.Labels{"tenant": "flood", "reason": "tenant_rate"}); v == 0 {
		t.Fatal("flood tenant never shed; the flood did not exercise the quota")
	}
}

func TestServerPoisonsStreamOnEmitFailure(t *testing.T) {
	s, rec := startTestServer(t, Config{})
	c := NewClient(s.Addr(), "src", ClientOptions{})
	defer c.Close()
	sendN(t, c, 0, 2)
	rec.mu.Lock()
	rec.fail = fmt.Errorf("disk on fire")
	rec.mu.Unlock()

	rc := dialRaw(t, s.Addr(), "", "src")
	defer rc.close()
	typ, _ := rc.roundTrip(t, frameBatch, encodeBatch(3, []batchRecord{{Key: 3}}))
	if typ != frameErr {
		t.Fatalf("emit failure got frame %#x, want ERR", typ)
	}
	// Fail-stop: the stream must refuse everything afterwards, even
	// batches the emitter could now handle, because the failed batch's
	// floor already advanced.
	rec.mu.Lock()
	rec.fail = nil
	rec.mu.Unlock()
	rc2 := dialRaw(t, s.Addr(), "", "src")
	defer rc2.close()
	typ, body := rc2.roundTrip(t, frameBatch, encodeBatch(4, []batchRecord{{Key: 4}}))
	if typ != frameErr {
		t.Fatalf("poisoned stream answered frame %#x, want ERR", typ)
	}
	code, _, err := decodeErr(body)
	if err != nil {
		t.Fatal(err)
	}
	if code != codeInternal {
		t.Fatalf("poisoned stream code = %d, want %d", code, codeInternal)
	}
}

// TestIngestMetricInventoryDocumented mirrors the batch_*/profiler
// inventory checks: every ingest_* series the gateway registers must be
// documented in docs/INGEST.md.
func TestIngestMetricInventoryDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "INGEST.md"))
	if err != nil {
		t.Fatalf("read docs/INGEST.md: %v", err)
	}
	reg := metrics.NewRegistry()
	tenants := []TenantConfig{{Name: "acme", Token: "tok", Rate: 100}}
	s, _ := startTestServer(t, Config{Tenants: tenants, Registry: reg})
	c := NewClient(s.Addr(), "src", ClientOptions{Token: "tok"})
	defer c.Close()
	sendN(t, c, 0, 3)
	seen := 0
	for _, p := range reg.Snapshot() {
		if !strings.HasPrefix(p.Name, "ingest_") {
			continue
		}
		seen++
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("metric %q is registered but not documented in docs/INGEST.md", p.Name)
		}
	}
	if seen == 0 {
		t.Fatal("no ingest_* series registered; inventory check is vacuous")
	}
}

// rawConn speaks the binary protocol directly, for observing single
// verdicts the retrying Client hides.
type rawConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func dialRaw(t *testing.T, addr, token, stream string) *rawConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rc := &rawConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	if _, err := rc.w.WriteString(magic); err != nil {
		t.Fatal(err)
	}
	typ, _ := rc.roundTrip(t, frameHello, encodeHello(token, stream))
	if typ != frameHelloOK {
		t.Fatalf("hello got frame %#x", typ)
	}
	return rc
}

func (rc *rawConn) roundTrip(t *testing.T, typ byte, body []byte) (byte, []byte) {
	t.Helper()
	if err := writeFrame(rc.w, typ, body); err != nil {
		t.Fatal(err)
	}
	if err := rc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	rtyp, rbody, err := readFrame(rc.r)
	if err != nil {
		t.Fatal(err)
	}
	return rtyp, rbody
}

func (rc *rawConn) close() { _ = rc.c.Close() }
