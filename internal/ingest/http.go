package ingest

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The HTTP lane is the low-friction way in: one record per request.
//
//	POST /v1/ingest/<stream>?seq=<n>[&key=<k>]
//	Authorization: Bearer <token>
//	<body = payload>
//
// seq is the tenant's 1-based contiguous sequence for the stream — the
// same dedup contract as the binary lane, so a curl retry of an
// acknowledged request is absorbed idempotently. Verdicts map onto
// status codes: 200 ACK (JSON {"through":n,"dups":d}), 429 + Retry-After
// for quota/shed/drain verdicts, 409 for sequence gaps, 401 for bad
// tokens, 400 for malformed requests, 500 for stream failures.

// maxHTTPBody bounds one HTTP-lane payload.
const maxHTTPBody = 1 << 20

func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest/", s.handleIngest)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
		return tok
	}
	return ""
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	streamName := strings.TrimPrefix(r.URL.Path, "/v1/ingest/")
	if streamName == "" || strings.Contains(streamName, "/") {
		http.Error(w, "bad stream name", http.StatusBadRequest)
		return
	}
	t := s.authenticate(bearerToken(r))
	if t == nil {
		http.Error(w, "unknown token", http.StatusUnauthorized)
		return
	}
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil || seq == 0 {
		http.Error(w, "seq must be a positive integer", http.StatusBadRequest)
		return
	}
	var key uint64
	if kq := r.URL.Query().Get("key"); kq != "" {
		if key, err = strconv.ParseUint(kq, 10, 64); err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxHTTPBody+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(payload) > maxHTTPBody {
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
		return
	}

	accepted := time.Now()
	var v verdict
	if st := s.lookupStream(streamName); st == nil {
		v = retryVerdict(500, "stream unavailable")
	} else {
		v = s.process(t, st, seq, []batchRecord{{Key: key, Payload: payload}}, accepted)
	}
	switch v.kind {
	case frameAck:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"through\":%d,\"dups\":%d}\n", v.through, v.dups)
	case frameRetry:
		secs := (v.afterMillis + 999) / 1000
		if secs == 0 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatUint(secs, 10))
		http.Error(w, v.reason, http.StatusTooManyRequests)
	default:
		code := http.StatusInternalServerError
		switch v.code {
		case codeGap:
			code = http.StatusConflict
		case codeBad:
			code = http.StatusBadRequest
		case codeAuth:
			code = http.StatusUnauthorized
		}
		http.Error(w, v.msg, code)
	}
}
