package ingest

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func roundTripFrame(t *testing.T, typ byte, body []byte) (byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, typ, body); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	gotTyp, gotBody, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return gotTyp, gotBody
}

func TestFrameRoundTrip(t *testing.T) {
	typ, body := roundTripFrame(t, frameBatch, []byte("hello"))
	if typ != frameBatch || string(body) != "hello" {
		t.Fatalf("round trip gave type %#x body %q", typ, body)
	}
	// Empty bodies are legal (a frame is at least its type byte).
	typ, body = roundTripFrame(t, frameAck, nil)
	if typ != frameAck || len(body) != 0 {
		t.Fatalf("empty round trip gave type %#x body %q", typ, body)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	// A corrupt length prefix must not trigger a giant allocation.
	raw := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Zero length is equally invalid: every frame has a type byte.
	raw = []byte{0, 0, 0, 0}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("zero frame length accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, frameBatch, []byte("truncate me")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw[:cut]))); err == nil {
			t.Fatalf("frame truncated to %d of %d bytes read successfully", cut, len(raw))
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	token, stream, err := decodeHello(encodeHello("secret", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if token != "secret" || stream != "src" {
		t.Fatalf("got token %q stream %q", token, stream)
	}
	tenant, err := decodeHelloOK(encodeHelloOK("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "acme" {
		t.Fatalf("got tenant %q", tenant)
	}
}

func TestDecodeHelloRejectsHugeString(t *testing.T) {
	if _, _, err := decodeHello(encodeHello(strings.Repeat("x", maxStringLen+1), "src")); err == nil {
		t.Fatal("oversized token accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := []batchRecord{
		{Key: 1, Payload: []byte("a")},
		{Key: 1 << 40, Payload: nil},
		{Key: 7, Payload: bytes.Repeat([]byte{0xab}, 300)},
	}
	firstSeq, recs, err := decodeBatch(encodeBatch(42, in), 16)
	if err != nil {
		t.Fatal(err)
	}
	if firstSeq != 42 {
		t.Fatalf("firstSeq = %d, want 42", firstSeq)
	}
	if len(recs) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(in))
	}
	for i := range in {
		if recs[i].Key != in[i].Key || !bytes.Equal(recs[i].Payload, in[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], in[i])
		}
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	one := []batchRecord{{Key: 1, Payload: []byte("p")}}
	cases := []struct {
		name string
		body []byte
		max  int
	}{
		{name: "zero firstSeq", body: encodeBatch(0, one), max: 16},
		{name: "empty batch", body: encodeBatch(1, nil), max: 16},
		{name: "over max records", body: encodeBatch(1, []batchRecord{{Key: 1}, {Key: 2}}), max: 1},
		{name: "truncated payload", body: encodeBatch(1, one)[:3], max: 16},
		{name: "empty body", body: nil, max: 16},
	}
	for _, tc := range cases {
		if _, _, err := decodeBatch(tc.body, tc.max); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestVerdictFrameRoundTrips(t *testing.T) {
	through, dups, err := decodeAck(encodeAck(99, 3))
	if err != nil || through != 99 || dups != 3 {
		t.Fatalf("ack round trip: through=%d dups=%d err=%v", through, dups, err)
	}
	after, reason, err := decodeRetry(encodeRetry(250, "tenant rate quota"))
	if err != nil || after != 250 || reason != "tenant rate quota" {
		t.Fatalf("retry round trip: after=%d reason=%q err=%v", after, reason, err)
	}
	code, msg, err := decodeErr(encodeErr(codeGap, "gap"))
	if err != nil || code != codeGap || msg != "gap" {
		t.Fatalf("err round trip: code=%d msg=%q err=%v", code, msg, err)
	}
}
