package ingest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"streammine/internal/wal"
)

func TestLogEntryRoundTrip(t *testing.T) {
	in := logEntry{Tenant: "acme", Seq: 42, Key: 7, Payload: []byte("payload")}
	out, err := decodeEntry(encodeEntry(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Tenant != in.Tenant || out.Seq != in.Seq || out.Key != in.Key || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip gave %+v, want %+v", out, in)
	}
}

func appendSync(t *testing.T, l *admLog, entries []logEntry) {
	t.Helper()
	ch := make(chan error, 1)
	if err := l.append(entries, func(err error) { ch <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
}

func TestAdmLogRecoversInOrder(t *testing.T) {
	dir := t.TempDir()
	l, recovered, err := openAdmLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d entries", len(recovered))
	}
	var want []logEntry
	for batch := 0; batch < 3; batch++ {
		var entries []logEntry
		for i := 0; i < 4; i++ {
			seq := uint64(batch*4 + i + 1)
			entries = append(entries, logEntry{
				Tenant:  "acme",
				Seq:     seq,
				Key:     seq * 10,
				Payload: []byte(fmt.Sprintf("rec-%d", seq)),
			})
		}
		appendSync(t, l, entries)
		want = append(want, entries...)
	}
	l.close()

	l2, recovered, err := openAdmLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(recovered) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(recovered), len(want))
	}
	for i, e := range recovered {
		w := want[i]
		if e.Tenant != w.Tenant || e.Seq != w.Seq || e.Key != w.Key || !bytes.Equal(e.Payload, w.Payload) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, w)
		}
	}
	// Appends after reopen must continue the LSN sequence so a second
	// reopen still yields one totally ordered history.
	appendSync(t, l2, []logEntry{{Tenant: "acme", Seq: 13, Key: 130, Payload: []byte("rec-13")}})
	l2.close()
	_, recovered, err = openAdmLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(want)+1 || recovered[len(recovered)-1].Seq != 13 {
		t.Fatalf("after reopen-append recovered %d entries, last %+v", len(recovered), recovered[len(recovered)-1])
	}
}

func TestAdmLogToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := openAdmLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, []logEntry{
		{Tenant: "acme", Seq: 1, Key: 10, Payload: []byte("one")},
		{Tenant: "acme", Seq: 2, Key: 20, Payload: []byte("two")},
	})
	l.close()

	// Simulate a crash mid-append: garbage at the end of the live segment.
	seg := filepath.Join(dir, "seg-000001.wal")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recovered, err := openAdmLog(dir)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer l2.close()
	if len(recovered) != 2 || recovered[0].Seq != 1 || recovered[1].Seq != 2 {
		t.Fatalf("recovered %+v, want the intact 2-entry prefix", recovered)
	}
}

func TestAdmLogInMemory(t *testing.T) {
	l, recovered, err := openAdmLog("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	if len(recovered) != 0 {
		t.Fatalf("in-memory log recovered %d entries", len(recovered))
	}
	appendSync(t, l, []logEntry{{Tenant: "default", Seq: 1, Key: 1}})
}

func TestDecodeEntryRejectsGarbage(t *testing.T) {
	if _, err := decodeEntry(wal.Record{Kind: wal.KindCustom, Value: 1, Aux: []byte{0xff}}); err == nil {
		t.Fatal("garbage aux decoded")
	}
}
