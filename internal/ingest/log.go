package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"streammine/internal/storage"
	"streammine/internal/wal"
)

// The admission log is the gateway's durability point: one record per
// admitted ingest record, appended *before* the ACK and before the
// record is handed to the engine. It reuses the decision-log machinery —
// wal.Record framing with CRCs, the §2.4 group-commit writer pool, and
// the reopenable segment store — so admitted records get the same
// batched-fsync cost profile as operator decisions.
//
// Each entry is a KindCustom record: Value carries the tenant-scoped
// client sequence, Aux carries tenant name, event key and payload. On
// reopen the scan (tolerating a torn tail, like partition recovery)
// yields entries in LSN order; LSN order equals admission order equals
// engine-emission order, so replaying the scan through EmitBatch
// reproduces the exact event identities of the pre-crash run and the
// downstream dedup path absorbs anything already committed.

// logEntry is one admitted record as stored in the admission log.
type logEntry struct {
	Tenant  string
	Seq     uint64 // tenant-scoped client sequence (1-based)
	Key     uint64
	Payload []byte
}

func encodeEntry(e logEntry) wal.Record {
	aux := putString(nil, e.Tenant)
	aux = binary.AppendUvarint(aux, e.Key)
	aux = append(aux, e.Payload...)
	return wal.Record{Kind: wal.KindCustom, Value: e.Seq, Aux: aux}
}

func decodeEntry(r wal.Record) (logEntry, error) {
	c := cursor{r.Aux}
	tenant, err := c.str()
	if err != nil {
		return logEntry{}, fmt.Errorf("ingest: admission record lsn %d: %w", r.LSN, err)
	}
	key, err := c.uvarint()
	if err != nil {
		return logEntry{}, fmt.Errorf("ingest: admission record lsn %d: %w", r.LSN, err)
	}
	return logEntry{Tenant: tenant, Seq: r.Value, Key: key, Payload: c.b}, nil
}

// admLog is the per-stream admission log: a wal.Log over its own writer
// pool and storage point. File-backed when opened with a directory,
// in-memory (non-recoverable, for tests and benchmarks) otherwise.
type admLog struct {
	log  *wal.Log
	pool *storage.Pool
}

// maxAdmSegment bounds one admission-log segment file.
const maxAdmSegment = 64 << 20

// openAdmLog opens (or reopens) the admission log for one stream and
// returns the previously admitted entries in admission order. A torn
// tail — a crash mid-append — is tolerated by keeping the intact
// prefix. dir == "" selects an in-memory store that recovers nothing.
func openAdmLog(dir string) (*admLog, []logEntry, error) {
	var disk storage.Disk
	var recovered []logEntry
	var lastLSN wal.LSN
	if dir == "" {
		disk = storage.NewMemDisk()
	} else {
		store, err := wal.OpenSegmentStore(dir, maxAdmSegment)
		if err != nil {
			return nil, nil, err
		}
		recs, err := store.Scan()
		if err != nil && !errors.Is(err, wal.ErrCorrupt) {
			_ = store.Close()
			return nil, nil, fmt.Errorf("scan admission log: %w", err)
		}
		for _, r := range recs {
			if r.Kind != wal.KindCustom {
				continue
			}
			e, err := decodeEntry(r)
			if err != nil {
				_ = store.Close()
				return nil, nil, err
			}
			recovered = append(recovered, e)
			if r.LSN > lastLSN {
				lastLSN = r.LSN
			}
		}
		disk = store
	}
	l := &admLog{pool: storage.NewPool([]storage.Disk{disk})}
	l.log = wal.New(l.pool)
	l.log.AdvanceLSN(lastLSN)
	return l, recovered, nil
}

// append submits entries for stable storage; done fires once they are
// durable (or the write failed). Append order is admission order.
func (l *admLog) append(entries []logEntry, done func(error)) error {
	recs := make([]wal.Record, len(entries))
	for i, e := range entries {
		recs[i] = encodeEntry(e)
	}
	_, err := l.log.Append(recs, done)
	return err
}

func (l *admLog) close() {
	_ = l.log.Close()
	_ = l.pool.Close()
}
