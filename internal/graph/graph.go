package graph

import (
	"errors"
	"fmt"

	"streammine/internal/flow"
	"streammine/internal/operator"
)

// NodeID identifies a node within one Graph.
type NodeID int

// Node is one operator instance in the graph.
type Node struct {
	// ID is assigned by AddNode.
	ID NodeID
	// Name is a human-readable label (unique within the graph).
	Name string
	// Op is the operator implementation; nil marks a source node driven
	// externally (publishers).
	Op operator.Operator
	// Traits describe the operator's fault-tolerance class.
	Traits operator.Traits
	// Speculative configures the node to emit outputs before its log is
	// stable (the paper's per-operator speculation switch, §2.3).
	Speculative bool
	// Workers is the maximum number of concurrent processing threads
	// (optimistic parallelization); minimum 1.
	Workers int
	// OutputPorts is the number of distinct output ports (Split uses >1).
	OutputPorts int
	// CheckpointEvery triggers a state checkpoint every N processed
	// events (0 disables periodic checkpoints).
	CheckpointEvery int
	// StableID, when non-zero, overrides the operator identity used for
	// decision-log records, checkpoints, and event IDs. The cluster
	// runtime sets it to the node's position in the *global* topology so
	// identities stay stable when a partition subgraph (whose local IDs
	// are renumbered from 0) is rebuilt on another worker.
	StableID uint32
	// RemoteInputs lists input indices fed from outside this graph (a
	// cluster bridge delivers them). Validation treats them as occupied,
	// so a partition subgraph with a mix of local and remote inputs still
	// passes the contiguity check.
	RemoteInputs []int
	// Flow configures backpressure, admission control and speculation
	// throttling for this node; nil disables all flow control.
	Flow *flow.Limits
}

// Edge connects node From's output port FromPort to node To's input
// stream ToInput.
type Edge struct {
	From     NodeID
	FromPort int
	To       NodeID
	ToInput  int
}

// Graph is a mutable operator topology. Build it single-threaded, then
// Validate before handing it to the engine.
type Graph struct {
	nodes []Node
	edges []Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// Common validation errors.
var (
	// ErrCycle reports that the topology contains a directed cycle.
	ErrCycle = errors.New("graph: cycle detected")
	// ErrBadEdge reports an edge referencing unknown nodes/ports.
	ErrBadEdge = errors.New("graph: invalid edge")
	// ErrDupName reports two nodes sharing a name.
	ErrDupName = errors.New("graph: duplicate node name")
)

// AddNode appends a node and returns its ID. Zero-valued Workers and
// OutputPorts are normalized to 1.
func (g *Graph) AddNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes))
	if n.Workers < 1 {
		n.Workers = 1
	}
	if n.OutputPorts < 1 {
		n.OutputPorts = 1
	}
	g.nodes = append(g.nodes, n)
	return n.ID
}

// Connect adds an edge from's port fromPort to to's input toInput.
func (g *Graph) Connect(from NodeID, fromPort int, to NodeID, toInput int) {
	g.edges = append(g.edges, Edge{From: from, FromPort: fromPort, To: to, ToInput: toInput})
}

// Nodes returns the node list (do not mutate).
func (g *Graph) Nodes() []Node { return g.nodes }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return Node{}, fmt.Errorf("%w: node %d", ErrBadEdge, id)
	}
	return g.nodes[id], nil
}

// Edges returns the edge list (do not mutate).
func (g *Graph) Edges() []Edge { return g.edges }

// InputsOf returns the edges feeding node id, sorted by input index order
// of appearance.
func (g *Graph) InputsOf(id NodeID) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// OutputsOf returns the edges leaving node id.
func (g *Graph) OutputsOf(id NodeID) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// Sources returns nodes with no incoming edges.
func (g *Graph) Sources() []NodeID {
	return g.pick(func(id NodeID) bool { return len(g.InputsOf(id)) == 0 })
}

// Sinks returns nodes with no outgoing edges.
func (g *Graph) Sinks() []NodeID {
	return g.pick(func(id NodeID) bool { return len(g.OutputsOf(id)) == 0 })
}

func (g *Graph) pick(keep func(NodeID) bool) []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if keep(NodeID(i)) {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Validate checks structural integrity: unique names, edges referencing
// existing nodes and ports, contiguous input indices starting at 0, and
// acyclicity.
func (g *Graph) Validate() error {
	names := make(map[string]bool, len(g.nodes))
	for _, n := range g.nodes {
		if n.Name != "" && names[n.Name] {
			return fmt.Errorf("%w: %q", ErrDupName, n.Name)
		}
		names[n.Name] = true
	}
	inputSeen := make(map[NodeID]map[int]bool)
	for _, n := range g.nodes {
		for _, i := range n.RemoteInputs {
			if i < 0 {
				return fmt.Errorf("%w: node %d remote input %d", ErrBadEdge, n.ID, i)
			}
			m := inputSeen[n.ID]
			if m == nil {
				m = make(map[int]bool)
				inputSeen[n.ID] = m
			}
			if m[i] {
				return fmt.Errorf("%w: node %d remote input %d declared twice", ErrBadEdge, n.ID, i)
			}
			m[i] = true
		}
	}
	for _, e := range g.edges {
		if int(e.From) < 0 || int(e.From) >= len(g.nodes) ||
			int(e.To) < 0 || int(e.To) >= len(g.nodes) {
			return fmt.Errorf("%w: %d→%d references unknown node", ErrBadEdge, e.From, e.To)
		}
		if e.FromPort < 0 || e.FromPort >= g.nodes[e.From].OutputPorts {
			return fmt.Errorf("%w: node %d has no output port %d", ErrBadEdge, e.From, e.FromPort)
		}
		if e.ToInput < 0 {
			return fmt.Errorf("%w: negative input index %d", ErrBadEdge, e.ToInput)
		}
		m := inputSeen[e.To]
		if m == nil {
			m = make(map[int]bool)
			inputSeen[e.To] = m
		}
		if m[e.ToInput] {
			return fmt.Errorf("%w: node %d input %d connected twice", ErrBadEdge, e.To, e.ToInput)
		}
		m[e.ToInput] = true
	}
	// Inputs must be contiguous 0..k-1.
	for id, m := range inputSeen {
		for i := 0; i < len(m); i++ {
			if !m[i] {
				return fmt.Errorf("%w: node %d inputs not contiguous (missing %d)", ErrBadEdge, id, i)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering of the nodes, or ErrCycle.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var queue []NodeID
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	var order []NodeID
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range g.edges {
			if e.From != n {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, ErrCycle
	}
	return order, nil
}
