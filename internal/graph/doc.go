// Package graph models the acyclic operator graph of an ESP application
// (paper §2.1): named nodes hosting operators, directed edges connecting
// an upstream output port to a downstream input index, cycle detection
// and topological ordering. The graph is pure topology — it holds no
// runtime state; internal/core instantiates the execution machinery from
// it at Engine construction.
//
// Entry points:
//
//   - New creates an empty Graph; AddNode registers a Node spec (name,
//     operator, traits, speculation and checkpoint settings) and returns
//     its NodeID; Connect adds an edge from an output port to a
//     downstream input index.
//   - Validate rejects cycles (ErrCycle), dangling inputs and duplicate
//     connections; core.New calls it before building an engine.
//   - TopoOrder yields nodes upstream-first — the order used for engine
//     drains; Node, Nodes, Edges and InputsOf are the lookups the
//     runtime and tools build on.
package graph
