package graph

import (
	"errors"
	"testing"

	"streammine/internal/operator"
)

// chain builds src → a → b with default settings.
func chain(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	src := g.AddNode(Node{Name: "src"})
	a := g.AddNode(Node{Name: "a", Op: &operator.Union{}})
	b := g.AddNode(Node{Name: "b", Op: &operator.Filter{}})
	g.Connect(src, 0, a, 0)
	g.Connect(a, 0, b, 0)
	return g, src, a, b
}

func TestValidChain(t *testing.T) {
	g, src, a, b := chain(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != src || order[1] != a || order[2] != b {
		t.Fatalf("order = %v", order)
	}
	if s := g.Sources(); len(s) != 1 || s[0] != src {
		t.Fatalf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != b {
		t.Fatalf("Sinks = %v", s)
	}
}

func TestNodeDefaults(t *testing.T) {
	g := New()
	id := g.AddNode(Node{Name: "n"})
	n, err := g.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	if n.Workers != 1 || n.OutputPorts != 1 {
		t.Fatalf("defaults not applied: %+v", n)
	}
	if _, err := g.Node(99); err == nil {
		t.Fatal("Node(99) succeeded")
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	g.Connect(a, 0, b, 0)
	g.Connect(b, 0, a, 0)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestSelfLoopDetected(t *testing.T) {
	g := New()
	a := g.AddNode(Node{Name: "a"})
	g.Connect(a, 0, a, 0)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestDuplicateName(t *testing.T) {
	g := New()
	g.AddNode(Node{Name: "x"})
	g.AddNode(Node{Name: "x"})
	if err := g.Validate(); !errors.Is(err, ErrDupName) {
		t.Fatalf("Validate = %v, want ErrDupName", err)
	}
}

func TestBadEdges(t *testing.T) {
	tests := []struct {
		name  string
		build func(g *Graph)
	}{
		{"unknown node", func(g *Graph) {
			a := g.AddNode(Node{Name: "a"})
			g.Connect(a, 0, NodeID(9), 0)
		}},
		{"bad port", func(g *Graph) {
			a := g.AddNode(Node{Name: "a", OutputPorts: 1})
			b := g.AddNode(Node{Name: "b"})
			g.Connect(a, 2, b, 0)
		}},
		{"negative input", func(g *Graph) {
			a := g.AddNode(Node{Name: "a"})
			b := g.AddNode(Node{Name: "b"})
			g.Connect(a, 0, b, -1)
		}},
		{"double-connected input", func(g *Graph) {
			a := g.AddNode(Node{Name: "a"})
			b := g.AddNode(Node{Name: "b"})
			c := g.AddNode(Node{Name: "c"})
			g.Connect(a, 0, c, 0)
			g.Connect(b, 0, c, 0)
		}},
		{"non-contiguous inputs", func(g *Graph) {
			a := g.AddNode(Node{Name: "a"})
			b := g.AddNode(Node{Name: "b"})
			g.Connect(a, 0, b, 1)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New()
			tt.build(g)
			if err := g.Validate(); !errors.Is(err, ErrBadEdge) {
				t.Fatalf("Validate = %v, want ErrBadEdge", err)
			}
		})
	}
}

func TestDiamondTopology(t *testing.T) {
	// The paper's Fig. 1 shape: two publishers → union/processor → split →
	// consumers, here as a diamond.
	g := New()
	p1 := g.AddNode(Node{Name: "p1"})
	p2 := g.AddNode(Node{Name: "p2"})
	union := g.AddNode(Node{Name: "union", Op: &operator.Union{}, Traits: operator.UnionTraits})
	split := g.AddNode(Node{Name: "split", Op: &operator.Split{Outputs: 2}, OutputPorts: 2})
	c1 := g.AddNode(Node{Name: "c1"})
	c2 := g.AddNode(Node{Name: "c2"})
	g.Connect(p1, 0, union, 0)
	g.Connect(p2, 0, union, 1)
	g.Connect(union, 0, split, 0)
	g.Connect(split, 0, c1, 0)
	g.Connect(split, 1, c2, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if ins := g.InputsOf(union); len(ins) != 2 {
		t.Fatalf("union inputs = %d", len(ins))
	}
	if outs := g.OutputsOf(split); len(outs) != 2 {
		t.Fatalf("split outputs = %d", len(outs))
	}
	srcs := g.Sources()
	if len(srcs) != 2 {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestFanInOrderPreserved(t *testing.T) {
	g := New()
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	j := g.AddNode(Node{Name: "join", Op: &operator.Join{Buckets: 4}})
	g.Connect(a, 0, j, 0)
	g.Connect(b, 0, j, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ins := g.InputsOf(j)
	if ins[0].ToInput != 0 || ins[1].ToInput != 1 {
		t.Fatalf("inputs = %+v", ins)
	}
}
