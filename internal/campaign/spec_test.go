package campaign

import (
	"strings"
	"testing"
	"time"
)

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(`{"name": "t", "workloads": ["paper"], "faults": ["sigkill"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 1000 || s.Rate != 1500 || s.Workers != 2 {
		t.Fatalf("defaults: events=%d rate=%d workers=%d", s.Events, s.Rate, s.Workers)
	}
	if s.Timeout.D() != 120*time.Second {
		t.Fatalf("timeout default = %v", s.Timeout.D())
	}
	if s.Trigger != nil {
		t.Fatalf("trigger should default to nil (auto), got %v", s.Trigger)
	}
	if len(s.Configs) != 1 || s.Configs[0].Name != "spec" || !s.Configs[0].Spec() {
		t.Fatalf("config default = %+v", s.Configs)
	}
}

func TestParseFaultShorthandAndDurations(t *testing.T) {
	s, err := Parse([]byte(`{
		"name": "t", "workloads": ["paper"],
		"faults": ["slow_bridge", {"type": "coord_pause"}, {"type": "straggler", "duration": "5s", "target": "w2"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Faults[0].Duration.D(); d != 2*time.Second {
		t.Fatalf("slow_bridge default duration = %v", d)
	}
	if d := s.Faults[1].Duration.D(); d != 700*time.Millisecond {
		t.Fatalf("coord_pause default duration = %v", d)
	}
	if d := s.Faults[2].Duration.D(); d != 5*time.Second {
		t.Fatalf("explicit duration = %v", d)
	}
	if got := s.Faults[2].Label(); got != "straggler@w2" {
		t.Fatalf("label = %q", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"no name":          `{"workloads": ["paper"], "faults": ["sigkill"]}`,
		"no workloads":     `{"name": "t", "faults": ["sigkill"]}`,
		"unknown workload": `{"name": "t", "workloads": ["nope"], "faults": ["sigkill"]}`,
		"no faults":        `{"name": "t", "workloads": ["paper"]}`,
		"unknown fault":    `{"name": "t", "workloads": ["paper"], "faults": ["meteor"]}`,
		"two triggers":     `{"name": "t", "workloads": ["paper"], "faults": ["sigkill"], "trigger": {"sinkEvents": 5, "wallMs": 10}}`,
		"empty trigger":    `{"name": "t", "workloads": ["paper"], "faults": ["sigkill"], "trigger": {}}`,
		"bad metric":       `{"name": "t", "workloads": ["paper"], "faults": ["sigkill"], "trigger": {"metric": {"min": 3}}}`,
		"nameless config":  `{"name": "t", "workloads": ["paper"], "faults": ["sigkill"], "configs": [{"batch": 8}]}`,
		"dup config":       `{"name": "t", "workloads": ["paper"], "faults": ["sigkill"], "configs": [{"name": "a"}, {"name": "a"}]}`,
		"bad duration":     `{"name": "t", "workloads": ["paper"], "faults": [{"type": "sigkill", "duration": "fast"}]}`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestExpandBaselinesFirst(t *testing.T) {
	s, err := Parse([]byte(`{
		"name": "t",
		"workloads": ["paper", "window"],
		"faults": ["sigkill", "slow_disk"],
		"configs": [{"name": "spec"}, {"name": "nospec", "speculative": false}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	// 2 workloads × 2 configs × (2 faults + auto baseline) = 12.
	if len(cells) != 12 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	seenBaseline := map[string]bool{}
	for _, c := range cells {
		if c.Baseline() {
			seenBaseline[c.BaselineKey()] = true
		} else if !seenBaseline[c.BaselineKey()] {
			t.Fatalf("cell %s runs before its baseline", c.Name())
		}
	}
	if len(seenBaseline) != 4 {
		t.Fatalf("saw %d baselines, want 4", len(seenBaseline))
	}
	if got := cells[0].Name(); got != "paper/none/spec" {
		t.Fatalf("first cell = %q", got)
	}
}

func TestExpandExplicitNoneNotDuplicated(t *testing.T) {
	s, err := Parse([]byte(`{"name": "t", "workloads": ["paper"], "faults": ["none", "sigkill"]}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	if !cells[0].Baseline() || cells[1].Baseline() {
		t.Fatalf("order = %s, %s", cells[0].Name(), cells[1].Name())
	}
}

func TestExpectedSinks(t *testing.T) {
	if n, exact := ExpectedSinks("paper", 1000); n != 1000 || !exact {
		t.Fatalf("paper: %d exact=%v", n, exact)
	}
	// The windowed workload emits roughly one output per window, so
	// sink-count triggers and drain waits must scale by it.
	if n, exact := ExpectedSinks("window", 1000); n != 62 || exact {
		t.Fatalf("window: %d exact=%v", n, exact)
	}
}

func TestTriggerString(t *testing.T) {
	cases := []struct {
		trig *Trigger
		want string
	}{
		{nil, "none"},
		{&Trigger{SinkEvents: 40}, "sinkEvents>=40"},
		{&Trigger{WallMs: 900}, "wall>=900ms"},
		{&Trigger{Metric: &MetricTrigger{Series: "streammine_events_total", Min: 12}}, "metric streammine_events_total>=12"},
	}
	for _, c := range cases {
		if got := c.trig.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestWorkloadTopologies(t *testing.T) {
	s, err := Parse([]byte(`{"name": "t", "workloads": ["paper"], "faults": ["sigkill"]}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range WorkloadNames() {
		topo, err := Topology(w, s, Config{Name: "spec"})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if !strings.Contains(topo, `"sink"`) {
			t.Fatalf("%s topology has no sink:\n%s", w, topo)
		}
		if IngestWorkload(w) != strings.Contains(topo, `"ingest": true`) {
			t.Fatalf("%s: ingest flag and topology disagree:\n%s", w, topo)
		}
	}
	if _, err := Topology("nope", s, Config{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	off := false
	topo, err := Topology("paper", s, Config{Name: "nospec", Speculative: &off, MailboxCap: 64, MaxOpenSpec: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(topo, `"speculative": false`) || !strings.Contains(topo, `"mailboxCap": 64`) {
		t.Fatalf("config not applied:\n%s", topo)
	}
}
