package campaign

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func sampleOutcome() *Outcome {
	return &Outcome{
		Campaign: "smoke",
		Cells: []*Result{
			{
				Cell: "paper/none/spec", Workload: "paper", Fault: "none", Config: "spec",
				Baseline: true, Events: 1000, CompletenessPct: 100,
				latencySplit:         latencySplit{BeforeP50Ms: 3.2, BeforeP99Ms: 9.1},
				WasteAbortedAttempts: 4, WasteCPUPct: 1.25, DurationMs: 2200,
			},
			{
				Cell: "paper/sigkill/spec", Workload: "paper", Fault: "sigkill", Config: "spec",
				Victim: "w2", Trigger: "sinkEvents>=100", Events: 1000, ReplayedPrints: 17,
				RecoveryMs: 1480, CompletenessPct: 99.7,
				latencySplit: latencySplit{
					BeforeP50Ms: 3.4, BeforeP99Ms: 10.2,
					DuringP50Ms: 410, DuringP99Ms: 1520.5,
					AfterP50Ms: 3.9, AfterP99Ms: 11.8,
				},
				WasteAbortedAttempts: 31, WasteCPUPct: 2.75, DurationMs: 4100,
			},
			{
				Cell: "paper/slow_disk/spec", Workload: "paper", Fault: "slow_disk", Config: "spec",
				Trigger: "sinkEvents>=100", Events: 993, DupPrints: 2,
				RecoveryMs: 300, CompletenessPct: 98.1,
				Failures: []string{
					"2 duplicate sink prints (suppression leaked)",
					"lineage completeness 98.10% < 99%",
					"identity set diverges from baseline: 7 missing, 0 extra (baseline 1000, got 993)",
				},
			},
		},
	}
}

func TestMarkdownGolden(t *testing.T) {
	got := Markdown(sampleOutcome())
	golden := filepath.Join("testdata", "report.golden.md")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("report drifted from golden (run with -update-golden to regenerate)\n--- got ---\n%s", got)
	}
}

func TestBenchReport(t *testing.T) {
	rep := BenchReport(sampleOutcome())
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("%d rows", len(rep.Benchmarks))
	}
	row := rep.Benchmarks[1]
	if row.Pkg != "campaign/smoke" || row.Name != "paper/sigkill/spec" {
		t.Fatalf("row identity = %s %s", row.Pkg, row.Name)
	}
	if row.RecoveryMs != 1480 || row.CompletenessPct != 99.7 || row.WasteCPUPct != 2.75 {
		t.Fatalf("row metrics = %+v", row)
	}
	if row.LatencyP99Us != 11800 {
		t.Fatalf("after-p99 = %g us", row.LatencyP99Us)
	}
}

func TestOutcomePassed(t *testing.T) {
	o := sampleOutcome()
	if o.Passed() {
		t.Fatal("outcome with a failed cell reported as passed")
	}
	o.Cells = o.Cells[:2]
	if !o.Passed() {
		t.Fatal("all-passing outcome reported as failed")
	}
}

func TestSanitizeName(t *testing.T) {
	if got := sanitizeName("paper/sigkill@w2/spec"); got != "paper_sigkill_w2_spec" {
		t.Fatalf("sanitized = %q", got)
	}
}
