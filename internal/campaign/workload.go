package campaign

import (
	"encoding/json"
	"fmt"
	"sort"

	"streammine/internal/flow"
	"streammine/internal/topology"
)

// workloadDef builds one workload's topology for a campaign spec and
// config. Ingest-fed workloads (gateway-driven load curves) set ingest
// and a pacing curve; the runner drives their records through the
// gateway in-process instead of a synthetic source.
type workloadDef struct {
	desc   string
	ingest bool
	// sinks maps the event count to the expected number of distinct
	// sink outputs (nil = one output per event). exact marks workloads
	// whose baseline must externalize exactly that many (aggregating
	// workloads only approximate it; their correctness criterion is
	// identity-set equality against the baseline instead).
	sinks func(events int) int
	exact bool
	// curve shapes the ingest offered load over the journal: given the
	// fraction done [0,1), it returns a pacing multiplier (1 = the base
	// inter-batch gap, <1 = faster, >1 = slower).
	curve func(frac float64) float64
	build func(s *Spec, cfg Config) *topology.Config
}

// workloads is the registry of pipeline shapes a campaign can name.
var workloads = map[string]workloadDef{
	"paper": {
		desc:  "the paper's pipeline: source -> stateful classifier -> sink, cut across workers",
		exact: true,
		build: func(s *Spec, cfg Config) *topology.Config {
			return baseTopo(s, cfg, []topology.NodeConfig{
				{Name: "src", Type: "source", Rate: s.Rate, Count: s.Events},
				{Name: "classify", Type: "classifier", Classes: 4, Inputs: []string{"src"}, Checkpoint: 32},
				{Name: "out", Type: "sink", Inputs: []string{"classify"}},
			}, map[string]int{"src": 0, "classify": 1, "out": 1})
		},
	},
	"window": {
		desc:  "windowed aggregation: source -> count-window average -> sink",
		sinks: func(events int) int { return events / 16 },
		build: func(s *Spec, cfg Config) *topology.Config {
			return baseTopo(s, cfg, []topology.NodeConfig{
				{Name: "src", Type: "source", Rate: s.Rate, Count: s.Events},
				{Name: "win", Type: "count_window_avg", Window: 16, Inputs: []string{"src"}, Checkpoint: 32},
				{Name: "out", Type: "sink", Inputs: []string{"win"}},
			}, map[string]int{"src": 0, "win": 1, "out": 1})
		},
	},
	"skew": {
		desc:  "skewed keys: hash-split into a hot and a cold stateful branch, re-unioned",
		exact: true,
		build: func(s *Spec, cfg Config) *topology.Config {
			return baseTopo(s, cfg, []topology.NodeConfig{
				{Name: "src", Type: "source", Rate: s.Rate, Count: s.Events},
				{Name: "route", Type: "split", Outputs: 2, Key: "hash", Inputs: []string{"src"}},
				{Name: "hot", Type: "classifier", Classes: 4, Inputs: []string{"route:0"}, Checkpoint: 32, CostMicros: 120},
				{Name: "cold", Type: "classifier", Classes: 4, Inputs: []string{"route:1"}, Checkpoint: 32},
				{Name: "merge", Type: "union", Inputs: []string{"hot", "cold"}},
				{Name: "out", Type: "sink", Inputs: []string{"merge"}},
			}, map[string]int{"src": 0, "route": 0, "hot": 1, "cold": 1, "merge": 1, "out": 1})
		},
	},
	"burst": {
		desc:   "ingest-fed bursty load: on/off cycles through the network gateway",
		ingest: true,
		exact:  true,
		// Four bursts: full speed for the first 60% of each cycle, a
		// near-stall for the rest.
		curve: func(frac float64) float64 {
			cycle := frac * 4
			if cycle-float64(int(cycle)) < 0.6 {
				return 0.2
			}
			return 3
		},
		build: ingestTopo,
	},
	"diurnal": {
		desc:   "ingest-fed diurnal load: one slow sine cycle through the network gateway",
		ingest: true,
		exact:  true,
		curve: func(frac float64) float64 {
			// One cosine valley-to-valley cycle: fastest mid-journal.
			return 2.2 - 1.8*halfSine(frac)
		},
		build: ingestTopo,
	},
}

// halfSine approximates sin(pi*x) on [0,1] without importing math for
// one call site: a parabola with the same endpoints and peak.
func halfSine(x float64) float64 { return 4 * x * (1 - x) }

func ingestTopo(s *Spec, cfg Config) *topology.Config {
	return baseTopo(s, cfg, []topology.NodeConfig{
		{Name: "src", Type: "source", Ingest: true},
		{Name: "classify", Type: "classifier", Classes: 4, Inputs: []string{"src"}, Checkpoint: 32},
		{Name: "out", Type: "sink", Inputs: []string{"classify"}},
	}, map[string]int{"src": 0, "classify": 1, "out": 1})
}

// baseTopo assembles the shared topology envelope: speculation switch,
// deterministic seed, optional flow limits, and worker placement.
func baseTopo(s *Spec, cfg Config, nodes []topology.NodeConfig, assign map[string]int) *topology.Config {
	t := &topology.Config{
		Speculative: cfg.Spec(),
		Seed:        7,
		Nodes:       nodes,
		Placement:   &topology.Placement{Workers: s.Workers, Assign: assign},
	}
	if cfg.MailboxCap > 0 || cfg.MaxOpenSpec > 0 {
		t.Flow = &flow.Limits{
			MailboxCap:   cfg.MailboxCap,
			CreditWindow: cfg.MailboxCap,
			MaxOpenSpec:  cfg.MaxOpenSpec,
		}
	}
	return t
}

// KnownWorkload reports whether name is a registered workload.
func KnownWorkload(name string) bool {
	_, ok := workloads[name]
	return ok
}

// WorkloadNames lists the registered workloads, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkloadDesc returns the one-line description of a workload.
func WorkloadDesc(name string) string { return workloads[name].desc }

// IngestWorkload reports whether the workload is gateway-fed (the
// runner drives it with network clients instead of a synthetic source).
func IngestWorkload(name string) bool { return workloads[name].ingest }

// ExpectedSinks is the number of distinct sink outputs the workload
// should externalize for the given event count; exact reports whether a
// baseline must hit it precisely (aggregating workloads only
// approximate, and are held to identity-set equality instead).
func ExpectedSinks(name string, events int) (n int, exact bool) {
	def := workloads[name]
	if def.sinks != nil {
		return def.sinks(events), def.exact
	}
	return events, def.exact
}

// Topology renders the workload's topology JSON for one cell.
func Topology(workload string, s *Spec, cfg Config) (string, error) {
	def, ok := workloads[workload]
	if !ok {
		return "", fmt.Errorf("campaign: unknown workload %q", workload)
	}
	data, err := json.MarshalIndent(def.build(s, cfg), "", "  ")
	if err != nil {
		return "", err
	}
	return string(data), nil
}
