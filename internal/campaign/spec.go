// Package campaign is the declarative fault-recovery benchmark runner:
// a JSON campaign spec names workloads, faults and engine configs; the
// spec expands into a run matrix (workload × fault × config); each cell
// launches a real multi-process coordinator+workers cluster via
// internal/procharness, injects the declared fault at a declared
// trigger through the /debug/chaos endpoint (or a signal), and measures
// recovery time, delivery latency before/during/after the fault,
// lineage completeness from merged traces, and speculation-waste
// deltas. Results land as a benchfmt report (the schema cmd/benchjson
// gates on) plus a rendered markdown report.
//
// docs/CAMPAIGNS.md documents the spec schema, fault inventory, trigger
// semantics and report format; cmd/campaign is the entry point.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "2s" or "500ms".
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("campaign: duration must be a string like \"2s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("campaign: bad duration %q: %w", s, err)
	}
	if v < 0 {
		return fmt.Errorf("campaign: duration %q is negative", s)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// D converts to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Spec is one JSON campaign description. The run matrix is the cross
// product Workloads × Faults × Configs; a fault-free baseline cell is
// always included per workload × config (added automatically when the
// fault list does not name "none") because delivery assertions and the
// during/after latency comparison are defined against it.
type Spec struct {
	// Name labels the campaign in reports and result rows.
	Name string `json:"name"`
	// Workloads names the pipeline shapes to run (see Workloads).
	Workloads []string `json:"workloads"`
	// Faults lists the faults to inject; a plain string is shorthand
	// for {"type": <string>}.
	Faults []FaultSpec `json:"faults"`
	// Configs lists engine configurations; empty runs one default
	// ("spec", speculation on).
	Configs []Config `json:"configs"`
	// Events is the per-run event count (default 1000).
	Events int `json:"events"`
	// Rate is the source publish rate in events/second (default 1500).
	Rate int `json:"rate"`
	// Workers is the cluster size per cell (default 2).
	Workers int `json:"workers"`
	// Trigger is the default fault trigger. Nil means auto: a tenth of
	// the workload's expected sink outputs externalized (sink counts, not
	// raw events — aggregating workloads emit fewer sink outputs than
	// events). A fault's own trigger overrides it.
	Trigger *Trigger `json:"trigger"`
	// Timeout bounds one cell's run (default 120s).
	Timeout Duration `json:"timeout"`
}

// Config is one engine configuration axis of the matrix.
type Config struct {
	// Name labels the config in cell names ("spec", "nospec", ...).
	Name string `json:"name"`
	// Speculative toggles speculation (default true).
	Speculative *bool `json:"speculative"`
	// Batch, when > 0, forces hot-path batching engine-wide (the
	// coordinator's -batch flag).
	Batch int `json:"batch"`
	// BatchLinger is the partial-batch hold time with Batch > 0.
	BatchLinger Duration `json:"batchLinger"`
	// MailboxCap, when > 0, bounds every mailbox and credit-gates cut
	// edges with the same window (the topology flow section).
	MailboxCap int `json:"mailboxCap"`
	// MaxOpenSpec, when > 0, bounds speculation depth per node.
	MaxOpenSpec int `json:"maxOpenSpec"`
}

// Spec reports whether speculation is on under this config.
func (c Config) Spec() bool { return c.Speculative == nil || *c.Speculative }

// FaultSpec declares one fault of the matrix.
type FaultSpec struct {
	// Type is one of none, sigkill, slow_bridge, lossy_bridge,
	// slow_disk, straggler, coord_pause (see docs/CAMPAIGNS.md).
	Type string `json:"type"`
	// Target picks the victim process for targeted faults (sigkill,
	// straggler): "sink-host" (the worker externalizing sink output),
	// "gateway" (the worker hosting the ingest stream), "other" (a
	// worker that is neither), or an explicit worker name ("w1").
	// Defaults: sigkill targets sink-host (gateway on ingest-fed
	// workloads), straggler targets other.
	Target string `json:"target"`
	// Duration bounds transient faults (slow/lossy bridge, slow disk,
	// straggler, coord_pause): the fault clears this long after
	// injection (default 2s; coord_pause default 700ms).
	Duration Duration `json:"duration"`
	// Params overrides the chaos parameters the fault posts to
	// /debug/chaos (e.g. {"net_delay": "10ms"}).
	Params map[string]string `json:"params"`
	// Trigger overrides the campaign-level trigger for this fault.
	Trigger *Trigger `json:"trigger"`
}

// UnmarshalJSON accepts both the object form and a plain string
// shorthand naming the fault type.
func (f *FaultSpec) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		*f = FaultSpec{Type: s}
		return nil
	}
	type plain FaultSpec
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*f = FaultSpec(p)
	return nil
}

// Label renders the fault for cell names: the type, plus the target
// when explicitly set.
func (f FaultSpec) Label() string {
	if f.Target != "" {
		return f.Type + "@" + f.Target
	}
	return f.Type
}

// Trigger declares when a fault fires. Exactly one field must be set.
type Trigger struct {
	// SinkEvents fires once this many distinct events externalized.
	SinkEvents int `json:"sinkEvents,omitempty"`
	// WallMs fires this many milliseconds after the cluster started.
	WallMs int `json:"wallMs,omitempty"`
	// Metric fires when a scraped metric crosses a threshold.
	Metric *MetricTrigger `json:"metric,omitempty"`
}

func (t *Trigger) String() string {
	switch {
	case t == nil:
		return "none"
	case t.SinkEvents > 0:
		return fmt.Sprintf("sinkEvents>=%d", t.SinkEvents)
	case t.WallMs > 0:
		return fmt.Sprintf("wall>=%dms", t.WallMs)
	case t.Metric != nil:
		return fmt.Sprintf("metric %s>=%g", t.Metric.Series, t.Metric.Min)
	}
	return "none"
}

func (t *Trigger) validate() error {
	if t == nil {
		return nil
	}
	set := 0
	if t.SinkEvents > 0 {
		set++
	}
	if t.WallMs > 0 {
		set++
	}
	if t.Metric != nil {
		set++
		if t.Metric.Series == "" || t.Metric.Min <= 0 {
			return fmt.Errorf("campaign: metric trigger needs a series name and a positive min")
		}
	}
	if set != 1 {
		return fmt.Errorf("campaign: trigger must set exactly one of sinkEvents, wallMs, metric")
	}
	return nil
}

// MetricTrigger fires when the named Prometheus series, summed over all
// label sets and all cluster processes' /metrics endpoints, reaches Min.
type MetricTrigger struct {
	Series string  `json:"series"`
	Min    float64 `json:"min"`
}

// FaultTypes is the injector inventory (docs/CAMPAIGNS.md).
var FaultTypes = map[string]bool{
	"none":         true,
	"sigkill":      true,
	"slow_bridge":  true,
	"lossy_bridge": true,
	"slow_disk":    true,
	"straggler":    true,
	"coord_pause":  true,
}

// Load reads and validates a campaign spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read spec: %w", err)
	}
	return Parse(data)
}

// Parse parses and validates a campaign spec, applying defaults.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("campaign: spec needs a name")
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("campaign: spec names no workloads")
	}
	for _, w := range s.Workloads {
		if !KnownWorkload(w) {
			return nil, fmt.Errorf("campaign: unknown workload %q (have %s)", w, strings.Join(WorkloadNames(), ", "))
		}
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("campaign: spec names no faults")
	}
	for i, f := range s.Faults {
		if !FaultTypes[f.Type] {
			return nil, fmt.Errorf("campaign: unknown fault type %q", f.Type)
		}
		if err := f.Trigger.validate(); err != nil {
			return nil, err
		}
		if s.Faults[i].Duration == 0 {
			switch f.Type {
			case "coord_pause":
				s.Faults[i].Duration = Duration(700 * time.Millisecond)
			case "slow_bridge", "lossy_bridge", "slow_disk", "straggler":
				s.Faults[i].Duration = Duration(2 * time.Second)
			}
		}
	}
	if err := s.Trigger.validate(); err != nil {
		return nil, err
	}
	if len(s.Configs) == 0 {
		s.Configs = []Config{{Name: "spec"}}
	}
	seen := map[string]bool{}
	for _, c := range s.Configs {
		if c.Name == "" {
			return nil, fmt.Errorf("campaign: every config needs a name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("campaign: duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if s.Events <= 0 {
		s.Events = 1000
	}
	if s.Rate <= 0 {
		s.Rate = 1500
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.Timeout == 0 {
		s.Timeout = Duration(120 * time.Second)
	}
	return &s, nil
}

// Cell is one run of the matrix.
type Cell struct {
	Workload string
	Fault    FaultSpec
	Config   Config
}

// Name renders the cell identity used in result rows, directories and
// reports: workload/fault/config.
func (c Cell) Name() string {
	return c.Workload + "/" + c.Fault.Label() + "/" + c.Config.Name
}

// Baseline reports whether this is a fault-free baseline cell.
func (c Cell) Baseline() bool { return c.Fault.Type == "none" }

// BaselineKey identifies the baseline a faulted cell is compared
// against (same workload and config).
func (c Cell) BaselineKey() string { return c.Workload + "/" + c.Config.Name }

// Expand produces the run matrix. For every workload × config the
// fault-free baseline cell comes first (added when the spec does not
// list "none" itself), so the runner can assert faulted cells against
// an already-measured baseline in a single pass.
func (s *Spec) Expand() []Cell {
	faults := s.Faults
	hasNone := false
	for _, f := range faults {
		if f.Type == "none" {
			hasNone = true
		}
	}
	if !hasNone {
		faults = append([]FaultSpec{{Type: "none"}}, faults...)
	}
	var cells []Cell
	for _, w := range s.Workloads {
		for _, cfg := range s.Configs {
			// Baselines first within each workload × config group.
			for _, f := range faults {
				if f.Type == "none" {
					cells = append(cells, Cell{Workload: w, Fault: f, Config: cfg})
				}
			}
			for _, f := range faults {
				if f.Type != "none" {
					cells = append(cells, Cell{Workload: w, Fault: f, Config: cfg})
				}
			}
		}
	}
	return cells
}
