package campaign

import (
	"fmt"
	"strings"

	"streammine/internal/benchfmt"
)

// BenchReport converts a campaign outcome into the shared benchfmt
// schema, one row per cell, so cmd/benchjson's -require column probes
// and -prev regression gate apply to campaign archives exactly as they
// do to benchmark archives.
func BenchReport(o *Outcome) benchfmt.Report {
	rep := benchfmt.Report{Benchmarks: make([]benchfmt.Result, 0, len(o.Cells))}
	for _, c := range o.Cells {
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.Result{
			Pkg:             "campaign/" + o.Campaign,
			Name:            c.Cell,
			Iterations:      1,
			RecoveryMs:      c.RecoveryMs,
			CompletenessPct: c.CompletenessPct,
			WasteCPUPct:     c.WasteCPUPct,
			LatencyP50Us:    1000 * c.AfterP50Ms,
			LatencyP99Us:    1000 * c.AfterP99Ms,

			RecoveryDetectedMs: c.RecoveryDetectedMs,
			DetectMs:           c.DetectMs,
			RestoreMs:          c.RestoreMs,
			ReplayMs:           c.ReplayMs,
			CatchupMs:          c.CatchupMs,
			ReplayEventsPerSec: c.ReplayEventsPerSec,
		})
	}
	return rep
}

// Markdown renders the human-readable campaign report: a verdict line, a
// summary table, and a per-cell detail section for every failure.
func Markdown(o *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Campaign: %s\n\n", o.Campaign)

	passed := 0
	for _, c := range o.Cells {
		if c.Passed() {
			passed++
		}
	}
	fmt.Fprintf(&b, "%d cells — %d passed, %d failed.\n\n", len(o.Cells), passed, len(o.Cells)-passed)

	b.WriteString("| cell | events | dups | recovery ms | complete % | p99 before/during/after ms | waste cpu % | status |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, c := range o.Cells {
		status := "ok"
		if !c.Passed() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %s | %s / %s / %s | %s | %s |\n",
			c.Cell, c.Events, c.DupPrints,
			num(c.RecoveryMs, 0), num(c.CompletenessPct, 2),
			num(c.BeforeP99Ms, 1), num(c.DuringP99Ms, 1), num(c.AfterP99Ms, 1),
			num(c.WasteCPUPct, 2), status)
	}
	b.WriteString("\n")

	// Per-cell detail for fault cells: who was hit, when, and any failed
	// assertions.
	for _, c := range o.Cells {
		if c.Baseline && c.Passed() {
			continue
		}
		fmt.Fprintf(&b, "## %s\n\n", c.Cell)
		if c.Victim != "" {
			fmt.Fprintf(&b, "- victim: %s\n", c.Victim)
		}
		if c.Trigger != "" {
			fmt.Fprintf(&b, "- trigger: %s\n", c.Trigger)
		}
		if c.RecoveryMs > 0 {
			fmt.Fprintf(&b, "- recovery: %.0f ms\n", c.RecoveryMs)
		}
		if c.RecoveryPhaseSumMs > 0 {
			fmt.Fprintf(&b, "- recovery anatomy: detect %.0f / decide %.0f / restore %.0f / refill %.0f / replay %.0f / catchup %.0f ms (sum %.0f, dominant %s)\n",
				c.DetectMs, c.DecideMs, c.RestoreMs, c.RefillMs, c.ReplayMs, c.CatchupMs,
				c.RecoveryPhaseSumMs, c.RecoveryDominant)
			if c.RecoveryDetectedMs > 0 {
				fmt.Fprintf(&b, "- recovery (detection-anchored): %.0f ms", c.RecoveryDetectedMs)
				if c.ReplayEventsPerSec > 0 {
					fmt.Fprintf(&b, "; replay %.0f events/sec", c.ReplayEventsPerSec)
				}
				b.WriteString("\n")
			}
		}
		fmt.Fprintf(&b, "- p50 before/during/after: %s / %s / %s ms\n",
			num(c.BeforeP50Ms, 1), num(c.DuringP50Ms, 1), num(c.AfterP50Ms, 1))
		if c.ReplayedPrints > 0 {
			fmt.Fprintf(&b, "- replayed prints after crash: %d (post-checkpoint tail re-externalized on the survivor)\n", c.ReplayedPrints)
		}
		if c.WasteAbortedAttempts > 0 {
			fmt.Fprintf(&b, "- speculation waste: %d aborted attempts, %.2f%% of attempt CPU\n",
				c.WasteAbortedAttempts, c.WasteCPUPct)
		}
		if c.HealthStragglerMs > 0 {
			fmt.Fprintf(&b, "- health: straggler %s flagged %.0f ms after injection\n", c.Victim, c.HealthStragglerMs)
		}
		if c.HealthChainMs > 0 {
			fmt.Fprintf(&b, "- health: backpressure chain %.0f ms after injection: %s\n", c.HealthChainMs, c.HealthChain)
		}
		for _, d := range c.FlightRecDumps {
			fmt.Fprintf(&b, "- flight recorder: [%s](%s)\n", d, d)
		}
		for _, f := range c.Failures {
			fmt.Fprintf(&b, "- **FAIL**: %s\n", f)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// num renders a metric value, or an em dash when it was not measured.
func num(v float64, prec int) string {
	if v == 0 {
		return "—"
	}
	return fmt.Sprintf("%.*f", prec, v)
}
