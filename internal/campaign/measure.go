package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"streammine/internal/metrics"
	"streammine/internal/procharness"
	"streammine/internal/profiler"
	"streammine/internal/recovery"
	"streammine/internal/tracetool"
)

// recoveryBucket is the resolution of the post-injection throughput
// scan: recovery is declared at the first bucket whose sink rate is
// back to at least half the pre-fault rate.
const recoveryBucket = 250 * time.Millisecond

// recoveryMs derives the recovery time from the wall-anchored sink
// timeline: the pre-fault delivery rate R0 is measured over the (up to)
// two seconds before injection, and recovery is the first post-injection
// quarter-second bucket whose rate reaches R0/2, timed from injection to
// that bucket's first delivery. A fault the pipeline rode out without a
// visible dip therefore scores near zero; a fault that stalled delivery
// scores the stall. Returns 0 when the timeline cannot support the
// measurement (no pre-fault events, or no post-fault recovery bucket and
// no deliveries at all).
func recoveryMs(tl []procharness.SinkEvent, injectAt time.Time) float64 {
	if injectAt.IsZero() || len(tl) == 0 {
		return 0
	}
	var first time.Time
	pre := 0
	for _, e := range tl {
		if e.At.After(injectAt) {
			continue
		}
		if first.IsZero() {
			first = e.At
		}
		pre++
	}
	if pre == 0 {
		return 0
	}
	window := injectAt.Sub(first)
	if window > 2*time.Second {
		window = 2 * time.Second
		pre = 0
		for _, e := range tl {
			if !e.At.After(injectAt) && e.At.After(injectAt.Add(-window)) {
				pre++
			}
		}
	}
	if window <= 0 {
		window = recoveryBucket
	}
	r0 := float64(pre) / window.Seconds()
	need := int(0.5 * r0 * recoveryBucket.Seconds())
	if need < 1 {
		need = 1
	}

	// Scan quarter-second buckets after the injection.
	counts := map[int]int{}
	firstIn := map[int]time.Time{}
	maxB := -1
	for _, e := range tl {
		if !e.At.After(injectAt) {
			continue
		}
		b := int(e.At.Sub(injectAt) / recoveryBucket)
		counts[b]++
		if t, ok := firstIn[b]; !ok || e.At.Before(t) {
			firstIn[b] = e.At
		}
		if b > maxB {
			maxB = b
		}
	}
	for b := 0; b <= maxB; b++ {
		if counts[b] >= need {
			return float64(firstIn[b].Sub(injectAt)) / float64(time.Millisecond)
		}
	}
	if maxB >= 0 {
		// Delivery resumed but never reached half rate (e.g. the run
		// drained its tail slowly): time to the last delivery.
		return float64(firstIn[maxB].Sub(injectAt)) / float64(time.Millisecond)
	}
	return 0
}

// latencySplit is the per-phase first-delivery latency profile: each
// externalized lineage's ingress→externalize wall time, bucketed by
// when it externalized relative to the fault window.
type latencySplit struct {
	BeforeP50Ms float64 `json:"p50_before_ms,omitempty"`
	BeforeP99Ms float64 `json:"p99_before_ms,omitempty"`
	DuringP50Ms float64 `json:"p50_during_ms,omitempty"`
	DuringP99Ms float64 `json:"p99_during_ms,omitempty"`
	AfterP50Ms  float64 `json:"p50_after_ms,omitempty"`
	AfterP99Ms  float64 `json:"p99_after_ms,omitempty"`
}

// latencyFromTraces computes the split from a merged trace. Span
// timestamps are wall-clock nanoseconds (the tracer's clock anchor), so
// they compare directly against the harness's injection wall times.
// faultStart/faultEnd bound the "during" bucket; zero faultStart puts
// everything in "before" (baseline cells).
func latencyFromTraces(set *tracetool.Set, faultStart, faultEnd time.Time) latencySplit {
	var before, during, after []float64
	for _, l := range set.Lineages() {
		var ingress, ext int64
		for _, sp := range l.Spans {
			switch sp.Phase {
			case metrics.PhaseIngress:
				if ingress == 0 || sp.TS < ingress {
					ingress = sp.TS
				}
			case metrics.PhaseExternalize:
				if ext == 0 || sp.TS < ext {
					ext = sp.TS
				}
			}
		}
		if ingress == 0 || ext == 0 || ext < ingress {
			continue
		}
		ms := float64(ext-ingress) / float64(time.Millisecond)
		at := time.Unix(0, ext)
		switch {
		case faultStart.IsZero() || at.Before(faultStart):
			before = append(before, ms)
		case at.Before(faultEnd):
			during = append(during, ms)
		default:
			after = append(after, ms)
		}
	}
	return latencySplit{
		BeforeP50Ms: percentile(before, 50), BeforeP99Ms: percentile(before, 99),
		DuringP50Ms: percentile(during, 50), DuringP99Ms: percentile(during, 99),
		AfterP50Ms: percentile(after, 50), AfterP99Ms: percentile(after, 99),
	}
}

// percentile is the nearest-rank percentile of vs (0 when empty).
func percentile(vs []float64, p int) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// completeness counts externalized lineages and how many of them are
// reconstructable end to end (the tracetool criterion the e2e suite
// asserts at 99%).
func completeness(set *tracetool.Set) (externalized, complete int) {
	for _, l := range set.Lineages() {
		if !l.Has(metrics.PhaseExternalize) {
			continue
		}
		externalized++
		if l.Complete() {
			complete++
		}
	}
	return externalized, complete
}

// wastePoller keeps the last speculation-waste rollup scraped from the
// coordinator's /debug/cluster endpoint. The coordinator exits the
// moment a closed-ended run completes, so the poller samples during the
// run and the final pre-exit snapshot is the cell's waste ledger.
type wastePoller struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
	last *profiler.Summary
}

// pollWaste starts sampling /debug/cluster on the given cluster's
// coordinator every 250ms.
func pollWaste(cl *procharness.Cluster) *wastePoller {
	p := &wastePoller{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		var addr string
		for {
			select {
			case <-p.stop:
				return
			case <-time.After(250 * time.Millisecond):
			}
			if addr == "" {
				a, ok := cl.DebugAddr("coordinator")
				if !ok {
					continue
				}
				addr = a
			}
			if sum := scrapeWaste("http://" + addr + "/debug/cluster"); sum != nil {
				p.last = sum
			}
		}
	}()
	return p
}

// Stop halts polling and returns the last waste rollup seen (nil when
// the profiler was off or never reported). Idempotent.
func (p *wastePoller) Stop() *profiler.Summary {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	return p.last
}

// healthWatch polls the coordinator's /debug/health during a cell and
// records detection latencies relative to the fault injection: when the
// victim worker was first flagged as a straggler, and when a
// backpressure root-cause chain (rooted on the victim, when one is
// named) first appeared. It answers the campaign's live-diagnosis
// assertion — the health plane must name the injected victim before the
// fault window closes.
type healthWatch struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu          sync.Mutex
	injectAt    time.Time
	victim      string
	stragglerMs float64
	chainMs     float64
	chain       string
}

// watchHealth starts polling /debug/health every 100ms (the STATUS
// cadence, so the watcher sees every model refresh).
func watchHealth(cl *procharness.Cluster) *healthWatch {
	hw := &healthWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hw.done)
		var addr string
		for {
			select {
			case <-hw.stop:
				return
			case <-time.After(100 * time.Millisecond):
			}
			hw.mu.Lock()
			armed := !hw.injectAt.IsZero()
			hw.mu.Unlock()
			if !armed {
				continue
			}
			if addr == "" {
				a, ok := cl.DebugAddr("coordinator")
				if !ok {
					continue
				}
				addr = a
			}
			v, err := tracetool.FetchHealth(addr)
			if err != nil {
				continue
			}
			now := time.Now()
			hw.mu.Lock()
			since := float64(now.Sub(hw.injectAt)) / float64(time.Millisecond)
			if hw.stragglerMs == 0 {
				for _, s := range v.Stragglers {
					if s.Worker == hw.victim {
						hw.stragglerMs = since
						break
					}
				}
			}
			if hw.chainMs == 0 {
				for _, c := range v.Backpressure {
					if hw.victim != "" && c.RootWorker != hw.victim {
						continue
					}
					hw.chainMs = since
					hw.chain = fmt.Sprintf("%s (root %s on %s): %s",
						strings.Join(c.Path, " ← "), c.Root, c.RootWorker, c.Reason)
					break
				}
			}
			hw.mu.Unlock()
		}
	}()
	return hw
}

// Arm anchors detection latencies to the injection instant and names the
// victim the watcher looks for ("" accepts any root worker).
func (hw *healthWatch) Arm(victim string, at time.Time) {
	hw.mu.Lock()
	hw.victim = victim
	hw.injectAt = at
	hw.mu.Unlock()
}

// Stop halts polling and returns what was detected (zeros when the
// health plane never flagged the victim). Idempotent.
func (hw *healthWatch) Stop() (stragglerMs, chainMs float64, chain string) {
	hw.once.Do(func() { close(hw.stop) })
	<-hw.done
	hw.mu.Lock()
	defer hw.mu.Unlock()
	return hw.stragglerMs, hw.chainMs, hw.chain
}

// recoveryPoller samples the coordinator's /debug/recovery during a
// cell. The coordinator exits at completion, so the last successful
// scrape is the cell's final anatomy report.
type recoveryPoller struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
	last *recovery.Report
}

// pollRecovery starts sampling /debug/recovery on the given cluster's
// coordinator every 250ms.
func pollRecovery(cl *procharness.Cluster) *recoveryPoller {
	p := &recoveryPoller{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		var addr string
		for {
			select {
			case <-p.stop:
				return
			case <-time.After(250 * time.Millisecond):
			}
			if addr == "" {
				a, ok := cl.DebugAddr("coordinator")
				if !ok {
					continue
				}
				addr = a
			}
			if rep := scrapeRecovery("http://" + addr + "/debug/recovery"); rep != nil {
				p.last = rep
			}
		}
	}()
	return p
}

// Stop halts polling and returns the last anatomy report seen (nil when
// no incident was ever reported). Idempotent.
func (p *recoveryPoller) Stop() *recovery.Report {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	return p.last
}

func scrapeRecovery(url string) *recovery.Report {
	resp, err := http.Get(url)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	var rep recovery.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil
	}
	if len(rep.Incidents) == 0 {
		return nil
	}
	return &rep
}

func scrapeWaste(clusterURL string) *profiler.Summary {
	resp, err := http.Get(clusterURL)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	var view struct {
		Waste *profiler.Summary `json:"waste"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil
	}
	return view.Waste
}
