package campaign

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"streammine/internal/procharness"
)

func TestAwaitTriggerWallClock(t *testing.T) {
	started := time.Now()
	if err := awaitTrigger(nil, &Trigger{WallMs: 80}, started, time.Second); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(started); since < 80*time.Millisecond {
		t.Fatalf("fired after %v, want >= 80ms", since)
	}
	// An anchor already in the past fires immediately.
	begin := time.Now()
	if err := awaitTrigger(nil, &Trigger{WallMs: 10}, started.Add(-time.Second), time.Second); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(begin); since > 50*time.Millisecond {
		t.Fatalf("past anchor slept %v", since)
	}
}

func TestAwaitTriggerSinkEvents(t *testing.T) {
	cl := &procharness.Cluster{Sinks: procharness.NewSinks()}
	done := make(chan error, 1)
	go func() { done <- awaitTrigger(cl, &Trigger{SinkEvents: 5}, time.Now(), 2*time.Second) }()
	for i := 0; i < 5; i++ {
		cl.Sinks.Record("w1", fmt.Sprintf("e%d", i))
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("trigger never fired")
	}
	// Too few events: the trigger times out with a descriptive error.
	if err := awaitTrigger(cl, &Trigger{SinkEvents: 50}, time.Now(), 50*time.Millisecond); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestScrapeSeries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "# HELP streammine_events_total events")
		fmt.Fprintln(w, `streammine_events_total{node="a"} 30`)
		fmt.Fprintln(w, `streammine_events_total{node="b"} 12`)
		fmt.Fprintln(w, "streammine_events_total_other 999") // longer name: not ours
		fmt.Fprintln(w, "streammine_uptime_seconds 5")
	}))
	defer srv.Close()
	got, err := scrapeSeries(srv.URL, "streammine_events_total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("sum = %g, want 42", got)
	}
}

func TestInjectionClearIdempotent(t *testing.T) {
	var cleared atomic.Int32
	in := &injection{At: time.Now(), clear: func() error { cleared.Add(1); return nil }}
	if !in.Transient() {
		t.Fatal("transient fault not reported as such")
	}
	for i := 0; i < 3; i++ {
		if err := in.Clear(); err != nil {
			t.Fatal(err)
		}
	}
	if n := cleared.Load(); n != 1 {
		t.Fatalf("clear ran %d times", n)
	}
	var nilIn *injection
	if err := nilIn.Clear(); err != nil || nilIn.Transient() {
		t.Fatal("nil injection must be inert")
	}
}

func TestChaosParamsMerge(t *testing.T) {
	f := FaultSpec{Type: "slow_bridge", Params: map[string]string{"net_delay": "9ms"}}
	got := chaosParams(f, url.Values{"net_delay": {"5ms"}, "net_dial_delay": {"50ms"}})
	if got.Get("net_delay") != "9ms" || got.Get("net_dial_delay") != "50ms" {
		t.Fatalf("merged = %v", got)
	}
	// No overrides: the defaults pass through untouched.
	plain := chaosParams(FaultSpec{Type: "slow_disk"}, url.Values{"disk_delay": {"2ms"}})
	if plain.Get("disk_delay") != "2ms" {
		t.Fatalf("defaults = %v", plain)
	}
}
