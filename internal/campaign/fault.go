package campaign

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"streammine/internal/procharness"
)

// awaitTrigger blocks until the cell's fault trigger fires. started is
// the cluster launch time (the wallMs anchor).
func awaitTrigger(cl *procharness.Cluster, t *Trigger, started time.Time, timeout time.Duration) error {
	switch {
	case t == nil:
		return nil
	case t.SinkEvents > 0:
		return cl.Sinks.WaitDistinct(t.SinkEvents, timeout)
	case t.WallMs > 0:
		at := started.Add(time.Duration(t.WallMs) * time.Millisecond)
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		return nil
	case t.Metric != nil:
		return awaitMetric(cl, t.Metric, timeout)
	}
	return nil
}

// awaitMetric polls every process's /metrics endpoint until the summed
// value of the named series reaches the threshold.
func awaitMetric(cl *procharness.Cluster, m *MetricTrigger, timeout time.Duration) error {
	procs := append(cl.WorkerNames(), "coordinator")
	deadline := time.Now().Add(timeout)
	for {
		var sum float64
		for _, proc := range procs {
			addr, ok := cl.DebugAddr(proc)
			if !ok {
				continue
			}
			v, err := scrapeSeries("http://"+addr+"/metrics", m.Series)
			if err != nil {
				continue // process may be mid-start or already dead
			}
			sum += v
		}
		if sum >= m.Min {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign: metric trigger %s>=%g never fired (last %g)", m.Series, m.Min, sum)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrapeSeries sums all samples of one series in a Prometheus text
// exposition.
func scrapeSeries(metricsURL, series string) (float64, error) {
	resp, err := http.Get(metricsURL)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var sum float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series) {
			continue
		}
		rest := line[len(series):]
		// The name must end here: either a label block or the value.
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			if v, err := strconv.ParseFloat(rest[i+1:], 64); err == nil {
				sum += v
			}
		}
	}
	return sum, sc.Err()
}

// injection is one armed fault: when it fired, who it hit, and how to
// clear it (nil for permanent faults like sigkill).
type injection struct {
	At     time.Time
	Victim string // worker name, "coordinator", or "" for cluster-wide
	clear  func() error
	once   sync.Once
}

// Clear removes a transient fault; a no-op for permanent ones. It is
// idempotent and safe to race between the fault-duration timer and the
// runner's end-of-cell cleanup.
func (in *injection) Clear() error {
	if in == nil || in.clear == nil {
		return nil
	}
	var err error
	in.once.Do(func() { err = in.clear() })
	return err
}

// Transient reports whether the fault has something to clear.
func (in *injection) Transient() bool { return in != nil && in.clear != nil }

// inject arms the cell's fault against the running cluster.
func inject(cl *procharness.Cluster, workload string, f FaultSpec) (*injection, error) {
	switch f.Type {
	case "none":
		return &injection{At: time.Now()}, nil

	case "sigkill":
		victim, err := resolveTarget(cl, workload, f, "sink-host")
		if err != nil {
			return nil, err
		}
		in := &injection{At: time.Now(), Victim: victim}
		if err := cl.KillWorker(victim); err != nil {
			return nil, fmt.Errorf("campaign: sigkill %s: %w", victim, err)
		}
		return in, nil

	case "slow_bridge":
		return armChaos(cl, cl.WorkerNames(), "", chaosParams(f, url.Values{"net_delay": {"5ms"}, "net_dial_delay": {"50ms"}}))

	case "lossy_bridge":
		return armChaos(cl, cl.WorkerNames(), "", chaosParams(f, url.Values{"net_drop_pm": {"100"}}))

	case "slow_disk":
		return armChaos(cl, cl.WorkerNames(), "", chaosParams(f, url.Values{"disk_delay": {"2ms"}}))

	case "straggler":
		victim, err := resolveTarget(cl, workload, f, "other")
		if err != nil {
			return nil, err
		}
		return armChaos(cl, []string{victim}, victim, chaosParams(f, url.Values{"net_delay": {"5ms"}}))

	case "coord_pause":
		if err := cl.SignalCoord(syscall.SIGSTOP); err != nil {
			return nil, fmt.Errorf("campaign: pause coordinator: %w", err)
		}
		return &injection{
			At:     time.Now(),
			Victim: "coordinator",
			clear:  func() error { return cl.SignalCoord(syscall.SIGCONT) },
		}, nil
	}
	return nil, fmt.Errorf("campaign: unknown fault type %q", f.Type)
}

// chaosParams merges a fault's parameter overrides over the type's
// defaults.
func chaosParams(f FaultSpec, defaults url.Values) url.Values {
	if len(f.Params) == 0 {
		return defaults
	}
	out := url.Values{}
	for k, vs := range defaults {
		out[k] = vs
	}
	for k, v := range f.Params {
		out.Set(k, v)
	}
	return out
}

// armChaos posts the fault parameters to each target worker's
// /debug/chaos endpoint and returns an injection whose Clear posts
// off=1 to the same set.
func armChaos(cl *procharness.Cluster, targets []string, victim string, params url.Values) (*injection, error) {
	addrs := make([]string, 0, len(targets))
	for _, w := range targets {
		addr, err := cl.WaitDebugAddr(w, 10*time.Second)
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, addr)
	}
	in := &injection{At: time.Now(), Victim: victim}
	for i, addr := range addrs {
		if err := postChaos(addr, params); err != nil {
			return nil, fmt.Errorf("campaign: arm chaos on %s: %w", targets[i], err)
		}
	}
	in.clear = func() error {
		var firstErr error
		for _, addr := range addrs {
			// A dead process just fails the POST; that is fine — its
			// faults died with it.
			if err := postChaos(addr, url.Values{"off": {"1"}}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return in, nil
}

// postChaos applies params via one process's /debug/chaos endpoint.
func postChaos(debugAddr string, params url.Values) error {
	resp, err := http.Post("http://"+debugAddr+"/debug/chaos?"+params.Encode(), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/chaos: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// resolveTarget picks the victim worker for a targeted fault.
func resolveTarget(cl *procharness.Cluster, workload string, f FaultSpec, def string) (string, error) {
	target := f.Target
	if target == "" {
		target = def
		if def == "sink-host" && IngestWorkload(workload) {
			target = "gateway"
		}
	}
	switch target {
	case "sink-host":
		// The worker externalizing sink output; triggers guarantee sink
		// progress before injection, so a short wait suffices.
		return cl.Sinks.WaitBusiest(1, 10*time.Second)
	case "gateway":
		reg, err := cl.Gateways.Wait(ingestStream, 10*time.Second)
		if err != nil {
			return "", err
		}
		return reg.Worker, nil
	case "other":
		busy, err := cl.Sinks.WaitBusiest(1, 10*time.Second)
		if err != nil {
			return "", err
		}
		for _, w := range cl.WorkerNames() {
			if w != busy {
				return w, nil
			}
		}
		return "", fmt.Errorf("campaign: target \"other\" needs at least two workers")
	default:
		for _, w := range cl.WorkerNames() {
			if w == target {
				return w, nil
			}
		}
		return "", fmt.Errorf("campaign: fault target %q is not a worker in this cluster", target)
	}
}
