package campaign

import (
	"testing"
	"time"

	"streammine/internal/metrics"
	"streammine/internal/procharness"
	"streammine/internal/tracetool"
)

// steadyTimeline builds a sink timeline delivering at `perSec` from
// start, with a silent gap of `stall` starting at injectAt.
func steadyTimeline(start, injectAt time.Time, stall time.Duration, perSec int, total time.Duration) []procharness.SinkEvent {
	gap := time.Second / time.Duration(perSec)
	var tl []procharness.SinkEvent
	for at := start; at.Before(start.Add(total)); at = at.Add(gap) {
		if at.After(injectAt) && at.Before(injectAt.Add(stall)) {
			continue
		}
		tl = append(tl, procharness.SinkEvent{At: at, Worker: "w1", ID: at.String()})
	}
	return tl
}

func TestRecoveryMsMeasuresStall(t *testing.T) {
	start := time.Unix(1000, 0)
	injectAt := start.Add(2 * time.Second)
	tl := steadyTimeline(start, injectAt, 1500*time.Millisecond, 100, 6*time.Second)
	got := recoveryMs(tl, injectAt)
	// Delivery resumes 1.5s after injection; the measurement quantizes to
	// the first qualifying 250ms bucket.
	if got < 1400 || got > 1800 {
		t.Fatalf("recoveryMs = %.0f, want ~1500", got)
	}
}

func TestRecoveryMsNoDip(t *testing.T) {
	start := time.Unix(1000, 0)
	injectAt := start.Add(2 * time.Second)
	tl := steadyTimeline(start, injectAt, 0, 100, 6*time.Second)
	got := recoveryMs(tl, injectAt)
	// The pipeline rode the fault out: recovery is the first bucket.
	if got < 0 || got > 300 {
		t.Fatalf("recoveryMs = %.0f, want near zero", got)
	}
}

func TestRecoveryMsUnmeasurable(t *testing.T) {
	injectAt := time.Unix(1000, 0)
	if got := recoveryMs(nil, injectAt); got != 0 {
		t.Fatalf("empty timeline: %.0f", got)
	}
	// All deliveries after injection: no pre-fault rate to recover to.
	post := steadyTimeline(injectAt.Add(time.Second), injectAt.Add(10*time.Second), 0, 100, time.Second)
	if got := recoveryMs(post, injectAt); got != 0 {
		t.Fatalf("no pre-fault events: %.0f", got)
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vs, 50); p != 5 {
		t.Fatalf("p50 = %g", p)
	}
	if p := percentile(vs, 99); p != 10 {
		t.Fatalf("p99 = %g", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("empty = %g", p)
	}
}

// span builds one lifecycle span at a wall-clock offset from base.
func span(trace, phase string, base time.Time, off time.Duration) metrics.Span {
	return metrics.Span{TS: base.Add(off).UnixNano(), Trace: trace, Phase: phase}
}

func TestLatencyFromTraces(t *testing.T) {
	base := time.Unix(2000, 0)
	faultStart := base.Add(1 * time.Second)
	faultEnd := base.Add(2 * time.Second)
	file := &tracetool.File{Spans: []metrics.Span{
		// Before the fault: 10ms ingress→externalize.
		span("aa", metrics.PhaseIngress, base, 0),
		span("aa", metrics.PhaseCommit, base, 8*time.Millisecond),
		span("aa", metrics.PhaseExternalize, base, 10*time.Millisecond),
		// During: externalized inside the fault window after 500ms.
		span("bb", metrics.PhaseIngress, base, 1100*time.Millisecond),
		span("bb", metrics.PhaseCommit, base, 1590*time.Millisecond),
		span("bb", metrics.PhaseExternalize, base, 1600*time.Millisecond),
		// After: 20ms.
		span("cc", metrics.PhaseIngress, base, 2500*time.Millisecond),
		span("cc", metrics.PhaseCommit, base, 2515*time.Millisecond),
		span("cc", metrics.PhaseExternalize, base, 2520*time.Millisecond),
		// Never externalized: excluded from the latency profile.
		span("dd", metrics.PhaseIngress, base, 100*time.Millisecond),
	}}
	set := tracetool.Merge(file)

	split := latencyFromTraces(set, faultStart, faultEnd)
	if split.BeforeP50Ms != 10 || split.DuringP50Ms != 500 || split.AfterP50Ms != 20 {
		t.Fatalf("split = %+v", split)
	}

	// A baseline (zero fault window) buckets everything as "before".
	flat := latencyFromTraces(set, time.Time{}, time.Time{})
	if flat.DuringP50Ms != 0 || flat.AfterP50Ms != 0 || flat.BeforeP99Ms != 500 {
		t.Fatalf("baseline split = %+v", flat)
	}

	ext, complete := completeness(set)
	if ext != 3 || complete != 3 {
		t.Fatalf("completeness = %d/%d, want 3/3", complete, ext)
	}
}

func TestCompletenessFlagsMissingCommit(t *testing.T) {
	base := time.Unix(2000, 0)
	file := &tracetool.File{Spans: []metrics.Span{
		span("aa", metrics.PhaseIngress, base, 0),
		span("aa", metrics.PhaseExternalize, base, time.Millisecond),
	}}
	ext, complete := completeness(tracetool.Merge(file))
	if ext != 1 || complete != 0 {
		t.Fatalf("completeness = %d/%d, want 0/1", complete, ext)
	}
}
