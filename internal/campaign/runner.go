package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"streammine/internal/flightrec"
	"streammine/internal/ingest"
	"streammine/internal/operator"
	"streammine/internal/procharness"
	"streammine/internal/recovery"
	"streammine/internal/tracetool"
)

const (
	// ingestStream is the gateway-fed source every ingest workload names.
	ingestStream = "src"
	// ingestTenantsJSON declares the single tenant the runner's driver
	// authenticates as.
	ingestTenantsJSON = `[{"name": "t0", "token": "tok-0"}]`
	// ingestBatch is the driver's records-per-Send granularity.
	ingestBatch = 25
)

// Result is one cell's measured outcome. A cell passes when Failures is
// empty; measurements are reported even for failed cells when they were
// obtainable.
type Result struct {
	Cell     string `json:"cell"`
	Workload string `json:"workload"`
	Fault    string `json:"fault"`
	Config   string `json:"config"`
	Baseline bool   `json:"baseline"`
	// Victim is the process a targeted fault hit.
	Victim string `json:"victim,omitempty"`
	// Trigger is the trigger that armed the fault, rendered.
	Trigger string `json:"trigger,omitempty"`
	// Events is the distinct sink outputs externalized.
	Events int `json:"events"`
	// DupPrints counts duplicate sink prints that indicate a suppression
	// leak: any same-process repeat, plus cross-process repeats when no
	// process-killing fault was injected. Must be zero.
	DupPrints int `json:"dup_prints"`
	// ReplayedPrints counts benign cross-incarnation re-prints after a
	// process-kill fault: the reassigned sink partition re-externalizes
	// its post-checkpoint tail on the survivor (at-least-once at the
	// output boundary; the identity set stays exactly-once).
	ReplayedPrints int `json:"replayed_prints,omitempty"`
	// RecoveryMs is the injection→recovered-delivery time (faulted cells).
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
	// RecoveryDetectedMs is the detection-anchored recovery time: from
	// the coordinator declaring the victim dead (instrumented timeline)
	// to the black-box recovered-delivery point. RecoveryMs conflates
	// injection→detection lag with recovery proper; this one doesn't.
	RecoveryDetectedMs float64 `json:"recovery_detected_ms,omitempty"`
	// Per-phase recovery anatomy joined from /debug/recovery (cells
	// whose fault lost a worker): interval-union durations per phase,
	// their sum (for the cross-check against RecoveryMs), the replay
	// throughput, and the phase that dominated the incident.
	DetectMs           float64 `json:"detect_ms,omitempty"`
	DecideMs           float64 `json:"decide_ms,omitempty"`
	RestoreMs          float64 `json:"restore_ms,omitempty"`
	RefillMs           float64 `json:"refill_ms,omitempty"`
	ReplayMs           float64 `json:"replay_ms,omitempty"`
	CatchupMs          float64 `json:"catchup_ms,omitempty"`
	RecoveryPhaseSumMs float64 `json:"recovery_phase_sum_ms,omitempty"`
	ReplayEventsPerSec float64 `json:"replay_events_per_sec,omitempty"`
	RecoveryDominant   string  `json:"recovery_dominant_phase,omitempty"`
	// CompletenessPct is the share of externalized lineages that are
	// reconstructable end to end from the merged traces.
	CompletenessPct float64 `json:"completeness_pct"`
	latencySplit
	// WasteAbortedAttempts / WasteCPUPct are the speculation-waste ledger
	// scraped from the coordinator before it exited.
	WasteAbortedAttempts uint64  `json:"waste_aborted_attempts,omitempty"`
	WasteCPUPct          float64 `json:"waste_cpu_pct,omitempty"`
	// HealthStragglerMs is how long after injection the coordinator's
	// /debug/health first flagged the victim worker as a straggler
	// (straggler cells; 0 = never detected).
	HealthStragglerMs float64 `json:"health_straggler_ms,omitempty"`
	// HealthChainMs is how long after injection /debug/health first
	// reported a backpressure root-cause chain rooted on the victim
	// (0 = never detected).
	HealthChainMs float64 `json:"health_chain_ms,omitempty"`
	// HealthChain is the first diagnosed chain, rendered sink ← … ← root.
	HealthChain string `json:"health_chain,omitempty"`
	// FlightRecDumps lists the flight-recorder snapshots the cell's
	// processes left behind (paths relative to the campaign OutDir),
	// attached for failed cells and process-kill faults so the report can
	// link the evidence.
	FlightRecDumps []string `json:"flightrec_dumps,omitempty"`
	// DurationMs is the cell's wall time, launch to verdict.
	DurationMs float64 `json:"duration_ms"`
	// Failures lists every assertion the cell failed (empty = passed).
	Failures []string `json:"failures,omitempty"`
}

// Passed reports whether every assertion held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// Outcome is a full campaign's results.
type Outcome struct {
	Campaign string    `json:"campaign"`
	Cells    []*Result `json:"cells"`
}

// Passed reports whether every cell passed.
func (o *Outcome) Passed() bool {
	for _, c := range o.Cells {
		if !c.Passed() {
			return false
		}
	}
	return true
}

// Runner executes campaign cells against real clusters.
type Runner struct {
	// Bin is the streammine binary (see procharness.BuildBinary).
	Bin string
	// OutDir receives per-cell artifacts under cells/<name>/ (topology,
	// traces, result.json).
	OutDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run expands the spec and executes every cell in order (baselines first
// per workload × config, so faulted cells always compare against an
// already-measured identity set). Cell failures become per-cell verdicts,
// not errors; Run only errors when it cannot run at all.
func (r *Runner) Run(s *Spec) (*Outcome, error) {
	return r.RunCells(s, s.Expand())
}

// RunCells executes an explicit cell selection (e.g. cmd/campaign's
// -cells filter, which keeps each selected cell's baseline in the list).
func (r *Runner) RunCells(s *Spec, cells []Cell) (*Outcome, error) {
	if r.Bin == "" || r.OutDir == "" {
		return nil, fmt.Errorf("campaign: Runner needs Bin and OutDir")
	}
	out := &Outcome{Campaign: s.Name}
	// baselines maps BaselineKey → the passing baseline's identity set.
	baselines := make(map[string]map[string]bool)
	for i, cell := range cells {
		r.logf("cell %d/%d %s: running", i+1, len(cells), cell.Name())
		res := r.runCell(s, cell, baselines)
		out.Cells = append(out.Cells, res)
		if res.Passed() {
			r.logf("cell %d/%d %s: ok (%d events, recovery %.0fms, completeness %.2f%%)",
				i+1, len(cells), cell.Name(), res.Events, res.RecoveryMs, res.CompletenessPct)
		} else {
			r.logf("cell %d/%d %s: FAILED: %v", i+1, len(cells), cell.Name(), res.Failures)
		}
	}
	return out, nil
}

// BuildBinary compiles the streammine binary into dir for cluster
// launches (the cmd/campaign default when -bin is not given).
func BuildBinary(dir string) (string, error) {
	return procharness.BuildBinary(dir, "streammine/cmd/streammine")
}

// runCell executes one cell end to end: launch, trigger, inject, drain,
// measure, assert.
func (r *Runner) runCell(s *Spec, cell Cell, baselines map[string]map[string]bool) *Result {
	res := &Result{
		Cell:     cell.Name(),
		Workload: cell.Workload,
		Fault:    cell.Fault.Label(),
		Config:   cell.Config.Name,
		Baseline: cell.Baseline(),
	}
	started := time.Now()
	defer func() { res.DurationMs = float64(time.Since(started)) / float64(time.Millisecond) }()
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	cellDir := filepath.Join(r.OutDir, "cells", sanitizeName(cell.Name()))
	// A stale cell dir from a previous campaign holds worker state (WAL,
	// checkpoints, admission logs) the cluster would restore and replay,
	// so every run must start from scratch.
	if err := os.RemoveAll(cellDir); err != nil {
		fail("cell dir: %v", err)
		return res
	}
	traceDir := filepath.Join(cellDir, "trace")
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		fail("cell dir: %v", err)
		return res
	}
	topo, err := Topology(cell.Workload, s, cell.Config)
	if err != nil {
		fail("%v", err)
		return res
	}
	if err := os.WriteFile(filepath.Join(cellDir, "topology.json"), []byte(topo), 0o644); err != nil {
		fail("write topology: %v", err)
		return res
	}

	// Every process flies the crash flight recorder: a SIGKILL'd worker
	// leaves its last seconds of lifecycle/chaos/span records on disk.
	frDir := filepath.Join(cellDir, "flightrec")
	coordArgs := []string{"-debug-addr", "127.0.0.1:0", "-flightrec", "-flightrec-dir", frDir}
	if cell.Config.Batch > 0 {
		coordArgs = append(coordArgs, "-batch", strconv.Itoa(cell.Config.Batch))
		if cell.Config.BatchLinger > 0 {
			coordArgs = append(coordArgs, "-batch-linger", cell.Config.BatchLinger.D().String())
		}
	}
	workerArgs := []string{"-chaos", "-debug-addr", "127.0.0.1:0", "-profile-speculation",
		"-flightrec", "-flightrec-dir", frDir}
	ingestFed := IngestWorkload(cell.Workload)
	if ingestFed {
		tenantsPath := filepath.Join(cellDir, "tenants.json")
		if err := os.WriteFile(tenantsPath, []byte(ingestTenantsJSON), 0o644); err != nil {
			fail("write tenants: %v", err)
			return res
		}
		workerArgs = append(workerArgs, "-ingest-addr", "127.0.0.1:0", "-ingest-tenants", tenantsPath)
	}

	cl, err := procharness.Start(procharness.Options{
		Bin:        r.Bin,
		Topology:   topo,
		Dir:        cellDir,
		Workers:    s.Workers,
		CoordArgs:  coordArgs,
		WorkerArgs: workerArgs,
		TraceDir:   traceDir,
	})
	if err != nil {
		fail("launch: %v", err)
		return res
	}
	defer cl.Close()
	launched := time.Now()

	waste := pollWaste(cl)
	defer waste.Stop()
	healthW := watchHealth(cl)
	defer healthW.Stop()
	recW := pollRecovery(cl)
	defer recW.Stop()

	var driverErr chan error
	if ingestFed {
		driverErr = make(chan error, 1)
		go func() { driverErr <- driveIngest(cl, cell.Workload, s) }()
	}
	expected, exact := ExpectedSinks(cell.Workload, s.Events)

	// Trigger and inject. Precedence: the fault's own trigger, then the
	// campaign default, then auto (a tenth of the expected sink outputs —
	// sink counts, not raw events, so aggregating workloads still fire).
	var in *injection
	defer func() { _ = in.Clear() }()
	if !cell.Baseline() {
		trig := cell.Fault.Trigger
		if trig == nil {
			trig = s.Trigger
		}
		if trig == nil {
			n := expected / 10
			if n < 1 {
				n = 1
			}
			trig = &Trigger{SinkEvents: n}
		}
		res.Trigger = trig.String()
		if err := awaitTrigger(cl, trig, launched, s.Timeout.D()); err != nil {
			fail("trigger: %v", err)
			return res
		}
		in, err = inject(cl, cell.Workload, cell.Fault)
		if err != nil {
			fail("inject: %v", err)
			return res
		}
		res.Victim = in.Victim
		healthW.Arm(in.Victim, in.At)
		if in.Transient() {
			clearAfter := cell.Fault.Duration.D()
			time.AfterFunc(clearAfter, func() { _ = in.Clear() })
		}
	}

	// Completion. Ingest-fed partitions are open-ended (producers may
	// reconnect), so their coordinator never reports done: wait for the
	// driver plus the sink drain instead, settle briefly so a late
	// duplicate print is caught, then tear down. Closed-ended runs end
	// when the coordinator exits zero.
	if ingestFed {
		if err := <-driverErr; err != nil {
			fail("ingest driver: %v", err)
		}
		if err := cl.Sinks.WaitDistinct(expected, 60*time.Second); err != nil {
			fail("drain: %v", err)
		}
		time.Sleep(500 * time.Millisecond)
		cl.Close()
	} else if err := cl.WaitDone(s.Timeout.D()); err != nil {
		fail("run: %v", err)
	}
	_ = in.Clear()

	ids, _ := cl.Sinks.Snapshot()
	res.Events = len(ids)
	sameWorker, crossWorker := cl.Sinks.DupBreakdown()
	if cell.Fault.Type == "sigkill" {
		// A killed sink host's partition re-externalizes its
		// post-checkpoint tail on the survivor: cross-process re-prints
		// are the at-least-once output boundary, not a leak.
		res.DupPrints = sameWorker
		res.ReplayedPrints = crossWorker
	} else {
		res.DupPrints = sameWorker + crossWorker
	}
	if res.DupPrints > 0 {
		fail("%d duplicate sink prints (suppression leaked)", res.DupPrints)
	}
	if cell.Baseline() && exact && len(ids) != expected {
		fail("baseline externalized %d distinct events, want %d", len(ids), expected)
	}

	// Recovery from the wall-anchored sink timeline, then the latency
	// split from merged traces. The fault window for the "during" bucket
	// runs from injection to whichever is later: the declared clear point
	// or the measured recovery.
	var faultStart, faultEnd time.Time
	if in != nil {
		faultStart = in.At
		res.RecoveryMs = recoveryMs(cl.Sinks.Timeline(), in.At)
		faultEnd = in.At.Add(time.Duration(res.RecoveryMs * float64(time.Millisecond)))
		if in.Transient() {
			if clearAt := in.At.Add(cell.Fault.Duration.D()); clearAt.After(faultEnd) {
				faultEnd = clearAt
			}
		}
	}

	paths, _ := filepath.Glob(filepath.Join(traceDir, "*.jsonl"))
	if set, err := tracetool.Load(paths...); err != nil {
		fail("traces: %v", err)
	} else {
		ext, complete := completeness(set)
		if ext > 0 {
			res.CompletenessPct = 100 * float64(complete) / float64(ext)
		}
		if res.CompletenessPct < 99 {
			fail("lineage completeness %.2f%% < 99%%", res.CompletenessPct)
		}
		res.latencySplit = latencyFromTraces(set, faultStart, faultEnd)
	}

	if sum := waste.Stop(); sum != nil {
		res.WasteAbortedAttempts = sum.TotalAborted()
		res.WasteCPUPct = sum.WastePct()
	}

	// Join the black-box recovery clock with the instrumented anatomy
	// timeline from /debug/recovery (present when the fault lost a
	// worker and the coordinator opened an incident).
	if rep := recW.Stop(); rep != nil && in != nil {
		inc := rep.Incidents[len(rep.Incidents)-1]
		res.DetectMs = inc.PhaseMs[recovery.PhaseDetect]
		res.DecideMs = inc.PhaseMs[recovery.PhaseDecide]
		res.RestoreMs = inc.PhaseMs[recovery.PhaseRestore]
		res.RefillMs = inc.PhaseMs[recovery.PhaseRefill]
		res.ReplayMs = inc.PhaseMs[recovery.PhaseReplay]
		res.CatchupMs = inc.PhaseMs[recovery.PhaseCatchup]
		res.ReplayEventsPerSec = inc.ReplayEventsPerSec
		res.RecoveryDominant = inc.DominantPhase
		for _, ms := range inc.PhaseMs {
			res.RecoveryPhaseSumMs += ms
		}
		if res.RecoveryMs > 0 && inc.DetectedNs > 0 {
			// Detection-anchored recovery: black-box recovered-at minus
			// the wall time the coordinator declared the victim dead.
			recoveredAt := in.At.Add(time.Duration(res.RecoveryMs * float64(time.Millisecond)))
			if d := recoveredAt.Sub(time.Unix(0, inc.DetectedNs)); d > 0 {
				res.RecoveryDetectedMs = float64(d) / float64(time.Millisecond)
			}
			if res.RecoveryDetectedMs > 0 && res.RecoveryMs > 2*res.RecoveryDetectedMs {
				r.logf("  warning: %s: recovery_ms %.0f diverges >2x from recovery_detected_ms %.0f — detection lag dominates the black-box clock",
					cell.Name(), res.RecoveryMs, res.RecoveryDetectedMs)
			}
		}
		if res.RecoveryMs > 0 && res.RecoveryPhaseSumMs > 0 {
			// The instrumented phases should account for the black-box
			// dip to within 20%; divergence means a phase is missing
			// instrumentation (warn — CI timing noise must not fail
			// cells, the benchjson -require columns are the hard gate).
			// The clocks are anchored differently — the timeline starts
			// at the victim's last heartbeat and ends at the
			// fold-granular catch-up close, the dip runs injection to
			// sink-rate recovery — so clip the spans to the dip window
			// before comparing: that measures attribution coverage, not
			// anchor skew.
			dipStart := in.At.UnixNano()
			dipEnd := in.At.Add(time.Duration(res.RecoveryMs * float64(time.Millisecond))).UnixNano()
			var clipped float64
			for _, ms := range inc.PhaseMsWithin(dipStart, dipEnd) {
				clipped += ms
			}
			if ratio := clipped / res.RecoveryMs; ratio < 0.8 || ratio > 1.2 {
				r.logf("  warning: %s: instrumented phases cover %.0fms of the %.0fms black-box dip (%.0f%%; raw phase sum %.0fms)",
					cell.Name(), clipped, res.RecoveryMs, 100*ratio, res.RecoveryPhaseSumMs)
			}
		}
		// Persist the anatomy report for `tracetool recovery` and the
		// CI failure-evidence upload.
		if data, err := json.MarshalIndent(rep, "", "  "); err == nil {
			_ = os.WriteFile(filepath.Join(cellDir, "recovery.json"), append(data, '\n'), 0o644)
		}
	}

	// Live-diagnosis assertions: /debug/health must have named the
	// injected victim before the fault window closed.
	res.HealthStragglerMs, res.HealthChainMs, res.HealthChain = healthW.Stop()
	windowMs := float64(cell.Fault.Duration.D()) / float64(time.Millisecond)
	switch cell.Fault.Type {
	case "straggler":
		if res.HealthStragglerMs == 0 {
			fail("health: /debug/health never flagged straggling worker %s", res.Victim)
		} else if windowMs > 0 && res.HealthStragglerMs > windowMs {
			fail("health: straggler %s flagged %.0fms after injection — after the %.0fms fault window closed",
				res.Victim, res.HealthStragglerMs, windowMs)
		}
		if res.HealthChainMs == 0 {
			fail("health: no backpressure root-cause chain rooted on %s", res.Victim)
		}
	case "slow_bridge":
		if res.HealthChainMs == 0 {
			fail("health: no backpressure root-cause chain diagnosed during the slow_bridge window")
		} else if windowMs > 0 && res.HealthChainMs > windowMs {
			fail("health: backpressure chain diagnosed %.0fms after injection — after the %.0fms fault window closed",
				res.HealthChainMs, windowMs)
		}
	}

	// Delivery assertion: a faulted cell must externalize exactly the
	// identity set its fault-free baseline did — nothing acknowledged may
	// be lost, nothing may appear twice (precise recovery, paper §2.2).
	key := cell.BaselineKey()
	if cell.Baseline() {
		if res.Passed() && baselines[key] == nil {
			baselines[key] = ids
		}
	} else if base := baselines[key]; base == nil {
		fail("no passing baseline for %s to compare against", key)
	} else {
		missing, extra := 0, 0
		for id := range base {
			if !ids[id] {
				missing++
			}
		}
		for id := range ids {
			if !base[id] {
				extra++
			}
		}
		if missing > 0 || extra > 0 {
			fail("identity set diverges from baseline: %d missing, %d extra (baseline %d, got %d)",
				missing, extra, len(base), len(ids))
		}
	}

	// Flight-recorder evidence. A process-kill fault must leave the
	// victim's parseable dump on disk (the snapshotter wrote it at most a
	// second before the SIGKILL); failed cells attach every dump so the
	// report links the evidence.
	if cell.Fault.Type == "sigkill" && res.Victim != "" {
		dumpPath := filepath.Join(frDir, res.Victim+".json")
		if d, err := flightrec.ReadDump(dumpPath); err != nil {
			fail("flightrec: victim %s left no parseable dump: %v", res.Victim, err)
		} else if len(d.Entries) == 0 {
			fail("flightrec: victim %s dump holds no records", res.Victim)
		}
	}
	if cell.Fault.Type == "sigkill" || !res.Passed() {
		dumps, _ := filepath.Glob(filepath.Join(frDir, "*.json"))
		for _, d := range dumps {
			if rel, err := filepath.Rel(r.OutDir, d); err == nil {
				res.FlightRecDumps = append(res.FlightRecDumps, rel)
			} else {
				res.FlightRecDumps = append(res.FlightRecDumps, d)
			}
		}
	}

	if data, err := json.MarshalIndent(res, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(cellDir, "result.json"), append(data, '\n'), 0o644)
	}
	return res
}

// driveIngest delivers the cell's journal through whatever gateway
// currently hosts the stream, paced by the workload's load curve. After
// a gateway death it reconnects and resends from the top (the
// at-least-once producer protocol); the rebuilt tenant floors absorb the
// acknowledged prefix as duplicates.
func driveIngest(cl *procharness.Cluster, workload string, s *Spec) error {
	def := workloads[workload]
	journal := make([]ingest.Record, s.Events)
	for j := range journal {
		key := uint64(j)
		journal[j] = ingest.Record{Key: key, Payload: operator.EncodeValue(key)}
	}
	if _, err := cl.Gateways.Wait(ingestStream, 15*time.Second); err != nil {
		return err
	}
	baseGap := time.Duration(float64(ingestBatch) / float64(s.Rate) * float64(time.Second))
	deadline := time.Now().Add(s.Timeout.D())
	for time.Now().Before(deadline) {
		reg, _ := cl.Gateways.Get(ingestStream)
		c := ingest.NewClient(reg.Addr, ingestStream, ingest.ClientOptions{
			Token:      "tok-0",
			Backoff:    10 * time.Millisecond,
			MaxElapsed: 4 * time.Second,
		})
		err := func() error {
			for off := 0; off < len(journal); off += ingestBatch {
				end := off + ingestBatch
				if end > len(journal) {
					end = len(journal)
				}
				if err := c.Send(journal[off:end]); err != nil {
					return err
				}
				gap := baseGap
				if def.curve != nil {
					gap = time.Duration(float64(baseGap) * def.curve(float64(off)/float64(len(journal))))
				}
				time.Sleep(gap)
			}
			return nil
		}()
		c.Close()
		if err == nil {
			return nil
		}
		// Wait for the stream to re-register on a survivor, then resend.
		waitUntil := time.Now().Add(10 * time.Second)
		for time.Now().Before(waitUntil) {
			if cur, _ := cl.Gateways.Get(ingestStream); cur.Gen != reg.Gen {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return fmt.Errorf("campaign: ingest journal not delivered within the cell timeout")
}

// sanitizeName maps a cell name to a filesystem-safe directory name.
func sanitizeName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
