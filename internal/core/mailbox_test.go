package core

import (
	"sync"
	"testing"
)

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 10; i++ {
		m.Push(i)
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := m.Pop()
		if !ok || v.(int) != i {
			t.Fatalf("Pop %d = %v, %v", i, v, ok)
		}
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	m := newMailbox()
	got := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, ok := m.Pop()
		if ok {
			got <- v
		}
	}()
	m.Push("hello")
	wg.Wait()
	if v := <-got; v.(string) != "hello" {
		t.Fatalf("got %v", v)
	}
}

func TestMailboxCloseDrainsThenStops(t *testing.T) {
	m := newMailbox()
	m.Push(1)
	m.Push(2)
	m.Close()
	// Queued items remain poppable after Close.
	if v, ok := m.Pop(); !ok || v.(int) != 1 {
		t.Fatalf("Pop after close = %v, %v", v, ok)
	}
	if v, ok := m.Pop(); !ok || v.(int) != 2 {
		t.Fatalf("Pop after close = %v, %v", v, ok)
	}
	if _, ok := m.Pop(); ok {
		t.Fatal("Pop on closed empty mailbox returned ok")
	}
	// Push after close is a silent no-op.
	m.Push(3)
	if _, ok := m.Pop(); ok {
		t.Fatal("Push after Close enqueued an item")
	}
}

func TestMailboxCloseUnblocksWaiters(t *testing.T) {
	m := newMailbox()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := m.Pop(); ok {
			t.Error("Pop returned ok on close")
		}
	}()
	m.Close()
	<-done
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := newMailbox()
	const producers, per = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Push(i)
			}
		}()
	}
	wg.Wait()
	if m.Len() != producers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), producers*per)
	}
}
