package core

import (
	"sync"
	"testing"

	"streammine/internal/event"
	"streammine/internal/transport"
)

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 10; i++ {
		m.Push(i)
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := m.Pop()
		if !ok || v.(int) != i {
			t.Fatalf("Pop %d = %v, %v", i, v, ok)
		}
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	m := newMailbox()
	got := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, ok := m.Pop()
		if ok {
			got <- v
		}
	}()
	m.Push("hello")
	wg.Wait()
	if v := <-got; v.(string) != "hello" {
		t.Fatalf("got %v", v)
	}
}

func TestMailboxCloseDrainsThenStops(t *testing.T) {
	m := newMailbox()
	m.Push(1)
	m.Push(2)
	m.Close()
	// Queued items remain poppable after Close.
	if v, ok := m.Pop(); !ok || v.(int) != 1 {
		t.Fatalf("Pop after close = %v, %v", v, ok)
	}
	if v, ok := m.Pop(); !ok || v.(int) != 2 {
		t.Fatalf("Pop after close = %v, %v", v, ok)
	}
	if _, ok := m.Pop(); ok {
		t.Fatal("Pop on closed empty mailbox returned ok")
	}
	// Push after close is a silent no-op.
	m.Push(3)
	if _, ok := m.Pop(); ok {
		t.Fatal("Push after Close enqueued an item")
	}
}

func TestMailboxCloseUnblocksWaiters(t *testing.T) {
	m := newMailbox()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := m.Pop(); ok {
			t.Error("Pop returned ok on close")
		}
	}()
	m.Close()
	<-done
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := newMailbox()
	const producers, per = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Push(i)
			}
		}()
	}
	wg.Wait()
	if m.Len() != producers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), producers*per)
	}
}

func dataMsg(seq uint64) transport.Message {
	return transport.Message{Type: transport.MsgEvent, ID: event.ID{Seq: event.Seq(seq)}}
}

// TestMailboxControlLanePriority: control messages overtake queued data, so
// FINALIZE/ACK/REPLAY retain progress while the data lane sits at capacity.
func TestMailboxControlLanePriority(t *testing.T) {
	m := newMailbox()
	m.SetDataCap(4)
	for i := uint64(0); i < 4; i++ {
		m.Push(dataMsg(i))
	}
	if m.DataDepth() != m.DataCap() {
		t.Fatalf("data lane at %d, want full (%d)", m.DataDepth(), m.DataCap())
	}
	m.Push(transport.Message{Type: transport.MsgFinalize})
	m.Push(transport.Message{Type: transport.MsgAck})
	m.Push(cmdReexec{})
	wantCtl := []transport.MsgType{transport.MsgFinalize, transport.MsgAck}
	for _, want := range wantCtl {
		v, ok := m.Pop()
		msg, isMsg := v.(transport.Message)
		if !ok || !isMsg || msg.Type != want {
			t.Fatalf("Pop = %v (ok=%v), want control %v before any data", v, ok, want)
		}
	}
	if v, ok := m.Pop(); !ok {
		t.Fatal("Pop drained early")
	} else if _, isReexec := v.(cmdReexec); !isReexec {
		t.Fatalf("Pop = %v, want cmdReexec before data", v)
	}
	// Only then the data lane, still FIFO within itself.
	for i := uint64(0); i < 4; i++ {
		v, ok := m.Pop()
		msg, isMsg := v.(transport.Message)
		if !ok || !isMsg || msg.ID.Seq != event.Seq(i) {
			t.Fatalf("data Pop %d = %v", i, v)
		}
	}
}

// TestMailboxDataAccounting: the data lane tracks occupancy, high-water
// and overshoot against its configured capacity without ever rejecting —
// the hard bound lives at the upstream credit gates.
func TestMailboxDataAccounting(t *testing.T) {
	m := newMailbox()
	m.SetDataCap(2)
	m.Push(cmdInject{ev: event.Event{}}) // source injections ride the data lane
	for i := uint64(0); i < 3; i++ {
		m.Push(dataMsg(i))
	}
	if d := m.DataDepth(); d != 4 {
		t.Fatalf("DataDepth = %d, want 4", d)
	}
	if h := m.DataHighWater(); h != 4 {
		t.Fatalf("DataHighWater = %d, want 4", h)
	}
	if o := m.Overflows(); o != 2 {
		t.Fatalf("Overflows = %d, want 2 (pushes 3 and 4 beyond cap 2)", o)
	}
	for i := 0; i < 4; i++ {
		if _, ok := m.Pop(); !ok {
			t.Fatalf("Pop %d failed", i)
		}
	}
	if d := m.DataDepth(); d != 0 {
		t.Fatalf("DataDepth after drain = %d", d)
	}
	if h := m.DataHighWater(); h != 4 {
		t.Fatalf("DataHighWater after drain = %d, want sticky 4", h)
	}
	m.Close()
	m.Reopen()
	if h := m.DataHighWater(); h != 0 {
		t.Fatalf("DataHighWater after Reopen = %d, want 0", h)
	}
	if m.DataCap() != 2 {
		t.Fatalf("DataCap lost across Reopen: %d", m.DataCap())
	}
}

// TestMailboxReopenDiscardsBothLanes: recovery reopens the crashed node's
// mailbox in place; everything queued pre-crash is discarded (upstream
// replays the unacknowledged events).
func TestMailboxReopenDiscardsBothLanes(t *testing.T) {
	m := newMailbox()
	m.Push(dataMsg(1))
	m.Push(transport.Message{Type: transport.MsgFinalize})
	m.Close()
	m.Reopen()
	if m.Len() != 0 {
		t.Fatalf("Len after Reopen = %d, want 0", m.Len())
	}
	m.Push(dataMsg(2))
	if v, ok := m.Pop(); !ok || v.(transport.Message).ID.Seq != 2 {
		t.Fatalf("reopened mailbox Pop = %v, %v", v, ok)
	}
}
