package core

import (
	"testing"
	"time"

	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/transport"
)

// bridgedPair wires engine A's passthrough to engine B's classifier via a
// ReliableBridge and returns the handles the tests need.
func bridgedPair(t *testing.T) (engA, engB *Engine, srcA graph.NodeID, clsB graph.NodeID, srv *transport.Server, bridge *ReliableBridge, sink *dedupSink) {
	t.Helper()
	gA := graph.New()
	srcA = gA.AddNode(graph.Node{Name: "src"})
	passA := gA.AddNode(graph.Node{Name: "pass", Op: &operator.Passthrough{}, Speculative: true})
	gA.Connect(srcA, 0, passA, 0)
	poolA := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	t.Cleanup(func() { poolA.Close() })
	var err error
	engA, err = New(gA, Options{Pool: poolA, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(engA.Stop)

	gB := graph.New()
	clsB = gB.AddNode(graph.Node{
		Name:        "cls",
		Op:          &operator.Classifier{Classes: 2},
		Traits:      operator.ClassifierTraits(2),
		Speculative: true,
	})
	poolB := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	t.Cleanup(func() { poolB.Close() })
	engB, err = New(gB, Options{Pool: poolB, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(engB.Stop)
	sink = newDedupSink(t)
	if err := engB.Subscribe(clsB, 0, sink.fn); err != nil {
		t.Fatal(err)
	}

	h, err := engB.BridgeIn(clsB, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err = transport.ListenConn("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	bridge, err = engA.BridgeOutReliable(passA, 0, srv.Addr(), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bridge.Close() })
	return engA, engB, srcA, clsB, srv, bridge, sink
}

// TestReliableBridgeSurvivesLinkFailure kills the TCP listener mid-stream,
// restarts it on the same port, and verifies the bridge reconnects,
// replays the unacknowledged buffer, and every event lands exactly once.
func TestReliableBridgeSurvivesLinkFailure(t *testing.T) {
	engA, engB, srcA, clsB, srv, bridge, sink := bridgedPair(t)
	s, _ := engA.Source(srcA)
	const phase1, phase2 = 20, 20
	for i := 0; i < phase1; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(phase1) {
		t.Fatalf("phase 1 stalled at %d", sink.count())
	}

	// Kill the link: remember the port, close the server, emit into the
	// outage (these sends are dropped but stay buffered at A).
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := phase1; i < phase1+phase2; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Give the bridge a moment to notice the broken pipe.
	deadline := time.Now().Add(10 * time.Second)
	for bridge.Connected() {
		// Sends only fail once the OS reports the closed peer; force
		// traffic through by emitting.
		if _, err := s.Emit(99999, nil); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("bridge never noticed the dead link")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart the listener on the same address.
	h, err := engB.BridgeIn(clsB, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := transport.ListenConn(addr, h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// The supervisor reconnects and replays; all events (including the
	// probe) eventually commit downstream exactly once.
	if !sink.waitCount(phase1 + phase2 + 1) {
		t.Fatalf("after reconnect: %d of %d outputs", sink.count(), phase1+phase2+1)
	}
	if bridge.Reconnects() == 0 {
		t.Fatal("bridge reports no reconnects")
	}
	if err := engA.Err(); err != nil {
		t.Fatal(err)
	}
	if err := engB.Err(); err != nil {
		t.Fatal(err)
	}
	// dedupSink fails the test itself on any content mismatch; duplicates
	// are expected (replay) and must have been byte-identical.
}

// TestReliableBridgeCloseIdempotent covers shutdown.
func TestReliableBridgeCloseIdempotent(t *testing.T) {
	_, _, _, _, _, bridge, _ := bridgedPair(t)
	if !bridge.Connected() {
		t.Fatal("bridge not connected after construction")
	}
	if err := bridge.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bridge.Close(); err != nil {
		t.Fatal(err)
	}
	if bridge.Connected() {
		t.Fatal("closed bridge still connected")
	}
}

// TestReliableBridgeBadAddress fails fast.
func TestReliableBridgeBadAddress(t *testing.T) {
	g := graph.New()
	n := g.AddNode(graph.Node{Name: "n", Op: &operator.Passthrough{}})
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := New(g, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BridgeOutReliable(n, 0, "127.0.0.1:1", time.Millisecond); err == nil {
		t.Fatal("dead address accepted")
	}
	if _, err := eng.BridgeOutReliable(n, 7, "127.0.0.1:1", time.Millisecond); err == nil {
		t.Fatal("bad port accepted")
	}
}
