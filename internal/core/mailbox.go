package core

import (
	"sync"
	"time"

	"streammine/internal/metrics"
	"streammine/internal/transport"
)

// mailbox is a FIFO queue with blocking Pop, split into two lanes:
//
//   - The control lane carries FINALIZE, REVOKE, ACK, REPLAY, re-execution
//     commands and everything else that flows against the data direction.
//     It is always unbounded and popped first, so control traffic retains
//     guaranteed progress no matter how congested the data lane is (the
//     deadlock a naive bounded mailbox would reintroduce — DESIGN §9).
//   - The data lane carries EVENT messages and source injections. It has a
//     configured capacity enforced upstream by credit-based flow control;
//     the lane itself only accounts (depth, high-water mark, overflow
//     count) and never rejects, so the bound is soft at the mailbox and
//     hard at the credit gates. A transient overshoot — e.g. a bridge
//     reconnect resetting its credit window while replayed events are
//     still queued — shows up in the overflow counter instead of wedging
//     the pipeline.
//
// Lane separation means a control message can overtake the data event it
// refers to; the dispatcher's admission path holds early FINALIZE/REVOKE
// stashes to absorb that reordering (see node.pendFin / node.pendRevoke).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ctl    []any
	data   []any
	closed bool

	dataCap   int // 0 = unbounded (no accounting against a bound)
	dataDepth int // queued data EVENTS (batch items weigh their event count)
	dataHigh  int
	overflow  uint64

	// qdelay, when set, observes data-lane queueing delay (push→pop);
	// dataTS mirrors data with per-item push stamps. nil qdelay keeps the
	// unmetered path free of clock reads and slice traffic.
	qdelay *metrics.HDR
	dataTS []int64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// SetDataCap configures the data-lane capacity (0 = unbounded). Set
// before the node starts; it is a reporting bound, not an admission gate.
func (m *mailbox) SetDataCap(c int) {
	m.mu.Lock()
	m.dataCap = c
	m.mu.Unlock()
}

// SetQueueDelay wires the data-lane queueing-delay histogram. Set before
// the node starts (wiring-time only, like SetDataCap).
func (m *mailbox) SetQueueDelay(h *metrics.HDR) {
	m.mu.Lock()
	m.qdelay = h
	m.mu.Unlock()
}

// dataWeight classifies an item onto the data lane and reports how many
// events it carries: input events and source injections weigh 1, batched
// forms weigh their event count. Control items weigh 0.
func dataWeight(item any) int {
	switch v := item.(type) {
	case transport.Message:
		switch v.Type {
		case transport.MsgEvent:
			return 1
		case transport.MsgEventBatch:
			return len(v.Events)
		}
	case cmdInject:
		return 1
	case cmdInjectBatch:
		return len(v.evs)
	}
	return 0
}

// Push enqueues an item on its lane; it never blocks. Pushing to a closed
// mailbox is a silent no-op (shutdown races are benign).
func (m *mailbox) Push(item any) {
	m.mu.Lock()
	if !m.closed {
		if w := dataWeight(item); w > 0 {
			m.data = append(m.data, item)
			m.dataDepth += w
			if m.qdelay != nil {
				m.dataTS = append(m.dataTS, time.Now().UnixNano())
			}
			if m.dataDepth > m.dataHigh {
				m.dataHigh = m.dataDepth
			}
			if m.dataCap > 0 && m.dataDepth > m.dataCap {
				m.overflow++
			}
		} else {
			m.ctl = append(m.ctl, item)
		}
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// Pop dequeues the oldest control item, or the oldest data item when the
// control lane is empty, blocking while both lanes are empty. It returns
// ok=false once the mailbox is closed and drained.
func (m *mailbox) Pop() (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.ctl) == 0 && len(m.data) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.ctl) > 0 {
		item := m.ctl[0]
		m.ctl = m.ctl[1:]
		return item, true
	}
	if len(m.data) > 0 {
		item := m.data[0]
		m.data = m.data[1:]
		m.dataDepth -= dataWeight(item)
		if m.qdelay != nil && len(m.dataTS) > 0 {
			m.qdelay.Observe(time.Now().UnixNano() - m.dataTS[0])
			m.dataTS = m.dataTS[1:]
		}
		return item, true
	}
	return nil, false
}

// Len reports the queued item count across both lanes.
func (m *mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ctl) + len(m.data)
}

// DataDepth reports the data-lane occupancy in events (a queued batch
// counts each event it carries).
func (m *mailbox) DataDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dataDepth
}

// DataCap reports the configured data-lane capacity (0 = unbounded).
func (m *mailbox) DataCap() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dataCap
}

// DataHighWater reports the peak data-lane occupancy since (re)open.
func (m *mailbox) DataHighWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dataHigh
}

// Overflows reports how many pushes exceeded the configured capacity.
func (m *mailbox) Overflows() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overflow
}

// Close wakes all blocked Pops; queued items remain poppable.
func (m *mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Reopen clears a closed mailbox for reuse, discarding anything still
// queued. Node recovery reopens the original mailbox instead of replacing
// it so concurrent senders never observe a torn field write; the events
// dropped here are exactly the unacknowledged ones upstream will replay.
func (m *mailbox) Reopen() {
	m.mu.Lock()
	m.ctl = nil
	m.data = nil
	m.dataTS = nil
	m.dataDepth = 0
	m.dataHigh = 0
	m.closed = false
	m.mu.Unlock()
}
