package core

import "sync"

// mailbox is an unbounded FIFO queue with blocking Pop. Node mailboxes are
// unbounded by design: control messages (FINALIZE, ACK, re-execution
// commands) flow against the data direction, so bounded queues could
// deadlock a cycle of blocked senders. Data-rate backpressure is the
// source's responsibility (all experiment workloads are rate-driven, as in
// the paper).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push enqueues an item; it never blocks. Pushing to a closed mailbox is a
// silent no-op (shutdown races are benign).
func (m *mailbox) Push(item any) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, item)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// Pop dequeues the oldest item, blocking while the mailbox is empty. It
// returns ok=false once the mailbox is closed and drained.
func (m *mailbox) Pop() (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return nil, false
	}
	item := m.items[0]
	m.items = m.items[1:]
	return item, true
}

// Len reports the queued item count.
func (m *mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Close wakes all blocked Pops; queued items remain poppable.
func (m *mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Reopen clears a closed mailbox for reuse, discarding anything still
// queued. Node recovery reopens the original mailbox instead of replacing
// it so concurrent senders never observe a torn field write; the events
// dropped here are exactly the unacknowledged ones upstream will replay.
func (m *mailbox) Reopen() {
	m.mu.Lock()
	m.items = nil
	m.closed = false
	m.mu.Unlock()
}
