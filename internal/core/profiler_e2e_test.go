package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/profiler"
	"streammine/internal/storage"
)

// TestProfilerAttributesConflicts runs the paper's §3.1 classifier at
// maximum contention (one class, many workers) with the speculation-waste
// profiler on and asserts the attribution chain end to end: the ledger's
// abort counts agree exactly with core_aborts_total, the conflict heatmap
// names the contended operator and state bucket ("hot", "classes[0]"),
// and the profiler_* metric series mirror the ledger.
func TestProfilerAttributesConflicts(t *testing.T) {
	reg := metrics.NewRegistry()
	prof := profiler.New(profiler.Config{})

	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	hot := g.AddNode(graph.Node{
		Name:        "hot",
		Op:          &operator.Classifier{Classes: 1, Cost: 200 * time.Microsecond},
		Traits:      operator.ClassifierTraits(1),
		Speculative: true,
		Workers:     8,
		// Batched finalize must not disturb the ledger: per-event abort
		// accounting and conflict witnesses survive group commit, so the
		// exact equalities below hold with batching on.
		Flow: &flow.Limits{BatchSize: 8},
	})
	g.Connect(src, 0, hot, 0)
	eng := newTestEngine(t, g, Options{Seed: 91, Metrics: reg, Profiler: prof})
	s, _ := eng.Source(src)
	const events = 150
	for i := 0; i < events; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	sum := eng.Waste()
	if sum == nil {
		t.Fatal("Waste() = nil with profiler enabled")
	}
	nw := sum.NodeByName("hot")
	if nw == nil {
		t.Fatalf("no ledger for node hot; nodes: %+v", sum.Nodes)
	}
	if nw.AbortedAttempts["conflict"] == 0 {
		t.Skip("no conflicts materialized on this host")
	}

	// The ledger charges at exactly the metric increment sites, so the
	// totals must agree without tolerance. Trace/metric cause
	// "replacement" is ledger cause "replace".
	val := func(name string, labels metrics.Labels) float64 {
		t.Helper()
		v, ok := reg.Value(name, labels)
		if !ok {
			t.Fatalf("metric %s %v not registered", name, labels)
		}
		return v
	}
	for metCause, ledgerCause := range map[string]string{
		"conflict": "conflict", "revoke": "revoke",
		"replacement": "replace", "error": "error",
	} {
		metric := val("core_aborts_total", metrics.Labels{"cause": metCause})
		if got := float64(nw.AbortedAttempts[ledgerCause]); got != metric {
			t.Errorf("ledger aborts[%s] = %v, core_aborts_total{cause=%q} = %v",
				ledgerCause, got, metCause, metric)
		}
	}
	if got := val("profiler_aborted_attempts_total", metrics.Labels{"node": "hot", "cause": "conflict"}); got != float64(nw.AbortedAttempts["conflict"]) {
		t.Errorf("profiler_aborted_attempts_total = %v, ledger = %d", got, nw.AbortedAttempts["conflict"])
	}

	// Wasted CPU must have been charged for the aborted attempts, and the
	// attempt denominator must dominate the waste.
	if nw.WastedCPUNs["conflict"] <= 0 {
		t.Errorf("wasted_cpu_ns[conflict] = %d, want > 0", nw.WastedCPUNs["conflict"])
	}
	if sum.TotalAttemptNs() < sum.TotalWastedNs() {
		t.Errorf("attempt CPU %d < wasted CPU %d", sum.TotalAttemptNs(), sum.TotalWastedNs())
	}

	// Conflict witnesses resolve to the contended operator and state
	// bucket: the single-bucket class counter renders as bare "classes"
	// (multi-class arrays would render "classes[k]").
	if len(sum.Heatmap) == 0 {
		t.Fatal("conflict heatmap is empty under forced contention")
	}
	top := sum.Heatmap[0]
	if top.Node != "hot" {
		t.Errorf("heatmap top entry node = %q, want %q", top.Node, "hot")
	}
	if !strings.HasPrefix(top.State, "classes") {
		t.Errorf("heatmap top entry state = %q, want the classes counter", top.State)
	}
	if nw.Witnesses["write-write"]+nw.Witnesses["validation"]+nw.Witnesses["cascade"] == 0 {
		t.Errorf("no conflict witnesses recorded: %+v", nw.Witnesses)
	}

	// Every profiler_* series registered at runtime must be documented in
	// the docs/OBSERVABILITY.md inventory table.
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read metric inventory doc: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		if !strings.HasPrefix(p.Name, "profiler_") || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("series %s not documented in docs/OBSERVABILITY.md", p.Name)
		}
	}
}

// BenchmarkSpeculationWaste measures the classifier contention sweep with
// the profiler enabled and reports the waste metrics benchjson archives
// (waste-cpu-pct, aborted-attempts/event): one class maximizes conflicts,
// eight classes nearly eliminates them (the Figure 5 parallelism knob).
func BenchmarkSpeculationWaste(b *testing.B) {
	for _, classes := range []int{1, 8} {
		name := "classes=1"
		if classes != 1 {
			name = "classes=8"
		}
		b.Run(name, func(b *testing.B) {
			benchSpeculationWaste(b, classes)
		})
	}
}

func benchSpeculationWaste(b *testing.B, classes int) {
	const events = 100
	prof := profiler.New(profiler.Config{})
	var total uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		hot := g.AddNode(graph.Node{
			Name:        "hot",
			Op:          &operator.Classifier{Classes: classes, Cost: 50 * time.Microsecond},
			Traits:      operator.ClassifierTraits(classes),
			Speculative: true,
			Workers:     8,
		})
		g.Connect(src, 0, hot, 0)
		pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
		eng, err := New(g, Options{Seed: 13, Pool: pool, Profiler: prof})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		s, err := eng.Source(src)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for k := 0; k < events; k++ {
			if _, err := s.Emit(uint64(k), nil); err != nil {
				b.Fatal(err)
			}
		}
		eng.Drain()
		b.StopTimer()
		eng.Stop()
		pool.Close()
		total += events
	}
	sum := prof.Summary()
	b.ReportMetric(sum.WastePct(), "waste-cpu-pct")
	b.ReportMetric(float64(sum.TotalAborted())/float64(total), "aborted-attempts/event")
}
