package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/transport"
)

// buildBatchPipeline builds src -> stage0 -> stage1 with the given flow
// limits on every node and returns the engine, source handle and sink id.
func buildBatchPipeline(t testing.TB, fl *flow.Limits, reg *metrics.Registry) (*Engine, *SourceHandle, *storage.Pool, graph.NodeID) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src", Flow: fl})
	s1 := g.AddNode(graph.Node{
		Name: "stage0", Op: &operator.Classifier{Classes: 4},
		Traits: operator.ClassifierTraits(4), Speculative: true, Flow: fl,
	})
	s2 := g.AddNode(graph.Node{
		Name: "stage1", Op: &operator.Classifier{Classes: 4},
		Traits: operator.ClassifierTraits(4), Speculative: true, Flow: fl,
	})
	g.Connect(src, 0, s1, 0)
	g.Connect(s1, 0, s2, 0)
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	eng, err := New(g, Options{Seed: 7, Pool: pool, Metrics: reg})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return eng, nil, pool, s2
}

// TestBatchMetricInventoryDocumented enforces the batch_* inventory in
// docs/PERFORMANCE.md the same way the profiler inventory is enforced in
// docs/OBSERVABILITY.md: every batch_* series the engine registers must
// appear by name in the handbook's metric table.
func TestBatchMetricInventoryDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "PERFORMANCE.md"))
	if err != nil {
		t.Fatalf("read docs/PERFORMANCE.md: %v", err)
	}
	reg := metrics.NewRegistry()
	_, _, pool, _ := buildBatchPipeline(t, &flow.Limits{BatchSize: 8}, reg)
	defer pool.Close()
	seen := 0
	for _, s := range reg.Snapshot() {
		if !strings.HasPrefix(s.Name, "batch_") {
			continue
		}
		seen++
		if !strings.Contains(string(doc), s.Name) {
			t.Errorf("metric %q is registered but not documented in docs/PERFORMANCE.md", s.Name)
		}
	}
	if seen == 0 {
		t.Fatal("no batch_* series registered; inventory check is vacuous")
	}
}

// TestFinalizeBatchZeroAlloc proves the batched finalize path allocates
// nothing with tracing and profiling off: a FINALIZE_BATCH run reuses the
// node's scratch, flips each task under its own lock, and signals the
// committer without touching the heap. The engine is deliberately never
// started — no background goroutines, so AllocsPerRun sees only this
// path.
func TestFinalizeBatchZeroAlloc(t *testing.T) {
	fl := &flow.Limits{BatchSize: 16}
	eng, _, pool, sink := buildBatchPipeline(t, fl, nil)
	defer pool.Close()
	n := eng.nodes[sink]
	const batch = 16
	finals := make([]transport.FinalizeRef, batch)
	tasks := make([]*task, batch)
	for i := range finals {
		id := event.ID{Source: 1, Seq: event.Seq(i)}
		tk := &task{n: n, ev: event.Event{ID: id, Version: 3, Speculative: true}}
		n.tasks[id] = tk
		tasks[i] = tk
		finals[i] = transport.FinalizeRef{ID: id, Version: 3}
	}
	msg := transport.Message{Type: transport.MsgFinalizeBatch, Finals: finals}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, tk := range tasks {
			tk.evFinal = false
			tk.ev.Speculative = true
		}
		n.handleFinalizeBatch(msg)
	}); allocs != 0 {
		t.Fatalf("batched finalize allocated %.1f per run, want 0", allocs)
	}
}

// TestBatchCommitGrouping drives a batched pipeline open-loop and checks
// that (a) every event still arrives finalized exactly once, and (b) the
// committer actually grouped commits: strictly fewer shared version bumps
// than committed events, visible as batch_commit_groups_total <
// batch_commit_events_total.
func TestBatchCommitGrouping(t *testing.T) {
	const events = 4000
	reg := metrics.NewRegistry()
	fl := &flow.Limits{MailboxCap: 1024, CreditWindow: 256, BatchSize: 8}
	eng, _, pool, sink := buildBatchPipeline(t, fl, reg)
	defer pool.Close()
	var finals atomic.Uint64
	if err := eng.Subscribe(sink, 0, func(ev event.Event, fin bool) {
		if fin {
			finals.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	s, err := eng.Source(0)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, 0, 8)
	for emitted := 0; emitted < events; {
		n := 8
		if left := events - emitted; n > left {
			n = left
		}
		items = items[:0]
		for i := 0; i < n; i++ {
			items = append(items, BatchItem{Key: uint64(emitted + i), Payload: operator.EncodeValue(uint64(emitted + i))})
		}
		if _, err := s.EmitBatch(items); err != nil {
			t.Fatal(err)
		}
		emitted += n
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if got := finals.Load(); got != events {
		t.Fatalf("finalized %d events at the sink, want %d", got, events)
	}
	var groups, grouped uint64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "batch_commit_groups_total":
			groups += uint64(s.Value)
		case "batch_commit_events_total":
			grouped += uint64(s.Value)
		}
	}
	t.Logf("commit groups=%d grouped events=%d (%.2f events/group)",
		groups, grouped, float64(grouped)/float64(groups))
	if groups == 0 || grouped == 0 {
		t.Fatalf("batched committer never ran: groups=%d events=%d", groups, grouped)
	}
	if grouped <= groups {
		t.Errorf("committer never grouped >1 event per version bump: groups=%d events=%d", groups, grouped)
	}
	// Stats must reconcile exactly: grouped commits cover every commit on
	// the two stages (source nodes have no committer work).
	total := eng.TotalStats()
	if grouped != total.Committed {
		t.Errorf("batch_commit_events_total=%d but Committed=%d", grouped, total.Committed)
	}
}
