package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/transport"
)

// sinkCollector gathers subscribed outputs.
type sinkCollector struct {
	mu    sync.Mutex
	spec  []event.Event
	final []event.Event
}

func (s *sinkCollector) fn(ev event.Event, final bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if final {
		s.final = append(s.final, ev)
	} else {
		s.spec = append(s.spec, ev)
	}
}

func (s *sinkCollector) finals() []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]event.Event, len(s.final))
	copy(out, s.final)
	return out
}

func (s *sinkCollector) specs() []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]event.Event, len(s.spec))
	copy(out, s.spec)
	return out
}

// waitFinals polls until the collector has at least n final events.
func (s *sinkCollector) waitFinals(t *testing.T, n int) []event.Event {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f := s.finals(); len(f) >= n {
			return f
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %d final events (have %d)", n, len(s.finals()))
	return nil
}

// newTestEngine builds an engine over an instant in-memory disk.
func newTestEngine(t *testing.T, g *graph.Graph, opts Options) *Engine {
	t.Helper()
	if opts.Pool == nil {
		pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
		t.Cleanup(func() { pool.Close() })
		opts.Pool = pool
	}
	eng, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	return eng
}

func TestPipelineBasic(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	mid := g.AddNode(graph.Node{
		Name: "double",
		Op: &operator.Map{Fn: func(e event.Event) ([]byte, error) {
			return operator.EncodeValue(operator.DecodeValue(e.Payload) * 2), nil
		}},
		Traits:      operator.MapTraits,
		Speculative: true,
	})
	g.Connect(src, 0, mid, 0)
	eng := newTestEngine(t, g, Options{Seed: 1})
	sink := &sinkCollector{}
	if err := eng.Subscribe(mid, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, err := eng.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if _, err := s.Emit(i, operator.EncodeValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	finals := sink.waitFinals(t, 10)
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if len(finals) != 10 {
		t.Fatalf("got %d finals", len(finals))
	}
	seen := map[uint64]bool{}
	for _, ev := range finals {
		v := operator.DecodeValue(ev.Payload)
		if v != ev.Key*2 {
			t.Fatalf("event key %d value %d, want %d", ev.Key, v, ev.Key*2)
		}
		if seen[ev.Key] {
			t.Fatalf("duplicate final for key %d", ev.Key)
		}
		seen[ev.Key] = true
	}
	// A deterministic stateless operator with final inputs and no logged
	// decisions sends outputs final immediately: no speculative sightings.
	if sp := sink.specs(); len(sp) != 0 {
		t.Fatalf("unexpected speculative outputs: %d", len(sp))
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	op := g.AddNode(graph.Node{Name: "op", Op: &operator.Union{}})
	g.Connect(src, 0, op, 0)
	eng := newTestEngine(t, g, Options{})
	if _, err := eng.Source(op); err == nil {
		t.Fatal("Source on an operator node succeeded")
	}
	if _, err := eng.Source(graph.NodeID(99)); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Source(99) = %v", err)
	}
}

// TestSpeculativeOutputsThenFinalize uses a slow disk so that a logging
// operator's outputs observably travel speculative first and finalize
// later — the paper's core mechanism.
func TestSpeculativeOutputsThenFinalize(t *testing.T) {
	pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(20*time.Millisecond, 0)})
	defer pool.Close()
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	lg := g.AddNode(graph.Node{
		Name:        "logger",
		Op:          &operator.Passthrough{LogDecision: true},
		Speculative: true,
	})
	g.Connect(src, 0, lg, 0)
	eng := newTestEngine(t, g, Options{Pool: pool, Seed: 2})
	sink := &sinkCollector{}
	if err := eng.Subscribe(lg, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, err := eng.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Emit(7, operator.EncodeValue(7)); err != nil {
		t.Fatal(err)
	}
	// The speculative copy must arrive well before the 20ms log write.
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.specs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no speculative output")
		}
		time.Sleep(100 * time.Microsecond)
	}
	specLatency := time.Since(start)
	finals := sink.waitFinals(t, 1)
	finalLatency := time.Since(start)
	if specLatency > 15*time.Millisecond {
		t.Fatalf("speculative output took %v, want < log latency", specLatency)
	}
	if finalLatency < 15*time.Millisecond {
		t.Fatalf("finalization took %v, want >= ~20ms log latency", finalLatency)
	}
	if !finals[0].SameContent(sink.specs()[0]) {
		t.Fatal("final content differs from speculative content")
	}
	if eng.Err() != nil {
		t.Fatal(eng.Err())
	}
}

// TestNonSpeculativeHoldsOutputs verifies the baseline: outputs appear only
// after the log write completes, and never speculatively.
func TestNonSpeculativeHoldsOutputs(t *testing.T) {
	pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(15*time.Millisecond, 0)})
	defer pool.Close()
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	lg := g.AddNode(graph.Node{
		Name: "logger",
		Op:   &operator.Passthrough{LogDecision: true},
	})
	g.Connect(src, 0, lg, 0)
	eng := newTestEngine(t, g, Options{Pool: pool, Seed: 3})
	sink := &sinkCollector{}
	if err := eng.Subscribe(lg, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	start := time.Now()
	if _, err := s.Emit(1, nil); err != nil {
		t.Fatal(err)
	}
	finals := sink.waitFinals(t, 1)
	if lat := time.Since(start); lat < 12*time.Millisecond {
		t.Fatalf("baseline output after %v, want >= ~15ms", lat)
	}
	if len(sink.specs()) != 0 {
		t.Fatal("baseline node sent speculative outputs")
	}
	if len(finals) != 1 {
		t.Fatalf("finals = %d", len(finals))
	}
}

// TestSpeculationOverlapsLoggingChain is the paper's headline effect
// (Figure 3): with N logging operators in a chain, the non-speculative
// latency is ≈ N×d while the speculative one stays ≈ d.
func TestSpeculationOverlapsLoggingChain(t *testing.T) {
	const d = 10 * time.Millisecond
	run := func(speculative bool) time.Duration {
		// One pool per operator, as in the paper's per-process setup.
		pools := make(map[graph.NodeID]*storage.Pool)
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		prev := src
		var last graph.NodeID
		for i := 0; i < 3; i++ {
			n := g.AddNode(graph.Node{
				Name:        string(rune('a' + i)),
				Op:          &operator.Passthrough{LogDecision: true},
				Speculative: speculative,
			})
			pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(d, 0)})
			defer pool.Close()
			pools[n] = pool
			g.Connect(prev, 0, n, 0)
			prev, last = n, n
		}
		shared := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
		defer shared.Close()
		eng := newTestEngine(t, g, Options{Pool: shared, NodePools: pools, Seed: 4})
		sink := &sinkCollector{}
		if err := eng.Subscribe(last, 0, sink.fn); err != nil {
			t.Fatal(err)
		}
		s, _ := eng.Source(src)
		start := time.Now()
		if _, err := s.Emit(1, nil); err != nil {
			t.Fatal(err)
		}
		sink.waitFinals(t, 1)
		lat := time.Since(start)
		eng.Drain()
		eng.Stop()
		return lat
	}
	nonSpec := run(false)
	spec := run(true)
	// Expect ≈3d vs ≈d; require a conservative 1.7× separation.
	if spec*17/10 >= nonSpec {
		t.Fatalf("speculation did not overlap logging: spec=%v nonspec=%v", spec, nonSpec)
	}
	if nonSpec < 25*time.Millisecond {
		t.Fatalf("non-speculative chain latency %v implausibly low", nonSpec)
	}
}

// TestStatefulParallelismCorrectness runs a classifier with 4 workers and
// verifies optimistic parallelization does not lose updates.
func TestStatefulParallelismCorrectness(t *testing.T) {
	const classes, events = 8, 400
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	cls := g.AddNode(graph.Node{
		Name:        "classifier",
		Op:          &operator.Classifier{Classes: classes},
		Traits:      operator.ClassifierTraits(classes),
		Speculative: true,
		Workers:     4,
	})
	g.Connect(src, 0, cls, 0)
	eng := newTestEngine(t, g, Options{Seed: 5})
	sink := &sinkCollector{}
	if err := eng.Subscribe(cls, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	for i := 0; i < events; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	finals := sink.waitFinals(t, events)
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// Per class, the set of emitted counts must be exactly 1..N_class.
	perClass := make(map[uint64][]uint64)
	for _, ev := range finals {
		class, count := operator.DecodePair(ev.Payload)
		perClass[class] = append(perClass[class], count)
	}
	total := 0
	for class, counts := range perClass {
		seen := make(map[uint64]bool)
		var max uint64
		for _, c := range counts {
			if seen[c] {
				t.Fatalf("class %d: duplicate count %d (lost update or double count)", class, c)
			}
			seen[c] = true
			if c > max {
				max = c
			}
		}
		if int(max) != len(counts) {
			t.Fatalf("class %d: max count %d but %d events", class, max, len(counts))
		}
		total += len(counts)
	}
	if total != events {
		t.Fatalf("accounted %d events, want %d", total, events)
	}
	st, _ := eng.Stats(cls)
	if st.Committed != events {
		t.Fatalf("committed %d, want %d", st.Committed, events)
	}
}

// TestRollbackReexecution injects a speculative event directly, replaces
// its content, and verifies the consumer's output is re-emitted as a new
// version and finalized with the replacement content (paper §3.1).
func TestRollbackReexecution(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	agg := g.AddNode(graph.Node{
		Name:        "sum",
		Op:          &operator.CountWindowAvg{Window: 1}, // emits each value
		Traits:      operator.CountWindowTraits,
		Speculative: true,
	})
	g.Connect(src, 0, agg, 0)
	eng := newTestEngine(t, g, Options{Seed: 6})
	sink := &sinkCollector{}
	if err := eng.Subscribe(agg, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	n, err := eng.node(agg)
	if err != nil {
		t.Fatal(err)
	}
	id := event.ID{Source: 77, Seq: 1}
	specEv := event.Event{ID: id, Timestamp: 100, Key: 1, Payload: operator.EncodeValue(10), Speculative: true}
	n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Event: specEv, Input: 0})

	// Wait for the speculative output carrying value 10.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sp := sink.specs(); len(sp) > 0 && operator.DecodeValue(sp[len(sp)-1].Payload) == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no speculative output for v0")
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Replace the input with different content (version 1), then finalize.
	repl := event.Event{ID: id, Timestamp: 100, Key: 1, Payload: operator.EncodeValue(42), Speculative: true, Version: 1}
	n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Event: repl, Input: 0})
	for {
		sp := sink.specs()
		if len(sp) >= 2 && operator.DecodeValue(sp[len(sp)-1].Payload) == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no re-emitted output after replacement: %d spec events", len(sink.specs()))
		}
		time.Sleep(200 * time.Microsecond)
	}
	n.mailbox.Push(transport.Message{Type: transport.MsgFinalize, ID: id, Version: 1})

	finals := sink.waitFinals(t, 1)
	if got := operator.DecodeValue(finals[0].Payload); got != 42 {
		t.Fatalf("final value = %d, want 42 (replacement content)", got)
	}
	st, _ := eng.Stats(agg)
	if st.Reexecuted == 0 {
		t.Fatal("no re-execution recorded")
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestReplacementWithSameDrawsIsStable: sticky decisions make a rollback
// re-execution reuse its logged random draw, so an input replacement that
// does not change the draw-dependent part re-emits a changed output whose
// random component is unchanged.
func TestStickyDecisionsAcrossReexecution(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	// Operator output = input value + random draw.
	op := g.AddNode(graph.Node{
		Name:        "addrand",
		Op:          &randAdder{},
		Speculative: true,
	})
	g.Connect(src, 0, op, 0)
	eng := newTestEngine(t, g, Options{Seed: 7})
	sink := &sinkCollector{}
	if err := eng.Subscribe(op, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	n, _ := eng.node(op)
	id := event.ID{Source: 9, Seq: 1}
	n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Input: 0, Event: event.Event{
		ID: id, Timestamp: 1, Key: 1, Payload: operator.EncodeValue(100), Speculative: true,
	}})
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.specs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no output")
		}
		time.Sleep(200 * time.Microsecond)
	}
	out0 := operator.DecodeValue(sink.specs()[0].Payload)
	draw := out0 - 100

	n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Input: 0, Event: event.Event{
		ID: id, Timestamp: 1, Key: 1, Payload: operator.EncodeValue(500), Speculative: true, Version: 1,
	}})
	for {
		sp := sink.specs()
		if len(sp) >= 2 {
			out1 := operator.DecodeValue(sp[len(sp)-1].Payload)
			if out1-500 != draw {
				t.Fatalf("re-execution drew a different random: first %d, second %d", draw, out1-500)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no re-emitted output")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// randAdder emits input value + one logged random draw (bounded).
type randAdder struct {
	operator.NopOperator
}

func (r *randAdder) Process(ctx operator.Context, e event.Event) error {
	d, err := ctx.Random()
	if err != nil {
		return err
	}
	return ctx.Emit(e.Key, operator.EncodeValue(operator.DecodeValue(e.Payload)+d%1000))
}

// TestUnionAggregatePipeline exercises the paper's Fig. 1 core: two
// sources → union → stateful window aggregate, with correct totals.
func TestUnionAggregatePipeline(t *testing.T) {
	g := graph.New()
	p1 := g.AddNode(graph.Node{Name: "p1"})
	p2 := g.AddNode(graph.Node{Name: "p2"})
	union := g.AddNode(graph.Node{Name: "union", Op: &operator.Union{}, Traits: operator.UnionTraits, Speculative: true})
	agg := g.AddNode(graph.Node{
		Name:        "avg",
		Op:          &operator.CountWindowAvg{Window: 10},
		Traits:      operator.CountWindowTraits,
		Speculative: true,
	})
	g.Connect(p1, 0, union, 0)
	g.Connect(p2, 0, union, 1)
	g.Connect(union, 0, agg, 0)
	eng := newTestEngine(t, g, Options{Seed: 8})
	sink := &sinkCollector{}
	if err := eng.Subscribe(agg, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s1, _ := eng.Source(p1)
	s2, _ := eng.Source(p2)
	for i := 0; i < 10; i++ {
		if _, err := s1.Emit(1, operator.EncodeValue(10)); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Emit(2, operator.EncodeValue(30)); err != nil {
			t.Fatal(err)
		}
	}
	finals := sink.waitFinals(t, 2)
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// 20 events in windows of 10: each window averages a mix of 10s and
	// 30s; the total sum across windows must be 2 windows × window avg ×
	// 10 = total sum 400 → avg of averages = 20.
	if len(finals) != 2 {
		t.Fatalf("windows = %d", len(finals))
	}
	sum := operator.DecodeValue(finals[0].Payload) + operator.DecodeValue(finals[1].Payload)
	if sum != 40 {
		t.Fatalf("window averages sum to %d, want 40", sum)
	}
}

// TestAckPruning: after draining, upstream output buffers are empty for
// stateless consumers.
func TestAckPruning(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	f := g.AddNode(graph.Node{Name: "filter", Op: &operator.Filter{}, Speculative: true})
	g.Connect(src, 0, f, 0)
	eng := newTestEngine(t, g, Options{Seed: 9})
	s, _ := eng.Source(src)
	for i := 0; i < 50; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	srcNode, _ := eng.node(src)
	deadline := time.Now().Add(5 * time.Second)
	for {
		srcNode.mu.Lock()
		left := len(srcNode.outBuf)
		srcNode.mu.Unlock()
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source output buffer still holds %d events after drain", left)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointBatchesAcks: a stateful consumer with periodic checkpoints
// releases upstream buffers in batches and records snapshots.
func TestCheckpointBatchesAcks(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	cls := g.AddNode(graph.Node{
		Name:            "classifier",
		Op:              &operator.Classifier{Classes: 4},
		Traits:          operator.ClassifierTraits(4),
		Speculative:     true,
		CheckpointEvery: 10,
	})
	g.Connect(src, 0, cls, 0)
	eng := newTestEngine(t, g, Options{Seed: 10})
	s, _ := eng.Source(src)
	for i := 0; i < 35; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	// 35 commits → 3 checkpoints (at 10, 20, 30); 5 events still unacked.
	store, ok := eng.store.(interface{ Saves(uint32) int })
	if !ok {
		t.Fatal("store lacks Saves")
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.Saves(uint32(cls)) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoints = %d, want 3", store.Saves(uint32(cls)))
		}
		time.Sleep(time.Millisecond)
	}
	srcNode, _ := eng.node(src)
	for {
		srcNode.mu.Lock()
		left := len(srcNode.outBuf)
		srcNode.mu.Unlock()
		if left == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source buffer holds %d, want 5 (only post-checkpoint tail)", left)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOperatorErrorSurfaces: a failing operator is reported by Engine.Err.
func TestOperatorErrorSurfaces(t *testing.T) {
	wantErr := errors.New("kaboom")
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	bad := g.AddNode(graph.Node{
		Name: "bad",
		Op:   &operator.Map{Fn: func(event.Event) ([]byte, error) { return nil, wantErr }},
	})
	g.Connect(src, 0, bad, 0)
	eng := newTestEngine(t, g, Options{Seed: 11})
	s, _ := eng.Source(src)
	if _, err := s.Emit(1, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("operator error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(eng.Err(), wantErr) {
		t.Fatalf("Err = %v, want kaboom", eng.Err())
	}
}

// TestDuplicateFinalEventDropped: re-delivering a committed event does not
// produce duplicate outputs (precise recovery's duplicate suppression).
func TestDuplicateFinalEventDropped(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	f := g.AddNode(graph.Node{Name: "pass", Op: &operator.Passthrough{}, Speculative: true})
	g.Connect(src, 0, f, 0)
	eng := newTestEngine(t, g, Options{Seed: 12})
	sink := &sinkCollector{}
	if err := eng.Subscribe(f, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	ev, err := s.Emit(5, operator.EncodeValue(5))
	if err != nil {
		t.Fatal(err)
	}
	sink.waitFinals(t, 1)
	eng.Drain()
	// Replay the same event straight into the node's mailbox.
	n, _ := eng.node(f)
	n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Event: ev, Input: 0})
	eng.Drain()
	time.Sleep(5 * time.Millisecond)
	if got := len(sink.finals()); got != 1 {
		t.Fatalf("finals after duplicate = %d, want 1", got)
	}
}

// TestStopIdempotent ensures Stop can be called repeatedly.
func TestStopIdempotent(t *testing.T) {
	g := graph.New()
	g.AddNode(graph.Node{Name: "solo"})
	eng := newTestEngine(t, g, Options{})
	eng.Stop()
	eng.Stop()
}
