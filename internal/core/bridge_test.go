package core

import (
	"testing"
	"time"

	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/transport"
)

// TestBridgedEnginesOverTCP runs the pipeline across two engines in the
// same test process connected by real TCP (the paper's multi-process
// deployment): engine A hosts source → logger, engine B hosts classifier
// → sink. Speculative events, FINALIZE messages and upstream ACKs all
// cross the wire.
func TestBridgedEnginesOverTCP(t *testing.T) {
	// --- Engine A: source → logging passthrough (slow disk). ---
	gA := graph.New()
	srcA := gA.AddNode(graph.Node{Name: "src"})
	logA := gA.AddNode(graph.Node{
		Name:        "logger",
		Op:          &operator.Passthrough{LogDecision: true},
		Speculative: true,
	})
	gA.Connect(srcA, 0, logA, 0)
	poolA := storage.NewPool([]storage.Disk{storage.NewSimDisk(5*time.Millisecond, 0)})
	defer poolA.Close()
	engA, err := New(gA, Options{Pool: poolA, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	defer engA.Stop()

	// --- Engine B: classifier → sink. ---
	gB := graph.New()
	clsB := gB.AddNode(graph.Node{
		Name:        "classifier",
		Op:          &operator.Classifier{Classes: 4},
		Traits:      operator.ClassifierTraits(4),
		Speculative: true,
	})
	poolB := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer poolB.Close()
	engB, err := New(gB, Options{Pool: poolB, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.Start(); err != nil {
		t.Fatal(err)
	}
	defer engB.Stop()

	sink := &sinkCollector{}
	if err := engB.Subscribe(clsB, 0, sink.fn); err != nil {
		t.Fatal(err)
	}

	// --- Bridge: B listens, A dials. ---
	h, err := engB.BridgeIn(clsB, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ListenConn("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := engA.BridgeOut(logA, 0, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// --- Drive. ---
	const total = 24
	s, err := engA.Source(srcA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	finals := sink.waitFinals(t, total)
	if len(finals) < total {
		t.Fatalf("finals = %d", len(finals))
	}
	// Classifier semantics must hold end to end across the wire.
	perClass := make(map[uint64]uint64)
	for _, ev := range finals {
		class, count := operator.DecodePair(ev.Payload)
		if count != perClass[class]+1 {
			t.Fatalf("class %d: count %d after %d", class, count, perClass[class])
		}
		perClass[class] = count
	}
	// The logger's outputs were speculative until its 5ms log committed:
	// speculative copies must have crossed the bridge first.
	if len(sink.specs()) == 0 {
		t.Fatal("no speculative events crossed the bridge")
	}
	if err := engA.Err(); err != nil {
		t.Fatal(err)
	}
	if err := engB.Err(); err != nil {
		t.Fatal(err)
	}

	// ACKs must flow back over TCP and prune A's output buffer.
	engB.Drain()
	nodeA, _ := engA.node(logA)
	deadline := time.Now().Add(10 * time.Second)
	for {
		nodeA.mu.Lock()
		left := len(nodeA.outBuf)
		nodeA.mu.Unlock()
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("upstream buffer still holds %d events (ACKs lost on the bridge)", left)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBridgeValidation covers the error paths.
func TestBridgeValidation(t *testing.T) {
	g := graph.New()
	n := g.AddNode(graph.Node{Name: "n", Op: &operator.Passthrough{}})
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	eng, err := New(g, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BridgeOut(n, 5, "127.0.0.1:1"); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, err := eng.BridgeOut(n, 0, "127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if _, err := eng.BridgeIn(n, -1); err == nil {
		t.Fatal("negative input accepted")
	}
	if _, err := eng.BridgeIn(graph.NodeID(9), 0); err == nil {
		t.Fatal("unknown node accepted")
	}
}

// TestBridgeRecoveryReplayOverTCP crashes the downstream engine's node and
// verifies the replay request crosses the bridge and the upstream resends.
func TestBridgeRecoveryReplayOverTCP(t *testing.T) {
	// Engine A: source only (its node buffers outputs for replay).
	gA := graph.New()
	srcA := gA.AddNode(graph.Node{Name: "src"})
	passA := gA.AddNode(graph.Node{Name: "pass", Op: &operator.Passthrough{}, Speculative: true})
	gA.Connect(srcA, 0, passA, 0)
	poolA := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer poolA.Close()
	engA, err := New(gA, Options{Pool: poolA, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	defer engA.Stop()

	// Engine B: stateful classifier with checkpoints.
	gB := graph.New()
	clsB := gB.AddNode(graph.Node{
		Name:            "cls",
		Op:              &operator.Classifier{Classes: 2},
		Traits:          operator.ClassifierTraits(2),
		Speculative:     true,
		CheckpointEvery: 5,
	})
	poolB := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer poolB.Close()
	engB, err := New(gB, Options{Pool: poolB, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.Start(); err != nil {
		t.Fatal(err)
	}
	defer engB.Stop()
	sink := newDedupSink(t)
	if err := engB.Subscribe(clsB, 0, sink.fn); err != nil {
		t.Fatal(err)
	}

	h, err := engB.BridgeIn(clsB, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ListenConn("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := engA.BridgeOut(passA, 0, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const total = 18
	s, _ := engA.Source(srcA)
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), operator.EncodeValue(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatalf("initial run stalled at %d", sink.count())
	}

	if err := engB.Crash(clsB); err != nil {
		t.Fatal(err)
	}
	if err := engB.Recover(clsB); err != nil {
		t.Fatal(err)
	}
	// Note: the bridged upstream binding is re-established by the next
	// message; the recovery replay request itself travels over the old
	// binding, which the crash wiped. Nudge replay manually through the
	// bridge by re-sending from A (covers the paper's "ask upstream").
	nodeA, _ := engA.node(passA)
	nodeA.mailbox.Push(transport.Message{Type: transport.MsgReplay})

	for i := total; i < total+6; i++ {
		if _, err := s.Emit(uint64(i), operator.EncodeValue(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total + 6) {
		t.Fatalf("post-recovery stalled at %d of %d", sink.count(), total+6)
	}
	// Precise recovery across the bridge: dedupSink errors on content
	// mismatches automatically.
	if sink.dups > 0 {
		t.Logf("observed %d byte-identical duplicates (expected; silently dropped)", sink.dups)
	}
}
