package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/transport"
)

// dedupSink collects final outputs by ID, asserting the precise-recovery
// guarantee: every final delivery of an ID carries identical content.
type dedupSink struct {
	t  *testing.T
	mu sync.Mutex

	byID map[event.ID][]byte
	dups int
}

func newDedupSink(t *testing.T) *dedupSink {
	return &dedupSink{t: t, byID: make(map[event.ID][]byte)}
}

func (s *dedupSink) fn(ev event.Event, final bool) {
	if !final {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.byID[ev.ID]; ok {
		s.dups++
		if !bytes.Equal(prev, ev.Payload) {
			s.t.Errorf("PRECISE RECOVERY VIOLATION: id %s finalized with %v then %v", ev.ID, prev, ev.Payload)
		}
		return
	}
	s.byID[ev.ID] = append([]byte(nil), ev.Payload...)
}

func (s *dedupSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

func (s *dedupSink) snapshot() map[event.ID][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[event.ID][]byte, len(s.byID))
	for k, v := range s.byID {
		out[k] = v
	}
	return out
}

func (s *dedupSink) waitCount(n int) bool {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s.count() >= n {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// classifierGraph builds source → stateful classifier → sink.
func classifierGraph(ckptEvery int) (*graph.Graph, graph.NodeID, graph.NodeID) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: 4},
		Traits:          operator.ClassifierTraits(4),
		Speculative:     true,
		CheckpointEvery: ckptEvery,
	})
	g.Connect(src, 0, proc, 0)
	return g, src, proc
}

// TestCrashRecoverPreciseOutputs is the paper's §2.2 recovery scenario:
// the stateful Processor crashes mid-stream, restores its checkpoint,
// replays logged inputs in order, and the outputs observed downstream
// are exactly those of a failure-free run.
func TestCrashRecoverPreciseOutputs(t *testing.T) {
	const total = 60
	g, src, proc := classifierGraph(10)
	eng := newTestEngine(t, g, Options{Seed: 21})
	sink := newDedupSink(t)
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	for i := 0; i < total/2; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Let part of the stream commit (and at least one checkpoint land).
	if !sink.waitCount(total / 4) {
		t.Fatalf("pre-crash progress stalled at %d", sink.count())
	}

	if err := eng.Crash(proc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(proc); err != nil {
		t.Fatal(err)
	}

	for i := total / 2; i < total; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatalf("post-recovery outputs stalled at %d of %d", sink.count(), total)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	// Failure-free semantics: per class, counts form exactly 1..N.
	perClass := make(map[uint64]map[uint64]bool)
	for _, payload := range sink.snapshot() {
		class, count := operator.DecodePair(payload)
		if perClass[class] == nil {
			perClass[class] = make(map[uint64]bool)
		}
		if perClass[class][count] {
			t.Fatalf("class %d: duplicate count %d across recovery", class, count)
		}
		perClass[class][count] = true
	}
	seen := 0
	for class, counts := range perClass {
		for c := uint64(1); c <= uint64(len(counts)); c++ {
			if !counts[c] {
				t.Fatalf("class %d: missing count %d (state lost or double-applied)", class, c)
			}
		}
		seen += len(counts)
	}
	if seen != total {
		t.Fatalf("recovered run produced %d outputs, want %d", seen, total)
	}
}

// TestCrashSourceRejected: sources cannot crash.
func TestCrashSourceRejected(t *testing.T) {
	g, src, _ := classifierGraph(10)
	eng := newTestEngine(t, g, Options{Seed: 22})
	if err := eng.Crash(src); err == nil {
		t.Fatal("crashing a source succeeded")
	}
}

// TestRecoverWithoutCrashRejected: Recover requires a prior Crash.
func TestRecoverWithoutCrashRejected(t *testing.T) {
	g, _, proc := classifierGraph(10)
	eng := newTestEngine(t, g, Options{Seed: 23})
	if err := eng.Recover(proc); err == nil {
		t.Fatal("recover of a running node succeeded")
	}
}

// TestRecoveryReplaysLoggedDecisions: an operator whose output embeds a
// logged random draw reproduces the same draws after a crash, so the
// regenerated outputs are byte-identical (the heart of precise recovery
// for non-deterministic operators).
func TestRecoveryReplaysLoggedDecisions(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	nd := g.AddNode(graph.Node{
		Name: "nd",
		Op:   &randAdder{},
		// Stateful trait so input order and decisions are logged.
		Traits:          operator.Traits{Stateful: true, StateWords: 1},
		Speculative:     true,
		CheckpointEvery: 100, // never reached: full log replay
	})
	g.Connect(src, 0, nd, 0)
	eng := newTestEngine(t, g, Options{Seed: 24})
	sink := newDedupSink(t)
	if err := eng.Subscribe(nd, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	const total = 20
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), operator.EncodeValue(uint64(i*1000))); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatalf("pre-crash outputs stalled at %d", sink.count())
	}
	eng.Drain()
	before := sink.snapshot()

	if err := eng.Crash(nd); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(nd); err != nil {
		t.Fatal(err)
	}
	// All events were committed but never checkpoint-acked, so the source
	// replays all of them; the dedup sink will scream if any regenerated
	// output differs from its pre-crash content.
	eng.Drain()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ndNode, _ := eng.node(nd)
		ndNode.mu.Lock()
		committed := len(ndNode.committed)
		ndNode.mu.Unlock()
		if committed >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery reprocessed only %d of %d", committed, total)
		}
		time.Sleep(time.Millisecond)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	after := sink.snapshot()
	if len(after) != len(before) {
		t.Fatalf("output set changed across recovery: %d vs %d", len(after), len(before))
	}
	for id, payload := range before {
		if !bytes.Equal(after[id], payload) {
			t.Fatalf("output %s changed across recovery", id)
		}
	}
}

// TestReplayRequestResendsUnacked: a downstream replay request makes the
// upstream re-send exactly its unacknowledged buffered outputs.
func TestReplayRequestResendsUnacked(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: 2},
		Traits:          operator.ClassifierTraits(2),
		Speculative:     true,
		CheckpointEvery: 1000, // never: everything stays buffered upstream
	})
	g.Connect(src, 0, proc, 0)
	eng := newTestEngine(t, g, Options{Seed: 25})
	s, _ := eng.Source(src)
	const total = 12
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	srcNode, _ := eng.node(src)
	srcNode.mu.Lock()
	buffered := len(srcNode.outBuf)
	srcNode.mu.Unlock()
	if buffered != total {
		t.Fatalf("source buffer = %d, want %d (no checkpoint → no acks)", buffered, total)
	}
	// Trigger replay and count duplicate admissions at proc (all should be
	// dropped as committed duplicates).
	procNode, _ := eng.node(proc)
	srcNode.mailbox.Push(transport.Message{Type: transport.MsgReplay})
	eng.Drain()
	time.Sleep(5 * time.Millisecond)
	st, _ := eng.Stats(proc)
	if st.Committed != total {
		t.Fatalf("proc committed %d, want %d (duplicates must not re-commit)", st.Committed, total)
	}
	procNode.mu.Lock()
	open := len(procNode.bySeq)
	procNode.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d tasks created from duplicates", open)
	}
}

// TestRecoveryFromCheckpointSkipsAckedEvents: events covered by the last
// checkpoint are not replayed, yet the restored state carries their
// effects forward.
func TestRecoveryFromCheckpointSkipsAckedEvents(t *testing.T) {
	const total = 40
	g, src, proc := classifierGraph(8)
	eng := newTestEngine(t, g, Options{Seed: 26})
	sink := newDedupSink(t)
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatal("initial run stalled")
	}
	eng.Drain()

	// 40 events, checkpoint every 8 → the last checkpoint at 40 acked all.
	// The covering ACK travels source-ward asynchronously after the
	// checkpoint commits, so poll rather than assert once.
	srcNode, _ := eng.node(src)
	bufferedBefore := -1
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		srcNode.mu.Lock()
		bufferedBefore = len(srcNode.outBuf)
		srcNode.mu.Unlock()
		if bufferedBefore == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if bufferedBefore != 0 {
		t.Fatalf("source buffer = %d, want 0 after covering checkpoint", bufferedBefore)
	}

	if err := eng.Crash(proc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(proc); err != nil {
		t.Fatal(err)
	}
	// Nothing needs replaying; state must carry forward: the next events
	// continue the per-class counters.
	for i := total; i < total+8; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total + 8) {
		t.Fatalf("post-recovery outputs stalled at %d", sink.count())
	}
	eng.Drain()
	perClass := make(map[uint64]int)
	maxPerClass := make(map[uint64]uint64)
	for _, payload := range sink.snapshot() {
		class, count := operator.DecodePair(payload)
		perClass[class]++
		if count > maxPerClass[class] {
			maxPerClass[class] = count
		}
	}
	for class, n := range perClass {
		if maxPerClass[class] != uint64(n) {
			t.Fatalf("class %d: max count %d != events %d (checkpointed state lost)",
				class, maxPerClass[class], n)
		}
	}
	if fmt.Sprint(eng.Err()) != "<nil>" {
		t.Fatal(eng.Err())
	}
}
