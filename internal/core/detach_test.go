package core

import (
	"testing"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

func buildDetachPipeline(t *testing.T, srcFlow *flow.Limits) (*Engine, *storage.Pool, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src", Flow: srcFlow})
	stage := g.AddNode(graph.Node{
		Name: "stage", Op: &operator.Classifier{Classes: 4},
		Traits: operator.ClassifierTraits(4), Speculative: true,
	})
	g.Connect(src, 0, stage, 0)
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	eng, err := New(g, Options{Seed: 7, Pool: pool})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return eng, pool, src, stage
}

func TestDetachSourceAdmissionRejectsNonSource(t *testing.T) {
	eng, pool, _, stage := buildDetachPipeline(t, nil)
	defer pool.Close()
	if _, _, err := eng.DetachSourceAdmission(stage); err == nil {
		t.Fatal("detaching admission from an operator node succeeded")
	}
}

func TestDetachSourceAdmissionNoFlowLimits(t *testing.T) {
	eng, pool, src, _ := buildDetachPipeline(t, nil)
	defer pool.Close()
	adm, probe, err := eng.DetachSourceAdmission(src)
	if err != nil {
		t.Fatal(err)
	}
	if adm != nil {
		t.Fatal("source without flow limits returned a non-nil admission controller")
	}
	if probe == nil {
		t.Fatal("pressure probe is nil")
	}
	probe() // must be callable even without flow limits
}

// TestDetachSourceAdmissionBypassesShed is the gateway contract: once the
// controller is detached, the caller owns the admission decision, so
// emissions no longer pass through the node's shed policy and every
// emitted record receives the next contiguous sequence — no sequence
// burn, no surprise ErrShed.
func TestDetachSourceAdmissionBypassesShed(t *testing.T) {
	// An attached controller with this config would shed nearly every
	// record of a burst: 1 token per 1000 seconds, bucket depth 1.
	srcFlow := &flow.Limits{AdmitRate: 0.001, AdmitBurst: 1, Shed: true}
	eng, pool, src, _ := buildDetachPipeline(t, srcFlow)
	defer pool.Close()
	adm, _, err := eng.DetachSourceAdmission(src)
	if err != nil {
		t.Fatal(err)
	}
	if adm == nil {
		t.Fatal("admission controller not returned despite AdmitRate > 0")
	}
	defer adm.Close()
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	h, err := eng.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, 10)
	for i := range items {
		items[i] = BatchItem{Key: uint64(i), Payload: operator.EncodeValue(uint64(i))}
	}
	evs, err := h.EmitBatch(items)
	if err != nil {
		t.Fatalf("post-detach EmitBatch hit admission control: %v", err)
	}
	if len(evs) != len(items) {
		t.Fatalf("emitted %d events, want %d", len(evs), len(items))
	}
	for i, ev := range evs {
		if ev.ID.Seq != event.Seq(i+1) {
			t.Fatalf("event %d has seq %d, want %d (sequence burned?)", i, ev.ID.Seq, i+1)
		}
	}
	// The detached controller still works standalone for its new owner.
	// The first over-burst take is allowed against the full bucket; the
	// second finds it dry and sheds — proving the ten emissions above
	// never touched the bucket.
	if got := adm.AdmitN(5); got != flow.Admitted {
		t.Fatalf("first detached AdmitN = %v, want Admitted (full bucket)", got)
	}
	if got := adm.AdmitN(5); got != flow.Shed {
		t.Fatalf("second detached AdmitN = %v, want Shed", got)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}
