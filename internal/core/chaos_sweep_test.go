package core

import (
	"testing"
	"time"

	"streammine/internal/detrand"
	"streammine/internal/graph"
	"streammine/internal/operator"
)

// TestChaosSeedSweep runs the crash/recover scenario across many seeds;
// the stall diagnostics in the failure path pinpoint which recovery stage
// wedged (these caught the checkpoint-coverage bugs fixed in recovery.go).
func TestChaosSeedSweep(t *testing.T) {
	for round := 0; round < 20; round++ {
		seed := uint64(1000 + round)
		rng := detrand.New(seed)
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		proc := g.AddNode(graph.Node{
			Name:            "proc",
			Op:              &operator.Classifier{Classes: 3},
			Traits:          operator.ClassifierTraits(3),
			Speculative:     true,
			CheckpointEvery: 7,
		})
		g.Connect(src, 0, proc, 0)
		eng := newTestEngine(t, g, Options{Seed: seed})
		sink := newDedupSink(t)
		if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
			t.Fatal(err)
		}
		s, _ := eng.Source(src)
		const totalEvents = 200
		crashAt := map[int]bool{}
		for len(crashAt) < 4 {
			crashAt[20+rng.Intn(totalEvents-40)] = true
		}
		for i := 0; i < totalEvents; i++ {
			if _, err := s.Emit(uint64(rng.Intn(1000)), nil); err != nil {
				t.Fatal(err)
			}
			if crashAt[i] {
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				if err := eng.Crash(proc); err != nil {
					t.Fatal(err)
				}
				if err := eng.Recover(proc); err != nil {
					t.Fatal(err)
				}
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for sink.count() < totalEvents && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if sink.count() < totalEvents {
			n, _ := eng.node(proc)
			n.mu.Lock()
			plan := n.replay
			planInfo := "nil"
			if plan != nil {
				planInfo = ""
				for i := plan.pos; i < len(plan.order) && i < plan.pos+5; i++ {
					planInfo += plan.order[i].String() + " "
				}
				planInfo = "pos=" + fmtInt(plan.pos) + "/" + fmtInt(len(plan.order)) + " head:" + planInfo + " buffered=" + fmtInt(len(plan.buffered)) + " tail=" + fmtInt(len(plan.tail))
			}
			open := len(n.bySeq)
			committed := len(n.committed)
			tasks := len(n.tasks)
			n.mu.Unlock()
			srcN, _ := eng.node(src)
			srcN.mu.Lock()
			buffered := len(srcN.outBuf)
			srcN.mu.Unlock()
			t.Fatalf("seed %d stalled at %d/200: plan=%s open=%d committed=%d tasks=%d mailbox=%d execQ=%d srcBuf=%d",
				seed, sink.count(), planInfo, open, committed, tasks, n.mailbox.Len(), n.execQ.Len(), buffered)
		}
		eng.Stop()
	}
}

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
