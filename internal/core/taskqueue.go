package core

import "sync"

// taskQueue is the per-node executor queue: a blocking min-heap handing
// workers the lowest-sequence task first. Arrival order is not good
// enough — conflict re-executions and speculation-throttle deferrals
// re-enter the queue behind younger tasks, and strict in-order commit
// makes the oldest task exactly the one the node cannot progress without.
// Seq-ordered scheduling guarantees that whenever the commit-head task is
// queued, the next free worker receives it (and its head-bypass admits it
// past a saturated throttle), so parked workers can never starve the
// head. It also happens to be the promptness-optimal policy: executing
// oldest-first minimizes the speculation depth of everything else.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   []*task
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a task; pushing to a closed queue is a silent no-op
// (shutdown races are benign, mirroring mailbox semantics).
func (q *taskQueue) Push(t *task) {
	q.mu.Lock()
	if !q.closed {
		q.heap = append(q.heap, t)
		q.up(len(q.heap) - 1)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// PushAll enqueues a run of tasks under one lock acquisition — the
// batched-admission counterpart of Push.
func (q *taskQueue) PushAll(ts []*task) {
	if len(ts) == 0 {
		return
	}
	q.mu.Lock()
	if !q.closed {
		for _, t := range ts {
			q.heap = append(q.heap, t)
			q.up(len(q.heap) - 1)
		}
		if len(ts) == 1 {
			q.cond.Signal()
		} else {
			q.cond.Broadcast()
		}
	}
	q.mu.Unlock()
}

// Pop blocks for the lowest-sequence queued task. It returns ok=false
// once the queue is closed and drained.
func (q *taskQueue) Pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	t := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	q.down(0)
	return t, true
}

// Len reports the number of queued tasks.
func (q *taskQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// Close wakes all blocked Pops; queued tasks remain poppable.
func (q *taskQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Reopen clears a closed queue for reuse. Crash recovery discards the
// queue wholesale: every queued task belonged to the dead incarnation.
func (q *taskQueue) Reopen() {
	q.mu.Lock()
	q.heap = nil
	q.closed = false
	q.mu.Unlock()
}

func (q *taskQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if q.heap[p].seq <= q.heap[i].seq {
			return
		}
		q.heap[p], q.heap[i] = q.heap[i], q.heap[p]
		i = p
	}
}

func (q *taskQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.heap[l].seq < q.heap[min].seq {
			min = l
		}
		if r < n && q.heap[r].seq < q.heap[min].seq {
			min = r
		}
		if min == i {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
