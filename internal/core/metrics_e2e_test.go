package core

import (
	"bytes"
	"testing"
	"time"

	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
)

// TestMetricsEndToEndChaos runs a crash/recover workload with the full
// observability stack on and asserts the counters tell the true story:
// conflicts and revocations surface as nonzero abort counters, recovery
// surfaces as replay counters, the finality invariant holds
// (core_final_violations_total stays 0), and the tracer emits parseable
// spans covering the whole event lifecycle.
func TestMetricsEndToEndChaos(t *testing.T) {
	const totalEvents = 300
	reg := metrics.NewRegistry()
	var traceBuf bytes.Buffer
	tracer := metrics.NewTracer(&traceBuf)

	// A maximally contended stateful classifier: 4 workers all updating a
	// single class counter, each execution costing real time, so
	// overlapping transactions (and with them conflict aborts) are
	// certain; the two crashes exercise the replay counters.
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: 1, Cost: 100 * time.Microsecond},
		Traits:          operator.ClassifierTraits(1),
		Speculative:     true,
		Workers:         4,
		CheckpointEvery: 11,
	})
	g.Connect(src, 0, proc, 0)
	// StrictFinality closes the fine-grained finality hole (DESIGN.md
	// §6.1) that this level of contention reliably hits; with it on,
	// core_final_violations_total must stay exactly 0.
	eng := newTestEngine(t, g, Options{Seed: 7, StrictFinality: true, Metrics: reg, Tracer: tracer})
	sink := newDedupSink(t)
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)

	for i := 0; i < totalEvents; i++ {
		if _, err := s.Emit(uint64(i%8), nil); err != nil {
			t.Fatal(err)
		}
		if i == 100 || i == 200 {
			time.Sleep(2 * time.Millisecond)
			if err := eng.Crash(proc); err != nil {
				t.Fatal(err)
			}
			if err := eng.Recover(proc); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sink.waitCount(totalEvents) {
		t.Fatalf("stalled at %d of %d outputs", sink.count(), totalEvents)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	val := func(name string, labels metrics.Labels) float64 {
		t.Helper()
		v, ok := reg.Value(name, labels)
		if !ok {
			t.Fatalf("metric %s %v not registered", name, labels)
		}
		return v
	}

	var aborts float64
	for _, cause := range []string{"conflict", "revoke", "replacement", "error"} {
		aborts += val("core_aborts_total", metrics.Labels{"cause": cause})
	}
	if aborts == 0 {
		t.Error("core_aborts_total = 0 across all causes; want > 0 under contention + crashes")
	}
	if v := val("core_replay_requests_total", nil); v == 0 {
		t.Error("core_replay_requests_total = 0; want > 0 after two recoveries")
	}
	if v := val("core_replayed_events_total", nil); v == 0 {
		t.Error("core_replayed_events_total = 0; want > 0 after two recoveries")
	}
	if v := val("core_final_violations_total", nil); v != 0 {
		t.Errorf("core_final_violations_total = %v; the finality invariant must hold", v)
	}
	if v := val("core_commits_total", nil); v < totalEvents {
		t.Errorf("core_commits_total = %v; want >= %d", v, totalEvents)
	}
	if v := val("wal_appends_total", nil); v == 0 {
		t.Error("wal_appends_total = 0; the stateful node must log decisions")
	}
	// Value() reports a histogram's observation count.
	if v := val("core_finalize_latency", nil); v == 0 {
		t.Error("core_finalize_latency recorded no observations")
	}
	if v := val("wal_append_latency", nil); v == 0 {
		t.Error("wal_append_latency recorded no observations")
	}

	// The tracer must round-trip, and the spans must cover the lifecycle:
	// admission, execution, commit, and the aborts counted above.
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := metrics.ReadSpans(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	phases := make(map[string]int)
	for _, sp := range spans {
		phases[sp.Phase]++
	}
	for _, want := range []string{metrics.PhaseIngress, metrics.PhaseExec, metrics.PhaseCommit, metrics.PhaseAbort} {
		if phases[want] == 0 {
			t.Errorf("no %q spans in trace (got %v)", want, phases)
		}
	}
	// The file holds Count() spans plus the clock header record.
	if uint64(len(spans)) != tracer.Count()+1 {
		t.Errorf("parsed %d spans, tracer counted %d (+1 header)", len(spans), tracer.Count())
	}
	if phases[metrics.PhaseClock] != 1 {
		t.Errorf("trace has %d clock headers, want 1", phases[metrics.PhaseClock])
	}
	// Every event-lifecycle span must carry its lineage trace id.
	for _, sp := range spans {
		if sp.Phase == metrics.PhaseIngress && sp.Trace == "" {
			t.Fatalf("ingress span without trace id: %+v", sp)
		}
	}
}
