package core

import (
	"testing"
	"time"

	"streammine/internal/detrand"
	"streammine/internal/graph"
	"streammine/internal/operator"
)

// TestChaosRepeatedCrashes hammers the recovery path: a stateful
// classifier is crashed and recovered several times at random points in
// the stream while events keep flowing. The precise-recovery invariants
// must hold at the end of every round:
//
//   - every event's output appears exactly once per distinct content
//     (duplicates byte-identical),
//   - per class, the counter sequence is exactly 1..N (no lost or
//     double-applied state transitions).
func TestChaosRepeatedCrashes(t *testing.T) {
	const (
		totalEvents = 200
		crashes     = 4
		classes     = 3
	)
	rng := detrand.New(20260704)

	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: classes},
		Traits:          operator.ClassifierTraits(classes),
		Speculative:     true,
		CheckpointEvery: 7,
	})
	g.Connect(src, 0, proc, 0)
	eng := newTestEngine(t, g, Options{Seed: 99})
	sink := newDedupSink(t) // fails the test on content mismatches
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)

	// Pick random crash points across the stream.
	crashAt := make(map[int]bool, crashes)
	for len(crashAt) < crashes {
		crashAt[20+rng.Intn(totalEvents-40)] = true
	}

	for i := 0; i < totalEvents; i++ {
		if _, err := s.Emit(uint64(rng.Intn(1000)), nil); err != nil {
			t.Fatal(err)
		}
		if crashAt[i] {
			// Let some progress land, then pull the plug.
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			if err := eng.Crash(proc); err != nil {
				t.Fatal(err)
			}
			if err := eng.Recover(proc); err != nil {
				t.Fatal(err)
			}
		}
	}

	if !sink.waitCount(totalEvents) {
		t.Fatalf("stalled at %d of %d outputs after %d crashes", sink.count(), totalEvents, crashes)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	// Invariant: per class, counts form exactly 1..N.
	perClass := make(map[uint64]map[uint64]bool)
	for _, payload := range sink.snapshot() {
		class, count := operator.DecodePair(payload)
		if perClass[class] == nil {
			perClass[class] = make(map[uint64]bool)
		}
		if perClass[class][count] {
			t.Fatalf("class %d: count %d appeared twice (state double-applied)", class, count)
		}
		perClass[class][count] = true
	}
	seen := 0
	for class, counts := range perClass {
		for c := uint64(1); c <= uint64(len(counts)); c++ {
			if !counts[c] {
				t.Fatalf("class %d: count %d missing (state lost across a crash)", class, c)
			}
		}
		seen += len(counts)
	}
	if seen != totalEvents {
		t.Fatalf("outputs = %d, want %d", seen, totalEvents)
	}
	t.Logf("chaos: %d events, %d crashes, %d byte-identical duplicates dropped",
		totalEvents, crashes, sink.dups)
}

// TestChaosCrashDuringBacklog crashes while a large unprocessed backlog
// sits in the node's (volatile) mailbox: every backlogged event must be
// replayed from the upstream buffer and processed exactly once.
func TestChaosCrashDuringBacklog(t *testing.T) {
	const totalEvents = 150
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "slow",
		Op:              &operator.Classifier{Classes: 2, Cost: 500 * time.Microsecond},
		Traits:          operator.ClassifierTraits(2),
		Speculative:     true,
		CheckpointEvery: 10,
	})
	g.Connect(src, 0, proc, 0)
	eng := newTestEngine(t, g, Options{Seed: 123})
	sink := newDedupSink(t)
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	// Blast all events; the slow operator builds a backlog.
	for i := 0; i < totalEvents; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // some processed, many backlogged
	if err := eng.Crash(proc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(proc); err != nil {
		t.Fatal(err)
	}
	if !sink.waitCount(totalEvents) {
		t.Fatalf("stalled at %d of %d", sink.count(), totalEvents)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}
