package core

import (
	"testing"
	"time"
)

// TestRetryBackoffJitterBounds draws many first delays and checks every
// one lands in the documented jitter window [d/2, d].
func TestRetryBackoffJitterBounds(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		b := backoff{base: 100 * time.Millisecond, max: 2 * time.Second}
		d := b.next()
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("first delay %v outside [50ms, 100ms]", d)
		}
	}
}

// TestRetryBackoffDoubling verifies the schedule underneath the jitter:
// each attempt doubles the window until the cap, where it stays.
func TestRetryBackoffDoubling(t *testing.T) {
	b := backoff{base: 100 * time.Millisecond, max: 2 * time.Second}
	wants := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second, // stays capped
		2 * time.Second,
	}
	for i, want := range wants {
		d := b.next()
		if d < want/2 || d > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, want/2, want)
		}
	}
}

// TestRetryBackoffReset returns the schedule to the base window after a
// successful reconnect.
func TestRetryBackoffReset(t *testing.T) {
	b := backoff{base: 100 * time.Millisecond, max: 2 * time.Second}
	for i := 0; i < 10; i++ {
		b.next()
	}
	b.reset()
	d := b.next()
	if d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("post-reset delay %v outside base window [50ms, 100ms]", d)
	}
}

// TestRetryBackoffDefaults covers the guard rails: a zero-value backoff
// falls back to a 100 ms base, and a max below base is raised to base.
func TestRetryBackoffDefaults(t *testing.T) {
	var b backoff
	d := b.next()
	if d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("zero-value delay %v outside [50ms, 100ms]", d)
	}
	b = backoff{base: time.Second, max: time.Millisecond}
	d = b.next()
	if d < 500*time.Millisecond || d > time.Second {
		t.Fatalf("max<base delay %v outside [500ms, 1s]", d)
	}
}
