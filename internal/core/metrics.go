package core

import (
	"streammine/internal/metrics"
	"streammine/internal/profiler"
	"streammine/internal/stm"
	"streammine/internal/wal"
)

// engineMetrics holds the instrumentation handles the engine's hot paths
// update directly. The struct is resolved once at Engine construction
// (when Options.Metrics is set); a nil *engineMetrics disables all of it
// behind a single pointer check, so the uninstrumented hot path pays
// nothing.
//
// Counters that already exist as per-node atomics (dispatched, executed,
// committed, STM stats, ...) are NOT duplicated here: they are exported
// as func-backed series read at scrape time (see registerEngineMetrics),
// which keeps the hot path byte-identical to the unmetered build.
type engineMetrics struct {
	// aborts by cause (core_aborts_total{cause=...}).
	abortsConflict *metrics.Counter // STM validation / conflict kill
	abortsRevoke   *metrics.Counter // upstream revoked the input event
	abortsReplace  *metrics.Counter // input replaced with different content
	abortsError    *metrics.Counter // operator or logging error

	// cascadeAborts counts aborts that propagated: the cancelled or
	// rolled-back task had already sent outputs downstream, so its
	// revocations extend the cascade by another hop.
	cascadeAborts *metrics.Counter
	// revokes counts output records revoked downstream.
	revokes *metrics.Counter

	// replays counts REPLAY requests served from the output buffer;
	// replayed counts the buffered events re-sent for them.
	replays  *metrics.Counter
	replayed *metrics.Counter

	// finalizeLat observes admission→commit per event: the time an input
	// stays speculative before its effects are final (per-hop commit
	// delay).
	finalizeLat *metrics.HDR
	// specWindow observes first-speculative-send→finalize per output
	// record: how long downstream consumers worked on data that could
	// still have been revoked.
	specWindow *metrics.HDR
	// mailboxWait observes data-lane queueing delay (push→pop) per node
	// mailbox.
	mailboxWait *metrics.HDR
	// specDepth samples the number of open tainted (speculative) tasks
	// at each speculative send — the paper's speculation depth.
	specDepth *metrics.HDR
	// cascadeSize samples the number of live downstream outputs revoked
	// per aborted task (revoke-cascade fan-out).
	cascadeSize *metrics.HDR
	// abortSpecDepth samples the speculation depth at each aborted
	// attempt; registered only when the waste profiler is on (nil
	// otherwise).
	abortSpecDepth *metrics.HDR

	// Hot-path batching accounting (flow Limits.BatchSize; see
	// docs/PERFORMANCE.md). batchCommitGroups counts committer turns that
	// group-committed a ready run; batchCommitEvents counts the events in
	// those runs; batchOccupancy observes the run length per group (how
	// full batches actually get). batchSourceBatches/batchSourceEvents
	// account EmitBatch injections.
	batchCommitGroups  *metrics.Counter
	batchCommitEvents  *metrics.Counter
	batchOccupancy     *metrics.HDR
	batchSourceBatches *metrics.Counter
	batchSourceEvents  *metrics.Counter

	// walLog is shared by every node's decision log.
	walLog *wal.LogMetrics
}

// registerEngineMetrics creates the engine's metric series on reg and
// returns the hot-path handles. Func-backed series capture e and read
// the live counters at scrape time; re-registering (a second engine in
// the same process, e.g. consecutive experiment runs) rebinds them to
// the newest engine while plain counters keep accumulating.
func registerEngineMetrics(e *Engine, reg *metrics.Registry) *engineMetrics {
	const abortsHelp = "Task aborts by cause (conflict, revoke, replacement, error)."
	m := &engineMetrics{
		abortsConflict: reg.CounterWith("core_aborts_total", abortsHelp, metrics.Labels{"cause": "conflict"}),
		abortsRevoke:   reg.CounterWith("core_aborts_total", abortsHelp, metrics.Labels{"cause": "revoke"}),
		abortsReplace:  reg.CounterWith("core_aborts_total", abortsHelp, metrics.Labels{"cause": "replacement"}),
		abortsError:    reg.CounterWith("core_aborts_total", abortsHelp, metrics.Labels{"cause": "error"}),
		cascadeAborts: reg.Counter("core_cascade_aborts_total",
			"Aborts whose task had live downstream outputs (the rollback cascade grew by one hop)."),
		revokes: reg.Counter("core_revokes_total",
			"Output records revoked downstream (rollback cascades and vanished outputs)."),
		replays: reg.Counter("core_replay_requests_total",
			"REPLAY requests served from output buffers (recovery)."),
		replayed: reg.Counter("core_replayed_events_total",
			"Buffered output events re-sent for replay requests."),
		finalizeLat: reg.HDR("core_finalize_latency",
			"Per-event latency from admission at a node to its commit (per-hop commit delay)."),
		specWindow: reg.HDR("core_spec_window",
			"Per-output latency from first speculative send to its FINALIZE."),
		mailboxWait: reg.HDR("core_mailbox_wait",
			"Data-lane mailbox queueing delay from push to pop."),
		specDepth: reg.HDRCounts("core_spec_depth",
			"Open speculative tasks observed at each speculative send (speculation depth)."),
		cascadeSize: reg.HDRCounts("core_revoke_cascade_size",
			"Live downstream outputs revoked per aborted task (cascade fan-out)."),
		batchCommitGroups: reg.Counter("batch_commit_groups_total",
			"Committer turns that group-committed a run of ready tasks (one version-clock bump each)."),
		batchCommitEvents: reg.Counter("batch_commit_events_total",
			"Events committed inside batched commit groups."),
		batchOccupancy: reg.HDRCounts("batch_occupancy",
			"Events per committed batch group (how full batches actually get)."),
		batchSourceBatches: reg.Counter("batch_source_batches_total",
			"EmitBatch injections (one mailbox push and one downstream frame each)."),
		batchSourceEvents: reg.Counter("batch_source_events_total",
			"Source events published through batched injections."),
		walLog: &wal.LogMetrics{
			AppendLatency: reg.HDR("wal_append_latency",
				"Decision-log batch latency from submission to stable notification."),
			Appends: reg.Counter("wal_appends_total", "Decision-log batches submitted."),
			Records: reg.Counter("wal_records_total", "Decision records submitted."),
			Errors:  reg.Counter("wal_append_errors_total", "Decision-log batches that failed to become stable."),
		},
	}

	stat := func(f func(NodeStats) uint64) func() uint64 {
		return func() uint64 { return f(e.TotalStats()) }
	}
	reg.CounterFunc("core_events_dispatched_total",
		"Input events admitted by dispatchers.", nil,
		stat(func(s NodeStats) uint64 { return s.Dispatched }))
	reg.CounterFunc("core_executions_total",
		"Task executions completed (first runs and re-executions).", nil,
		stat(func(s NodeStats) uint64 { return s.Executed }))
	reg.CounterFunc("core_commits_total",
		"Tasks committed in arrival order.", nil,
		stat(func(s NodeStats) uint64 { return s.Committed }))
	reg.CounterFunc("core_reexecutions_total",
		"Task re-executions after rollback or conflict.", nil,
		stat(func(s NodeStats) uint64 { return s.Reexecuted }))
	const outputsHelp = "Outputs first sent downstream, by speculation state."
	reg.CounterFunc("core_outputs_total", outputsHelp,
		metrics.Labels{"kind": "speculative"},
		stat(func(s NodeStats) uint64 { return s.SpecSent }))
	reg.CounterFunc("core_outputs_total", outputsHelp,
		metrics.Labels{"kind": "final"},
		stat(func(s NodeStats) uint64 { return s.FinalSent }))
	reg.CounterFunc("core_final_violations_total",
		"Replacements of already-final outputs (DESIGN.md §9.1 hole; must stay 0).", nil,
		stat(func(s NodeStats) uint64 { return s.FinalViolations }))

	// STM counters, summed across node memories. A crashed node's memory
	// is rebuilt from scratch, so these can step backwards across a
	// recovery — acceptable for debugging counters, documented in
	// docs/OBSERVABILITY.md.
	stmStat := func(f func(n *node) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, n := range e.nodes {
				total += f(n)
			}
			return total
		}
	}
	reg.CounterFunc("stm_commits_total",
		"Transactions committed by the STM.", nil,
		stmStat(func(n *node) uint64 { return n.memStats().Commits }))
	reg.CounterFunc("stm_validation_failures_total",
		"Read-set validations that failed (conflicts observed).", nil,
		stmStat(func(n *node) uint64 { return n.memStats().Conflicts }))
	reg.CounterFunc("stm_retries_total",
		"Transactions aborted and handed back for another attempt.", nil,
		stmStat(func(n *node) uint64 { return n.memStats().Aborts }))
	reg.CounterFunc("stm_kills_total",
		"Transactions killed by cascading aborts of their dependencies.", nil,
		stmStat(func(n *node) uint64 { return n.memStats().Kills }))

	// Instantaneous engine state.
	reg.GaugeFunc("core_open_tasks",
		"Tasks admitted but not yet committed or cancelled.", nil,
		func() float64 {
			total := 0
			for _, n := range e.nodes {
				total += n.openCount()
			}
			return float64(total)
		})
	reg.GaugeFunc("core_output_buffer_events",
		"Output events retained for replay, awaiting downstream ACKs.", nil,
		func() float64 {
			total := 0
			for _, n := range e.nodes {
				total += n.outBufLen()
			}
			return float64(total)
		})
	reg.GaugeFunc("core_open_tainted",
		"Open tasks whose outputs are currently speculative.", nil,
		func() float64 {
			var total int64
			for _, n := range e.nodes {
				total += n.openTainted.Load()
			}
			return float64(total)
		})
	reg.GaugeFunc("wal_stable_lag",
		"Decision records appended but not yet stable, summed over node logs.", nil,
		func() float64 {
			var total uint64
			for _, n := range e.nodes {
				total += n.log.UnstableLag()
			}
			return float64(total)
		})

	// Flow control (internal/flow): per-node queue pressure, credit state,
	// speculation throttling and source admission. Registered per node so
	// congestion localizes to an operator; all read existing accounting at
	// scrape time.
	for _, n := range e.nodes {
		n := n
		labels := metrics.Labels{"node": n.spec.Name}
		reg.GaugeFunc("flow_data_depth",
			"Data-lane mailbox occupancy.", labels,
			func() float64 { return float64(n.mailbox.DataDepth()) })
		reg.GaugeFunc("flow_data_high_water",
			"Peak data-lane occupancy since start or recovery.", labels,
			func() float64 { return float64(n.mailbox.DataHighWater()) })
		reg.GaugeFunc("flow_credit_queued",
			"Output events parked behind exhausted credit gates.", labels,
			func() float64 { return float64(n.creditQueued()) })
		reg.GaugeFunc("flow_credits_outstanding",
			"Credits held out by this node's inbound edges (events in flight).", labels,
			func() float64 {
				total := 0
				for _, g := range n.inGates {
					total += g.Outstanding()
				}
				return float64(total)
			})
		reg.GaugeFunc("flow_throttle_open",
			"Open speculative tasks holding throttle slots.", labels,
			func() float64 { open, _, _ := n.throttle.Snapshot(); return float64(open) })
		reg.GaugeFunc("flow_throttle_cap",
			"Current adaptive cap on open speculative tasks.", labels,
			func() float64 { _, cap, _ := n.throttle.Snapshot(); return float64(cap) })
		reg.CounterFunc("flow_throttled_total",
			"Executions that had to wait for a speculation slot.", labels,
			func() uint64 { _, _, th := n.throttle.Snapshot(); return th })
		reg.CounterFunc("flow_overflow_total",
			"Data-lane pushes beyond the configured capacity (soft-bound overshoots).", labels,
			func() uint64 { return n.mailbox.Overflows() })
		reg.CounterFunc("flow_admitted_total",
			"Source events admitted by the token bucket.", labels,
			func() uint64 { return n.admission.Load().Admitted() })
		reg.CounterFunc("flow_shed_total",
			"Source events dropped by the shed policy before admission.", labels,
			func() uint64 { return n.admission.Load().Shedded() })
	}
	return m
}

// registerProfilerMetrics exports the speculation-waste ledgers as
// func-backed series read at scrape time (recording stays allocation-free)
// and registers the abort-depth histogram. Called only when both
// Options.Metrics and Options.Profiler are set; the ledger itself runs
// without a registry too (cluster partition engines profile unmetered, and
// their summaries surface via STATUS heartbeats instead).
func registerProfilerMetrics(e *Engine, reg *metrics.Registry) {
	e.met.abortSpecDepth = reg.HDRCounts("profiler_abort_spec_depth",
		"Open speculative tasks observed at each aborted attempt.")
	causes := []profiler.Cause{
		profiler.CauseConflict, profiler.CauseRevoke,
		profiler.CauseReplace, profiler.CauseError,
	}
	kinds := []stm.ConflictKind{
		stm.ConflictWriteWrite, stm.ConflictValidation, stm.ConflictCascade,
	}
	for _, n := range e.nodes {
		np := n.prof
		labels := metrics.Labels{"node": n.spec.Name}
		for _, c := range causes {
			c := c
			cl := metrics.Labels{"node": n.spec.Name, "cause": c.String()}
			reg.CounterFunc("profiler_aborted_attempts_total",
				"Aborted execution attempts, by operator and abort cause.", cl,
				func() uint64 { return np.AbortedAttempts(c) })
			reg.CounterFunc("profiler_wasted_cpu_ns_total",
				"CPU nanoseconds burned in attempts that later aborted.", cl,
				func() uint64 { return uint64(np.WastedNs(c)) })
		}
		for _, k := range kinds {
			k := k
			reg.CounterFunc("profiler_conflict_witnesses_total",
				"STM conflict witnesses recorded, by operator and conflict kind.",
				metrics.Labels{"node": n.spec.Name, "kind": k.String()},
				func() uint64 { return np.Witnesses(k) })
		}
		reg.CounterFunc("profiler_attempt_cpu_ns_total",
			"CPU nanoseconds across all execution attempts (waste denominator).",
			labels, func() uint64 { return uint64(np.AttemptNs()) })
		reg.CounterFunc("profiler_reexecutions_total",
			"Re-executions dispatched after aborts.", labels,
			func() uint64 { return np.Reexecs() })
		reg.CounterFunc("profiler_revoked_outputs_total",
			"Outputs revoked downstream because their task aborted.", labels,
			func() uint64 { return np.RevokedOutputCount() })
	}
}

// memStats reads the node's STM counters under the node lock (the
// memory object is swapped during crash recovery).
func (n *node) memStats() stm.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.Stats()
}

// outBufLen reports the number of retained output records.
func (n *node) outBufLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.outBuf)
}
