package core

import (
	"math/rand"
	"time"
)

// backoff produces jittered exponential retry delays: each failed attempt
// doubles the delay from base up to max, and the returned value is drawn
// uniformly from [d/2, d) so a fleet of reconnecting bridges does not
// hammer a recovering peer in lockstep. Not safe for concurrent use; each
// retry loop owns one.
type backoff struct {
	base, max time.Duration
	attempt   int
}

// next returns the delay to wait before the upcoming attempt.
func (b *backoff) next() time.Duration {
	base, max := b.base, b.max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	d := base << uint(b.attempt)
	if d <= 0 || d > max { // <= 0 catches shift overflow
		d = max
	} else {
		b.attempt++
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// reset returns the schedule to the base delay after a success.
func (b *backoff) reset() { b.attempt = 0 }
