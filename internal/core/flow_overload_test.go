package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// overloadChain builds the overload topology: src → scale → classify →
// offset, a 3-op chain whose middle stage is stateful, speculative and
// deliberately slow, so a full-speed burst from the source overruns the
// chain's sustained capacity many times over. fl (shared by the three op
// nodes) configures flow control; nil runs the chain unbounded. workers
// sets the classify stage's parallelism: 1 makes the chain's outputs
// byte-deterministic across runs (concurrent workers race for per-class
// counter values).
func overloadChain(fl *flow.Limits, workers int) (*graph.Graph, graph.NodeID, graph.NodeID) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	scale := g.AddNode(graph.Node{
		Name: "scale",
		Op: &operator.Map{Fn: func(e event.Event) ([]byte, error) {
			return operator.EncodeValue(operator.DecodeValue(e.Payload) * 2), nil
		}},
		Traits:      operator.MapTraits,
		Speculative: true,
		Flow:        fl,
	})
	classify := g.AddNode(graph.Node{
		Name:            "classify",
		Op:              &operator.Classifier{Classes: 4, Cost: 20 * time.Microsecond},
		Traits:          operator.ClassifierTraits(4),
		Speculative:     true,
		CheckpointEvery: 32,
		Workers:         workers,
		Flow:            fl,
	})
	offset := g.AddNode(graph.Node{
		Name: "offset",
		Op: &operator.Map{Fn: func(e event.Event) ([]byte, error) {
			return e.Payload, nil
		}},
		Traits:      operator.MapTraits,
		Speculative: true,
		Flow:        fl,
	})
	g.Connect(src, 0, scale, 0)
	g.Connect(scale, 0, classify, 0)
	g.Connect(classify, 0, offset, 0)
	return g, src, offset
}

// runOverload bursts total events through the chain at full speed (far
// beyond the classify stage's sustained rate) and returns the finalized
// sink outputs plus the end-of-run pressure snapshot.
func runOverload(t *testing.T, fl *flow.Limits, total, workers int, opts Options) (map[event.ID][]byte, []NodePressure) {
	t.Helper()
	g, src, sinkID := overloadChain(fl, workers)
	eng := newTestEngine(t, g, opts)
	sink := newDedupSink(t)
	if err := eng.Subscribe(sinkID, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, err := eng.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), operator.EncodeValue(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatalf("overloaded chain stalled at %d of %d finals", sink.count(), total)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return sink.snapshot(), eng.Pressure()
}

// TestFlowOverloadBoundedOccupancy is the ISSUE's overload regression: a
// burst far above sustained capacity must (a) complete — FINALIZE/ACK keep
// making progress with the data lanes saturated, (b) never push any data
// lane past its configured capacity, and (c) externalize exactly the same
// outputs as the unthrottled run, since shedding is disabled.
func TestFlowOverloadBoundedOccupancy(t *testing.T) {
	const total = 400
	fl := &flow.Limits{MailboxCap: 8, MaxOpenSpec: 2}

	baseline, _ := runOverload(t, nil, total, 1, Options{Seed: 31})
	bounded, pressure := runOverload(t, fl, total, 1, Options{Seed: 31})

	if len(bounded) != len(baseline) {
		t.Fatalf("flow-controlled run externalized %d outputs, baseline %d", len(bounded), len(baseline))
	}
	for id, payload := range baseline {
		got, ok := bounded[id]
		if !ok {
			t.Fatalf("output %s missing from flow-controlled run", id)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("output %s differs between runs: %v vs %v", id, got, payload)
		}
	}

	capped := 0
	for _, p := range pressure {
		if p.DataCap == 0 {
			continue // source: no flow config
		}
		capped++
		if p.DataCap != fl.MailboxCap {
			t.Errorf("%s: DataCap = %d, want %d", p.Node, p.DataCap, fl.MailboxCap)
		}
		if p.DataHighWater > p.DataCap {
			t.Errorf("%s: peak data-lane occupancy %d exceeded capacity %d", p.Node, p.DataHighWater, p.DataCap)
		}
		if p.Overflows != 0 {
			t.Errorf("%s: %d pushes overran the capacity", p.Node, p.Overflows)
		}
		if p.CreditsOutstanding > fl.MailboxCap {
			t.Errorf("%s: %d credits outstanding, window %d", p.Node, p.CreditsOutstanding, fl.MailboxCap)
		}
	}
	if capped != 3 {
		t.Fatalf("%d nodes report a data capacity, want 3", capped)
	}
}

// TestFlowOverloadThrottleEngages: the 4-worker classify stage under a
// cap of 2 open speculative tasks must actually park workers — the
// throttled counter proves the overload test exercises contention rather
// than an idle pipeline. A delayed disk keeps commits (which need stable
// WAL records) lagging execution, so open tasks pile against the cap.
func TestFlowOverloadThrottleEngages(t *testing.T) {
	const total = 200
	fl := &flow.Limits{MailboxCap: 8, MaxOpenSpec: 2}
	pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(time.Millisecond, 0)})
	defer pool.Close()
	_, pressure := runOverload(t, fl, total, 4, Options{Seed: 34, Pool: pool})
	var classify *NodePressure
	for i := range pressure {
		if pressure[i].Node == "classify" {
			classify = &pressure[i]
		}
	}
	if classify == nil {
		t.Fatal("classify missing from pressure snapshot")
	}
	if classify.ThrottleCap < 1 || classify.ThrottleCap > fl.MaxOpenSpec {
		t.Fatalf("throttle cap %d outside [1,%d]", classify.ThrottleCap, fl.MaxOpenSpec)
	}
	if classify.Throttled == 0 {
		t.Fatal("throttle never parked a worker: overload not exercised")
	}
	if classify.ThrottleOpen != 0 {
		t.Fatalf("%d speculation slots still held after drain", classify.ThrottleOpen)
	}
}

// TestFlowCrashRecoverPreciseOutputs reruns the §2.2 crash/recovery
// scenario with every flow mechanism enabled on the stateful stage.
// Recovery must re-grant the credits that died with the node (and clear
// the speculation slots of its open tasks) or the replay wedges and the
// post-crash half of the stream never commits.
func TestFlowCrashRecoverPreciseOutputs(t *testing.T) {
	const total = 60
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: 4},
		Traits:          operator.ClassifierTraits(4),
		Speculative:     true,
		CheckpointEvery: 10,
		Workers:         2,
		Flow:            &flow.Limits{MailboxCap: 4, MaxOpenSpec: 2},
	})
	g.Connect(src, 0, proc, 0)
	eng := newTestEngine(t, g, Options{Seed: 32})
	sink := newDedupSink(t)
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	for i := 0; i < total/2; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total / 4) {
		t.Fatalf("pre-crash progress stalled at %d", sink.count())
	}

	if err := eng.Crash(proc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(proc); err != nil {
		t.Fatal(err)
	}

	for i := total / 2; i < total; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatalf("post-recovery outputs stalled at %d of %d (credits not re-granted?)", sink.count(), total)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	// Failure-free semantics: per class, counts form exactly 1..N.
	perClass := make(map[uint64]map[uint64]bool)
	for _, payload := range sink.snapshot() {
		class, count := operator.DecodePair(payload)
		if perClass[class] == nil {
			perClass[class] = make(map[uint64]bool)
		}
		if perClass[class][count] {
			t.Fatalf("class %d: duplicate count %d across recovery", class, count)
		}
		perClass[class][count] = true
	}
	seen := 0
	for class, counts := range perClass {
		for c := uint64(1); c <= uint64(len(counts)); c++ {
			if !counts[c] {
				t.Fatalf("class %d: missing count %d (state lost or double-applied)", class, c)
			}
		}
		seen += len(counts)
	}
	if seen != total {
		t.Fatalf("recovered run produced %d outputs, want %d", seen, total)
	}

	// The data lane must have stayed within bounds across crash + replay.
	for _, p := range eng.Pressure() {
		if p.Node == "proc" && p.DataHighWater > p.DataCap {
			t.Fatalf("proc: post-recovery peak occupancy %d exceeded capacity %d", p.DataHighWater, p.DataCap)
		}
	}
}

// TestFlowSourceAdmissionShed: a source over its admission rate with
// shedding on drops the surplus before it is ever logged. Every admitted
// event still commits, counters reconcile, and Emit surfaces ErrShed so
// publishers can distinguish drops from failures.
func TestFlowSourceAdmissionShed(t *testing.T) {
	const total = 50
	g := graph.New()
	src := g.AddNode(graph.Node{
		Name: "src",
		Flow: &flow.Limits{AdmitRate: 50, AdmitBurst: 5, Shed: true},
	})
	mid := g.AddNode(graph.Node{
		Name: "echo",
		Op: &operator.Map{Fn: func(e event.Event) ([]byte, error) {
			return e.Payload, nil
		}},
		Traits:      operator.MapTraits,
		Speculative: true,
	})
	g.Connect(src, 0, mid, 0)
	eng := newTestEngine(t, g, Options{Seed: 33})
	sink := newDedupSink(t)
	if err := eng.Subscribe(mid, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	shed := 0
	for i := 0; i < total; i++ {
		_, err := s.Emit(uint64(i), operator.EncodeValue(uint64(i)))
		switch {
		case errors.Is(err, ErrShed):
			shed++
		case err != nil:
			t.Fatal(err)
		}
	}
	if shed == 0 {
		t.Fatalf("burst of %d at 50 ev/s (burst 5) shed nothing", total)
	}
	admitted := total - shed
	if !sink.waitCount(admitted) {
		t.Fatalf("finals stalled at %d of %d admitted", sink.count(), admitted)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != admitted {
		t.Fatalf("sink saw %d finals, want exactly the %d admitted", got, admitted)
	}
	for _, p := range eng.Pressure() {
		if p.Node != "src" {
			continue
		}
		if p.Shed != uint64(shed) || p.Admitted != uint64(admitted) {
			t.Fatalf("pressure admitted=%d shed=%d, want %d/%d", p.Admitted, p.Shed, admitted, shed)
		}
	}
}
