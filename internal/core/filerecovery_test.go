package core

import (
	"path/filepath"
	"testing"

	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/wal"
)

// TestRecoveryFromSegmentedFiles runs the crash/recovery protocol with the
// decision log on real segmented files: the replay plan is rebuilt by
// scanning the segments from disk, not from any in-memory mirror —
// end-to-end durability of the recovery path.
func TestRecoveryFromSegmentedFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	store, err := wal.OpenSegmentStore(dir, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewPool([]storage.Disk{store})
	t.Cleanup(func() { pool.Close() })

	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	proc := g.AddNode(graph.Node{
		Name:            "proc",
		Op:              &operator.Classifier{Classes: 3},
		Traits:          operator.ClassifierTraits(3),
		Speculative:     true,
		CheckpointEvery: 10,
	})
	g.Connect(src, 0, proc, 0)

	eng, err := New(g, Options{
		Pool:       pool,
		Seed:       55,
		LogScanner: store.Scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)

	sink := newDedupSink(t)
	if err := eng.Subscribe(proc, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	const total = 50
	for i := 0; i < total/2; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total / 4) {
		t.Fatal("pre-crash progress stalled")
	}
	if err := eng.Crash(proc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(proc); err != nil {
		t.Fatal(err)
	}
	for i := total / 2; i < total; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.waitCount(total) {
		t.Fatalf("post-recovery stalled at %d of %d", sink.count(), total)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	// The on-disk log must hold input records plus checkpoint marks.
	recs, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	inputs, marks := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case wal.KindInput:
			inputs++
		case wal.KindCheckpointMark:
			marks++
		}
	}
	if inputs < total {
		t.Fatalf("on-disk input records = %d, want >= %d", inputs, total)
	}
	if marks == 0 {
		t.Fatal("no checkpoint marks on disk")
	}

	// Per-class counts 1..N: state carried precisely across the crash.
	perClass := make(map[uint64]map[uint64]bool)
	for _, payload := range sink.snapshot() {
		class, count := operator.DecodePair(payload)
		if perClass[class] == nil {
			perClass[class] = make(map[uint64]bool)
		}
		perClass[class][count] = true
	}
	for class, counts := range perClass {
		for c := uint64(1); c <= uint64(len(counts)); c++ {
			if !counts[c] {
				t.Fatalf("class %d missing count %d", class, c)
			}
		}
	}
}
