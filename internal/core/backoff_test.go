package core

import (
	"testing"
	"time"

	"streammine/internal/graph"
	"streammine/internal/operator"
)

// TestConflictBackoffReducesWastedWork runs a maximally contended workload
// (one state field, many workers) with and without the §4 promptness
// knob. The knob trades promptness for parsimony: with backoff, the
// *rate* of wasted speculative executions (aborts per second) must drop —
// total aborts can stay similar because retries still collide, but they
// stop burning resources in a tight loop.
func TestConflictBackoffReducesWastedWork(t *testing.T) {
	run := func(backoff time.Duration) (NodeStats, time.Duration) {
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		proc := g.AddNode(graph.Node{
			Name:        "hot",
			Op:          &operator.Classifier{Classes: 1, Cost: 300 * time.Microsecond},
			Traits:      operator.ClassifierTraits(1),
			Speculative: true,
			Workers:     8,
		})
		g.Connect(src, 0, proc, 0)
		eng := newTestEngine(t, g, Options{Seed: 41, ConflictBackoff: backoff})
		s, _ := eng.Source(src)
		const events = 120
		for i := 0; i < events; i++ {
			if _, err := s.Emit(uint64(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		eng.Drain()
		elapsed := time.Since(start)
		if err := eng.Err(); err != nil {
			t.Fatal(err)
		}
		st, _ := eng.Stats(proc)
		if st.Committed != events {
			t.Fatalf("committed %d of %d", st.Committed, events)
		}
		return st, elapsed
	}
	prompt, promptTime := run(0)
	polite, politeTime := run(5 * time.Millisecond)
	if prompt.Aborts < 20 {
		t.Skip("no meaningful contention materialized on this host")
	}
	promptRate := float64(prompt.Aborts) / promptTime.Seconds()
	politeRate := float64(polite.Aborts) / politeTime.Seconds()
	if politeRate >= promptRate {
		t.Fatalf("backoff did not reduce the wasted-work rate: %.0f aborts/s vs %.0f without",
			politeRate, promptRate)
	}
}

// TestTotalStatsAggregates sanity-checks the engine-wide counter sum.
func TestTotalStatsAggregates(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	a := g.AddNode(graph.Node{Name: "a", Op: &operator.Passthrough{}, Speculative: true})
	b := g.AddNode(graph.Node{Name: "b", Op: &operator.Passthrough{}, Speculative: true})
	g.Connect(src, 0, a, 0)
	g.Connect(a, 0, b, 0)
	eng := newTestEngine(t, g, Options{Seed: 42})
	s, _ := eng.Source(src)
	const events = 25
	for i := 0; i < events; i++ {
		if _, err := s.Emit(uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	total := eng.TotalStats()
	if total.Committed != 2*events {
		t.Fatalf("total committed = %d, want %d", total.Committed, 2*events)
	}
	if total.FinalViolations != 0 {
		t.Fatalf("final violations = %d, want 0", total.FinalViolations)
	}
}
