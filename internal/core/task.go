package core

import (
	"fmt"
	"sync"
	"time"

	"streammine/internal/event"
	"streammine/internal/stm"
	"streammine/internal/wal"
)

// decision is one logged non-deterministic value taken while processing an
// event. Decisions are *sticky*: a rollback re-executes the task with the
// same decisions replayed in order (fresh draws happen only past the end
// of the list), which makes re-execution deterministic modulo state reads
// — the property behind the paper's "re-execution produces the same
// outputs unless a read value actually changed".
type decision struct {
	kind  wal.Kind
	value uint64
}

// taskState tracks a task through its lifecycle.
type taskState int32

const (
	taskQueued taskState = iota + 1
	taskExecuting
	taskOpen // executed, transaction open, awaiting commit authorization
	taskCommitted
	taskCancelled
)

// task is the processing of one input event by one node: the unit of
// speculation. Fields below mu are protected by it; seq, input and n are
// immutable after creation.
type task struct {
	n     *node
	seq   int64 // per-node arrival order; also the STM timestamp
	input int
	// admitted stamps admission when metrics are enabled (zero
	// otherwise); finishCommit derives the finalize latency from it.
	admitted time.Time

	mu       sync.Mutex
	state    taskState
	ev       event.Event // current version of the input event
	evFinal  bool
	tx       *stm.Tx
	attempts int

	// decisions and cursor implement sticky decision replay.
	decisions []decision
	cursor    int

	attemptNs    int64 // profiler: CPU-ns of the last completed attempt
	pendingLogs  int   // async log appends not yet stable
	published    bool  // outputs of the current execution handed downstream
	maxLSN       wal.LSN
	outs         []pendingOut // outputs of the current execution
	sent         []*outRecord // outputs already sent downstream, by position
	tainted      bool         // last published speculative state
	throttleHeld bool         // holds a speculation-throttle slot
}

// pendingOut is one Emit call captured during execution.
type pendingOut struct {
	port    int
	ts      int64
	key     uint64
	payload []byte
}

// procCtx implements operator.Context for one execution attempt. It is
// confined to the executing worker goroutine.
type procCtx struct {
	t  *task
	tx *stm.Tx

	// decisions is the sticky decision list snapshot for this attempt;
	// replayCursor walks it. Decisions taken past its end (or after a
	// control-flow divergence truncates it) land in taken.
	decisions    []decision
	replayCursor int
	truncateAt   int
	taken        []decision
	outs         []pendingOut
}

// OperatorID implements operator.Context.
func (c *procCtx) OperatorID() uint32 { return uint32(c.t.n.spec.ID) }

// InputIndex implements operator.Context.
func (c *procCtx) InputIndex() int { return c.t.input }

// Tx implements operator.Context.
func (c *procCtx) Tx() *stm.Tx { return c.tx }

// nextDecision replays a sticky decision of the right kind or takes (and
// records) a fresh one. A kind mismatch means the re-execution's control
// flow diverged (a read value changed); the stale tail is truncated and
// fresh decisions are taken — the same rule applies during recovery
// replay, keeping both paths deterministic.
func (c *procCtx) nextDecision(kind wal.Kind, fresh func() uint64) (uint64, error) {
	if c.truncateAt < 0 && c.replayCursor < len(c.decisions) {
		d := c.decisions[c.replayCursor]
		if d.kind == kind {
			c.replayCursor++
			return d.value, nil
		}
		c.truncateAt = c.replayCursor
	}
	v := fresh()
	c.taken = append(c.taken, decision{kind: kind, value: v})
	return v, nil
}

// Random implements operator.Context: a logged PRNG draw.
func (c *procCtx) Random() (uint64, error) {
	n := c.t.n
	return c.nextDecision(wal.KindRandom, func() uint64 {
		n.rngMu.Lock()
		defer n.rngMu.Unlock()
		return n.rng.Uint64()
	})
}

// Now implements operator.Context: a logged clock read.
func (c *procCtx) Now() (int64, error) {
	v, err := c.nextDecision(wal.KindTime, func() uint64 {
		return uint64(c.t.n.eng.opts.Clock.Now())
	})
	return int64(v), err
}

// Emit implements operator.Context.
func (c *procCtx) Emit(key uint64, payload []byte) error {
	return c.EmitTo(0, key, payload)
}

// EmitTo implements operator.Context.
func (c *procCtx) EmitTo(port int, key uint64, payload []byte) error {
	if port < 0 || port >= c.t.n.spec.OutputPorts {
		return fmt.Errorf("core: node %q has no output port %d", c.t.n.spec.Name, port)
	}
	c.outs = append(c.outs, pendingOut{
		port: port, ts: c.t.currentEventTS(), key: key,
		payload: append([]byte(nil), payload...),
	})
	return nil
}

// EmitAt implements operator.Context.
func (c *procCtx) EmitAt(ts int64, key uint64, payload []byte) error {
	c.outs = append(c.outs, pendingOut{
		port: 0, ts: ts, key: key, payload: append([]byte(nil), payload...),
	})
	return nil
}

// currentEventTS returns the input event's application timestamp.
func (t *task) currentEventTS() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ev.Timestamp
}

// outputID derives a deterministic output event ID from the node, the
// consumed input event and the output position — stable across rollbacks,
// re-executions and recovery replay, so downstream duplicate suppression
// works by ID (paper §2.2: replayed duplicates carry the same ids).
func outputID(nodeID uint32, in event.ID, position int) event.ID {
	z := uint64(in.Source)<<32 ^ uint64(in.Seq) + 0x9E3779B97F4A7C15*uint64(position+1)
	z ^= uint64(nodeID) << 17
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return event.ID{Source: event.SourceID(nodeID), Seq: event.Seq(z ^ (z >> 31))}
}
