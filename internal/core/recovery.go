package core

import (
	"errors"
	"fmt"
	"time"

	"streammine/internal/checkpoint"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/stm"
	"streammine/internal/transport"
	"streammine/internal/wal"
)

// Crash simulates a fail-stop crash of one node: its goroutines stop and
// every piece of volatile state — operator memory, in-flight tasks, input
// queues, output buffers, duplicate-suppression tables — is discarded.
// Only what the paper assumes survives a crash remains: the stable
// decision log and the checkpoint store.
//
// Source nodes cannot crash (they are driven by the harness, which owns
// their durability).
func (e *Engine) Crash(id graph.NodeID) error {
	n, err := e.node(id)
	if err != nil {
		return err
	}
	if n.spec.Op == nil {
		return fmt.Errorf("core: node %q is a source; crash not supported", n.spec.Name)
	}
	n.crash()
	return nil
}

// Recover restarts a crashed node: deterministic state re-allocation, the
// latest checkpoint image (if any), a replay plan built from the stable
// decision log (input order + logged decisions), and replay requests to
// every upstream node (paper §2.2's recovery protocol).
//
// Stateful nodes must run with CheckpointEvery > 0 to be recoverable:
// without checkpoints they acknowledge events at commit, so upstream
// buffers no longer hold the events needed to rebuild their state.
func (e *Engine) Recover(id graph.NodeID) error {
	n, err := e.node(id)
	if err != nil {
		return err
	}
	return n.recover()
}

// crash tears down the node and wipes volatile state.
func (n *node) crash() {
	n.stopFlag.Store(true)
	// Close the throttle first: workers parked in WaitSince (deferred
	// admissions) must unblock for wg.Wait to finish. recover() reopens
	// it via Reset.
	n.throttle.Close()
	n.mailbox.Close()
	n.execQ.Close()
	n.notifyCommitter()
	n.wg.Wait()

	// Abort open transactions so no downstream STM chains dangle. (All
	// state dies with the memory anyway; this is bookkeeping hygiene.)
	n.mu.Lock()
	for _, t := range n.bySeq {
		t.mu.Lock()
		tx := t.tx
		t.mu.Unlock()
		if tx != nil {
			tx.Abort()
		}
	}
	n.tasks = make(map[event.ID]*task)
	n.bySeq = make(map[int64]*task)
	n.committed = make(map[event.ID]bool)
	n.outBuf = make(map[event.ID]*outRecord)
	n.lastCommitted = make(map[int]event.ID)
	n.pendFin = make(map[event.ID]event.Version)
	n.pendRevoke = make(map[event.ID]int)
	n.recoverDrop = nil
	n.replay = nil
	n.sinceCkpt = nil
	n.nextSeq = 1
	n.outEmitSeq = 0
	n.commitCount = 0
	n.mem = stm.NewMemory(n.mem.Capacity())
	n.mu.Unlock()
	// Rebind profiling hooks to the fresh memory (workers are joined, so
	// this is single-threaded); recover() re-runs Op.Init, repopulating
	// the address map the resolver reads.
	n.installProfiler()
	n.nextCommit.Store(1)
	// All open tasks died with the node; free their speculation slots.
	n.throttle.Reset()
}

// replayPlan drives recovery-mode dispatch: logged events are admitted in
// logged order with their logged decisions; unlogged events (the tail that
// was in flight at the crash) follow afterwards in arrival order.
type replayPlan struct {
	order    []event.ID
	pos      int
	decs     map[event.ID][]decision
	lsns     map[event.ID]wal.LSN
	buffered map[event.ID]transport.Message
	tail     []transport.Message
}

// buildReplayPlan digests the node's stable decision records, read from
// the configured log scanner (real storage) or the in-memory mirror.
//
// lastByInput holds the restored snapshot's per-input last-committed
// event IDs. Because commits are issued strictly in admission order, the
// snapshot reflects exactly the admission-order *prefix* of logged
// inputs ending at the latest of those IDs: that prefix is returned as
// the covered set (redeliveries of its events must be dropped — their
// effects are already in the restored state, and output IDs are hashes,
// so no sequence-number watermark can identify them). Everything after
// the prefix forms the replay order. Decision records are attached by
// event identity, not by LSN position: an event uncommitted at
// checkpoint time can have decision LSNs below the snapshot's covered
// LSN, and replaying it with fresh decisions would break determinism.
func (n *node) buildReplayPlan(lastByInput map[int]event.ID) (*replayPlan, map[event.ID]bool, wal.LSN, error) {
	var stable []wal.Record
	if scan := n.eng.opts.LogScanner; scan != nil {
		recs, err := scan()
		if err != nil {
			return nil, nil, 0, fmt.Errorf("scan decision log: %w", err)
		}
		stable = recs
	} else {
		stable = n.stableRecords()
	}
	// Highest LSN across the whole scan (all operators, marks included):
	// a fresh Log over reopened storage must continue the LSN sequence.
	var maxSeen wal.LSN
	for _, r := range stable {
		if r.LSN > maxSeen {
			maxSeen = r.LSN
		}
	}
	// Filter to this operator's decision records WITHOUT wal.Replay's
	// checkpoint-mark cut: the cut hides the snapshot-covered prefix, and
	// that prefix is exactly what identifies covered redeliveries (a crash
	// can race the post-mark ACKs, leaving upstream free to re-send
	// covered events).
	var recs []wal.Record
	for _, r := range stable {
		if r.Operator == n.opID && r.Kind != wal.KindCheckpointMark {
			recs = append(recs, r)
		}
	}
	n.mu.Lock()
	n.recStats.logRecords = int64(len(recs))
	n.mu.Unlock()

	// Admission order of every logged input (records are in LSN order).
	pos := make(map[event.ID]int)
	var order []event.ID
	for _, r := range recs {
		if r.Kind != wal.KindInput {
			continue
		}
		if _, ok := pos[r.Event]; !ok {
			pos[r.Event] = len(order)
			order = append(order, r.Event)
		}
	}
	last := -1
	for _, id := range lastByInput {
		if p, ok := pos[id]; ok && p > last {
			last = p
		}
	}
	covered := make(map[event.ID]bool, last+1)
	for i := 0; i <= last; i++ {
		covered[order[i]] = true
	}

	plan := &replayPlan{
		order:    order[last+1:],
		decs:     make(map[event.ID][]decision),
		lsns:     make(map[event.ID]wal.LSN),
		buffered: make(map[event.ID]transport.Message),
	}
	for _, r := range recs {
		if covered[r.Event] {
			continue
		}
		if r.Kind == wal.KindRandom || r.Kind == wal.KindTime {
			plan.decs[r.Event] = append(plan.decs[r.Event], decision{kind: r.Kind, value: r.Value})
		}
		if r.LSN > plan.lsns[r.Event] {
			plan.lsns[r.Event] = r.LSN
		}
	}
	if len(plan.order) == 0 && len(plan.decs) == 0 {
		plan = nil // nothing to replay: plain restart
	}
	return plan, covered, maxSeen, nil
}

// restoreDurable loads the node's durable state — the latest checkpoint
// (if any) plus a replay plan built from the stable decision log — and
// advances the log's LSN cursor past every scanned record so freshly
// logged decisions continue the sequence. It is the common core of crash
// recovery and restore-on-start (cluster partition reassignment); on an
// empty store it is a no-op and the node starts from scratch.
func (n *node) restoreDurable() error {
	restoreStart := time.Now().UnixNano()
	var ckptBytes int64
	lastByInput := make(map[int]event.ID)
	snap, err := n.eng.store.Latest(n.opID)
	switch {
	case err == nil:
		ckptBytes = int64(len(checkpoint.Encode(snap)))
		if err := n.mem.Restore(snap.Memory); err != nil {
			return fmt.Errorf("restore checkpoint: %w", err)
		}
		n.rngMu.Lock()
		n.rng.Restore(snap.RandState)
		n.rngMu.Unlock()
		n.mu.Lock()
		n.ckptEpoch = snap.Epoch
		n.coveredLSN = wal.LSN(snap.CoveredLSN)
		for i, id := range snap.InputPositions {
			n.lastCommitted[i] = id
			lastByInput[i] = id
		}
		// Rebuild the output buffer from the snapshot so a downstream
		// replay request can re-send outputs whose inputs the snapshot
		// covers; downstream identity dedup absorbs any it already has.
		for _, o := range snap.Outputs {
			n.outEmitSeq++
			rec := &outRecord{
				id: o.ID, port: o.Port, ts: o.Timestamp, key: o.Key,
				payload:     o.Payload,
				trace:       o.Trace,
				version:     event.Version(o.Version),
				pendingAcks: n.bufferedLinks(o.Port),
				seq:         n.outEmitSeq,
			}
			rec.finalSent.Store(true)
			if rec.pendingAcks > 0 {
				n.outBuf[rec.id] = rec
			}
		}
		n.mu.Unlock()
	case isNotFound(err):
		// No checkpoint yet: rebuild from scratch via full replay.
	default:
		return fmt.Errorf("load checkpoint: %w", err)
	}

	// Redeliveries of events the snapshot already covers must be dropped
	// (and re-ACKed): the covering mark may never have become stable, in
	// which case upstream was never told to prune them (paper §2.2: replay
	// "starting at the last logged messages from each source").
	plan, covered, maxSeen, err := n.buildReplayPlan(lastByInput)
	if err != nil {
		return err
	}
	now := time.Now().UnixNano()
	n.mu.Lock()
	n.replay = plan
	n.recoverDrop = covered
	// Stamp the restore window and open the replay window for the
	// anatomy profiler; with nothing to replay the replay phase is a
	// zero-length span closed on the spot.
	n.recStats.restoreStartNs = restoreStart
	n.recStats.restoreEndNs = now
	n.recStats.ckptBytes = ckptBytes
	n.recStats.coveredSet = int64(len(covered))
	n.recStats.replayStartNs = now
	n.recStats.replayEvents = 0
	n.recStats.replayDrops = 0
	if plan == nil {
		n.recStats.replayEndNs = now
	} else {
		n.recStats.replayEndNs = 0
	}
	n.mu.Unlock()
	n.log.AdvanceLSN(maxSeen)
	return nil
}

// requestUpstreamReplay asks every connected upstream to re-send its
// unacknowledged outputs.
func (n *node) requestUpstreamReplay() {
	n.mu.Lock()
	ups := make([]upstreamSender, 0, len(n.upstream))
	for _, up := range n.upstream {
		if up != nil {
			ups = append(ups, up)
		}
	}
	n.mu.Unlock()
	for _, up := range ups {
		up.send(transport.Message{Type: transport.MsgReplay})
	}
}

// recover rebuilds the node and rejoins the graph.
func (n *node) recover() error {
	if !n.stopFlag.Load() {
		return fmt.Errorf("core: node %q is not crashed", n.spec.Name)
	}
	n.mailbox.Reopen()
	n.execQ.Reopen()

	// Deterministic state layout, then overwrite with the checkpoint.
	if n.spec.Op != nil {
		if err := n.spec.Op.Init(initContext{n: n}); err != nil {
			return fmt.Errorf("re-init: %w", err)
		}
	}
	if err := n.restoreDurable(); err != nil {
		return err
	}

	n.stopFlag.Store(false)
	n.wg.Add(1)
	go n.dispatcher()
	for i := 0; i < n.spec.Workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	n.wg.Add(1)
	go n.committer()

	// Re-grant inbound credits before asking for replay: the crash wiped
	// the mailbox, so credits outstanding at the moment of failure refer
	// to events that no longer occupy memory here. Without the refill the
	// upstream replay would wedge on credits nobody can return.
	for _, g := range n.inGates {
		g.Reset()
	}
	n.requestUpstreamReplay()
	return nil
}

// isNotFound matches the checkpoint store's miss error.
func isNotFound(err error) bool {
	return errors.Is(err, checkpoint.ErrNotFound)
}

// replayAdmit routes an incoming event through the replay plan. It returns
// the messages (with their pre-seeded decisions) that are now ready for
// normal admission, in order. Caller holds no locks.
func (n *node) replayAdmit(m transport.Message) []plannedEvent {
	n.mu.Lock()
	plan := n.replay
	if plan == nil {
		n.mu.Unlock()
		return []plannedEvent{{msg: m}}
	}
	var ready []plannedEvent
	id := m.Event.ID
	if _, logged := planContains(plan, id); logged {
		plan.buffered[id] = m
	} else {
		plan.tail = append(plan.tail, m)
	}
	for plan.pos < len(plan.order) {
		next := plan.order[plan.pos]
		bm, ok := plan.buffered[next]
		if !ok {
			break
		}
		delete(plan.buffered, next)
		ready = append(ready, plannedEvent{
			msg:       bm,
			decisions: plan.decs[next],
			logged:    true,
			maxLSN:    plan.lsns[next],
		})
		plan.pos++
	}
	if plan.pos >= len(plan.order) {
		// Plan complete: flush the unlogged tail and leave recovery mode.
		for _, tm := range plan.tail {
			ready = append(ready, plannedEvent{msg: tm})
		}
		n.replay = nil
		n.recStats.replayEndNs = time.Now().UnixNano()
	}
	n.recStats.replayEvents += int64(len(ready))
	n.mu.Unlock()
	return ready
}

// plannedEvent is an admitted event plus its recovered decisions.
type plannedEvent struct {
	msg       transport.Message
	decisions []decision
	logged    bool
	// maxLSN is the highest original decision-log LSN of this event;
	// replayed tasks must carry it so post-recovery checkpoints report
	// the correct coverage (nothing is re-logged during replay).
	maxLSN wal.LSN
}

// planContains reports whether the plan's order includes id.
func planContains(plan *replayPlan, id event.ID) (int, bool) {
	for i := plan.pos; i < len(plan.order); i++ {
		if plan.order[i] == id {
			return i, true
		}
	}
	return 0, false
}
