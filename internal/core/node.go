package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streammine/internal/checkpoint"
	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/profiler"
	"streammine/internal/state"
	"streammine/internal/stm"
	"streammine/internal/transport"
	"streammine/internal/wal"
)

// cmdReexec asks the dispatcher to re-execute a task whose transaction tx
// was aborted (rollback, cascade, or conflict retry).
type cmdReexec struct {
	t  *task
	tx *stm.Tx
}

// cmdInject carries a source-node event from a SourceHandle.
type cmdInject struct {
	ev event.Event
}

// cmdInjectBatch carries a batch of source-node events admitted together
// by SourceHandle.EmitBatch: one mailbox push, one dispatcher turn, one
// batched downstream delivery. Events are in emission (sequence) order.
type cmdInjectBatch struct {
	evs []event.Event
}

// node is the runtime for one graph node: a dispatcher goroutine that owns
// ordering decisions, a worker pool that executes tasks under speculative
// transactions, and a committer that commits tasks in arrival order once
// they are authorized (log stable + inputs final + dependencies committed).
type node struct {
	eng  *Engine
	spec graph.Node
	opID uint32
	mem  *stm.Memory
	log  *wal.Log

	rngMu sync.Mutex
	rng   *detrand.Source

	mailbox *mailbox
	execQ   *taskQueue

	mu            sync.Mutex
	tasks         map[event.ID]*task
	bySeq         map[int64]*task
	nextSeq       int64
	committed     map[event.ID]bool
	outBuf        map[event.ID]*outRecord
	outEmitSeq    uint64
	lastCommitted map[int]event.ID
	sinceCkpt     []ackTarget
	ckptEpoch     uint64
	coveredLSN    wal.LSN
	commitCount   uint64

	commitMu   sync.Mutex
	commitCond *sync.Cond
	commitGen  uint64
	nextCommit atomic.Int64

	// commitRun/commitTxs are the batched committer's gather scratch,
	// touched only by the committer goroutine and reused across groups
	// (the committer wakes once per notification, far more often than it
	// commits — fresh slices per wakeup would churn the allocator).
	commitRun []*task
	commitTxs []*stm.Tx

	// retirePosts is retireGroup's phase scratch, committer-only like the
	// gather scratch above.
	retirePosts []retirePost

	// finHits is handleFinalizeBatch's scratch, dispatcher-only. Reusing
	// it keeps the batched finalize path allocation-free (guarded by an
	// AllocsPerRun test).
	finHits []finHit

	// replay, when non-nil, holds the recovery-mode admission plan;
	// recoverDrop holds the IDs of logged events the restored snapshot
	// already covers, whose redeliveries must be dropped (both guarded
	// by mu).
	replay      *replayPlan
	recoverDrop map[event.ID]bool

	// rec* instrument the restore/replay path for the recovery anatomy
	// profiler (Engine.RecoveryStats). All guarded by mu: restoreDurable
	// writes the restore window before the node's goroutines start,
	// replayAdmit stamps replay progress, and the recoverDrop sites
	// count dedup drops.
	recStats nodeRecoveryStats

	// pendFin and pendRevoke (guarded by mu) absorb control-lane
	// reordering: with lane-separated mailboxes a FINALIZE or REVOKE can
	// be processed before its EVENT clears the data lane. Early
	// finalizations are stashed by version; early revocations are
	// counted (one REVOKE consumes exactly one queued incarnation of the
	// event, and incarnations arrive in FIFO order on the data lane).
	pendFin    map[event.ID]event.Version
	pendRevoke map[event.ID]int

	links    [][]link
	upstream map[int]upstreamSender

	// Flow control (all nil/empty when unconfigured — see internal/flow).
	// granters return credits per input as events leave the mailbox;
	// inGates are the gates feeding this node (reset on recovery);
	// credLinks are credit-gated output links (quiescence accounting);
	// throttle caps open speculative tasks; admission rate-limits a
	// source node. granters and inGates are wired before start and
	// immutable afterwards; credLinks appends are wiring-time only.
	granters  map[int]creditGranter
	inGates   []*flow.CreditGate
	credLinks []*creditedLink
	throttle  *flow.SpecThrottle
	// admission rate-limits a source node. It is held behind an atomic
	// pointer because an ingest gateway may take ownership of the
	// controller (Engine.DetachSourceAdmission) while status loops
	// concurrently snapshot the node's pressure.
	admission atomic.Pointer[flow.Admission]

	// prof is this node's speculation-waste ledger; nil when profiling is
	// off, so every recording site pays one pointer check.
	prof *profiler.NodeProfile

	stopFlag atomic.Bool
	wg       sync.WaitGroup

	errMu    sync.Mutex
	firstErr error

	// stableRecs mirrors this node's decision records once stable — the
	// recovery read path (equivalent to scanning the log disk). Sorted by
	// LSN on demand. Stored in fixed-size chunks so the steady-state
	// append never reallocates the whole mirror (a contiguous slice costs
	// an O(history) copy on every growth and keeps the full history hot
	// for the garbage collector).
	recMu      sync.Mutex
	stableRecs [][]wal.Record

	// healthLat is the per-node admission→commit latency HDR feeding
	// Engine.Health (nil unless Options.Health; a nil HDR is inert).
	healthLat *metrics.HDR

	cDispatched     atomic.Uint64
	cExecuted       atomic.Uint64
	cCommitted      atomic.Uint64
	cReexec         atomic.Uint64
	cSpecSent       atomic.Uint64
	cFinalSent      atomic.Uint64
	openTainted     atomic.Int64
	finalViolations atomic.Uint64
}

// ackTarget identifies one consumed input event pending upstream ACK.
type ackTarget struct {
	input int
	id    event.ID
}

// newNode builds the runtime for a graph node.
func newNode(eng *Engine, spec graph.Node, rng *detrand.Source, log *wal.Log) (*node, error) {
	capWords := spec.Traits.StateWords + 64
	if capWords < 256 {
		capWords = 256
	}
	opID := uint32(spec.ID)
	if spec.StableID != 0 {
		opID = spec.StableID // cluster partitions keep global identities
	}
	n := &node{
		eng:           eng,
		spec:          spec,
		opID:          opID,
		mem:           stm.NewMemory(capWords),
		log:           log,
		rng:           rng,
		mailbox:       newMailbox(),
		execQ:         newTaskQueue(),
		tasks:         make(map[event.ID]*task),
		bySeq:         make(map[int64]*task),
		committed:     make(map[event.ID]bool),
		outBuf:        make(map[event.ID]*outRecord),
		lastCommitted: make(map[int]event.ID),
		links:         make([][]link, spec.OutputPorts),
		upstream:      make(map[int]upstreamSender),
		pendFin:       make(map[event.ID]event.Version),
		pendRevoke:    make(map[event.ID]int),
		granters:      make(map[int]creditGranter),
		nextSeq:       1,
		healthLat:     newHealthHDR(eng.opts.Health),
	}
	if f := spec.Flow; f != nil {
		if f.MailboxCap > 0 {
			n.mailbox.SetDataCap(f.MailboxCap)
		}
		n.throttle = flow.NewSpecThrottle(f)
	}
	n.nextCommit.Store(1)
	n.commitCond = sync.NewCond(&n.commitMu)
	return n, nil
}

func (n *node) addLink(port int, l link) {
	n.links[port] = append(n.links[port], l)
	if cl, ok := l.(*creditedLink); ok {
		n.credLinks = append(n.credLinks, cl)
	}
}

// creditQueued sums output events waiting for credits across this node's
// credit-gated links. They are in flight for quiescence purposes: no
// mailbox holds them yet, but they will be delivered.
func (n *node) creditQueued() int {
	total := 0
	for _, cl := range n.credLinks {
		total += cl.queued()
	}
	return total
}

// upstreamSender delivers control messages (ACK, REPLAY) against the data
// direction: to a node in the same engine or over a bridge connection.
type upstreamSender interface {
	send(m transport.Message)
}

// localUpstream targets a node in the same engine.
type localUpstream struct{ n *node }

func (u localUpstream) send(m transport.Message) { u.n.mailbox.Push(m) }

// remoteUpstream targets a bridged engine over a transport connection.
type remoteUpstream struct{ c transport.Conn }

func (u remoteUpstream) send(m transport.Message) { _ = u.c.Send(m) }

func (n *node) setUpstream(input int, up upstreamSender) {
	n.mu.Lock()
	n.upstream[input] = up
	n.mu.Unlock()
}

// bufferedLinks counts links on a port that participate in ACKs.
func (n *node) bufferedLinks(port int) int {
	c := 0
	for _, l := range n.links[port] {
		if l.buffered() {
			c++
		}
	}
	return c
}

// installProfiler binds the node's profiler hooks to its current STM
// memory: the conflict sink and the address→state-bucket resolver. Called
// at wiring time and again after recovery replaces the memory (both
// single-threaded with respect to the node's workers).
func (n *node) installProfiler() {
	if n.prof == nil {
		return
	}
	n.prof.SetResolver(state.Names(n.mem).Describe)
	n.mem.SetConflictSink(n.prof)
}

// specDepth reads the node's current speculation depth (open tainted
// tasks) for waste attribution.
func (n *node) specDepth() int64 { return n.openTainted.Load() }

// chargeAbort records one aborted attempt in the waste ledger and, when
// profiler metrics are registered, observes the speculation depth at
// abort. cpu is the CPU of the wasted attempt (zero when the task never
// executed, or when profiling is off and nothing was timed).
func (n *node) chargeAbort(c profiler.Cause, cpu time.Duration) {
	if n.prof == nil {
		return
	}
	depth := n.specDepth()
	n.prof.AbortedAttempt(c, cpu, depth)
	if m := n.eng.met; m != nil && m.abortSpecDepth != nil {
		m.abortSpecDepth.Observe(depth)
	}
}

// initContext adapts the node for operator.Init.
type initContext struct{ n *node }

func (c initContext) Memory() *stm.Memory { return c.n.mem }
func (c initContext) OperatorID() uint32  { return c.n.opID }

// start initializes the operator and launches the goroutines. With
// RestoreFromStorage set, the node first primes itself from durable
// state so a restarted process resumes where its predecessor left off.
func (n *node) start() error {
	if n.spec.Op != nil {
		if err := n.spec.Op.Init(initContext{n: n}); err != nil {
			return fmt.Errorf("init: %w", err)
		}
	}
	if n.eng.opts.RestoreFromStorage {
		if err := n.restoreDurable(); err != nil {
			return fmt.Errorf("restore %q: %w", n.spec.Name, err)
		}
	}
	n.wg.Add(1)
	go n.dispatcher()
	for i := 0; i < n.spec.Workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	n.wg.Add(1)
	go n.committer()
	return nil
}

// stop shuts the node down and waits for its goroutines.
func (n *node) stop() {
	if n.stopFlag.Swap(true) {
		return
	}
	n.admission.Load().Close()
	n.throttle.Close()
	n.mailbox.Close()
	n.execQ.Close()
	n.notifyCommitter()
	n.wg.Wait()
	for _, cl := range n.credLinks {
		cl.close()
	}
	if n.spec.Op != nil {
		_ = n.spec.Op.Terminate()
	}
}

// fail records the node's first operator error.
func (n *node) fail(err error) {
	n.errMu.Lock()
	if n.firstErr == nil {
		n.firstErr = err
	}
	n.errMu.Unlock()
}

// err returns the node's first operator error.
func (n *node) err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.firstErr
}

// stats snapshots the node counters. The STM stats go through memStats
// (node lock) because crash recovery swaps the memory object.
func (n *node) stats() NodeStats {
	memStats := n.memStats()
	return NodeStats{
		Dispatched:      n.cDispatched.Load(),
		Executed:        n.cExecuted.Load(),
		Committed:       n.cCommitted.Load(),
		Reexecuted:      n.cReexec.Load(),
		SpecSent:        n.cSpecSent.Load(),
		FinalSent:       n.cFinalSent.Load(),
		Aborts:          memStats.Aborts,
		Conflicts:       memStats.Conflicts,
		FinalViolations: n.finalViolations.Load(),
	}
}

// openCount reports tasks not yet committed or cleaned up.
func (n *node) openCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.bySeq)
}

// drain blocks until the node has no queued work, no open tasks, and no
// outputs parked behind credit gates.
func (n *node) drain() {
	for !n.stopFlag.Load() {
		if n.mailbox.Len() == 0 && n.execQ.Len() == 0 && n.openCount() == 0 &&
			n.creditQueued() == 0 {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ---------- dispatcher ----------

// dispatcher serializes ordering decisions: event admission (assigning the
// per-node sequence = STM timestamp, the logged input-order decision),
// replacements, finalization, revocation, ACK bookkeeping and re-execution
// requests.
func (n *node) dispatcher() {
	defer n.wg.Done()
	for {
		item, ok := n.mailbox.Pop()
		if !ok {
			return
		}
		switch v := item.(type) {
		case transport.Message:
			// The event(s) left the data lane: return their credits so the
			// upstream sender may transmit the next ones.
			switch v.Type {
			case transport.MsgEvent:
				if g := n.granters[v.Input]; g != nil {
					g.grant(1)
				}
			case transport.MsgEventBatch:
				if g := n.granters[v.Input]; g != nil {
					g.grant(len(v.Events))
				}
			}
			n.handleMessage(v)
		case cmdReexec:
			n.handleReexec(v)
		case cmdInject:
			n.handleInject(v)
		case cmdInjectBatch:
			n.handleInjectBatch(v)
		}
	}
}

func (n *node) handleMessage(m transport.Message) {
	switch m.Type {
	case transport.MsgEvent:
		n.handleEvent(m)
	case transport.MsgEventBatch:
		n.handleEventBatch(m)
	case transport.MsgFinalize:
		n.handleFinalize(m)
	case transport.MsgFinalizeBatch:
		n.handleFinalizeBatch(m)
	case transport.MsgRevoke:
		n.handleRevoke(m)
	case transport.MsgAck:
		n.handleAck(m)
	case transport.MsgAckBatch:
		n.handleAckBatch(m)
	case transport.MsgReplay:
		n.handleReplay()
	}
}

// handleEvent admits a new input event or applies a replacement to an
// existing task (paper §3.1: reception of E1”). In recovery mode the
// event first passes through the replay plan, which enforces the logged
// admission order and attaches logged decisions.
func (n *node) handleEvent(m transport.Message) {
	n.mu.Lock()
	replaying := n.replay != nil
	n.mu.Unlock()
	if replaying {
		for _, pe := range n.replayAdmit(m) {
			n.admitEvent(pe)
		}
		return
	}
	n.admitEvent(plannedEvent{msg: m})
}

// handleEventBatch expands a batch frame to per-event admission in order,
// so the logged decision sequence (and therefore recovery) is identical
// to the events arriving one frame at a time. Outside replay, the batch's
// input records are submitted to the decision log as ONE append — one
// group-commit pool round trip instead of len(Events) — which is where
// batching earns its keep on the admission hot path.
func (n *node) handleEventBatch(m transport.Message) {
	n.mu.Lock()
	if n.replay != nil {
		n.mu.Unlock()
		for _, ev := range m.Events {
			n.handleEvent(transport.Message{Type: transport.MsgEvent, Event: ev, Input: m.Input})
		}
		return
	}
	// Admit the whole run under ONE n.mu hold — the batched counterpart of
	// admitEvent, with identical per-event logic. Rare outcomes that need
	// the lock released (re-ACKing committed duplicates, replacing a live
	// task) are deferred past the unlock in arrival order.
	var (
		ab       admitBatch
		fresh    []*task
		deferred []func()
	)
	stateful := n.spec.Traits.Stateful
	// Batch payloads often alias one wire frame; detach them with a single
	// arena copy for the whole run instead of one allocation per event.
	arena := 0
	for _, ev := range m.Events {
		arena += len(ev.Payload)
	}
	buf := make([]byte, 0, arena)
	for _, ev := range m.Events {
		ev := ev
		id := ev.ID
		if n.committed[id] || n.recoverDrop[id] {
			if !n.committed[id] {
				n.recStats.replayDrops++
			}
			input := m.Input
			deferred = append(deferred, func() { n.ackUpstream(input, id) })
			continue
		}
		if t, ok := n.tasks[id]; ok {
			t := t
			deferred = append(deferred, func() { n.applyReplacement(t, ev) })
			continue
		}
		if c := n.pendRevoke[id]; c > 0 {
			if c == 1 {
				delete(n.pendRevoke, id)
			} else {
				n.pendRevoke[id] = c - 1
			}
			continue
		}
		if v, ok := n.pendFin[id]; ok && v <= ev.Version {
			delete(n.pendFin, id)
			if v == ev.Version {
				ev.Speculative = false
			}
		}
		detached := ev
		if len(ev.Payload) > 0 {
			start := len(buf)
			buf = append(buf, ev.Payload...)
			detached.Payload = buf[start:len(buf):len(buf)]
		}
		t := &task{
			n:       n,
			seq:     n.nextSeq,
			input:   m.Input,
			state:   taskQueued,
			ev:      detached,
			evFinal: !ev.Speculative,
		}
		if n.eng.met != nil || n.healthLat != nil {
			t.admitted = time.Now()
		}
		n.nextSeq++
		n.tasks[id] = t
		n.bySeq[t.seq] = t
		if stateful {
			// The task is unpublished until n.mu is released, so the fresh
			// pendingLogs count needs no t.mu.
			t.pendingLogs++
			ab.add(t, wal.Record{
				Kind:     wal.KindInput,
				Operator: n.opID,
				Event:    id,
				Value:    uint64(m.Input),
			})
		}
		fresh = append(fresh, t)
	}
	n.mu.Unlock()
	if len(fresh) > 0 {
		n.cDispatched.Add(uint64(len(fresh)))
		if tr := n.eng.tracer; tr != nil {
			for _, t := range fresh {
				if tr.Keeps(t.ev.Trace) {
					tr.RecordTrace(n.spec.Name, t.ev.ID.String(), t.ev.Trace, metrics.PhaseIngress,
						fmt.Sprintf("input=%d spec=%t", t.input, t.ev.Speculative))
				}
			}
		}
		n.execQ.PushAll(fresh)
		// One wake covers the whole run: Wake broadcasts to every parked
		// worker, so per-task wakes would be redundant.
		n.throttle.Wake()
	}
	for _, f := range deferred {
		f()
	}
	ab.flush(n)
}

// admitBatch accumulates the KindInput records of one admitted batch so
// they stabilize through a single log append. Record i belongs to task i;
// a single Append preserves the admission-order LSN sequence exactly as
// per-event appends would have produced it.
type admitBatch struct {
	tasks []*task
	recs  []wal.Record
}

func (ab *admitBatch) add(t *task, rec wal.Record) {
	ab.tasks = append(ab.tasks, t)
	ab.recs = append(ab.recs, rec)
}

// flush submits the accumulated records as one append and fans the
// stability callback out to every task in the batch.
func (ab *admitBatch) flush(n *node) {
	if len(ab.recs) == 0 {
		return
	}
	tasks, recs := ab.tasks, ab.recs
	_, err := n.log.Append(recs, func(err error) {
		if err != nil {
			n.fail(fmt.Errorf("decision log: %w", err))
			return
		}
		n.mirrorStable(recs)
		for i, t := range tasks {
			t.mu.Lock()
			t.pendingLogs--
			if recs[i].LSN > t.maxLSN {
				t.maxLSN = recs[i].LSN
			}
			t.mu.Unlock()
		}
		n.notifyCommitter()
	})
	if err != nil {
		n.fail(fmt.Errorf("submit decision log: %w", err))
		for _, t := range tasks {
			t.mu.Lock()
			t.pendingLogs--
			t.mu.Unlock()
		}
	}
}

// admitEvent performs normal (non-replay) admission of one event. Batch
// frames go through handleEventBatch instead, which admits a whole run
// under one lock hold and one log append.
func (n *node) admitEvent(pe plannedEvent) {
	m := pe.msg
	id := m.Event.ID
	n.mu.Lock()
	if n.committed[id] {
		n.mu.Unlock()
		// Precise recovery: a replayed duplicate of a committed event is
		// byte-identical and silently dropped; re-ACK so upstream prunes.
		n.ackUpstream(m.Input, id)
		return
	}
	if n.recoverDrop[id] {
		// Redelivery of an event the restored snapshot already covers
		// (its covering mark never became stable): drop and re-ACK.
		n.recStats.replayDrops++
		n.mu.Unlock()
		n.ackUpstream(m.Input, id)
		return
	}
	if t, ok := n.tasks[id]; ok {
		n.mu.Unlock()
		n.applyReplacement(t, m.Event)
		return
	}
	// Absorb control-lane overtaking: a REVOKE processed before this event
	// cleared the data lane kills exactly this incarnation; an early
	// FINALIZE for this version marks it final on arrival. (Stashes are
	// written and consumed only on the dispatcher goroutine.)
	if c := n.pendRevoke[id]; c > 0 {
		if c == 1 {
			delete(n.pendRevoke, id)
		} else {
			n.pendRevoke[id] = c - 1
		}
		n.mu.Unlock()
		return
	}
	if v, ok := n.pendFin[id]; ok && v <= m.Event.Version {
		delete(n.pendFin, id)
		if v == m.Event.Version {
			m.Event.Speculative = false
		}
	}
	t := &task{
		n:         n,
		seq:       n.nextSeq,
		input:     m.Input,
		state:     taskQueued,
		ev:        m.Event.Clone(),
		evFinal:   !m.Event.Speculative,
		decisions: pe.decisions,
		maxLSN:    pe.maxLSN,
	}
	if n.eng.met != nil || n.healthLat != nil {
		t.admitted = time.Now()
	}
	n.nextSeq++
	n.tasks[id] = t
	n.bySeq[t.seq] = t
	n.mu.Unlock()
	n.cDispatched.Add(1)
	if tr := n.eng.tracer; tr != nil && tr.Keeps(m.Event.Trace) {
		tr.RecordTrace(n.spec.Name, id.String(), m.Event.Trace, metrics.PhaseIngress,
			fmt.Sprintf("input=%d spec=%t", m.Input, m.Event.Speculative))
	}

	// The interleaving order across inputs is a non-deterministic decision
	// for stateful operators: log it before execution can externalize
	// anything that depends on it. Replayed events are already logged.
	if n.spec.Traits.Stateful && !pe.logged {
		t.mu.Lock()
		t.pendingLogs++
		t.mu.Unlock()
		n.appendRecords(t, []wal.Record{wal.Record{
			Kind:     wal.KindInput,
			Operator: n.opID,
			Event:    id,
			Value:    uint64(m.Input),
		}})
	}
	n.execQ.Push(t)
	// Deferred workers must re-pop: the new task may be the commit head.
	n.throttle.Wake()
}

// applyReplacement updates a task's input event in place. Identical
// content only upgrades finality; changed content rolls the task back.
func (n *node) applyReplacement(t *task, ev event.Event) {
	// Consume control-lane stashes targeting this incarnation before the
	// normal replacement logic, so an early FINALIZE/REVOKE lands exactly
	// as if it had arrived in order.
	n.mu.Lock()
	if c := n.pendRevoke[ev.ID]; c > 0 {
		if c == 1 {
			delete(n.pendRevoke, ev.ID)
		} else {
			n.pendRevoke[ev.ID] = c - 1
		}
		n.mu.Unlock()
		if n.prof != nil {
			n.eng.causedBy(ev.ID.Source)
		}
		n.cancelTask(t, "revoke")
		return
	}
	if v, ok := n.pendFin[ev.ID]; ok && v <= ev.Version {
		delete(n.pendFin, ev.ID)
		if v == ev.Version {
			ev.Speculative = false
		}
	}
	n.mu.Unlock()
	t.mu.Lock()
	if t.state == taskCommitted || t.state == taskCancelled {
		t.mu.Unlock()
		return
	}
	if t.ev.SameContent(ev) {
		changed := false
		if !ev.Speculative && !t.evFinal {
			t.evFinal = true
			t.ev.Speculative = false
			changed = true
		}
		if ev.Version > t.ev.Version {
			t.ev.Version = ev.Version
		}
		t.mu.Unlock()
		if changed {
			n.notifyCommitter()
		}
		return
	}
	// Content changed: adopt the new version and roll back if the old one
	// was already (being) processed.
	t.ev = ev.Clone()
	t.evFinal = !ev.Speculative
	tx := t.tx
	st := t.state
	hadSent := len(t.sent) > 0
	attemptNs := t.attemptNs
	t.mu.Unlock()
	if st == taskExecuting || st == taskOpen {
		if tx != nil {
			if m := n.eng.met; m != nil {
				m.abortsReplace.Inc()
				if hadSent {
					m.cascadeAborts.Inc()
				}
			}
			n.chargeAbort(profiler.CauseReplace, time.Duration(attemptNs))
			if n.prof != nil {
				n.eng.causedBy(ev.ID.Source)
			}
			if tr := n.eng.tracer; tr != nil {
				tr.RecordTrace(n.spec.Name, ev.ID.String(), ev.Trace, metrics.PhaseAbort, "cause=replacement")
			}
			tx.Abort() // OnAbort enqueues the re-execution
		}
	}
}

func (n *node) handleFinalize(m transport.Message) {
	n.mu.Lock()
	t := n.tasks[m.ID]
	if t == nil {
		// Control-lane priority: the FINALIZE overtook its event, which is
		// still in the data lane (or in flight behind a credit gate).
		// Stash it; admission applies it on arrival.
		if !n.committed[m.ID] {
			n.pendFin[m.ID] = m.Version
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	t.mu.Lock()
	if t.ev.Version == m.Version && !t.evFinal {
		t.evFinal = true
		t.ev.Speculative = false
		t.mu.Unlock()
		n.notifyCommitter()
		return
	}
	if m.Version > t.ev.Version {
		// FINALIZE for a newer incarnation that is still queued behind it
		// on the data lane; hold it for the replacement.
		t.mu.Unlock()
		n.mu.Lock()
		if !n.committed[m.ID] {
			n.pendFin[m.ID] = m.Version
		}
		n.mu.Unlock()
		return
	}
	t.mu.Unlock()
}

// handleFinalizeBatch applies a run of FINALIZE notices with one n.mu
// acquisition for all the task lookups and one committer wakeup for the
// whole run, instead of one of each per notice. Semantically identical to
// looping handleFinalize: stash-for-later cases (task not yet admitted, or
// notice for a newer incarnation) land in pendFin exactly as before.
// finHit pairs a live task with the version a FINALIZE_BATCH run wants
// finalized (scratch element; see node.finHits).
type finHit struct {
	t   *task
	ver event.Version
}

func (n *node) handleFinalizeBatch(m transport.Message) {
	hits := n.finHits[:0]
	defer func() {
		clear(hits[:cap(hits)])
		n.finHits = hits[:0]
	}()
	n.mu.Lock()
	for _, f := range m.Finals {
		if t := n.tasks[f.ID]; t != nil {
			hits = append(hits, finHit{t, f.Version})
		} else if !n.committed[f.ID] {
			n.pendFin[f.ID] = f.Version
		}
	}
	n.mu.Unlock()
	finalized := false
	var stash []transport.FinalizeRef
	for _, h := range hits {
		t := h.t
		t.mu.Lock()
		switch {
		case t.ev.Version == h.ver && !t.evFinal:
			t.evFinal = true
			t.ev.Speculative = false
			finalized = true
		case h.ver > t.ev.Version:
			stash = append(stash, transport.FinalizeRef{ID: t.ev.ID, Version: h.ver})
		}
		t.mu.Unlock()
	}
	if len(stash) > 0 {
		n.mu.Lock()
		for _, f := range stash {
			if !n.committed[f.ID] {
				n.pendFin[f.ID] = f.Version
			}
		}
		n.mu.Unlock()
	}
	if finalized {
		n.notifyCommitter()
	}
}

// handleRevoke cancels the task consuming a revoked event and revokes its
// own outputs (cascading the revocation downstream).
func (n *node) handleRevoke(m transport.Message) {
	n.mu.Lock()
	t := n.tasks[m.ID]
	if t == nil {
		// The REVOKE overtook its event on the control lane. Count it so
		// admission drops exactly one queued incarnation on arrival.
		if !n.committed[m.ID] {
			n.pendRevoke[m.ID]++
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	// The revoker (the event's source operator) caused whatever work this
	// cancellation wastes; charge it on the caused-by side of the ledger.
	if n.prof != nil {
		n.eng.causedBy(m.ID.Source)
	}
	n.cancelTask(t, "revoke")
}

// cancelTask aborts and retires a task; cause ("revoke" or "error") feeds
// the core_aborts_total metric and the abort trace span.
func (n *node) cancelTask(t *task, cause string) {
	t.mu.Lock()
	if t.state == taskCommitted || t.state == taskCancelled {
		t.mu.Unlock()
		return
	}
	t.state = taskCancelled
	tx := t.tx
	sent := t.sent
	t.sent = nil
	inputID := t.ev.ID
	inTrace := t.ev.Trace
	attemptNs := t.attemptNs
	if t.tainted {
		t.tainted = false
		n.openTainted.Add(-1)
	}
	throttled := t.throttleHeld
	t.throttleHeld = false
	t.mu.Unlock()
	if throttled {
		n.throttle.Release(true)
	}
	if m := n.eng.met; m != nil {
		switch cause {
		case "revoke":
			m.abortsRevoke.Inc()
		default:
			m.abortsError.Inc()
		}
		if len(sent) > 0 {
			m.cascadeAborts.Inc()
		}
		m.cascadeSize.Observe(int64(len(sent)))
	}
	// Ledger charges mirror the metric increments above exactly, but are
	// independent of them: cluster partition engines run without a metrics
	// registry yet still profile.
	if np := n.prof; np != nil {
		c := profiler.CauseError
		if cause == "revoke" {
			c = profiler.CauseRevoke
		}
		n.chargeAbort(c, time.Duration(attemptNs))
		np.RevokedOutputs(len(sent))
	}
	if tr := n.eng.tracer; tr != nil {
		tr.RecordTrace(n.spec.Name, inputID.String(), inTrace, metrics.PhaseAbort, "cause="+cause)
	}
	if tx != nil {
		tx.Abort()
	}
	for _, rec := range sent {
		n.revokeRecord(rec)
	}
	n.notifyCommitter()
}

func (n *node) revokeRecord(rec *outRecord) {
	n.mu.Lock()
	delete(n.outBuf, rec.id)
	n.mu.Unlock()
	if m := n.eng.met; m != nil {
		m.revokes.Inc()
	}
	if tr := n.eng.tracer; tr != nil {
		tr.RecordTrace(n.spec.Name, rec.id.String(), rec.trace, metrics.PhaseRevoke, "")
	}
	n.deliverToPort(rec.port, transport.Message{
		Type: transport.MsgRevoke, ID: rec.id, Version: rec.version,
	})
}

func (n *node) handleAck(m transport.Message) {
	n.mu.Lock()
	n.ackLocked(m.ID)
	n.mu.Unlock()
}

// handleAckBatch prunes a whole commit group's worth of output-buffer
// entries under a single lock acquisition.
func (n *node) handleAckBatch(m transport.Message) {
	n.mu.Lock()
	for _, f := range m.Finals {
		n.ackLocked(f.ID)
	}
	n.mu.Unlock()
}

func (n *node) ackLocked(id event.ID) {
	if rec, ok := n.outBuf[id]; ok {
		rec.pendingAcks--
		if rec.pendingAcks <= 0 {
			delete(n.outBuf, id)
		}
	}
}

// handleReplay re-sends every unacknowledged buffered output, oldest
// first, with its current speculation state. Nodes that already saw an
// event drop it as a duplicate (and re-ACK).
func (n *node) handleReplay() {
	n.mu.Lock()
	recs := make([]*outRecord, 0, len(n.outBuf))
	for _, r := range n.outBuf {
		recs = append(recs, r)
	}
	n.mu.Unlock()
	if m := n.eng.met; m != nil {
		m.replays.Inc()
		m.replayed.Add(uint64(len(recs)))
	}
	// Oldest first so downstream admission order approximates the original.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].seq < recs[j-1].seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	for _, rec := range recs {
		spec := !rec.finalSent.Load()
		if tr := n.eng.tracer; tr != nil {
			phase := metrics.PhaseFinalOut
			if spec {
				phase = metrics.PhaseSpecOut
			}
			tr.RecordTrace(n.spec.Name, rec.id.String(), rec.trace, phase, "replay")
		}
		n.deliverToPort(rec.port, transport.Message{
			Type:  transport.MsgEvent,
			Event: rec.toEvent(spec),
		})
	}
}

// handleReexec re-dispatches a task whose transaction was aborted.
func (n *node) handleReexec(c cmdReexec) {
	t := c.t
	t.mu.Lock()
	if t.tx != c.tx || t.state == taskCancelled || t.state == taskCommitted {
		t.mu.Unlock()
		return
	}
	if t.state == taskExecuting {
		// The worker will observe the conflict and requeue itself.
		t.mu.Unlock()
		return
	}
	t.state = taskQueued
	t.tx = nil
	t.cursor = 0
	t.published = false
	t.mu.Unlock()
	n.cReexec.Add(1)
	if np := n.prof; np != nil {
		np.Reexec()
	}
	n.execQ.Push(t)
	// Deferred workers must re-pop: the re-queued task may be the commit
	// head (a re-execution always precedes every younger queued task).
	n.throttle.Wake()
}

// handleInject publishes a source event: buffered for replay and sent
// final downstream.
func (n *node) handleInject(c cmdInject) {
	n.mu.Lock()
	n.outEmitSeq++
	rec := &outRecord{
		id:          c.ev.ID,
		port:        0,
		ts:          c.ev.Timestamp,
		key:         c.ev.Key,
		payload:     c.ev.Payload,
		trace:       c.ev.Trace,
		pendingAcks: n.bufferedLinks(0),
		seq:         n.outEmitSeq,
	}
	rec.finalSent.Store(true)
	if rec.pendingAcks > 0 {
		n.outBuf[rec.id] = rec
	}
	n.mu.Unlock()
	n.cFinalSent.Add(1)
	if tr := n.eng.tracer; tr != nil {
		tr.RecordTrace(n.spec.Name, c.ev.ID.String(), c.ev.Trace, metrics.PhaseIngress, "source")
	}
	n.deliverToPort(0, transport.Message{Type: transport.MsgEvent, Event: c.ev})
}

// handleInjectBatch publishes a batch of source events under one lock
// acquisition and one downstream delivery: the output-buffer records are
// created together and the whole run travels as a single EVENT_BATCH
// message. Per-event replay semantics are unchanged — each event gets its
// own buffered record and is ACKed and pruned individually.
func (n *node) handleInjectBatch(c cmdInjectBatch) {
	if len(c.evs) == 0 {
		return
	}
	n.mu.Lock()
	for _, ev := range c.evs {
		n.outEmitSeq++
		rec := &outRecord{
			id:          ev.ID,
			port:        0,
			ts:          ev.Timestamp,
			key:         ev.Key,
			payload:     ev.Payload,
			trace:       ev.Trace,
			pendingAcks: n.bufferedLinks(0),
			seq:         n.outEmitSeq,
		}
		rec.finalSent.Store(true)
		if rec.pendingAcks > 0 {
			n.outBuf[rec.id] = rec
		}
	}
	n.mu.Unlock()
	n.cFinalSent.Add(uint64(len(c.evs)))
	if m := n.eng.met; m != nil {
		m.batchSourceBatches.Inc()
		m.batchSourceEvents.Add(uint64(len(c.evs)))
	}
	if tr := n.eng.tracer; tr != nil {
		for _, ev := range c.evs {
			tr.RecordTrace(n.spec.Name, ev.ID.String(), ev.Trace, metrics.PhaseIngress, "source")
		}
	}
	n.deliverToPort(0, transport.Message{Type: transport.MsgEventBatch, Events: c.evs})
}

// publishSourceEvent is called by SourceHandle.Emit.
func (n *node) publishSourceEvent(ev event.Event) error {
	if n.stopFlag.Load() {
		return ErrStopped
	}
	n.mailbox.Push(cmdInject{ev: ev})
	return nil
}

// publishSourceBatch is called by SourceHandle.EmitBatch: one mailbox
// push for the whole admitted run.
func (n *node) publishSourceBatch(evs []event.Event) error {
	if n.stopFlag.Load() {
		return ErrStopped
	}
	n.mailbox.Push(cmdInjectBatch{evs: evs})
	return nil
}

// deliverToPort fans a message out to every link on a port.
func (n *node) deliverToPort(port int, m transport.Message) {
	for _, l := range n.links[port] {
		l.deliver(m)
	}
}

// ackUpstream notifies the upstream feeding the given input that an event
// will never be requested again.
func (n *node) ackUpstream(input int, id event.ID) {
	n.mu.Lock()
	up := n.upstream[input]
	n.mu.Unlock()
	if up == nil {
		return
	}
	up.send(transport.Message{Type: transport.MsgAck, ID: id})
}

// appendRecords submits decision records to the log and wires the
// stability callback into the task.
func (n *node) appendRecords(t *task, recs []wal.Record) {
	_, err := n.log.Append(recs, func(err error) {
		if err != nil {
			n.fail(fmt.Errorf("decision log: %w", err))
			return
		}
		n.mirrorStable(recs)
		var maxLSN wal.LSN
		for _, r := range recs {
			if r.LSN > maxLSN {
				maxLSN = r.LSN
			}
		}
		t.mu.Lock()
		t.pendingLogs--
		if maxLSN > t.maxLSN {
			t.maxLSN = maxLSN
		}
		t.mu.Unlock()
		n.notifyCommitter()
	})
	if err != nil {
		n.fail(fmt.Errorf("submit decision log: %w", err))
		t.mu.Lock()
		t.pendingLogs--
		t.mu.Unlock()
	}
}

// ---------- workers ----------

// worker executes queued tasks under speculative transactions.
func (n *node) worker() {
	defer n.wg.Done()
	for {
		t, ok := n.execQ.Pop()
		if !ok {
			return
		}
		n.runTask(t)
	}
}

func (n *node) runTask(t *task) {
	t.mu.Lock()
	if t.state != taskQueued || t.tx != nil {
		t.mu.Unlock()
		return
	}
	attempts := t.attempts
	t.mu.Unlock()
	// Promptness/waste trade-off (paper §4): back off retries so doomed
	// speculative executions stop burning resources while the conflicting
	// older transaction is still open.
	if backoff := n.eng.opts.ConflictBackoff; backoff > 0 && attempts > 0 {
		time.Sleep(time.Duration(attempts) * backoff)
	}
	// Speculation throttle: a task takes one slot for its whole open
	// lifetime (kept across re-executions, released at commit or cancel).
	// The commit-head task bypasses the cap — strict in-order commit means
	// it must always be able to run, or younger slot-holders would
	// deadlock the pipeline. A worker must never sleep holding a refused
	// task: with every worker parked on young tasks, the commit head would
	// sit in the run queue with nobody to execute it. Instead the task is
	// handed back (the seq-ordered queue resurfaces the oldest work first)
	// and the worker parks until the throttle changes, then re-pops.
	if n.throttle != nil {
		t.mu.Lock()
		need := !t.throttleHeld && t.state == taskQueued && t.tx == nil
		t.mu.Unlock()
		if need {
			gen := n.throttle.Gen()
			admitted, closed := n.throttle.TryAdmit(func() bool { return t.seq <= n.nextCommit.Load() })
			if closed {
				return // shutting down
			}
			if !admitted {
				n.execQ.Push(t)
				n.throttle.WaitSince(gen)
				return
			}
			t.mu.Lock()
			if t.throttleHeld {
				t.mu.Unlock()
				n.throttle.Release(false) // lost an acquire race: give back
			} else {
				t.throttleHeld = true
				t.mu.Unlock()
			}
		}
	}
	t.mu.Lock()
	if t.state != taskQueued || t.tx != nil {
		t.mu.Unlock()
		return
	}
	tx := n.mem.Begin(t.seq)
	t.tx = tx
	t.state = taskExecuting
	t.attempts++
	ev := t.ev.Clone()
	decisions := t.decisions // immutable during execution
	t.mu.Unlock()

	tx.OnAbort(func(*stm.Tx) {
		n.mailbox.Push(cmdReexec{t: t, tx: tx})
	})

	// Attempt CPU is only measured when profiling is on; the clock reads
	// bracket the operator call plus STM completion, the work a later
	// abort would discard.
	var attemptStart time.Time
	if n.prof != nil {
		attemptStart = time.Now()
	}
	ctx := &procCtx{t: t, tx: tx, decisions: decisions, truncateAt: -1}
	var err error
	if n.spec.Op != nil {
		err = n.spec.Op.Process(ctx, ev)
	}
	if err == nil {
		err = tx.Complete()
	}
	var attemptDur time.Duration
	if np := n.prof; np != nil {
		attemptDur = time.Since(attemptStart)
		np.AttemptCPU(attemptDur)
		t.mu.Lock()
		t.attemptNs = attemptDur.Nanoseconds()
		t.mu.Unlock()
	}
	if err != nil {
		if errors.Is(err, stm.ErrConflict) {
			t.mu.Lock()
			if t.state == taskExecuting {
				t.state = taskQueued
			}
			t.mu.Unlock()
			if m := n.eng.met; m != nil {
				m.abortsConflict.Inc()
			}
			n.chargeAbort(profiler.CauseConflict, attemptDur)
			if tr := n.eng.tracer; tr != nil {
				tr.RecordTrace(n.spec.Name, ev.ID.String(), ev.Trace, metrics.PhaseAbort, "cause=conflict")
			}
			// The task keeps its throttle slot across the retry, but the
			// wasted attempt feeds the abort window so the cap tightens
			// under heavy conflict churn.
			n.throttle.Observe(true)
			tx.Abort()
			n.mailbox.Push(cmdReexec{t: t, tx: tx})
			return
		}
		n.fail(fmt.Errorf("node %q event %s: %w", n.spec.Name, ev.ID, err))
		tx.Abort()
		n.cancelTask(t, "error")
		return
	}

	t.mu.Lock()
	if t.state != taskExecuting || t.tx != tx {
		t.mu.Unlock()
		tx.Abort()
		return
	}
	t.state = taskOpen
	t.published = !n.spec.Speculative // speculative nodes publish below
	if ctx.truncateAt >= 0 && ctx.truncateAt < len(t.decisions) {
		t.decisions = t.decisions[:ctx.truncateAt]
	}
	t.decisions = append(t.decisions, ctx.taken...)
	t.outs = ctx.outs
	newDecs := ctx.taken
	if len(newDecs) > 0 {
		t.pendingLogs++
	}
	t.mu.Unlock()

	if len(newDecs) > 0 {
		recs := make([]wal.Record, len(newDecs))
		for i, d := range newDecs {
			recs[i] = wal.Record{Kind: d.kind, Operator: n.opID, Event: ev.ID, Value: d.value}
		}
		n.appendRecords(t, recs)
	}
	n.cExecuted.Add(1)
	if tr := n.eng.tracer; tr != nil && tr.Keeps(ev.Trace) {
		tr.RecordTrace(n.spec.Name, ev.ID.String(), ev.Trace, metrics.PhaseExec,
			fmt.Sprintf("outs=%d", len(ctx.outs)))
	}
	if n.spec.Speculative {
		n.publishOutputs(t)
	}
	n.notifyCommitter()
}

// computeTainted decides whether the task's outputs must be marked
// speculative right now (paper §3.1's fine-grained rule, plus the TaintAll
// and StrictFinality ablations).
func (n *node) computeTainted(t *task) bool {
	if !t.evFinal || t.pendingLogs > 0 {
		return true
	}
	if n.eng.opts.TaintAll {
		return n.committedBelow(t.seq)
	}
	if n.eng.opts.StrictFinality &&
		(n.openTainted.Load() > 0 || n.committedBelow(t.seq)) {
		// Any open tainted task, or ANY older uncommitted task: an older
		// task that has not even executed yet can still write state this
		// task already read, failing its validation at commit time after
		// its output went out final (the §6.1 hole, widest form).
		return true
	}
	return t.tx.DepsOpen() > 0
}

// committedBelow reports whether any task with a smaller sequence is still
// uncommitted.
func (n *node) committedBelow(seq int64) bool {
	return n.nextCommit.Load() < seq
}

// publishOutputs sends the current execution's outputs downstream,
// diffing against what was already sent: unchanged outputs are left
// alone, changed ones are re-sent as a higher version, vanished ones are
// revoked (paper §3.1).
func (n *node) publishOutputs(t *task) {
	type sendOp struct {
		rec  *outRecord
		spec bool
	}
	var sends []sendOp
	var revokes []*outRecord

	t.mu.Lock()
	if t.state != taskOpen {
		t.mu.Unlock()
		return
	}
	spec := n.computeTainted(t)
	inputID := t.ev.ID
	inTrace := t.ev.Trace
	if spec && !t.tainted {
		t.tainted = true
		n.openTainted.Add(1)
	}
	for k, out := range t.outs {
		if k < len(t.sent) {
			rec := t.sent[k]
			if rec.matches(out.port, out.ts, out.key, out.payload) {
				continue
			}
			if rec.finalSent.Load() {
				// A previously-final output changed: the theoretical hole
				// in fine-grained finality (DESIGN.md §6.1). Count it and
				// prefer correct content over the finality promise.
				n.finalViolations.Add(1)
				rec.finalSent.Store(false)
			}
			rec.version++
			rec.port, rec.ts, rec.key, rec.payload = out.port, out.ts, out.key, out.payload
			sends = append(sends, sendOp{rec: rec, spec: true})
			continue
		}
		n.mu.Lock()
		n.outEmitSeq++
		rec := &outRecord{
			id:          outputID(n.opID, t.ev.ID, k),
			port:        out.port,
			ts:          out.ts,
			key:         out.key,
			payload:     out.payload,
			trace:       inTrace,
			pendingAcks: n.bufferedLinks(out.port),
			seq:         n.outEmitSeq,
		}
		if !spec {
			rec.finalSent.Store(true)
		}
		if rec.pendingAcks > 0 {
			n.outBuf[rec.id] = rec
		}
		n.mu.Unlock()
		t.sent = append(t.sent, rec)
		sends = append(sends, sendOp{rec: rec, spec: spec})
	}
	if len(t.outs) < len(t.sent) {
		revokes = append(revokes, t.sent[len(t.outs):]...)
		t.sent = t.sent[:len(t.outs)]
	}
	t.published = true
	t.mu.Unlock()

	for _, s := range sends {
		if s.spec {
			n.cSpecSent.Add(1)
			if m := n.eng.met; m != nil {
				if s.rec.specAt.IsZero() {
					s.rec.specAt = time.Now()
				}
				m.specDepth.Observe(n.openTainted.Load())
			}
		} else {
			n.cFinalSent.Add(1)
		}
		if tr := n.eng.tracer; tr != nil {
			phase := metrics.PhaseFinalOut
			if s.spec {
				phase = metrics.PhaseSpecOut
			}
			tr.RecordTrace(n.spec.Name, s.rec.id.String(), inTrace, phase, "from="+inputID.String())
		}
		n.deliverToPort(s.rec.port, transport.Message{
			Type: transport.MsgEvent, Event: s.rec.toEvent(s.spec),
		})
	}
	for _, rec := range revokes {
		n.revokeRecord(rec)
	}
}

// ---------- committer ----------

// notifyCommitter wakes the commit loop to re-evaluate the head task.
// It must never block for long: it is called from storage-pool callbacks.
func (n *node) notifyCommitter() {
	n.commitMu.Lock()
	n.commitGen++
	n.commitCond.Broadcast()
	n.commitMu.Unlock()
}

// commitSignalGen reads the current notification generation.
func (n *node) commitSignalGen() uint64 {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	return n.commitGen
}

// waitCommitSignal blocks until the generation moves past seen (or stop).
func (n *node) waitCommitSignal(seen uint64) {
	n.commitMu.Lock()
	for n.commitGen == seen && !n.stopFlag.Load() {
		n.commitCond.Wait()
	}
	n.commitMu.Unlock()
}

// committer commits tasks strictly in arrival order once authorized:
// executed, input final, decisions stable, STM dependencies committed
// (paper §3: "gets the authorization to commit"). With flow batching
// configured it gathers the run of consecutive already-ready head tasks
// and commits them as one STM group — one version-clock bump, one
// FINALIZE frame per port — without ever waiting for a batch to fill.
func (n *node) committer() {
	defer n.wg.Done()
	batch := n.spec.Flow.Batch()
	for !n.stopFlag.Load() {
		gen := n.commitSignalGen()
		if batch > 1 {
			n.commitBatch(gen, batch)
			continue
		}
		n.mu.Lock()
		t := n.bySeq[n.nextCommit.Load()]
		n.mu.Unlock()
		if t == nil {
			n.waitCommitSignal(gen)
			continue
		}
		t.mu.Lock()
		state := t.state
		ready := state == taskOpen && t.published && t.evFinal && t.pendingLogs == 0
		tx := t.tx
		t.mu.Unlock()
		switch {
		case state == taskCancelled:
			n.cleanupHead(t)
			continue
		case !ready:
			n.waitCommitSignal(gen)
			continue
		}
		err := tx.Commit()
		switch {
		case err == nil:
			n.finishCommit(t, nil)
		case errors.Is(err, stm.ErrDepsOpen):
			// Dependencies are earlier tasks, which commit first in seq
			// order; transient — yield and retry.
			time.Sleep(10 * time.Microsecond)
		case errors.Is(err, stm.ErrConflict):
			n.commitConflict(t, tx)
			n.waitCommitSignal(gen)
		default:
			n.fail(fmt.Errorf("commit seq %d: %w", t.seq, err))
			n.cleanupHead(t)
		}
	}
}

// commitConflict records the abort accounting for a head task whose
// commit-time validation failed (or whose transaction was cascade-aborted)
// and makes sure a re-execution is queued.
func (n *node) commitConflict(t *task, tx *stm.Tx) {
	t.mu.Lock()
	evID := t.ev.ID
	evTrace := t.ev.Trace
	attemptNs := t.attemptNs
	t.mu.Unlock()
	if m := n.eng.met; m != nil {
		m.abortsConflict.Inc()
	}
	n.chargeAbort(profiler.CauseConflict, time.Duration(attemptNs))
	if tr := n.eng.tracer; tr != nil {
		tr.RecordTrace(n.spec.Name, evID.String(), evTrace, metrics.PhaseAbort, "cause=conflict")
	}
	n.mailbox.Push(cmdReexec{t: t, tx: tx})
}

// commitBatch is one turn of the batched committer: gather the run of
// consecutive ready head tasks (up to max), group-commit their
// transactions under one version-clock bump, and run the post-commit
// protocol with FINALIZE and late-final deliveries coalesced into one
// frame per port. Readiness is evaluated exactly as on the single-commit
// path; a lone ready task commits immediately (batching adds no latency,
// it only amortizes runs that are already ready).
func (n *node) commitBatch(gen uint64, max int) {
	head := n.nextCommit.Load()
	run := n.commitRun[:0]
	txs := n.commitTxs[:0]
	defer func() {
		// Drop the pointers so committed tasks do not linger reachable
		// until the next gather overwrites their slots.
		clear(run[:cap(run)])
		clear(txs[:cap(txs)])
		n.commitRun, n.commitTxs = run[:0], txs[:0]
	}()
	for len(run) < max {
		n.mu.Lock()
		t := n.bySeq[head+int64(len(run))]
		n.mu.Unlock()
		if t == nil {
			break
		}
		t.mu.Lock()
		state := t.state
		ready := state == taskOpen && t.published && t.evFinal && t.pendingLogs == 0
		tx := t.tx
		t.mu.Unlock()
		if state == taskCancelled {
			if len(run) > 0 {
				break // commit the gathered prefix first
			}
			n.cleanupHead(t)
			return
		}
		if !ready {
			break
		}
		run = append(run, t)
		txs = append(txs, tx)
	}
	if len(run) == 0 {
		n.waitCommitSignal(gen)
		return
	}
	committed, err := n.mem.CommitGroup(txs)
	if committed > 0 {
		if m := n.eng.met; m != nil {
			m.batchCommitGroups.Inc()
			m.batchCommitEvents.Add(uint64(committed))
			m.batchOccupancy.Observe(int64(committed))
		}
		var fb finFlush
		n.retireGroup(run[:committed], &fb)
		fb.flush(n)
	}
	switch {
	case err == nil:
	case errors.Is(err, stm.ErrDepsOpen):
		time.Sleep(10 * time.Microsecond)
	case errors.Is(err, stm.ErrConflict):
		n.commitConflict(run[committed], txs[committed])
		if committed == 0 {
			n.waitCommitSignal(gen)
		}
	default:
		n.fail(fmt.Errorf("commit seq %d: %w", run[committed].seq, err))
		n.cleanupHead(run[committed])
	}
}

// cleanupHead removes a cancelled head task and advances the commit
// cursor.
func (n *node) cleanupHead(t *task) {
	n.mu.Lock()
	delete(n.bySeq, t.seq)
	delete(n.tasks, t.ev.ID)
	n.mu.Unlock()
	t.mu.Lock()
	throttled := t.throttleHeld
	t.throttleHeld = false
	t.mu.Unlock()
	if throttled {
		n.throttle.Release(true)
	}
	n.nextCommit.Add(1)
	// The head moved: re-evaluate parked tasks' head-bypass even when no
	// slot was released.
	n.throttle.Wake()
}

// finFlush accumulates the control traffic of a commit group: FINALIZE
// notices and late-final events per output port, and upstream ACKs per
// input, delivered as one batched frame each when the group completes.
// Order within a port is commit order, exactly as with per-task delivery.
type finFlush struct {
	finals map[int][]transport.FinalizeRef
	lates  map[int][]event.Event
	acks   map[int][]transport.FinalizeRef
}

func (fb *finFlush) addFinal(port int, rec *outRecord) {
	if fb.finals == nil {
		fb.finals = make(map[int][]transport.FinalizeRef)
	}
	fb.finals[port] = append(fb.finals[port], transport.FinalizeRef{ID: rec.id, Version: rec.version})
}

func (fb *finFlush) addLate(port int, ev event.Event) {
	if fb.lates == nil {
		fb.lates = make(map[int][]event.Event)
	}
	fb.lates[port] = append(fb.lates[port], ev)
}

func (fb *finFlush) addAck(input int, id event.ID) {
	if fb.acks == nil {
		fb.acks = make(map[int][]transport.FinalizeRef)
	}
	fb.acks[input] = append(fb.acks[input], transport.FinalizeRef{ID: id})
}

// flush delivers the accumulated batches: one FINALIZE_BATCH and/or one
// EVENT_BATCH message per port, and one ACK_BATCH per input upstream.
func (fb *finFlush) flush(n *node) {
	for port, evs := range fb.lates {
		n.deliverToPort(port, transport.Message{Type: transport.MsgEventBatch, Events: evs})
	}
	for port, refs := range fb.finals {
		n.deliverToPort(port, transport.Message{Type: transport.MsgFinalizeBatch, Finals: refs})
	}
	for input, refs := range fb.acks {
		n.mu.Lock()
		up := n.upstream[input]
		n.mu.Unlock()
		if up == nil {
			continue
		}
		up.send(transport.Message{Type: transport.MsgAckBatch, Finals: refs})
	}
}

// finishCommit runs the post-commit protocol for one task; the group
// committer calls retireGroup directly to amortize the bookkeeping.
func (n *node) finishCommit(t *task, fb *finFlush) {
	one := [1]*task{t}
	n.retireGroup(one[:], fb)
}

// retirePost carries one task's retirement state between the phases of
// retireGroup.
type retirePost struct {
	t         *task
	inputID   event.ID
	inTrace   uint64
	input     int
	maxLSN    wal.LSN
	throttled bool
	ckptDue   bool
}

// retireGroup runs the post-commit protocol for a run of committed
// tasks: finalize speculative outputs (or publish held outputs for
// non-speculative nodes), ACK the consumed events upstream, advance the
// commit cursor, and checkpoint if due. Called with commitMu held. With
// fb non-nil (batched committer) the FINALIZE, late-final and ACK
// deliveries are deferred into fb so the whole group ships one frame per
// port or input. The map bookkeeping for the whole run happens under ONE
// n.mu hold, and the commit cursor advances once by the run length —
// per-task effects are otherwise identical to one-at-a-time retirement.
func (n *node) retireGroup(run []*task, fb *finFlush) {
	posts := n.retirePosts[:0]
	defer func() {
		clear(posts[:cap(posts)]) // drop task pointers held in dead slots
		n.retirePosts = posts[:0]
	}()
	for _, t := range run {
		t.mu.Lock()
		t.state = taskCommitted
		if t.tainted {
			t.tainted = false
			n.openTainted.Add(-1)
		}
		p := retirePost{
			t:         t,
			inputID:   t.ev.ID,
			inTrace:   t.ev.Trace,
			input:     t.input,
			maxLSN:    t.maxLSN,
			throttled: t.throttleHeld,
		}
		t.throttleHeld = false

		var finalizes []*outRecord
		var lateFinals []*outRecord
		if n.spec.Speculative {
			for _, rec := range t.sent {
				if rec.finalSent.CompareAndSwap(false, true) {
					finalizes = append(finalizes, rec)
				}
			}
		} else {
			// Baseline path: outputs were held; publish them final now.
			for k, out := range t.outs {
				n.mu.Lock()
				n.outEmitSeq++
				rec := &outRecord{
					id:          outputID(n.opID, p.inputID, k),
					port:        out.port,
					ts:          out.ts,
					key:         out.key,
					payload:     out.payload,
					trace:       p.inTrace,
					pendingAcks: n.bufferedLinks(out.port),
					seq:         n.outEmitSeq,
				}
				rec.finalSent.Store(true)
				if rec.pendingAcks > 0 {
					n.outBuf[rec.id] = rec
				}
				n.mu.Unlock()
				t.sent = append(t.sent, rec)
				lateFinals = append(lateFinals, rec)
			}
		}
		t.mu.Unlock()

		for _, rec := range finalizes {
			if m := n.eng.met; m != nil && !rec.specAt.IsZero() {
				m.specWindow.Record(time.Since(rec.specAt))
			}
			if tr := n.eng.tracer; tr != nil {
				tr.RecordTrace(n.spec.Name, rec.id.String(), rec.trace, metrics.PhaseFinalize, "")
			}
			if fb != nil {
				fb.addFinal(rec.port, rec)
				continue
			}
			n.deliverToPort(rec.port, transport.Message{
				Type: transport.MsgFinalize, ID: rec.id, Version: rec.version,
			})
		}
		for _, rec := range lateFinals {
			n.cFinalSent.Add(1)
			if tr := n.eng.tracer; tr != nil {
				tr.RecordTrace(n.spec.Name, rec.id.String(), rec.trace, metrics.PhaseFinalOut, "from="+p.inputID.String())
			}
			if fb != nil {
				fb.addLate(rec.port, rec.toEvent(false))
				continue
			}
			n.deliverToPort(rec.port, transport.Message{
				Type: transport.MsgEvent, Event: rec.toEvent(false),
			})
		}
		posts = append(posts, p)
	}

	ckpt := n.spec.Traits.Stateful && n.spec.CheckpointEvery > 0
	n.mu.Lock()
	for i := range posts {
		p := &posts[i]
		n.committed[p.inputID] = true
		delete(n.tasks, p.inputID)
		delete(n.bySeq, p.t.seq)
		delete(n.pendFin, p.inputID)
		delete(n.pendRevoke, p.inputID)
		n.lastCommitted[p.input] = p.inputID
		if p.maxLSN > n.coveredLSN {
			n.coveredLSN = p.maxLSN
		}
		n.commitCount++
		if ckpt {
			n.sinceCkpt = append(n.sinceCkpt, ackTarget{input: p.input, id: p.inputID})
			p.ckptDue = n.commitCount%uint64(n.spec.CheckpointEvery) == 0
		}
	}
	n.mu.Unlock()

	for i := range posts {
		p := &posts[i]
		// Stateless nodes (and stateful ones without periodic checkpoints)
		// ACK at commit; checkpointing stateful nodes batch their ACKs until
		// the covering checkpoint is stable (paper §2.2: upstream keeps
		// events processed after the last checkpoint).
		if !ckpt {
			if fb != nil {
				fb.addAck(p.input, p.inputID)
			} else {
				n.ackUpstream(p.input, p.inputID)
			}
		}
		if p.ckptDue {
			n.takeCheckpoint()
		}
		if p.throttled {
			n.throttle.Release(false)
		}
	}
	n.nextCommit.Add(int64(len(posts)))
	n.throttle.Wake() // head moved: re-evaluate parked head-bypass waiters
	n.cCommitted.Add(uint64(len(posts)))
	if m := n.eng.met; m != nil || n.healthLat != nil {
		for i := range posts {
			if t := posts[i].t; !t.admitted.IsZero() {
				lat := time.Since(t.admitted)
				if m != nil {
					m.finalizeLat.Record(lat)
				}
				n.healthLat.Record(lat)
			}
		}
	}
	if tr := n.eng.tracer; tr != nil {
		for i := range posts {
			tr.RecordTrace(n.spec.Name, posts[i].inputID.String(), posts[i].inTrace, metrics.PhaseCommit, "")
		}
	}
}

// takeCheckpoint snapshots the operator state, persists it, marks the log
// and releases the batched upstream ACKs once the snapshot is saved.
func (n *node) takeCheckpoint() {
	n.rngMu.Lock()
	randState := n.rng.State()
	n.rngMu.Unlock()

	n.mu.Lock()
	n.ckptEpoch++
	snap := &checkpoint.Snapshot{
		Operator:       n.opID,
		Epoch:          n.ckptEpoch,
		CoveredLSN:     uint64(n.coveredLSN),
		RandState:      randState,
		Memory:         nil, // filled below, outside n.mu
		InputPositions: make(map[int]event.ID, len(n.lastCommitted)),
	}
	for i, id := range n.lastCommitted {
		snap.InputPositions[i] = id
	}
	// Committed-but-unacknowledged outputs ride in the snapshot: their
	// inputs are covered (pruned upstream, below the replay start), so
	// after a crash nothing else could regenerate them. Non-final records
	// belong to uncommitted tasks, which log replay re-executes.
	pending := make([]*outRecord, 0, len(n.outBuf))
	for _, rec := range n.outBuf {
		if rec.finalSent.Load() {
			pending = append(pending, rec)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })
	for _, rec := range pending {
		snap.Outputs = append(snap.Outputs, checkpoint.Output{
			ID: rec.id, Port: rec.port, Timestamp: rec.ts,
			Key: rec.key, Version: uint32(rec.version), Payload: rec.payload,
			Trace: rec.trace,
		})
	}
	acks := n.sinceCkpt
	n.sinceCkpt = nil
	covered := n.coveredLSN
	n.mu.Unlock()

	snap.Memory = n.mem.Snapshot()
	if err := n.eng.store.Save(snap); err != nil {
		n.fail(fmt.Errorf("save checkpoint: %w", err))
		return
	}
	// Write the covering mark and mirror it (recovery reads the mirror to
	// know which prefix of the log the snapshot supersedes). The batched
	// upstream ACKs are released only once the mark is stable: releasing
	// them earlier opens a crash window in which upstream buffers are
	// pruned while the replay plan still demands the covered events.
	mark := []wal.Record{{Kind: wal.KindCheckpointMark, Operator: n.opID, Value: uint64(covered)}}
	_, err := n.log.Append(mark, func(err error) {
		if err != nil {
			n.fail(fmt.Errorf("mark checkpoint: %w", err))
			return
		}
		n.mirrorStable(mark)
		// ACKs before Truncate: a covered event is redeliverable until its
		// ACK lands, and recovery identifies covered redeliveries by their
		// input records — those must outlive the redelivery window.
		for _, a := range acks {
			n.ackUpstream(a.input, a.id)
		}
		n.log.Truncate(covered)
	})
	if err != nil {
		n.fail(fmt.Errorf("mark checkpoint: %w", err))
	}
}

// mirrorChunk is the fixed capacity of one stableRecs chunk.
const mirrorChunk = 1024

// mirrorStable retains stable decision records for recovery replay.
func (n *node) mirrorStable(recs []wal.Record) {
	n.recMu.Lock()
	for len(recs) > 0 {
		last := len(n.stableRecs) - 1
		if last < 0 || len(n.stableRecs[last]) == mirrorChunk {
			n.stableRecs = append(n.stableRecs, make([]wal.Record, 0, mirrorChunk))
			last++
		}
		room := mirrorChunk - len(n.stableRecs[last])
		take := min(room, len(recs))
		n.stableRecs[last] = append(n.stableRecs[last], recs[:take]...)
		recs = recs[take:]
	}
	n.recMu.Unlock()
}

// stableRecords returns this node's stable decision records in LSN order.
func (n *node) stableRecords() []wal.Record {
	n.recMu.Lock()
	total := 0
	for _, c := range n.stableRecs {
		total += len(c)
	}
	out := make([]wal.Record, 0, total)
	for _, c := range n.stableRecs {
		out = append(out, c...)
	}
	n.recMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out
}
