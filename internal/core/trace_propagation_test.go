package core

import (
	"bytes"
	"strconv"
	"testing"

	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/transport"
)

// TestTracePropagationAcrossBridge drives a pipeline split across two
// engines connected by real TCP, each with its own tracer, and asserts
// the tentpole property of distributed latency attribution: the trace id
// minted at the source rides the event through engine A, across the wire
// in the codec's trace trailer, and through engine B — so merging the two
// span files yields one lineage per event covering both processes.
func TestTracePropagationAcrossBridge(t *testing.T) {
	var bufA, bufB bytes.Buffer
	trA := metrics.NewTracerProc(&bufA, "engA")
	trB := metrics.NewTracerProc(&bufB, "engB")

	gA := graph.New()
	srcA := gA.AddNode(graph.Node{Name: "src"})
	mapA := gA.AddNode(graph.Node{Name: "mapper", Op: &operator.Passthrough{}, Traits: operator.MapTraits, Speculative: true})
	gA.Connect(srcA, 0, mapA, 0)
	poolA := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer poolA.Close()
	engA, err := New(gA, Options{Pool: poolA, Seed: 1, Tracer: trA})
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	defer engA.Stop()

	gB := graph.New()
	clsB := gB.AddNode(graph.Node{
		Name:        "classifier",
		Op:          &operator.Classifier{Classes: 2},
		Traits:      operator.ClassifierTraits(2),
		Speculative: true,
	})
	poolB := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer poolB.Close()
	engB, err := New(gB, Options{Pool: poolB, Seed: 2, Tracer: trB})
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.Start(); err != nil {
		t.Fatal(err)
	}
	defer engB.Stop()

	sink := &sinkCollector{}
	if err := engB.Subscribe(clsB, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	h, err := engB.BridgeIn(clsB, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ListenConn("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := engA.BridgeOut(mapA, 0, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const total = 16
	s, err := engA.Source(srcA)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []event.Event
	for i := 0; i < total; i++ {
		ev, err := s.Emit(uint64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, ev)
	}
	if finals := sink.waitFinals(t, total); len(finals) < total {
		t.Fatalf("finals = %d", len(finals))
	}
	engB.Drain()

	// Every sink delivery must still carry the source-derived trace id.
	for _, ev := range sink.finals() {
		if ev.Trace == 0 {
			t.Fatalf("finalized event %s arrived with no trace id", ev.ID)
		}
	}

	if err := trA.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := trB.Flush(); err != nil {
		t.Fatal(err)
	}
	spansA, err := metrics.ReadSpans(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	spansB, err := metrics.ReadSpans(&bufB)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := make(map[string]map[string]bool) // trace → procs seen
	record := func(proc string, spans []metrics.Span) {
		for _, sp := range spans {
			if sp.Trace == "" {
				continue
			}
			if byTrace[sp.Trace] == nil {
				byTrace[sp.Trace] = make(map[string]bool)
			}
			byTrace[sp.Trace][proc] = true
		}
	}
	record("engA", spansA)
	record("engB", spansB)

	for _, ev := range emitted {
		want := event.TraceOf(ev.ID)
		if ev.Trace != want {
			t.Fatalf("source stamped trace %x, want deterministic %x", ev.Trace, want)
		}
		hex := strconv.FormatUint(want, 16)
		procs := byTrace[hex]
		if !procs["engA"] || !procs["engB"] {
			t.Fatalf("lineage %s (event %s) seen in %v, want both engines", hex, ev.ID, procs)
		}
	}
}
