package core

import (
	"sync/atomic"
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/operator"
	"streammine/internal/storage"
)

// benchPipeline drives the 3-op overload chain end to end (burst emit,
// wait for every final) once per iteration, so the flow-controlled and
// unbounded configurations can be compared on the same workload.
func benchPipeline(b *testing.B, fl *flow.Limits) {
	const total = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, src, sinkID := overloadChain(fl, 1)
		pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
		eng, err := New(g, Options{Seed: 41, Pool: pool})
		if err != nil {
			b.Fatal(err)
		}
		var finals atomic.Int64
		if err := eng.Subscribe(sinkID, 0, func(ev event.Event, final bool) {
			if final {
				finals.Add(1)
			}
		}); err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		s, err := eng.Source(src)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for k := 0; k < total; k++ {
			if _, err := s.Emit(uint64(k), operator.EncodeValue(uint64(k))); err != nil {
				b.Fatal(err)
			}
		}
		for finals.Load() < total {
			time.Sleep(50 * time.Microsecond)
		}
		b.StopTimer()
		eng.Stop()
		pool.Close()
	}
	b.ReportMetric(total, "events/op")
}

// BenchmarkPipelineUnbounded is the pre-flow baseline: no mailbox caps,
// no credits, no speculation throttle.
func BenchmarkPipelineUnbounded(b *testing.B) { benchPipeline(b, nil) }

// BenchmarkPipelineFlowControlled runs the same burst with bounded
// mailboxes, credit-gated edges and a speculation cap — the steady-state
// overhead of the flow subsystem.
func BenchmarkPipelineFlowControlled(b *testing.B) {
	benchPipeline(b, &flow.Limits{MailboxCap: 64, MaxOpenSpec: 8})
}
