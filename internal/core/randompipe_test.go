package core

import (
	"fmt"
	"testing"
	"time"

	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
)

// randomOperator draws one operator configuration.
func randomOperator(rng *detrand.Source) (operator.Operator, operator.Traits) {
	switch rng.Intn(7) {
	case 0:
		return &operator.Passthrough{LogDecision: rng.Intn(2) == 0}, operator.Traits{}
	case 1:
		return &operator.Filter{Pred: func(e event.Event) bool { return e.Key%3 != 0 }}, operator.FilterTraits
	case 2:
		n := 2 + rng.Intn(6)
		return &operator.Classifier{Classes: n}, operator.ClassifierTraits(n)
	case 3:
		return &operator.CountWindowAvg{Window: 1 + rng.Intn(5)}, operator.CountWindowTraits
	case 4:
		return &operator.Shedder{DropPerMille: uint64(rng.Intn(300))}, operator.ShedderTraits
	case 5:
		return &operator.Dedup{Capacity: 64 + rng.Intn(64)}, operator.DedupTraits(128)
	default:
		return &operator.SketchOp{Depth: 3, Width: 128, Seed: rng.Uint64()}, operator.SketchTraits(3, 128)
	}
}

// TestRandomPipelines builds randomized linear pipelines (random operators,
// worker counts, speculation flags) and checks structural engine
// invariants after a drain: no errors, every dispatched task committed,
// and speculative sightings at the sink eventually finalized or revoked.
func TestRandomPipelines(t *testing.T) {
	rng := detrand.New(0xC0FFEE)
	for round := 0; round < 12; round++ {
		round := round
		t.Run(fmt.Sprintf("round%02d", round), func(t *testing.T) {
			depth := 1 + rng.Intn(4)
			g := graph.New()
			src := g.AddNode(graph.Node{Name: "src"})
			prev := src
			var last graph.NodeID
			for i := 0; i < depth; i++ {
				op, traits := randomOperator(rng)
				// DedupTraits above is sized for capacity ≤128; bound it.
				n := g.AddNode(graph.Node{
					Name:        fmt.Sprintf("op%d", i),
					Op:          op,
					Traits:      traits,
					Speculative: rng.Intn(4) != 0,
					Workers:     1 + rng.Intn(3),
				})
				g.Connect(prev, 0, n, 0)
				prev, last = n, n
			}
			eng := newTestEngine(t, g, Options{Seed: rng.Uint64()})
			sink := &sinkCollector{}
			if err := eng.Subscribe(last, 0, sink.fn); err != nil {
				t.Fatal(err)
			}
			s, _ := eng.Source(src)
			events := 50 + rng.Intn(150)
			for i := 0; i < events; i++ {
				if _, err := s.Emit(rng.Uint64()%512, operator.EncodeValue(rng.Uint64()%1000)); err != nil {
					t.Fatal(err)
				}
			}
			eng.Drain()
			time.Sleep(2 * time.Millisecond)
			if err := eng.Err(); err != nil {
				t.Fatalf("pipeline error: %v", err)
			}
			for _, node := range g.Nodes() {
				if node.Op == nil {
					continue
				}
				st, err := eng.Stats(node.ID)
				if err != nil {
					t.Fatal(err)
				}
				if st.Committed != st.Dispatched {
					t.Fatalf("node %q: committed %d of %d dispatched",
						node.Name, st.Committed, st.Dispatched)
				}
				if st.FinalViolations != 0 {
					t.Fatalf("node %q: %d finality violations", node.Name, st.FinalViolations)
				}
			}
			// Every speculative sighting at the sink must have been
			// finalized (same ID present among finals) — nothing dangles.
			finalIDs := make(map[event.ID]bool)
			for _, ev := range sink.finals() {
				finalIDs[ev.ID] = true
			}
			for _, ev := range sink.specs() {
				if !finalIDs[ev.ID] {
					t.Fatalf("speculative output %s never finalized", ev.ID)
				}
			}
		})
	}
}
