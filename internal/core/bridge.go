package core

import (
	"fmt"

	"streammine/internal/graph"
	"streammine/internal/transport"
)

// BridgeOut connects a node's output port to a remote engine over TCP:
// data events and control messages flow out on the connection, and ACKs /
// replay requests from the remote side flow back into the node. The
// remote engine must be listening with BridgeIn. The caller owns the
// returned connection and should Close it after Stop.
//
// This is the paper's deployment model (§2.3: operators as processes
// connected by TCP) bridged at engine granularity.
func (e *Engine) BridgeOut(id graph.NodeID, port int, addr string) (transport.Conn, error) {
	n, err := e.node(id)
	if err != nil {
		return nil, err
	}
	if port < 0 || port >= n.spec.OutputPorts {
		return nil, fmt.Errorf("core: node %q has no output port %d", n.spec.Name, port)
	}
	// Data-plane link: dial chaos-targeted so the campaign runner's fault
	// shim (slow/lossy bridge) applies here and never to control links.
	conn, err := transport.DialWith(addr, transport.DialOptions{Chaos: true}, func(m transport.Message) {
		// Control traffic from downstream (ACK, REPLAY).
		n.mailbox.Push(m)
	})
	if err != nil {
		return nil, fmt.Errorf("bridge out %q port %d: %w", n.spec.Name, port, err)
	}
	n.addLink(port, &remoteLink{conn: conn})
	return conn, nil
}

// BridgeIn returns a connection handler that feeds a node input from a
// remote engine. Wire it to a transport listener:
//
//	h, _ := eng.BridgeIn(nodeID, 0)
//	srv, _ := transport.ListenConn("127.0.0.1:7070", h)
//
// Each message on a connection (re)binds it as the input's upstream, so
// the node's ACKs and recovery replay requests travel back over the most
// recent live link — after an upstream redial (ReliableBridge) or a
// failover to a different worker, control traffic must not keep flowing
// into the dead connection.
func (e *Engine) BridgeIn(id graph.NodeID, input int) (transport.ConnHandler, error) {
	n, err := e.node(id)
	if err != nil {
		return nil, err
	}
	if input < 0 {
		return nil, fmt.Errorf("core: negative input %d", input)
	}
	return func(c transport.Conn, m transport.Message) {
		n.mu.Lock()
		if cur, ok := n.upstream[input].(remoteUpstream); !ok || cur.c != c {
			n.upstream[input] = remoteUpstream{c: c}
		}
		n.mu.Unlock()
		m.Input = input
		n.mailbox.Push(m)
	}, nil
}
