package core

import (
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
	"streammine/internal/transport"
)

// condEmitter forwards only events whose payload value is odd; used to
// trigger output revocation when a replacement flips the condition.
type condEmitter struct {
	operator.NopOperator
}

func (c *condEmitter) Process(ctx operator.Context, e event.Event) error {
	if operator.DecodeValue(e.Payload)%2 == 1 {
		return ctx.Emit(e.Key, e.Payload)
	}
	return nil
}

// TestRevokeCascadesDownstream: a speculative input whose replacement
// suppresses the operator's output must revoke the already-sent
// speculative output, cancel the downstream task, and leave no finals.
func TestRevokeCascadesDownstream(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	a := g.AddNode(graph.Node{Name: "cond", Op: &condEmitter{}, Speculative: true})
	b := g.AddNode(graph.Node{Name: "pass", Op: &operator.Passthrough{}, Speculative: true})
	g.Connect(src, 0, a, 0)
	g.Connect(a, 0, b, 0)
	eng := newTestEngine(t, g, Options{Seed: 31})
	sink := &sinkCollector{}
	if err := eng.Subscribe(b, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	nodeA, _ := eng.node(a)

	id := event.ID{Source: 50, Seq: 1}
	// v0: odd payload → output flows speculatively through a and b.
	nodeA.mailbox.Push(transport.Message{Type: transport.MsgEvent, Input: 0, Event: event.Event{
		ID: id, Timestamp: 1, Key: 9, Payload: operator.EncodeValue(3), Speculative: true,
	}})
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.specs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("speculative output never reached the sink")
		}
		time.Sleep(200 * time.Microsecond)
	}

	// v1: even payload → a's re-execution emits nothing → REVOKE cascades.
	nodeA.mailbox.Push(transport.Message{Type: transport.MsgEvent, Input: 0, Event: event.Event{
		ID: id, Timestamp: 1, Key: 9, Payload: operator.EncodeValue(4), Speculative: true, Version: 1,
	}})
	// Finalize the (revised) input; a commits with zero outputs.
	nodeA.mailbox.Push(transport.Message{Type: transport.MsgFinalize, ID: id, Version: 1})

	eng.Drain()
	time.Sleep(5 * time.Millisecond)
	if got := len(sink.finals()); got != 0 {
		t.Fatalf("revoked output finalized anyway: %d finals", got)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// Downstream must hold no open tasks (the revoked task was cancelled).
	nodeB, _ := eng.node(b)
	if open := nodeB.openCount(); open != 0 {
		t.Fatalf("downstream still has %d open tasks", open)
	}
}

// TestSplitFanoutEndToEnd runs the Split operator across real ports with
// one sink per branch and verifies the logged random routing is balanced
// and every event lands exactly once.
func TestSplitFanoutEndToEnd(t *testing.T) {
	const branches, total = 3, 120
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	split := g.AddNode(graph.Node{
		Name:        "split",
		Op:          &operator.Split{Outputs: branches},
		OutputPorts: branches,
		Speculative: true,
	})
	g.Connect(src, 0, split, 0)
	eng := newTestEngine(t, g, Options{Seed: 32})
	sinks := make([]*sinkCollector, branches)
	for p := 0; p < branches; p++ {
		sinks[p] = &sinkCollector{}
		if err := eng.Subscribe(split, p, sinks[p].fn); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := eng.Source(src)
	for i := 0; i < total; i++ {
		if _, err := s.Emit(uint64(i), operator.EncodeValue(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sum := 0
		for _, sk := range sinks {
			sum += len(sk.finals())
		}
		if sum == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("finals = %d, want %d", sum, total)
		}
		time.Sleep(time.Millisecond)
	}
	seen := make(map[uint64]bool)
	for p, sk := range sinks {
		finals := sk.finals()
		if len(finals) == 0 {
			t.Fatalf("branch %d received nothing (random balancing broken)", p)
		}
		for _, ev := range finals {
			v := operator.DecodeValue(ev.Payload)
			if seen[v] {
				t.Fatalf("value %d delivered to multiple branches", v)
			}
			seen[v] = true
		}
	}
}

// TestJoinThroughEngine exercises the two-input Join end to end with the
// interleaving order logged by the engine.
func TestJoinThroughEngine(t *testing.T) {
	g := graph.New()
	left := g.AddNode(graph.Node{Name: "left"})
	right := g.AddNode(graph.Node{Name: "right"})
	join := g.AddNode(graph.Node{
		Name:        "join",
		Op:          &operator.Join{Buckets: 32},
		Traits:      operator.JoinTraits(32),
		Speculative: true,
	})
	g.Connect(left, 0, join, 0)
	g.Connect(right, 0, join, 1)
	eng := newTestEngine(t, g, Options{Seed: 33})
	sink := &sinkCollector{}
	if err := eng.Subscribe(join, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	sl, _ := eng.Source(left)
	sr, _ := eng.Source(right)
	const pairs = 20
	for i := 0; i < pairs; i++ {
		if _, err := sl.Emit(uint64(i), operator.EncodeValue(uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain() // all left rows stored, no matches yet
	if len(sink.finals()) != 0 {
		t.Fatalf("join fired with one side only")
	}
	for i := 0; i < pairs; i++ {
		if _, err := sr.Emit(uint64(i), operator.EncodeValue(uint64(200+i))); err != nil {
			t.Fatal(err)
		}
	}
	finals := sink.waitFinals(t, pairs)
	eng.Drain()
	for _, ev := range finals {
		l, r := operator.DecodePair(ev.Payload)
		if l != 100+ev.Key || r != 200+ev.Key {
			t.Fatalf("key %d joined (%d,%d)", ev.Key, l, r)
		}
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeWindowThroughEngine checks event-time windows and EmitAt
// timestamps end to end.
func TestTimeWindowThroughEngine(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	win := g.AddNode(graph.Node{
		Name:        "win",
		Op:          &operator.TimeWindowSum{Width: 100},
		Traits:      operator.TimeWindowTraits,
		Speculative: true,
	})
	g.Connect(src, 0, win, 0)
	eng := newTestEngine(t, g, Options{Seed: 34})
	sink := &sinkCollector{}
	if err := eng.Subscribe(win, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, _ := eng.Source(src)
	// Window [0,100): values 1+2+3; window [100,200): 10; flushed by ts 210.
	for _, e := range []struct {
		ts  int64
		val uint64
	}{{10, 1}, {50, 2}, {90, 3}, {150, 10}, {210, 99}} {
		if _, err := s.EmitAt(e.ts, 1, operator.EncodeValue(e.val)); err != nil {
			t.Fatal(err)
		}
	}
	finals := sink.waitFinals(t, 2)
	eng.Drain()
	if got := operator.DecodeValue(finals[0].Payload); got != 6 {
		t.Fatalf("window 1 sum = %d, want 6", got)
	}
	if finals[0].Timestamp != 100 {
		t.Fatalf("window 1 stamped %d, want 100", finals[0].Timestamp)
	}
	if got := operator.DecodeValue(finals[1].Payload); got != 10 {
		t.Fatalf("window 2 sum = %d, want 10", got)
	}
}

// TestStrictFinalityOption: with StrictFinality, clean tasks behind open
// tainted ones are not sent final early.
func TestStrictFinalityOption(t *testing.T) {
	run := func(strict bool) (spec, final uint64) {
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		op := g.AddNode(graph.Node{Name: "op", Op: &operator.Passthrough{}, Speculative: true})
		g.Connect(src, 0, op, 0)
		eng := newTestEngine(t, g, Options{Seed: 35, StrictFinality: strict})
		n, _ := eng.node(op)
		// One speculative (never finalized during the burst) event taints
		// the node, then a batch of final events flows through.
		n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Input: 0, Event: event.Event{
			ID: event.ID{Source: 60, Seq: 1}, Timestamp: 1, Speculative: true, Payload: nil,
		}})
		time.Sleep(2 * time.Millisecond)
		for i := uint64(2); i < 30; i++ {
			n.mailbox.Push(transport.Message{Type: transport.MsgEvent, Input: 0, Event: event.Event{
				ID: event.ID{Source: 60, Seq: event.Seq(i)}, Timestamp: int64(i), Payload: nil,
			}})
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			st, _ := eng.Stats(op)
			if st.Executed >= 29 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("executions stalled")
			}
			time.Sleep(time.Millisecond)
		}
		st, _ := eng.Stats(op)
		return st.SpecSent, st.FinalSent
	}
	_, finalLoose := run(false)
	_, finalStrict := run(true)
	if finalStrict >= finalLoose {
		t.Fatalf("strict finality sent %d direct finals, loose sent %d — option has no effect",
			finalStrict, finalLoose)
	}
}

// TestSourceEmitAfterStop surfaces ErrStopped.
func TestSourceEmitAfterStop(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	eng := newTestEngine(t, g, Options{Seed: 36})
	s, _ := eng.Source(src)
	eng.Stop()
	if _, err := s.Emit(1, nil); err == nil {
		t.Fatal("Emit after Stop succeeded")
	}
}

// TestSubscribeUnknownNode covers the error path.
func TestSubscribeUnknownNode(t *testing.T) {
	g := graph.New()
	g.AddNode(graph.Node{Name: "only"})
	eng := newTestEngine(t, g, Options{})
	if err := eng.Subscribe(graph.NodeID(9), 0, func(event.Event, bool) {}); err == nil {
		t.Fatal("Subscribe to unknown node succeeded")
	}
}
