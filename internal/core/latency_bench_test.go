package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/operator"
	"streammine/internal/storage"
	"streammine/internal/vclock"
)

// BenchmarkLatencyDepth reproduces the paper's central experiment:
// end-to-end latency as a function of pipeline depth, with and without
// speculation. Every stage is a stateful operator whose commit requires a
// decision-log sync on a simulated disk, so a non-speculative stage holds
// its output until the sync completes and latency grows linearly with
// depth (depth × sync), while a speculative stage forwards optimistically
// and overlaps all the syncs — latency stays sub-linear in depth.
//
// The closed loop (one event in flight, next emitted after finality)
// measures pure pipeline latency with no queueing. Reported as p50-us /
// p99-us so make bench archives the curve in BENCH_<rev>.json.
func BenchmarkLatencyDepth(b *testing.B) {
	for _, spec := range []bool{true, false} {
		mode := "spec"
		if !spec {
			mode = "nospec"
		}
		for _, depth := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/depth=%d", mode, depth), func(b *testing.B) {
				benchLatencyDepth(b, depth, spec)
			})
		}
	}
	// Open-loop throughput with hot-path batching (docs/PERFORMANCE.md):
	// batch=1 is the unbatched baseline; larger sizes amortize admission,
	// credit, injection and commit costs over runs of events. Reported as
	// events/sec plus the finalized end-to-end p99, so BENCH_*.json captures
	// the batching speedup and its latency cost side by side.
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("throughput/batch=%d", batch), func(b *testing.B) {
			benchThroughputBatch(b, batch)
		})
	}
}

// benchThroughputBatch pushes b.N events (at least benchMinEvents, so a
// 1x smoke run still measures sustained rate rather than a single event)
// through a two-stage speculative pipeline as fast as the flow control
// admits them, in emit runs of the configured batch size, and measures
// sustained finalized throughput.
const benchMinEvents = 20000

func benchThroughputBatch(b *testing.B, batch int) {
	fl := &flow.Limits{MailboxCap: 2048, CreditWindow: 512, BatchSize: batch}
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src", Flow: fl})
	s1 := g.AddNode(graph.Node{
		Name:        "stage0",
		Op:          &operator.Classifier{Classes: 4},
		Traits:      operator.ClassifierTraits(4),
		Speculative: true,
		Flow:        fl,
	})
	s2 := g.AddNode(graph.Node{
		Name:        "stage1",
		Op:          &operator.Classifier{Classes: 4},
		Traits:      operator.ClassifierTraits(4),
		Speculative: true,
		Flow:        fl,
	})
	g.Connect(src, 0, s1, 0)
	g.Connect(s1, 0, s2, 0)
	pool := storage.NewPool([]storage.Disk{storage.NewMemDisk()})
	defer pool.Close()
	wall := vclock.NewWall()
	eng, err := New(g, Options{Seed: 11, Pool: pool, Clock: wall})
	if err != nil {
		b.Fatal(err)
	}
	lat := metrics.NewHDR()
	var latMu sync.Mutex
	if err := eng.Subscribe(s2, 0, func(ev event.Event, fin bool) {
		if !fin {
			return
		}
		// Timestamps come from the engine clock, so latency is measured
		// against the same clock the source stamped with.
		if d := wall.Now() - ev.Timestamp; d > 0 {
			latMu.Lock()
			lat.Observe(d)
			latMu.Unlock()
		}
	}); err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	s, err := eng.Source(src)
	if err != nil {
		b.Fatal(err)
	}
	payload := operator.EncodeValue(7)
	items := make([]BatchItem, 0, batch)
	events := b.N
	if events < benchMinEvents {
		events = benchMinEvents
	}
	b.ResetTimer()
	for emitted := 0; emitted < events; {
		if batch > 1 {
			n := batch
			if left := events - emitted; n > left {
				n = left
			}
			items = items[:0]
			for i := 0; i < n; i++ {
				items = append(items, BatchItem{Key: uint64(emitted + i), Payload: payload})
			}
			if _, err := s.EmitBatch(items); err != nil {
				b.Fatal(err)
			}
			emitted += n
			continue
		}
		if _, err := s.Emit(uint64(emitted), payload); err != nil {
			b.Fatal(err)
		}
		emitted++
	}
	eng.Drain()
	elapsed := b.Elapsed()
	b.StopTimer()
	if err := eng.Err(); err != nil {
		b.Fatal(err)
	}
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "events/sec")
	}
	b.ReportMetric(float64(lat.Quantile(0.99))/1e3, "p99-us")
}

func benchLatencyDepth(b *testing.B, depth int, spec bool) {
	// No simulated exec cost: SimulateWork sleeps, and sub-millisecond
	// sleeps round up to ~1ms of kernel timer slack that would swamp the
	// sync latency under study. The stage work is the real classifier
	// exec; the per-stage hold is the decision-log sync alone.
	const (
		events  = 20
		syncLat = 200 * time.Microsecond
	)
	lat := metrics.NewHDR()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := graph.New()
		src := g.AddNode(graph.Node{Name: "src"})
		prev := src
		for d := 0; d < depth; d++ {
			n := g.AddNode(graph.Node{
				Name:        fmt.Sprintf("stage%d", d),
				Op:          &operator.Classifier{Classes: 4},
				Traits:      operator.ClassifierTraits(4),
				Speculative: spec,
			})
			g.Connect(prev, 0, n, 0)
			prev = n
		}
		pool := storage.NewPool([]storage.Disk{storage.NewSimDisk(syncLat, 0)})
		eng, err := New(g, Options{Seed: 11, Pool: pool})
		if err != nil {
			b.Fatal(err)
		}
		var (
			mu      sync.Mutex
			started time.Time
			seen    bool
		)
		first := make(chan time.Duration, 1)
		final := make(chan struct{}, 1)
		if err := eng.Subscribe(prev, 0, func(ev event.Event, fin bool) {
			mu.Lock()
			f := !seen
			seen = true
			el := time.Since(started)
			mu.Unlock()
			if f {
				first <- el
			}
			if fin {
				final <- struct{}{}
			}
		}); err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		s, err := eng.Source(src)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for k := 0; k < events; k++ {
			mu.Lock()
			seen = false
			started = time.Now()
			mu.Unlock()
			if _, err := s.Emit(uint64(k), operator.EncodeValue(uint64(k))); err != nil {
				b.Fatal(err)
			}
			// Latency to first availability at the sink: with speculation
			// that is the optimistic delivery, without it the final one.
			lat.Record(<-first)
			<-final
		}
		b.StopTimer()
		eng.Stop()
		pool.Close()
	}
	b.ReportMetric(float64(lat.QuantileDuration(0.5))/1e3, "p50-us")
	b.ReportMetric(float64(lat.QuantileDuration(0.99))/1e3, "p99-us")
}
