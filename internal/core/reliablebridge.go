package core

import (
	"fmt"
	"sync"
	"time"

	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/transport"
)

// ReliableBridge is a self-healing BridgeOut: it dials the downstream
// engine, forwards the node's outputs, and on connection failure keeps
// redialing in the background with jittered exponential backoff. After
// every reconnect it replays the node's unacknowledged output buffer —
// exactly the paper's upstream-replay protocol (§2.2) applied to link
// failures: the downstream engine drops byte-identical duplicates and
// re-ACKs, so no event is lost or double-applied.
//
// Retarget repoints the bridge at a different address; the cluster
// runtime uses it when a downstream partition is reassigned to another
// worker after a failure.
type ReliableBridge struct {
	n        *node
	retry    time.Duration
	maxRetry time.Duration

	mu          sync.Mutex
	addr        string
	conn        transport.Conn
	closed      bool
	hello       *transport.Message
	onReconnect func()
	rtt         *metrics.HDR
	reconnects  int

	// gate, when non-nil, credit-limits data events over this bridge: the
	// remote receiver returns CREDIT frames as events leave its mailbox,
	// and the gate is refilled on every reconnect (the peer's volatile
	// state — and any credits stranded in flight — died with the link).
	gate *flow.CreditGate
	cl   *creditedLink

	stop chan struct{}
	done chan struct{}
}

// BridgeOptions tune a ReliableBridge. The zero value of a field selects
// its default.
type BridgeOptions struct {
	// Retry is the initial redial delay (default 100 ms).
	Retry time.Duration
	// MaxRetry caps the exponential backoff (default 2 s).
	MaxRetry time.Duration
	// Hello, when set, is sent first on every (re)connection, before any
	// data. The cluster runtime uses it to route a fresh connection to the
	// right edge on a worker's shared data listener.
	Hello *transport.Message
	// OnReconnect runs after every successful redial (e.g. to bump a
	// reconnect counter). It must not block.
	OnReconnect func()
	// CreditWindow, when positive, bounds the number of in-flight data
	// events on the bridge. The receiving engine grants credits back as
	// CREDIT frames; control traffic is never gated. Zero disables credit
	// flow control (pre-flow behavior).
	CreditWindow int
	// Batch, when > 1, coalesces up to Batch consecutive data events into
	// one EVENT_BATCH wire frame (one length prefix, one credit charge,
	// one syscall). Requires CreditWindow > 0; ignored otherwise.
	Batch int
	// BatchLinger bounds a single extra wait for a fuller batch after the
	// sender already holds at least one event. Zero never waits.
	BatchLinger time.Duration
	// RTT, when set, observes the dial round-trip (connect + hello) of
	// every connection attempt that succeeds — a proxy for the network
	// latency a cut edge adds per hop.
	RTT *metrics.HDR
}

// BridgeOutReliable attaches a reconnecting bridge to a node output port.
// retry is the initial redial delay (default 100 ms).
func (e *Engine) BridgeOutReliable(id graph.NodeID, port int, addr string, retry time.Duration) (*ReliableBridge, error) {
	return e.BridgeOutReliableOpts(id, port, addr, BridgeOptions{Retry: retry})
}

// BridgeOutReliableOpts is BridgeOutReliable with full options.
func (e *Engine) BridgeOutReliableOpts(id graph.NodeID, port int, addr string, o BridgeOptions) (*ReliableBridge, error) {
	n, err := e.node(id)
	if err != nil {
		return nil, err
	}
	if port < 0 || port >= n.spec.OutputPorts {
		return nil, fmt.Errorf("core: node %q has no output port %d", n.spec.Name, port)
	}
	if o.Retry <= 0 {
		o.Retry = 100 * time.Millisecond
	}
	if o.MaxRetry <= 0 {
		o.MaxRetry = 2 * time.Second
	}
	b := &ReliableBridge{
		n:           n,
		addr:        addr,
		retry:       o.Retry,
		maxRetry:    o.MaxRetry,
		hello:       o.Hello,
		onReconnect: o.OnReconnect,
		rtt:         o.RTT,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	// The first connection is established synchronously so misconfigured
	// addresses fail fast.
	if err := b.connect(); err != nil {
		return nil, fmt.Errorf("bridge to %s: %w", addr, err)
	}
	var l link = &reliableLink{b: b}
	if o.CreditWindow > 0 {
		b.gate = flow.NewCreditGate(o.CreditWindow)
		b.cl = newCreditedLink(l, b.gate, o.Batch, o.BatchLinger)
		l = b.cl
	}
	n.addLink(port, l)
	go b.supervise()
	return b, nil
}

// connect dials and installs a fresh connection, leading with the hello
// frame when configured.
func (b *ReliableBridge) connect() error {
	b.mu.Lock()
	addr := b.addr
	hello := b.hello
	b.mu.Unlock()
	dialStart := time.Now()
	// Data-plane link: dial chaos-targeted so the campaign runner's fault
	// shim (slow/lossy bridge) applies here and never to control links.
	conn, err := transport.DialWith(addr, transport.DialOptions{Chaos: true}, func(m transport.Message) {
		if m.Type == transport.MsgCredit {
			// Credit grants terminate here; the count rides ID.Seq.
			if b.gate != nil {
				b.gate.Grant(int(m.ID.Seq))
			}
			return
		}
		b.n.mailbox.Push(m) // ACKs and replay requests from downstream
	})
	if err != nil {
		return err
	}
	if hello != nil {
		if err := conn.Send(*hello); err != nil {
			_ = conn.Close()
			return err
		}
	}
	b.rtt.Record(time.Since(dialStart)) // nil-safe
	b.mu.Lock()
	if b.closed || b.addr != addr {
		// Closed or retargeted while dialing: discard and let the
		// supervisor try the current address.
		b.mu.Unlock()
		_ = conn.Close()
		return transport.ErrClosed
	}
	b.conn = conn
	b.mu.Unlock()
	return nil
}

// send forwards one message, reporting failure so the supervisor redials.
func (b *ReliableBridge) send(m transport.Message) bool {
	b.mu.Lock()
	conn := b.conn
	b.mu.Unlock()
	if conn == nil {
		return false
	}
	if err := conn.Send(m); err != nil {
		b.mu.Lock()
		if b.conn == conn {
			b.conn = nil // supervisor will redial
		}
		b.mu.Unlock()
		_ = conn.Close()
		return false
	}
	return true
}

// supervise redials dropped connections — backing off exponentially with
// jitter while the peer stays down — and triggers the replay of the
// node's unacknowledged buffer after every successful reconnect.
func (b *ReliableBridge) supervise() {
	defer close(b.done)
	bo := backoff{base: b.retry, max: b.maxRetry}
	timer := time.NewTimer(b.retry)
	defer timer.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-timer.C:
		}
		b.mu.Lock()
		needsDial := b.conn == nil && !b.closed
		b.mu.Unlock()
		if !needsDial {
			bo.reset()
			timer.Reset(b.retry)
			continue
		}
		if err := b.connect(); err != nil {
			timer.Reset(bo.next())
			continue
		}
		bo.reset()
		timer.Reset(b.retry)
		b.mu.Lock()
		b.reconnects++
		onRec := b.onReconnect
		b.mu.Unlock()
		if onRec != nil {
			onRec()
		}
		// Refill the credit window before replaying: credits consumed by
		// events that died with the old link (or with the crashed peer)
		// would otherwise be stranded and wedge the replay. Grants the
		// restarted receiver sends for replayed events are clamped at the
		// window, so the refill cannot inflate it.
		if b.gate != nil {
			b.gate.Reset()
		}
		// Replay everything still unacknowledged over the new link.
		b.n.mailbox.Push(transport.Message{Type: transport.MsgReplay})
	}
}

// Retarget points the bridge at a new address. The current connection (if
// any) is torn down and the supervisor redials the new peer, replaying
// the unacknowledged buffer once it connects. Retargeting to the current
// address with a live connection is a no-op.
func (b *ReliableBridge) Retarget(addr string) {
	b.mu.Lock()
	if b.addr == addr && b.conn != nil {
		b.mu.Unlock()
		return
	}
	b.addr = addr
	conn := b.conn
	b.conn = nil
	b.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Addr returns the bridge's current target address.
func (b *ReliableBridge) Addr() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.addr
}

// Reconnects reports how many times the bridge re-established the link.
func (b *ReliableBridge) Reconnects() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reconnects
}

// Connected reports whether a live connection is installed.
func (b *ReliableBridge) Connected() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.conn != nil
}

// Close stops the supervisor and closes the connection.
func (b *ReliableBridge) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conn := b.conn
	b.conn = nil
	b.mu.Unlock()
	close(b.stop)
	<-b.done
	if b.cl != nil {
		b.cl.close() // idempotent with node.stop's close of the same link
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// reliableLink adapts the bridge to the link interface. Sends during an
// outage are dropped; the post-reconnect replay re-delivers everything
// unacknowledged.
type reliableLink struct {
	b *ReliableBridge
}

var _ link = (*reliableLink)(nil)

func (l *reliableLink) deliver(m transport.Message) { l.b.send(m) }

func (l *reliableLink) buffered() bool { return true }
