package core

import (
	"fmt"
	"sync"
	"time"

	"streammine/internal/graph"
	"streammine/internal/transport"
)

// ReliableBridge is a self-healing BridgeOut: it dials the downstream
// engine, forwards the node's outputs, and on connection failure keeps
// redialing in the background. After every reconnect it replays the
// node's unacknowledged output buffer — exactly the paper's upstream-
// replay protocol (§2.2) applied to link failures: the downstream engine
// drops byte-identical duplicates and re-ACKs, so no event is lost or
// double-applied.
type ReliableBridge struct {
	n     *node
	addr  string
	retry time.Duration

	mu     sync.Mutex
	conn   transport.Conn
	closed bool

	stop chan struct{}
	done chan struct{}

	reconnects int
}

// BridgeOutReliable attaches a reconnecting bridge to a node output port.
// retry is the redial interval (default 100 ms).
func (e *Engine) BridgeOutReliable(id graph.NodeID, port int, addr string, retry time.Duration) (*ReliableBridge, error) {
	n, err := e.node(id)
	if err != nil {
		return nil, err
	}
	if port < 0 || port >= n.spec.OutputPorts {
		return nil, fmt.Errorf("core: node %q has no output port %d", n.spec.Name, port)
	}
	if retry <= 0 {
		retry = 100 * time.Millisecond
	}
	b := &ReliableBridge{
		n:     n,
		addr:  addr,
		retry: retry,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	// The first connection is established synchronously so misconfigured
	// addresses fail fast.
	if err := b.connect(); err != nil {
		return nil, fmt.Errorf("bridge to %s: %w", addr, err)
	}
	n.addLink(port, &reliableLink{b: b})
	go b.supervise()
	return b, nil
}

// connect dials and installs a fresh connection.
func (b *ReliableBridge) connect() error {
	conn, err := transport.Dial(b.addr, func(m transport.Message) {
		b.n.mailbox.Push(m) // ACKs and replay requests from downstream
	})
	if err != nil {
		return err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return conn.Close()
	}
	b.conn = conn
	b.mu.Unlock()
	return nil
}

// send forwards one message, reporting failure so the supervisor redials.
func (b *ReliableBridge) send(m transport.Message) bool {
	b.mu.Lock()
	conn := b.conn
	b.mu.Unlock()
	if conn == nil {
		return false
	}
	if err := conn.Send(m); err != nil {
		b.mu.Lock()
		if b.conn == conn {
			b.conn = nil // supervisor will redial
		}
		b.mu.Unlock()
		_ = conn.Close()
		return false
	}
	return true
}

// supervise redials dropped connections and triggers the replay of the
// node's unacknowledged buffer after every successful reconnect.
func (b *ReliableBridge) supervise() {
	defer close(b.done)
	ticker := time.NewTicker(b.retry)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
		}
		b.mu.Lock()
		needsDial := b.conn == nil && !b.closed
		b.mu.Unlock()
		if !needsDial {
			continue
		}
		if err := b.connect(); err != nil {
			continue // keep retrying
		}
		b.mu.Lock()
		b.reconnects++
		b.mu.Unlock()
		// Replay everything still unacknowledged over the new link.
		b.n.mailbox.Push(transport.Message{Type: transport.MsgReplay})
	}
}

// Reconnects reports how many times the bridge re-established the link.
func (b *ReliableBridge) Reconnects() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reconnects
}

// Connected reports whether a live connection is installed.
func (b *ReliableBridge) Connected() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.conn != nil
}

// Close stops the supervisor and closes the connection.
func (b *ReliableBridge) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conn := b.conn
	b.conn = nil
	b.mu.Unlock()
	close(b.stop)
	<-b.done
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// reliableLink adapts the bridge to the link interface. Sends during an
// outage are dropped; the post-reconnect replay re-delivers everything
// unacknowledged.
type reliableLink struct {
	b *ReliableBridge
}

var _ link = (*reliableLink)(nil)

func (l *reliableLink) deliver(m transport.Message) { l.b.send(m) }

func (l *reliableLink) buffered() bool { return true }
