package core

// nodeRecoveryStats is one node's restore/replay instrumentation for the
// recovery anatomy profiler, guarded by the node mutex. restoreDurable
// stamps the restore window (checkpoint load + decision-log scan) and
// opens the replay window; replayAdmit closes the replay window when the
// plan drains; the covered-set drop sites count dedup drops.
type nodeRecoveryStats struct {
	restoreStartNs int64
	restoreEndNs   int64
	ckptBytes      int64 // encoded size of the loaded checkpoint
	logRecords     int64 // this operator's decision records scanned
	coveredSet     int64 // snapshot-covered IDs whose redeliveries drop
	replayStartNs  int64
	replayEndNs    int64 // 0 while a replay plan is still draining
	replayEvents   int64 // events admitted through the plan (tail included)
	replayDrops    int64 // covered-set dedup drops
}

// RecoveryStats aggregates restore/replay instrumentation across every
// node of the engine. Zero StartNs fields mean no durable restore ran
// (fresh start). ReplayEndNs stays 0 until every node's plan drained.
type RecoveryStats struct {
	RestoreStartNs  int64
	RestoreEndNs    int64
	CheckpointBytes int64
	LogRecords      int64
	CoveredSet      int64
	ReplayStartNs   int64
	ReplayEndNs     int64
	ReplayEvents    int64
	ReplayDrops     int64
	ReplayDone      bool
	GateResets      int64
}

// RecoveryStats merges the per-node restore/replay instrumentation: the
// restore window is the envelope across nodes, sizes and counts sum, and
// replay is done only when no node still holds a plan.
func (e *Engine) RecoveryStats() RecoveryStats {
	var s RecoveryStats
	s.ReplayDone = true
	for _, n := range e.nodes {
		n.mu.Lock()
		r := n.recStats
		pending := n.replay != nil
		n.mu.Unlock()
		if r.restoreStartNs != 0 && (s.RestoreStartNs == 0 || r.restoreStartNs < s.RestoreStartNs) {
			s.RestoreStartNs = r.restoreStartNs
		}
		if r.restoreEndNs > s.RestoreEndNs {
			s.RestoreEndNs = r.restoreEndNs
		}
		s.CheckpointBytes += r.ckptBytes
		s.LogRecords += r.logRecords
		s.CoveredSet += r.coveredSet
		if r.replayStartNs != 0 && (s.ReplayStartNs == 0 || r.replayStartNs < s.ReplayStartNs) {
			s.ReplayStartNs = r.replayStartNs
		}
		s.ReplayEvents += r.replayEvents
		s.ReplayDrops += r.replayDrops
		if pending {
			s.ReplayDone = false
		} else if r.replayEndNs > s.ReplayEndNs {
			s.ReplayEndNs = r.replayEndNs
		}
		for _, g := range n.inGates {
			s.GateResets += int64(g.Resets())
		}
	}
	if !s.ReplayDone {
		s.ReplayEndNs = 0
	}
	return s
}
