package core

import (
	"sync"

	"streammine/internal/event"
	"streammine/internal/transport"
)

// link is one delivery target attached to a node output port.
type link interface {
	// deliver hands a message to the target; must not block indefinitely.
	deliver(m transport.Message)
	// buffered reports whether the link participates in the output-buffer
	// ACK protocol (node-to-node links do; sink callbacks do not).
	buffered() bool
}

// localLink delivers into another node's mailbox within the same engine.
type localLink struct {
	target *node
	input  int
}

var _ link = (*localLink)(nil)

func (l *localLink) deliver(m transport.Message) {
	m.Input = l.input
	l.target.mailbox.Push(m)
}

func (l *localLink) buffered() bool { return true }

// callbackLink adapts a subscriber function to a link. It tracks
// speculative events so the finalize callback can re-deliver their content
// with final=true.
type callbackLink struct {
	fn func(ev event.Event, final bool)

	mu      sync.Mutex
	pending map[event.ID]event.Event
}

var _ link = (*callbackLink)(nil)

func (l *callbackLink) deliver(m transport.Message) {
	switch m.Type {
	case transport.MsgEvent:
		ev := m.Event
		if ev.Speculative {
			l.mu.Lock()
			if l.pending == nil {
				l.pending = make(map[event.ID]event.Event)
			}
			l.pending[ev.ID] = ev
			l.mu.Unlock()
			l.fn(ev, false)
			return
		}
		// A final event supersedes any speculative copy.
		l.mu.Lock()
		delete(l.pending, ev.ID)
		l.mu.Unlock()
		l.fn(ev, true)
	case transport.MsgFinalize:
		l.mu.Lock()
		ev, ok := l.pending[m.ID]
		if ok && ev.Version == m.Version {
			delete(l.pending, m.ID)
		}
		l.mu.Unlock()
		if ok && ev.Version == m.Version {
			l.fn(ev.AsFinal(), true)
		}
	case transport.MsgRevoke:
		l.mu.Lock()
		delete(l.pending, m.ID)
		l.mu.Unlock()
	}
}

func (l *callbackLink) buffered() bool { return false }

// remoteLink forwards over a transport connection (TCP bridging between
// engine processes). The remote side routes by registering a bridge input.
type remoteLink struct {
	conn transport.Conn
}

var _ link = (*remoteLink)(nil)

func (l *remoteLink) deliver(m transport.Message) {
	// Send errors mean the peer is gone; the replay protocol recovers
	// anything lost once it reconnects, so drop on the floor here.
	_ = l.conn.Send(m)
}

func (l *remoteLink) buffered() bool { return true }

// outRecord is one output event retained in a node's output buffer until
// every buffered downstream link has acknowledged it (paper §2.2: upstream
// output buffers enable replay; ACKs prune them).
type outRecord struct {
	id      event.ID
	port    int
	ts      int64
	key     uint64
	payload []byte

	version     event.Version
	finalSent   bool
	pendingAcks int
	seq         uint64 // emission order within the node, for ordered replay
}

// matches reports whether a newly produced output is identical to the
// record (same observable content on the same port).
func (r *outRecord) matches(port int, ts int64, key uint64, payload []byte) bool {
	return r.port == port && r.ts == ts && r.key == key && string(r.payload) == string(payload)
}

// toEvent materializes the record as an event with the given speculation
// flag.
func (r *outRecord) toEvent(spec bool) event.Event {
	return event.Event{
		ID:          r.id,
		Timestamp:   r.ts,
		Version:     r.version,
		Speculative: spec,
		Key:         r.key,
		Payload:     r.payload,
	}
}
