package core

import (
	"sync"
	"sync/atomic"
	"time"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/transport"
)

// link is one delivery target attached to a node output port.
type link interface {
	// deliver hands a message to the target; must not block indefinitely.
	deliver(m transport.Message)
	// buffered reports whether the link participates in the output-buffer
	// ACK protocol (node-to-node links do; sink callbacks do not).
	buffered() bool
}

// localLink delivers into another node's mailbox within the same engine.
type localLink struct {
	target *node
	input  int
}

var _ link = (*localLink)(nil)

func (l *localLink) deliver(m transport.Message) {
	m.Input = l.input
	l.target.mailbox.Push(m)
}

func (l *localLink) buffered() bool { return true }

// callbackLink adapts a subscriber function to a link. It tracks
// speculative events so the finalize callback can re-deliver their content
// with final=true.
type callbackLink struct {
	fn func(ev event.Event, final bool)

	mu      sync.Mutex
	pending map[event.ID]event.Event
}

var _ link = (*callbackLink)(nil)

func (l *callbackLink) deliver(m transport.Message) {
	switch m.Type {
	case transport.MsgEvent:
		l.deliverEvent(m.Event)
	case transport.MsgEventBatch:
		for _, ev := range m.Events {
			l.deliverEvent(ev)
		}
	case transport.MsgFinalize:
		l.finalize(m.ID, m.Version)
	case transport.MsgFinalizeBatch:
		for _, f := range m.Finals {
			l.finalize(f.ID, f.Version)
		}
	case transport.MsgRevoke:
		l.mu.Lock()
		delete(l.pending, m.ID)
		l.mu.Unlock()
	}
}

func (l *callbackLink) deliverEvent(ev event.Event) {
	if ev.Speculative {
		l.mu.Lock()
		if l.pending == nil {
			l.pending = make(map[event.ID]event.Event)
		}
		l.pending[ev.ID] = ev
		l.mu.Unlock()
		l.fn(ev, false)
		return
	}
	// A final event supersedes any speculative copy.
	l.mu.Lock()
	delete(l.pending, ev.ID)
	l.mu.Unlock()
	l.fn(ev, true)
}

func (l *callbackLink) finalize(id event.ID, version event.Version) {
	l.mu.Lock()
	ev, ok := l.pending[id]
	if ok && ev.Version == version {
		delete(l.pending, id)
	}
	l.mu.Unlock()
	if ok && ev.Version == version {
		l.fn(ev.AsFinal(), true)
	}
}

func (l *callbackLink) buffered() bool { return false }

// remoteLink forwards over a transport connection (TCP bridging between
// engine processes). The remote side routes by registering a bridge input.
type remoteLink struct {
	conn transport.Conn
}

var _ link = (*remoteLink)(nil)

func (l *remoteLink) deliver(m transport.Message) {
	// Send errors mean the peer is gone; the replay protocol recovers
	// anything lost once it reconnects, so drop on the floor here.
	_ = l.conn.Send(m)
}

func (l *remoteLink) buffered() bool { return true }

// linkQueue is a plain unbounded FIFO (no lane split: per-link order is
// preserved exactly) feeding a creditedLink's sender goroutine. Popped
// slots are cleared and the backing array is reused once the queue
// drains, so steady-state traffic does not reallocate per message.
type linkQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []transport.Message
	head   int
	closed bool
}

func newLinkQueue() *linkQueue {
	q := &linkQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *linkQueue) push(m transport.Message) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// resetLocked reclaims the backing array once the queue is empty, or
// compacts it when the dead head region dominates a large queue.
func (q *linkQueue) resetLocked() {
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 1024 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
}

func (q *linkQueue) pop() (transport.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return transport.Message{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = transport.Message{} // release payload references
	q.head++
	q.resetLocked()
	return m, true
}

// takeEvents pops up to max immediately-following single-EVENT messages
// from the head of the queue without blocking, appending their events to
// dst. It stops at the first non-EVENT item (control and batch frames keep
// their queue position), so per-link ordering is preserved exactly.
func (q *linkQueue) takeEvents(dst []event.Event, max int) []event.Event {
	if max <= 0 {
		return dst
	}
	q.mu.Lock()
	n := 0
	for n < max && q.head+n < len(q.items) && q.items[q.head+n].Type == transport.MsgEvent {
		dst = append(dst, q.items[q.head+n].Event)
		q.items[q.head+n] = transport.Message{}
		n++
	}
	q.head += n
	q.resetLocked()
	q.mu.Unlock()
	return dst
}

func (q *linkQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

func (q *linkQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// creditedLink wraps another link with credit-based flow control. Callers
// never block: deliver enqueues onto an unbounded per-link FIFO and a
// dedicated sender goroutine alone pays the credit wait. Only EVENT
// messages consume a credit; control messages ride the same queue (so
// per-link ordering is preserved) but pass the gate for free, keeping
// FINALIZE/REVOKE progress independent of data congestion.
//
// The caller must never block here because the dispatcher that delivers
// events is the same goroutine that processes inbound CREDIT grants on
// the reverse path — blocking it on a credit would deadlock the cycle.
type creditedLink struct {
	inner  link
	gate   *flow.CreditGate
	q      *linkQueue
	batch  int           // max events coalesced into one EVENT_BATCH frame (<=1 disables)
	linger time.Duration // optional one-shot wait for a fuller batch (0 = never wait)
	done   chan struct{}
	once   sync.Once
}

var _ link = (*creditedLink)(nil)

// newCreditedLink wraps inner behind gate and starts the sender. batch > 1
// makes the sender coalesce consecutive queued EVENT messages into one
// EVENT_BATCH frame of up to batch events, charging the credit gate once
// for the whole run. linger bounds a single extra wait for a fuller batch
// after at least one event is in hand; it never delays a batch that is
// already full and never applies to control traffic.
func newCreditedLink(inner link, gate *flow.CreditGate, batch int, linger time.Duration) *creditedLink {
	l := &creditedLink{inner: inner, gate: gate, q: newLinkQueue(), batch: batch, linger: linger, done: make(chan struct{})}
	go l.sender()
	return l
}

func (l *creditedLink) deliver(m transport.Message) { l.q.push(m) }

func (l *creditedLink) buffered() bool { return l.inner.buffered() }

// queued reports messages waiting for transmission (quiescence and
// pressure accounting: these are in flight even though no mailbox holds
// them yet).
func (l *creditedLink) queued() int { return l.q.len() }

// sender forwards queued messages, acquiring one credit per data event
// (one AcquireN charge per coalesced batch).
func (l *creditedLink) sender() {
	defer close(l.done)
	for {
		m, ok := l.q.pop()
		if !ok {
			return
		}
		switch m.Type {
		case transport.MsgEvent:
			if l.batch > 1 {
				l.sendRun(m.Event)
				continue
			}
			if !l.gate.Acquire() {
				// Gate closed: shutdown. Remaining data events are dropped;
				// they are either retained in the output buffer for replay
				// or moot because the engine is stopping.
				continue
			}
		case transport.MsgEventBatch:
			// Pre-batched upstream (source injection, late finals): charge
			// for its full weight as one acquisition.
			if !l.gate.AcquireN(len(m.Events)) {
				continue
			}
		}
		l.inner.deliver(m)
	}
}

// sendRun coalesces first plus up to batch-1 consecutive queued events
// into one EVENT_BATCH frame. When the run comes up short and a linger is
// configured, it waits once for stragglers; a run of one is sent as a
// plain EVENT frame, byte-identical to the unbatched wire format.
func (l *creditedLink) sendRun(first event.Event) {
	run := make([]event.Event, 1, l.batch)
	run[0] = first
	run = l.q.takeEvents(run, l.batch-1)
	if len(run) < l.batch && l.linger > 0 {
		time.Sleep(l.linger)
		run = l.q.takeEvents(run, l.batch-len(run))
	}
	if !l.gate.AcquireN(len(run)) {
		return
	}
	if len(run) == 1 {
		l.inner.deliver(transport.Message{Type: transport.MsgEvent, Event: run[0]})
		return
	}
	l.inner.deliver(transport.Message{Type: transport.MsgEventBatch, Events: run})
}

// close stops the sender and releases any credit wait. Idempotent.
func (l *creditedLink) close() {
	l.once.Do(func() {
		l.q.close()
		l.gate.Close()
	})
	<-l.done
}

// creditGranter returns credits to the upstream side of an edge when an
// event leaves the receiver's mailbox.
type creditGranter interface {
	grant(n int)
}

// localGranter shares the gate with an in-process creditedLink.
type localGranter struct{ gate *flow.CreditGate }

func (g localGranter) grant(n int) { g.gate.Grant(n) }

// remoteGranter batches grants and returns them over the input's
// registered upstream connection as CREDIT frames (count in ID.Seq).
// Batching caps the control-frame overhead at 1/batch per event; the
// withheld remainder is at most batch-1 < window credits, so the sender
// can always make progress and every withheld credit is flushed by the
// pops of the very events it covers.
type remoteGranter struct {
	n     *node
	input int
	batch int

	mu      sync.Mutex
	pending int
}

func (g *remoteGranter) grant(n int) {
	g.mu.Lock()
	g.pending += n
	if g.pending < g.batch {
		g.mu.Unlock()
		return
	}
	send := g.pending
	g.pending = 0
	g.mu.Unlock()
	g.n.mu.Lock()
	up := g.n.upstream[g.input]
	g.n.mu.Unlock()
	if up == nil {
		return
	}
	up.send(transport.Message{
		Type: transport.MsgCredit,
		ID:   event.ID{Seq: event.Seq(send)},
	})
}

// outRecord is one output event retained in a node's output buffer until
// every buffered downstream link has acknowledged it (paper §2.2: upstream
// output buffers enable replay; ACKs prune them).
type outRecord struct {
	id      event.ID
	port    int
	ts      int64
	key     uint64
	payload []byte
	trace   uint64 // lineage trace id inherited from the input event

	version event.Version
	// finalSent is atomic: the committer finalizes records under the
	// owning task's lock while handleReplay and the checkpoint snapshot
	// read them from the output buffer without it.
	finalSent   atomic.Bool
	pendingAcks int
	seq         uint64 // emission order within the node, for ordered replay
	// specAt stamps the first speculative send (zero when the record went
	// out final), feeding the speculation→finalize window histogram. Only
	// set when engine metrics are enabled.
	specAt time.Time
}

// matches reports whether a newly produced output is identical to the
// record (same observable content on the same port).
func (r *outRecord) matches(port int, ts int64, key uint64, payload []byte) bool {
	return r.port == port && r.ts == ts && r.key == key && string(r.payload) == string(payload)
}

// toEvent materializes the record as an event with the given speculation
// flag.
func (r *outRecord) toEvent(spec bool) event.Event {
	return event.Event{
		ID:          r.id,
		Timestamp:   r.ts,
		Version:     r.version,
		Speculative: spec,
		Key:         r.key,
		Trace:       r.trace,
		Payload:     r.payload,
	}
}
