package core

import "streammine/internal/metrics"

// NodeHealth is one operator's liveness sample: cumulative commit count
// plus the admission→commit latency distribution, collected per node so
// the coordinator's health model can attribute an end-to-end latency
// budget hop by hop. It exists independently of Options.Metrics because
// cluster partition engines run unmetered (their fixed engine-series
// names would collide on a shared registry) yet still need per-hop
// latency for /debug/health.
type NodeHealth struct {
	Node string `json:"node"`
	// Committed is the node's cumulative committed-task count — the
	// coordinator derives per-operator finalize rates from successive
	// samples.
	Committed uint64 `json:"committed"`
	// FinalizeCount / FinalizeP50Ns / FinalizeP99Ns summarize the node's
	// admission→commit latency HDR (same semantics as the
	// core_finalize_latency series, but per node).
	FinalizeCount uint64 `json:"finalizeCount,omitempty"`
	FinalizeP50Ns int64  `json:"finalizeP50Ns,omitempty"`
	FinalizeP99Ns int64  `json:"finalizeP99Ns,omitempty"`
}

// Health snapshots a NodeHealth sample for every node, in node order, or
// nil when per-node sampling is disabled (Options.Health). Cheap enough
// to ride every STATUS heartbeat: it reads atomics only.
func (e *Engine) Health() []NodeHealth {
	if !e.opts.Health {
		return nil
	}
	out := make([]NodeHealth, 0, len(e.nodes))
	for _, n := range e.nodes {
		h := NodeHealth{Node: n.spec.Name, Committed: n.cCommitted.Load()}
		if lat := n.healthLat; lat != nil {
			h.FinalizeCount = lat.Count()
			h.FinalizeP50Ns = lat.Quantile(0.50)
			h.FinalizeP99Ns = lat.Quantile(0.99)
		}
		out = append(out, h)
	}
	return out
}

// newHealthHDR builds the per-node latency histogram when sampling is on.
// A nil *HDR is inert, so the record site pays no branch of its own when
// sampling is off.
func newHealthHDR(enabled bool) *metrics.HDR {
	if !enabled {
		return nil
	}
	return metrics.NewHDR()
}
