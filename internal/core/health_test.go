package core

import (
	"testing"
	"time"

	"streammine/internal/event"
	"streammine/internal/graph"
	"streammine/internal/operator"
)

// TestHealthRecordSiteAllocFree guards the per-commit health sample: the
// admission→commit latency record that feeds Engine.Health rides the
// commit path of every node, so it must stay allocation-free both when
// sampling is on (lock-free HDR update) and when it is off (nil HDR,
// inert receiver) — the unmetered build must stay byte-identical in
// cost.
func TestHealthRecordSiteAllocFree(t *testing.T) {
	on := newHealthHDR(true)
	if n := testing.AllocsPerRun(1000, func() { on.Record(250 * time.Microsecond) }); n != 0 {
		t.Errorf("health HDR record allocates %.1f/op, want 0", n)
	}
	off := newHealthHDR(false)
	if off != nil {
		t.Fatal("newHealthHDR(false) != nil; disabled sampling must cost a nil check only")
	}
	if n := testing.AllocsPerRun(1000, func() { off.Record(250 * time.Microsecond) }); n != 0 {
		t.Errorf("disabled health record allocates %.1f/op, want 0", n)
	}
	// AllocsPerRun does one warmup run beyond its count.
	if on.Count() < 1000 || on.Quantile(0.99) <= 0 {
		t.Errorf("health HDR sample: count=%d p99=%d", on.Count(), on.Quantile(0.99))
	}
}

// TestUnmeteredEngineReportsFinalizeLatency pins the case the cluster
// actually runs: partition engines have no Options.Metrics (fixed series
// names would collide on a shared registry) but Options.Health on, and
// their Health() samples must still carry nonzero finalize latencies —
// admission stamping must not be gated on metrics alone, or every hop in
// /debug/health reads p99 = 0.
func TestUnmeteredEngineReportsFinalizeLatency(t *testing.T) {
	g := graph.New()
	src := g.AddNode(graph.Node{Name: "src"})
	mid := g.AddNode(graph.Node{
		Name: "double",
		Op: &operator.Map{Fn: func(e event.Event) ([]byte, error) {
			return operator.EncodeValue(operator.DecodeValue(e.Payload) * 2), nil
		}},
		Traits:      operator.MapTraits,
		Speculative: true,
	})
	g.Connect(src, 0, mid, 0)
	eng := newTestEngine(t, g, Options{Seed: 1, Health: true})
	sink := &sinkCollector{}
	if err := eng.Subscribe(mid, 0, sink.fn); err != nil {
		t.Fatal(err)
	}
	s, err := eng.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if _, err := s.Emit(i, operator.EncodeValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	sink.waitFinals(t, 50)
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	samples := eng.Health()
	if len(samples) == 0 {
		t.Fatal("Health() empty with Options.Health on")
	}
	for _, h := range samples {
		if h.Node != "double" {
			continue
		}
		if h.Committed == 0 {
			t.Errorf("node %s: committed = 0", h.Node)
		}
		if h.FinalizeCount == 0 || h.FinalizeP99Ns <= 0 {
			t.Errorf("node %s: finalizeCount=%d p99=%dns — unmetered engine dropped health latency samples",
				h.Node, h.FinalizeCount, h.FinalizeP99Ns)
		}
		return
	}
	t.Fatal("no Health() sample for node double")
}
