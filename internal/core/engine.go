// Package core implements the StreamMine speculation engine — the paper's
// primary contribution. It hosts an operator graph and executes every
// event under a speculative transaction (internal/stm), so that:
//
//   - operators may emit output events *before* their non-deterministic
//     decisions are stable on disk; such events are tagged speculative and
//     later finalized with a FINALIZE control message once the decision
//     log commits (paper §2.4, §3) — this overlaps the per-hop logging
//     latencies that a conventional engine pays serially;
//   - downstream operators process speculative events immediately inside
//     open transactions; fine-grained STM dependency tracking decides
//     whether their own outputs are speculative (paper §3.1);
//   - when a speculative event is replaced after an upstream rollback,
//     only the transactions that actually read affected state are rolled
//     back and re-executed, and re-executions whose outputs are unchanged
//     do not disturb downstream at all;
//   - expensive operators are optimistically parallelized by running
//     several events' transactions concurrently (paper §4, Figures 4–7).
//
// A node configured non-speculative reproduces the baseline system the
// paper compares against: outputs are held until the decision log is
// stable and every consumed input is final.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streammine/internal/checkpoint"
	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/metrics"
	"streammine/internal/profiler"
	"streammine/internal/storage"
	"streammine/internal/vclock"
	"streammine/internal/wal"
)

// Options configure an Engine.
type Options struct {
	// Pool is the stable-storage writer pool used by the decision log.
	// Required.
	Pool *storage.Pool
	// NodePools optionally gives individual nodes their own storage pool
	// (the paper's per-process setup: every operator process owns its
	// logging queues and storage points). Nodes not listed share Pool.
	NodePools map[graph.NodeID]*storage.Pool
	// Clock supplies source timestamps; defaults to a wall clock.
	Clock vclock.Clock
	// Seed derives every operator's deterministic PRNG.
	Seed uint64
	// TaintAll enables the coarse speculation ablation: any output of an
	// operator with open speculation is marked speculative, regardless of
	// data dependencies (DESIGN.md §6.1).
	TaintAll bool
	// StrictFinality closes the fine-grained finality hole (DESIGN.md
	// §9.1): the paper's rule (default) may in rare interleavings replace
	// an already-final output. With strictness on, an output is marked
	// speculative while any open task of the node is tainted or any older
	// task is still uncommitted, which makes final outputs immutable.
	StrictFinality bool
	// CheckpointStore receives operator snapshots; defaults to an
	// in-memory store.
	CheckpointStore checkpoint.Store
	// LogScanner, when set, is the recovery read path: it returns all
	// stable decision records (e.g. wal.SegmentStore.Scan over real
	// files). When nil, recovery reads each node's in-memory mirror of
	// stable records.
	LogScanner func() ([]wal.Record, error)
	// RestoreFromStorage primes every node from durable state at Start:
	// the latest checkpoint is restored and a replay plan is built from
	// the stable decision log before any event is admitted. On an empty
	// store this is a plain start, so a cluster worker can always start
	// partitions this way — a reassigned partition resumes exactly where
	// the failed worker's durable state left off (paper §2.2), a fresh
	// one starts from scratch. Requires LogScanner/CheckpointStore to
	// point at storage that survives the previous process.
	RestoreFromStorage bool
	// ConflictBackoff trades promptness for wasted work under contention
	// (paper §4): a task that has already aborted waits attempts×backoff
	// before re-executing, so it stops burning re-executions while the
	// conflicting older transaction is still open. Zero retries
	// immediately (maximum promptness).
	ConflictBackoff time.Duration
	// Metrics, when set, receives the engine's observability series
	// (docs/OBSERVABILITY.md lists them all). Instrumentation is
	// allocation-free on the hot path: existing atomic counters are read
	// at scrape time, and the few new measurements are atomic updates on
	// handles resolved once here. Nil disables instrumentation entirely.
	Metrics *metrics.Registry
	// Tracer, when set, records every event's lifecycle (ingress,
	// execution, speculative/final outputs, finalize/revoke, commit,
	// abort) as JSONL spans for offline latency breakdown. Tracing is
	// opt-in and does allocate; leave nil on benchmark runs.
	Tracer *metrics.Tracer
	// Health enables per-node health sampling (Engine.Health): each node
	// keeps its own admission→commit latency HDR, recorded at the same
	// site as core_finalize_latency but independent of Metrics, so
	// unmetered cluster partition engines can still ship per-hop latency
	// to the coordinator's health model. Recording is lock-free and
	// allocation-free (one HDR observe per committed event).
	Health bool
	// Profiler, when set, enables the speculation-waste profiler: STM
	// conflict witnesses resolved to named state buckets, per-operator
	// waste ledgers (CPU burned in aborted attempts, re-executions,
	// revoked fan-out) and the top-K conflict heatmap. Recording paths
	// are allocation-free; witnesses cost one nil check on STM failure
	// paths only. Nil disables profiling entirely (the STM commit path
	// is then byte-identical to the unprofiled build).
	Profiler *profiler.Profiler
}

// Engine hosts one process's share of the operator graph.
type Engine struct {
	g     *graph.Graph
	opts  Options
	store checkpoint.Store
	tick  *vclock.Ticker

	nodes []*node

	// met, tracer and prof are the observability hooks; all nil when
	// disabled so hot paths pay a single pointer check.
	met    *engineMetrics
	tracer *metrics.Tracer
	prof   *profiler.Profiler

	mu      sync.Mutex
	started bool
	stopped bool
}

// Common engine errors.
var (
	// ErrNotStarted is returned for operations requiring Start.
	ErrNotStarted = errors.New("core: engine not started")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("core: engine stopped")
	// ErrUnknownNode reports an out-of-range node ID.
	ErrUnknownNode = errors.New("core: unknown node")
	// ErrShed reports that admission control dropped a source event before
	// it entered the engine. The event was never logged, so recovery
	// semantics are untouched; the caller may retry, slow down, or ignore.
	ErrShed = errors.New("core: event shed by admission control")
)

// New validates the graph and builds an engine for it.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("validate graph: %w", err)
	}
	if opts.Pool == nil {
		return nil, errors.New("core: Options.Pool is required")
	}
	if opts.Clock == nil {
		opts.Clock = vclock.NewWall()
	}
	eng := &Engine{
		g:    g,
		opts: opts,
		tick: vclock.NewTicker(opts.Clock),
	}
	if opts.CheckpointStore != nil {
		eng.store = opts.CheckpointStore
	} else {
		eng.store = checkpoint.NewMemStore()
	}
	master := detrand.New(opts.Seed)
	for _, spec := range g.Nodes() {
		pool := opts.Pool
		if p, ok := opts.NodePools[spec.ID]; ok && p != nil {
			pool = p
		}
		n, err := newNode(eng, spec, master.Fork(), wal.New(pool))
		if err != nil {
			return nil, fmt.Errorf("node %q: %w", spec.Name, err)
		}
		eng.nodes = append(eng.nodes, n)
	}
	// Wire edges: each upstream node gets a link per outgoing edge, and
	// each downstream node learns its upstream per input (for ACKs and
	// replay requests). Edges into a flow-limited node are credit-gated:
	// the upstream link blocks (in a dedicated sender goroutine) once the
	// window of in-flight data events is exhausted, and the downstream
	// dispatcher grants credits back as events leave its mailbox.
	for _, e := range g.Edges() {
		up, down := eng.nodes[e.From], eng.nodes[e.To]
		inner := &localLink{target: down, input: e.ToInput}
		if w := creditWindow(g, down.spec); w > 0 {
			gate := flow.NewCreditGate(w)
			// Edge batching, like the credit window, is configured by the
			// receiving node's Limits: the sender coalesces consecutive
			// queued events into one EVENT_BATCH delivery (one credit
			// charge, one mailbox push).
			up.addLink(e.FromPort, newCreditedLink(inner, gate, down.spec.Flow.Batch(), down.spec.Flow.Linger()))
			down.granters[e.ToInput] = localGranter{gate: gate}
			down.inGates = append(down.inGates, gate)
		} else {
			up.addLink(e.FromPort, inner)
		}
		down.setUpstream(e.ToInput, localUpstream{n: up})
	}
	// Remote inputs (cluster cut edges): the credit gate lives on the
	// sending side's bridge; this side only returns credits, batched into
	// CREDIT frames on the input's upstream connection.
	for _, n := range eng.nodes {
		if w := creditWindow(g, n.spec); w > 0 {
			for _, idx := range n.spec.RemoteInputs {
				n.granters[idx] = &remoteGranter{n: n, input: idx, batch: creditBatch(w)}
			}
		}
		n.admission.Store(flow.NewAdmission(n.spec.Flow, eng.pressureProbe(n)))
	}
	eng.tracer = opts.Tracer
	if opts.Profiler != nil {
		eng.prof = opts.Profiler
		for _, n := range eng.nodes {
			n.prof = opts.Profiler.Node(n.spec.Name)
			n.installProfiler()
		}
	}
	if opts.Metrics != nil {
		eng.met = registerEngineMetrics(eng, opts.Metrics)
		for _, n := range eng.nodes {
			n.log.SetMetrics(eng.met.walLog)
			n.mailbox.SetQueueDelay(eng.met.mailboxWait)
		}
		if eng.prof != nil {
			registerProfilerMetrics(eng, opts.Metrics)
		}
	}
	return eng, nil
}

// creditWindow derives the per-edge credit window for a node: the explicit
// CreditWindow when set, else the mailbox capacity split evenly across the
// node's inputs (local and remote) so their windows sum to the capacity.
// Zero disables credit gating on the node's inbound edges.
func creditWindow(g *graph.Graph, spec graph.Node) int {
	f := spec.Flow
	if f == nil {
		return 0
	}
	if f.CreditWindow > 0 {
		return f.CreditWindow
	}
	if f.MailboxCap <= 0 {
		return 0
	}
	inputs := len(g.InputsOf(spec.ID)) + len(spec.RemoteInputs)
	if inputs < 1 {
		return 0
	}
	w := f.MailboxCap / inputs
	if w < 1 {
		w = 1
	}
	return w
}

// creditBatch sizes remote CREDIT batching: a quarter window amortizes the
// control frames while keeping the withheld remainder well below the
// window, so the remote sender never starves.
func creditBatch(window int) int {
	b := window / 4
	if b < 1 {
		b = 1
	}
	return b
}

// pressureProbe builds the downstream-congestion sampler driving a source
// node's AIMD admission controller: congested when any of the source's
// outputs is parked behind an exhausted credit gate, or any directly
// downstream mailbox is at least half full.
func (e *Engine) pressureProbe(n *node) func() bool {
	var downs []*node
	for _, edge := range e.g.OutputsOf(n.spec.ID) {
		downs = append(downs, e.nodes[edge.To])
	}
	return func() bool {
		if n.creditQueued() > 0 {
			return true
		}
		for _, d := range downs {
			if c := d.mailbox.DataCap(); c > 0 && d.mailbox.DataDepth()*2 >= c {
				return true
			}
		}
		return false
	}
}

// Graph returns the topology the engine runs.
func (e *Engine) Graph() *graph.Graph { return e.g }

// node returns the runtime for a node ID.
func (e *Engine) node(id graph.NodeID) (*node, error) {
	if int(id) < 0 || int(id) >= len(e.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return e.nodes[id], nil
}

// Start launches every node's goroutines.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("core: already started")
	}
	e.started = true
	for _, n := range e.nodes {
		if err := n.start(); err != nil {
			return fmt.Errorf("start node %q: %w", n.spec.Name, err)
		}
	}
	if e.opts.RestoreFromStorage {
		// A restored process lost every in-memory output buffer; ask local
		// upstreams to re-send what survived (bridged upstreams replay on
		// reconnect instead).
		for _, n := range e.nodes {
			n.requestUpstreamReplay()
		}
	}
	return nil
}

// Stop shuts every node down and waits for their goroutines. It does not
// close the storage pool (the caller owns it).
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	for _, n := range e.nodes {
		n.stop()
	}
}

// Drain blocks until every node's mailbox is empty and all dispatched
// tasks have committed (or the engine stops). Nodes are drained in
// topological order so upstream finalizations reach downstream nodes
// before those are waited on. It is the quiesce point used by tests and
// benchmarks between workload phases.
func (e *Engine) Drain() {
	order, err := e.g.TopoOrder()
	if err != nil {
		return // validated at New; unreachable
	}
	for _, id := range order {
		e.nodes[id].drain()
	}
}

// Quiesced reports whether the engine is momentarily idle: every node's
// mailbox and execution queue are empty and no tasks are open. Unlike
// Drain it does not block; cluster workers poll it to report quiescence
// to the coordinator's completion detector.
func (e *Engine) Quiesced() bool {
	for _, n := range e.nodes {
		if n.mailbox.Len() != 0 || n.execQ.Len() != 0 || n.openCount() != 0 ||
			n.creditQueued() != 0 {
			return false
		}
	}
	return true
}

// Err returns the first operator or logging error any node recorded, or
// nil.
func (e *Engine) Err() error {
	for _, n := range e.nodes {
		if err := n.err(); err != nil {
			return fmt.Errorf("node %q: %w", n.spec.Name, err)
		}
	}
	return nil
}

// Subscribe attaches fn to a node's output port. fn is called once per
// output event arrival (final=false while speculative) and once more with
// final=true when the event is finalized; events arriving already final
// get a single final=true call. fn runs on engine goroutines and must be
// fast and non-blocking.
func (e *Engine) Subscribe(id graph.NodeID, port int, fn func(ev event.Event, final bool)) error {
	n, err := e.node(id)
	if err != nil {
		return err
	}
	n.addLink(port, &callbackLink{fn: fn})
	return nil
}

// Source returns an injector handle for a source node (one with Op == nil
// and no inputs). Events created through it are final.
func (e *Engine) Source(id graph.NodeID) (*SourceHandle, error) {
	n, err := e.node(id)
	if err != nil {
		return nil, err
	}
	if n.spec.Op != nil || len(e.g.InputsOf(id)) != 0 {
		return nil, fmt.Errorf("core: node %q is not a source", n.spec.Name)
	}
	return &SourceHandle{n: n, tick: e.tick}, nil
}

// DetachSourceAdmission removes a source node's admission controller and
// hands it — together with the node's downstream-pressure probe — to the
// caller, which takes ownership of the admission decision (and of closing
// the controller). A network ingest gateway uses this to run the PR-3
// admission machinery *before* durably logging an accepted record: a shed
// record is then never logged and therefore invisible to recovery, while
// replayed re-emissions of already-logged records bypass admission
// entirely. After detaching, Emit/EmitBatch assign sequence numbers only
// to records the gateway already admitted, so event identities stay
// deterministic across gateway restarts (no sequence burn on shed).
//
// The returned controller is nil when the node's flow limits configure no
// admission control; the probe is always usable. Detach before the first
// emission — later emissions would race the ownership transfer.
func (e *Engine) DetachSourceAdmission(id graph.NodeID) (*flow.Admission, func() bool, error) {
	n, err := e.node(id)
	if err != nil {
		return nil, nil, err
	}
	if n.spec.Op != nil || len(e.g.InputsOf(id)) != 0 {
		return nil, nil, fmt.Errorf("core: node %q is not a source", n.spec.Name)
	}
	return n.admission.Swap(nil), e.pressureProbe(n), nil
}

// SourceHandle injects events into the graph through a source node.
type SourceHandle struct {
	n    *node
	tick *vclock.Ticker

	mu  sync.Mutex
	seq event.Seq
}

// Emit publishes one final event with a fresh timestamp, returning it.
func (s *SourceHandle) Emit(key uint64, payload []byte) (event.Event, error) {
	return s.EmitAt(s.tick.Next(), key, payload)
}

// EmitAt publishes one final event with an explicit timestamp. When the
// source node has admission control configured, the call blocks until the
// token bucket admits the event — or, with shedding enabled, returns
// ErrShed immediately. A shed event still consumes a sequence number so
// event IDs stay deterministic under worker failover re-emission.
func (s *SourceHandle) EmitAt(ts int64, key uint64, payload []byte) (event.Event, error) {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	ev := event.Event{
		ID:        event.ID{Source: event.SourceID(s.n.opID), Seq: seq},
		Timestamp: ts,
		Key:       key,
		Payload:   payload,
	}
	// The trace id is derived from the ID, so a failover re-emission of
	// the same sequence joins the original event's lineage.
	ev.Trace = event.TraceOf(ev.ID)
	if a := s.n.admission.Load(); a != nil {
		switch a.Admit() {
		case flow.Shed:
			return ev, ErrShed
		case flow.Stopped:
			return event.Event{}, ErrStopped
		}
	}
	if err := s.n.publishSourceEvent(ev); err != nil {
		return event.Event{}, err
	}
	return ev, nil
}

// BatchItem is one event-to-be in an EmitBatch call.
type BatchItem struct {
	Key     uint64
	Payload []byte
}

// EmitBatch publishes a run of final events with consecutive sequence
// numbers and fresh timestamps, charging source admission once for the
// whole run (one token-bucket transaction instead of len(items)) and
// injecting them as one batch (one mailbox push, one output-port
// delivery). With shedding enabled the whole batch is shed together —
// admitting a prefix would tear the batch's all-or-nothing admission
// accounting. Each event is still logged and recovered individually;
// batching changes transfer granularity only, never decision granularity.
func (s *SourceHandle) EmitBatch(items []BatchItem) ([]event.Event, error) {
	if len(items) == 0 {
		return nil, nil
	}
	evs := make([]event.Event, len(items))
	s.mu.Lock()
	for i, it := range items {
		s.seq++
		evs[i] = event.Event{
			ID:        event.ID{Source: event.SourceID(s.n.opID), Seq: s.seq},
			Timestamp: s.tick.Next(),
			Key:       it.Key,
			Payload:   it.Payload,
		}
		evs[i].Trace = event.TraceOf(evs[i].ID)
	}
	s.mu.Unlock()
	if a := s.n.admission.Load(); a != nil {
		switch a.AdmitN(len(evs)) {
		case flow.Shed:
			return evs, ErrShed
		case flow.Stopped:
			return nil, ErrStopped
		}
	}
	if err := s.n.publishSourceBatch(evs); err != nil {
		return nil, err
	}
	return evs, nil
}

// NodeStats aggregates one node's runtime counters.
type NodeStats struct {
	Dispatched      uint64
	Executed        uint64
	Committed       uint64
	Reexecuted      uint64 // re-executions after rollback
	SpecSent        uint64 // outputs first sent speculative
	FinalSent       uint64 // outputs first sent final
	Aborts          uint64 // STM aborts
	Conflicts       uint64 // STM conflicts observed
	FinalViolations uint64 // replacements of already-final outputs (DESIGN §9.1)
}

// TotalStats sums NodeStats across the whole engine.
func (e *Engine) TotalStats() NodeStats {
	var total NodeStats
	for _, n := range e.nodes {
		s := n.stats()
		total.Dispatched += s.Dispatched
		total.Executed += s.Executed
		total.Committed += s.Committed
		total.Reexecuted += s.Reexecuted
		total.SpecSent += s.SpecSent
		total.FinalSent += s.FinalSent
		total.Aborts += s.Aborts
		total.Conflicts += s.Conflicts
		total.FinalViolations += s.FinalViolations
	}
	return total
}

// Stats returns a node's counters.
func (e *Engine) Stats(id graph.NodeID) (NodeStats, error) {
	n, err := e.node(id)
	if err != nil {
		return NodeStats{}, err
	}
	return n.stats(), nil
}

// NodePressure is one node's flow-control state snapshot: queue occupancy,
// credit accounting, speculation throttle position, and admission counters.
// Zero-valued fields mean the mechanism is not configured on the node.
type NodePressure struct {
	Node string `json:"node"`

	// Data-lane mailbox occupancy against its configured capacity.
	DataDepth     int    `json:"dataDepth"`
	DataCap       int    `json:"dataCap,omitempty"`
	DataHighWater int    `json:"dataHighWater,omitempty"`
	Overflows     uint64 `json:"overflows,omitempty"`

	// Credit state: outputs parked behind exhausted gates, and credits
	// this node's inbound edges currently hold out (events in flight).
	CreditQueued       int `json:"creditQueued,omitempty"`
	CreditsOutstanding int `json:"creditsOutstanding,omitempty"`

	// Speculation throttle position.
	ThrottleOpen int    `json:"throttleOpen,omitempty"`
	ThrottleCap  int    `json:"throttleCap,omitempty"`
	Throttled    uint64 `json:"throttled,omitempty"`

	// Source admission counters.
	Admitted  uint64  `json:"admitted,omitempty"`
	Shed      uint64  `json:"shed,omitempty"`
	AdmitRate float64 `json:"admitRate,omitempty"`
}

// pressure snapshots one node's flow-control state.
func (n *node) pressure() NodePressure {
	p := NodePressure{
		Node:          n.spec.Name,
		DataDepth:     n.mailbox.DataDepth(),
		DataCap:       n.mailbox.DataCap(),
		DataHighWater: n.mailbox.DataHighWater(),
		Overflows:     n.mailbox.Overflows(),
		CreditQueued:  n.creditQueued(),
		Admitted:      n.admission.Load().Admitted(),
		Shed:          n.admission.Load().Shedded(),
		AdmitRate:     n.admission.Load().Rate(),
	}
	for _, g := range n.inGates {
		p.CreditsOutstanding += g.Outstanding()
	}
	p.ThrottleOpen, p.ThrottleCap, p.Throttled = n.throttle.Snapshot()
	return p
}

// Pressure snapshots flow-control state for every node, in node-ID order.
// It is cheap enough to serve from a health endpoint.
func (e *Engine) Pressure() []NodePressure {
	out := make([]NodePressure, 0, len(e.nodes))
	for _, n := range e.nodes {
		out = append(out, n.pressure())
	}
	return out
}

// Waste snapshots the speculation-waste profiler as a mergeable summary
// (the /debug/speculation body), or nil when profiling is disabled.
func (e *Engine) Waste() *profiler.Summary {
	if e.prof == nil {
		return nil
	}
	return e.prof.Summary()
}

// causedBy charges one aborted attempt to the upstream operator whose
// revoke or replacement caused it.
func (e *Engine) causedBy(src event.SourceID) {
	if e.prof == nil {
		return
	}
	e.prof.CausedBy(e.opName(src), 1)
}

// opName resolves an event source to an operator name hosted by this
// engine, or "op<id>" for remote operators the local topology cannot name.
func (e *Engine) opName(src event.SourceID) string {
	for _, n := range e.nodes {
		if event.SourceID(n.opID) == src {
			return n.spec.Name
		}
	}
	return fmt.Sprintf("op%d", src)
}
