package operator

import "testing"

func TestShedderDropsApproximateFraction(t *testing.T) {
	s := &Shedder{DropPerMille: 300}
	h := newHarness(t, s, 0)
	const total = 2000
	for i := uint64(0); i < total; i++ {
		h.mustFeed(0, ev(i, int64(i), i, i))
	}
	kept := len(h.outs)
	// Expect ≈70% kept; allow ±6 percentage points.
	if kept < total*64/100 || kept > total*76/100 {
		t.Fatalf("kept %d of %d (%.1f%%), want ≈70%%", kept, total, 100*float64(kept)/total)
	}
}

func TestShedderZeroRateKeepsAll(t *testing.T) {
	h := newHarness(t, &Shedder{}, 0)
	before := h.src.State()
	for i := uint64(0); i < 50; i++ {
		h.mustFeed(0, ev(i, int64(i), i, i))
	}
	if len(h.outs) != 50 {
		t.Fatalf("kept %d of 50", len(h.outs))
	}
	if h.src.State() != before {
		t.Fatal("zero-rate shedder drew random decisions")
	}
}

func TestShedderIsReplayDeterministic(t *testing.T) {
	run := func() []uint64 {
		s := &Shedder{DropPerMille: 500}
		h := newHarness(t, s, 0)
		for i := uint64(0); i < 200; i++ {
			h.mustFeed(0, ev(i, int64(i), i, i))
		}
		var kept []uint64
		for _, o := range h.outs {
			kept = append(kept, o.key)
		}
		return kept
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("two identical runs kept %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %d vs %d (drop decisions not deterministic)", i, a[i], b[i])
		}
	}
}

func TestPatternDetectsSequences(t *testing.T) {
	p := &Pattern{Stages: []uint64{1, 2, 3}, Buckets: 16}
	h := newHarness(t, p, PatternTraits(16).StateWords)
	seq := uint64(0)
	feed := func(key, stage uint64) {
		seq++
		h.mustFeed(0, ev(seq, int64(seq), key, stage))
	}
	// Key 7: full match.
	feed(7, 1)
	feed(7, 2)
	feed(7, 3)
	if len(h.outs) != 1 || h.outs[0].key != 7 || DecodeValue(h.outs[0].payload) != 1 {
		t.Fatalf("outs = %+v", h.outs)
	}
	// Interleaved keys progress independently.
	feed(8, 1)
	feed(7, 1)
	feed(8, 2)
	feed(7, 2)
	feed(8, 3)
	feed(7, 3)
	if len(h.outs) != 3 {
		t.Fatalf("outs = %d, want 3 matches", len(h.outs))
	}
	if DecodeValue(h.outs[2].payload) != 2 {
		t.Fatalf("key 7 second match count = %d", DecodeValue(h.outs[2].payload))
	}
}

func TestPatternOutOfSequenceResets(t *testing.T) {
	p := &Pattern{Stages: []uint64{1, 2, 3}, Buckets: 8}
	h := newHarness(t, p, PatternTraits(8).StateWords)
	seq := uint64(0)
	feed := func(stage uint64) {
		seq++
		h.mustFeed(0, ev(seq, int64(seq), 5, stage))
	}
	feed(1)
	feed(2)
	feed(9) // breaks the sequence
	feed(3) // must NOT complete
	if len(h.outs) != 0 {
		t.Fatalf("broken sequence matched: %+v", h.outs)
	}
	// Restart mid-stream: a stage-1 event resets progress to 1.
	feed(1)
	feed(2)
	feed(1) // restart
	feed(2)
	feed(3)
	if len(h.outs) != 1 {
		t.Fatalf("outs = %d, want 1", len(h.outs))
	}
}

func TestPatternInitValidation(t *testing.T) {
	mem := newHarness(t, &Passthrough{}, 0).mem
	if err := (&Pattern{Stages: []uint64{1}, Buckets: 4}).Init(testInitCtx{mem: mem}); err == nil {
		t.Fatal("single-stage pattern accepted")
	}
	if err := (&Pattern{Stages: []uint64{1, 2}}).Init(testInitCtx{mem: mem}); err == nil {
		t.Fatal("zero buckets accepted")
	}
}
