package operator

import (
	"errors"
	"testing"
	"time"

	"streammine/internal/detrand"
	"streammine/internal/event"
	"streammine/internal/stm"
)

// emitted is one captured output.
type emitted struct {
	port    int
	ts      int64
	key     uint64
	payload []byte
}

// testHarness drives an operator the way the engine does: one committed
// transaction per event, a seeded PRNG, a manual clock.
type testHarness struct {
	t   *testing.T
	mem *stm.Memory
	op  Operator
	src *detrand.Source
	now int64
	ts  int64

	outs []emitted
}

type testInitCtx struct{ mem *stm.Memory }

func (c testInitCtx) Memory() *stm.Memory { return c.mem }
func (c testInitCtx) OperatorID() uint32  { return 1 }

type testProcCtx struct {
	h     *testHarness
	tx    *stm.Tx
	input int
	ts    int64
}

func (c *testProcCtx) OperatorID() uint32 { return 1 }
func (c *testProcCtx) InputIndex() int    { return c.input }
func (c *testProcCtx) Tx() *stm.Tx        { return c.tx }
func (c *testProcCtx) Random() (uint64, error) {
	return c.h.src.Uint64(), nil
}
func (c *testProcCtx) Now() (int64, error) { return c.h.now, nil }
func (c *testProcCtx) Emit(key uint64, payload []byte) error {
	return c.EmitTo(0, key, payload)
}
func (c *testProcCtx) EmitTo(port int, key uint64, payload []byte) error {
	c.h.outs = append(c.h.outs, emitted{port: port, ts: c.ts, key: key, payload: append([]byte(nil), payload...)})
	return nil
}
func (c *testProcCtx) EmitAt(ts int64, key uint64, payload []byte) error {
	c.h.outs = append(c.h.outs, emitted{port: 0, ts: ts, key: key, payload: append([]byte(nil), payload...)})
	return nil
}

func newHarness(t *testing.T, op Operator, stateWords int) *testHarness {
	t.Helper()
	capWords := stateWords + 8
	h := &testHarness{t: t, mem: stm.NewMemory(capWords), op: op, src: detrand.New(42)}
	if err := op.Init(testInitCtx{mem: h.mem}); err != nil {
		t.Fatalf("Init: %v", err)
	}
	return h
}

// feed processes one event through a full transaction.
func (h *testHarness) feed(input int, e event.Event) error {
	h.t.Helper()
	h.ts++
	tx := h.mem.Begin(h.ts)
	ctx := &testProcCtx{h: h, tx: tx, input: input, ts: e.Timestamp}
	if err := h.op.Process(ctx, e); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Complete(); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (h *testHarness) mustFeed(input int, e event.Event) {
	h.t.Helper()
	if err := h.feed(input, e); err != nil {
		h.t.Fatalf("feed: %v", err)
	}
}

func ev(seq uint64, ts int64, key uint64, val uint64) event.Event {
	return event.Event{ID: event.ID{Source: 1, Seq: event.Seq(seq)}, Timestamp: ts, Key: key, Payload: EncodeValue(val)}
}

func TestFilter(t *testing.T) {
	f := &Filter{Pred: func(e event.Event) bool { return e.Key%2 == 0 }}
	h := newHarness(t, f, 0)
	for k := uint64(0); k < 6; k++ {
		h.mustFeed(0, ev(k, int64(k), k, k))
	}
	if len(h.outs) != 3 {
		t.Fatalf("emitted %d, want 3", len(h.outs))
	}
	for _, o := range h.outs {
		if o.key%2 != 0 {
			t.Fatalf("odd key %d passed filter", o.key)
		}
	}
}

func TestFilterNilPredForwardsAll(t *testing.T) {
	h := newHarness(t, &Filter{}, 0)
	h.mustFeed(0, ev(1, 1, 1, 1))
	if len(h.outs) != 1 {
		t.Fatalf("emitted %d, want 1", len(h.outs))
	}
}

func TestMap(t *testing.T) {
	m := &Map{Fn: func(e event.Event) ([]byte, error) {
		return EncodeValue(DecodeValue(e.Payload) * 2), nil
	}}
	h := newHarness(t, m, 0)
	h.mustFeed(0, ev(1, 1, 7, 21))
	if got := DecodeValue(h.outs[0].payload); got != 42 {
		t.Fatalf("mapped value = %d, want 42", got)
	}
}

func TestMapError(t *testing.T) {
	wantErr := errors.New("boom")
	m := &Map{Fn: func(event.Event) ([]byte, error) { return nil, wantErr }}
	h := newHarness(t, m, 0)
	if err := h.feed(0, ev(1, 1, 1, 1)); !errors.Is(err, wantErr) {
		t.Fatalf("feed = %v, want wrapped boom", err)
	}
}

func TestEnrichAnnotates(t *testing.T) {
	en := &Enrich{Annotate: func(e event.Event) []byte { return []byte("!") }}
	h := newHarness(t, en, 0)
	h.mustFeed(0, event.Event{ID: event.ID{Source: 1, Seq: 1}, Key: 1, Payload: []byte("data")})
	if got := string(h.outs[0].payload); got != "data!" {
		t.Fatalf("payload = %q", got)
	}
}

func TestUnionPassthrough(t *testing.T) {
	h := newHarness(t, &Union{}, 0)
	h.mustFeed(0, ev(1, 1, 5, 50))
	h.mustFeed(1, ev(1, 2, 6, 60))
	if len(h.outs) != 2 || h.outs[0].key != 5 || h.outs[1].key != 6 {
		t.Fatalf("outs = %+v", h.outs)
	}
}

func TestSplitRandom(t *testing.T) {
	h := newHarness(t, &Split{Outputs: 3}, 0)
	seen := make(map[int]int)
	for i := uint64(0); i < 60; i++ {
		h.mustFeed(0, ev(i, int64(i), i, i))
	}
	for _, o := range h.outs {
		if o.port < 0 || o.port >= 3 {
			t.Fatalf("port %d out of range", o.port)
		}
		seen[o.port]++
	}
	for p := 0; p < 3; p++ {
		if seen[p] == 0 {
			t.Fatalf("port %d never used: %v", p, seen)
		}
	}
}

func TestSplitByKey(t *testing.T) {
	h := newHarness(t, &Split{Outputs: 4, ByKey: true}, 0)
	for i := uint64(0); i < 16; i++ {
		h.mustFeed(0, ev(i, int64(i), i, i))
	}
	for i, o := range h.outs {
		if o.port != int(o.key%4) {
			t.Fatalf("event %d: port %d, want %d", i, o.port, o.key%4)
		}
	}
}

func TestSplitZeroOutputsDefaultsToOne(t *testing.T) {
	h := newHarness(t, &Split{}, 0)
	h.mustFeed(0, ev(1, 1, 9, 9))
	if h.outs[0].port != 0 {
		t.Fatalf("port = %d", h.outs[0].port)
	}
}

func TestPassthroughLogsDecision(t *testing.T) {
	h := newHarness(t, &Passthrough{LogDecision: true}, 0)
	before := h.src.State()
	h.mustFeed(0, ev(1, 1, 1, 1))
	if h.src.State() == before {
		t.Fatal("no random draw taken")
	}
	if len(h.outs) != 1 {
		t.Fatalf("outs = %d", len(h.outs))
	}
}

func TestCountWindowAvg(t *testing.T) {
	a := &CountWindowAvg{Window: 3}
	h := newHarness(t, a, CountWindowTraits.StateWords)
	vals := []uint64{10, 20, 30, 4, 5, 9}
	for i, v := range vals {
		h.mustFeed(0, ev(uint64(i), int64(i), 1, v))
	}
	if len(h.outs) != 2 {
		t.Fatalf("emitted %d windows, want 2", len(h.outs))
	}
	if got := DecodeValue(h.outs[0].payload); got != 20 {
		t.Fatalf("window 1 avg = %d, want 20", got)
	}
	if got := DecodeValue(h.outs[1].payload); got != 6 {
		t.Fatalf("window 2 avg = %d, want 6", got)
	}
}

func TestTimeWindowSum(t *testing.T) {
	w := &TimeWindowSum{Width: 10}
	h := newHarness(t, w, TimeWindowTraits.StateWords)
	h.mustFeed(0, ev(1, 1, 1, 5))
	h.mustFeed(0, ev(2, 4, 1, 7))
	h.mustFeed(0, ev(3, 9, 1, 1)) // window [0,10) total 13
	if len(h.outs) != 0 {
		t.Fatalf("window flushed early: %+v", h.outs)
	}
	h.mustFeed(0, ev(4, 12, 1, 100)) // opens [10,20): flush [0,10)
	if len(h.outs) != 1 {
		t.Fatalf("emitted %d, want 1", len(h.outs))
	}
	if got := DecodeValue(h.outs[0].payload); got != 13 {
		t.Fatalf("window sum = %d, want 13", got)
	}
	if h.outs[0].ts != 10 {
		t.Fatalf("window stamped %d, want 10", h.outs[0].ts)
	}
	// A late event (ts back in [0,10)) folds into the current window.
	h.mustFeed(0, ev(5, 3, 1, 1))
	h.mustFeed(0, ev(6, 25, 1, 0)) // flush [10,20): 100 + late 1
	if got := DecodeValue(h.outs[1].payload); got != 101 {
		t.Fatalf("window 2 sum = %d, want 101", got)
	}
}

func TestClassifier(t *testing.T) {
	c := &Classifier{Classes: 4}
	h := newHarness(t, c, 4)
	keys := []uint64{0, 4, 8, 1, 2}
	for i, k := range keys {
		h.mustFeed(0, ev(uint64(i), int64(i), k, 0))
	}
	// Keys 0,4,8 are class 0 → counts 1,2,3; key 1 class 1 → 1; key 2 class 2 → 1.
	wantCounts := []uint64{1, 2, 3, 1, 1}
	wantClasses := []uint64{0, 0, 0, 1, 2}
	for i, o := range h.outs {
		class, count := DecodePair(o.payload)
		if class != wantClasses[i] || count != wantCounts[i] {
			t.Fatalf("out %d = class %d count %d, want %d/%d", i, class, count, wantClasses[i], wantCounts[i])
		}
	}
}

func TestClassifierInitValidation(t *testing.T) {
	if err := (&Classifier{}).Init(testInitCtx{mem: stm.NewMemory(4)}); err == nil {
		t.Fatal("Classifier{Classes:0}.Init succeeded")
	}
}

func TestJoinMatches(t *testing.T) {
	j := &Join{Buckets: 16}
	h := newHarness(t, j, JoinTraits(16).StateWords)
	h.mustFeed(0, ev(1, 1, 7, 100)) // left 7=100, no match yet
	if len(h.outs) != 0 {
		t.Fatalf("premature join output")
	}
	h.mustFeed(1, ev(1, 2, 7, 200)) // right 7=200 → match
	if len(h.outs) != 1 {
		t.Fatalf("emitted %d, want 1", len(h.outs))
	}
	l, r := DecodePair(h.outs[0].payload)
	if l != 100 || r != 200 {
		t.Fatalf("join pair = (%d,%d), want (100,200)", l, r)
	}
	// Update left: join re-fires with latest values.
	h.mustFeed(0, ev(2, 3, 7, 111))
	l, r = DecodePair(h.outs[1].payload)
	if l != 111 || r != 200 {
		t.Fatalf("join pair = (%d,%d), want (111,200)", l, r)
	}
}

func TestJoinRejectsBadInput(t *testing.T) {
	j := &Join{Buckets: 4}
	h := newHarness(t, j, JoinTraits(4).StateWords)
	if err := h.feed(2, ev(1, 1, 1, 1)); err == nil {
		t.Fatal("input index 2 accepted by binary join")
	}
}

func TestSketchOpEstimates(t *testing.T) {
	s := &SketchOp{Depth: 4, Width: 256, Seed: 9}
	h := newHarness(t, s, SketchTraits(4, 256).StateWords)
	for i := 0; i < 5; i++ {
		h.mustFeed(0, ev(uint64(i), int64(i), 77, 0))
	}
	last := DecodeValue(h.outs[len(h.outs)-1].payload)
	if last != 5 {
		t.Fatalf("estimate after 5 updates = %d, want 5", last)
	}
}

func TestPayloadCodecs(t *testing.T) {
	if got := DecodeValue(EncodeValue(12345)); got != 12345 {
		t.Fatalf("value round trip = %d", got)
	}
	if got := DecodeValue(nil); got != 0 {
		t.Fatalf("DecodeValue(nil) = %d", got)
	}
	if got := DecodeValue([]byte{1}); got != 1 {
		t.Fatalf("short payload = %d", got)
	}
	a, b := DecodePair(EncodePair(7, 9))
	if a != 7 || b != 9 {
		t.Fatalf("pair round trip = (%d,%d)", a, b)
	}
}

func TestBusyWorkBurnsTime(t *testing.T) {
	start := time.Now()
	BusyWork(5 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("BusyWork(5ms) took %v", elapsed)
	}
	BusyWork(0)  // no-op
	BusyWork(-1) // no-op
}
