package operator

import (
	"fmt"
	"time"

	"streammine/internal/event"
	"streammine/internal/sketch"
	"streammine/internal/state"
)

// CountWindowAvg emits the average of each tumbling window of Window
// event values (interpreted via DecodeValue). Count-based windows depend
// on arrival order, so the operator is stateful and order-sensitive
// (paper §1).
type CountWindowAvg struct {
	// Window is the number of events per tumbling window.
	Window int

	sum   state.Field
	count state.Field
}

var _ Operator = (*CountWindowAvg)(nil)

// CountWindowTraits describe CountWindowAvg for engine configuration.
var CountWindowTraits = Traits{Stateful: true, OrderSensitive: true, StateWords: 2}

// Init allocates the running sum and count.
func (a *CountWindowAvg) Init(ctx InitContext) error {
	m := ctx.Memory()
	var err error
	if a.sum, err = state.NewField(m); err != nil {
		return err
	}
	a.sum = a.sum.Named(m, "sum")
	if a.count, err = state.NewField(m); err != nil {
		return err
	}
	a.count = a.count.Named(m, "count")
	return nil
}

// Process accumulates and emits the window average on the boundary.
func (a *CountWindowAvg) Process(ctx Context, e event.Event) error {
	tx := ctx.Tx()
	sum, err := a.sum.Add(tx, DecodeValue(e.Payload))
	if err != nil {
		return err
	}
	n, err := a.count.Add(tx, 1)
	if err != nil {
		return err
	}
	if int(n) < a.Window {
		return nil
	}
	if err := a.sum.Set(tx, 0); err != nil {
		return err
	}
	if err := a.count.Set(tx, 0); err != nil {
		return err
	}
	return ctx.Emit(e.Key, EncodeValue(sum/n))
}

// Terminate implements Operator.
func (a *CountWindowAvg) Terminate() error { return nil }

// TimeWindowSum sums event values over tumbling windows of Width ticks of
// *event* (application) time, emitting each window's sum when the first
// event of a later window arrives. Event-time windows are deterministic
// given the input order (paper §1: time-window aggregation is stateful but
// deterministic when based on event timestamps).
type TimeWindowSum struct {
	// Width is the window width in timestamp ticks.
	Width int64

	winStart state.Field
	sum      state.Field
	started  state.Field
}

var _ Operator = (*TimeWindowSum)(nil)

// TimeWindowTraits describe TimeWindowSum for engine configuration.
var TimeWindowTraits = Traits{Stateful: true, Deterministic: true, StateWords: 3}

// Init allocates window bookkeeping.
func (w *TimeWindowSum) Init(ctx InitContext) error {
	m := ctx.Memory()
	var err error
	if w.winStart, err = state.NewField(m); err != nil {
		return err
	}
	w.winStart = w.winStart.Named(m, "win_start")
	if w.sum, err = state.NewField(m); err != nil {
		return err
	}
	w.sum = w.sum.Named(m, "sum")
	if w.started, err = state.NewField(m); err != nil {
		return err
	}
	w.started = w.started.Named(m, "started")
	return nil
}

// Process folds the event into its window, flushing completed windows.
func (w *TimeWindowSum) Process(ctx Context, e event.Event) error {
	if w.Width <= 0 {
		return fmt.Errorf("time window width %d", w.Width)
	}
	tx := ctx.Tx()
	start := e.Timestamp - (e.Timestamp % w.Width)
	started, err := w.started.Get(tx)
	if err != nil {
		return err
	}
	cur := int64(0)
	if started != 0 {
		v, err := w.winStart.Get(tx)
		if err != nil {
			return err
		}
		cur = int64(v)
	}
	switch {
	case started == 0:
		if err := w.started.Set(tx, 1); err != nil {
			return err
		}
		if err := w.winStart.Set(tx, uint64(start)); err != nil {
			return err
		}
		return w.sum.Set(tx, DecodeValue(e.Payload))
	case start == cur:
		_, err := w.sum.Add(tx, DecodeValue(e.Payload))
		return err
	case start > cur:
		// Flush the finished window, stamped at its end.
		s, err := w.sum.Get(tx)
		if err != nil {
			return err
		}
		if err := ctx.EmitAt(cur+w.Width, uint64(cur), EncodeValue(s)); err != nil {
			return err
		}
		if err := w.winStart.Set(tx, uint64(start)); err != nil {
			return err
		}
		return w.sum.Set(tx, DecodeValue(e.Payload))
	default:
		// Late event: fold into the current window (simplest policy).
		_, err := w.sum.Add(tx, DecodeValue(e.Payload))
		return err
	}
}

// Terminate implements Operator.
func (w *TimeWindowSum) Terminate() error { return nil }

// Classifier is the paper's §3.1 running example: each event is assigned
// to one of Classes classes and the operator outputs how many events the
// class has received so far. Two concurrent events conflict exactly when
// they hit the same class — the knob behind the Figure 5 parallelism
// sweep (one class = no parallelism; many classes = high parallelism).
type Classifier struct {
	// Classes is the number of state fields (classes).
	Classes int
	// Cost is simulated per-event computation (classification work).
	Cost time.Duration

	counts state.Array
}

var _ Operator = (*Classifier)(nil)

// ClassifierTraits returns the traits for a classifier with n classes.
func ClassifierTraits(n int) Traits {
	return Traits{Stateful: true, Deterministic: true, StateWords: n}
}

// Init allocates one counter per class.
func (c *Classifier) Init(ctx InitContext) error {
	if c.Classes <= 0 {
		return fmt.Errorf("classifier needs classes > 0, got %d", c.Classes)
	}
	var err error
	if c.counts, err = state.NewArray(ctx.Memory(), c.Classes); err != nil {
		return err
	}
	c.counts = c.counts.Named(ctx.Memory(), "classes")
	return nil
}

// Process classifies by key, bumps the class counter, and emits
// (class, count).
func (c *Classifier) Process(ctx Context, e event.Event) error {
	SimulateWork(c.Cost)
	class := int(e.Key % uint64(c.Classes))
	n, err := c.counts.Add(ctx.Tx(), class, 1)
	if err != nil {
		return err
	}
	return ctx.Emit(uint64(class), EncodePair(uint64(class), n))
}

// Terminate implements Operator.
func (c *Classifier) Terminate() error { return nil }

// Join matches events from two input streams by key: the latest value
// seen on each side is retained, and an arrival on either side that finds
// a match on the other emits the pair. Matching depends on arrival order
// across streams, making Join stateful and non-deterministic (paper §1).
type Join struct {
	// Buckets is the hash-table capacity per side.
	Buckets int

	sides [2]state.Map
}

var _ Operator = (*Join)(nil)

// JoinTraits returns the traits for a join with the given capacity.
func JoinTraits(buckets int) Traits {
	return Traits{Stateful: true, OrderSensitive: true, StateWords: 2 * buckets * 3}
}

// Init allocates both side tables.
func (j *Join) Init(ctx InitContext) error {
	if j.Buckets <= 0 {
		return fmt.Errorf("join needs buckets > 0, got %d", j.Buckets)
	}
	names := [2]string{"left", "right"}
	for i := range j.sides {
		m, err := state.NewMap(ctx.Memory(), j.Buckets)
		if err != nil {
			return err
		}
		j.sides[i] = m.Named(ctx.Memory(), names[i])
	}
	return nil
}

// Process stores the event's value on its side and probes the other side.
func (j *Join) Process(ctx Context, e event.Event) error {
	side := ctx.InputIndex()
	if side < 0 || side > 1 {
		return fmt.Errorf("join got input index %d", side)
	}
	tx := ctx.Tx()
	if err := j.sides[side].Put(tx, e.Key, DecodeValue(e.Payload)); err != nil {
		return err
	}
	other, found, err := j.sides[1-side].Get(tx, e.Key)
	if err != nil {
		return err
	}
	if !found {
		return nil
	}
	mine := DecodeValue(e.Payload)
	if side == 1 {
		mine, other = other, mine
	}
	return ctx.Emit(e.Key, EncodePair(mine, other))
}

// Terminate implements Operator.
func (j *Join) Terminate() error { return nil }

// SketchOp is the paper's expensive parallelizable operator (§4, Figures
// 6 and 7): a count sketch over the event keys. Each event updates d
// counters at data-dependent positions and emits the key's new frequency
// estimate; concurrent events conflict only when their counters collide.
type SketchOp struct {
	// Depth and Width are the sketch dimensions.
	Depth, Width int
	// Seed derives the sketch hash functions.
	Seed uint64
	// Cost is simulated per-event analysis computation.
	Cost time.Duration

	cs *sketch.TxCountSketch
}

var _ Operator = (*SketchOp)(nil)

// SketchTraits returns the traits for the given sketch dimensions.
func SketchTraits(depth, width int) Traits {
	return Traits{Stateful: true, Deterministic: true, StateWords: depth * width}
}

// Init allocates the counter matrix.
func (s *SketchOp) Init(ctx InitContext) error {
	cs, err := sketch.NewTxCountSketch(ctx.Memory(), s.Depth, s.Width, s.Seed)
	if err != nil {
		return err
	}
	s.cs = cs
	return nil
}

// Process updates the sketch and emits the key's estimate.
func (s *SketchOp) Process(ctx Context, e event.Event) error {
	SimulateWork(s.Cost)
	tx := ctx.Tx()
	if err := s.cs.Update(tx, e.Key, 1); err != nil {
		return err
	}
	est, err := s.cs.Estimate(tx, e.Key)
	if err != nil {
		return err
	}
	return ctx.Emit(e.Key, EncodeValue(uint64(est)))
}

// Terminate implements Operator.
func (s *SketchOp) Terminate() error { return nil }
