package operator

import (
	"fmt"

	"streammine/internal/event"
	"streammine/internal/state"
)

// Shedder drops a configurable fraction of events to protect downstream
// operators from overload — the load-management technique Borealis uses
// (paper §5, Tatbul et al.). Each drop decision is a *logged* random draw,
// so a shedding pipeline still recovers precisely: replay drops exactly
// the same events.
type Shedder struct {
	NopOperator
	// DropPerMille is the drop probability in thousandths (0..1000).
	DropPerMille uint64
}

var _ Operator = (*Shedder)(nil)

// ShedderTraits describe Shedder for engine configuration (it takes a
// logged decision per event).
var ShedderTraits = Traits{}

// Process forwards the event unless the logged draw sheds it.
func (s *Shedder) Process(ctx Context, e event.Event) error {
	if s.DropPerMille > 0 {
		r, err := ctx.Random()
		if err != nil {
			return err
		}
		if r%1000 < s.DropPerMille {
			return nil
		}
	}
	return ctx.Emit(e.Key, e.Payload)
}

// Pattern detects a fixed per-key sequence of stages — a minimal complex-
// event-processing operator. An event's payload value names a stage; when
// a key's events traverse Stages in order, Pattern emits one match event
// (payload = number of completed matches for that key) and resets that
// key. Out-of-sequence stages reset progress (to stage 1 if the event is
// the first stage, else to zero), the common CEP "strict contiguity"
// policy.
type Pattern struct {
	// Stages is the value sequence to match; at least two entries.
	Stages []uint64
	// Buckets bounds the number of concurrently tracked keys.
	Buckets int

	progress state.Map // key → next stage index
	matches  state.Map // key → completed match count
}

var _ Operator = (*Pattern)(nil)

// PatternTraits returns the traits for the given key capacity.
func PatternTraits(buckets int) Traits {
	return Traits{Stateful: true, Deterministic: true, StateWords: 2 * buckets * 3}
}

// Init allocates the tracking tables.
func (p *Pattern) Init(ctx InitContext) error {
	if len(p.Stages) < 2 {
		return fmt.Errorf("pattern needs at least 2 stages, got %d", len(p.Stages))
	}
	if p.Buckets <= 0 {
		return fmt.Errorf("pattern needs buckets > 0, got %d", p.Buckets)
	}
	var err error
	if p.progress, err = state.NewMap(ctx.Memory(), p.Buckets); err != nil {
		return err
	}
	p.matches, err = state.NewMap(ctx.Memory(), p.Buckets)
	return err
}

// Process advances the key's pattern state machine.
func (p *Pattern) Process(ctx Context, e event.Event) error {
	tx := ctx.Tx()
	stage := DecodeValue(e.Payload)
	cur, _, err := p.progress.Get(tx, e.Key)
	if err != nil {
		return err
	}
	next := uint64(0)
	switch {
	case stage == p.Stages[cur]:
		next = cur + 1
	case stage == p.Stages[0]:
		next = 1
	}
	if int(next) < len(p.Stages) {
		return p.progress.Put(tx, e.Key, next)
	}
	// Full match: bump the key's match count, reset, and emit.
	n, _, err := p.matches.Get(tx, e.Key)
	if err != nil {
		return err
	}
	n++
	if err := p.matches.Put(tx, e.Key, n); err != nil {
		return err
	}
	if err := p.progress.Put(tx, e.Key, 0); err != nil {
		return err
	}
	return ctx.Emit(e.Key, EncodeValue(n))
}

// Terminate implements Operator.
func (p *Pattern) Terminate() error { return nil }
