package operator

import (
	"testing"

	"streammine/internal/event"
)

func TestDistinctCountGrowsWithNewKeys(t *testing.T) {
	d := &DistinctCount{Precision: 10, Seed: 5}
	h := newHarness(t, d, DistinctCountTraits(10).StateWords)
	for i := uint64(0); i < 200; i++ {
		h.mustFeed(0, ev(i, int64(i), i, 0))
	}
	last := DecodeValue(h.outs[len(h.outs)-1].payload)
	if last < 180 || last > 220 {
		t.Fatalf("distinct estimate after 200 keys = %d", last)
	}
	// Repeats do not move the estimate.
	before := last
	for i := uint64(0); i < 50; i++ {
		h.mustFeed(0, ev(1000+i, int64(1000+i), i, 0))
	}
	after := DecodeValue(h.outs[len(h.outs)-1].payload)
	if after != before {
		t.Fatalf("repeated keys moved the estimate: %d → %d", before, after)
	}
}

func TestDistinctCountBadPrecision(t *testing.T) {
	d := &DistinctCount{Precision: 2}
	if err := d.Init(testInitCtx{mem: newHarness(t, &Passthrough{}, 0).mem}); err == nil {
		t.Fatal("precision 2 accepted")
	}
}

func TestDedupDropsRepeats(t *testing.T) {
	d := &Dedup{Capacity: 64}
	h := newHarness(t, d, DedupTraits(64).StateWords)
	keys := []uint64{1, 2, 1, 3, 2, 1, 4}
	for i, k := range keys {
		h.mustFeed(0, ev(uint64(i), int64(i), k, k*10))
	}
	if len(h.outs) != 4 {
		t.Fatalf("emitted %d, want 4 distinct", len(h.outs))
	}
	want := []uint64{1, 2, 3, 4}
	for i, o := range h.outs {
		if o.key != want[i] {
			t.Fatalf("out %d key = %d, want %d", i, o.key, want[i])
		}
	}
}

func TestDedupGenerationReset(t *testing.T) {
	d := &Dedup{Capacity: 4}
	h := newHarness(t, d, DedupTraits(4).StateWords)
	// Fill the generation.
	for k := uint64(1); k <= 4; k++ {
		h.mustFeed(0, ev(k, int64(k), k, 0))
	}
	// The fifth distinct key triggers a reset, after which an old key
	// passes again (documented bounded-memory trade-off).
	h.mustFeed(0, ev(5, 5, 5, 0))
	h.mustFeed(0, ev(6, 6, 1, 0))
	if len(h.outs) != 6 {
		t.Fatalf("emitted %d, want 6 (reset readmits old keys)", len(h.outs))
	}
}

func TestDedupInitValidation(t *testing.T) {
	if err := (&Dedup{}).Init(testInitCtx{mem: newHarness(t, &Passthrough{}, 0).mem}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestDedupPayloadPreserved(t *testing.T) {
	d := &Dedup{Capacity: 8}
	h := newHarness(t, d, DedupTraits(8).StateWords)
	h.mustFeed(0, event.Event{ID: event.ID{Source: 1, Seq: 1}, Key: 7, Payload: []byte("keep me")})
	if string(h.outs[0].payload) != "keep me" {
		t.Fatalf("payload = %q", h.outs[0].payload)
	}
}
