// Package operator defines the operator programming model: the Operator
// interface (Init / Process / Terminate, paper §2.3), the processing
// Context through which operators access transactional state and logged
// non-determinism, and the built-in operators used by the paper's example
// application — filter, map, enrich, union, split, windowed aggregates,
// join, classifier and the count-sketch operator.
//
// Operators never touch wall-clock time or math/rand directly: random
// draws and time reads go through the Context so the engine can log them
// (precise recovery) and replay them after a failure.
package operator

import (
	"sync/atomic"
	"time"

	"streammine/internal/event"
	"streammine/internal/stm"
)

// InitContext is passed to Operator.Init for state allocation. Allocation
// must be deterministic: recovery re-runs Init to rebuild the layout and
// then overwrites the words with the checkpoint image.
type InitContext interface {
	// Memory returns the operator's transactional heap.
	Memory() *stm.Memory
	// OperatorID identifies this operator instance.
	OperatorID() uint32
}

// Context is passed to Operator.Process for each input event.
type Context interface {
	// OperatorID identifies this operator instance.
	OperatorID() uint32
	// InputIndex reports which input stream delivered the current event.
	InputIndex() int
	// Tx returns the transaction the event is being processed under. For
	// stateless operators it is still non-nil but unused.
	Tx() *stm.Tx
	// Random returns a logged non-deterministic draw: live it comes from
	// the operator PRNG and is recorded in the decision log; during replay
	// it is fed back from the log.
	Random() (uint64, error)
	// Now returns a logged read of the operator's clock (ticks), with the
	// same log/replay behaviour as Random.
	Now() (int64, error)
	// Emit queues an output event on output port 0 carrying the payload;
	// the engine assigns identity, timestamp (inherited from the input
	// event) and speculation metadata.
	Emit(key uint64, payload []byte) error
	// EmitTo queues an output on a specific output port (Split uses this).
	EmitTo(port int, key uint64, payload []byte) error
	// EmitAt queues an output with an explicit application timestamp
	// (window aggregates emit at window boundaries).
	EmitAt(ts int64, key uint64, payload []byte) error
}

// Operator is a stream processing operator. Process is called once per
// input event; everything it does must flow through ctx so that it can be
// speculatively executed, rolled back, and replayed.
type Operator interface {
	// Init allocates state; called at startup and again during recovery.
	Init(ctx InitContext) error
	// Process handles one input event.
	Process(ctx Context, e event.Event) error
	// Terminate releases resources; called once at shutdown.
	Terminate() error
}

// Traits describe an operator's fault-tolerance-relevant properties; the
// engine uses them to decide what must be logged (paper §1: stateless/
// stateful × deterministic/non-deterministic).
type Traits struct {
	// Stateful operators need checkpoints; stateless ones only replay.
	Stateful bool
	// Deterministic operators take no loggable decisions themselves.
	Deterministic bool
	// OrderSensitive operators consume multiple inputs whose interleaving
	// must be logged (unions, joins).
	OrderSensitive bool
	// StateWords is the transactional memory capacity the operator needs.
	StateWords int
}

// NopOperator is an embeddable base supplying no-op Init and Terminate.
type NopOperator struct{}

// Init implements Operator with no state.
func (NopOperator) Init(InitContext) error { return nil }

// Terminate implements Operator with no cleanup.
func (NopOperator) Terminate() error { return nil }

// SimulateWork models d of computation time without occupying the CPU
// (time.Sleep). The paper's testbed is a SUN T1000 with 32 hardware
// threads, so concurrent operator executions genuinely overlap; on an
// arbitrary (possibly single-core) reproduction host, sleeping preserves
// that overlap while the STM still serializes genuinely conflicting work
// (DESIGN.md §2, hardware substitution). Built-in operators use this for
// their Cost knobs.
func SimulateWork(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}

// BusyWork burns approximately d of CPU time. It models computational
// cost when genuine CPU occupancy matters (single-threaded microbenches
// such as the Figure 8 reproduction); unlike SimulateWork it keeps the
// goroutine on-CPU.
func BusyWork(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	x := uint64(88172645463325252)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ { // xorshift batch between clock checks
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	busySink.Store(x)
}

// busySink defeats dead-code elimination of BusyWork's loop.
var busySink atomic.Uint64
