package operator

import (
	"fmt"
	"time"

	"streammine/internal/event"
)

// Filter forwards events for which Pred returns true. Stateless and
// deterministic (paper §1's cheapest class).
type Filter struct {
	NopOperator
	// Pred decides whether to forward the event.
	Pred func(e event.Event) bool
}

var _ Operator = (*Filter)(nil)

// FilterTraits describe Filter for engine configuration.
var FilterTraits = Traits{Deterministic: true}

// Process forwards matching events unchanged.
func (f *Filter) Process(ctx Context, e event.Event) error {
	if f.Pred == nil || f.Pred(e) {
		return ctx.Emit(e.Key, e.Payload)
	}
	return nil
}

// Map transforms each event's payload with Fn. Stateless, deterministic.
type Map struct {
	NopOperator
	// Fn computes the output payload; returning an error drops the graph
	// into failure handling.
	Fn func(e event.Event) ([]byte, error)
}

var _ Operator = (*Map)(nil)

// MapTraits describe Map for engine configuration.
var MapTraits = Traits{Deterministic: true}

// Process emits the transformed payload.
func (m *Map) Process(ctx Context, e event.Event) error {
	out, err := m.Fn(e)
	if err != nil {
		return fmt.Errorf("map fn: %w", err)
	}
	return ctx.Emit(e.Key, out)
}

// Enrich models the paper's enrichment step: a costly stateless operation
// (e.g. a database lookup) that appends derived information to the event.
// Being stateless and order-insensitive it parallelizes by replication.
type Enrich struct {
	NopOperator
	// Cost is the simulated per-event computation time.
	Cost time.Duration
	// Annotate produces the enrichment suffix; nil appends nothing.
	Annotate func(e event.Event) []byte
}

var _ Operator = (*Enrich)(nil)

// EnrichTraits describe Enrich for engine configuration.
var EnrichTraits = Traits{Deterministic: true}

// Process burns the configured cost and emits payload+annotation.
func (en *Enrich) Process(ctx Context, e event.Event) error {
	SimulateWork(en.Cost)
	payload := e.Payload
	if en.Annotate != nil {
		suffix := en.Annotate(e)
		merged := make([]byte, 0, len(payload)+len(suffix))
		merged = append(merged, payload...)
		merged = append(merged, suffix...)
		payload = merged
	}
	return ctx.Emit(e.Key, payload)
}

// Union merges its input streams into one output stream. The operator
// itself is a pass-through; its non-determinism is the interleaving order,
// which the engine logs per event (Traits.OrderSensitive).
type Union struct {
	NopOperator
}

var _ Operator = (*Union)(nil)

// UnionTraits mark the interleaving order as a logged decision.
var UnionTraits = Traits{OrderSensitive: true}

// Process forwards the event unchanged.
func (u *Union) Process(ctx Context, e event.Event) error {
	return ctx.Emit(e.Key, e.Payload)
}

// Split balances events across Outputs downstream branches. With
// ByKey=false the branch is chosen by a logged random draw (the paper's
// §2.2 Split example: stateless but non-deterministic); with ByKey=true it
// hashes the event key (deterministic partitioning).
type Split struct {
	NopOperator
	// Outputs is the number of output ports.
	Outputs int
	// ByKey selects deterministic key partitioning instead of random
	// load balancing.
	ByKey bool
}

var _ Operator = (*Split)(nil)

// SplitTraits describe the random-balancing variant (the logged one).
var SplitTraits = Traits{}

// Process routes the event to one output port.
func (s *Split) Process(ctx Context, e event.Event) error {
	n := s.Outputs
	if n <= 0 {
		n = 1
	}
	var port int
	if s.ByKey {
		port = int(e.Key % uint64(n))
	} else {
		r, err := ctx.Random()
		if err != nil {
			return err
		}
		port = int(r % uint64(n))
	}
	return ctx.EmitTo(port, e.Key, e.Payload)
}

// Passthrough forwards every event and optionally burns CPU and/or takes a
// logged decision per event; it is the configurable unit operator used by
// the latency experiments (Figures 2, 3, 8), where each pipeline stage
// "logs a 64-bit value as decision" per event.
type Passthrough struct {
	NopOperator
	// Cost is simulated computation per event.
	Cost time.Duration
	// LogDecision draws one logged random value per event, reproducing
	// the paper's per-event 64-bit decision.
	LogDecision bool
}

var _ Operator = (*Passthrough)(nil)

// Process optionally works and draws, then forwards the event.
func (p *Passthrough) Process(ctx Context, e event.Event) error {
	SimulateWork(p.Cost)
	if p.LogDecision {
		if _, err := ctx.Random(); err != nil {
			return err
		}
	}
	return ctx.Emit(e.Key, e.Payload)
}
