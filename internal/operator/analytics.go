package operator

import (
	"fmt"

	"streammine/internal/event"
	"streammine/internal/sketch"
	"streammine/internal/state"
)

// DistinctCount estimates the number of distinct keys seen so far with a
// transactional HyperLogLog, emitting the running estimate after every
// event. Like the count sketch, each update touches one data-dependent
// register, so the operator parallelizes optimistically.
type DistinctCount struct {
	// Precision sets 2^Precision HLL registers (4..16).
	Precision uint
	// Seed derives the hash function.
	Seed uint64

	hll *sketch.TxHyperLogLog
}

var _ Operator = (*DistinctCount)(nil)

// DistinctCountTraits returns the traits for the given precision.
func DistinctCountTraits(precision uint) Traits {
	return Traits{Stateful: true, Deterministic: true, StateWords: 1 << precision}
}

// Init allocates the registers.
func (d *DistinctCount) Init(ctx InitContext) error {
	hll, err := sketch.NewTxHyperLogLog(ctx.Memory(), d.Precision, d.Seed)
	if err != nil {
		return err
	}
	d.hll = hll
	return nil
}

// Process observes the key and emits the running distinct estimate.
func (d *DistinctCount) Process(ctx Context, e event.Event) error {
	tx := ctx.Tx()
	if err := d.hll.Add(tx, e.Key); err != nil {
		return err
	}
	est, err := d.hll.Estimate(tx)
	if err != nil {
		return err
	}
	return ctx.Emit(e.Key, EncodeValue(est))
}

// Terminate implements Operator.
func (d *DistinctCount) Terminate() error { return nil }

// Dedup forwards only the first occurrence of each key, remembering keys
// in a transactional hash set of fixed capacity. When the set fills up it
// is cleared (generation reset) — a pragmatic bounded-memory policy for
// streams whose duplicates cluster in time.
type Dedup struct {
	// Capacity is the number of distinct keys remembered per generation.
	Capacity int

	seen state.Map
	size state.Field
}

var _ Operator = (*Dedup)(nil)

// DedupTraits returns the traits for the given capacity.
func DedupTraits(capacity int) Traits {
	return Traits{Stateful: true, Deterministic: true, StateWords: capacity*2*3 + 1}
}

// Init allocates the key set (2× buckets for probe headroom).
func (d *Dedup) Init(ctx InitContext) error {
	if d.Capacity <= 0 {
		return fmt.Errorf("dedup needs capacity > 0, got %d", d.Capacity)
	}
	m, err := state.NewMap(ctx.Memory(), d.Capacity*2)
	if err != nil {
		return err
	}
	d.seen = m
	size, err := state.NewField(ctx.Memory())
	if err != nil {
		return err
	}
	d.size = size
	return nil
}

// Process drops keys already seen in the current generation.
func (d *Dedup) Process(ctx Context, e event.Event) error {
	tx := ctx.Tx()
	_, dup, err := d.seen.Get(tx, e.Key)
	if err != nil {
		return err
	}
	if dup {
		return nil
	}
	n, err := d.size.Get(tx)
	if err != nil {
		return err
	}
	if int(n) >= d.Capacity {
		// Generation reset: forget everything and start over (bounded
		// memory at the price of possible duplicates across generations).
		if err := d.seen.Clear(tx); err != nil {
			return err
		}
		n = 0
	}
	if err := d.seen.Put(tx, e.Key, 1); err != nil {
		return err
	}
	if err := d.size.Set(tx, n+1); err != nil {
		return err
	}
	return ctx.Emit(e.Key, e.Payload)
}

// Terminate implements Operator.
func (d *Dedup) Terminate() error { return nil }
