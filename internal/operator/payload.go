package operator

import "encoding/binary"

// EncodeValue packs a uint64 into the canonical 8-byte payload used by the
// numeric built-in operators and the experiment workloads.
func EncodeValue(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeValue unpacks a payload produced by EncodeValue. Short payloads
// decode as zero-extended.
func DecodeValue(p []byte) uint64 {
	var b [8]byte
	copy(b[:], p)
	return binary.LittleEndian.Uint64(b[:])
}

// EncodePair packs two uint64s (used by join and window outputs).
func EncodePair(a, b uint64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], a)
	binary.LittleEndian.PutUint64(buf[8:], b)
	return buf[:]
}

// DecodePair unpacks an EncodePair payload.
func DecodePair(p []byte) (uint64, uint64) {
	var buf [16]byte
	copy(buf[:], p)
	return binary.LittleEndian.Uint64(buf[:8]), binary.LittleEndian.Uint64(buf[8:])
}
