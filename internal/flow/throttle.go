package flow

import "sync"

// SpecThrottle caps the number of open speculative tasks on one node and
// adapts the cap to the observed abort rate: a window with many aborts
// halves the cap (speculation is being wasted), a clean window raises it
// by one (speculation is paying off). This operationalizes the paper's §4
// promptness-vs-waste trade-off.
//
// Deadlock safety: strict in-order commit means the task at the commit
// head must always be able to execute, even when younger tasks hold every
// slot. Admit therefore never blocks a caller that reports head == true.
// Workers blocked in Admit re-check head status on every wake, so a task
// that becomes the head while parked gets through.
type SpecThrottle struct {
	mu   sync.Mutex
	cond *sync.Cond

	max  int // configured ceiling
	min  int // adaptive floor
	cap  int // current adaptive cap
	open int

	// abort-rate window
	window  int
	commits int
	aborts  int

	gen       uint64 // state generation, bumped on every change (see WaitSince)
	throttled uint64 // number of admissions that had to wait or defer
	closed    bool
}

// abortHighWater is the abort fraction per window above which the cap is
// halved.
const abortHighWater = 0.3

// NewSpecThrottle builds a throttle from Limits. Returns nil when
// speculation throttling is not configured.
func NewSpecThrottle(l *Limits) *SpecThrottle {
	if l == nil || l.MaxOpenSpec <= 0 {
		return nil
	}
	min := l.MinOpenSpec
	if min < 1 {
		min = 1
	}
	if min > l.MaxOpenSpec {
		min = l.MaxOpenSpec
	}
	s := &SpecThrottle{max: l.MaxOpenSpec, min: min, cap: l.MaxOpenSpec, window: 16}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Admit blocks until the task may open (open < cap), unless head is true,
// in which case it is admitted immediately regardless of occupancy.
// head must be re-evaluated by the caller on each call; Admit re-invokes
// it after every wake so a parked task that becomes the commit head is
// released. Returns false if the throttle was closed.
func (s *SpecThrottle) Admit(head func() bool) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	waited := false
	for !s.closed && s.open >= s.cap && !head() {
		if !waited {
			waited = true
			s.throttled++
		}
		s.cond.Wait()
	}
	if s.closed {
		return false
	}
	s.open++
	return true
}

// TryAdmit is the non-blocking form of Admit: it either takes a slot
// immediately (or bypasses the cap for the commit head) or refuses.
// Callers that cannot afford to block — a worker pool where parking every
// worker would strand the commit head in the run queue with nobody to
// execute it — defer the task instead and park via WaitSince.
func (s *SpecThrottle) TryAdmit(head func() bool) (admitted, closed bool) {
	if s == nil {
		return true, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, true
	}
	if s.open >= s.cap && !head() {
		s.throttled++
		return false, false
	}
	s.open++
	return true, false
}

// Gen returns the current state generation. Capture it before a TryAdmit
// attempt; if the attempt fails, WaitSince(gen) blocks only if nothing has
// changed since, so a slot release or commit-cursor advance between the
// two calls is never lost.
func (s *SpecThrottle) Gen() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// WaitSince blocks until the throttle's state has changed relative to gen
// (slot released, cap adapted, commit cursor advanced, task queued) or the
// throttle closes. It reports whether the throttle is still open.
func (s *SpecThrottle) WaitSince(gen uint64) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && s.gen == gen {
		s.cond.Wait()
	}
	return !s.closed
}

// Release returns one slot, recording whether the task committed or
// aborted, and retunes the cap at window boundaries.
func (s *SpecThrottle) Release(aborted bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.open > 0 {
		s.open--
	}
	s.observeLocked(aborted)
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Observe feeds one outcome sample without releasing a slot — used for
// re-executions, where the task keeps its slot but the aborted attempt
// still counts as speculation waste.
func (s *SpecThrottle) Observe(aborted bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observeLocked(aborted)
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Wake re-evaluates all parked admissions. The committer calls it every
// time the commit cursor advances so a parked task that just became the
// commit head gets through its head-bypass even when no slot was
// released (e.g. the previous head was cancelled before ever executing);
// the dispatcher calls it after queuing new work so deferred workers
// re-pop — the fresh task may be the commit head they are starving.
func (s *SpecThrottle) Wake() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// observeLocked updates the abort window and adapts the cap. Caller
// holds s.mu.
func (s *SpecThrottle) observeLocked(aborted bool) {
	if aborted {
		s.aborts++
	} else {
		s.commits++
	}
	if s.commits+s.aborts >= s.window {
		if float64(s.aborts) > abortHighWater*float64(s.commits+s.aborts) {
			s.cap /= 2
			if s.cap < s.min {
				s.cap = s.min
			}
		} else if s.cap < s.max {
			s.cap++
		}
		s.commits, s.aborts = 0, 0
	}
}

// Reset clears occupancy and the abort window (crash recovery: all open
// tasks are gone) while keeping the adapted cap.
func (s *SpecThrottle) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.open = 0
	s.commits, s.aborts = 0, 0
	s.closed = false
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Close releases all waiters; subsequent Admit calls fail.
func (s *SpecThrottle) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.closed = true
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Snapshot returns (open, cap, throttled-wait count).
func (s *SpecThrottle) Snapshot() (open, cap int, throttled uint64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open, s.cap, s.throttled
}
