package flow

import (
	"sync"
	"testing"
	"time"
)

func TestCreditGateWindow(t *testing.T) {
	g := NewCreditGate(3)
	for i := 0; i < 3; i++ {
		if !g.TryAcquire() {
			t.Fatalf("acquire %d failed inside window", i)
		}
	}
	if g.TryAcquire() {
		t.Fatal("acquire succeeded past window")
	}
	if got := g.Outstanding(); got != 3 {
		t.Fatalf("Outstanding = %d, want 3", got)
	}
	g.Grant(2)
	if got := g.Outstanding(); got != 1 {
		t.Fatalf("Outstanding after grant = %d, want 1", got)
	}
	// Grants are clamped at the window.
	g.Grant(100)
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after over-grant = %d, want 0", got)
	}
}

func TestCreditGateBlockingAcquire(t *testing.T) {
	g := NewCreditGate(1)
	if !g.Acquire() {
		t.Fatal("first acquire failed")
	}
	done := make(chan bool, 1)
	go func() { done <- g.Acquire() }()
	select {
	case <-done:
		t.Fatal("second acquire did not block")
	case <-time.After(20 * time.Millisecond):
	}
	g.Grant(1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("acquire returned false after grant")
		}
	case <-time.After(time.Second):
		t.Fatal("acquire still blocked after grant")
	}
}

func TestCreditGateResetAndClose(t *testing.T) {
	g := NewCreditGate(2)
	g.Acquire()
	g.Acquire()
	g.Reset()
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after reset = %d, want 0", got)
	}
	g.Acquire()
	g.Acquire()
	done := make(chan bool, 1)
	go func() { done <- g.Acquire() }()
	time.Sleep(10 * time.Millisecond)
	g.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("acquire succeeded on closed gate")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not release blocked acquire")
	}
	if g.Acquire() {
		t.Fatal("acquire succeeded after close")
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewTokenBucket(10, 2) // 10/s, burst 2
	if ok, _ := b.Take(now); !ok {
		t.Fatal("burst token 1 denied")
	}
	if ok, _ := b.Take(now); !ok {
		t.Fatal("burst token 2 denied")
	}
	ok, wait := b.Take(now)
	if ok {
		t.Fatal("token granted past burst")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait = %v, want (0, 100ms]", wait)
	}
	if ok, _ := b.Take(now.Add(100 * time.Millisecond)); !ok {
		t.Fatal("token denied after refill interval")
	}
	// Refill is clamped at burst: a long idle period grants only 2.
	now = now.Add(time.Hour)
	b.Take(now)
	b.Take(now)
	if ok, _ := b.Take(now); ok {
		t.Fatal("bucket exceeded burst after idle")
	}
}

func TestAIMD(t *testing.T) {
	a := NewAIMD(10, 100, 5, 0.5)
	if r := a.Rate(); r != 100 {
		t.Fatalf("initial rate = %v, want 100", r)
	}
	if r := a.Observe(true); r != 50 {
		t.Fatalf("rate after decrease = %v, want 50", r)
	}
	if r := a.Observe(false); r != 55 {
		t.Fatalf("rate after increase = %v, want 55", r)
	}
	for i := 0; i < 20; i++ {
		a.Observe(true)
	}
	if r := a.Rate(); r != 10 {
		t.Fatalf("rate not floored: %v, want 10", r)
	}
	for i := 0; i < 100; i++ {
		a.Observe(false)
	}
	if r := a.Rate(); r != 100 {
		t.Fatalf("rate not capped: %v, want 100", r)
	}
}

func TestAdmissionShed(t *testing.T) {
	a := NewAdmission(&Limits{AdmitRate: 1000, AdmitBurst: 2, Shed: true}, nil)
	fake := time.Unix(0, 0)
	a.now = func() time.Time { return fake }
	if got := a.Admit(); got != Admitted {
		t.Fatalf("admit 1 = %v, want Admitted", got)
	}
	if got := a.Admit(); got != Admitted {
		t.Fatalf("admit 2 = %v, want Admitted", got)
	}
	if got := a.Admit(); got != Shed {
		t.Fatalf("admit 3 = %v, want Shed", got)
	}
	if a.Admitted() != 2 || a.Shedded() != 1 {
		t.Fatalf("counters = (%d admitted, %d shed), want (2, 1)", a.Admitted(), a.Shedded())
	}
}

func TestAdmissionBlocksAndStops(t *testing.T) {
	a := NewAdmission(&Limits{AdmitRate: 0.001, AdmitBurst: 1}, nil)
	if got := a.Admit(); got != Admitted {
		t.Fatalf("first admit = %v, want Admitted", got)
	}
	done := make(chan Outcome, 1)
	go func() { done <- a.Admit() }()
	select {
	case got := <-done:
		t.Fatalf("second admit returned %v without waiting", got)
	case <-time.After(20 * time.Millisecond):
	}
	a.Close()
	select {
	case got := <-done:
		if got != Stopped {
			t.Fatalf("admit after close = %v, want Stopped", got)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not interrupt blocked Admit")
	}
}

func TestAdmissionAIMDBacksOff(t *testing.T) {
	congested := true
	a := NewAdmission(&Limits{AdmitRate: 1000, AdmitBurst: 1, Shed: true, AIMD: true, MinRate: 10},
		func() bool { return congested })
	a.pressureEvery = 1
	fake := time.Unix(0, 0)
	a.now = func() time.Time { return fake }
	for i := 0; i < 20; i++ {
		fake = fake.Add(time.Second)
		a.Admit()
	}
	if r := a.Rate(); r != 10 {
		t.Fatalf("rate under sustained congestion = %v, want floor 10", r)
	}
	congested = false
	for i := 0; i < 100; i++ {
		fake = fake.Add(time.Second)
		a.Admit()
	}
	if r := a.Rate(); r <= 10 {
		t.Fatalf("rate did not recover after congestion cleared: %v", r)
	}
}

func TestSpecThrottleCapAndHeadBypass(t *testing.T) {
	s := NewSpecThrottle(&Limits{MaxOpenSpec: 2})
	notHead := func() bool { return false }
	if !s.Admit(notHead) || !s.Admit(notHead) {
		t.Fatal("admits inside cap failed")
	}
	// A third non-head task parks...
	done := make(chan bool, 1)
	go func() { done <- s.Admit(notHead) }()
	select {
	case <-done:
		t.Fatal("admit past cap did not block")
	case <-time.After(20 * time.Millisecond):
	}
	// ...but the commit head walks straight through.
	if !s.Admit(func() bool { return true }) {
		t.Fatal("head task was throttled")
	}
	if open, _, _ := snapshotOpen(s); open != 3 {
		t.Fatalf("open = %d, want 3", open)
	}
	s.Release(false)
	s.Release(false)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("parked admit failed after release")
		}
	case <-time.After(time.Second):
		t.Fatal("release did not wake parked admit")
	}
	_, _, throttled := s.Snapshot()
	if throttled != 1 {
		t.Fatalf("throttled count = %d, want 1", throttled)
	}
}

func snapshotOpen(s *SpecThrottle) (int, int, uint64) { return s.Snapshot() }

func TestSpecThrottleAdaptsToAborts(t *testing.T) {
	s := NewSpecThrottle(&Limits{MaxOpenSpec: 8, MinOpenSpec: 2})
	// One full window of aborts halves the cap.
	for i := 0; i < s.window; i++ {
		s.Admit(func() bool { return true })
		s.Release(true)
	}
	if _, cap, _ := s.Snapshot(); cap != 4 {
		t.Fatalf("cap after abort window = %d, want 4", cap)
	}
	// Keep aborting: cap floors at MinOpenSpec.
	for i := 0; i < 4*s.window; i++ {
		s.Admit(func() bool { return true })
		s.Release(true)
	}
	if _, cap, _ := s.Snapshot(); cap != 2 {
		t.Fatalf("cap not floored: %d, want 2", cap)
	}
	// Clean windows recover the cap one step at a time.
	for i := 0; i < 16*s.window; i++ {
		s.Admit(func() bool { return true })
		s.Release(false)
	}
	if _, cap, _ := s.Snapshot(); cap != 8 {
		t.Fatalf("cap did not recover: %d, want 8", cap)
	}
}

func TestSpecThrottleConcurrent(t *testing.T) {
	s := NewSpecThrottle(&Limits{MaxOpenSpec: 4})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.Admit(func() bool { return false }) {
				s.Release(false)
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent admit/release deadlocked")
	}
	if open, _, _ := s.Snapshot(); open != 0 {
		t.Fatalf("open = %d after all releases, want 0", open)
	}
}

func TestLimitsEnabled(t *testing.T) {
	var nilLimits *Limits
	if nilLimits.Enabled() {
		t.Fatal("nil Limits reported enabled")
	}
	if (&Limits{}).Enabled() {
		t.Fatal("zero Limits reported enabled")
	}
	if !(&Limits{MailboxCap: 4}).Enabled() {
		t.Fatal("MailboxCap did not enable flow")
	}
}
