package flow

import (
	"sync"
	"sync/atomic"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter. It is driven by
// explicit timestamps so tests can use a fake clock.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a bucket that refills at rate tokens/second up
// to burst. The bucket starts full.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// Take attempts to consume one token at the given instant. On failure it
// returns the duration until a token will be available at the current
// rate.
func (b *TokenBucket) Take(now time.Time) (ok bool, wait time.Duration) {
	return b.TakeN(now, 1)
}

// TakeN attempts to consume n tokens at once — one bucket charge for a
// whole batch. A batch larger than the bucket depth is admitted when the
// bucket is full, driving the level negative; the debt is paid back by
// future refills, so the sustained rate is still honored. On failure it
// returns the duration until the batch will fit at the current rate.
func (b *TokenBucket) TakeN(now time.Time, n int) (ok bool, wait time.Duration) {
	if n < 1 {
		n = 1
	}
	need := float64(n)
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= need || (need > b.burst && b.tokens >= b.burst) {
		b.tokens -= need
		return true, 0
	}
	if b.rate <= 0 {
		return false, time.Second
	}
	missing := need - b.tokens
	if need > b.burst {
		missing = b.burst - b.tokens
	}
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// SetRate changes the refill rate.
func (b *TokenBucket) SetRate(rate float64) {
	b.mu.Lock()
	b.rate = rate
	b.mu.Unlock()
}

// Rate returns the current refill rate.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// AIMD is an additive-increase/multiplicative-decrease controller over a
// rate. Each Observe call feeds one congestion sample: congested samples
// multiply the rate by the decrease factor, clear samples add the
// increase step. The output is clamped to [min, max].
type AIMD struct {
	mu   sync.Mutex
	rate float64
	min  float64
	max  float64
	step float64 // additive increase per clear sample
	beta float64 // multiplicative decrease on congestion
}

// NewAIMD returns a controller starting at max with the given bounds.
// step defaults to max/20 and beta to 0.5 when zero.
func NewAIMD(min, max, step, beta float64) *AIMD {
	if step <= 0 {
		step = max / 20
	}
	if beta <= 0 || beta >= 1 {
		beta = 0.5
	}
	if min <= 0 {
		min = max / 10
	}
	return &AIMD{rate: max, min: min, max: max, step: step, beta: beta}
}

// Observe feeds one congestion sample and returns the updated rate.
func (a *AIMD) Observe(congested bool) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if congested {
		a.rate *= a.beta
		if a.rate < a.min {
			a.rate = a.min
		}
	} else {
		a.rate += a.step
		if a.rate > a.max {
			a.rate = a.max
		}
	}
	return a.rate
}

// Rate returns the current controlled rate.
func (a *AIMD) Rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rate
}

// Outcome is the result of one admission attempt.
type Outcome int

const (
	// Admitted means the event may proceed into the engine.
	Admitted Outcome = iota
	// Shed means the event was dropped before admission. It was never
	// logged, so recovery semantics are untouched.
	Shed
	// Stopped means the admission controller was closed mid-wait.
	Stopped
)

// Admission combines a token bucket, an optional AIMD controller driven
// by downstream queue pressure, and a shed policy into the source-side
// admission decision.
type Admission struct {
	bucket *TokenBucket
	aimd   *AIMD // nil when adaptation is disabled
	shed   bool

	// pressure reports downstream congestion (true = congested). Sampled
	// once per pressureEvery admissions to keep the hot path cheap.
	pressure      func() bool
	pressureEvery int
	sinceSample   int
	sampleMu      sync.Mutex

	now   func() time.Time
	sleep func(d time.Duration, quit <-chan struct{}) bool

	quit     chan struct{}
	quitOnce sync.Once

	admitted atomic.Uint64
	shedded  atomic.Uint64
}

// NewAdmission builds an admission controller from Limits. Returns nil if
// the limits do not configure admission control.
func NewAdmission(l *Limits, pressure func() bool) *Admission {
	if l == nil || l.AdmitRate <= 0 {
		return nil
	}
	burst := l.AdmitBurst
	if burst <= 0 {
		burst = int(l.AdmitRate / 10)
		if burst < 1 {
			burst = 1
		}
	}
	a := &Admission{
		bucket:        NewTokenBucket(l.AdmitRate, burst),
		shed:          l.Shed,
		pressure:      pressure,
		pressureEvery: 16,
		now:           time.Now,
		sleep:         sleepInterruptible,
		quit:          make(chan struct{}),
	}
	if l.AIMD && pressure != nil {
		a.aimd = NewAIMD(l.MinRate, l.AdmitRate, 0, 0)
	}
	return a
}

func sleepInterruptible(d time.Duration, quit <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-quit:
		return false
	}
}

// Admit decides the fate of one source event. With shedding enabled it
// never blocks: an event that cannot take a token immediately is Shed.
// Without shedding it blocks (interruptibly) until a token is available.
func (a *Admission) Admit() Outcome {
	return a.AdmitN(1)
}

// AdmitN decides the fate of a batch of n source events with one bucket
// charge and at most one pressure sample — the amortized admission path.
// The outcome applies to the whole batch: admitted together, or (with
// shedding) shed together. Events in a shed batch were never logged, so
// recovery semantics are untouched, exactly as for single-event shedding.
func (a *Admission) AdmitN(n int) Outcome {
	if n < 1 {
		n = 1
	}
	for {
		select {
		case <-a.quit:
			return Stopped
		default:
		}
		a.adapt(n)
		ok, wait := a.bucket.TakeN(a.now(), n)
		if ok {
			a.admitted.Add(uint64(n))
			return Admitted
		}
		if a.shed {
			a.shedded.Add(uint64(n))
			return Shed
		}
		if !a.sleep(wait, a.quit) {
			return Stopped
		}
	}
}

// adapt samples downstream pressure every pressureEvery admitted events
// and retunes the bucket rate through the AIMD controller. n is the batch
// width of the current admission attempt.
func (a *Admission) adapt(n int) {
	if a.aimd == nil {
		return
	}
	a.sampleMu.Lock()
	a.sinceSample += n
	if a.sinceSample < a.pressureEvery {
		a.sampleMu.Unlock()
		return
	}
	a.sinceSample = 0
	a.sampleMu.Unlock()
	a.bucket.SetRate(a.aimd.Observe(a.pressure()))
}

// Close interrupts any blocked Admit calls; they return Stopped.
func (a *Admission) Close() {
	if a == nil {
		return
	}
	a.quitOnce.Do(func() { close(a.quit) })
}

// Admitted returns the number of events admitted so far.
func (a *Admission) Admitted() uint64 {
	if a == nil {
		return 0
	}
	return a.admitted.Load()
}

// Shedded returns the number of events dropped by the shed policy.
func (a *Admission) Shedded() uint64 {
	if a == nil {
		return 0
	}
	return a.shedded.Load()
}

// Rate returns the current admission rate (AIMD-adjusted when enabled).
func (a *Admission) Rate() float64 {
	if a == nil {
		return 0
	}
	return a.bucket.Rate()
}
