// Package flow implements the engine's flow-control primitives: bounded
// mailbox capacities, credit-based transfer windows on edges, token-bucket
// source admission with an AIMD controller, and an adaptive cap on open
// speculative tasks.
//
// The primitives are deliberately decoupled from the core runtime: each is
// a small synchronization object with no knowledge of events, nodes, or
// transports. The core engine composes them:
//
//   - Limits is the per-node configuration record, parsed from the JSON
//     topology and attached to graph nodes.
//   - CreditGate bounds the number of in-flight data events on one edge.
//     The sender acquires one credit per event; the receiver grants the
//     credit back when the event leaves its mailbox. Control traffic never
//     consumes credits, so FINALIZE/REVOKE/ACK/REPLAY always make progress.
//   - TokenBucket + Admission rate-limit a source. Events rejected by the
//     shed policy were never admitted, never assigned a place in any
//     decision log, and are therefore invisible to recovery by
//     construction.
//   - SpecThrottle caps the number of open (uncommitted) speculative tasks
//     per node and tightens the cap as the observed abort rate rises — the
//     paper's promptness-vs-waste knob turned automatically.
package flow

import "time"

// Limits configures flow control for one node. The zero value disables
// every mechanism, preserving the unbounded pre-flow behavior.
type Limits struct {
	// MailboxCap bounds the node's data-lane mailbox. Zero means
	// unbounded. The bound is enforced upstream via credits; the mailbox
	// itself tracks occupancy and high-water marks against it.
	MailboxCap int `json:"mailboxCap,omitempty"`

	// CreditWindow is the number of in-flight data events permitted per
	// inbound edge. Zero disables credit gating on the edge. On a node
	// with one inbound edge the natural setting is CreditWindow ==
	// MailboxCap; with k edges, MailboxCap/k each.
	CreditWindow int `json:"creditWindow,omitempty"`

	// AdmitRate is the sustained source admission rate in events/second.
	// Zero disables admission control.
	AdmitRate float64 `json:"admitRate,omitempty"`

	// AdmitBurst is the token-bucket depth (maximum burst admitted at
	// once). Defaults to max(1, AdmitRate/10) when zero.
	AdmitBurst int `json:"admitBurst,omitempty"`

	// AIMD enables additive-increase/multiplicative-decrease adaptation
	// of the admission rate, driven by downstream queue pressure.
	AIMD bool `json:"aimd,omitempty"`

	// MinRate floors the AIMD-controlled rate. Defaults to AdmitRate/10.
	MinRate float64 `json:"minRate,omitempty"`

	// Shed makes the source drop events that cannot be admitted
	// immediately instead of blocking the emitter. Shed events are
	// dropped before admission: they are never logged, so precise
	// recovery is unaffected.
	Shed bool `json:"shed,omitempty"`

	// MaxOpenSpec caps the number of open speculative tasks on the node.
	// Zero disables speculation throttling.
	MaxOpenSpec int `json:"maxOpenSpec,omitempty"`

	// MinOpenSpec floors the adaptive cap when the abort rate is high.
	// Defaults to 1.
	MinOpenSpec int `json:"minOpenSpec,omitempty"`

	// BatchSize enables hot-path batching on the node: source emissions,
	// credit-gated edge transfers and commit finalization amortize their
	// per-event costs over runs of up to BatchSize events. Zero or one
	// disables batching. Batching never delays a lone event on the commit
	// path — the committer only groups tasks that are already ready.
	BatchSize int `json:"batchSize,omitempty"`

	// BatchLingerMicros bounds how long a sender may hold an under-full
	// batch open waiting for more events (microseconds). It applies to
	// edge senders and source-side emit coalescing only, never to commit
	// finalization. Zero sends partial batches immediately.
	BatchLingerMicros int `json:"batchLingerMicros,omitempty"`
}

// Enabled reports whether any flow mechanism is configured.
func (l *Limits) Enabled() bool {
	if l == nil {
		return false
	}
	return l.MailboxCap > 0 || l.CreditWindow > 0 || l.AdmitRate > 0 || l.MaxOpenSpec > 0 ||
		l.BatchSize > 1
}

// Batch returns the effective batch size: at least 1, so callers can use
// it directly as a loop bound.
func (l *Limits) Batch() int {
	if l == nil || l.BatchSize < 1 {
		return 1
	}
	return l.BatchSize
}

// Linger returns the configured batch linger as a duration (zero = send
// partial batches immediately).
func (l *Limits) Linger() time.Duration {
	if l == nil || l.BatchLingerMicros <= 0 {
		return 0
	}
	return time.Duration(l.BatchLingerMicros) * time.Microsecond
}
