package flow

import "sync"

// CreditGate bounds the number of in-flight data events on one edge. The
// sender side acquires one credit per event before transmitting; the
// receiver grants credits back as events leave its mailbox. When the
// window is exhausted Acquire blocks, which is what propagates
// backpressure hop by hop toward the source.
//
// Reset refills the window to its full size. It is called after a crash
// or a bridge reconnect: the receiver's volatile mailbox state is gone (or
// about to be rebuilt by replay), so outstanding credits refer to events
// that no longer occupy receiver memory. Without the refill, replay after
// recovery could wedge on credits that will never be granted back.
type CreditGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	window int
	avail  int
	closed bool
	resets uint64
}

// NewCreditGate returns a gate with the given window. Window must be > 0.
func NewCreditGate(window int) *CreditGate {
	g := &CreditGate{window: window, avail: window}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Acquire blocks until one credit is available and consumes it. It
// returns false if the gate was closed, in which case no credit was
// consumed and the caller must not transmit.
func (g *CreditGate) Acquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.avail <= 0 && !g.closed {
		g.cond.Wait()
	}
	if g.closed {
		return false
	}
	g.avail--
	return true
}

// AcquireN blocks until n credits are available and consumes them all —
// one gate charge for a whole batch. Batches wider than the window are
// granted when the window is fully available (the window then goes
// negative until the receiver returns the excess), so a batch larger
// than the window cannot deadlock the edge. It returns false if the gate
// was closed, in which case no credits were consumed.
func (g *CreditGate) AcquireN(n int) bool {
	if n <= 1 {
		return g.Acquire()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	need := n
	if need > g.window {
		need = g.window
	}
	for g.avail < need && !g.closed {
		g.cond.Wait()
	}
	if g.closed {
		return false
	}
	g.avail -= n
	return true
}

// TryAcquire consumes a credit without blocking. It reports whether a
// credit was consumed.
func (g *CreditGate) TryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed || g.avail <= 0 {
		return false
	}
	g.avail--
	return true
}

// Grant returns n credits to the window. Grants beyond the window size
// are clamped (a duplicate CREDIT frame after a reconnect must not grow
// the window permanently).
func (g *CreditGate) Grant(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.avail += n
	if g.avail > g.window {
		g.avail = g.window
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Reset refills the window to full size and wakes all waiters.
func (g *CreditGate) Reset() {
	g.mu.Lock()
	g.avail = g.window
	g.resets++
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Resets reports how many times the window was refilled to full by
// Reset — the recovery profiler's attribution for the refill phase.
func (g *CreditGate) Resets() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.resets
}

// Close releases all waiters; subsequent Acquire calls fail fast.
func (g *CreditGate) Close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Outstanding returns the number of credits currently consumed (events
// believed in flight or queued at the receiver).
func (g *CreditGate) Outstanding() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.window - g.avail
}

// Window returns the configured window size.
func (g *CreditGate) Window() int { return g.window }
