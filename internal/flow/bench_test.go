package flow

import (
	"testing"
	"time"
)

// BenchmarkCreditGateAcquireGrant measures one acquire/grant round trip —
// the per-event overhead credit gating adds to a link send.
func BenchmarkCreditGateAcquireGrant(b *testing.B) {
	g := NewCreditGate(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Acquire()
		g.Grant(1)
	}
}

// BenchmarkTokenBucketTake measures admission-control cost per event at a
// rate high enough that the bucket never empties.
func BenchmarkTokenBucketTake(b *testing.B) {
	tb := NewTokenBucket(1e12, 1<<30)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Take(now.Add(time.Duration(i) * time.Microsecond))
	}
}

// BenchmarkSpecThrottleAdmitRelease measures the uncontended slot
// take/return cycle every speculative task pays.
func BenchmarkSpecThrottleAdmitRelease(b *testing.B) {
	s := NewSpecThrottle(&Limits{MaxOpenSpec: 64})
	head := func() bool { return false }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Admit(head)
		s.Release(false)
	}
}

// BenchmarkSpecThrottleTryAdmit measures the worker-pool fast path (the
// non-blocking form used by node workers).
func BenchmarkSpecThrottleTryAdmit(b *testing.B) {
	s := NewSpecThrottle(&Limits{MaxOpenSpec: 64})
	head := func() bool { return false }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.TryAdmit(head)
		s.Release(false)
	}
}
