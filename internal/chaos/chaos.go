// Package chaos is the runtime fault-injection control plane behind the
// /debug/chaos endpoint (debugserver.SetChaos). It translates the
// endpoint's query parameters into the process-wide fault shims in
// internal/transport (slow/lossy/partitioned data-plane bridges) and
// internal/storage (slow disk), so the campaign runner can arm, adjust
// and clear faults on a live process at a declared trigger without the
// injected binary being anything but the real streammine.
//
// Parameters (all optional; absent parameters leave 0 / off):
//
//	net_delay=5ms       per-frame send stall on data-plane bridges
//	net_dial_delay=50ms stall before every bridge (re)dial
//	net_drop_pm=20      per-mille of bridge sends failed (1000 = partition)
//	disk_delay=2ms      per-stable-write stall in every storage pool
//	off=1               clear every fault (other parameters ignored)
//
// Applying a new configuration replaces the old one wholesale: faults are
// never merged, so a clear is always total. docs/CAMPAIGNS.md documents
// the fault inventory built on top of these knobs.
package chaos

import (
	"fmt"
	"net/url"
	"strconv"
	"time"

	"streammine/internal/flightrec"
	"streammine/internal/storage"
	"streammine/internal/transport"
)

// Handle implements the debugserver chaos contract: nil (or empty) query
// values report the current state; non-empty values apply a new
// configuration and report the resulting state.
func Handle(q url.Values) (string, error) {
	if len(q) == 0 {
		return State(), nil
	}
	if err := Apply(q); err != nil {
		return "", err
	}
	return State(), nil
}

// Apply installs the fault configuration described by q, replacing any
// previous one.
func Apply(q url.Values) error {
	if q.Get("off") != "" {
		Clear()
		return nil
	}
	var net transport.Chaos
	var diskDelay time.Duration
	var err error
	if net.SendDelay, err = durationParam(q, "net_delay"); err != nil {
		return err
	}
	if net.DialDelay, err = durationParam(q, "net_dial_delay"); err != nil {
		return err
	}
	if diskDelay, err = durationParam(q, "disk_delay"); err != nil {
		return err
	}
	if v := q.Get("net_drop_pm"); v != "" {
		pm, err := strconv.Atoi(v)
		if err != nil || pm < 0 || pm > 1000 {
			return fmt.Errorf("chaos: net_drop_pm must be an integer in [0,1000], got %q", v)
		}
		net.DropPerMille = pm
	}
	transport.SetChaos(net)
	storage.SetChaosWriteDelay(diskDelay)
	flightrec.Recordf(flightrec.KindChaos, "arm %s", State())
	return nil
}

// Clear removes every installed fault.
func Clear() {
	transport.ClearChaos()
	storage.SetChaosWriteDelay(0)
	flightrec.Record(flightrec.KindChaos, "clear")
}

// State renders the active faults in the same key=value vocabulary the
// parameters use ("off" when nothing is installed), plus the cumulative
// injected-loss counter so pollers can see the lossy fault biting.
func State() string {
	net, netOn := transport.ActiveChaos()
	disk := storage.ChaosWriteDelay()
	if !netOn && disk == 0 {
		return "off"
	}
	s := ""
	if net.SendDelay > 0 {
		s += fmt.Sprintf("net_delay=%s ", net.SendDelay)
	}
	if net.DialDelay > 0 {
		s += fmt.Sprintf("net_dial_delay=%s ", net.DialDelay)
	}
	if net.DropPerMille > 0 {
		s += fmt.Sprintf("net_drop_pm=%d dropped=%d ", net.DropPerMille, transport.ChaosDrops())
	}
	if disk > 0 {
		s += fmt.Sprintf("disk_delay=%s ", disk)
	}
	return s[:len(s)-1]
}

func durationParam(q url.Values, key string) (time.Duration, error) {
	v := q.Get(key)
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("chaos: %s must be a non-negative duration (e.g. 5ms), got %q", key, v)
	}
	return d, nil
}
