package chaos

import (
	"net/url"
	"strings"
	"testing"
	"time"

	"streammine/internal/storage"
	"streammine/internal/transport"
)

func TestHandleReportsStateWithoutApplying(t *testing.T) {
	Clear()
	state, err := Handle(nil)
	if err != nil {
		t.Fatalf("Handle(nil): %v", err)
	}
	if state != "off" {
		t.Fatalf("idle state = %q, want \"off\"", state)
	}
}

func TestApplyInstallsAndClears(t *testing.T) {
	defer Clear()
	q := url.Values{
		"net_delay":   {"5ms"},
		"net_drop_pm": {"20"},
		"disk_delay":  {"2ms"},
	}
	state, err := Handle(q)
	if err != nil {
		t.Fatalf("Handle: %v", err)
	}
	for _, want := range []string{"net_delay=5ms", "net_drop_pm=20", "disk_delay=2ms"} {
		if !strings.Contains(state, want) {
			t.Errorf("state %q missing %q", state, want)
		}
	}
	net, ok := transport.ActiveChaos()
	if !ok || net.SendDelay != 5*time.Millisecond || net.DropPerMille != 20 {
		t.Fatalf("transport chaos = %+v (installed=%v), want 5ms/20pm", net, ok)
	}
	if d := storage.ChaosWriteDelay(); d != 2*time.Millisecond {
		t.Fatalf("disk delay = %v, want 2ms", d)
	}

	state, err = Handle(url.Values{"off": {"1"}})
	if err != nil {
		t.Fatalf("Handle(off): %v", err)
	}
	if state != "off" {
		t.Fatalf("state after off = %q, want \"off\"", state)
	}
	if _, ok := transport.ActiveChaos(); ok {
		t.Fatal("transport chaos still installed after off")
	}
	if storage.ChaosWriteDelay() != 0 {
		t.Fatal("disk delay still installed after off")
	}
}

func TestApplyReplacesWholesale(t *testing.T) {
	defer Clear()
	if _, err := Handle(url.Values{"net_delay": {"5ms"}}); err != nil {
		t.Fatal(err)
	}
	// A second apply naming only the disk fault must drop the net fault.
	if _, err := Handle(url.Values{"disk_delay": {"1ms"}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := transport.ActiveChaos(); ok {
		t.Fatal("net fault survived a replacement apply")
	}
	if storage.ChaosWriteDelay() != time.Millisecond {
		t.Fatal("disk fault not installed by replacement apply")
	}
}

func TestApplyRejectsBadParams(t *testing.T) {
	defer Clear()
	cases := []url.Values{
		{"net_delay": {"fast"}},
		{"net_delay": {"-5ms"}},
		{"net_drop_pm": {"1001"}},
		{"net_drop_pm": {"-1"}},
		{"net_drop_pm": {"many"}},
		{"disk_delay": {"2"}}, // bare number: not a duration
	}
	for _, q := range cases {
		if err := Apply(q); err == nil {
			t.Errorf("Apply(%v) accepted invalid input", q)
		}
	}
}
