package flightrec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streammine/internal/metrics"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := New(64)
	r.Record(KindLifecycle, "partition 0 built")
	r.Record(KindChaos, "net_delay=5ms")
	r.Record3(KindSpan, "classify", "commit", "src:42")
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Snapshot() = %d entries, want 3", len(got))
	}
	if got[0].Kind != "lifecycle" || got[0].Detail != "partition 0 built" {
		t.Errorf("entry 0 = %+v", got[0])
	}
	if got[2].Kind != "span" || got[2].Detail != "classify commit src:42" {
		t.Errorf("entry 2 = %+v", got[2])
	}
	for i := 1; i < len(got); i++ {
		if got[i].TSNs < got[i-1].TSNs {
			t.Errorf("entries out of order: %d before %d", got[i].TSNs, got[i-1].TSNs)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(64) // rounded to 64 slots
	for i := 0; i < 200; i++ {
		r.Record(KindEpoch, fmt.Sprintf("epoch %d", i))
	}
	got := r.Snapshot()
	if len(got) != 64 {
		t.Fatalf("Snapshot() after wrap = %d entries, want 64", len(got))
	}
	if got[0].Detail != "epoch 136" || got[63].Detail != "epoch 199" {
		t.Errorf("wrap window = [%q .. %q], want [epoch 136 .. epoch 199]",
			got[0].Detail, got[63].Detail)
	}
	if r.Records() != 200 {
		t.Errorf("Records() = %d, want 200", r.Records())
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := New(1024)
	if n := testing.AllocsPerRun(1000, func() { r.Record(KindLifecycle, "partition 3 running") }); n != 0 {
		t.Errorf("Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.Record3(KindSpan, "classify", "commit", "src:1") }); n != 0 {
		t.Errorf("Record3 allocates %.1f/op, want 0", n)
	}
}

func TestDetailTruncation(t *testing.T) {
	r := New(64)
	long := strings.Repeat("x", 4*detailLen)
	r.Record(KindLifecycle, long)
	got := r.Snapshot()
	if len(got) != 1 || len(got[0].Detail) != detailLen {
		t.Fatalf("truncated detail len = %d, want %d", len(got[0].Detail), detailLen)
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Record(KindSpan, "node phase event")
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, e := range r.Snapshot() {
			if e.Kind != "span" || e.Detail != "node phase event" {
				t.Errorf("torn entry leaked: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestDumpRoundTrip(t *testing.T) {
	r := New(64)
	r.Record(KindLifecycle, "partition 0 built")
	r.Record(KindChaos, "off")
	dir := t.TempDir()
	path, err := r.SaveTo(dir, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "w1.json"); path != want {
		t.Errorf("SaveTo path = %q, want %q", path, want)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Proc != "w1" || d.Records != 2 || len(d.Entries) != 2 {
		t.Errorf("dump = proc %q records %d entries %d, want w1/2/2", d.Proc, d.Records, len(d.Entries))
	}
}

func TestSnapshotterWritesPeriodically(t *testing.T) {
	r := New(64)
	r.Record(KindLifecycle, "start")
	dir := t.TempDir()
	s := r.StartSnapshots(dir, "w1", 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if d, err := ReadDump(filepath.Join(dir, "w1.json")); err == nil && len(d.Entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Record(KindLifecycle, "stop")
	s.Stop() // final snapshot includes the last record
	d, err := ReadDump(filepath.Join(dir, "w1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 2 {
		t.Errorf("final snapshot has %d entries, want 2", len(d.Entries))
	}
}

func TestSpanMirrorSamples(t *testing.T) {
	r := Enable(1024)
	base := r.Records()
	for i := 0; i < 2*spanEvery; i++ {
		SpanMirror(metrics.Span{Node: "classify", Phase: "commit", Event: "src:1"})
	}
	if got := r.Records() - base; got != 2 {
		t.Errorf("mirror recorded %d of %d spans, want 2", got, 2*spanEvery)
	}
}

func TestMetricsRegisteredAndDocumented(t *testing.T) {
	r := New(64)
	reg := metrics.NewRegistry()
	RegisterMetrics(r, reg)
	r.Record(KindLifecycle, "start")
	if v, ok := reg.Value("flightrec_records_total", nil); !ok || v != 1 {
		t.Errorf("flightrec_records_total = %v ok=%v, want 1", v, ok)
	}

	// Every flightrec_* series must appear in the docs/OBSERVABILITY.md
	// inventory table.
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read metric inventory doc: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		if !strings.HasPrefix(p.Name, "flightrec_") || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("series %s not documented in docs/OBSERVABILITY.md", p.Name)
		}
	}
	if len(seen) < 3 {
		t.Errorf("only %d flightrec_* series registered, want at least 3", len(seen))
	}
}
