// Package flightrec is a per-process flight recorder: a fixed-size
// lock-free ring of recent lifecycle transitions, chaos arms, epoch
// changes and sampled tracer spans. Recording is wait-free and
// allocation-free (an AllocsPerRun test enforces it), so the sources can
// feed it from supervision paths without budget. A background
// snapshotter serializes the ring to disk via temp+rename at a fixed
// cadence, so a SIGKILL'd process leaves its last intact snapshot as
// evidence; `tracetool flightrec` renders a dump and the campaign runner
// attaches dumps to failed cells.
package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Kind classifies a recorded entry.
type Kind uint8

// Entry kinds, in the order the sources were wired.
const (
	// KindLifecycle marks worker/partition lifecycle transitions
	// (assign, start, stop, retarget, failure).
	KindLifecycle Kind = iota
	// KindEpoch marks partition epoch changes (deploys and reassignments).
	KindEpoch
	// KindChaos marks runtime fault-injection arms and clears.
	KindChaos
	// KindSpan marks a sampled tracer span mirrored into the ring.
	KindSpan
	// KindRecovery marks recovery phase transitions (detect, decide,
	// restore, refill, replay, catchup), so a process killed
	// mid-takeover still leaves a parseable recovery trail.
	KindRecovery
	kindCount
)

var kindNames = [kindCount]string{"lifecycle", "epoch", "chaos", "span", "recovery"}

// String renders the kind for dumps and reports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// detailLen is the fixed per-slot detail capacity; longer details are
// truncated on record (fixed-size slots keep the write path free of
// allocation and the ring memory bounded).
const detailLen = 120

// slot is one fixed-size ring cell. seq carries a per-claim generation:
// a writer stores 2·i+1 before filling the cell and 2·i+2 after, so a
// reader that knows the claim index i can detect torn or lapped cells.
type slot struct {
	seq    atomic.Uint64
	ts     int64
	kind   uint8
	n      uint8
	detail [detailLen]byte
}

// Recorder is the lock-free ring. The zero value is unusable; build one
// with New. A nil *Recorder ignores records, so call sites need no
// enabled-check of their own.
type Recorder struct {
	slots    []slot
	mask     uint64
	cursor   atomic.Uint64
	snaps    atomic.Uint64
	snapErrs atomic.Uint64
}

// New builds a recorder with capacity rounded up to a power of two
// (minimum 64 slots).
func New(size int) *Recorder {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Recorder{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Record appends one entry. Wait-free and allocation-free: the detail
// string is copied into the slot's fixed buffer (truncated at detailLen).
func (r *Recorder) Record(kind Kind, detail string) {
	if r == nil {
		return
	}
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(2*i + 1)
	s.ts = time.Now().UnixNano()
	s.kind = uint8(kind)
	n := copy(s.detail[:], detail)
	s.n = uint8(n)
	s.seq.Store(2*i + 2)
}

// Record3 appends one entry whose detail is three space-joined parts,
// copied directly into the slot so no intermediate string is built. The
// span mirror uses it to stay allocation-free per sampled span.
func (r *Recorder) Record3(kind Kind, a, b, c string) {
	if r == nil {
		return
	}
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(2*i + 1)
	s.ts = time.Now().UnixNano()
	s.kind = uint8(kind)
	n := copy(s.detail[:], a)
	for _, part := range [2]string{b, c} {
		if part == "" || n >= detailLen-1 {
			continue
		}
		s.detail[n] = ' '
		n++
		n += copy(s.detail[n:], part)
	}
	s.n = uint8(n)
	s.seq.Store(2*i + 2)
}

// Records returns the total number of entries ever recorded (including
// ones the ring has since overwritten).
func (r *Recorder) Records() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// Entry is one decoded ring cell.
type Entry struct {
	// TSNs is the record wall time in Unix nanoseconds.
	TSNs int64 `json:"tsNs"`
	// Kind is the entry class (lifecycle, epoch, chaos, span).
	Kind string `json:"kind"`
	// Detail is the free-form payload, truncated at the slot size.
	Detail string `json:"detail"`
}

// Snapshot decodes the ring oldest→newest. Cells a concurrent writer is
// filling (or has lapped) are skipped — the generation check makes torn
// reads detectable instead of garbled.
func (r *Recorder) Snapshot() []Entry {
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	start := uint64(0)
	if size := uint64(len(r.slots)); cur > size {
		start = cur - size
	}
	out := make([]Entry, 0, cur-start)
	for i := start; i < cur; i++ {
		s := &r.slots[i&r.mask]
		if s.seq.Load() != 2*i+2 {
			continue // mid-write or overwritten by a lapping writer
		}
		e := Entry{TSNs: s.ts, Kind: Kind(s.kind).String(), Detail: string(s.detail[:s.n])}
		if s.seq.Load() != 2*i+2 {
			continue // torn: a writer claimed the cell while we copied
		}
		out = append(out, e)
	}
	return out
}

// Dump is the on-disk snapshot format.
type Dump struct {
	Proc      string  `json:"proc"`
	WrittenAt string  `json:"writtenAt"`
	Records   uint64  `json:"records"`
	Entries   []Entry `json:"entries"`
}

// Dump snapshots the ring into the serializable form.
func (r *Recorder) Dump(proc string) *Dump {
	return &Dump{
		Proc:      proc,
		WrittenAt: time.Now().UTC().Format(time.RFC3339Nano),
		Records:   r.Records(),
		Entries:   r.Snapshot(),
	}
}

// Save writes the dump to path atomically (temp file + rename), so a
// crash mid-write leaves the previous intact snapshot in place.
func Save(path string, d *Dump) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadDump parses a snapshot written by Save.
func ReadDump(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("flightrec: parse %s: %w", path, err)
	}
	return &d, nil
}

// SaveTo snapshots the recorder to <dir>/<proc>.json and bumps the
// snapshot counters.
func (r *Recorder) SaveTo(dir, proc string) (string, error) {
	path := filepath.Join(dir, proc+".json")
	if err := Save(path, r.Dump(proc)); err != nil {
		r.snapErrs.Add(1)
		return "", err
	}
	r.snaps.Add(1)
	return path, nil
}

// Snapshotter periodically persists a recorder to disk.
type Snapshotter struct {
	stop chan struct{}
	done chan struct{}
}

// StartSnapshots persists r to <dir>/<proc>.json every interval (default
// 1 s) until Stop. The first snapshot is written immediately so even a
// short-lived process leaves a file.
func (r *Recorder) StartSnapshots(dir, proc string, interval time.Duration) *Snapshotter {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Snapshotter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		_, _ = r.SaveTo(dir, proc)
		for {
			select {
			case <-s.stop:
				_, _ = r.SaveTo(dir, proc) // final snapshot on clean exit
				return
			case <-ticker.C:
				_, _ = r.SaveTo(dir, proc)
			}
		}
	}()
	return s
}

// Stop writes a final snapshot and stops the loop.
func (s *Snapshotter) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}
