package flightrec

import (
	"fmt"
	"sync/atomic"

	"streammine/internal/metrics"
)

// def is the process-wide recorder. Sources (cluster lifecycle, chaos
// arms, the span mirror) record through the package-level helpers, which
// are no-ops until Enable installs a recorder — production binaries that
// never opt in pay a single atomic load per call site.
var def atomic.Pointer[Recorder]

// Enable installs the process-wide recorder (idempotent: a second call
// returns the existing one).
func Enable(size int) *Recorder {
	r := New(size)
	if def.CompareAndSwap(nil, r) {
		return r
	}
	return def.Load()
}

// Default returns the process-wide recorder, or nil when Enable was
// never called.
func Default() *Recorder { return def.Load() }

// Record appends to the process-wide recorder (no-op when disabled).
func Record(kind Kind, detail string) { def.Load().Record(kind, detail) }

// Record3 appends three space-joined parts to the process-wide recorder
// without building an intermediate string (no-op when disabled).
func Record3(kind Kind, a, b, c string) { def.Load().Record3(kind, a, b, c) }

// Recordf formats and appends to the process-wide recorder. It allocates
// for the format step, so it is meant for control-plane sites (lifecycle
// transitions, chaos arms) — use Record/Record3 on anything hot. When
// recording is disabled the format is skipped entirely.
func Recordf(kind Kind, format string, args ...any) {
	r := def.Load()
	if r == nil {
		return
	}
	r.Record(kind, fmt.Sprintf(format, args...))
}

// spanEvery samples one of every spanEvery mirrored tracer spans into the
// ring: spans are per-event, so an unsampled mirror would wash every
// lifecycle transition out of the fixed ring within milliseconds.
const spanEvery = 64

var spanSeq atomic.Uint64

// SpanMirror is a metrics.Tracer mirror hook: it records every
// spanEvery-th kept span into the process-wide recorder. Allocation-free
// (Record3 copies the span fields straight into the slot).
func SpanMirror(s metrics.Span) {
	r := def.Load()
	if r == nil {
		return
	}
	if spanSeq.Add(1)%spanEvery != 0 {
		return
	}
	r.Record3(KindSpan, s.Node, s.Phase, s.Event)
}

// RegisterMetrics exposes the recorder's counters as flightrec_* series
// (documented in docs/OBSERVABILITY.md).
func RegisterMetrics(r *Recorder, reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.CounterFunc("flightrec_records_total",
		"Flight-recorder entries recorded (including ring-overwritten ones).",
		nil, r.Records)
	reg.CounterFunc("flightrec_snapshots_total",
		"Flight-recorder snapshots written to disk.",
		nil, r.snaps.Load)
	reg.CounterFunc("flightrec_snapshot_errors_total",
		"Flight-recorder snapshot writes that failed.",
		nil, r.snapErrs.Load)
}
