package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is a unidirectional-ish message link: Send pushes messages to the
// peer; received messages are delivered to the handler registered at
// construction. Implementations are safe for concurrent Send.
type Conn interface {
	// Send transmits one message.
	Send(m Message) error
	// Close tears the link down; the peer's handler stops receiving.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// Handler consumes received messages. Handlers run on the connection's
// receive goroutine and must not block indefinitely.
type Handler func(Message)

// pipeConn is one end of an in-process pipe.
type pipeConn struct {
	peer *pipeConn

	mu      sync.Mutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
	queue   chan Message
	stop    chan struct{}
}

var _ Conn = (*pipeConn)(nil)

// Pipe creates a connected in-process pair: messages sent on a flow to
// b's handler and vice versa. Handlers may be nil (messages dropped).
// Each side runs one delivery goroutine, stopped by Close of either end.
func Pipe(aHandler, bHandler Handler) (Conn, Conn) {
	a := &pipeConn{handler: aHandler, queue: make(chan Message, 1024), stop: make(chan struct{})}
	b := &pipeConn{handler: bHandler, queue: make(chan Message, 1024), stop: make(chan struct{})}
	a.peer, b.peer = b, a
	a.wg.Add(1)
	go a.deliver()
	b.wg.Add(1)
	go b.deliver()
	return a, b
}

// deliver pumps this side's inbound queue into its handler.
func (c *pipeConn) deliver() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case m := <-c.queue:
			c.mu.Lock()
			h := c.handler
			c.mu.Unlock()
			if h != nil {
				h(m)
			}
		}
	}
}

// Send enqueues m for the peer's handler.
func (c *pipeConn) Send(m Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	select {
	case c.peer.queue <- m:
		countSend(m.Type)
		return nil
	case <-c.peer.stop:
		return ErrClosed
	}
}

// Close stops this end; pending undelivered messages are dropped.
func (c *pipeConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	return nil
}

// tcpConn adapts a net.Conn to the Conn interface.
type tcpConn struct {
	nc           net.Conn
	writeTimeout time.Duration // per-Send deadline; 0 = none
	chaos        bool          // chaos-targeted: the shim applies here

	sendMu sync.Mutex
	closed sync.Once
	done   chan struct{}
	wg     sync.WaitGroup
}

var _ Conn = (*tcpConn)(nil)

// Send writes one frame. With a write timeout configured, a peer that has
// stopped draining its socket fails the Send instead of blocking forever
// (the caller treats any Send error as a dead link and redials).
func (c *tcpConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	if c.chaos {
		if cfg, ok := ActiveChaos(); ok {
			if cfg.SendDelay > 0 {
				time.Sleep(cfg.SendDelay)
			}
			if chaosDropNow(cfg.DropPerMille) {
				return ErrChaosDrop
			}
		}
	}
	if c.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	if err := WriteMessage(c.nc, m); err != nil {
		return fmt.Errorf("tcp send: %w", err)
	}
	countSend(m.Type)
	return nil
}

// Close shuts the socket down and waits for the read loop.
func (c *tcpConn) Close() error {
	var err error
	c.closed.Do(func() {
		close(c.done)
		err = c.nc.Close()
		c.wg.Wait()
	})
	return err
}

// readLoop decodes frames into the handler until the socket closes.
func (c *tcpConn) readLoop(h Handler) {
	defer c.wg.Done()
	for {
		m, err := ReadMessage(c.nc)
		if err != nil {
			return
		}
		if h != nil {
			h(m)
		}
	}
}

// DialOptions bound how long a connection may hang on an unresponsive
// peer. The zero value of a field selects its default.
type DialOptions struct {
	// ConnectTimeout bounds the TCP connect (default 10 s).
	ConnectTimeout time.Duration
	// KeepAlive is the TCP keepalive probe interval (default 15 s);
	// negative disables keepalives.
	KeepAlive time.Duration
	// WriteTimeout, when positive, is applied as a deadline to every Send
	// so a peer that stops reading fails the link instead of wedging it.
	WriteTimeout time.Duration
	// Chaos marks the connection as a target for the process-wide chaos
	// shim (SetChaos): dial delay applies before connecting, and send
	// delay / injected loss apply to every frame. The engine's data-plane
	// bridges dial with this set; control links never do.
	Chaos bool
}

// Default connection-hygiene bounds (see DialOptions).
const (
	DefaultConnectTimeout = 10 * time.Second
	DefaultKeepAlive      = 15 * time.Second
)

// Dial connects to a listening node and returns the connection; inbound
// messages go to h. It uses the default DialOptions: bounded connect,
// keepalive on, no write deadline.
func Dial(addr string, h Handler) (Conn, error) {
	return DialWith(addr, DialOptions{}, h)
}

// DialWith is Dial with explicit connection-hygiene bounds.
func DialWith(addr string, o DialOptions, h Handler) (Conn, error) {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = DefaultConnectTimeout
	}
	if o.KeepAlive == 0 {
		o.KeepAlive = DefaultKeepAlive
	}
	if o.Chaos {
		if cfg, ok := ActiveChaos(); ok && cfg.DialDelay > 0 {
			time.Sleep(cfg.DialDelay)
		}
	}
	d := net.Dialer{Timeout: o.ConnectTimeout, KeepAlive: o.KeepAlive}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	c := &tcpConn{nc: nc, writeTimeout: o.WriteTimeout, chaos: o.Chaos, done: make(chan struct{})}
	c.wg.Add(1)
	go c.readLoop(h)
	return c, nil
}

// ConnHandler consumes received messages along with the connection they
// arrived on, so replies (ACKs, replay requests) can flow back over the
// same link.
type ConnHandler func(c Conn, m Message)

// Server accepts TCP connections for a node.
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	conns  []Conn
	closed bool
	wg     sync.WaitGroup
}

// Listen starts accepting connections on addr (use "127.0.0.1:0" for an
// ephemeral port). Each accepted connection's inbound messages go to h.
func Listen(addr string, h Handler) (*Server, error) {
	var ch ConnHandler
	if h != nil {
		ch = func(_ Conn, m Message) { h(m) }
	}
	return ListenConn(addr, ch)
}

// ListenConn is Listen with a connection-aware handler.
func ListenConn(addr string, h ConnHandler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	s.wg.Add(1)
	go s.acceptLoop(h)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop(h ConnHandler) {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			_ = tc.SetKeepAlive(true)
			_ = tc.SetKeepAlivePeriod(DefaultKeepAlive)
		}
		c := &tcpConn{nc: nc, done: make(chan struct{})}
		var inner Handler
		if h != nil {
			inner = func(m Message) { h(c, m) }
		}
		c.wg.Add(1)
		go c.readLoop(inner)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns = append(s.conns, c)
		s.mu.Unlock()
	}
}

// Close stops accepting and closes all accepted connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}
