package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// collectHandler gathers received messages for assertions.
type collectHandler struct {
	mu   sync.Mutex
	msgs []Message
}

func (h *collectHandler) handle(m Message) {
	h.mu.Lock()
	h.msgs = append(h.msgs, m)
	h.mu.Unlock()
}

func (h *collectHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.msgs)
}

func dialPair(t *testing.T, o DialOptions) (Conn, *collectHandler, func()) {
	t.Helper()
	h := &collectHandler{}
	srv, err := Listen("127.0.0.1:0", h.handle)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	c, err := DialWith(srv.Addr(), o, nil)
	if err != nil {
		srv.Close()
		t.Fatalf("dial: %v", err)
	}
	return c, h, func() {
		_ = c.Close()
		_ = srv.Close()
	}
}

func TestChaosOffByDefault(t *testing.T) {
	if _, ok := ActiveChaos(); ok {
		t.Fatal("chaos active without SetChaos")
	}
	SetChaos(Chaos{}) // zero value clears
	if _, ok := ActiveChaos(); ok {
		t.Fatal("zero Chaos should clear the configuration")
	}
}

func TestChaosPartitionDropsTargetedSends(t *testing.T) {
	SetChaos(Chaos{DropPerMille: 1000})
	defer ClearChaos()

	c, _, cleanup := dialPair(t, DialOptions{Chaos: true})
	defer cleanup()

	before := ChaosDrops()
	err := c.Send(Message{Type: MsgEvent})
	if !errors.Is(err, ErrChaosDrop) {
		t.Fatalf("Send under full partition: got %v, want ErrChaosDrop", err)
	}
	if got := ChaosDrops(); got != before+1 {
		t.Fatalf("ChaosDrops = %d, want %d", got, before+1)
	}
}

func TestChaosIgnoresUntargetedConnections(t *testing.T) {
	SetChaos(Chaos{DropPerMille: 1000, SendDelay: time.Hour})
	defer ClearChaos()

	c, h, cleanup := dialPair(t, DialOptions{}) // control link: Chaos unset
	defer cleanup()

	if err := c.Send(Message{Type: MsgEvent}); err != nil {
		t.Fatalf("untargeted Send failed under chaos: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("message never delivered on untargeted connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestChaosSendDelayStallsFrames(t *testing.T) {
	const delay = 50 * time.Millisecond
	SetChaos(Chaos{SendDelay: delay})
	defer ClearChaos()

	c, _, cleanup := dialPair(t, DialOptions{Chaos: true})
	defer cleanup()

	start := time.Now()
	if err := c.Send(Message{Type: MsgEvent}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("Send took %v, want >= %v injected stall", took, delay)
	}
}

func TestChaosPartialLossDropsSomeNotAll(t *testing.T) {
	SetChaos(Chaos{DropPerMille: 500})
	defer ClearChaos()

	c, _, cleanup := dialPair(t, DialOptions{Chaos: true})
	defer cleanup()

	dropped, delivered := 0, 0
	for i := 0; i < 200; i++ {
		if err := c.Send(Message{Type: MsgEvent}); errors.Is(err, ErrChaosDrop) {
			dropped++
		} else if err == nil {
			delivered++
		} else {
			t.Fatalf("unexpected Send error: %v", err)
		}
	}
	if dropped == 0 || delivered == 0 {
		t.Fatalf("500pm loss over 200 sends: dropped=%d delivered=%d, want both > 0", dropped, delivered)
	}
}
