package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"streammine/internal/event"
)

func sampleEvent() event.Event {
	return event.Event{
		ID: event.ID{Source: 3, Seq: 9}, Timestamp: 77, Version: 2,
		Speculative: true, Key: 5, Payload: []byte("hello"),
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgEvent, Event: sampleEvent()},
		{Type: MsgFinalize, ID: event.ID{Source: 1, Seq: 2}, Version: 3},
		{Type: MsgRevoke, ID: event.ID{Source: 4, Seq: 5}, Version: 6},
		{Type: MsgAck, ID: event.ID{Source: 7, Seq: 8}},
		{Type: MsgReplay, ID: event.ID{Source: 9, Seq: 10}},
	}
	for _, m := range msgs {
		buf := EncodeMessage(nil, m)
		got, n, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: consumed %d of %d", m.Type, n, len(buf))
		}
		if got.Type != m.Type || got.ID != m.ID || got.Version != m.Version {
			t.Fatalf("%s: got %+v want %+v", m.Type, got, m)
		}
		if m.Type == MsgEvent && !got.Event.SameContent(m.Event) {
			t.Fatalf("event mismatch: %+v vs %+v", got.Event, m.Event)
		}
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, _, err := DecodeMessage(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	buf := EncodeMessage(nil, Message{Type: MsgAck, ID: event.ID{Source: 1, Seq: 1}})
	if _, _, err := DecodeMessage(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 99
	if _, _, err := DecodeMessage(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
	huge := append([]byte(nil), buf...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeMessage(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodedEventDetached(t *testing.T) {
	buf := EncodeMessage(nil, Message{Type: MsgEvent, Event: sampleEvent()})
	got, _, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0
	}
	if string(got.Event.Payload) != "hello" {
		t.Fatal("decoded event aliases the input buffer")
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: MsgEvent, Event: sampleEvent()},
		{Type: MsgFinalize, ID: event.ID{Source: 1, Seq: 2}, Version: 1},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type {
			t.Fatalf("type %v want %v", got.Type, want.Type)
		}
	}
}

func TestPipeDelivery(t *testing.T) {
	var mu sync.Mutex
	var atB []Message
	done := make(chan struct{}, 8)
	a, b := Pipe(nil, func(m Message) {
		mu.Lock()
		atB = append(atB, m)
		mu.Unlock()
		done <- struct{}{}
	})
	defer a.Close()
	defer b.Close()
	if err := a.Send(Message{Type: MsgEvent, Event: sampleEvent()}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Message{Type: MsgAck, ID: event.ID{Source: 1, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("message not delivered")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(atB) != 2 || atB[0].Type != MsgEvent || atB[1].Type != MsgAck {
		t.Fatalf("delivered = %+v", atB)
	}
}

func TestPipeBidirectional(t *testing.T) {
	gotA := make(chan Message, 1)
	gotB := make(chan Message, 1)
	a, b := Pipe(func(m Message) { gotA <- m }, func(m Message) { gotB <- m })
	defer a.Close()
	defer b.Close()
	if err := a.Send(Message{Type: MsgAck, ID: event.ID{Source: 1, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{Type: MsgReplay, ID: event.ID{Source: 2, Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gotB:
		if m.Type != MsgAck {
			t.Fatalf("b got %v", m.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b timed out")
	}
	select {
	case m := <-gotA:
		if m.Type != MsgReplay {
			t.Fatalf("a got %v", m.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("a timed out")
	}
}

func TestPipeSendAfterClose(t *testing.T) {
	a, b := Pipe(nil, nil)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Message{Type: MsgAck}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
	_ = b.Close()
}

func TestPipeSendToClosedPeer(t *testing.T) {
	a, b := Pipe(nil, nil)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Fill beyond any buffer: must eventually return ErrClosed, not hang.
	var err error
	for i := 0; i < 2000; i++ {
		if err = a.Send(Message{Type: MsgAck}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Send to closed peer = %v, want ErrClosed", err)
	}
	_ = a.Close()
}

func TestTCPRoundTrip(t *testing.T) {
	received := make(chan Message, 16)
	srv, err := Listen("127.0.0.1:0", func(m Message) { received <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	want := Message{Type: MsgEvent, Event: sampleEvent()}
	if err := client.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-received:
		if got.Type != MsgEvent || !got.Event.SameContent(want.Event) {
			t.Fatalf("got %+v", got)
		}
		if !got.Event.Speculative || got.Event.Version != want.Event.Version {
			t.Fatal("speculation metadata lost in transit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	received := make(chan Message, 1024)
	srv, err := Listen("127.0.0.1:0", func(m Message) { received <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 500
	for i := 0; i < n; i++ {
		e := event.New(event.ID{Source: 1, Seq: event.Seq(i)}, int64(i), nil)
		if err := client.Send(Message{Type: MsgEvent, Event: e}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case got := <-received:
			if got.Event.ID.Seq != event.Seq(i) {
				t.Fatalf("message %d arrived out of order: seq %d", i, got.Event.ID.Seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at message %d", i)
		}
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(Message{Type: MsgAck}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

// TestQuickControlCodec property-tests the control-message codec.
func TestQuickControlCodec(t *testing.T) {
	f := func(kind uint8, src uint32, seq uint64, ver uint32) bool {
		types := []MsgType{MsgFinalize, MsgRevoke, MsgAck, MsgReplay}
		m := Message{
			Type:    types[int(kind)%len(types)],
			ID:      event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)},
			Version: event.Version(ver),
		}
		buf := EncodeMessage(nil, m)
		got, n, err := DecodeMessage(buf)
		return err == nil && n == len(buf) && got.Type == m.Type && got.ID == m.ID && got.Version == m.Version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgEvent.String() != "EVENT" || MsgType(77).String() != "msg(77)" {
		t.Fatal("MsgType.String broken")
	}
}
