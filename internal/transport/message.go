// Package transport carries events and speculation-control messages
// between nodes: in-process pipes for single-machine deployments (the
// paper's experimental setup) and TCP with a framed binary codec for
// distributed ones.
//
// Besides data events, the speculation protocol needs three control
// messages (paper §2.2, §3):
//
//	FINALIZE — an upstream speculative event became final (log stable);
//	REVOKE   — a speculative event was revoked (its content will be
//	           replaced by a higher version or never re-sent);
//	ACK      — a downstream node confirms an event will never be
//	           requested again, so the upstream output buffer can prune;
//	REPLAY   — a recovering node asks its upstream to re-send everything
//	           after a given event.
package transport

import (
	"fmt"

	"streammine/internal/event"
)

// Message is one unit on the wire: a data event or a control message.
type Message struct {
	Type    MsgType
	Event   event.Event   // payload for MsgEvent
	ID      event.ID      // subject of control messages
	Version event.Version // version finalized / revoked
	Input   int           // receiving input index (set by the receiver side)
	Payload []byte        // opaque body for control-plane messages (MsgHello..MsgStop)
	Events  []event.Event // payload for MsgEventBatch (same edge, admission order)
	Finals  []FinalizeRef // payload for MsgFinalizeBatch / MsgAckBatch (commit order)
}

// FinalizeRef identifies one finalized output inside a MsgFinalizeBatch:
// the event and the version whose content became final.
type FinalizeRef struct {
	ID      event.ID
	Version event.Version
}

// MsgType discriminates message kinds on the wire.
type MsgType uint8

// Message kinds. MsgEvent..MsgHeartbeat carry the speculation protocol;
// MsgHello..MsgStop carry the cluster runtime's opaque control payloads:
// HELLO names the target edge on a data-plane bridge connection, and
// REGISTER/ASSIGN/START/STATUS/STOP form the coordinator/worker control
// plane (internal/cluster defines the payload schemas). MsgCredit is the
// flow-control grant on a bridged data edge: the receiver returns credits
// as events leave its mailbox, and the grant count rides ID.Seq (there is
// no subject event).
//
// MsgEventBatch, MsgFinalizeBatch and MsgAckBatch are the amortized
// hot-path frames: a run of same-edge events (or FINALIZE notices, or
// upstream ACKs) travels as one frame, one mailbox push, and — on
// credit-gated edges — one batched credit charge. They are versioned by
// their type byte, like the CREDIT kind before them: old encoders never
// emit the new types, so unbatched frames stay byte-identical to the
// legacy wire format.
const (
	MsgEvent MsgType = iota + 1
	MsgFinalize
	MsgRevoke
	MsgAck
	MsgReplay
	MsgHeartbeat
	MsgHello
	MsgRegister
	MsgAssign
	MsgStart
	MsgStatus
	MsgStop
	MsgCredit
	MsgEventBatch
	MsgFinalizeBatch
	MsgAckBatch
)

// maxMsgType is the highest defined message kind (metrics sizing).
const maxMsgType = MsgAckBatch

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgEvent:
		return "EVENT"
	case MsgFinalize:
		return "FINALIZE"
	case MsgRevoke:
		return "REVOKE"
	case MsgAck:
		return "ACK"
	case MsgReplay:
		return "REPLAY"
	case MsgHeartbeat:
		return "HEARTBEAT"
	case MsgHello:
		return "HELLO"
	case MsgRegister:
		return "REGISTER"
	case MsgAssign:
		return "ASSIGN"
	case MsgStart:
		return "START"
	case MsgStatus:
		return "STATUS"
	case MsgStop:
		return "STOP"
	case MsgCredit:
		return "CREDIT"
	case MsgEventBatch:
		return "EVENT_BATCH"
	case MsgFinalizeBatch:
		return "FINALIZE_BATCH"
	case MsgAckBatch:
		return "ACK_BATCH"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}
