package transport

import (
	"bytes"
	"testing"
	"testing/quick"

	"streammine/internal/event"
)

// quickMessage maps arbitrary fuzz/quick inputs onto a valid Message of
// any wire type, so one generator covers the whole codec surface.
func quickMessage(kind uint8, src uint32, seq uint64, ver uint32, ts int64, key uint64, body []byte) Message {
	types := []MsgType{
		MsgEvent, MsgFinalize, MsgRevoke, MsgAck, MsgReplay, MsgHeartbeat,
		MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop, MsgCredit,
		MsgEventBatch, MsgFinalizeBatch, MsgAckBatch,
	}
	typ := types[int(kind)%len(types)]
	if len(body) > event.MaxPayload {
		body = body[:event.MaxPayload]
	}
	m := Message{Type: typ}
	switch typ {
	case MsgEvent:
		m.Event = event.Event{
			ID:          event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)},
			Timestamp:   ts,
			Version:     event.Version(ver),
			Speculative: seq%2 == 0,
			Key:         key,
			Payload:     body,
		}
	case MsgEventBatch:
		// Batch length and per-event variation derive from the same
		// inputs, splitting the payload across the run so frames of
		// ragged occupancy get exercised.
		n := 1 + int(seq%4)
		for i := 0; i < n; i++ {
			p := body
			if len(body) > 0 {
				p = body[i*len(body)/n : (i+1)*len(body)/n]
			}
			m.Events = append(m.Events, event.Event{
				ID:          event.ID{Source: event.SourceID(src), Seq: event.Seq(seq) + event.Seq(i)},
				Timestamp:   ts + int64(i),
				Version:     event.Version(ver),
				Speculative: (seq+uint64(i))%2 == 0,
				Key:         key + uint64(i),
				Payload:     p,
			})
		}
	case MsgFinalizeBatch, MsgAckBatch:
		n := 1 + int(seq%4)
		for i := 0; i < n; i++ {
			m.Finals = append(m.Finals, FinalizeRef{
				ID:      event.ID{Source: event.SourceID(src), Seq: event.Seq(seq) + event.Seq(i)},
				Version: event.Version(ver) + event.Version(i),
			})
		}
	case MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop:
		m.Payload = body
	default: // control tuple, including MsgCredit
		m.ID = event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)}
		m.Version = event.Version(ver)
	}
	return m
}

// messageEqual compares the wire-visible fields of two messages.
func messageEqual(a, b Message) bool {
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case MsgEvent:
		return a.Event.SameContent(b.Event) &&
			a.Event.Speculative == b.Event.Speculative &&
			a.Event.Version == b.Event.Version
	case MsgEventBatch:
		if len(a.Events) != len(b.Events) {
			return false
		}
		for i := range a.Events {
			if !a.Events[i].SameContent(b.Events[i]) ||
				a.Events[i].Speculative != b.Events[i].Speculative ||
				a.Events[i].Version != b.Events[i].Version {
				return false
			}
		}
		return true
	case MsgFinalizeBatch, MsgAckBatch:
		if len(a.Finals) != len(b.Finals) {
			return false
		}
		for i := range a.Finals {
			if a.Finals[i] != b.Finals[i] {
				return false
			}
		}
		return true
	case MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop:
		return bytes.Equal(a.Payload, b.Payload)
	default:
		return a.ID == b.ID && a.Version == b.Version
	}
}

// TestQuickCodecAllTypes property-tests encode/decode round-trips across
// every message type, CREDIT included.
func TestQuickCodecAllTypes(t *testing.T) {
	f := func(kind uint8, src uint32, seq uint64, ver uint32, ts int64, key uint64, body []byte) bool {
		m := quickMessage(kind, src, seq, ver, ts, key, body)
		buf := EncodeMessage(nil, m)
		got, n, err := DecodeMessage(buf)
		if err != nil || n != len(buf) {
			return false
		}
		// A second frame appended to the buffer must not confuse the
		// first decode's consumed count.
		buf2 := EncodeMessage(buf, Message{Type: MsgHeartbeat})
		got1, n1, err := DecodeMessage(buf2)
		if err != nil || n1 != n || !messageEqual(got1, m) {
			return false
		}
		return messageEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCreditRoundTrip pins the CREDIT wire form: grant count rides ID.Seq
// and the input index survives framing untouched by the codec (Input is a
// receiver-side field and must decode as zero).
func TestCreditRoundTrip(t *testing.T) {
	m := Message{Type: MsgCredit, ID: event.ID{Source: 7, Seq: 42}}
	buf := EncodeMessage(nil, m)
	got, n, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.Type != MsgCredit || got.ID.Source != 7 || got.ID.Seq != 42 {
		t.Fatalf("round-trip = %+v", got)
	}
	if got.Input != 0 {
		t.Fatalf("Input leaked onto the wire: %d", got.Input)
	}
	if MsgCredit.String() != "CREDIT" {
		t.Fatalf("MsgCredit.String() = %q", MsgCredit.String())
	}
}

// TestBatchFrameTornAndInterleaved pins the batch frames' failure and
// framing behavior: every strict prefix of an encoded batch frame must
// fail to decode cleanly (a torn tail can never yield a shorter batch),
// and batch frames interleave with legacy frames on one stream without
// disturbing either side's consumed count.
func TestBatchFrameTornAndInterleaved(t *testing.T) {
	evs := []event.Event{
		{ID: event.ID{Source: 1, Seq: 10}, Timestamp: 5, Speculative: true, Key: 3, Payload: []byte("alpha")},
		{ID: event.ID{Source: 1, Seq: 11}, Timestamp: 6, Key: 4, Payload: []byte("beta")},
		{ID: event.ID{Source: 1, Seq: 12}, Timestamp: 7, Payload: []byte("gamma")},
	}
	for _, m := range []Message{
		{Type: MsgEventBatch, Events: evs},
		{Type: MsgFinalizeBatch, Finals: []FinalizeRef{{ID: evs[0].ID, Version: 2}, {ID: evs[1].ID, Version: 3}}},
		{Type: MsgAckBatch, Finals: []FinalizeRef{{ID: evs[0].ID}, {ID: evs[1].ID}, {ID: evs[2].ID}}},
	} {
		frame := EncodeMessage(nil, m)
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := DecodeMessage(frame[:cut]); err == nil {
				t.Fatalf("%v: torn frame cut at %d/%d decoded successfully", m.Type, cut, len(frame))
			}
		}
	}

	// One stream: legacy EVENT, EVENT_BATCH, legacy FINALIZE,
	// FINALIZE_BATCH — old and new frames must coexist.
	stream := EncodeMessage(nil, Message{Type: MsgEvent, Event: evs[0]})
	stream = EncodeMessage(stream, Message{Type: MsgEventBatch, Events: evs})
	stream = EncodeMessage(stream, Message{Type: MsgFinalize, ID: evs[0].ID, Version: 1})
	stream = EncodeMessage(stream, Message{Type: MsgFinalizeBatch, Finals: []FinalizeRef{{ID: evs[2].ID, Version: 9}}})
	want := []MsgType{MsgEvent, MsgEventBatch, MsgFinalize, MsgFinalizeBatch}
	for i := 0; len(stream) > 0; i++ {
		m, n, err := DecodeMessage(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i >= len(want) || m.Type != want[i] {
			t.Fatalf("frame %d: type %v, want %v", i, m.Type, want[i])
		}
		if m.Type == MsgEventBatch {
			if len(m.Events) != len(evs) {
				t.Fatalf("batch decoded %d events, want %d", len(m.Events), len(evs))
			}
			for j := range evs {
				if !m.Events[j].SameContent(evs[j]) {
					t.Fatalf("batch event %d content mismatch", j)
				}
			}
		}
		stream = stream[n:]
	}
}

// FuzzDecodeMessage fuzzes the frame decoder: arbitrary bytes must never
// panic, and any frame that decodes successfully must re-encode and
// decode to an equal message (round-trip stability).
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: one valid frame of every message type plus structural
	// edge cases.
	for kind := uint8(0); kind < 16; kind++ {
		m := quickMessage(kind, 3, 9, 2, 77, 5, []byte("seed"))
		f.Add(EncodeMessage(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add(EncodeMessage(nil, Message{Type: MsgCredit, ID: event.ID{Source: 1, Seq: 64}}))
	// Batch edge cases: a torn batch frame (truncated mid-events), a batch
	// whose declared count exceeds its body, and a legacy frame interleaved
	// after a batch frame in one buffer.
	batch := EncodeMessage(nil, quickMessage(13, 3, 2, 1, 9, 4, []byte("torn-batch-payload")))
	f.Add(batch[:len(batch)/2])
	f.Add(batch[:len(batch)-1])
	f.Add(EncodeMessage(batch, Message{Type: MsgFinalize, ID: event.ID{Source: 3, Seq: 4}, Version: 2}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		buf := EncodeMessage(nil, m)
		got, n2, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if n2 != len(buf) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(buf))
		}
		if !messageEqual(got, m) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", got, m)
		}
	})
}
