package transport

import (
	"bytes"
	"testing"
	"testing/quick"

	"streammine/internal/event"
)

// quickMessage maps arbitrary fuzz/quick inputs onto a valid Message of
// any wire type, so one generator covers the whole codec surface.
func quickMessage(kind uint8, src uint32, seq uint64, ver uint32, ts int64, key uint64, body []byte) Message {
	types := []MsgType{
		MsgEvent, MsgFinalize, MsgRevoke, MsgAck, MsgReplay, MsgHeartbeat,
		MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop, MsgCredit,
	}
	typ := types[int(kind)%len(types)]
	if len(body) > event.MaxPayload {
		body = body[:event.MaxPayload]
	}
	m := Message{Type: typ}
	switch typ {
	case MsgEvent:
		m.Event = event.Event{
			ID:          event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)},
			Timestamp:   ts,
			Version:     event.Version(ver),
			Speculative: seq%2 == 0,
			Key:         key,
			Payload:     body,
		}
	case MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop:
		m.Payload = body
	default: // control tuple, including MsgCredit
		m.ID = event.ID{Source: event.SourceID(src), Seq: event.Seq(seq)}
		m.Version = event.Version(ver)
	}
	return m
}

// messageEqual compares the wire-visible fields of two messages.
func messageEqual(a, b Message) bool {
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case MsgEvent:
		return a.Event.SameContent(b.Event) &&
			a.Event.Speculative == b.Event.Speculative &&
			a.Event.Version == b.Event.Version
	case MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop:
		return bytes.Equal(a.Payload, b.Payload)
	default:
		return a.ID == b.ID && a.Version == b.Version
	}
}

// TestQuickCodecAllTypes property-tests encode/decode round-trips across
// every message type, CREDIT included.
func TestQuickCodecAllTypes(t *testing.T) {
	f := func(kind uint8, src uint32, seq uint64, ver uint32, ts int64, key uint64, body []byte) bool {
		m := quickMessage(kind, src, seq, ver, ts, key, body)
		buf := EncodeMessage(nil, m)
		got, n, err := DecodeMessage(buf)
		if err != nil || n != len(buf) {
			return false
		}
		// A second frame appended to the buffer must not confuse the
		// first decode's consumed count.
		buf2 := EncodeMessage(buf, Message{Type: MsgHeartbeat})
		got1, n1, err := DecodeMessage(buf2)
		if err != nil || n1 != n || !messageEqual(got1, m) {
			return false
		}
		return messageEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCreditRoundTrip pins the CREDIT wire form: grant count rides ID.Seq
// and the input index survives framing untouched by the codec (Input is a
// receiver-side field and must decode as zero).
func TestCreditRoundTrip(t *testing.T) {
	m := Message{Type: MsgCredit, ID: event.ID{Source: 7, Seq: 42}}
	buf := EncodeMessage(nil, m)
	got, n, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.Type != MsgCredit || got.ID.Source != 7 || got.ID.Seq != 42 {
		t.Fatalf("round-trip = %+v", got)
	}
	if got.Input != 0 {
		t.Fatalf("Input leaked onto the wire: %d", got.Input)
	}
	if MsgCredit.String() != "CREDIT" {
		t.Fatalf("MsgCredit.String() = %q", MsgCredit.String())
	}
}

// FuzzDecodeMessage fuzzes the frame decoder: arbitrary bytes must never
// panic, and any frame that decodes successfully must re-encode and
// decode to an equal message (round-trip stability).
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: one valid frame of every message type plus structural
	// edge cases.
	for kind := uint8(0); kind < 13; kind++ {
		m := quickMessage(kind, 3, 9, 2, 77, 5, []byte("seed"))
		f.Add(EncodeMessage(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add(EncodeMessage(nil, Message{Type: MsgCredit, ID: event.ID{Source: 1, Seq: 64}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		buf := EncodeMessage(nil, m)
		got, n2, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if n2 != len(buf) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(buf))
		}
		if !messageEqual(got, m) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", got, m)
		}
	})
}
