package transport

import (
	"sync/atomic"

	"streammine/internal/metrics"
)

// Metrics instruments the transport layer. Counters are process-global:
// every Conn (in-process pipe or TCP) counts sends by message type, and
// every Detector counts down-transitions as heartbeat misses. Nil fields
// are skipped.
type Metrics struct {
	// Sent indexes per-type send counters by MsgType. Index 0 collects
	// unknown types.
	Sent [maxMsgType + 1]*metrics.Counter
	// HeartbeatMisses counts failure-detector down transitions.
	HeartbeatMisses *metrics.Counter
}

// activeMetrics is the installed instrumentation; nil disables counting.
var activeMetrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the transport
// instrumentation. Typically called once at process start via
// RegisterMetrics.
func SetMetrics(m *Metrics) { activeMetrics.Store(m) }

// RegisterMetrics creates the transport counter series on reg
// (transport_messages_sent_total{type=...}, transport_heartbeat_misses_total),
// installs them as the process-wide transport instrumentation and
// returns them.
func RegisterMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		HeartbeatMisses: reg.Counter("transport_heartbeat_misses_total",
			"Failure-detector down transitions (peer silent past the timeout)."),
	}
	const help = "Messages sent on transport connections, by type."
	for t := MsgEvent; t <= maxMsgType; t++ {
		m.Sent[t] = reg.CounterWith("transport_messages_sent_total", help,
			metrics.Labels{"type": t.String()})
	}
	SetMetrics(m)
	return m
}

// countSend records one outbound message, if instrumentation is active.
func countSend(t MsgType) {
	m := activeMetrics.Load()
	if m == nil {
		return
	}
	if int(t) >= len(m.Sent) {
		t = 0
	}
	if c := m.Sent[t]; c != nil {
		c.Inc()
	}
}

// countHeartbeatMisses records failure-detector down transitions.
func countHeartbeatMisses(n int) {
	if n == 0 {
		return
	}
	m := activeMetrics.Load()
	if m == nil || m.HeartbeatMisses == nil {
		return
	}
	m.HeartbeatMisses.Add(uint64(n))
}
