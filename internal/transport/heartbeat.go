package transport

import (
	"sync"
	"time"
)

// Heartbeater periodically sends MsgHeartbeat on a connection so the peer's
// Detector can monitor liveness. The paper's recovery protocol (§2.2)
// presumes fail-stop crash detection; timeout-based heartbeating is the
// standard mechanism.
type Heartbeater struct {
	conn     Conn
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewHeartbeater starts heartbeating on conn every interval.
func NewHeartbeater(conn Conn, interval time.Duration) *Heartbeater {
	h := &Heartbeater{
		conn:     conn,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go h.loop()
	return h
}

func (h *Heartbeater) loop() {
	defer close(h.done)
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
			if err := h.conn.Send(Message{Type: MsgHeartbeat}); err != nil {
				return // connection gone; the peer's detector will notice
			}
		}
	}
}

// Stop halts the heartbeat loop and waits for it to exit.
func (h *Heartbeater) Stop() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}

// Clock abstracts time for the Detector (tests inject a manual clock).
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Detector is a timeout-based failure detector over named peers. Each
// Observe resets the peer's deadline; Check (or the background sweeper)
// reports peers whose silence exceeded the timeout exactly once per
// down-transition.
type Detector struct {
	timeout time.Duration
	clock   Clock
	onDown  func(peer string)

	mu       sync.Mutex
	lastSeen map[string]time.Time
	down     map[string]bool
}

// DetectorOption configures a Detector.
type DetectorOption func(*Detector)

// WithClock injects a test clock.
func WithClock(c Clock) DetectorOption {
	return func(d *Detector) { d.clock = c }
}

// NewDetector creates a detector that declares a peer down after timeout
// of silence, invoking onDown (may be nil) once per transition.
func NewDetector(timeout time.Duration, onDown func(peer string), opts ...DetectorOption) *Detector {
	d := &Detector{
		timeout:  timeout,
		clock:    realClock{},
		onDown:   onDown,
		lastSeen: make(map[string]time.Time),
		down:     make(map[string]bool),
	}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// Observe records a liveness signal (heartbeat or any message) from peer.
// A down peer observed again is resurrected (and eligible for a future
// down notification).
func (d *Detector) Observe(peer string) {
	d.mu.Lock()
	d.lastSeen[peer] = d.clock.Now()
	d.down[peer] = false
	d.mu.Unlock()
}

// Check sweeps all peers and returns those that transitioned to down in
// this sweep, invoking onDown for each.
func (d *Detector) Check() []string {
	now := d.clock.Now()
	var newlyDown []string
	d.mu.Lock()
	for peer, seen := range d.lastSeen {
		if d.down[peer] || now.Sub(seen) <= d.timeout {
			continue
		}
		d.down[peer] = true
		newlyDown = append(newlyDown, peer)
	}
	cb := d.onDown
	d.mu.Unlock()
	countHeartbeatMisses(len(newlyDown))
	if cb != nil {
		for _, p := range newlyDown {
			cb(p)
		}
	}
	return newlyDown
}

// Alive reports whether peer is currently considered alive. Unknown peers
// are not alive.
func (d *Detector) Alive(peer string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen, ok := d.lastSeen[peer]
	if !ok || d.down[peer] {
		return false
	}
	return d.clock.Now().Sub(seen) <= d.timeout
}

// LastSeen returns the time of the last liveness signal from peer. The
// recovery profiler anchors the detect phase here: last heartbeat →
// declared down is the detection window.
func (d *Detector) LastSeen(peer string) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen, ok := d.lastSeen[peer]
	return seen, ok
}

// Peers returns all known peer names.
func (d *Detector) Peers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.lastSeen))
	for p := range d.lastSeen {
		out = append(out, p)
	}
	return out
}
