package transport

import (
	"errors"
	"sync/atomic"
	"time"
)

// Chaos is the transport-level fault-injection configuration used by the
// campaign runner's slow-bridge / lossy-bridge / straggler faults
// (docs/CAMPAIGNS.md). It applies only to connections dialed with
// DialOptions.Chaos set — in this repo that is the engine's data-plane
// bridges — so control links (worker registration, heartbeats) keep their
// real timing and a slow bridge is not misdiagnosed as a dead worker.
//
// Semantics:
//
//   - DialDelay stalls every chaos-targeted dial before connecting,
//     slowing reconnect storms the way a congested network would.
//   - SendDelay stalls every frame written on a chaos-targeted
//     connection (the sender holds its per-connection write lock, so the
//     whole link slows down — a slow or saturated path).
//   - DropPerMille fails roughly that fraction (per thousand) of sends
//     with ErrChaosDrop instead of writing the frame. The bridge layer
//     treats any send error as a dead link: it closes the connection,
//     redials, and replays the unacknowledged buffer — so injected loss
//     exercises the full reconnect+replay recovery path. 1000 drops every
//     send: a full partition of the data plane.
type Chaos struct {
	DialDelay    time.Duration
	SendDelay    time.Duration
	DropPerMille int
}

// ErrChaosDrop is the injected failure returned by Send on a
// chaos-targeted connection when the lossy-bridge fault fires.
var ErrChaosDrop = errors.New("transport: chaos-injected send failure")

var (
	chaosCfg     atomic.Pointer[Chaos]
	chaosSeq     atomic.Uint64
	chaosDropped atomic.Int64
)

// SetChaos installs the transport fault configuration process-wide. The
// zero Chaos clears it (equivalent to ClearChaos).
func SetChaos(c Chaos) {
	if c == (Chaos{}) {
		chaosCfg.Store(nil)
		return
	}
	cc := c
	chaosCfg.Store(&cc)
}

// ClearChaos removes any installed fault configuration.
func ClearChaos() { chaosCfg.Store(nil) }

// ActiveChaos returns the current configuration (zero when chaos is off)
// and whether one is installed.
func ActiveChaos() (Chaos, bool) {
	if c := chaosCfg.Load(); c != nil {
		return *c, true
	}
	return Chaos{}, false
}

// ChaosDrops reports how many sends were failed by the lossy-bridge
// fault since process start.
func ChaosDrops() int64 { return chaosDropped.Load() }

// chaosDropNow decides one send's fate under the configured loss rate.
// The decision sequence is a SplitMix64 stream over an atomic counter:
// deterministic per process given the call order, cheap, and safe for
// concurrent senders.
func chaosDropNow(perMille int) bool {
	if perMille <= 0 {
		return false
	}
	if perMille >= 1000 {
		chaosDropped.Add(1)
		return true
	}
	z := chaosSeq.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if int(z%1000) < perMille {
		chaosDropped.Add(1)
		return true
	}
	return false
}
