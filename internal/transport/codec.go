package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"streammine/internal/event"
)

// Wire format: each frame is
//
//	length uint32   (bytes after this field)
//	type   uint8
//	body   (event encoding for MsgEvent; fixed control tuple otherwise)
const (
	controlBody = 4 + 8 + 4 // source, seq, version
	// maxFrameSize is the sanity cap on a frame length prefix. Batch
	// frames carry several events, so the cap leaves room for a few
	// maximum-size payloads rather than exactly one.
	maxFrameSize = 4 + 1 + 4 + 4*(event.MaxPayload+64)
)

// ErrFrameTooLarge reports a frame length prefix exceeding the sanity cap.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// EncodeMessage appends the wire form of m to dst.
func EncodeMessage(dst []byte, m Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(m.Type)) // length patched below
	switch m.Type {
	case MsgEvent:
		dst = m.Event.Encode(dst)
	case MsgEventBatch:
		dst = event.EncodeBatch(dst, m.Events)
	case MsgFinalizeBatch, MsgAckBatch:
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(m.Finals)))
		dst = append(dst, n[:]...)
		for _, f := range m.Finals {
			var b [controlBody]byte
			binary.LittleEndian.PutUint32(b[0:], uint32(f.ID.Source))
			binary.LittleEndian.PutUint64(b[4:], uint64(f.ID.Seq))
			binary.LittleEndian.PutUint32(b[12:], uint32(f.Version))
			dst = append(dst, b[:]...)
		}
	case MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop:
		dst = append(dst, m.Payload...)
	default:
		var b [controlBody]byte
		binary.LittleEndian.PutUint32(b[0:], uint32(m.ID.Source))
		binary.LittleEndian.PutUint64(b[4:], uint64(m.ID.Seq))
		binary.LittleEndian.PutUint32(b[12:], uint32(m.Version))
		dst = append(dst, b[:]...)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeMessage parses one frame from src, returning the message and bytes
// consumed. Single-event payloads are copied (frames outlive read
// buffers). Batched event payloads are NOT copied: they alias src — the
// zero-copy path. ReadMessage allocates a fresh buffer per frame and
// never reuses it, so batch events decoded through it own their backing
// array collectively; callers decoding from a reused buffer must clone
// batch events before the next frame overwrites it.
func DecodeMessage(src []byte) (Message, int, error) {
	if len(src) < 5 {
		return Message{}, 0, event.ErrShortBuffer
	}
	length := binary.LittleEndian.Uint32(src)
	if length > maxFrameSize {
		return Message{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	if length < 1 { // the length covers at least the type byte
		return Message{}, 0, event.ErrShortBuffer
	}
	if len(src) < 4+int(length) {
		return Message{}, 0, event.ErrShortBuffer
	}
	m := Message{Type: MsgType(src[4])}
	body := src[5 : 4+length]
	switch m.Type {
	case MsgEvent:
		e, _, err := event.Decode(body)
		if err != nil {
			return Message{}, 0, fmt.Errorf("decode event frame: %w", err)
		}
		m.Event = e.Clone() // detach from the read buffer
	case MsgEventBatch:
		evs, n, err := event.DecodeBatch(body)
		if err != nil {
			return Message{}, 0, fmt.Errorf("decode batch frame: %w", err)
		}
		if n != len(body) {
			return Message{}, 0, fmt.Errorf("decode batch frame: %d trailing bytes", len(body)-n)
		}
		m.Events = evs // zero-copy: payloads alias the frame buffer
	case MsgFinalizeBatch, MsgAckBatch:
		if len(body) < 4 {
			return Message{}, 0, event.ErrShortBuffer
		}
		count := binary.LittleEndian.Uint32(body)
		if int(count)*controlBody != len(body)-4 {
			return Message{}, 0, event.ErrShortBuffer
		}
		m.Finals = make([]FinalizeRef, count)
		for i := range m.Finals {
			rec := body[4+i*controlBody:]
			m.Finals[i] = FinalizeRef{
				ID: event.ID{
					Source: event.SourceID(binary.LittleEndian.Uint32(rec[0:])),
					Seq:    event.Seq(binary.LittleEndian.Uint64(rec[4:])),
				},
				Version: event.Version(binary.LittleEndian.Uint32(rec[12:])),
			}
		}
	case MsgHello, MsgRegister, MsgAssign, MsgStart, MsgStatus, MsgStop:
		if len(body) > 0 {
			m.Payload = make([]byte, len(body)) // detach from the read buffer
			copy(m.Payload, body)
		}
	case MsgFinalize, MsgRevoke, MsgAck, MsgReplay, MsgHeartbeat, MsgCredit:
		if len(body) < controlBody {
			return Message{}, 0, event.ErrShortBuffer
		}
		m.ID = event.ID{
			Source: event.SourceID(binary.LittleEndian.Uint32(body[0:])),
			Seq:    event.Seq(binary.LittleEndian.Uint64(body[4:])),
		}
		m.Version = event.Version(binary.LittleEndian.Uint32(body[12:]))
	default:
		return Message{}, 0, fmt.Errorf("transport: unknown message type %d", src[4])
	}
	return m, 4 + int(length), nil
}

// WriteMessage writes one frame to w, encoding through a pooled scratch
// buffer so steady-state sends do not allocate per frame.
func WriteMessage(w io.Writer, m Message) error {
	buf := event.GetBuffer()
	buf = EncodeMessage(buf, m)
	_, err := w.Write(buf)
	event.PutBuffer(buf)
	if err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadMessage reads one complete frame from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length > maxFrameSize {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	body := make([]byte, 4+length)
	copy(body, hdr[:])
	if _, err := io.ReadFull(r, body[4:]); err != nil {
		return Message{}, err
	}
	m, _, err := DecodeMessage(body)
	return m, err
}
