package transport

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestDetectorDownAfterTimeout(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	var downs []string
	var mu sync.Mutex
	d := NewDetector(time.Second, func(p string) {
		mu.Lock()
		downs = append(downs, p)
		mu.Unlock()
	}, WithClock(clock))

	d.Observe("node-a")
	d.Observe("node-b")
	if !d.Alive("node-a") {
		t.Fatal("fresh peer not alive")
	}
	if d.Alive("stranger") {
		t.Fatal("unknown peer alive")
	}

	clock.Advance(500 * time.Millisecond)
	d.Observe("node-b") // keep b fresh
	clock.Advance(700 * time.Millisecond)

	newly := d.Check()
	if len(newly) != 1 || newly[0] != "node-a" {
		t.Fatalf("newly down = %v, want [node-a]", newly)
	}
	if d.Alive("node-a") || !d.Alive("node-b") {
		t.Fatalf("liveness wrong: a=%v b=%v", d.Alive("node-a"), d.Alive("node-b"))
	}
	mu.Lock()
	got := len(downs)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("onDown fired %d times", got)
	}
	// A second check must not re-report.
	if again := d.Check(); len(again) != 0 {
		t.Fatalf("re-reported down peers: %v", again)
	}
}

func TestDetectorResurrection(t *testing.T) {
	clock := &fakeClock{now: time.Unix(100, 0)}
	d := NewDetector(time.Second, nil, WithClock(clock))
	d.Observe("n")
	clock.Advance(2 * time.Second)
	if down := d.Check(); len(down) != 1 {
		t.Fatalf("down = %v", down)
	}
	// The peer comes back.
	d.Observe("n")
	if !d.Alive("n") {
		t.Fatal("resurrected peer not alive")
	}
	// And can die again, with a fresh notification.
	clock.Advance(2 * time.Second)
	if down := d.Check(); len(down) != 1 || down[0] != "n" {
		t.Fatalf("second death not reported: %v", down)
	}
	if peers := d.Peers(); len(peers) != 1 || peers[0] != "n" {
		t.Fatalf("Peers = %v", peers)
	}
}

func TestHeartbeaterSendsOverPipe(t *testing.T) {
	received := make(chan Message, 64)
	a, b := Pipe(nil, func(m Message) { received <- m })
	defer a.Close()
	defer b.Close()

	hb := NewHeartbeater(a, 5*time.Millisecond)
	defer hb.Stop()

	deadline := time.After(5 * time.Second)
	count := 0
	for count < 3 {
		select {
		case m := <-received:
			if m.Type != MsgHeartbeat {
				t.Fatalf("got %v", m.Type)
			}
			count++
		case <-deadline:
			t.Fatalf("only %d heartbeats arrived", count)
		}
	}
}

func TestHeartbeaterStopsOnDeadConn(t *testing.T) {
	a, b := Pipe(nil, nil)
	_ = b.Close()
	_ = a.Close()
	hb := NewHeartbeater(a, time.Millisecond)
	// The loop must exit on its own once Send fails; Stop must not hang.
	done := make(chan struct{})
	go func() {
		hb.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on dead connection")
	}
}

func TestHeartbeatWireRoundTrip(t *testing.T) {
	buf := EncodeMessage(nil, Message{Type: MsgHeartbeat})
	m, n, err := DecodeMessage(buf)
	if err != nil || n != len(buf) || m.Type != MsgHeartbeat {
		t.Fatalf("round trip: %+v, %d, %v", m, n, err)
	}
	if MsgHeartbeat.String() != "HEARTBEAT" {
		t.Fatal("String() wrong")
	}
}

// TestDetectorEndToEndTCP: heartbeats over real TCP keep the peer alive;
// closing the connection leads to a down transition.
func TestDetectorEndToEndTCP(t *testing.T) {
	det := NewDetector(200*time.Millisecond, nil)
	srv, err := Listen("127.0.0.1:0", func(m Message) {
		if m.Type == MsgHeartbeat {
			det.Observe("client")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hb := NewHeartbeater(conn, 20*time.Millisecond)

	// Stays alive while heartbeating.
	deadline := time.Now().Add(5 * time.Second)
	for !det.Alive("client") {
		if time.Now().After(deadline) {
			t.Fatal("client never became alive")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)
	det.Check()
	if !det.Alive("client") {
		t.Fatal("client died despite heartbeats")
	}

	// Kill the link: the detector notices within the timeout.
	hb.Stop()
	_ = conn.Close()
	for det.Alive("client") {
		det.Check()
		if time.Now().After(deadline) {
			t.Fatal("client never declared down")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
