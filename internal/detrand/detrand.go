// Package detrand provides the replayable pseudo-random number generator
// used for non-deterministic operator decisions.
//
// Precise recovery (paper §2.2) requires that every random draw taken while
// processing an event be reproducible during replay. Two mechanisms are
// supported:
//
//  1. Seeded determinism: a Source seeded identically replays the same
//     sequence, so checkpointing the source state (a single uint64) makes
//     all later draws deterministic.
//  2. Draw logging: the operator context records each draw in the decision
//     log; during replay the logged values are fed back through a Replayer
//     instead of generating fresh ones.
//
// The generator is SplitMix64 (Steele et al.), chosen because its full
// state is one word — cheap to checkpoint and to log.
package detrand

import (
	"errors"
	"math"
)

// Source is a deterministic PRNG with single-word state.
//
// Source is not safe for concurrent use; each operator worker owns its own
// Source (draws are serialized through the transaction that takes them).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next value in the sequence (SplitMix64 step).
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0, mirroring math/rand.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// State returns the current generator state for checkpointing.
func (s *Source) State() uint64 { return s.state }

// Restore resets the generator to a previously checkpointed state.
func (s *Source) Restore(state uint64) { s.state = state }

// Fork derives an independent child source. The child sequence is
// deterministic given the parent state, so forking is itself replayable.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xD1B54A32D192ED03)
}

// ErrReplayExhausted is returned when a Replayer runs out of logged draws.
var ErrReplayExhausted = errors.New("detrand: replay log exhausted")

// Replayer feeds previously logged draws back to an operator during
// recovery. Once the log is exhausted the operator switches back to live
// generation (the Source whose state was part of the checkpoint).
type Replayer struct {
	draws []uint64
	next  int
}

// NewReplayer wraps a logged draw sequence.
func NewReplayer(draws []uint64) *Replayer {
	return &Replayer{draws: draws}
}

// Uint64 returns the next logged draw.
func (r *Replayer) Uint64() (uint64, error) {
	if r.next >= len(r.draws) {
		return 0, ErrReplayExhausted
	}
	v := r.draws[r.next]
	r.next++
	return v, nil
}

// Remaining reports how many logged draws have not yet been replayed.
func (r *Replayer) Remaining() int { return len(r.draws) - r.next }

// Zipf draws from a Zipf distribution over [0, n) with exponent theta,
// using the rejection-inversion free cumulative method (precomputed CDF).
// It is used by the benchmark workload generators (skewed keys make sketch
// operators realistic).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf precomputes the distribution. It panics if n <= 0 — workload
// construction is program initialization, where panics are acceptable.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("detrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Draw returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
