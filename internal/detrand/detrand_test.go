package detrand

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestStateRestoreResumesSequence(t *testing.T) {
	src := New(7)
	for i := 0; i < 10; i++ {
		src.Uint64()
	}
	saved := src.State()
	want := []uint64{src.Uint64(), src.Uint64(), src.Uint64()}
	src.Restore(saved)
	for i, w := range want {
		if got := src.Uint64(); got != w {
			t.Fatalf("draw %d after restore: got %d want %d", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(9)
	for _, n := range []int{1, 2, 7, 1000} {
		for i := 0; i < 200; i++ {
			if v := src.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	src := New(11)
	for i := 0; i < 1000; i++ {
		if v := src.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Fork()
	// A forked child with the same parent state is deterministic.
	parent2 := New(5)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("fork is not deterministic")
		}
	}
}

func TestReplayer(t *testing.T) {
	draws := []uint64{10, 20, 30}
	r := NewReplayer(draws)
	if r.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", r.Remaining())
	}
	for i, want := range draws {
		got, err := r.Uint64()
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("draw %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.Uint64(); !errors.Is(err, ErrReplayExhausted) {
		t.Fatalf("exhausted replay returned %v, want ErrReplayExhausted", err)
	}
}

func TestZipfSkew(t *testing.T) {
	src := New(99)
	z := NewZipf(src, 100, 1.0)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 50 heavily under theta=1.
	if counts[0] < counts[50]*5 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank 0 should be roughly draws/H(100) ≈ draws/5.19.
	expected := float64(draws) / 5.187
	if math.Abs(float64(counts[0])-expected) > expected*0.2 {
		t.Fatalf("counts[0]=%d, expected ≈ %.0f", counts[0], expected)
	}
}

func TestZipfUniformTheta0(t *testing.T) {
	z := NewZipf(New(3), 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("theta=0 counts[%d]=%d, want ≈1000", i, c)
		}
	}
}

// TestQuickUint64FullRange checks the generator hits both halves of the
// output space regardless of seed (a sanity property of SplitMix64).
func TestQuickUint64FullRange(t *testing.T) {
	f := func(seed uint64) bool {
		src := New(seed)
		lowSeen, highSeen := false, false
		for i := 0; i < 64 && !(lowSeen && highSeen); i++ {
			if src.Uint64() < 1<<63 {
				lowSeen = true
			} else {
				highSeen = true
			}
		}
		return lowSeen && highSeen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		src.Uint64()
	}
}
