package cluster

import (
	"reflect"
	"testing"

	"streammine/internal/topology"
)

const planTopo = `{
  "seed": 1,
  "nodes": [
    {"name": "src",      "type": "source", "count": 10},
    {"name": "splitter", "type": "split", "outputs": 2, "inputs": ["src"]},
    {"name": "left",     "type": "passthrough", "inputs": ["splitter:0"]},
    {"name": "right",    "type": "passthrough", "inputs": ["splitter:1"]},
    {"name": "merge",    "type": "union", "inputs": ["left", "right"]},
    {"name": "out",      "type": "sink", "inputs": ["merge"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "splitter": 0, "left": 0, "right": 1, "merge": 1, "out": 1}
  }
}`

func TestBuildPlanPinned(t *testing.T) {
	cfg, err := topology.Parse([]byte(planTopo))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := BuildPlan(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2", len(parts))
	}
	if !reflect.DeepEqual(parts[0].Nodes, []string{"src", "splitter", "left"}) {
		t.Fatalf("partition 0 nodes = %v", parts[0].Nodes)
	}
	if !reflect.DeepEqual(parts[1].Nodes, []string{"right", "merge", "out"}) {
		t.Fatalf("partition 1 nodes = %v", parts[1].Nodes)
	}
	// Two cut edges: splitter:1 → right and left:0 → merge:0.
	if len(parts[0].CutOut) != 2 || len(parts[1].CutIn) != 2 {
		t.Fatalf("cut edges out=%v in=%v", parts[0].CutOut, parts[1].CutIn)
	}
	keys := map[string]bool{}
	for _, e := range parts[0].CutOut {
		keys[e.Key()] = true
	}
	for _, want := range []string{"splitter:1->right:0", "left:0->merge:0"} {
		if !keys[want] {
			t.Errorf("missing cut edge %s in %v", want, keys)
		}
	}
	if len(parts[1].CutOut) != 0 || len(parts[0].CutIn) != 0 {
		t.Fatalf("unexpected reverse cuts: out=%v in=%v", parts[1].CutOut, parts[0].CutIn)
	}
}

func TestBuildPlanRoundRobin(t *testing.T) {
	cfg, err := topology.Parse([]byte(planTopo))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Placement = nil // spread over however many workers registered
	parts, err := BuildPlan(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p.Nodes)
	}
	if total != 6 {
		t.Fatalf("placed %d nodes, want 6", total)
	}
	// Every cross-partition input must appear exactly once as CutIn and
	// once as the matching CutOut.
	in, out := map[string]int{}, map[string]int{}
	for _, p := range parts {
		for _, e := range p.CutIn {
			in[e.Key()]++
		}
		for _, e := range p.CutOut {
			out[e.Key()]++
		}
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("cut edge mismatch: in=%v out=%v", in, out)
	}
}

func TestBuildPlanMoreWorkersThanNodes(t *testing.T) {
	cfg, err := topology.Parse([]byte(planTopo))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Placement = nil
	parts, err := BuildPlan(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 6 {
		t.Fatalf("partitions = %d, want 6 (empty ones dropped)", len(parts))
	}
}

func TestBuildPlanErrors(t *testing.T) {
	cfg, err := topology.Parse([]byte(planTopo))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Placement = &topology.Placement{Workers: 2, Assign: map[string]int{"ghost": 0}}
	if _, err := BuildPlan(cfg, 2); err == nil {
		t.Fatal("unknown assigned node accepted")
	}
	cfg.Placement = &topology.Placement{Workers: 2, Assign: map[string]int{"src": 7}}
	if _, err := BuildPlan(cfg, 2); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	cfg.Placement = nil
	if _, err := BuildPlan(cfg, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}
