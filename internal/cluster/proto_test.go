package cluster

import (
	"reflect"
	"testing"

	"streammine/internal/core"
	"streammine/internal/transport"
)

// TestControlCodecRoundTrip pushes every control payload through the
// encode/decode pair and through the wire codec, since that is exactly
// the path coordinator↔worker messages travel.
func TestControlCodecRoundTrip(t *testing.T) {
	edge := Edge{From: "union", FromPort: 1, To: "classify", ToInput: 0, PeerAddr: "127.0.0.1:9999"}
	cases := []struct {
		typ transport.MsgType
		in  any
		out any
	}{
		{transport.MsgRegister, &RegisterMsg{Name: "w1", DataAddr: "127.0.0.1:7001"}, &RegisterMsg{}},
		{transport.MsgAssign, &AssignMsg{
			Partition: 2, Epoch: 3, Topology: []byte(`{"nodes":[]}`),
			Nodes: []string{"a", "b"}, CutIn: []Edge{edge}, CutOut: []Edge{edge},
		}, &AssignMsg{}},
		{transport.MsgStart, &StartMsg{Partition: 2}, &StartMsg{}},
		{transport.MsgStatus, &StatusMsg{
			Name: "w1", Partition: 2, Epoch: 3, Phase: PhaseRunning,
			Committed: 41, Quiesced: true, Err: "boom",
			Pressure: []core.NodePressure{{
				Node: "classify", DataDepth: 7, DataCap: 32, DataHighWater: 30,
				Overflows: 2, CreditQueued: 5, CreditsOutstanding: 16,
				ThrottleOpen: 3, ThrottleCap: 4, Throttled: 11,
				Admitted: 100, Shed: 9, AdmitRate: 512.5,
			}},
		}, &StatusMsg{}},
		{transport.MsgStop, &StopMsg{Reason: "done"}, &StopMsg{}},
		{transport.MsgHello, &HelloMsg{Edge: edge}, &HelloMsg{}},
	}
	for _, c := range cases {
		m, err := encodeCtl(c.typ, c.in)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.typ, err)
		}
		if m.Type != c.typ {
			t.Fatalf("%s: message type %v", c.typ, m.Type)
		}
		// Through the wire framing too.
		frame := transport.EncodeMessage(nil, m)
		back, _, err := transport.DecodeMessage(frame)
		if err != nil {
			t.Fatalf("%s: deframe: %v", c.typ, err)
		}
		if err := decodeCtl(back, c.out); err != nil {
			t.Fatalf("%s: decode: %v", c.typ, err)
		}
		if !reflect.DeepEqual(c.in, c.out) {
			t.Errorf("%s: round trip:\n in  %+v\n out %+v", c.typ, c.in, c.out)
		}
	}
}

func TestEdgeKey(t *testing.T) {
	e := Edge{From: "a", FromPort: 1, To: "b", ToInput: 2}
	if got := e.Key(); got != "a:1->b:2" {
		t.Fatalf("key = %q", got)
	}
	// PeerAddr must not affect routing identity.
	e.PeerAddr = "somewhere:1"
	if got := e.Key(); got != "a:1->b:2" {
		t.Fatalf("key with addr = %q", got)
	}
}
