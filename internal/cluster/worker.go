package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"streammine/internal/checkpoint"
	"streammine/internal/core"
	"streammine/internal/event"
	"streammine/internal/flightrec"
	"streammine/internal/graph"
	"streammine/internal/ingest"
	"streammine/internal/metrics"
	"streammine/internal/profiler"
	"streammine/internal/recovery"
	"streammine/internal/storage"
	"streammine/internal/topology"
	"streammine/internal/transport"
	"streammine/internal/wal"
)

// coordinatorPeer is the failure-detector key for the control link.
const coordinatorPeer = "coordinator"

// WorkerOptions configure a cluster worker.
type WorkerOptions struct {
	// Name uniquely identifies the worker to the coordinator. Required.
	Name string
	// CoordAddr is the coordinator's control-plane address. Required.
	CoordAddr string
	// DataAddr is the listen address for bridge traffic from peer workers
	// (default "127.0.0.1:0").
	DataAddr string
	// StateDir is the root of partition durable state; partition i lives
	// in StateDir/p<i>. It must be storage that survives worker crashes
	// and is reachable by every worker (the paper's stable storage), so a
	// reassigned partition finds its predecessor's decision log and
	// checkpoints. Required.
	StateDir string
	// HeartbeatInterval is the worker→coordinator heartbeat period and
	// the status-report cadence (default 100 ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence after which the coordinator is
	// considered unreachable — surfaced by Degraded, not fatal (default 1 s).
	HeartbeatTimeout time.Duration
	// Metrics optionally receives the cluster series.
	Metrics *metrics.Registry
	// Tracer, when set, records lifecycle spans for every partition engine
	// hosted by this worker, tagged with the worker's process label. Use
	// metrics.NewTracerProc(w, Name) so merged multi-worker traces keep
	// their origin, and Tracer.SetAutoFlush(true) so a SIGKILL loses at
	// most one torn line.
	Tracer *metrics.Tracer
	// ProfileSpeculation enables the speculation-waste profiler on every
	// partition engine this worker hosts. Cumulative waste summaries ride
	// the STATUS heartbeats to the coordinator, which merges them into
	// the cluster-wide rollup (/debug/cluster).
	ProfileSpeculation bool
	// OnSinkEvent, when set, observes every finalized event reaching a
	// sink hosted on this worker.
	OnSinkEvent func(sink string, ev event.Event)
	// Ingest, when its Addr is set, runs a network ingest gateway on this
	// worker. Sources marked "ingest" in the topology register with it
	// (stream name = source name) when their partition starts here. The
	// gateway's StateDir defaults to StateDir/ingest, so its admission
	// logs live on the same shared stable storage as partition state and
	// follow a partition across reassignment.
	Ingest ingest.Config
	// Logf optionally receives progress lines.
	Logf func(format string, args ...any)
}

// Worker joins a coordinator, runs assigned partitions as embedded
// engines, and bridges cross-partition edges to peer workers.
type Worker struct {
	opts WorkerOptions
	met  *clusterMetrics
	det  *transport.Detector

	coord   transport.Conn
	hb      *transport.Heartbeater
	dataSrv *transport.Server
	gw      *ingest.Server

	mu     sync.Mutex
	edges  map[string]transport.ConnHandler // edge key → partition input
	routes map[transport.Conn]transport.ConnHandler
	parts  map[int]*workerPart
	err    error
	closed bool

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// workerPart is one partition hosted by this worker.
type workerPart struct {
	id    int
	epoch int

	cfg     *topology.Config
	built   *topology.Built
	eng     *core.Engine
	pool    *storage.Pool
	cutOut  []Edge
	bridges map[string]*core.ReliableBridge

	running     bool
	sourcesLeft int
	ingestSrcs  int

	// Recovery anatomy instrumentation. recBuild* is the partition
	// rebuild window (ASSIGN → engine built); recRefill* is the bridge
	// re-attach / credit-window refill window in handleStart. The
	// *Marked flags make the flight-recorder phase-transition records
	// one-shot (the spans themselves ride every STATUS).
	recBuildStartNs  int64
	recBuildEndNs    int64
	recRefillStartNs int64
	recRefillEndNs   int64
	recReplayMarked  bool
}

// StartWorker connects to the coordinator and registers. Partitions
// arrive asynchronously; Done is closed when the coordinator sends STOP
// or the worker is closed.
func StartWorker(o WorkerOptions) (*Worker, error) {
	if o.Name == "" || o.CoordAddr == "" || o.StateDir == "" {
		return nil, fmt.Errorf("cluster: Name, CoordAddr and StateDir are required")
	}
	if o.DataAddr == "" {
		o.DataAddr = "127.0.0.1:0"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = time.Second
	}
	w := &Worker{
		opts:   o,
		met:    registerClusterMetrics(o.Metrics),
		edges:  make(map[string]transport.ConnHandler),
		routes: make(map[transport.Conn]transport.ConnHandler),
		parts:  make(map[int]*workerPart),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	w.det = transport.NewDetector(o.HeartbeatTimeout, nil)
	if o.Ingest.Addr != "" {
		icfg := o.Ingest
		if icfg.StateDir == "" {
			icfg.StateDir = filepath.Join(o.StateDir, "ingest")
		}
		if icfg.Registry == nil {
			icfg.Registry = o.Metrics
		}
		if icfg.Logf == nil {
			icfg.Logf = o.Logf
		}
		gw, err := ingest.Start(icfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: ingest gateway: %w", err)
		}
		w.gw = gw
		w.logf("ingest gateway on %s", gw.Addr())
	}
	dataSrv, err := transport.ListenConn(o.DataAddr, w.handleData)
	if err != nil {
		if w.gw != nil {
			_ = w.gw.Close()
		}
		return nil, err
	}
	w.dataSrv = dataSrv
	coord, err := transport.Dial(o.CoordAddr, w.handleCtl)
	if err != nil {
		_ = dataSrv.Close()
		if w.gw != nil {
			_ = w.gw.Close()
		}
		return nil, fmt.Errorf("cluster: join %s: %w", o.CoordAddr, err)
	}
	w.coord = coord
	w.det.Observe(coordinatorPeer)
	reg, err := encodeCtl(transport.MsgRegister, RegisterMsg{Name: o.Name, DataAddr: dataSrv.Addr()})
	if err == nil {
		err = coord.Send(reg)
	}
	if err != nil {
		_ = coord.Close()
		_ = dataSrv.Close()
		return nil, fmt.Errorf("cluster: register: %w", err)
	}
	w.hb = transport.NewHeartbeater(coord, o.HeartbeatInterval)
	w.wg.Add(1)
	go w.statusLoop()
	return w, nil
}

// DataAddr returns the bound bridge-traffic address.
func (w *Worker) DataAddr() string { return w.dataSrv.Addr() }

// Ingest returns the worker's ingest gateway, or nil when none is
// configured.
func (w *Worker) Ingest() *ingest.Server { return w.gw }

// Done is closed when the worker shuts down.
func (w *Worker) Done() <-chan struct{} { return w.done }

// Err returns the first fatal error, if any.
func (w *Worker) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Degraded lists the peers this worker depends on that are currently
// unreachable: the coordinator when its heartbeats stopped, and any
// cross-worker bridge without a live connection. Empty means healthy.
func (w *Worker) Degraded() []string {
	var down []string
	if !w.det.Alive(coordinatorPeer) {
		down = append(down, coordinatorPeer)
	}
	w.mu.Lock()
	for _, p := range w.parts {
		for key, b := range p.bridges {
			if !b.Connected() {
				down = append(down, "bridge "+key)
			}
		}
	}
	w.mu.Unlock()
	sort.Strings(down)
	return down
}

// Pressure returns flow-control snapshots for every running partition
// hosted by this worker, ordered by partition ID — the same data the
// STATUS reports carry to the coordinator.
func (w *Worker) Pressure() []PartitionPressure {
	w.mu.Lock()
	var out []PartitionPressure
	for id, p := range w.parts {
		if p.running {
			out = append(out, PartitionPressure{
				Partition: id, Worker: w.opts.Name, Nodes: p.eng.Pressure(),
			})
		}
	}
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Partition < out[j].Partition })
	return out
}

// Close tears the worker down: engines stop, bridges and listeners close.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	parts := make([]*workerPart, 0, len(w.parts))
	for _, p := range w.parts {
		parts = append(parts, p)
	}
	w.mu.Unlock()
	close(w.stop)
	w.hb.Stop()
	w.wg.Wait()
	for _, p := range parts {
		for _, b := range p.bridges {
			_ = b.Close()
		}
		if p.eng != nil {
			p.eng.Stop()
		}
		if p.pool != nil {
			_ = p.pool.Close()
		}
	}
	_ = w.coord.Close()
	if w.gw != nil {
		_ = w.gw.Close()
	}
	err := w.dataSrv.Close()
	select {
	case <-w.done:
	default:
		close(w.done)
	}
	return err
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// fail records a fatal worker error and reports it to the coordinator.
func (w *Worker) fail(partition, epoch int, err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.logf("partition %d failed: %v", partition, err)
	flightrec.Recordf(flightrec.KindLifecycle, "p%d epoch=%d failed: %v", partition, epoch, err)
	w.sendStatus(StatusMsg{
		Name: w.opts.Name, Partition: partition, Epoch: epoch,
		Phase: PhaseError, Err: err.Error(),
	})
}

func (w *Worker) sendStatus(st StatusMsg) {
	msg, err := encodeCtl(transport.MsgStatus, st)
	if err != nil {
		return
	}
	_ = w.coord.Send(msg)
}

// handleCtl dispatches coordinator control messages.
func (w *Worker) handleCtl(m transport.Message) {
	w.met.control(m.Type)
	w.det.Observe(coordinatorPeer)
	switch m.Type {
	case transport.MsgAssign:
		var am AssignMsg
		if err := decodeCtl(m, &am); err != nil {
			w.logf("bad ASSIGN: %v", err)
			return
		}
		w.handleAssign(am)
	case transport.MsgStart:
		var sm StartMsg
		if err := decodeCtl(m, &sm); err != nil {
			w.logf("bad START: %v", err)
			return
		}
		w.handleStart(sm)
	case transport.MsgStop:
		var stm StopMsg
		_ = decodeCtl(m, &stm)
		w.logf("stopping: %s", stm.Reason)
		flightrec.Recordf(flightrec.KindLifecycle, "stop: %s", stm.Reason)
		go w.Close()
	}
}

// handleAssign builds a new partition, or retargets an existing one's
// bridges when the coordinator re-sends an assignment after moving a
// downstream partition.
func (w *Worker) handleAssign(am AssignMsg) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if p := w.parts[am.Partition]; p != nil {
		if am.Epoch < p.epoch {
			w.mu.Unlock()
			return // stale
		}
		p.epoch = am.Epoch
		p.cutOut = am.CutOut
		type retgt struct {
			b    *core.ReliableBridge
			addr string
		}
		var rts []retgt
		for _, e := range am.CutOut {
			if b := p.bridges[e.Key()]; b != nil {
				rts = append(rts, retgt{b, e.PeerAddr})
			}
		}
		phase := PhaseReady
		if p.running {
			phase = PhaseRunning
		}
		st := w.partStatusLocked(p, phase)
		w.mu.Unlock()
		for _, r := range rts {
			w.logf("partition %d: retarget bridge → %s", am.Partition, r.addr)
			flightrec.Recordf(flightrec.KindLifecycle, "p%d retarget bridge → %s", am.Partition, r.addr)
			r.b.Retarget(r.addr)
		}
		w.sendStatus(st)
		return
	}
	w.mu.Unlock()

	p, err := w.buildPartition(am)
	if err != nil {
		w.fail(am.Partition, am.Epoch, err)
		return
	}
	w.mu.Lock()
	w.parts[am.Partition] = p
	for _, e := range am.CutIn {
		h, err := p.eng.BridgeIn(p.built.Names[e.To], e.ToInput)
		if err != nil {
			w.mu.Unlock()
			w.fail(am.Partition, am.Epoch, err)
			return
		}
		w.edges[e.Key()] = h
	}
	st := w.partStatusLocked(p, PhaseReady)
	w.mu.Unlock()
	w.logf("partition %d built: nodes %v", am.Partition, am.Nodes)
	w.sendStatus(st)
}

// buildPartition constructs the partition subgraph and its engine over
// the partition's durable state directory.
func (w *Worker) buildPartition(am AssignMsg) (*workerPart, error) {
	buildStart := time.Now().UnixNano()
	cfg, err := topology.Parse(am.Topology)
	if err != nil {
		return nil, err
	}
	built, err := cfg.BuildSubset(am.Nodes)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(w.opts.StateDir, fmt.Sprintf("p%d", am.Partition))
	segStore, err := wal.OpenSegmentStore(filepath.Join(dir, "wal"), 1<<20)
	if err != nil {
		return nil, err
	}
	ckpts, err := checkpoint.NewFileStore(filepath.Join(dir, "ckpt"))
	if err != nil {
		_ = segStore.Close()
		return nil, err
	}
	pool := storage.NewPool([]storage.Disk{segStore})
	// A crash (SIGKILL, power loss) can tear the predecessor's last log
	// append; the intact prefix is the stable log — the torn record never
	// acked, so its decision was not externalized.
	scan := func() ([]wal.Record, error) {
		recs, err := segStore.Scan()
		if err != nil && errors.Is(err, wal.ErrCorrupt) {
			w.logf("partition %d: decision log has a torn tail; recovering %d intact records", am.Partition, len(recs))
			return recs, nil
		}
		return recs, err
	}
	// No Metrics here: partition engines would collide on the registry's
	// fixed engine-series names; cluster-level series cover the runtime.
	// The tracer is shared: spans are self-describing (proc + node + trace
	// id), so every partition engine can write to the same stream. The
	// profiler is per partition: its summaries carry node names, so the
	// coordinator can merge them without collision.
	var prof *profiler.Profiler
	if w.opts.ProfileSpeculation {
		prof = profiler.New(profiler.Config{})
	}
	eng, err := core.New(built.Graph, core.Options{
		Pool:               pool,
		Seed:               cfg.Seed,
		CheckpointStore:    ckpts,
		LogScanner:         scan,
		RestoreFromStorage: true,
		Tracer:             w.opts.Tracer,
		Profiler:           prof,
		// Health sampling is per-node and registry-free, so it stays on
		// even though the partition engine runs unmetered: the summaries
		// ride STATUS to the coordinator's health model.
		Health: true,
	})
	if err != nil {
		_ = pool.Close()
		return nil, err
	}
	if tr := w.opts.Tracer; tr != nil {
		// The epoch span fences lineage reconstruction: spans a dead epoch
		// wrote after its successor's epoch record are attributable to the
		// stale incarnation and discarded by tracetool.
		tr.Record(fmt.Sprintf("p%d", am.Partition), "", metrics.PhaseEpoch,
			fmt.Sprintf("partition=%d epoch=%d worker=%s nodes=%d", am.Partition, am.Epoch, w.opts.Name, len(am.Nodes)))
	}
	flightrec.Recordf(flightrec.KindEpoch, "p%d epoch=%d nodes=%d built", am.Partition, am.Epoch, len(am.Nodes))
	p := &workerPart{
		id:      am.Partition,
		epoch:   am.Epoch,
		cfg:     cfg,
		built:   built,
		eng:     eng,
		pool:    pool,
		cutOut:  am.CutOut,
		bridges: make(map[string]*core.ReliableBridge),

		recBuildStartNs: buildStart,
		recBuildEndNs:   time.Now().UnixNano(),
	}
	recovery.RecordTransition(recovery.Span{
		Phase: recovery.PhaseRestore, Partition: p.id, Epoch: p.epoch,
		Worker: w.opts.Name, StartNs: p.recBuildStartNs, EndNs: p.recBuildEndNs,
	})
	if w.opts.OnSinkEvent != nil {
		for _, sinkID := range built.Sinks {
			name := nodeName(built, sinkID)
			fn := w.opts.OnSinkEvent
			if err := eng.Subscribe(sinkID, 0, func(ev event.Event, final bool) {
				if final {
					fn(name, ev)
				}
			}); err != nil {
				_ = pool.Close()
				return nil, err
			}
		}
	}
	return p, nil
}

// handleStart attaches the partition's outgoing bridges and runs it.
func (w *Worker) handleStart(sm StartMsg) {
	w.mu.Lock()
	p := w.parts[sm.Partition]
	if p == nil || p.running || w.closed {
		w.mu.Unlock()
		return
	}
	p.running = true
	cutOut := p.cutOut
	w.mu.Unlock()

	// Bridges must attach before Start: adding links to a running engine
	// races with its dispatchers. This window is the credit-window
	// refill phase: every cut edge's flow-control state is rebuilt here.
	refillStart := time.Now().UnixNano()
	for _, e := range cutOut {
		hello, err := encodeCtl(transport.MsgHello, HelloMsg{Edge: e})
		if err != nil {
			w.fail(p.id, p.epoch, err)
			return
		}
		b, err := w.dialBridge(p, e, hello)
		if err != nil {
			w.fail(p.id, p.epoch, fmt.Errorf("bridge %s: %w", e.Key(), err))
			return
		}
		w.mu.Lock()
		p.bridges[e.Key()] = b
		w.mu.Unlock()
	}
	w.mu.Lock()
	p.recRefillStartNs = refillStart
	p.recRefillEndNs = time.Now().UnixNano()
	refillSpan := recovery.Span{
		Phase: recovery.PhaseRefill, Partition: p.id, Epoch: p.epoch,
		Worker: w.opts.Name, StartNs: p.recRefillStartNs, EndNs: p.recRefillEndNs,
		Records: int64(len(cutOut)),
	}
	w.mu.Unlock()
	recovery.RecordTransition(refillSpan)
	ingestSrcs := 0
	for _, src := range p.built.Sources {
		if src.Ingest {
			ingestSrcs++
		}
	}
	if ingestSrcs > 0 && w.gw == nil {
		w.fail(p.id, p.epoch, fmt.Errorf("partition %d has ingest sources but this worker runs no ingest gateway", p.id))
		return
	}
	if err := p.eng.Start(); err != nil {
		w.fail(p.id, p.epoch, err)
		return
	}
	if rs := p.eng.RecoveryStats(); rs.RestoreStartNs != 0 {
		recovery.RecordTransition(recovery.Span{
			Phase: recovery.PhaseRestore, Partition: p.id, Epoch: p.epoch,
			Worker: w.opts.Name, StartNs: rs.RestoreStartNs, EndNs: rs.RestoreEndNs,
			Bytes: rs.CheckpointBytes, Records: rs.LogRecords, Drops: rs.CoveredSet,
		})
	}
	w.mu.Lock()
	p.sourcesLeft = len(p.built.Sources) - ingestSrcs
	p.ingestSrcs = ingestSrcs
	st := w.partStatusLocked(p, PhaseRunning)
	w.mu.Unlock()
	w.logf("partition %d running (%d sources)", p.id, len(p.built.Sources))
	flightrec.Recordf(flightrec.KindLifecycle, "p%d epoch=%d running sources=%d", p.id, p.epoch, len(p.built.Sources))
	w.sendStatus(st)
	for _, src := range p.built.Sources {
		if src.Ingest {
			// Hand the source to the gateway: the admission decision moves
			// ahead of the durable admission log (no shed is ever logged),
			// and any records logged by this partition's previous
			// incarnation are re-emitted with identical identities before
			// network batches are accepted.
			adm, _, err := p.eng.DetachSourceAdmission(src.ID)
			if err != nil {
				w.fail(p.id, p.epoch, err)
				return
			}
			h, err := p.eng.Source(src.ID)
			if err != nil {
				adm.Close()
				w.fail(p.id, p.epoch, err)
				return
			}
			if err := w.gw.RegisterSource(src.Name, h, adm); err != nil {
				adm.Close()
				w.fail(p.id, p.epoch, fmt.Errorf("register ingest source %q: %w", src.Name, err))
				return
			}
			w.logf("partition %d: ingest source %q accepting on %s", p.id, src.Name, w.gw.Addr())
			continue
		}
		w.wg.Add(1)
		go w.runSource(p, src)
	}
}

// dialBridge attaches a reliable bridge for one cut-out edge, retrying
// briefly: at initial start the peer is known-ready (the coordinator's
// start barrier), but after a reassignment the peer partition may still
// be registering its edges.
func (w *Worker) dialBridge(p *workerPart, e Edge, hello transport.Message) (*core.ReliableBridge, error) {
	opts := core.BridgeOptions{
		Hello:       &hello,
		OnReconnect: w.met.bridgeReconnected,
		RTT:         w.met.bridgeRTTHist(),
		// Credit-gate the cut edge with the receiving node's window; the
		// remote engine returns CREDIT frames as events leave its mailbox.
		CreditWindow: p.cfg.CreditWindowFor(e.To),
		// Batch the cut edge like an in-process edge: the receiving node's
		// limits size the EVENT_BATCH wire frames.
		Batch:       p.cfg.FlowFor(e.To).Batch(),
		BatchLinger: p.cfg.FlowFor(e.To).Linger(),
	}
	var (
		b   *core.ReliableBridge
		err error
	)
	for attempt := 0; attempt < 20; attempt++ {
		b, err = p.eng.BridgeOutReliableOpts(p.built.Names[e.From], e.FromPort, e.PeerAddr, opts)
		if err == nil {
			return b, nil
		}
		select {
		case <-w.stop:
			return nil, err
		case <-time.After(100 * time.Millisecond):
		}
	}
	return nil, err
}

// runSource publishes one source's events at its configured rate. Event
// identities and timestamps are pure functions of the sequence number, so
// a reassigned partition re-emits the identical stream and downstream
// dedup (paper §2.2) absorbs what was already processed.
func (w *Worker) runSource(p *workerPart, src topology.SourceSpec) {
	defer w.wg.Done()
	h, err := p.eng.Source(src.ID)
	if err != nil {
		w.fail(p.id, p.epoch, err)
		return
	}
	interval := time.Second / time.Duration(src.Rate)
	start := time.Now()
	for i := 1; i <= src.Count; i++ {
		if due := time.Until(start.Add(time.Duration(i) * interval)); due > 0 {
			select {
			case <-w.stop:
				return
			case <-time.After(due):
			}
		}
		if _, err := h.EmitAt(int64(i), uint64(i), nil); err != nil {
			if errors.Is(err, core.ErrShed) {
				// Dropped before admission: never logged, so the sequence
				// number stays burnt and re-emission after failover sheds
				// or delivers deterministically identical events.
				continue
			}
			w.fail(p.id, p.epoch, fmt.Errorf("source %q: %w", src.Name, err))
			return
		}
	}
	w.mu.Lock()
	p.sourcesLeft--
	w.mu.Unlock()
	w.logf("partition %d: source %q done (%d events)", p.id, src.Name, src.Count)
}

// partStatusLocked snapshots a partition's status. Caller holds mu.
func (w *Worker) partStatusLocked(p *workerPart, phase string) StatusMsg {
	st := StatusMsg{
		Name: w.opts.Name, Partition: p.id, Epoch: p.epoch, Phase: phase,
	}
	if p.running {
		st.Committed = p.eng.TotalStats().Committed
		st.Pressure = p.eng.Pressure()
		st.Waste = p.eng.Waste()
		st.Health = p.eng.Health()
		// Ingest-fed partitions are open-ended: producers may reconnect
		// at any time, so they never report quiesced and the run ends by
		// operator interrupt instead of completion detection.
		quiesced := p.sourcesLeft == 0 && p.ingestSrcs == 0 && p.eng.Quiesced()
		// A disconnected outgoing bridge means a peer still owes us a
		// replay request (or is mid-recovery); the run cannot be complete
		// until every cross-worker edge is live again.
		for _, b := range p.bridges {
			if !b.Connected() {
				quiesced = false
			}
		}
		st.Quiesced = quiesced
	}
	st.Recovery = w.recoverySpansLocked(p)
	return st
}

// recoverySpansLocked snapshots the partition's recovery phase spans for
// the STATUS piggyback: the rebuild and durable-restore windows (both
// PhaseRestore), the bridge refill window, and the replay window. The
// worker re-sends the full set on every heartbeat; the coordinator's
// aggregator replaces by span identity, so an open replay span's end
// time fills in once the plan drains. Caller holds mu.
func (w *Worker) recoverySpansLocked(p *workerPart) []recovery.Span {
	if p.recBuildStartNs == 0 {
		return nil
	}
	spans := make([]recovery.Span, 0, 4)
	spans = append(spans, recovery.Span{
		Phase: recovery.PhaseRestore, Partition: p.id, Epoch: p.epoch,
		Worker: w.opts.Name, StartNs: p.recBuildStartNs, EndNs: p.recBuildEndNs,
	})
	if !p.running {
		return spans
	}
	if p.recRefillStartNs != 0 {
		spans = append(spans, recovery.Span{
			Phase: recovery.PhaseRefill, Partition: p.id, Epoch: p.epoch,
			Worker: w.opts.Name, StartNs: p.recRefillStartNs, EndNs: p.recRefillEndNs,
			Records: int64(len(p.cutOut)),
		})
	}
	rs := p.eng.RecoveryStats()
	if rs.RestoreStartNs != 0 {
		spans = append(spans, recovery.Span{
			Phase: recovery.PhaseRestore, Partition: p.id, Epoch: p.epoch,
			Worker: w.opts.Name, StartNs: rs.RestoreStartNs, EndNs: rs.RestoreEndNs,
			Bytes: rs.CheckpointBytes, Records: rs.LogRecords,
		})
	}
	if rs.ReplayStartNs != 0 {
		spans = append(spans, recovery.Span{
			Phase: recovery.PhaseReplay, Partition: p.id, Epoch: p.epoch,
			Worker: w.opts.Name, StartNs: rs.ReplayStartNs, EndNs: rs.ReplayEndNs,
			Events: rs.ReplayEvents, Drops: rs.ReplayDrops,
		})
		if rs.ReplayEndNs != 0 && !p.recReplayMarked {
			p.recReplayMarked = true
			recovery.RecordTransition(spans[len(spans)-1])
		}
	}
	return spans
}

// Waste merges the speculation-waste summaries of every running partition
// hosted by this worker (the same summaries shipped to the coordinator),
// or nil when profiling is off or nothing runs yet.
func (w *Worker) Waste() *profiler.Summary {
	w.mu.Lock()
	var parts []*profiler.Summary
	for _, p := range w.parts {
		if !p.running {
			continue
		}
		if s := p.eng.Waste(); s != nil {
			parts = append(parts, s)
		}
	}
	w.mu.Unlock()
	if len(parts) == 0 {
		return nil
	}
	return profiler.Merge(0, parts...)
}

// statusLoop periodically reports every partition to the coordinator's
// completion detector.
func (w *Worker) statusLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		w.mu.Lock()
		var sts []StatusMsg
		for _, p := range w.parts {
			phase := PhaseReady
			if p.running {
				phase = PhaseRunning
			}
			sts = append(sts, w.partStatusLocked(p, phase))
		}
		w.mu.Unlock()
		for _, st := range sts {
			w.sendStatus(st)
		}
	}
}

// handleData routes worker-to-worker data connections: the first frame is
// a HELLO naming the edge; later frames go to that edge's engine input.
// A hello for an edge this worker doesn't (yet) host closes the
// connection, so the upstream bridge backs off and redials.
func (w *Worker) handleData(c transport.Conn, m transport.Message) {
	if m.Type == transport.MsgHello {
		w.met.control(m.Type)
		var hm HelloMsg
		if err := decodeCtl(m, &hm); err != nil {
			w.logf("bad HELLO: %v", err)
			_ = c.Close()
			return
		}
		w.mu.Lock()
		h, ok := w.edges[hm.Edge.Key()]
		if ok {
			w.routes[c] = h
		}
		w.mu.Unlock()
		if !ok {
			w.logf("no route for edge %s; closing", hm.Edge.Key())
			_ = c.Close()
		}
		return
	}
	w.mu.Lock()
	h := w.routes[c]
	w.mu.Unlock()
	if h != nil {
		h(c, m)
	}
}

// nodeName reverse-maps a node ID to its topology name.
func nodeName(b *topology.Built, id graph.NodeID) string {
	for name, nid := range b.Names {
		if nid == id {
			return name
		}
	}
	return fmt.Sprintf("node-%d", id)
}
