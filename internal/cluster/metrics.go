package cluster

import (
	"streammine/internal/metrics"
	"streammine/internal/transport"
)

// clusterMetrics bundles the cluster runtime's observability series.
// A nil *clusterMetrics disables instrumentation (all methods nil-check).
type clusterMetrics struct {
	workersAlive     *metrics.Gauge
	partitions       *metrics.Gauge
	reassignments    *metrics.Counter
	bridgeReconnects *metrics.Counter
	bridgeRTT        *metrics.HDR
	ctlReceived      map[transport.MsgType]*metrics.Counter
}

// registerClusterMetrics resolves the cluster series once; returns nil
// when no registry is configured.
func registerClusterMetrics(r *metrics.Registry) *clusterMetrics {
	if r == nil {
		return nil
	}
	m := &clusterMetrics{
		workersAlive: r.Gauge("cluster_workers_alive",
			"Workers currently registered and passing the failure detector."),
		partitions: r.Gauge("cluster_partitions",
			"Topology partitions under coordinator management."),
		reassignments: r.Counter("cluster_reassignments_total",
			"Partition reassignments triggered by worker failures."),
		bridgeReconnects: r.Counter("cluster_bridge_reconnects_total",
			"Cross-worker bridge reconnections (redials after link loss or retarget)."),
		bridgeRTT: r.HDR("cluster_bridge_rtt",
			"Bridge dial round-trip (connect + hello) per successful attempt — the network cost a cut edge adds."),
		ctlReceived: make(map[transport.MsgType]*metrics.Counter),
	}
	for _, t := range []transport.MsgType{
		transport.MsgHello, transport.MsgRegister, transport.MsgAssign,
		transport.MsgStart, transport.MsgStatus, transport.MsgStop,
	} {
		m.ctlReceived[t] = r.CounterWith("cluster_control_received_total",
			"Control-plane messages received, by type.",
			metrics.Labels{"type": t.String()})
	}
	return m
}

func (m *clusterMetrics) control(t transport.MsgType) {
	if m == nil {
		return
	}
	if c, ok := m.ctlReceived[t]; ok {
		c.Inc()
	}
}

func (m *clusterMetrics) setWorkersAlive(n int) {
	if m != nil {
		m.workersAlive.Set(int64(n))
	}
}

func (m *clusterMetrics) setPartitions(n int) {
	if m != nil {
		m.partitions.Set(int64(n))
	}
}

func (m *clusterMetrics) reassigned() {
	if m != nil {
		m.reassignments.Inc()
	}
}

func (m *clusterMetrics) bridgeReconnected() {
	if m != nil {
		m.bridgeReconnects.Inc()
	}
}

// bridgeRTTHist returns the bridge RTT histogram (nil when unmetered;
// HDR methods are nil-safe).
func (m *clusterMetrics) bridgeRTTHist() *metrics.HDR {
	if m == nil {
		return nil
	}
	return m.bridgeRTT
}
