package cluster

import (
	"streammine/internal/metrics"
	"streammine/internal/transport"
)

// clusterMetrics bundles the cluster runtime's observability series.
// A nil *clusterMetrics disables instrumentation (all methods nil-check).
type clusterMetrics struct {
	workersAlive     *metrics.Gauge
	partitions       *metrics.Gauge
	reassignments    *metrics.Counter
	bridgeReconnects *metrics.Counter
	bridgeRTT        *metrics.HDR
	ctlReceived      map[transport.MsgType]*metrics.Counter
}

// registerClusterMetrics resolves the cluster series once; returns nil
// when no registry is configured.
func registerClusterMetrics(r *metrics.Registry) *clusterMetrics {
	if r == nil {
		return nil
	}
	m := &clusterMetrics{
		workersAlive: r.Gauge("cluster_workers_alive",
			"Workers currently registered and passing the failure detector."),
		partitions: r.Gauge("cluster_partitions",
			"Topology partitions under coordinator management."),
		reassignments: r.Counter("cluster_reassignments_total",
			"Partition reassignments triggered by worker failures."),
		bridgeReconnects: r.Counter("cluster_bridge_reconnects_total",
			"Cross-worker bridge reconnections (redials after link loss or retarget)."),
		bridgeRTT: r.HDR("cluster_bridge_rtt",
			"Bridge dial round-trip (connect + hello) per successful attempt — the network cost a cut edge adds."),
		ctlReceived: make(map[transport.MsgType]*metrics.Counter),
	}
	for _, t := range []transport.MsgType{
		transport.MsgHello, transport.MsgRegister, transport.MsgAssign,
		transport.MsgStart, transport.MsgStatus, transport.MsgStop,
	} {
		m.ctlReceived[t] = r.CounterWith("cluster_control_received_total",
			"Control-plane messages received, by type.",
			metrics.Labels{"type": t.String()})
	}
	return m
}

func (m *clusterMetrics) control(t transport.MsgType) {
	if m == nil {
		return
	}
	if c, ok := m.ctlReceived[t]; ok {
		c.Inc()
	}
}

func (m *clusterMetrics) setWorkersAlive(n int) {
	if m != nil {
		m.workersAlive.Set(int64(n))
	}
}

func (m *clusterMetrics) setPartitions(n int) {
	if m != nil {
		m.partitions.Set(int64(n))
	}
}

func (m *clusterMetrics) reassigned() {
	if m != nil {
		m.reassignments.Inc()
	}
}

func (m *clusterMetrics) bridgeReconnected() {
	if m != nil {
		m.bridgeReconnects.Inc()
	}
}

// bridgeRTTHist returns the bridge RTT histogram (nil when unmetered;
// HDR methods are nil-safe).
func (m *clusterMetrics) bridgeRTTHist() *metrics.HDR {
	if m == nil {
		return nil
	}
	return m.bridgeRTT
}

// registerCoordWasteMetrics exports the cluster-wide speculation-waste
// rollup as func-backed series: each scrape merges the latest per-
// partition summaries (replaced per STATUS report, so totals never
// double-count). Registered only when the coordinator has a registry.
func registerCoordWasteMetrics(c *Coordinator, reg *metrics.Registry) {
	const abortedHelp = "Aborted attempts across the cluster, by cause (merged worker waste summaries)."
	const wastedHelp = "CPU nanoseconds wasted in aborted attempts across the cluster, by cause."
	for _, cause := range []string{"conflict", "revoke", "replace", "error"} {
		cause := cause
		reg.CounterFunc("cluster_waste_aborted_attempts_total", abortedHelp,
			metrics.Labels{"cause": cause},
			func() uint64 {
				var n uint64
				if s := c.Waste(); s != nil {
					for _, nw := range s.Nodes {
						n += nw.AbortedAttempts[cause]
					}
				}
				return n
			})
		reg.CounterFunc("cluster_waste_cpu_ns_total", wastedHelp,
			metrics.Labels{"cause": cause},
			func() uint64 {
				var ns int64
				if s := c.Waste(); s != nil {
					for _, nw := range s.Nodes {
						ns += nw.WastedCPUNs[cause]
					}
				}
				return uint64(ns)
			})
	}
	reg.CounterFunc("cluster_waste_reexecutions_total",
		"Re-executions dispatched after aborts across the cluster.", nil,
		func() uint64 {
			var n uint64
			if s := c.Waste(); s != nil {
				for _, nw := range s.Nodes {
					n += nw.Reexecutions
				}
			}
			return n
		})
	reg.CounterFunc("cluster_waste_revoked_outputs_total",
		"Outputs revoked because their producing task aborted, across the cluster.", nil,
		func() uint64 {
			var n uint64
			if s := c.Waste(); s != nil {
				for _, nw := range s.Nodes {
					n += nw.RevokedOutputs
				}
			}
			return n
		})
	reg.GaugeFunc("cluster_waste_cpu_pct",
		"Wasted CPU as a percentage of all attempt CPU across the cluster.", nil,
		func() float64 {
			if s := c.Waste(); s != nil {
				return s.WastePct()
			}
			return 0
		})
}
