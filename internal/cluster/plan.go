package cluster

import (
	"fmt"
	"sort"

	"streammine/internal/topology"
)

// Partition is one worker-sized share of the topology.
type Partition struct {
	ID    int
	Nodes []string
	// CutIn / CutOut are the partition's cross-partition edges (PeerAddr
	// unfilled; the coordinator resolves it per assignment).
	CutIn  []Edge
	CutOut []Edge
}

// BuildPlan splits the topology into partitions. Nodes pinned by the
// placement's assign map go to their partition; the rest are spread
// round-robin. The partition count is placement.workers when set,
// otherwise the number of available workers. Empty partitions are
// dropped (their IDs are kept, so partition IDs may be sparse only when
// the placement over-provisions).
func BuildPlan(cfg *topology.Config, availableWorkers int) ([]Partition, error) {
	// Validate the full topology once before slicing it.
	if _, err := cfg.Build(); err != nil {
		return nil, fmt.Errorf("cluster: invalid topology: %w", err)
	}
	nParts := availableWorkers
	var assign map[string]int
	if p := cfg.Placement; p != nil {
		if p.Workers > 0 {
			nParts = p.Workers
		}
		assign = p.Assign
	}
	if nParts < 1 {
		return nil, fmt.Errorf("cluster: no workers to place onto")
	}
	names := make(map[string]bool, len(cfg.Nodes))
	for _, nc := range cfg.Nodes {
		names[nc.Name] = true
	}
	for name, part := range assign {
		if !names[name] {
			return nil, fmt.Errorf("cluster: placement assigns unknown node %q", name)
		}
		if part < 0 || part >= nParts {
			return nil, fmt.Errorf("cluster: node %q assigned to partition %d (have %d)", name, part, nParts)
		}
	}

	// Pin assigned nodes, round-robin the rest in topology order.
	partOf := make(map[string]int, len(cfg.Nodes))
	next := 0
	for _, nc := range cfg.Nodes {
		if p, ok := assign[nc.Name]; ok {
			partOf[nc.Name] = p
			continue
		}
		partOf[nc.Name] = next % nParts
		next++
	}

	parts := make([]Partition, nParts)
	for i := range parts {
		parts[i].ID = i
	}
	for _, nc := range cfg.Nodes {
		p := partOf[nc.Name]
		parts[p].Nodes = append(parts[p].Nodes, nc.Name)
	}
	// Cut edges: every input whose upstream lives in another partition.
	for _, nc := range cfg.Nodes {
		to := partOf[nc.Name]
		for input, ref := range nc.Inputs {
			upName, port := topology.SplitRef(ref)
			from, ok := partOf[upName]
			if !ok {
				return nil, fmt.Errorf("cluster: node %q: unknown input %q", nc.Name, upName)
			}
			if from == to {
				continue
			}
			e := Edge{From: upName, FromPort: port, To: nc.Name, ToInput: input}
			parts[from].CutOut = append(parts[from].CutOut, e)
			parts[to].CutIn = append(parts[to].CutIn, e)
		}
	}
	// Drop empty partitions (more workers than nodes).
	var out []Partition
	for _, p := range parts {
		if len(p.Nodes) > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
