// Package cluster is the coordinator/worker runtime that deploys one
// JSON topology across processes. The coordinator partitions the graph
// per the topology's placement section (or round-robin over registered
// workers), ships each partition to a worker over a small control-plane
// protocol, and wires cross-partition edges with reliable TCP bridges.
// Worker liveness is heartbeat-monitored; when a worker dies, its
// partitions are reassigned to survivors and restored from their durable
// state (decision log + checkpoints), with upstream bridges retargeted
// and replayed — the paper's precise-recovery protocol (§2.2) applied at
// deployment scale.
//
// Control messages ride the existing transport framing as JSON payloads:
//
//	REGISTER  worker → coordinator   name + data address
//	ASSIGN    coordinator → worker   partition definition (or retarget)
//	STATUS    worker → coordinator   phase, committed count, quiescence
//	START     coordinator → worker   begin running a partition
//	STOP      coordinator → worker   tear down
//	HELLO     worker → worker        routes a data connection to an edge
package cluster

import (
	"encoding/json"
	"fmt"

	"streammine/internal/core"
	"streammine/internal/profiler"
	"streammine/internal/recovery"
	"streammine/internal/transport"
)

// Edge names one cross-partition edge in global (node-name) terms.
type Edge struct {
	From     string `json:"from"`
	FromPort int    `json:"fromPort"`
	To       string `json:"to"`
	ToInput  int    `json:"toInput"`
	// PeerAddr is the data address of the worker hosting the downstream
	// end; the coordinator fills it in ASSIGN cut-out lists.
	PeerAddr string `json:"peerAddr,omitempty"`
}

// Key is the edge's routing identity on a worker's data listener.
func (e Edge) Key() string {
	return fmt.Sprintf("%s:%d->%s:%d", e.From, e.FromPort, e.To, e.ToInput)
}

// RegisterMsg announces a worker to the coordinator.
type RegisterMsg struct {
	Name string `json:"name"`
	// DataAddr is where the worker accepts bridge connections.
	DataAddr string `json:"dataAddr"`
}

// AssignMsg hands a partition to a worker. Re-sending an assignment the
// worker already runs (same partition, higher epoch) retargets its
// cut-out bridges to the new PeerAddrs instead of rebuilding.
type AssignMsg struct {
	Partition int `json:"partition"`
	// Epoch increments on every (re)assignment round, so a worker can
	// discard stale assignments.
	Epoch int `json:"epoch"`
	// Topology is the full topology JSON; the worker builds its subgraph
	// from it (BuildSubset keeps global operator identities stable).
	Topology json.RawMessage `json:"topology"`
	// Nodes lists the node names in this partition.
	Nodes []string `json:"nodes"`
	// CutIn are edges entering the partition (bridge-fed inputs).
	CutIn []Edge `json:"cutIn,omitempty"`
	// CutOut are edges leaving the partition; PeerAddr points at the
	// worker currently hosting each downstream node.
	CutOut []Edge `json:"cutOut,omitempty"`
}

// StartMsg tells a worker to run an assigned partition.
type StartMsg struct {
	Partition int `json:"partition"`
}

// Worker phases reported in StatusMsg.
const (
	PhaseReady   = "ready"   // partition built, bridges not yet attached
	PhaseRunning = "running" // engine started, sources publishing
	PhaseError   = "error"   // partition failed; Err has details
)

// StatusMsg reports one partition's state to the coordinator.
type StatusMsg struct {
	Name      string `json:"name"`
	Partition int    `json:"partition"`
	Epoch     int    `json:"epoch"`
	Phase     string `json:"phase"`
	// Committed is the partition engine's total committed-task count;
	// the coordinator's completion detector watches it for stability.
	Committed uint64 `json:"committed"`
	// Quiesced is true when the partition's sources have finished
	// publishing and the engine is idle.
	Quiesced bool   `json:"quiesced"`
	Err      string `json:"err,omitempty"`
	// Pressure snapshots per-node flow-control state (queue depth,
	// credit accounting, speculation throttle, admission counters) for
	// every node of the partition, in node order. Empty when the
	// partition is not running.
	Pressure []core.NodePressure `json:"pressure,omitempty"`
	// Waste is the partition's cumulative speculation-waste summary
	// (per-operator ledgers plus conflict heatmap), attached when the
	// worker profiles speculation. The coordinator replaces its cached
	// copy per report and merges across partitions.
	Waste *profiler.Summary `json:"waste,omitempty"`
	// Health carries per-node commit counts and finalize-latency quantiles
	// for the coordinator's live health model (SLO budget attribution,
	// straggler detection). Cumulative; the coordinator replaces its cached
	// copy per report. Empty when the partition is not running.
	Health []core.NodeHealth `json:"health,omitempty"`
	// Recovery carries the partition's recovery phase spans (rebuild,
	// durable restore, credit refill, replay) for the coordinator's
	// anatomy profiler. Cumulative — the full span set rides every
	// report and the aggregator replaces by span identity.
	Recovery []recovery.Span `json:"recovery,omitempty"`
}

// StopMsg tears a worker down.
type StopMsg struct {
	Reason string `json:"reason,omitempty"`
}

// HelloMsg is the first frame on a worker-to-worker data connection; it
// routes the connection to the edge it carries.
type HelloMsg struct {
	Edge Edge `json:"edge"`
}

// encodeCtl wraps v as the payload of a control message.
func encodeCtl(t transport.MsgType, v any) (transport.Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return transport.Message{}, fmt.Errorf("cluster: encode %s: %w", t, err)
	}
	return transport.Message{Type: t, Payload: data}, nil
}

// decodeCtl unwraps a control message's payload into v.
func decodeCtl(m transport.Message, v any) error {
	if err := json.Unmarshal(m.Payload, v); err != nil {
		return fmt.Errorf("cluster: decode %s: %w", m.Type, err)
	}
	return nil
}
