package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/health"
	"streammine/internal/metrics"
	"streammine/internal/profiler"
	"streammine/internal/recovery"
	"streammine/internal/topology"
	"streammine/internal/transport"
)

// CoordinatorOptions configure a Coordinator.
type CoordinatorOptions struct {
	// Addr is the control-plane listen address (e.g. "127.0.0.1:0").
	Addr string
	// Workers is how many workers must register before the topology is
	// deployed. Defaults to the placement's workers count, else 1.
	Workers int
	// HeartbeatInterval is the coordinator→worker heartbeat period and
	// the failure-sweep cadence (default 100 ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence after which a worker is declared
	// dead (default 1 s).
	HeartbeatTimeout time.Duration
	// StableSweeps is how many consecutive sweeps must observe every
	// partition quiesced with an unchanged global commit count before
	// the run is declared complete (default 3).
	StableSweeps int
	// SLO is the declared end-to-end p99 latency target for health budget
	// attribution. Overrides the topology's sloP99Millis; 0 keeps the
	// topology's declaration (or none).
	SLO time.Duration
	// Metrics optionally receives the cluster series.
	Metrics *metrics.Registry
	// Logf optionally receives progress lines.
	Logf func(format string, args ...any)
}

// Coordinator deploys one topology over registered workers and supervises
// it: assignment, start, failure detection, reassignment, completion.
type Coordinator struct {
	cfg     *topology.Config
	raw     []byte
	opts    CoordinatorOptions
	srv     *transport.Server
	det     *transport.Detector
	met     *clusterMetrics
	healthM *health.Model
	recAgg  *recovery.Aggregator

	mu       sync.Mutex
	conns    map[transport.Conn]string // control conn → worker name
	workers  map[string]*coordWorker
	order    []string // registration order
	parts    map[int]*coordPart
	partOf   map[string]int // node name → partition ID
	epoch    int
	deployed bool
	launched bool
	finished bool
	err      error

	stableFor     int
	lastCommitted uint64

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// coordWorker is the coordinator's view of one registered worker.
type coordWorker struct {
	name     string
	dataAddr string
	conn     transport.Conn
	hb       *transport.Heartbeater
}

// coordPart tracks one partition's assignment state.
type coordPart struct {
	plan      Partition
	worker    string
	epoch     int
	phase     string
	started   bool
	committed uint64
	quiesced  bool
	pressure  []core.NodePressure
	// waste is the partition's latest cumulative waste summary; each
	// STATUS report replaces it (summaries are running totals, so adding
	// them would double-count).
	waste *profiler.Summary

	// Recovery catch-up tracking. rate is an EWMA of the partition's
	// commit rate (events/sec) across STATUS reports; r0 snapshots it
	// at the moment the hosting worker was declared dead. After a
	// reassignment catchPending is set and the catch-up phase runs from
	// the first post-takeover commit (catchStartNs) until the rate is
	// back to half of r0 or the partition quiesces.
	rate         float64
	lastStatus   time.Time
	r0           float64
	catchStartNs int64
	catchPending bool
}

// NewCoordinator parses the topology and starts listening for workers.
// Deployment begins once enough workers register; Done is closed when
// every partition has quiesced and been stopped (or a fatal error hit).
func NewCoordinator(topoJSON []byte, o CoordinatorOptions) (*Coordinator, error) {
	cfg, err := topology.Parse(topoJSON)
	if err != nil {
		return nil, err
	}
	if o.Workers <= 0 {
		if cfg.Placement != nil && cfg.Placement.Workers > 0 {
			o.Workers = cfg.Placement.Workers
		} else {
			o.Workers = 1
		}
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = time.Second
	}
	if o.StableSweeps <= 0 {
		o.StableSweeps = 3
	}
	c := &Coordinator{
		cfg:     cfg,
		raw:     topoJSON,
		opts:    o,
		met:     registerClusterMetrics(o.Metrics),
		conns:   make(map[transport.Conn]string),
		workers: make(map[string]*coordWorker),
		parts:   make(map[int]*coordPart),
		partOf:  make(map[string]int),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.healthM = health.New(cfg, health.Options{
		SLO:               o.SLO,
		HeartbeatInterval: o.HeartbeatInterval,
	})
	c.recAgg = recovery.NewAggregator()
	if o.Metrics != nil {
		registerCoordWasteMetrics(c, o.Metrics)
		health.RegisterMetrics(c.healthM, o.Metrics)
		recovery.RegisterMetrics(c.recAgg, o.Metrics)
	}
	c.det = transport.NewDetector(o.HeartbeatTimeout, nil)
	srv, err := transport.ListenConn(o.Addr, c.handle)
	if err != nil {
		return nil, err
	}
	c.srv = srv
	c.wg.Add(1)
	go c.sweep()
	return c, nil
}

// Addr returns the bound control-plane address workers join.
func (c *Coordinator) Addr() string { return c.srv.Addr() }

// Done is closed when the deployment completes or fails; check Err.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the fatal deployment error, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Wait blocks until the deployment completes or fails.
func (c *Coordinator) Wait() error {
	<-c.done
	return c.Err()
}

// PartitionPressure is one partition's last-reported flow-control state.
type PartitionPressure struct {
	Partition int                 `json:"partition"`
	Worker    string              `json:"worker"`
	Nodes     []core.NodePressure `json:"nodes"`
}

// Pressure returns the latest per-partition flow-control snapshots folded
// from worker STATUS reports, ordered by partition ID. Partitions that
// have not reported pressure yet are omitted.
func (c *Coordinator) Pressure() []PartitionPressure {
	c.mu.Lock()
	var out []PartitionPressure
	for id, cp := range c.parts {
		if cp.pressure != nil {
			out = append(out, PartitionPressure{Partition: id, Worker: cp.worker, Nodes: cp.pressure})
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Partition < out[j].Partition })
	return out
}

// Waste merges the latest per-partition speculation-waste summaries from
// worker STATUS reports into the cluster-wide rollup, or nil when no
// partition has reported one (profiling off or nothing running yet).
func (c *Coordinator) Waste() *profiler.Summary {
	c.mu.Lock()
	var parts []*profiler.Summary
	for _, cp := range c.parts {
		if cp.waste != nil {
			parts = append(parts, cp.waste)
		}
	}
	c.mu.Unlock()
	if len(parts) == 0 {
		return nil
	}
	return profiler.Merge(0, parts...)
}

// PartitionStatus is one partition's last-reported deployment state.
type PartitionStatus struct {
	Partition int    `json:"partition"`
	Worker    string `json:"worker"`
	Epoch     int    `json:"epoch"`
	Phase     string `json:"phase"`
	Committed uint64 `json:"committed"`
	Quiesced  bool   `json:"quiesced"`
}

// ClusterView is the /debug/cluster JSON body: membership, per-partition
// deployment state, flow pressure, and the merged waste rollup.
type ClusterView struct {
	Workers    []string            `json:"workers"`
	Partitions []PartitionStatus   `json:"partitions"`
	Pressure   []PartitionPressure `json:"pressure,omitempty"`
	Waste      *profiler.Summary   `json:"waste,omitempty"`
}

// View snapshots the coordinator's cluster-wide state for /debug/cluster.
func (c *Coordinator) View() ClusterView {
	var v ClusterView
	c.mu.Lock()
	for name := range c.workers {
		v.Workers = append(v.Workers, name)
	}
	for id, cp := range c.parts {
		v.Partitions = append(v.Partitions, PartitionStatus{
			Partition: id, Worker: cp.worker, Epoch: cp.epoch,
			Phase: cp.phase, Committed: cp.committed, Quiesced: cp.quiesced,
		})
	}
	c.mu.Unlock()
	sort.Strings(v.Workers)
	sort.Slice(v.Partitions, func(i, j int) bool {
		return v.Partitions[i].Partition < v.Partitions[j].Partition
	})
	v.Pressure = c.Pressure()
	v.Waste = c.Waste()
	return v
}

// Close tears the coordinator down (workers are stopped first if the run
// is still live).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	already := c.finished
	c.finished = true
	var sends []transport.Conn
	if !already {
		for _, w := range c.workers {
			sends = append(sends, w.conn)
		}
	}
	c.mu.Unlock()
	if !already {
		c.broadcastStop(sends, "coordinator closing")
	}
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
	err := c.srv.Close()
	c.mu.Lock()
	for _, w := range c.workers {
		w.hb.Stop()
	}
	c.mu.Unlock()
	c.finish(nil)
	return err
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// fail records the first fatal error and completes the run.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.finish(err)
}

// finish closes done exactly once.
func (c *Coordinator) finish(error) {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// handle is the control-plane connection handler.
func (c *Coordinator) handle(conn transport.Conn, m transport.Message) {
	c.met.control(m.Type)
	c.mu.Lock()
	if name, ok := c.conns[conn]; ok {
		c.det.Observe(name)
	}
	c.mu.Unlock()
	switch m.Type {
	case transport.MsgRegister:
		var reg RegisterMsg
		if err := decodeCtl(m, &reg); err != nil {
			c.logf("bad REGISTER: %v", err)
			return
		}
		c.register(conn, reg)
	case transport.MsgStatus:
		var st StatusMsg
		if err := decodeCtl(m, &st); err != nil {
			c.logf("bad STATUS: %v", err)
			return
		}
		c.status(st)
	}
}

// register admits a worker and deploys once enough have joined.
func (c *Coordinator) register(conn transport.Conn, reg RegisterMsg) {
	c.mu.Lock()
	if _, dup := c.workers[reg.Name]; dup || reg.Name == "" {
		c.mu.Unlock()
		c.logf("rejecting register %q (duplicate or empty name)", reg.Name)
		return
	}
	w := &coordWorker{
		name:     reg.Name,
		dataAddr: reg.DataAddr,
		conn:     conn,
		hb:       transport.NewHeartbeater(conn, c.opts.HeartbeatInterval),
	}
	c.workers[reg.Name] = w
	c.conns[conn] = reg.Name
	c.order = append(c.order, reg.Name)
	c.det.Observe(reg.Name)
	n := len(c.workers)
	needDeploy := !c.deployed && n >= c.opts.Workers
	if needDeploy {
		c.deployed = true
	}
	c.mu.Unlock()
	c.logf("worker %q registered (data %s), %d/%d", reg.Name, reg.DataAddr, n, c.opts.Workers)
	if needDeploy {
		if err := c.deploy(); err != nil {
			c.fail(err)
		}
	}
}

// deploy builds the plan and assigns partitions round-robin over the
// registered workers.
func (c *Coordinator) deploy() error {
	c.mu.Lock()
	avail := len(c.order)
	c.mu.Unlock()
	parts, err := BuildPlan(c.cfg, avail)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.epoch = 1
	for i, p := range parts {
		c.parts[p.ID] = &coordPart{plan: p, worker: c.order[i%len(c.order)], epoch: c.epoch}
		for _, n := range p.Nodes {
			c.partOf[n] = p.ID
		}
	}
	c.met.setPartitions(len(c.parts))
	type send struct {
		conn transport.Conn
		msg  transport.Message
	}
	var sends []send
	for _, cp := range c.parts {
		msg, err := c.assignMsgLocked(cp)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		sends = append(sends, send{c.workers[cp.worker].conn, msg})
		c.logf("partition %d (%v) → worker %q", cp.plan.ID, cp.plan.Nodes, cp.worker)
	}
	c.mu.Unlock()
	for _, s := range sends {
		if err := s.conn.Send(s.msg); err != nil {
			return fmt.Errorf("cluster: assign: %w", err)
		}
	}
	return nil
}

// assignMsgLocked encodes a partition assignment with cut-out peer
// addresses resolved against the current partition→worker map. Caller
// holds mu.
func (c *Coordinator) assignMsgLocked(cp *coordPart) (transport.Message, error) {
	am := AssignMsg{
		Partition: cp.plan.ID,
		Epoch:     cp.epoch,
		Topology:  c.raw,
		Nodes:     cp.plan.Nodes,
		CutIn:     cp.plan.CutIn,
	}
	for _, e := range cp.plan.CutOut {
		downPart, ok := c.partOf[e.To]
		if !ok {
			return transport.Message{}, fmt.Errorf("cluster: edge %s: unplaced node %q", e.Key(), e.To)
		}
		host := c.parts[downPart].worker
		w := c.workers[host]
		if w == nil {
			return transport.Message{}, fmt.Errorf("cluster: edge %s: worker %q gone", e.Key(), host)
		}
		e.PeerAddr = w.dataAddr
		am.CutOut = append(am.CutOut, e)
	}
	return encodeCtl(transport.MsgAssign, am)
}

// status folds a worker's partition report into coordinator state and
// advances the start barrier.
func (c *Coordinator) status(st StatusMsg) {
	if st.Phase == PhaseError {
		c.fail(fmt.Errorf("cluster: partition %d on %q: %s", st.Partition, st.Name, st.Err))
		return
	}
	c.mu.Lock()
	cp := c.parts[st.Partition]
	if cp == nil || st.Epoch < cp.epoch || cp.worker != st.Name {
		c.mu.Unlock()
		return // stale report from a previous epoch or evicted worker
	}
	now := time.Now()
	if st.Phase == PhaseRunning {
		// Commit-rate EWMA across reports; skipped on the first report
		// of a new incarnation (the fresh engine's count restarts).
		if !cp.lastStatus.IsZero() && st.Committed >= cp.committed {
			if dt := now.Sub(cp.lastStatus).Seconds(); dt > 0 {
				inst := float64(st.Committed-cp.committed) / dt
				cp.rate = 0.5*cp.rate + 0.5*inst
			}
		}
		cp.lastStatus = now
	}
	cp.phase = st.Phase
	cp.committed = st.Committed
	cp.quiesced = st.Quiesced
	if st.Pressure != nil {
		cp.pressure = st.Pressure
	}
	if st.Waste != nil {
		cp.waste = st.Waste
	}
	var catchSpans []recovery.Span
	if cp.catchPending && st.Phase == PhaseRunning {
		// Catch-up runs from the first post-takeover commit until the
		// commit rate is back to half the pre-fault rate (the same
		// threshold the campaign's black-box recovery clock uses) or
		// the partition quiesces outright. When the fault hit before
		// the rate EWMA ever sampled (r0 == 0), any restored positive
		// rate counts as caught up. Arming and closing never share a
		// fold, so the span always has a measurable duration.
		if cp.catchStartNs == 0 && (st.Committed > 0 || st.Quiesced) {
			cp.catchStartNs = now.UnixNano()
		} else if cp.catchStartNs != 0 &&
			(st.Quiesced || (cp.r0 > 0 && cp.rate >= 0.5*cp.r0) || (cp.r0 <= 0 && cp.rate > 0)) {
			cp.catchPending = false
			catchSpans = append(catchSpans, recovery.Span{
				Phase: recovery.PhaseCatchup, Partition: st.Partition,
				Epoch: cp.epoch, Worker: cp.worker,
				StartNs: cp.catchStartNs, EndNs: now.UnixNano(),
				Events: int64(st.Committed),
			})
		}
	}
	type send struct {
		conn transport.Conn
		msg  transport.Message
	}
	var sends []send
	if st.Phase == PhaseReady && !cp.started {
		if c.launched {
			// Reassignment path: start the rebuilt partition right away.
			if msg, err := encodeCtl(transport.MsgStart, StartMsg{Partition: cp.plan.ID}); err == nil {
				cp.started = true
				sends = append(sends, send{c.workers[cp.worker].conn, msg})
			}
		} else {
			// Initial barrier: start everything once every partition is
			// built (so every data listener can route every edge).
			allReady := true
			for _, p := range c.parts {
				if p.phase != PhaseReady {
					allReady = false
					break
				}
			}
			if allReady {
				c.launched = true
				for _, p := range c.parts {
					msg, err := encodeCtl(transport.MsgStart, StartMsg{Partition: p.plan.ID})
					if err != nil {
						continue
					}
					p.started = true
					sends = append(sends, send{c.workers[p.worker].conn, msg})
				}
			}
		}
	}
	c.mu.Unlock()
	// The report passed stale-epoch rejection above, so it reflects the
	// partition's current incarnation: fold it into the health model
	// and its recovery spans into the anatomy aggregator.
	c.healthM.Fold(st.Name, st.Partition, st.Health, st.Pressure, time.Now())
	if len(st.Recovery) > 0 {
		c.recAgg.Fold(st.Recovery)
	}
	if len(catchSpans) > 0 {
		c.recAgg.Fold(catchSpans)
		for _, s := range catchSpans {
			recovery.RecordTransition(s)
			c.logf("partition %d caught up (epoch %d): commit rate restored", s.Partition, s.Epoch)
		}
	}
	for _, s := range sends {
		_ = s.conn.Send(s.msg)
	}
}

// Health snapshots the coordinator's live health view (/debug/health),
// with the most recent recovery incident's digest embedded so one poll
// answers "what happened last".
func (c *Coordinator) Health() *health.View {
	v := c.healthM.Snapshot()
	if v != nil {
		v.LastRecovery = c.recAgg.Last()
	}
	return v
}

// RecoveryReport returns the stitched per-incident recovery anatomy
// (served at /debug/recovery).
func (c *Coordinator) RecoveryReport() recovery.Report {
	return c.recAgg.Report()
}

// sweep is the supervision loop: failure detection, reassignment, alive
// gauges, and completion detection.
func (c *Coordinator) sweep() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		for _, name := range c.det.Check() {
			c.workerDown(name)
		}
		c.mu.Lock()
		alive := 0
		for name := range c.workers {
			if c.det.Alive(name) {
				alive++
			}
		}
		c.mu.Unlock()
		c.met.setWorkersAlive(alive)
		c.checkComplete()
	}
}

// checkComplete closes the run once every partition is quiesced and the
// global commit count has been stable for StableSweeps sweeps.
func (c *Coordinator) checkComplete() {
	c.mu.Lock()
	if !c.launched || c.finished || len(c.parts) == 0 {
		c.mu.Unlock()
		return
	}
	var sum uint64
	settled := true
	for _, p := range c.parts {
		if p.phase != PhaseRunning || !p.quiesced {
			settled = false
			break
		}
		sum += p.committed
	}
	if !settled || sum != c.lastCommitted {
		c.stableFor = 0
		c.lastCommitted = sum
		c.mu.Unlock()
		return
	}
	c.stableFor++
	if c.stableFor < c.opts.StableSweeps {
		c.mu.Unlock()
		return
	}
	c.finished = true
	var conns []transport.Conn
	for _, w := range c.workers {
		conns = append(conns, w.conn)
	}
	c.mu.Unlock()
	c.logf("run complete: %d events committed across %d partitions", sum, len(c.parts))
	c.broadcastStop(conns, "run complete")
	c.finish(nil)
}

// broadcastStop sends STOP to the given workers.
func (c *Coordinator) broadcastStop(conns []transport.Conn, reason string) {
	msg, err := encodeCtl(transport.MsgStop, StopMsg{Reason: reason})
	if err != nil {
		return
	}
	for _, conn := range conns {
		_ = conn.Send(msg)
	}
}

// workerDown evicts a dead worker and reassigns its partitions to the
// least-loaded survivors; workers with bridges into a moved partition
// get a refreshed assignment so they retarget (paper §2.2: downstream
// failure triggers upstream replay — here via bridge reconnect).
func (c *Coordinator) workerDown(name string) {
	// Anchor the detect phase before any mutation: last heartbeat →
	// this declaration is the detection window.
	declared := time.Now()
	lastSeen, haveSeen := c.det.LastSeen(name)
	if !haveSeen || lastSeen.After(declared) {
		lastSeen = declared
	}
	c.mu.Lock()
	w := c.workers[name]
	if w == nil || c.finished {
		c.mu.Unlock()
		return
	}
	delete(c.workers, name)
	delete(c.conns, w.conn)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	if len(c.workers) == 0 {
		c.mu.Unlock()
		w.hb.Stop()
		_ = w.conn.Close()
		c.fail(errors.New("cluster: all workers lost"))
		return
	}
	c.logf("worker %q lost; reassigning its partitions", name)
	c.healthM.RemoveWorker(name)

	load := make(map[string]int, len(c.workers))
	for _, p := range c.parts {
		if p.worker != name {
			load[p.worker]++
		}
	}
	c.epoch++
	// The rebuilt partition must re-earn completion stability from scratch.
	c.stableFor = 0
	moved := map[int]bool{}
	for id, p := range c.parts {
		if p.worker != name {
			continue
		}
		best := ""
		for _, cand := range c.order {
			if best == "" || load[cand] < load[best] {
				best = cand
			}
		}
		load[best]++
		p.worker = best
		p.epoch = c.epoch
		p.phase = ""
		p.started = false
		p.quiesced = false
		// Arm catch-up tracking: the pre-fault commit rate is the bar
		// the rebuilt partition must climb back to.
		p.r0 = p.rate
		p.rate = 0
		p.lastStatus = time.Time{}
		p.catchStartNs = 0
		p.catchPending = true
		moved[id] = true
		c.met.reassigned()
		c.logf("partition %d → worker %q (epoch %d)", id, best, c.epoch)
	}
	// Refresh assignments of partitions bridging into a moved one.
	refresh := map[int]bool{}
	for id, p := range c.parts {
		if moved[id] {
			continue
		}
		for _, e := range p.plan.CutOut {
			if moved[c.partOf[e.To]] {
				refresh[id] = true
				break
			}
		}
	}
	type send struct {
		conn transport.Conn
		msg  transport.Message
	}
	var sends []send
	for id := range moved {
		p := c.parts[id]
		msg, err := c.assignMsgLocked(p)
		if err != nil {
			c.mu.Unlock()
			c.fail(err)
			return
		}
		sends = append(sends, send{c.workers[p.worker].conn, msg})
	}
	for id := range refresh {
		p := c.parts[id]
		p.epoch = c.epoch
		msg, err := c.assignMsgLocked(p)
		if err != nil {
			c.mu.Unlock()
			c.fail(err)
			return
		}
		sends = append(sends, send{c.workers[p.worker].conn, msg})
	}
	newEpoch := c.epoch
	movedIDs := make([]int, 0, len(moved))
	for id := range moved {
		movedIDs = append(movedIDs, id)
	}
	sort.Ints(movedIDs)
	c.mu.Unlock()
	w.hb.Stop()
	_ = w.conn.Close()
	for _, s := range sends {
		_ = s.conn.Send(s.msg)
	}
	// Open the incident: the detect span covers last heartbeat →
	// declared, the decide span covers declared → ASSIGN fan-out sent
	// (epoch bump, plan diff, reassignment included).
	detSpan := recovery.Span{
		Phase: recovery.PhaseDetect, Partition: -1, Epoch: newEpoch,
		Worker: name, StartNs: lastSeen.UnixNano(), EndNs: declared.UnixNano(),
	}
	decSpan := recovery.Span{
		Phase: recovery.PhaseDecide, Partition: -1, Epoch: newEpoch,
		Worker: name, StartNs: declared.UnixNano(), EndNs: time.Now().UnixNano(),
		Records: int64(len(movedIDs)),
	}
	c.recAgg.Begin(newEpoch, name, movedIDs, detSpan, decSpan)
	recovery.RecordTransition(detSpan)
	recovery.RecordTransition(decSpan)
}
