package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"streammine/internal/debugserver"
	"streammine/internal/event"
	"streammine/internal/metrics"
	"streammine/internal/transport"
)

// clusterTopo is the integration topology: a checkpointing stateful stage
// downstream of a bridged cut, so a reassigned partition must restore
// from its checkpoint + decision log and absorb the upstream replay.
const clusterTopo = `{
  "speculative": true,
  "seed": 11,
  "nodes": [
    {"name": "src",      "type": "source", "rate": 5000, "count": 900},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// clusterFlowTopo is clusterTopo with engine-wide flow control: bounded
// mailboxes (credit window 8 on every edge, including the bridged cut)
// and speculation throttling. At rate 5000 against an 8-event window the
// upstream bridge runs credit-exhausted for most of the run, so a worker
// kill during it exercises the reconnect path that must re-grant credits
// before replay (a stranded window would wedge recovery forever).
const clusterFlowTopo = `{
  "speculative": true,
  "seed": 11,
  "flow": {"mailboxCap": 8, "maxOpenSpec": 4},
  "nodes": [
    {"name": "src",      "type": "source", "rate": 5000, "count": 900},
    {"name": "classify", "type": "classifier", "classes": 4, "inputs": ["src"], "checkpointEvery": 32},
    {"name": "out",      "type": "sink", "inputs": ["classify"]}
  ],
  "placement": {
    "workers": 2,
    "assign": {"src": 0, "classify": 1, "out": 1}
  }
}`

// sinkSet collects finalized sink-event identities across workers.
type sinkSet struct {
	mu   sync.Mutex
	seen map[event.ID]bool
	per  map[string]int
}

func newSinkSet() *sinkSet {
	return &sinkSet{seen: make(map[event.ID]bool), per: make(map[string]int)}
}

func (s *sinkSet) observer(worker string) func(string, event.Event) {
	return func(_ string, ev event.Event) {
		s.mu.Lock()
		s.seen[ev.ID] = true
		s.per[worker]++
		s.mu.Unlock()
	}
}

func (s *sinkSet) busiest(min int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w, n := range s.per {
		if n >= min {
			return w
		}
	}
	return ""
}

func (s *sinkSet) count(worker string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.per[worker]
}

func (s *sinkSet) ids() map[event.ID]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[event.ID]bool, len(s.seen))
	for id := range s.seen {
		out[id] = true
	}
	return out
}

// runCluster deploys the given topology on an in-process coordinator +
// two workers. With chaos set, the worker hosting the sink partition is
// torn down mid-run and its partition must be reassigned and recovered
// for the run to complete. Returns the sink identity set.
func runCluster(t *testing.T, topo string, chaos bool, reg *metrics.Registry) map[event.ID]bool {
	t.Helper()
	stateDir := t.TempDir()
	coord, err := NewCoordinator([]byte(topo), CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		Metrics:           reg,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	sinks := newSinkSet()
	workers := make(map[string]*Worker, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i+1)
		w, err := StartWorker(WorkerOptions{
			Name:              name,
			CoordAddr:         coord.Addr(),
			StateDir:          stateDir,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  400 * time.Millisecond,
			OnSinkEvent:       sinks.observer(name),
			Logf: func(format string, args ...any) {
				t.Logf("["+name+"] "+format, args...)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[name] = w
	}

	if chaos {
		// Kill whichever worker externalizes sink events once the run is
		// demonstrably under way (so there is state to recover).
		deadline := time.Now().Add(15 * time.Second)
		var victim string
		for victim == "" {
			if time.Now().After(deadline) {
				t.Fatal("no worker produced sink output to kill")
			}
			victim = sinks.busiest(50)
			time.Sleep(5 * time.Millisecond)
		}
		t.Logf("killing %s after %d sink events", victim, sinks.count(victim))
		_ = workers[victim].Close()
	}

	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("cluster run did not complete")
	}
	if err := coord.Err(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return sinks.ids()
}

// TestClusterRunsTopology is the basic distributed path: two workers, a
// bridged cut edge, full completion detection.
func TestClusterRunsTopology(t *testing.T) {
	ids := runCluster(t, clusterTopo, false, nil)
	if len(ids) != 900 {
		t.Fatalf("sink identity set = %d events, want 900", len(ids))
	}
}

// TestClusterFailover kills the worker hosting the stateful sink
// partition mid-run; the coordinator must detect the failure, reassign
// the partition to the survivor, and the recovered run must externalize
// exactly the same identity set as a failure-free run.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover test exercises multi-second failure detection")
	}
	baseline := runCluster(t, clusterTopo, false, nil)
	reg := metrics.NewRegistry()
	chaos := runCluster(t, clusterTopo, true, reg)
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %v missing from chaos run", id)
		}
	}
	if v, ok := reg.Value("cluster_reassignments_total", nil); !ok || v < 1 {
		t.Fatalf("cluster_reassignments_total = %v (ok=%v), want >= 1", v, ok)
	}
}

// TestClusterFailoverWithFlowControl reruns the failover drill with flow
// control on every node and the cut edge's bridge credit-gated at 8. The
// victim dies while the upstream bridge is (almost certainly) out of
// credits; the survivor's reconnect must reset the window before replay
// or the run can never complete. Precise recovery must hold unchanged:
// identical identity set, no losses, duplicates suppressed.
func TestClusterFailoverWithFlowControl(t *testing.T) {
	if testing.Short() {
		t.Skip("failover test exercises multi-second failure detection")
	}
	baseline := runCluster(t, clusterFlowTopo, false, nil)
	if len(baseline) != 900 {
		t.Fatalf("flow-controlled baseline externalized %d distinct events, want 900", len(baseline))
	}
	chaos := runCluster(t, clusterFlowTopo, true, nil)
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run externalized %d distinct events, baseline %d", len(chaos), len(baseline))
	}
	for id := range baseline {
		if !chaos[id] {
			t.Fatalf("event %v missing from chaos run", id)
		}
	}
}

// TestWorkerDegraded joins a worker to a control server that never
// heartbeats; the worker must stay up but report the coordinator as a
// degraded dependency.
func TestWorkerDegraded(t *testing.T) {
	srv, err := transport.ListenConn("127.0.0.1:0", func(transport.Conn, transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	w, err := StartWorker(WorkerOptions{
		Name:              "lonely",
		CoordAddr:         srv.Addr(),
		StateDir:          t.TempDir(),
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if down := w.Degraded(); len(down) != 0 {
		t.Fatalf("degraded immediately after join: %v", down)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		down := w.Degraded()
		if len(down) == 1 && down[0] == coordinatorPeer {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded = %v, want [coordinator]", down)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthzDegradedAndRecovery drives the full degraded round trip
// through the HTTP probe: a worker whose coordinator goes silent must
// flip /healthz from "ok" to "degraded: coordinator", and a coordinator
// that resumes heartbeating must flip it back — the detector resurrects
// peers on any observed control message, so a transient partition does
// not leave the probe stuck degraded.
func TestHealthzDegradedAndRecovery(t *testing.T) {
	var mu sync.Mutex
	var ctl transport.Conn
	srv, err := transport.ListenConn("127.0.0.1:0", func(c transport.Conn, _ transport.Message) {
		mu.Lock()
		ctl = c
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	w, err := StartWorker(WorkerOptions{
		Name:              "probe",
		CoordAddr:         srv.Addr(),
		StateDir:          t.TempDir(),
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ds := debugserver.New(metrics.NewRegistry(), nil)
	ds.SetDegraded(w.Degraded)
	addr, err := ds.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	healthz := func() string {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("healthz read: %v", err)
		}
		return string(body)
	}
	waitBody := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			body := healthz()
			if strings.HasPrefix(body, want) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("healthz = %q, want prefix %q", body, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Joined and observed: the probe starts healthy.
	if body := healthz(); !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthz right after join = %q, want ok", body)
	}

	// The fake coordinator never heartbeats, so silence past the timeout
	// must surface through the probe.
	waitBody("degraded: coordinator")

	// Resume heartbeats on the captured control connection; the detector
	// resurrects the peer and the probe returns to ok.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				mu.Lock()
				c := ctl
				mu.Unlock()
				if c != nil {
					_ = c.Send(transport.Message{Type: transport.MsgHeartbeat})
				}
			}
		}
	}()
	waitBody("ok")
}
