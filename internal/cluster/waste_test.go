package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streammine/internal/metrics"
)

// TestClusterWasteRollup runs the two-worker topology with
// ProfileSpeculation on and asserts the rollup chain: every partition
// engine profiles, workers attach cumulative waste summaries to STATUS
// heartbeats, and the coordinator merges them into Waste()/View() plus
// the aggregated cluster_waste_* series.
func TestClusterWasteRollup(t *testing.T) {
	reg := metrics.NewRegistry()
	coord, err := NewCoordinator([]byte(clusterTopo), CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		Metrics:           reg,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	stateDir := t.TempDir()
	sinks := newSinkSet()
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i+1)
		w, err := StartWorker(WorkerOptions{
			Name:               name,
			CoordAddr:          coord.Addr(),
			StateDir:           stateDir,
			HeartbeatInterval:  50 * time.Millisecond,
			HeartbeatTimeout:   400 * time.Millisecond,
			ProfileSpeculation: true,
			OnSinkEvent:        sinks.observer(name),
			Logf: func(format string, args ...any) {
				t.Logf("["+name+"] "+format, args...)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}

	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("cluster run did not complete")
	}
	if err := coord.Err(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	// The coordinator keeps the last waste summary each partition shipped,
	// so the merged view survives partition shutdown.
	sum := coord.Waste()
	if sum == nil {
		t.Fatal("coordinator Waste() = nil after a profiled run")
	}
	nw := sum.NodeByName("classify")
	if nw == nil {
		t.Fatalf("merged summary has no ledger for classify; nodes: %+v", sum.Nodes)
	}
	if nw.AttemptCPUNs <= 0 {
		t.Errorf("classify attempt_cpu_ns = %d, want > 0", nw.AttemptCPUNs)
	}

	view := coord.View()
	if view.Waste == nil {
		t.Fatal("View().Waste = nil after a profiled run")
	}
	if len(view.Workers) != 2 {
		t.Errorf("View().Workers = %v, want 2 workers", view.Workers)
	}
	if len(view.Partitions) == 0 {
		t.Error("View().Partitions is empty")
	}

	// Aggregated series must be registered and agree with the merged
	// summary at scrape time.
	if v, ok := reg.Value("cluster_waste_aborted_attempts_total", metrics.Labels{"cause": "conflict"}); !ok {
		t.Error("cluster_waste_aborted_attempts_total{cause=conflict} not registered")
	} else if want := float64(nw.AbortedAttempts["conflict"]); v < want {
		t.Errorf("cluster_waste_aborted_attempts_total{conflict} = %v, classify ledger alone has %v", v, want)
	}
	if _, ok := reg.Value("cluster_waste_cpu_pct", nil); !ok {
		t.Error("cluster_waste_cpu_pct not registered")
	}

	// Every cluster_waste_* series must be documented in the
	// docs/OBSERVABILITY.md inventory table.
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read metric inventory doc: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		if !strings.HasPrefix(p.Name, "cluster_waste_") || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("series %s not documented in docs/OBSERVABILITY.md", p.Name)
		}
	}
}
