// Package benchfmt defines the machine-readable benchmark/report schema
// shared by cmd/benchjson (which converts `go test -bench` text into it)
// and internal/campaign (which emits one row per campaign cell). Keeping
// the schema in one place means the -require column probes and the -prev
// regression gate apply identically to benchmark archives
// (BENCH_<rev>.json) and campaign result files (CAMPAIGN_<name>.json).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one measurement row: a benchmark, or one campaign cell.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp,omitempty"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	MBPerSec    float64 `json:"mbPerSec,omitempty"`
	// Latency quantiles reported by benchmarks that measure end-to-end
	// event latency (b.ReportMetric with "p50-us" / "p99-us" units).
	LatencyP50Us float64 `json:"latency_p50_us,omitempty"`
	LatencyP99Us float64 `json:"latency_p99_us,omitempty"`
	// Speculation-waste metrics reported by benchmarks that run with the
	// profiler enabled ("waste-cpu-pct" / "aborted-attempts/event" units).
	WasteCPUPct             float64 `json:"waste_cpu_pct,omitempty"`
	AbortedAttemptsPerEvent float64 `json:"aborted_attempts_per_event,omitempty"`
	// Sustained throughput reported by open-loop benchmarks
	// (b.ReportMetric with "events/sec" units).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Ingest-gateway edge metrics reported by the network ingest
	// benchmark ("ingest-admit-p99-ms" / "ingest-shed-pct" units).
	IngestAdmitP99Ms float64 `json:"ingest_admit_p99_ms,omitempty"`
	IngestShedPct    float64 `json:"ingest_shed_pct,omitempty"`
	// Fault-recovery campaign metrics (docs/CAMPAIGNS.md): time from
	// fault injection until sink throughput was restored, and the
	// fraction of externalized lineages that are reconstructable end to
	// end in the merged trace ("recovery-ms" / "completeness-pct" units).
	RecoveryMs      float64 `json:"recovery_ms,omitempty"`
	CompletenessPct float64 `json:"completeness_pct,omitempty"`
	// Recovery anatomy columns: the black-box recovery window broken
	// down by the instrumented /debug/recovery timeline (detection,
	// restore incl. decision-log scan, replay, catch-up), the replay
	// throughput, and the detection-anchored recovery time
	// ("detect-ms" … "recovery-detected-ms" units).
	DetectMs           float64 `json:"detect_ms,omitempty"`
	RestoreMs          float64 `json:"restore_ms,omitempty"`
	ReplayMs           float64 `json:"replay_ms,omitempty"`
	CatchupMs          float64 `json:"catchup_ms,omitempty"`
	ReplayEventsPerSec float64 `json:"replay_events_per_sec,omitempty"`
	RecoveryDetectedMs float64 `json:"recovery_detected_ms,omitempty"`
}

// Columns maps a -require column name to a probe reporting whether a
// result carries that column. Keep in sync with ParseLine and the JSON
// field tags above.
var Columns = map[string]func(*Result) bool{
	"nsPerOp":                    func(r *Result) bool { return r.NsPerOp != 0 },
	"bytesPerOp":                 func(r *Result) bool { return r.BytesPerOp != 0 },
	"allocsPerOp":                func(r *Result) bool { return r.AllocsPerOp != 0 },
	"mbPerSec":                   func(r *Result) bool { return r.MBPerSec != 0 },
	"latency_p50_us":             func(r *Result) bool { return r.LatencyP50Us != 0 },
	"latency_p99_us":             func(r *Result) bool { return r.LatencyP99Us != 0 },
	"waste_cpu_pct":              func(r *Result) bool { return r.WasteCPUPct != 0 },
	"aborted_attempts_per_event": func(r *Result) bool { return r.AbortedAttemptsPerEvent != 0 },
	"events_per_sec":             func(r *Result) bool { return r.EventsPerSec != 0 },
	"ingest_admit_p99_ms":        func(r *Result) bool { return r.IngestAdmitP99Ms != 0 },
	"ingest_shed_pct":            func(r *Result) bool { return r.IngestShedPct != 0 },
	"recovery_ms":                func(r *Result) bool { return r.RecoveryMs != 0 },
	"completeness_pct":           func(r *Result) bool { return r.CompletenessPct != 0 },
	"detect_ms":                  func(r *Result) bool { return r.DetectMs != 0 },
	"restore_ms":                 func(r *Result) bool { return r.RestoreMs != 0 },
	"replay_ms":                  func(r *Result) bool { return r.ReplayMs != 0 },
	"catchup_ms":                 func(r *Result) bool { return r.CatchupMs != 0 },
	"replay_events_per_sec":      func(r *Result) bool { return r.ReplayEventsPerSec != 0 },
	"recovery_detected_ms":       func(r *Result) bool { return r.RecoveryDetectedMs != 0 },
}

// Report is the file-level record.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// ParseText decodes `go test -bench` text output into a Report: the
// standard benchmark lines plus the goos/goarch/cpu/pkg header lines the
// test binary prints per package.
func ParseText(r io.Reader) (Report, error) {
	var rep Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := ParseLine(pkg, line); ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return rep, sc.Err()
}

// ParseLine decodes one benchmark result line: name, iteration count,
// then (value, unit) pairs.
func ParseLine(pkg, line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Pkg: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "p50-us":
			r.LatencyP50Us = v
		case "p99-us":
			r.LatencyP99Us = v
		case "waste-cpu-pct":
			r.WasteCPUPct = v
		case "aborted-attempts/event":
			r.AbortedAttemptsPerEvent = v
		case "events/sec":
			r.EventsPerSec = v
		case "ingest-admit-p99-ms":
			r.IngestAdmitP99Ms = v
		case "ingest-shed-pct":
			r.IngestShedPct = v
		case "recovery-ms":
			r.RecoveryMs = v
		case "completeness-pct":
			r.CompletenessPct = v
		case "detect-ms":
			r.DetectMs = v
		case "restore-ms":
			r.RestoreMs = v
		case "replay-ms":
			r.ReplayMs = v
		case "catchup-ms":
			r.CatchupMs = v
		case "replay-events/sec":
			r.ReplayEventsPerSec = v
		case "recovery-detected-ms":
			r.RecoveryDetectedMs = v
		}
	}
	return r, true
}

// ReadReport loads a Report previously written as JSON.
func ReadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("parse %s: %w", path, err)
	}
	return rep, nil
}

// WriteReport marshals the report (indented, trailing newline) to path,
// or to w when path is empty.
func WriteReport(rep Report, path string, w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = w.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// CheckRequired verifies every comma-separated column appears in at least
// one result. A typo'd or vanished metric unit used to produce a report
// full of silent blanks; now it fails the run.
func CheckRequired(rep Report, require string) error {
	if require == "" {
		return nil
	}
	for _, col := range strings.Split(require, ",") {
		col = strings.TrimSpace(col)
		if col == "" {
			continue
		}
		probe, ok := Columns[col]
		if !ok {
			return fmt.Errorf("-require: unknown column %q", col)
		}
		found := false
		for i := range rep.Benchmarks {
			if probe(&rep.Benchmarks[i]) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-require: column %q absent from all %d parsed benchmarks (metric unit missing from bench output?)", col, len(rep.Benchmarks))
		}
	}
	return nil
}

// CheckRegression compares the new report against a previous one by
// pkg+name. A row fails the gate when its events_per_sec dropped by more
// than 20%, its waste_cpu_pct more than doubled, its recovery_ms or
// replay_ms more than doubled (and grew by at least 250 ms, so
// fast-recovery jitter does not trip it), or its completeness_pct fell
// by more than half a point.
// Rows present on only one side are ignored (renames and new coverage are
// not regressions).
func CheckRegression(prevPath string, cur Report) error {
	prev, err := ReadReport(prevPath)
	if err != nil {
		return fmt.Errorf("-prev: %w", err)
	}
	old := make(map[string]Result, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		old[r.Pkg+" "+r.Name] = r
	}
	var bad []string
	// regress records one failed row in the gate's uniform shape: the
	// row, the offending column by name, the previous and current values,
	// and the rule that tripped — so a CI failure is diagnosable from the
	// error alone.
	regress := func(name, column string, prec int, prevV, curV float64, rule string) {
		bad = append(bad, fmt.Sprintf("%s: column %s: prev %.*f, now %.*f (%s)",
			name, column, prec, prevV, prec, curV, rule))
	}
	for _, r := range cur.Benchmarks {
		p, ok := old[r.Pkg+" "+r.Name]
		if !ok {
			continue
		}
		if p.EventsPerSec > 0 && r.EventsPerSec > 0 && r.EventsPerSec < 0.8*p.EventsPerSec {
			regress(r.Name, "events_per_sec", 0, p.EventsPerSec, r.EventsPerSec,
				fmt.Sprintf("dropped %.0f%%; gate is 20%%", 100*(1-r.EventsPerSec/p.EventsPerSec)))
		}
		if p.WasteCPUPct > 0 && r.WasteCPUPct > 2*p.WasteCPUPct {
			regress(r.Name, "waste_cpu_pct", 2, p.WasteCPUPct, r.WasteCPUPct, "more than doubled")
		}
		if p.ReplayMs > 0 && r.ReplayMs > 2*p.ReplayMs && r.ReplayMs-p.ReplayMs > 250 {
			regress(r.Name, "replay_ms", 0, p.ReplayMs, r.ReplayMs, "more than doubled and grew >=250ms")
		}
		if p.RecoveryMs > 0 && r.RecoveryMs > 2*p.RecoveryMs && r.RecoveryMs-p.RecoveryMs > 250 {
			regress(r.Name, "recovery_ms", 0, p.RecoveryMs, r.RecoveryMs, "more than doubled and grew >=250ms")
		}
		if p.CompletenessPct > 0 && r.CompletenessPct > 0 && r.CompletenessPct < p.CompletenessPct-0.5 {
			regress(r.Name, "completeness_pct", 2, p.CompletenessPct, r.CompletenessPct, "fell more than 0.5 points")
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("regression vs %s:\n  %s", prevPath, strings.Join(bad, "\n  "))
	}
	return nil
}
