package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: streammine
cpu: model X
BenchmarkLatencyDepth/depth=4-8   1   123456 ns/op   420.5 p50-us   990.1 p99-us   81234 events/sec
BenchmarkSpeculationWaste-8       1   99887 ns/op    3.25 waste-cpu-pct   0.12 aborted-attempts/event
BenchmarkRecovery-8               1   1.0 ns/op      840 recovery-ms   99.7 completeness-pct
`

func parse(t *testing.T) Report {
	t.Helper()
	rep, err := ParseText(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseText(t *testing.T) {
	rep := parse(t)
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "model X" {
		t.Fatalf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	lat := rep.Benchmarks[0]
	if lat.LatencyP50Us != 420.5 || lat.LatencyP99Us != 990.1 || lat.EventsPerSec != 81234 {
		t.Fatalf("latency row = %+v", lat)
	}
	rec := rep.Benchmarks[2]
	if rec.RecoveryMs != 840 || rec.CompletenessPct != 99.7 {
		t.Fatalf("recovery row = %+v", rec)
	}
}

func TestCheckRequired(t *testing.T) {
	rep := parse(t)
	if err := CheckRequired(rep, "recovery_ms,completeness_pct,events_per_sec"); err != nil {
		t.Fatalf("required columns present but check failed: %v", err)
	}
	if err := CheckRequired(rep, "ingest_shed_pct"); err == nil {
		t.Fatal("absent column passed -require")
	}
	if err := CheckRequired(rep, "no_such_column"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestColumnsCoverResultFields(t *testing.T) {
	// Every campaign/bench column that CheckRequired can name must have a
	// probe that actually fires when the field is set.
	r := Result{
		NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1, MBPerSec: 1,
		LatencyP50Us: 1, LatencyP99Us: 1, WasteCPUPct: 1,
		AbortedAttemptsPerEvent: 1, EventsPerSec: 1,
		IngestAdmitP99Ms: 1, IngestShedPct: 1,
		RecoveryMs: 1, CompletenessPct: 1,
		RecoveryDetectedMs: 1, DetectMs: 1, RestoreMs: 1, ReplayMs: 1,
		CatchupMs: 1, ReplayEventsPerSec: 1,
	}
	for name, probe := range Columns {
		if !probe(&r) {
			t.Errorf("column %q probe does not detect a populated result", name)
		}
	}
}

func writePrev(t *testing.T, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prev.json")
	if err := WriteReport(rep, path, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckRegressionRecovery(t *testing.T) {
	prev := Report{Benchmarks: []Result{
		{Pkg: "campaign/smoke", Name: "paper/sigkill/spec", Iterations: 1, RecoveryMs: 800, CompletenessPct: 100},
	}}
	path := writePrev(t, prev)

	ok := Report{Benchmarks: []Result{
		{Pkg: "campaign/smoke", Name: "paper/sigkill/spec", Iterations: 1, RecoveryMs: 900, CompletenessPct: 99.8},
	}}
	if err := CheckRegression(path, ok); err != nil {
		t.Fatalf("small recovery drift flagged: %v", err)
	}

	slow := Report{Benchmarks: []Result{
		{Pkg: "campaign/smoke", Name: "paper/sigkill/spec", Iterations: 1, RecoveryMs: 2200, CompletenessPct: 100},
	}}
	if err := CheckRegression(path, slow); err == nil {
		t.Fatal("recovery_ms more than doubled but gate passed")
	}

	incomplete := Report{Benchmarks: []Result{
		{Pkg: "campaign/smoke", Name: "paper/sigkill/spec", Iterations: 1, RecoveryMs: 800, CompletenessPct: 98.9},
	}}
	if err := CheckRegression(path, incomplete); err == nil {
		t.Fatal("completeness_pct dropped over half a point but gate passed")
	}
}

func TestCheckRegressionNamesColumnAndValues(t *testing.T) {
	prev := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "B1", Iterations: 1, EventsPerSec: 1000, RecoveryMs: 800},
	}}
	path := writePrev(t, prev)
	bad := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "B1", Iterations: 1, EventsPerSec: 700, RecoveryMs: 2200},
	}}
	err := CheckRegression(path, bad)
	if err == nil {
		t.Fatal("regressions passed the gate")
	}
	msg := err.Error()
	// Every failure must name the offending column and both values, so
	// the CI log is diagnosable without re-running the comparison.
	for _, want := range []string{
		"column events_per_sec", "prev 1000", "now 700",
		"column recovery_ms", "prev 800", "now 2200",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("regression error missing %q:\n%s", want, msg)
		}
	}
}

func TestCheckRegressionThroughputUnchangedRules(t *testing.T) {
	prev := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "B1", Iterations: 1, EventsPerSec: 1000, WasteCPUPct: 2},
	}}
	path := writePrev(t, prev)
	bad := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "B1", Iterations: 1, EventsPerSec: 700, WasteCPUPct: 2},
	}}
	if err := CheckRegression(path, bad); err == nil {
		t.Fatal("20% throughput drop passed the gate")
	}
	renamed := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "B2", Iterations: 1, EventsPerSec: 1},
	}}
	if err := CheckRegression(path, renamed); err != nil {
		t.Fatalf("rename treated as regression: %v", err)
	}
}
