package topology

// Example is the starter topology printed by `streammine -example`.
const Example = `{
  "speculative": true,
  "diskLatencyMillis": 10,
  "disks": 1,
  "seed": 42,
  "nodes": [
    {"name": "pub1", "type": "source", "rate": 500, "count": 2000},
    {"name": "pub2", "type": "source", "rate": 500, "count": 2000},
    {"name": "merge", "type": "union", "inputs": ["pub1", "pub2"]},
    {"name": "proc", "type": "classifier", "classes": 16, "checkpointEvery": 100, "inputs": ["merge"]},
    {"name": "out", "type": "sink", "inputs": ["proc"]}
  ]
}`
