// Package topology loads the JSON pipeline description accepted by the
// streammine command and builds validated operator graphs from it —
// whole (Build) or restricted to one cluster partition (BuildSubset).
// The optional placement section assigns nodes to cluster workers.
package topology

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"streammine/internal/event"
	"streammine/internal/flow"
	"streammine/internal/graph"
	"streammine/internal/operator"
)

// Config is the JSON description of a pipeline.
type Config struct {
	// Speculative is the default speculation switch for all nodes.
	Speculative bool `json:"speculative"`
	// DiskLatencyMillis models the stable-storage write time.
	DiskLatencyMillis int `json:"diskLatencyMillis"`
	// Disks is the number of storage points (default 1).
	Disks int `json:"disks"`
	// Seed makes runs reproducible.
	Seed uint64 `json:"seed"`
	// Nodes lists the operators; edges derive from each node's inputs.
	Nodes []NodeConfig `json:"nodes"`
	// Placement optionally assigns nodes to cluster workers; ignored by
	// the single-process runner.
	Placement *Placement `json:"placement"`
	// Flow is the default flow-control configuration applied to every
	// node; a node's own flow section overrides it entirely. Nil disables
	// flow control (the pre-flow unbounded behavior).
	Flow *flow.Limits `json:"flow"`
	// SLOP99Millis declares the end-to-end p99 latency target for this
	// topology in milliseconds (0 = no SLO declared). The coordinator's
	// health model decomposes the budget across hops and flags the
	// dominating one (/debug/health, docs/OBSERVABILITY.md). The -slo
	// flag overrides it at deploy time.
	SLOP99Millis int `json:"sloP99Millis,omitempty"`
}

// SLO returns the declared end-to-end p99 target, or 0 when none is set.
func (cfg *Config) SLO() time.Duration {
	return time.Duration(cfg.SLOP99Millis) * time.Millisecond
}

// Placement distributes the topology over cluster workers.
type Placement struct {
	// Workers is the number of partitions to create when Assign leaves
	// nodes unassigned: those are spread round-robin over partitions
	// 0..Workers-1 (default 1).
	Workers int `json:"workers"`
	// Assign pins node names to partition indices.
	Assign map[string]int `json:"assign"`
}

// NodeConfig is one node of the topology.
type NodeConfig struct {
	Name string `json:"name"`
	// Type selects the operator: source, union, split, classifier,
	// count_window_avg, time_window_sum, sketch, enrich, passthrough,
	// join, filter_even, shedder, pattern, distinct_count, dedup, sink.
	Type string `json:"type"`
	// Inputs are upstream node names, in input-index order. For split
	// upstreams, the form "name:port" selects an output port.
	Inputs []string `json:"inputs"`

	// Source parameters.
	Rate  int `json:"rate"`  // events/second
	Count int `json:"count"` // total events to publish
	// Ingest marks a source as network-fed: instead of a synthetic
	// publisher, records arrive through the multi-tenant ingest gateway
	// (-ingest-addr, docs/INGEST.md). Rate and Count are ignored; the
	// stream is open-ended and its durability is the gateway's admission
	// log rather than the in-process harness.
	Ingest bool `json:"ingest,omitempty"`

	// Operator parameters (meaning depends on Type).
	Window       int      `json:"window"`
	Width        int      `json:"width"`
	Depth        int      `json:"depth"`
	Classes      int      `json:"classes"`
	Buckets      int      `json:"buckets"`
	Outputs      int      `json:"outputs"`
	CostMicros   int      `json:"costMicros"`
	LogDecision  bool     `json:"logDecision"`
	DropPerMille uint64   `json:"dropPerMille"`
	Stages       []uint64 `json:"stages"`
	Precision    uint     `json:"precision"`
	Workers      int      `json:"workers"`
	Checkpoint   int      `json:"checkpointEvery"`
	Speculative  *bool    `json:"speculative"`
	Key          string   `json:"key"` // split: "hash" for by-key routing

	// Flow overrides the topology-level flow-control defaults for this
	// node (whole-section replacement, not field merge).
	Flow *flow.Limits `json:"flow"`
}

// Load reads and parses a topology file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read topology: %w", err)
	}
	return Parse(data)
}

// Parse parses a topology from raw JSON.
func Parse(data []byte) (*Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse topology: %w", err)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("topology has no nodes")
	}
	return &cfg, nil
}

// Built carries a constructed graph plus the roles a runner needs to
// drive it.
type Built struct {
	Graph   *graph.Graph
	Sources []SourceSpec
	Sinks   []graph.NodeID
	Names   map[string]graph.NodeID
}

// SourceSpec is one source node with its publishing parameters.
type SourceSpec struct {
	ID    graph.NodeID
	Name  string
	Rate  int
	Count int
	// Ingest marks the source as fed by the network ingest gateway; the
	// runner must register it there instead of publishing synthetically.
	Ingest bool
}

// Build converts the whole config into a validated graph.
func (cfg *Config) Build() (*Built, error) {
	return cfg.build(nil)
}

// BuildSubset builds the partition subgraph containing only the named
// nodes. Each node's StableID is set to its position in the full
// topology (+1), so operator identities — decision-log records,
// checkpoints, output-event IDs — survive re-partitioning. Inputs fed
// from nodes outside the subset become RemoteInputs (a cluster bridge
// delivers them).
func (cfg *Config) BuildSubset(members []string) (*Built, error) {
	in := make(map[string]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	all := make(map[string]bool, len(cfg.Nodes))
	for _, nc := range cfg.Nodes {
		all[nc.Name] = true
	}
	for _, m := range members {
		if !all[m] {
			return nil, fmt.Errorf("subset member %q is not in the topology", m)
		}
	}
	return cfg.build(in)
}

// build constructs the graph; in == nil selects every node (Build), and
// then StableIDs are left zero so single-process behavior is unchanged.
func (cfg *Config) build(in map[string]bool) (*Built, error) {
	g := graph.New()
	res := &Built{Graph: g, Names: make(map[string]graph.NodeID)}
	all := make(map[string]bool, len(cfg.Nodes))
	for _, nc := range cfg.Nodes {
		all[nc.Name] = true
	}

	for gi, nc := range cfg.Nodes {
		if in != nil && !in[nc.Name] {
			continue
		}
		spec, isSource, isSink, err := cfg.makeNode(nc)
		if err != nil {
			return nil, fmt.Errorf("node %q: %w", nc.Name, err)
		}
		if in != nil {
			spec.StableID = uint32(gi) + 1
			for input, ref := range nc.Inputs {
				name, _ := splitRef(ref)
				if !in[name] {
					spec.RemoteInputs = append(spec.RemoteInputs, input)
				}
			}
		}
		id := g.AddNode(spec)
		res.Names[nc.Name] = id
		if isSource {
			rate := nc.Rate
			if rate <= 0 {
				rate = 1000
			}
			count := nc.Count
			if count <= 0 {
				count = 1000
			}
			res.Sources = append(res.Sources, SourceSpec{ID: id, Name: nc.Name, Rate: rate, Count: count, Ingest: nc.Ingest})
		}
		if isSink {
			res.Sinks = append(res.Sinks, id)
		}
	}
	// Wire edges now that all names resolve.
	for _, nc := range cfg.Nodes {
		if in != nil && !in[nc.Name] {
			continue
		}
		to := res.Names[nc.Name]
		for input, ref := range nc.Inputs {
			name, port := splitRef(ref)
			from, ok := res.Names[name]
			if !ok {
				if in != nil && all[name] {
					continue // cross-partition edge; a bridge feeds it
				}
				return nil, fmt.Errorf("node %q: unknown input %q", nc.Name, name)
			}
			g.Connect(from, port, to, input)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// splitRef parses "name" or "name:port".
func splitRef(ref string) (string, int) {
	for i := 0; i < len(ref); i++ {
		if ref[i] == ':' {
			port := 0
			for _, c := range ref[i+1:] {
				if c < '0' || c > '9' {
					return ref, 0
				}
				port = port*10 + int(c-'0')
			}
			return ref[:i], port
		}
	}
	return ref, 0
}

// SplitRef parses an input reference "name" or "name:port" into the
// upstream node name and output port (cluster planning needs the same
// resolution as graph building).
func SplitRef(ref string) (string, int) { return splitRef(ref) }

// FlowFor returns the effective flow limits for the named node: its own
// flow section when present, else the topology default. Nil when neither
// configures flow control.
func (cfg *Config) FlowFor(name string) *flow.Limits {
	for _, nc := range cfg.Nodes {
		if nc.Name == name {
			if nc.Flow != nil {
				return nc.Flow
			}
			break
		}
	}
	return cfg.Flow
}

// ApplyBatch overrides the hot-path batch size and linger across the
// whole topology: on the flow default and on every per-node flow section
// (a node's section replaces the default entirely, so it must carry the
// batch setting too, or the override would silently disable batching on
// that node). size <= 0 leaves sizes untouched; linger <= 0 leaves
// lingers untouched. The streammine -batch/-batch-linger flags call this
// before the graph (or the cluster deployment payload) is built.
func (cfg *Config) ApplyBatch(size int, linger time.Duration) {
	if size <= 0 && linger <= 0 {
		return
	}
	apply := func(l *flow.Limits) {
		if size > 0 {
			l.BatchSize = size
		}
		if linger > 0 {
			l.BatchLingerMicros = int(linger / time.Microsecond)
		}
	}
	if cfg.Flow == nil {
		cfg.Flow = &flow.Limits{}
	}
	apply(cfg.Flow)
	for i := range cfg.Nodes {
		if cfg.Nodes[i].Flow != nil {
			apply(cfg.Nodes[i].Flow)
		}
	}
}

// CreditWindowFor derives the per-edge credit window for the named node —
// the explicit CreditWindow when set, else the mailbox capacity split
// evenly across the node's inputs. This mirrors the rule the core engine
// applies to its local edges, so cluster bridges gating a cut edge use the
// same window the edge would have had in-process. Zero disables gating.
func (cfg *Config) CreditWindowFor(name string) int {
	f := cfg.FlowFor(name)
	if f == nil {
		return 0
	}
	if f.CreditWindow > 0 {
		return f.CreditWindow
	}
	if f.MailboxCap <= 0 {
		return 0
	}
	inputs := 0
	for _, nc := range cfg.Nodes {
		if nc.Name == name {
			inputs = len(nc.Inputs)
			break
		}
	}
	if inputs < 1 {
		return 0
	}
	w := f.MailboxCap / inputs
	if w < 1 {
		w = 1
	}
	return w
}

// makeNode translates one NodeConfig into a graph.Node.
func (cfg *Config) makeNode(nc NodeConfig) (graph.Node, bool, bool, error) {
	spec := graph.Node{
		Name:            nc.Name,
		Workers:         nc.Workers,
		CheckpointEvery: nc.Checkpoint,
		Speculative:     cfg.Speculative,
		Flow:            cfg.Flow,
	}
	if nc.Speculative != nil {
		spec.Speculative = *nc.Speculative
	}
	if nc.Flow != nil {
		spec.Flow = nc.Flow
	}
	cost := time.Duration(nc.CostMicros) * time.Microsecond
	switch nc.Type {
	case "source":
		return spec, true, false, nil
	case "sink":
		// A sink is a pass-through node the runner subscribes to.
		spec.Op = &operator.Passthrough{}
		return spec, false, true, nil
	case "union":
		spec.Op = &operator.Union{}
		spec.Traits = operator.Traits{Stateful: true, OrderSensitive: true}
		return spec, false, false, nil
	case "split":
		outs := nc.Outputs
		if outs <= 0 {
			outs = 2
		}
		spec.Op = &operator.Split{Outputs: outs, ByKey: nc.Key == "hash"}
		spec.OutputPorts = outs
		return spec, false, false, nil
	case "classifier":
		classes := nc.Classes
		if classes <= 0 {
			classes = 16
		}
		spec.Op = &operator.Classifier{Classes: classes, Cost: cost}
		spec.Traits = operator.ClassifierTraits(classes)
		return spec, false, false, nil
	case "count_window_avg":
		w := nc.Window
		if w <= 0 {
			w = 10
		}
		spec.Op = &operator.CountWindowAvg{Window: w}
		spec.Traits = operator.CountWindowTraits
		return spec, false, false, nil
	case "time_window_sum":
		w := nc.Width
		if w <= 0 {
			w = 1000
		}
		spec.Op = &operator.TimeWindowSum{Width: int64(w)}
		spec.Traits = operator.TimeWindowTraits
		return spec, false, false, nil
	case "sketch":
		depth, width := nc.Depth, nc.Width
		if depth <= 0 {
			depth = 4
		}
		if width <= 0 {
			width = 1024
		}
		spec.Op = &operator.SketchOp{Depth: depth, Width: width, Seed: cfg.Seed + 1, Cost: cost}
		spec.Traits = operator.SketchTraits(depth, width)
		return spec, false, false, nil
	case "enrich":
		spec.Op = &operator.Enrich{Cost: cost}
		spec.Traits = operator.EnrichTraits
		return spec, false, false, nil
	case "passthrough":
		spec.Op = &operator.Passthrough{Cost: cost, LogDecision: nc.LogDecision}
		return spec, false, false, nil
	case "join":
		buckets := nc.Buckets
		if buckets <= 0 {
			buckets = 256
		}
		spec.Op = &operator.Join{Buckets: buckets}
		spec.Traits = operator.JoinTraits(buckets)
		return spec, false, false, nil
	case "filter_even":
		spec.Op = &operator.Filter{Pred: func(e event.Event) bool { return e.Key%2 == 0 }}
		spec.Traits = operator.FilterTraits
		return spec, false, false, nil
	case "shedder":
		spec.Op = &operator.Shedder{DropPerMille: nc.DropPerMille}
		spec.Traits = operator.ShedderTraits
		return spec, false, false, nil
	case "pattern":
		stages := nc.Stages
		if len(stages) < 2 {
			stages = []uint64{1, 2, 3}
		}
		buckets := nc.Buckets
		if buckets <= 0 {
			buckets = 256
		}
		spec.Op = &operator.Pattern{Stages: stages, Buckets: buckets}
		spec.Traits = operator.PatternTraits(buckets)
		return spec, false, false, nil
	case "distinct_count":
		prec := nc.Precision
		if prec == 0 {
			prec = 12
		}
		spec.Op = &operator.DistinctCount{Precision: prec, Seed: cfg.Seed + 2}
		spec.Traits = operator.DistinctCountTraits(prec)
		return spec, false, false, nil
	case "dedup":
		capKeys := nc.Buckets
		if capKeys <= 0 {
			capKeys = 1024
		}
		spec.Op = &operator.Dedup{Capacity: capKeys}
		spec.Traits = operator.DedupTraits(capKeys)
		return spec, false, false, nil
	default:
		return graph.Node{}, false, false, fmt.Errorf("unknown node type %q", nc.Type)
	}
}
