package topology

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTopo(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadExampleTopology(t *testing.T) {
	path := writeTopo(t, Example)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Sources) != 2 {
		t.Fatalf("sources = %d", len(built.Sources))
	}
	if len(built.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(built.Sinks))
	}
	if err := built.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAllNodeTypes(t *testing.T) {
	path := writeTopo(t, `{
		"speculative": true,
		"nodes": [
			{"name": "src", "type": "source", "rate": 100, "count": 10},
			{"name": "shed", "type": "shedder", "dropPerMille": 100, "inputs": ["src"]},
			{"name": "pat", "type": "pattern", "stages": [1,2], "buckets": 32, "inputs": ["shed"]},
			{"name": "dc", "type": "distinct_count", "precision": 8, "inputs": ["pat"]},
			{"name": "dd", "type": "dedup", "buckets": 64, "inputs": ["dc"]},
			{"name": "spl", "type": "split", "outputs": 2, "key": "hash", "inputs": ["dd"]},
			{"name": "enr", "type": "enrich", "costMicros": 10, "inputs": ["spl:0"]},
			{"name": "flt", "type": "filter_even", "inputs": ["spl:1"]},
			{"name": "agg", "type": "count_window_avg", "window": 5, "inputs": ["enr"]},
			{"name": "tws", "type": "time_window_sum", "width": 100, "inputs": ["flt"]},
			{"name": "sk", "type": "sketch", "depth": 3, "width": 64, "inputs": ["agg"]},
			{"name": "out1", "type": "sink", "inputs": ["sk"]},
			{"name": "out2", "type": "sink", "inputs": ["tws"]}
		]
	}`)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(built.Graph.Nodes()); got != 13 {
		t.Fatalf("nodes = %d, want 13", got)
	}
	if len(built.Sinks) != 2 {
		t.Fatalf("sinks = %d", len(built.Sinks))
	}
}

func TestBuildErrors(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"empty", `{"nodes": []}`},
		{"bad json", `{`},
		{"unknown type", `{"nodes": [{"name": "x", "type": "teleporter"}]}`},
		{"unknown input", `{"nodes": [{"name": "a", "type": "sink", "inputs": ["ghost"]}]}`},
		{"cycle", `{"nodes": [
			{"name": "a", "type": "passthrough", "inputs": ["b"]},
			{"name": "b", "type": "passthrough", "inputs": ["a"]}
		]}`},
		{"dup names", `{"nodes": [
			{"name": "a", "type": "source"},
			{"name": "a", "type": "sink", "inputs": ["a"]}
		]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := writeTopo(t, tt.body)
			cfg, err := Load(path)
			if err != nil {
				return // load-stage rejection is fine
			}
			if _, err := cfg.Build(); err == nil {
				t.Fatalf("topology %q built without error", tt.name)
			}
		})
	}
}

func TestLoadTopologyMissingFile(t *testing.T) {
	if _, err := Load("/does/not/exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSplitRef(t *testing.T) {
	tests := []struct {
		in   string
		name string
		port int
	}{
		{"node", "node", 0},
		{"node:1", "node", 1},
		{"node:12", "node", 12},
		{"weird:x", "weird:x", 0},
	}
	for _, tt := range tests {
		name, port := SplitRef(tt.in)
		if name != tt.name || port != tt.port {
			t.Errorf("SplitRef(%q) = %q,%d want %q,%d", tt.in, name, port, tt.name, tt.port)
		}
	}
}

func TestNodeSpeculativeOverride(t *testing.T) {
	path := writeTopo(t, `{
		"speculative": true,
		"nodes": [
			{"name": "src", "type": "source"},
			{"name": "a", "type": "passthrough", "inputs": ["src"]},
			{"name": "b", "type": "passthrough", "speculative": false, "inputs": ["a"]}
		]
	}`)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	nodes := built.Graph.Nodes()
	if !nodes[1].Speculative {
		t.Fatal("default speculative not applied")
	}
	if nodes[2].Speculative {
		t.Fatal("per-node override not applied")
	}
}

// TestBuildSubset checks partition subgraphs: stable identities follow
// the global topology and cross-partition inputs become remote.
func TestBuildSubset(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"nodes": [
			{"name": "src", "type": "source"},
			{"name": "proc", "type": "classifier", "inputs": ["src"]},
			{"name": "merge", "type": "union", "inputs": ["proc", "side"]},
			{"name": "side", "type": "source"},
			{"name": "out", "type": "sink", "inputs": ["merge"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfg.BuildSubset([]string{"merge", "side", "out"})
	if err != nil {
		t.Fatal(err)
	}
	nodes := built.Graph.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(nodes))
	}
	// merge is global node 2 → StableID 3; its input 0 (proc) is remote,
	// input 1 (side) is local.
	merge := nodes[built.Names["merge"]]
	if merge.StableID != 3 {
		t.Fatalf("merge StableID = %d, want 3", merge.StableID)
	}
	if len(merge.RemoteInputs) != 1 || merge.RemoteInputs[0] != 0 {
		t.Fatalf("merge RemoteInputs = %v, want [0]", merge.RemoteInputs)
	}
	side := nodes[built.Names["side"]]
	if side.StableID != 4 {
		t.Fatalf("side StableID = %d, want 4", side.StableID)
	}
	if len(built.Sources) != 1 || built.Sources[0].Name != "side" {
		t.Fatalf("sources = %+v, want [side]", built.Sources)
	}
	if len(built.Sinks) != 1 {
		t.Fatalf("sinks = %d, want 1", len(built.Sinks))
	}
	// Local edges only: side→merge and merge→out.
	if got := len(built.Graph.Edges()); got != 2 {
		t.Fatalf("edges = %d, want 2", got)
	}

	if _, err := cfg.BuildSubset([]string{"merge", "ghost"}); err == nil {
		t.Fatal("unknown subset member accepted")
	}
}

// TestBuildSubsetPlacementParse checks the placement section survives a
// round trip through the loader.
func TestBuildSubsetPlacementParse(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"placement": {"workers": 2, "assign": {"src": 0, "out": 1}},
		"nodes": [
			{"name": "src", "type": "source"},
			{"name": "out", "type": "sink", "inputs": ["src"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Placement == nil || cfg.Placement.Workers != 2 {
		t.Fatalf("placement = %+v", cfg.Placement)
	}
	if cfg.Placement.Assign["out"] != 1 {
		t.Fatalf("assign = %v", cfg.Placement.Assign)
	}
}
