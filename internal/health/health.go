// Package health is the coordinator-side live health model: it folds the
// per-node samples riding worker STATUS heartbeats (commit counts,
// per-hop finalize latency HDR summaries, mailbox/credit pressure) into
// a per-operator view that answers, while the cluster runs:
//
//   - which hop is eating the end-to-end latency budget (SLO budget
//     attribution — the paper's additive per-hop latency model applied
//     to a user-declared p99 target);
//   - why output stalled (backpressure root-cause chains walked upstream
//     from each sink to the originating operator);
//   - which worker is straggling (finalize-rate / backlog / heartbeat
//     deviation against its peers).
//
// The model is deliberately coordinator-local: folding happens on the
// existing STATUS path (no extra RPCs), and Snapshot serves
// /debug/health and the health_* series from the same state.
package health

import (
	"sync"
	"time"

	"streammine/internal/core"
	"streammine/internal/topology"
)

// Options tune the model.
type Options struct {
	// SLO is the declared end-to-end p99 latency target (0 = none).
	SLO time.Duration
	// HeartbeatInterval is the STATUS cadence; staleness thresholds
	// scale from it (default 100 ms).
	HeartbeatInterval time.Duration
}

// Model folds worker STATUS payloads into the live per-operator view.
type Model struct {
	mu    sync.Mutex
	opts  Options
	order []string // topology node order, for stable output
	ops   map[string]*opState
	sinks []string
	work  map[string]*workerState
}

// opState is the model's view of one operator.
type opState struct {
	name      string
	inputs    []string // upstream node names (ports stripped)
	source    bool
	sink      bool
	worker    string
	partition int

	committed uint64
	finCount  uint64
	p50       time.Duration
	p99       time.Duration
	rate      float64 // committed events/sec, EWMA over folds
	lastAt    time.Time

	pressure    core.NodePressure
	hasPressure bool
}

// workerState is the model's view of one worker process.
type workerState struct {
	name   string
	lastAt time.Time
	// parts holds the latest committed count per partition this worker
	// reported, so the worker rate survives multi-partition hosting.
	parts     map[int]uint64
	lastSum   uint64
	rate      float64 // committed events/sec across partitions, EWMA
	devStreak int     // consecutive snapshots the worker looked deviant
}

// New builds a model over the deployed topology: the upstream adjacency
// for backpressure walks comes from each node's declared inputs.
func New(cfg *topology.Config, opts Options) *Model {
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 100 * time.Millisecond
	}
	if opts.SLO == 0 {
		opts.SLO = cfg.SLO()
	}
	m := &Model{
		opts: opts,
		ops:  make(map[string]*opState, len(cfg.Nodes)),
		work: make(map[string]*workerState),
	}
	for _, nc := range cfg.Nodes {
		op := &opState{
			name:      nc.Name,
			source:    nc.Type == "source",
			sink:      nc.Type == "sink",
			partition: -1,
		}
		for _, ref := range nc.Inputs {
			up, _ := topology.SplitRef(ref)
			op.inputs = append(op.inputs, up)
		}
		m.ops[nc.Name] = op
		m.order = append(m.order, nc.Name)
		if op.sink {
			m.sinks = append(m.sinks, nc.Name)
		}
	}
	return m
}

// rateAlpha is the EWMA weight of the newest rate observation.
const rateAlpha = 0.5

// Fold ingests one partition STATUS payload. Stale-epoch rejection is
// the caller's job (the coordinator already discards stale reports
// before folding).
func (m *Model) Fold(worker string, partition int, hs []core.NodeHealth, ps []core.NodePressure, now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range hs {
		op := m.ops[h.Node]
		if op == nil {
			continue
		}
		if !op.lastAt.IsZero() {
			if dt := now.Sub(op.lastAt).Seconds(); dt > 0.01 {
				inst := float64(h.Committed-op.committed) / dt
				if h.Committed < op.committed {
					inst = 0 // partition restarted; counter reset
				}
				op.rate = rateAlpha*inst + (1-rateAlpha)*op.rate
			}
		}
		op.committed = h.Committed
		op.finCount = h.FinalizeCount
		op.p50 = time.Duration(h.FinalizeP50Ns)
		op.p99 = time.Duration(h.FinalizeP99Ns)
		op.worker = worker
		op.partition = partition
		op.lastAt = now
	}
	for _, p := range ps {
		if op := m.ops[p.Node]; op != nil {
			op.pressure = p
			op.hasPressure = true
			op.worker = worker
			op.partition = partition
			if op.lastAt.IsZero() {
				op.lastAt = now
			}
		}
	}

	w := m.work[worker]
	if w == nil {
		w = &workerState{name: worker, parts: make(map[int]uint64)}
		m.work[worker] = w
	}
	var partSum uint64
	for _, h := range hs {
		partSum += h.Committed
	}
	w.parts[partition] = partSum
	var sum uint64
	for _, v := range w.parts {
		sum += v
	}
	if !w.lastAt.IsZero() {
		if dt := now.Sub(w.lastAt).Seconds(); dt > 0.01 {
			inst := float64(sum-w.lastSum) / dt
			if sum < w.lastSum {
				inst = 0
			}
			w.rate = rateAlpha*inst + (1-rateAlpha)*w.rate
			w.lastSum = sum
			w.lastAt = now
		}
	} else {
		w.lastSum = sum
		w.lastAt = now
	}
}

// RemoveWorker drops an evicted worker from the peer set (its partitions
// are being reassigned; the survivors' folds will re-own the operators).
func (m *Model) RemoveWorker(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	delete(m.work, name)
	m.mu.Unlock()
}

// SLOTarget returns the declared end-to-end p99 target (0 = none).
func (m *Model) SLOTarget() time.Duration {
	if m == nil {
		return 0
	}
	return m.opts.SLO
}
