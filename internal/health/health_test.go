package health

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streammine/internal/core"
	"streammine/internal/metrics"
	"streammine/internal/topology"
)

const testTopo = `{
  "speculative": true,
  "nodes": [
    {"name": "src", "type": "source", "rate": 100, "count": 100},
    {"name": "classify", "type": "classifier", "classes": 4, "costMicros": 10, "inputs": ["src"]},
    {"name": "out", "type": "sink", "inputs": ["classify"]}
  ]
}`

func testModel(t *testing.T, slo time.Duration) *Model {
	t.Helper()
	cfg, err := topology.Parse([]byte(testTopo))
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, Options{SLO: slo, HeartbeatInterval: 100 * time.Millisecond})
}

func ms(d int) int64 { return int64(time.Duration(d) * time.Millisecond) }

func TestSLOBudgetAttribution(t *testing.T) {
	m := testModel(t, 12*time.Millisecond)
	now := time.Now()
	m.Fold("w1", 0, []core.NodeHealth{
		{Node: "src", Committed: 100, FinalizeCount: 100, FinalizeP50Ns: ms(1), FinalizeP99Ns: ms(2)},
	}, nil, now)
	m.Fold("w2", 1, []core.NodeHealth{
		{Node: "classify", Committed: 100, FinalizeCount: 100, FinalizeP50Ns: ms(5), FinalizeP99Ns: ms(10)},
		{Node: "out", Committed: 100, FinalizeCount: 100, FinalizeP50Ns: ms(2), FinalizeP99Ns: ms(3)},
	}, nil, now)

	v := m.snapshotAt(now)
	if v.SLO.TargetMs != 12 {
		t.Errorf("TargetMs = %v, want 12", v.SLO.TargetMs)
	}
	if v.SLO.ObservedP99Ms != 15 {
		t.Errorf("ObservedP99Ms = %v, want 15 (2+10+3)", v.SLO.ObservedP99Ms)
	}
	if !v.SLO.Violated {
		t.Error("SLO not flagged violated at 15ms observed vs 12ms target")
	}
	if v.SLO.DominantHop != "classify" {
		t.Errorf("DominantHop = %q, want classify", v.SLO.DominantHop)
	}
	if want := []string{"src", "classify", "out"}; len(v.SLO.CriticalPath) != 3 ||
		v.SLO.CriticalPath[0] != want[0] || v.SLO.CriticalPath[2] != want[2] {
		t.Errorf("CriticalPath = %v, want %v", v.SLO.CriticalPath, want)
	}
	var classify *OperatorView
	for i := range v.Operators {
		if v.Operators[i].Node == "classify" {
			classify = &v.Operators[i]
		}
	}
	if classify == nil {
		t.Fatal("no classify operator row")
	}
	if !classify.Dominant {
		t.Error("classify not marked dominant")
	}
	// 10ms of a 12ms budget ≈ 83.3%.
	if classify.BudgetSharePct < 83 || classify.BudgetSharePct > 84 {
		t.Errorf("classify BudgetSharePct = %v, want ≈83.3", classify.BudgetSharePct)
	}
	if classify.Worker != "w2" {
		t.Errorf("classify attributed to %q, want w2", classify.Worker)
	}
}

func TestBackpressureRootCauseChain(t *testing.T) {
	m := testModel(t, 0)
	now := time.Now()
	// src's mailbox backs up (capless) while downstream stays drained —
	// the slow-bridge / straggler signature.
	m.Fold("w1", 0, []core.NodeHealth{{Node: "src", Committed: 400}},
		[]core.NodePressure{{Node: "src", DataDepth: 500}}, now)
	m.Fold("w2", 1, []core.NodeHealth{
		{Node: "classify", Committed: 400}, {Node: "out", Committed: 400},
	}, []core.NodePressure{{Node: "classify", DataDepth: 1}, {Node: "out"}}, now)

	v := m.snapshotAt(now)
	if len(v.Backpressure) != 1 {
		t.Fatalf("Backpressure = %+v, want one chain", v.Backpressure)
	}
	c := v.Backpressure[0]
	if c.Sink != "out" || c.Root != "src" || c.RootWorker != "w1" {
		t.Errorf("chain = %+v, want out → src on w1", c)
	}
	if len(c.Path) != 3 || c.Path[0] != "out" || c.Path[2] != "src" {
		t.Errorf("chain path = %v, want [out classify src]", c.Path)
	}
	if c.Reason == "" {
		t.Error("chain has no reason")
	}
}

func TestBackpressureCreditStalledEdge(t *testing.T) {
	m := testModel(t, 0)
	now := time.Now()
	// classify's mailbox is at cap and src's outputs are credit-parked:
	// classify is the choke point, not src.
	m.Fold("w1", 0, nil, []core.NodePressure{{Node: "src", CreditQueued: 8}}, now)
	m.Fold("w2", 1, nil, []core.NodePressure{
		{Node: "classify", DataDepth: 60, DataCap: 64},
		{Node: "out"},
	}, now)
	v := m.snapshotAt(now)
	if len(v.Backpressure) != 1 {
		t.Fatalf("Backpressure = %+v, want one chain", v.Backpressure)
	}
	if c := v.Backpressure[0]; c.Root != "classify" {
		t.Errorf("root = %q (%+v), want classify (deepest backlog wins)", c.Root, c)
	}
}

func TestStragglerBacklogDeviation(t *testing.T) {
	m := testModel(t, 0)
	now := time.Now()
	fold := func(depth int, at time.Time) {
		m.Fold("w1", 0, []core.NodeHealth{{Node: "src", Committed: 10}},
			[]core.NodePressure{{Node: "src", DataDepth: depth}}, at)
		m.Fold("w2", 1, []core.NodeHealth{
			{Node: "classify", Committed: 10}, {Node: "out", Committed: 10},
		}, []core.NodePressure{{Node: "classify"}, {Node: "out"}}, at)
	}
	fold(0, now)
	if v := m.snapshotAt(now); len(v.Stragglers) != 0 {
		t.Fatalf("healthy cluster flagged stragglers: %+v", v.Stragglers)
	}
	fold(500, now.Add(100*time.Millisecond))
	// Hysteresis: one deviant snapshot must not flag.
	if v := m.snapshotAt(now.Add(150 * time.Millisecond)); len(v.Stragglers) != 0 {
		t.Fatalf("straggler flagged after a single deviant snapshot: %+v", v.Stragglers)
	}
	fold(800, now.Add(200*time.Millisecond))
	v := m.snapshotAt(now.Add(250 * time.Millisecond))
	if len(v.Stragglers) != 1 || v.Stragglers[0].Worker != "w1" {
		t.Fatalf("Stragglers = %+v, want w1 flagged", v.Stragglers)
	}
	if v.Stragglers[0].Reason == "" {
		t.Error("straggler has no reason")
	}
	for _, w := range v.Workers {
		if w.Worker == "w1" && !w.Straggler {
			t.Error("w1 WorkerView not marked straggler")
		}
		if w.Worker == "w2" && w.Straggler {
			t.Error("w2 wrongly marked straggler")
		}
	}
}

func TestStragglerStaleStatus(t *testing.T) {
	m := testModel(t, 0)
	now := time.Now()
	m.Fold("w1", 0, []core.NodeHealth{{Node: "src", Committed: 10}}, nil, now)
	m.Fold("w2", 1, []core.NodeHealth{{Node: "classify", Committed: 10}}, nil, now)
	// w1 goes silent; w2 keeps reporting.
	for i := 1; i <= 3; i++ {
		at := now.Add(time.Duration(i) * 300 * time.Millisecond)
		m.Fold("w2", 1, []core.NodeHealth{{Node: "classify", Committed: 10 + uint64(i)}}, nil, at)
		m.snapshotAt(at)
	}
	v := m.snapshotAt(now.Add(time.Second))
	if len(v.Stragglers) != 1 || v.Stragglers[0].Worker != "w1" {
		t.Fatalf("Stragglers = %+v, want stale w1 flagged", v.Stragglers)
	}
	m.RemoveWorker("w1")
	if v := m.snapshotAt(now.Add(1100 * time.Millisecond)); len(v.Stragglers) != 0 {
		t.Fatalf("evicted worker still flagged: %+v", v.Stragglers)
	}
}

func TestRateEWMAFromFolds(t *testing.T) {
	m := testModel(t, 0)
	now := time.Now()
	for i := 0; i <= 10; i++ {
		at := now.Add(time.Duration(i) * 100 * time.Millisecond)
		m.Fold("w1", 0, []core.NodeHealth{{Node: "src", Committed: uint64(i) * 100}}, nil, at)
	}
	v := m.snapshotAt(now.Add(time.Second))
	op := v.operator("src")
	// 100 events per 100ms = 1000/s; EWMA converges there.
	if op.RateEventsPerSec < 900 || op.RateEventsPerSec > 1100 {
		t.Errorf("src rate = %v, want ≈1000", op.RateEventsPerSec)
	}
}

func TestHealthMetricsRegisteredAndDocumented(t *testing.T) {
	m := testModel(t, 10*time.Millisecond)
	reg := metrics.NewRegistry()
	RegisterMetrics(m, reg)
	now := time.Now()
	m.Fold("w1", 0, []core.NodeHealth{
		{Node: "src", Committed: 10, FinalizeP99Ns: ms(2)},
	}, nil, now)
	if v, ok := reg.Value("health_slo_target_ms", nil); !ok || v != 10 {
		t.Errorf("health_slo_target_ms = %v ok=%v, want 10", v, ok)
	}
	if _, ok := reg.Value("health_hop_p99_ms", metrics.Labels{"node": "classify"}); !ok {
		t.Error("health_hop_p99_ms{node=classify} not registered")
	}
	if _, ok := reg.Value("health_stragglers", nil); !ok {
		t.Error("health_stragglers not registered")
	}

	// Every health_* series must appear in the docs/OBSERVABILITY.md
	// inventory table.
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read metric inventory doc: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range reg.Snapshot() {
		if !strings.HasPrefix(p.Name, "health_") || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("series %s not documented in docs/OBSERVABILITY.md", p.Name)
		}
	}
	if len(seen) < 8 {
		t.Errorf("only %d health_* series registered, want at least 8", len(seen))
	}
}
