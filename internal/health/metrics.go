package health

import (
	"sync"
	"time"

	"streammine/internal/metrics"
)

// RegisterMetrics exposes the model as health_* series on the
// coordinator's registry (documented in docs/OBSERVABILITY.md). Per-node
// series are registered up front — the operator set is fixed at deploy
// time — and resolve against a cached snapshot at scrape: one Snapshot
// per scrape pass, not one per series.
func RegisterMetrics(m *Model, reg *metrics.Registry) {
	if m == nil || reg == nil {
		return
	}
	c := &snapCache{m: m}

	reg.GaugeFunc("health_slo_target_ms",
		"Declared end-to-end p99 latency target (0 = no SLO declared).",
		nil, func() float64 { return float64(m.SLOTarget()) / float64(time.Millisecond) })
	reg.GaugeFunc("health_slo_observed_p99_ms",
		"Observed end-to-end p99: additive per-hop finalize p99 along the critical path.",
		nil, func() float64 { return c.get().SLO.ObservedP99Ms })
	reg.GaugeFunc("health_slo_violation",
		"1 while the observed end-to-end p99 exceeds the declared target.",
		nil, func() float64 {
			if c.get().SLO.Violated {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("health_backpressure_chains",
		"Stalled sinks with a diagnosed backpressure root-cause chain.",
		nil, func() float64 { return float64(len(c.get().Backpressure)) })
	reg.GaugeFunc("health_stragglers",
		"Workers currently flagged as stragglers by peer-deviation detection.",
		nil, func() float64 { return float64(len(c.get().Stragglers)) })

	for _, name := range m.order {
		node := name
		reg.GaugeFunc("health_hop_p99_ms",
			"Per-operator admission→commit p99 from worker STATUS samples.",
			metrics.Labels{"node": node},
			func() float64 { return c.get().operator(node).P99Ms })
		reg.GaugeFunc("health_hop_budget_share_pct",
			"Per-operator share of the end-to-end latency budget.",
			metrics.Labels{"node": node},
			func() float64 { return c.get().operator(node).BudgetSharePct })
		reg.GaugeFunc("health_hop_rate_events_per_sec",
			"Per-operator finalize rate (EWMA over STATUS folds).",
			metrics.Labels{"node": node},
			func() float64 { return c.get().operator(node).RateEventsPerSec })
	}
}

// operator finds a node's row (zero row when unknown).
func (v *View) operator(node string) OperatorView {
	if v != nil {
		for _, op := range v.Operators {
			if op.Node == node {
				return op
			}
		}
	}
	return OperatorView{}
}

// snapCache amortizes Snapshot across the many health_* series of one
// scrape pass: the first series of a pass recomputes, the rest reuse.
type snapCache struct {
	m    *Model
	mu   sync.Mutex
	view *View
	at   time.Time
}

const snapTTL = 250 * time.Millisecond

func (c *snapCache) get() *View {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil || time.Since(c.at) > snapTTL {
		c.view = c.m.Snapshot()
		c.at = time.Now()
	}
	return c.view
}
